module dup

go 1.22
