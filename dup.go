// Package dup is a from-scratch reproduction of "DUP: Dynamic-tree Based
// Update Propagation in Peer-to-Peer Networks" (Yin & Cao, ICDE 2005).
//
// In a structured peer-to-peer network every key has an authority node
// that maintains its (key, value) index; queries route along an index
// search tree toward that node and indices are cached with a TTL along the
// way. DUP maintains a dynamic update propagation tree containing only the
// nodes that are interested in an index (or are branch points between
// them) and pushes fresh index versions directly between tree neighbours,
// skipping the uninterested chains that the CUP baseline pays for
// hop-by-hop.
//
// The package exposes three layers:
//
//   - Simulation: Run and Compare (and their RunContext / CompareContext
//     forms, plus RunReplicated for seed-replicated aggregates) execute
//     the paper's discrete-event evaluation for any Config and scheme,
//     reporting the paper's two metrics (average query latency in hops and
//     average query cost in message hops per query).
//   - Protocol: NodeState is the pure per-node DUP state machine of the
//     paper's Figure 3, reusable in any transport.
//   - Experiments: Experiments and RunExperimentWith regenerate every
//     table and figure from the paper's Section IV.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// reproductions.
package dup

import (
	"context"
	"fmt"
	"io"

	"dup/internal/core"
	"dup/internal/experiments"
	"dup/internal/scheme"
	"dup/internal/scheme/cup"
	"dup/internal/scheme/dupscheme"
	"dup/internal/sim"
)

// Scheme selects an index maintenance scheme.
type Scheme string

// The available schemes.
const (
	// PCX is Path Caching with eXpiration: passive TTL caching only.
	PCX Scheme = "pcx"
	// CUP is Controlled Update Propagation: hop-by-hop pushes down the
	// index search tree toward interested nodes.
	CUP Scheme = "cup"
	// CUPCutoff is the CUP variant whose pushes stop at the first node
	// that is not interested itself (Section II-B's criticism).
	CUPCutoff Scheme = "cup-cutoff"
	// DUP is the paper's contribution: a dynamic update propagation tree
	// with direct pushes between tree neighbours.
	DUP Scheme = "dup"
	// DUPHopByHop is the ablation with direct pushes disabled.
	DUPHopByHop Scheme = "dup-hopbyhop"
)

// Schemes returns all selectable schemes.
func Schemes() []Scheme {
	return []Scheme{PCX, CUP, CUPCutoff, DUP, DUPHopByHop}
}

// unknownScheme is the shared error for every path that rejects a scheme
// name — parsing, text unmarshalling and construction — so flag parsing and
// JSON decoding report identical, equally helpful messages.
func unknownScheme(s string) error {
	return fmt.Errorf("dup: unknown scheme %q (want one of %v)", s, Schemes())
}

// ParseScheme converts a string such as "dup" into a Scheme.
func ParseScheme(s string) (Scheme, error) {
	for _, k := range Schemes() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", unknownScheme(s)
}

// String returns the scheme's canonical lower-case name, the same string
// ParseScheme accepts.
func (s Scheme) String() string { return string(s) }

// MarshalText implements encoding.TextMarshaler, so a Scheme round-trips
// through JSON and text-based flag values. Marshalling an unknown scheme is
// an error, keeping the invariant that every serialised scheme can be
// parsed back.
func (s Scheme) MarshalText() ([]byte, error) {
	if _, err := ParseScheme(string(s)); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; it accepts exactly the
// names ParseScheme accepts.
func (s *Scheme) UnmarshalText(text []byte) error {
	k, err := ParseScheme(string(text))
	if err != nil {
		return err
	}
	*s = k
	return nil
}

// build constructs the internal scheme implementation.
func (s Scheme) build() (scheme.Scheme, error) {
	switch s {
	case PCX:
		return scheme.NewPCX(), nil
	case CUP:
		return cup.New(), nil
	case CUPCutoff:
		return cup.NewCutoff(), nil
	case DUP:
		return dupscheme.New(), nil
	case DUPHopByHop:
		return dupscheme.NewHopByHop(), nil
	}
	return nil, unknownScheme(string(s))
}

// Config re-exports the simulator configuration; see sim.Config for field
// documentation. Zero values are invalid — start from DefaultConfig.
type Config = sim.Config

// Result re-exports the simulation result.
type Result = sim.Result

// DefaultConfig returns the paper's Table I defaults (4096 nodes, degree
// 4, λ = 1 query/s, θ = 1.2, TTL 60 min, push lead 60 s, threshold c = 6,
// 180000 simulated seconds).
func DefaultConfig() Config { return sim.Default() }

// Run simulates one scheme under cfg and returns the measured result.
//
// Note: PCX has no push schedule; for faithful comparisons give it
// Lead = 0 (Compare does this automatically).
func Run(cfg Config, s Scheme) (*Result, error) {
	return RunContext(context.Background(), cfg, s)
}

// RunContext is Run under a context. The simulator checks ctx every few
// thousand dispatched events, so cancellation lands within milliseconds
// even on full-scale configurations; the error then wraps ctx.Err() and the
// partial result is discarded.
func RunContext(ctx context.Context, cfg Config, s Scheme) (*Result, error) {
	impl, err := s.build()
	if err != nil {
		return nil, err
	}
	return sim.RunContext(ctx, cfg, impl)
}

// Compare runs several schemes under the same configuration and returns
// their results in order. The PCX baseline automatically runs with
// Lead = 0.
func Compare(cfg Config, schemes ...Scheme) ([]*Result, error) {
	return CompareContext(context.Background(), cfg, schemes...)
}

// CompareContext is Compare under a context; the first cancelled run aborts
// the comparison.
func CompareContext(ctx context.Context, cfg Config, schemes ...Scheme) ([]*Result, error) {
	if len(schemes) == 0 {
		schemes = []Scheme{PCX, CUP, DUP}
	}
	out := make([]*Result, 0, len(schemes))
	for _, s := range schemes {
		c := cfg
		if s == PCX {
			c.Lead = 0
		}
		r, err := RunContext(ctx, c, s)
		if err != nil {
			return nil, fmt.Errorf("dup: %s: %w", s, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Replicated aggregates several independent replications (same
// configuration, different seeds) of one scheme; see sim.Replicated for
// the accessor set (MeanLatency, LatencyCI95, MeanCost, CostCI95, ...).
type Replicated = sim.Replicated

// RunReplicated executes replicas independent runs of scheme s with seeds
// cfg.Seed, cfg.Seed+1, ... and returns the across-run aggregate, whose
// CI95 accessors quantify run-to-run (topology and workload) variation.
func RunReplicated(cfg Config, s Scheme, replicas int) (*Replicated, error) {
	return RunReplicatedContext(context.Background(), cfg, s, replicas)
}

// RunReplicatedContext is RunReplicated under a context; cancellation stops
// the current replica mid-run and discards the partial aggregate.
func RunReplicatedContext(ctx context.Context, cfg Config, s Scheme, replicas int) (*Replicated, error) {
	if _, err := s.build(); err != nil {
		return nil, err
	}
	return sim.RunReplicatedContext(ctx, cfg, func() scheme.Scheme {
		impl, err := s.build()
		if err != nil {
			// Unreachable: s was validated above and build is pure.
			panic(err)
		}
		return impl
	}, replicas)
}

// NodeState is the pure DUP protocol state machine for one node (the
// paper's Figure 3); see dup/internal/core for the full API. It is
// re-exported so that downstream systems can embed the protocol in their
// own transports, as the live-network example does.
type NodeState = core.State

// NewNodeState returns the protocol state for a node. isRoot marks the
// authority node.
func NewNodeState(self int, isRoot bool) *NodeState {
	return core.NewState(self, isRoot)
}

// ExperimentScale selects quick (5 TTL cycles) or full (the paper's
// 180000 s) experiment runs.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)

// ExperimentOptions selects how an experiment runs: scale, base seed,
// replica count, and CSV output.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists the reproducible tables, figures and ablations.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure, writing the paper-shaped
// rows to w with a single replica and table output.
//
// Deprecated: Use RunExperimentWith, which takes an ExperimentOptions and
// so also selects replication, CSV output and a context. This wrapper is
// kept for source compatibility and will not grow new parameters.
func RunExperiment(w io.Writer, id string, scale ExperimentScale, seed uint64) error {
	return RunExperimentWith(w, id, ExperimentOptions{Scale: scale, Seed: seed})
}

// RunExperimentWith regenerates one table or figure with full control over
// replication and output format.
func RunExperimentWith(w io.Writer, id string, opts ExperimentOptions) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("dup: unknown experiment %q (want one of %v)", id, experiments.IDs())
	}
	return e.Run(w, opts)
}

// ExperimentTitle returns the human-readable title for an experiment id.
func ExperimentTitle(id string) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("dup: unknown experiment %q", id)
	}
	return e.Title, nil
}
