// Benchmarks: one per table and figure of the paper's Section IV (plus the
// ablations), each running a representative configuration of that
// experiment at reduced scale and reporting the metrics the artifact
// plots. The full sweeps behind every table and figure are produced by
// cmd/dupbench; these benches give a fast, regression-trackable signal
// per artifact.
//
//	go test -bench=. -benchmem
package dup

import (
	"testing"

	"dup/internal/overlay/chord"
	"dup/internal/rng"
)

// benchConfig is the shared reduced-scale configuration: 1024 nodes, three
// TTL cycles, one TTL of warm-up.
func benchConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 1024
	cfg.Duration = 3 * cfg.TTL
	cfg.Warmup = cfg.TTL
	cfg.Seed = seed
	return cfg
}

// runScheme executes one simulation and fails the benchmark on error.
func runScheme(b *testing.B, cfg Config, s Scheme) *Result {
	b.Helper()
	if s == PCX {
		cfg.Lead = 0
	}
	r, err := Run(cfg, s)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2ThresholdC: Table II's axis is the interest threshold c;
// the bench runs DUP at the paper's chosen c = 6 and at the extremes,
// reporting the cost spread the table shows.
func BenchmarkTable2ThresholdC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(1)
		cfg.Lambda = 10
		cfg.Threshold = 2
		lo := runScheme(b, cfg, DUP)
		cfg.Threshold = 6
		mid := runScheme(b, cfg, DUP)
		cfg.Threshold = 10
		hi := runScheme(b, cfg, DUP)
		b.ReportMetric(lo.MeanCost, "cost@c2")
		b.ReportMetric(mid.MeanCost, "cost@c6")
		b.ReportMetric(hi.MeanCost, "cost@c10")
		b.ReportMetric(mid.MeanLatency, "latency@c6")
	}
}

// BenchmarkFig4QueryRate: Figure 4's λ sweep, sampled at λ = 10.
func BenchmarkFig4QueryRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(2)
		cfg.Lambda = 10
		pcx := runScheme(b, cfg, PCX)
		cupR := runScheme(b, cfg, CUP)
		dupR := runScheme(b, cfg, DUP)
		b.ReportMetric(pcx.MeanLatency, "latPCX")
		b.ReportMetric(cupR.MeanLatency, "latCUP")
		b.ReportMetric(dupR.MeanLatency, "latDUP")
		b.ReportMetric(dupR.MeanCost/pcx.MeanCost, "relDUP")
	}
}

// BenchmarkTable3NodeCount: Table III's axis is n; the bench contrasts
// DUP latency at 1024 vs 4096 nodes (latency grows with network size).
func BenchmarkTable3NodeCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := benchConfig(3)
		small.Lambda = 1
		rs := runScheme(b, small, DUP)
		big := benchConfig(3)
		big.Nodes = 4096
		big.Lambda = 1
		rb := runScheme(b, big, DUP)
		b.ReportMetric(rs.MeanLatency, "lat@1024")
		b.ReportMetric(rb.MeanLatency, "lat@4096")
	}
}

// BenchmarkFig5NodeCountCost: Figure 5's relative-cost-vs-n curve, sampled
// at n = 4096.
func BenchmarkFig5NodeCountCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(4)
		cfg.Nodes = 4096
		pcx := runScheme(b, cfg, PCX)
		cupR := runScheme(b, cfg, CUP)
		dupR := runScheme(b, cfg, DUP)
		b.ReportMetric(cupR.MeanCost/pcx.MeanCost, "relCUP")
		b.ReportMetric(dupR.MeanCost/pcx.MeanCost, "relDUP")
	}
}

// BenchmarkFig6MaxDegree: Figure 6's axis is the maximum node degree D;
// the bench contrasts D = 2 (deep trees) and D = 10 (shallow trees).
func BenchmarkFig6MaxDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		deep := benchConfig(5)
		deep.MaxDegree = 2
		rd := runScheme(b, deep, DUP)
		shallow := benchConfig(5)
		shallow.MaxDegree = 10
		rs := runScheme(b, shallow, DUP)
		b.ReportMetric(rd.MeanLatency, "lat@D2")
		b.ReportMetric(rs.MeanLatency, "lat@D10")
	}
}

// BenchmarkFig7Zipf: Figure 7's axis is the skew θ; the bench contrasts
// near-uniform and strongly skewed queries.
func BenchmarkFig7Zipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(6)
		cfg.Lambda = 10
		cfg.Theta = 0.5
		pcxU := runScheme(b, cfg, PCX)
		dupU := runScheme(b, cfg, DUP)
		cfg.Theta = 3
		pcxS := runScheme(b, cfg, PCX)
		dupS := runScheme(b, cfg, DUP)
		b.ReportMetric(dupU.MeanCost/pcxU.MeanCost, "relDUP@0.5")
		b.ReportMetric(dupS.MeanCost/pcxS.MeanCost, "relDUP@3")
	}
}

// BenchmarkFig8Pareto: Figure 8's bursty arrivals, α = 1.05 vs 1.20 at
// λ = 10.
func BenchmarkFig8Pareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(7)
		cfg.Lambda = 10
		cfg.Pareto = true
		cfg.Alpha = 1.05
		bursty := runScheme(b, cfg, DUP)
		cfg.Alpha = 1.20
		smooth := runScheme(b, cfg, DUP)
		b.ReportMetric(bursty.MeanLatency, "lat@a1.05")
		b.ReportMetric(smooth.MeanLatency, "lat@a1.20")
	}
}

// BenchmarkAblationDirectPush: DUP's one-hop short-cuts vs routing each
// push hop-by-hop along the index search tree.
func BenchmarkAblationDirectPush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(8)
		cfg.Lambda = 10
		direct := runScheme(b, cfg, DUP)
		hopby := runScheme(b, cfg, DUPHopByHop)
		b.ReportMetric(float64(direct.PushHops), "pushDirect")
		b.ReportMetric(float64(hopby.PushHops), "pushHopByHop")
	}
}

// BenchmarkAblationSubstituteCutoff: the CUP cut-off variant of Section
// II-B's criticism against the evaluated CUP.
func BenchmarkAblationSubstituteCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(9)
		cfg.Lambda = 10
		full := runScheme(b, cfg, CUP)
		cut := runScheme(b, cfg, CUPCutoff)
		b.ReportMetric(full.MeanLatency, "latCUP")
		b.ReportMetric(cut.MeanLatency, "latCutoff")
	}
}

// BenchmarkAblationChordTopology: the paper's synthetic random trees vs
// index search trees extracted from Chord lookup paths.
func BenchmarkAblationChordTopology(b *testing.B) {
	ring := chord.Bootstrap(1024, rng.New(99), 8)
	tree, _, err := ring.ExtractTree("bench-key")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		random := benchConfig(10)
		random.Lambda = 10
		rr := runScheme(b, random, DUP)
		cfg := benchConfig(10)
		cfg.Lambda = 10
		cfg.Tree = tree
		rc := runScheme(b, cfg, DUP)
		b.ReportMetric(rr.MeanLatency, "latRandom")
		b.ReportMetric(rc.MeanLatency, "latChord")
	}
}

// BenchmarkChurn: Section III-C failure handling under load.
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(11)
		cfg.Lambda = 10
		cfg.FailRate = 0.02
		cfg.DetectDelay = 30
		cfg.DownTime = 600
		cfg.RetryTimeout = 5
		r := runScheme(b, cfg, DUP)
		b.ReportMetric(r.MeanLatency, "latChurn")
		b.ReportMetric(r.MeanCost, "costChurn")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed in events per
// second — the practical limit on full-scale reproduction runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var simSeconds float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(12)
		cfg.Lambda = 50
		r := runScheme(b, cfg, DUP)
		events += r.Events
		simSeconds += r.SimTime
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "simsec/s")
}

// BenchmarkFlashCrowd: the migrating-hot-spot extension — rotation at one
// TTL versus a stationary workload.
func BenchmarkFlashCrowd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stationary := benchConfig(13)
		stationary.Lambda = 10
		stationary.Theta = 2
		rs := runScheme(b, stationary, DUP)
		rotating := stationary
		rotating.HotspotRotate = rotating.TTL
		rr := runScheme(b, rotating, DUP)
		b.ReportMetric(rs.MeanCost, "costStationary")
		b.ReportMetric(rr.MeanCost, "costRotating")
	}
}

// BenchmarkInterestBasis: the Figure 3 (A) ambiguity — local-only versus
// all-received query counting.
func BenchmarkInterestBasis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		local := benchConfig(14)
		local.Lambda = 10
		local.CountForwarded = false
		rl := runScheme(b, local, DUP)
		recv := local
		recv.CountForwarded = true
		rr := runScheme(b, recv, DUP)
		b.ReportMetric(rl.MeanCost, "costLocal")
		b.ReportMetric(rr.MeanCost, "costReceived")
	}
}
