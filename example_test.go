package dup_test

import (
	"fmt"
	"strings"

	"dup"
)

// Compare the three schemes of the paper under one deterministic workload.
func ExampleCompare() {
	cfg := dup.DefaultConfig()
	cfg.Nodes = 256 // small network so the example runs instantly
	cfg.TTL = 600
	cfg.Lead = 10
	cfg.Duration = 3000
	cfg.Warmup = 600
	cfg.Lambda = 5
	cfg.Seed = 1

	results, err := dup.Compare(cfg) // PCX, CUP, DUP
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Println(r.Scheme)
	}
	best := results[len(results)-1]
	fmt.Println("DUP cheapest:", best.MeanCost < results[0].MeanCost)
	// Output:
	// PCX
	// CUP
	// DUP
	// DUP cheapest: true
}

// Regenerate one of the paper's artifacts. ExperimentOptions also selects
// replication, CSV output and a cancellation context; the deprecated
// RunExperiment wrapper covers only scale and seed.
func ExampleRunExperimentWith() {
	var b strings.Builder
	opts := dup.ExperimentOptions{Scale: dup.QuickScale, Seed: 1}
	if err := dup.RunExperimentWith(&b, "table1", opts); err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(b.String(), "Table I"))
	// Output:
	// true
}

// Drive the Figure 3 state machine directly: node 5 subscribes, the root
// learns about it, and a push targets it.
func ExampleNewNodeState() {
	root := dup.NewNodeState(0, true)
	n5 := dup.NewNodeState(5, false)

	actions := n5.BecomeInterested()
	fmt.Println("node 5 emits:", actions[0])

	root.HandleSubscribe(5)
	fmt.Println("root pushes to:", root.PushTargets())
	// Output:
	// node 5 emits: subscribe(5)
	// root pushes to: [5]
}

// Publish events across a DUP dissemination tree.
func ExampleNewPubSub() {
	p, err := dup.NewPubSub(64, 1)
	if err != nil {
		panic(err)
	}
	nodes := p.Nodes()
	p.Subscribe(nodes[10], "alerts")
	p.Subscribe(nodes[40], "alerts")

	d, err := p.Publish("alerts", "cpu high")
	if err != nil {
		panic(err)
	}
	fmt.Println("subscribers reached:", d.Subscribers)
	fmt.Println("DUP cheaper than SCRIBE:", d.Hops <= d.ScribeHops)
	// Output:
	// subscribers reached: 2
	// DUP cheaper than SCRIBE: true
}

// Work with one topic through its handle: name it once, then subscribe,
// publish and read inboxes without repeating the topic string.
func ExampleNewPubSub_topicHandle() {
	p, err := dup.NewPubSub(64, 1)
	if err != nil {
		panic(err)
	}
	nodes := p.Nodes()
	alerts := p.Topic("alerts") // a dup.PubSubTopic handle
	alerts.Subscribe(nodes[10])
	alerts.Subscribe(nodes[40])

	d, err := alerts.Publish("cpu high")
	if err != nil {
		panic(err)
	}
	fmt.Println("topic:", alerts.Name())
	fmt.Println("subscribers reached:", d.Subscribers)
	fmt.Println("node 10 inbox:", len(alerts.Inbox(nodes[10])))
	// Output:
	// topic: alerts
	// subscribers reached: 2
	// node 10 inbox: 1
}

// Resolve content through the multi-key directory.
func ExampleNewDirectory() {
	cfg := dup.DefaultDirectoryConfig()
	cfg.Nodes = 64
	d, err := dup.NewDirectory(cfg)
	if err != nil {
		panic(err)
	}
	d.Register("movie.avi", "host-9", 0)

	r, err := d.Lookup(d.Nodes()[30], "movie.avi", 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("value:", r.Value)
	// Output:
	// value: host-9
}
