// Package metrics implements the two performance metrics of the paper's
// Section IV plus supporting detail counters.
//
//   - Average query latency: the average number of hops a request travels
//     before it reaches a valid index (a locally served query has latency
//     zero). Reported with its 95% confidence interval.
//   - Average query cost: the total number of hops travelled by all
//     query-related messages — requests, replies, pushes and the control
//     messages that maintain interest state — divided by the number of
//     queries.
//
// A warm-up horizon excludes the cold-start transient: observations (both
// query latencies and message hops) timestamped before the horizon are
// counted separately and do not enter the reported averages.
package metrics

import (
	"fmt"

	"dup/internal/proto"
	"dup/internal/stats"
)

// Metrics accumulates one simulation run's measurements.
type Metrics struct {
	warmup float64 // observations before this time are excluded

	latency     stats.Online
	latencyBM   *stats.BatchMeans
	latencyHist *stats.Histogram

	queries     int64
	requestHops int64
	replyHops   int64
	pushHops    int64
	controlHops int64

	warmQueries int64 // queries discarded as warm-up
	warmHops    int64 // hops discarded as warm-up

	localHits int64 // queries served from the node's own cache (latency 0)
}

// New returns Metrics that exclude all observations before warmup seconds.
// histCap bounds the latency histogram (values at or above it share the
// overflow bin).
func New(warmup float64, histCap int) *Metrics {
	if warmup < 0 {
		panic(fmt.Sprintf("metrics: negative warmup %v", warmup))
	}
	return &Metrics{
		warmup:      warmup,
		latencyBM:   stats.NewBatchMeans(batchSize),
		latencyHist: stats.NewHistogram(histCap),
	}
}

// batchSize groups successive latency observations for the batch-means
// confidence interval. Successive query latencies are correlated through
// shared cache state; batches of this size decorrelate them for the
// stopping rule.
const batchSize = 500

// Warmup returns the warm-up horizon in simulated seconds.
func (m *Metrics) Warmup() float64 { return m.warmup }

// RecordQuery records a completed query: latency hops at simulated time t
// (the time the request reached a valid index).
func (m *Metrics) RecordQuery(t float64, hops int) {
	if hops < 0 {
		panic(fmt.Sprintf("metrics: negative latency %d", hops))
	}
	if t < m.warmup {
		m.warmQueries++
		return
	}
	m.queries++
	m.latency.Add(float64(hops))
	m.latencyBM.Add(float64(hops))
	m.latencyHist.Add(hops)
	if hops == 0 {
		m.localHits++
	}
}

// RecordHop charges one hop of a message of the given kind sent at time t.
func (m *Metrics) RecordHop(t float64, kind proto.Kind) {
	if t < m.warmup {
		m.warmHops++
		return
	}
	switch kind {
	case proto.KindRequest:
		m.requestHops++
	case proto.KindReply:
		m.replyHops++
	case proto.KindPush:
		m.pushHops++
	case proto.KindKeepAlive:
		// Keep-alives are free by definition (see package comment).
	default:
		if kind.Control() {
			m.controlHops++
		} else {
			panic(fmt.Sprintf("metrics: unaccounted message kind %v", kind))
		}
	}
}

// Queries returns the number of measured (post-warm-up) queries.
func (m *Metrics) Queries() int64 { return m.queries }

// LocalHits returns how many measured queries were served with latency 0.
func (m *Metrics) LocalHits() int64 { return m.localHits }

// MeanLatency returns the average query latency in hops.
func (m *Metrics) MeanLatency() float64 { return m.latency.Mean() }

// LatencyCI95 returns the 95% confidence half-width of the mean latency.
func (m *Metrics) LatencyCI95() float64 { return m.latency.CI95() }

// LatencyRelCI95 returns the CI half-width relative to the mean, using
// the method of batch means once enough batches have completed (query
// latencies are serially correlated through shared cache state; the plain
// sample CI understates the uncertainty). With fewer than ten batches it
// falls back to the conservative sample CI.
func (m *Metrics) LatencyRelCI95() float64 {
	if m.latencyBM.Batches() >= 10 {
		return m.latencyBM.RelativeCI95()
	}
	return m.latency.RelativeCI95()
}

// LatencyPercentile returns the p-quantile of the latency distribution.
func (m *Metrics) LatencyPercentile(p float64) int { return m.latencyHist.Percentile(p) }

// TotalHops returns the total hops charged to measured traffic.
func (m *Metrics) TotalHops() int64 {
	return m.requestHops + m.replyHops + m.pushHops + m.controlHops
}

// HopBreakdown returns the per-class hop counters.
func (m *Metrics) HopBreakdown() (request, reply, push, control int64) {
	return m.requestHops, m.replyHops, m.pushHops, m.controlHops
}

// MeanCost returns the average query cost: total message hops divided by
// the number of queries. It returns 0 when no queries were measured.
func (m *Metrics) MeanCost() float64 {
	if m.queries == 0 {
		return 0
	}
	return float64(m.TotalHops()) / float64(m.queries)
}

// Discarded returns the warm-up observations that were excluded.
func (m *Metrics) Discarded() (queries, hops int64) { return m.warmQueries, m.warmHops }
