package metrics

import (
	"testing"

	"dup/internal/proto"
)

func TestLatencyAccounting(t *testing.T) {
	m := New(0, 32)
	m.RecordQuery(1, 0)
	m.RecordQuery(2, 4)
	m.RecordQuery(3, 2)
	if m.Queries() != 3 {
		t.Fatalf("Queries = %d", m.Queries())
	}
	if m.MeanLatency() != 2 {
		t.Fatalf("MeanLatency = %v, want 2", m.MeanLatency())
	}
	if m.LocalHits() != 1 {
		t.Fatalf("LocalHits = %d, want 1", m.LocalHits())
	}
	if p := m.LatencyPercentile(1.0); p != 4 {
		t.Fatalf("p100 = %d, want 4", p)
	}
}

func TestCostAccounting(t *testing.T) {
	m := New(0, 32)
	m.RecordQuery(1, 1)
	m.RecordQuery(1, 1)
	m.RecordHop(1, proto.KindRequest)
	m.RecordHop(1, proto.KindReply)
	m.RecordHop(1, proto.KindPush)
	m.RecordHop(1, proto.KindSubscribe)
	m.RecordHop(1, proto.KindSubstitute)
	m.RecordHop(1, proto.KindInterest)
	if m.TotalHops() != 6 {
		t.Fatalf("TotalHops = %d, want 6", m.TotalHops())
	}
	req, rep, push, ctrl := m.HopBreakdown()
	if req != 1 || rep != 1 || push != 1 || ctrl != 3 {
		t.Fatalf("breakdown = %d %d %d %d", req, rep, push, ctrl)
	}
	if m.MeanCost() != 3 {
		t.Fatalf("MeanCost = %v, want 3", m.MeanCost())
	}
}

func TestKeepAliveIsFree(t *testing.T) {
	m := New(0, 8)
	m.RecordQuery(1, 0)
	m.RecordHop(1, proto.KindKeepAlive)
	if m.TotalHops() != 0 {
		t.Fatal("keep-alive hop was charged to cost")
	}
}

func TestWarmupExclusion(t *testing.T) {
	m := New(100, 8)
	m.RecordQuery(50, 7)            // warm-up, excluded
	m.RecordHop(99, proto.KindPush) // warm-up, excluded
	m.RecordQuery(150, 3)
	m.RecordHop(150, proto.KindRequest)
	if m.Queries() != 1 || m.MeanLatency() != 3 || m.TotalHops() != 1 {
		t.Fatalf("warm-up leaked into measurements: q=%d lat=%v hops=%d",
			m.Queries(), m.MeanLatency(), m.TotalHops())
	}
	wq, wh := m.Discarded()
	if wq != 1 || wh != 1 {
		t.Fatalf("Discarded = %d, %d", wq, wh)
	}
	if m.Warmup() != 100 {
		t.Fatalf("Warmup() = %v", m.Warmup())
	}
}

func TestMeanCostNoQueries(t *testing.T) {
	m := New(0, 8)
	m.RecordHop(1, proto.KindPush)
	if m.MeanCost() != 0 {
		t.Fatal("MeanCost with zero queries should be 0")
	}
}

func TestCI(t *testing.T) {
	m := New(0, 8)
	for i := 0; i < 100; i++ {
		m.RecordQuery(1, i%2) // alternating 0/1
	}
	if m.LatencyCI95() <= 0 {
		t.Fatal("CI should be positive for a varying stream")
	}
	if m.LatencyRelCI95() <= 0 || m.LatencyRelCI95() > 1 {
		t.Fatalf("relative CI = %v out of plausible range", m.LatencyRelCI95())
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negativeWarmup":  func() { New(-1, 8) },
		"negativeLatency": func() { New(0, 8).RecordQuery(1, -1) },
		"unknownKind":     func() { New(0, 8).RecordHop(1, proto.Kind(200)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLatencyRelCI95UsesBatchMeans(t *testing.T) {
	m := New(0, 8)
	// Fewer than ten batches: falls back to the sample CI.
	for i := 0; i < 100; i++ {
		m.RecordQuery(1, i%3)
	}
	if m.LatencyRelCI95() <= 0 {
		t.Fatal("fallback sample CI should be positive")
	}
	// Push past ten batches with a strongly autocorrelated stream (long
	// runs of equal values, flipping every two batches). The batch-means
	// CI must see the correlation the naive per-sample CI hides: with half
	// the batch means at 0 and half at 1, the relative CI is large even
	// though the per-sample standard error is tiny.
	m2 := New(0, 8)
	v := 0
	for i := 0; i < batchSize*20; i++ {
		if i%(batchSize*2) == 0 {
			v = 1 - v
		}
		m2.RecordQuery(1, v)
	}
	if bm := m2.LatencyRelCI95(); bm < 0.3 {
		t.Fatalf("batch-means relative CI = %v; a correlated 0/1 stream should be far from converged", bm)
	}
}
