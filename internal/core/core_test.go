package core

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
	"dup/internal/topology"
)

// Node ids in the paper tree: N1=0 N2=1 N3=2 N4=3 N5=4 N6=5 N7=6 N8=7.

// sameSet reports whether two subscriber lists hold the same members,
// ignoring order (the list order is insertion-dependent and unspecified).
func sameSet(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	m := map[int]bool{}
	for _, v := range got {
		m[v] = true
	}
	for _, v := range want {
		if !m[v] {
			return false
		}
	}
	return true
}

// TestPaperFigure2a replays Figure 2 (a): only N6 is interested. The DUP
// tree must contain exactly N1 and N6, with N2, N3, N5 on the virtual path,
// and one push hop must deliver the update.
func TestPaperFigure2a(t *testing.T) {
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)

	for _, vp := range []int{1, 2, 4} {
		if got := n.listOf(vp); got != "[5]" {
			t.Errorf("virtual-path node %d list = %v, want [5]", vp, got)
		}
		if n.states[vp].InTree() {
			t.Errorf("virtual-path node %d should not be in the DUP tree", vp)
		}
	}
	if !n.states[0].InTree() || !n.states[5].InTree() {
		t.Error("root and N6 should be in the DUP tree")
	}
	received, hops := n.push()
	if hops != 1 {
		t.Errorf("push used %d hops, want 1 (direct N1->N6)", hops)
	}
	if !received[5] || len(received) != 1 {
		t.Errorf("push received by %v, want only N6", received)
	}
	n.checkInvariants()
}

// TestPaperFigure2b adds N4: N1 must push to N3 (the nearest common parent)
// which forwards to N4 and N6 — three hops versus CUP's five and PCX's ten.
func TestPaperFigure2b(t *testing.T) {
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)
	n.becomeInterested(3)

	if got := n.listOf(0); got != "[2]" {
		t.Errorf("root list = %v, want [2] (N3 substituted for N6)", got)
	}
	if got := n.listOf(2); got != "[5 3]" {
		t.Errorf("N3 list = %v, want [5 3]", got)
	}
	if !n.states[2].InTree() {
		t.Error("N3 must be a DUP-tree branch point")
	}
	received, hops := n.push()
	if hops != 3 {
		t.Errorf("push used %d hops, want 3 (the paper's worked example)", hops)
	}
	for _, want := range []int{2, 3, 5} {
		if !received[want] {
			t.Errorf("push missed node %d", want)
		}
	}
	n.checkInvariants()
}

// TestPaperFigure2c removes N6 again: the root must push directly to N4 and
// the virtual path through N5 must be cleared.
func TestPaperFigure2c(t *testing.T) {
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)
	n.becomeInterested(3)
	n.loseInterest(5)

	if got := n.listOf(0); got != "[3]" {
		t.Errorf("root list = %v, want [3] (direct push to N4)", got)
	}
	for _, cleared := range []int{4, 5} {
		if n.states[cleared].OnVirtualPath() {
			t.Errorf("node %d still on virtual path: %v", cleared, n.listOf(cleared))
		}
	}
	received, hops := n.push()
	if hops != 1 || !received[3] {
		t.Errorf("push = %v in %d hops, want direct N1->N4", received, hops)
	}
	n.checkInvariants()
}

// TestPaperSection3BDescendants replays the prose walk-through at the end
// of Section III-B: with N4 and N6 in the tree, N5 joining replaces N6 as a
// subscriber of N3 and lists N6 as its own subscriber.
func TestPaperSection3BDescendants(t *testing.T) {
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)
	n.becomeInterested(3)
	n.becomeInterested(4) // N5 joins

	if !sameSet(n.states[2].Subscribers(), []int{3, 4}) {
		t.Errorf("N3 list = %v, want {3,4} (N5 replaced N6)", n.listOf(2))
	}
	if !sameSet(n.states[4].Subscribers(), []int{4, 5}) {
		t.Errorf("N5 list = %v, want {4,5}", n.listOf(4))
	}
	received, hops := n.push()
	// N1->N3 (1), N3->{N5,N4} (2), N5->N6 (1) = 4 hops.
	if hops != 4 {
		t.Errorf("push hops = %d, want 4", hops)
	}
	for _, want := range []int{2, 3, 4, 5} {
		if !received[want] {
			t.Errorf("push missed %d", want)
		}
	}
	n.checkInvariants()

	// For N7 or N8 joining, N6 takes care of them (footnote 1: their
	// subscribe is caught before reaching N3).
	n.becomeInterested(6) // N7
	if !sameSet(n.states[5].Subscribers(), []int{5, 6}) {
		t.Errorf("N6 list = %v, want {5,6}", n.listOf(5))
	}
	if !sameSet(n.states[2].Subscribers(), []int{3, 4}) {
		t.Errorf("N3 list changed to %v; N7's subscribe should have been caught by N6", n.listOf(2))
	}
	n.checkInvariants()
}

// TestLeafGainsSubscriberNoSubstituteStorm verifies the suppressed no-op:
// when leaf subscriber N6 gains downstream subscriber N7, the substitution
// substitute(N6, N6) would change nothing upstream and must not be sent.
func TestLeafGainsSubscriberNoSubstituteStorm(t *testing.T) {
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)
	before := n.hops
	n.becomeInterested(6) // subscribe(6) travels N7->N6 only: one hop
	if got := n.hops - before; got != 1 {
		t.Errorf("N7's subscription cost %d control hops, want 1", got)
	}
	n.checkInvariants()
}

func TestUnsubscribeSubjectPropagates(t *testing.T) {
	// Erratum check: N6's unsubscribe must arrive at tree node N3 still
	// naming N6 (the entry N3 holds), not renamed to N5 as a literal
	// reading of the pseudocode would do.
	n := newNet(t, topology.Paper())
	n.becomeInterested(5)
	n.becomeInterested(3)
	n.loseInterest(5)
	if n.states[2].Contains(5) {
		t.Fatalf("N3 still lists N6 after N6 unsubscribed: %v", n.listOf(2))
	}
	n.checkInvariants()
}

func TestRootInterestIsLocal(t *testing.T) {
	// The authority node can register interest; it must not emit traffic.
	n := newNet(t, topology.Paper())
	n.becomeInterested(0)
	if n.hops != 0 {
		t.Fatalf("root interest cost %d hops", n.hops)
	}
	if got := n.listOf(0); got != "[0]" {
		t.Fatalf("root list = %v", got)
	}
	n.checkInvariants()
}

func TestIdempotentTransitions(t *testing.T) {
	s := NewState(4, false)
	if acts := s.LoseInterest(); acts != nil {
		t.Fatalf("LoseInterest on uninterested node emitted %v", acts)
	}
	acts := s.BecomeInterested()
	if len(acts) != 1 || acts[0].Kind != SendSubscribe || acts[0].Subject != 4 {
		t.Fatalf("BecomeInterested emitted %v", acts)
	}
	if acts := s.BecomeInterested(); acts != nil {
		t.Fatalf("second BecomeInterested emitted %v", acts)
	}
	if acts := s.HandleSubscribe(4); acts != nil {
		t.Fatalf("duplicate subscribe emitted %v", acts)
	}
	if acts := s.HandleUnsubscribe(99); acts != nil {
		t.Fatalf("unsubscribe of unknown node emitted %v", acts)
	}
}

func TestSubstituteMissingOldSelfHeals(t *testing.T) {
	// substitute(5, 9) arriving where 5 was already removed must behave as
	// subscribe(9) so the new entry is announced upstream.
	s := NewState(3, false)
	acts := s.HandleSubstitute(5, 9)
	if len(acts) != 1 || acts[0].Kind != SendSubscribe || acts[0].Subject != 9 {
		t.Fatalf("self-heal emitted %v, want subscribe(9)", acts)
	}
	if !s.Contains(9) {
		t.Fatal("new entry not installed")
	}
}

func TestSubstituteSameOldNewIsNoop(t *testing.T) {
	s := NewState(3, false)
	s.AdoptSubscriber(7)
	if acts := s.HandleSubstitute(7, 7); acts != nil {
		t.Fatalf("identity substitute emitted %v", acts)
	}
	if got := s.Subscribers(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("list mutated: %v", got)
	}
}

func TestSubstituteAtTreeNodeIsCaught(t *testing.T) {
	s := NewState(3, false)
	s.AdoptSubscriber(7)
	s.AdoptSubscriber(8)
	if acts := s.HandleSubstitute(7, 9); acts != nil {
		t.Fatalf("tree node forwarded substitute: %v", acts)
	}
	if !s.Contains(9) || s.Contains(7) {
		t.Fatalf("substitution not applied: %v", s.Subscribers())
	}
}

func TestRepresentative(t *testing.T) {
	s := NewState(3, false)
	s.AdoptSubscriber(7)
	if s.Representative() != 7 {
		t.Fatalf("virtual-path representative = %d, want 7", s.Representative())
	}
	s.AdoptSubscriber(8)
	if s.Representative() != 3 {
		t.Fatalf("tree-node representative = %d, want self", s.Representative())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Representative on empty list did not panic")
		}
	}()
	NewState(1, false).Representative()
}

func TestInTreeClassification(t *testing.T) {
	leaf := NewState(5, false)
	leaf.AdoptSubscriber(5)
	if !leaf.InTree() {
		t.Error("leaf subscriber should be in tree")
	}
	vp := NewState(4, false)
	vp.AdoptSubscriber(5)
	if vp.InTree() {
		t.Error("virtual-path node should not be in tree")
	}
	branch := NewState(2, false)
	branch.AdoptSubscriber(5)
	branch.AdoptSubscriber(3)
	if !branch.InTree() {
		t.Error("branch point should be in tree")
	}
	root := NewState(0, true)
	if root.InTree() {
		t.Error("root without subscribers should not be in tree")
	}
	root.AdoptSubscriber(5)
	if !root.InTree() {
		t.Error("root with a subscriber should be in tree")
	}
	if NewState(9, false).InTree() {
		t.Error("empty non-root state should not be in tree")
	}
}

func TestPushTargetsExcludeSelf(t *testing.T) {
	s := NewState(2, false)
	s.AdoptSubscriber(2)
	s.AdoptSubscriber(5)
	got := s.PushTargets()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("PushTargets = %v, want [5]", got)
	}
}

func TestResetAndDrop(t *testing.T) {
	s := NewState(2, false)
	s.AdoptSubscriber(5)
	s.AdoptSubscriber(7)
	if !s.DropSubscriber(5) || s.DropSubscriber(5) {
		t.Fatal("DropSubscriber semantics wrong")
	}
	s.Reset()
	if s.Len() != 0 || s.OnVirtualPath() {
		t.Fatal("Reset did not clear state")
	}
}

func TestSetRoot(t *testing.T) {
	s := NewState(2, false)
	s.SetRoot(true)
	if !s.IsRoot() {
		t.Fatal("SetRoot(true) ignored")
	}
	// A root absorbs subscriptions without forwarding.
	if acts := s.HandleSubscribe(7); acts != nil {
		t.Fatalf("promoted root emitted %v", acts)
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"subscribe(5)":    {Kind: SendSubscribe, Subject: 5},
		"unsubscribe(6)":  {Kind: SendUnsubscribe, Subject: 6},
		"substitute(5,2)": {Kind: SendSubstitute, Old: 5, New: 2},
	}
	for want, a := range cases {
		if a.String() != want {
			t.Errorf("String() = %q, want %q", a.String(), want)
		}
	}
	if ActionKind(9).String() == "" {
		t.Error("unknown action kind string empty")
	}
}

// TestInvariantsUnderRandomChurnOfInterest is the core property test: on
// random trees, apply random sequences of interest gains and losses with
// synchronous delivery, and verify the full invariant set after every
// operation.
func TestInvariantsUnderRandomChurnOfInterest(t *testing.T) {
	err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		src := rng.New(seed)
		nNodes := src.IntRange(2, 60)
		tree := topology.Generate(nNodes, src.IntRange(1, 5), src.Split())
		n := newNet(t, tree)
		ops := int(opsRaw%120) + 5
		for i := 0; i < ops; i++ {
			node := src.Intn(nNodes)
			if n.interested[node] {
				n.loseInterest(node)
			} else {
				n.becomeInterested(node)
			}
			n.checkInvariants()
		}
		// Drain all interest: every list must empty.
		for node := range n.interested {
			_ = node
		}
		for node := 0; node < nNodes; node++ {
			if n.interested[node] {
				n.loseInterest(node)
			}
		}
		for i, s := range n.states {
			if s.OnVirtualPath() {
				t.Fatalf("node %d list %v not empty after all interest drained", i, s.Subscribers())
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPushCostNeverExceedsCUP verifies the paper's efficiency claim: on any
// quiesced configuration, DUP's push hop count is at most the number of
// index-search-tree edges CUP would traverse (the union of root-to-
// interested-node paths), with equality only when no short-cut exists.
func TestPushCostNeverExceedsCUP(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		nNodes := src.IntRange(2, 80)
		tree := topology.Generate(nNodes, src.IntRange(1, 6), src.Split())
		n := newNet(t, tree)
		count := src.IntRange(1, nNodes)
		for i := 0; i < count; i++ {
			n.becomeInterested(src.Intn(nNodes))
		}
		_, dupHops := n.push()
		// CUP cost: edges in the union of root->interested paths.
		onPath := map[int]bool{}
		for node := range n.interested {
			for _, p := range tree.PathToRoot(node) {
				onPath[p] = true
			}
		}
		cupHops := 0
		for p := range onPath {
			if p != tree.Root() {
				cupHops++ // one edge to its parent
			}
		}
		return dupHops <= cupHops
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubscribeUnsubscribeCycle(b *testing.B) {
	// One full subscription round trip on the paper tree: N6 gains and
	// loses interest, with synchronous delivery along the path.
	tree := topology.Paper()
	states := make([]*State, tree.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := range states {
			states[n] = NewState(n, n == 0)
		}
		var deliver func(from int, acts []Action)
		deliver = func(from int, acts []Action) {
			parent := tree.Parent(from)
			for _, a := range acts {
				switch a.Kind {
				case SendSubscribe:
					deliver(parent, states[parent].HandleSubscribe(a.Subject))
				case SendUnsubscribe:
					deliver(parent, states[parent].HandleUnsubscribe(a.Subject))
				case SendSubstitute:
					deliver(parent, states[parent].HandleSubstitute(a.Old, a.New))
				}
			}
		}
		deliver(5, states[5].BecomeInterested())
		deliver(5, states[5].LoseInterest())
	}
}
