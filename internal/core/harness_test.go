package core

import (
	"fmt"
	"testing"

	"dup/internal/topology"
)

// net is a synchronous test harness: it owns one State per tree node and
// delivers emitted actions to parents immediately (depth-first), which
// models a network where tree maintenance quiesces between interest
// changes. Asynchronous interleavings are exercised by the discrete-event
// simulator's tests.
type net struct {
	t          *testing.T
	tree       *topology.Tree
	states     []*State
	interested map[int]bool
	hops       int // control-message hops delivered
}

func newNet(t *testing.T, tree *topology.Tree) *net {
	n := &net{t: t, tree: tree, interested: map[int]bool{}}
	n.states = make([]*State, tree.N())
	for i := 0; i < tree.N(); i++ {
		n.states[i] = NewState(i, tree.IsRoot(i))
	}
	return n
}

// deliver sends each action from node `from` to its parent, recursively.
func (n *net) deliver(from int, acts []Action) {
	parent := n.tree.Parent(from)
	for _, a := range acts {
		if parent == -1 {
			n.t.Fatalf("node %d (root) tried to send %v upstream", from, a)
		}
		n.hops++
		var next []Action
		switch a.Kind {
		case SendSubscribe:
			next = n.states[parent].HandleSubscribe(a.Subject)
		case SendUnsubscribe:
			next = n.states[parent].HandleUnsubscribe(a.Subject)
		case SendSubstitute:
			next = n.states[parent].HandleSubstitute(a.Old, a.New)
		}
		n.deliver(parent, next)
	}
}

func (n *net) becomeInterested(i int) {
	n.interested[i] = true
	n.deliver(i, n.states[i].BecomeInterested())
}

func (n *net) loseInterest(i int) {
	delete(n.interested, i)
	n.deliver(i, n.states[i].LoseInterest())
}

// push simulates one update propagation from the root and returns the set
// of nodes that received the index and the number of push hops used.
func (n *net) push() (received map[int]bool, hops int) {
	received = map[int]bool{}
	var walk func(node int)
	walk = func(node int) {
		for _, target := range n.states[node].PushTargets() {
			hops++
			if received[target] {
				n.t.Fatalf("node %d pushed to %d twice", node, target)
			}
			received[target] = true
			walk(target)
		}
	}
	walk(n.tree.Root())
	return received, hops
}

// checkInvariants asserts the global DUP-tree invariants that must hold
// whenever maintenance traffic has quiesced.
func (n *net) checkInvariants() {
	n.t.Helper()
	for i, s := range n.states {
		// I1a: every non-self entry lies strictly inside a child subtree.
		// I1b: at most one entry per downstream branch (self is its own
		// "branch").
		branches := map[int]int{}
		for _, e := range s.Subscribers() {
			if e == i {
				continue
			}
			if !n.tree.Ancestor(i, e) || e == i {
				n.t.Fatalf("node %d lists %d, which is not a descendant", i, e)
			}
			b := n.tree.ChildToward(i, e)
			if prev, dup := branches[b]; dup {
				n.t.Fatalf("node %d lists %d and %d from the same branch %d", i, prev, e, b)
			}
			branches[b] = e
			// I5: every non-self entry is itself a DUP-tree member.
			if !n.states[e].InTree() {
				n.t.Fatalf("node %d lists %d, which is not in the DUP tree (list %v)",
					i, e, n.states[e].Subscribers())
			}
		}
		// I2: a node has subscribers iff its subtree holds an interested
		// node.
		want := n.subtreeHasInterest(i)
		if got := s.OnVirtualPath(); got != want {
			n.t.Fatalf("node %d on virtual path = %v, want %v (list %v, interested %v)",
				i, got, want, s.Subscribers(), n.interested)
		}
		// Self-entry consistency: a node lists itself iff it is interested.
		if s.Interested() != n.interested[i] {
			n.t.Fatalf("node %d self-subscription %v, interest %v", i, s.Interested(), n.interested[i])
		}
	}
	// I3: a push reaches every interested node.
	received, _ := n.push()
	for i := range n.interested {
		if i != n.tree.Root() && !received[i] {
			n.t.Fatalf("interested node %d missed the push; root list %v",
				i, n.states[0].Subscribers())
		}
	}
	// Conversely every pushed-to node is in the DUP tree.
	for i := range received {
		if !n.states[i].InTree() {
			n.t.Fatalf("push reached %d, which is not a DUP-tree member", i)
		}
	}
}

func (n *net) subtreeHasInterest(i int) bool {
	if n.interested[i] {
		return true
	}
	for _, c := range n.tree.Children(i) {
		if n.subtreeHasInterest(c) {
			return true
		}
	}
	return false
}

// listOf formats a node's subscriber list for assertions.
func (n *net) listOf(i int) string {
	return fmt.Sprint(n.states[i].Subscribers())
}
