package core

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
	"dup/internal/topology"
)

// asyncNet delivers tree-maintenance messages in adversarially random
// order (messages may overtake each other, as in the discrete-event
// simulator where per-hop delays are independent draws). It checks the
// protocol's safety invariant throughout — subscriber-list entries are
// always descendants — and its self-healing liveness: after the dust
// settles, one round of re-announcements restores push coverage for every
// interested node.
type asyncNet struct {
	tree   *topology.Tree
	states []*State
	// pool holds undelivered messages: (destination, action).
	pool []pending
	src  *rng.Source
}

type pending struct {
	to  int
	act Action
}

func newAsyncNet(tree *topology.Tree, src *rng.Source) *asyncNet {
	n := &asyncNet{tree: tree, src: src}
	n.states = make([]*State, tree.N())
	for i := range n.states {
		n.states[i] = NewState(i, tree.IsRoot(i))
	}
	return n
}

// enqueue adds the upstream actions emitted by node from.
func (n *asyncNet) enqueue(from int, acts []Action) {
	parent := n.tree.Parent(from)
	for _, a := range acts {
		n.pool = append(n.pool, pending{to: parent, act: a})
	}
}

// deliverOne picks a random pending message and delivers it.
func (n *asyncNet) deliverOne() bool {
	if len(n.pool) == 0 {
		return false
	}
	i := n.src.Intn(len(n.pool))
	p := n.pool[i]
	n.pool[i] = n.pool[len(n.pool)-1]
	n.pool = n.pool[:len(n.pool)-1]
	var acts []Action
	switch p.act.Kind {
	case SendSubscribe:
		acts = n.states[p.to].HandleSubscribe(p.act.Subject)
	case SendUnsubscribe:
		acts = n.states[p.to].HandleUnsubscribe(p.act.Subject)
	case SendSubstitute:
		acts = n.states[p.to].HandleSubstitute(p.act.Old, p.act.New)
	}
	n.enqueue(p.to, acts)
	return true
}

// safety verifies the protocol's hard invariant: every subscriber-list
// entry is the node itself or a strict descendant. Note that the paper's
// "at most one entry per downstream branch" holds only under FIFO message
// delivery — when a substitute overtakes the subscribe it replaces, a node
// can transiently hold two entries from one branch (one of them stale).
// The duplicate costs one wasted, version-guarded push per interval and
// heals on the next unsubscribe round, so it is tolerated here and in the
// simulator.
func (n *asyncNet) safety(t *testing.T) {
	t.Helper()
	for i, s := range n.states {
		for _, e := range s.Subscribers() {
			if e == i {
				continue
			}
			if !n.tree.Ancestor(i, e) {
				t.Fatalf("node %d lists non-descendant %d (pool %d)", i, e, len(n.pool))
			}
		}
	}
}

// pushCoverage returns the set of nodes a root push reaches.
func (n *asyncNet) pushCoverage() map[int]bool {
	received := map[int]bool{}
	var walk func(node int)
	walk = func(node int) {
		for _, target := range n.states[node].PushTargets() {
			if received[target] {
				continue
			}
			received[target] = true
			walk(target)
		}
	}
	walk(n.tree.Root())
	return received
}

// TestAsyncInterleavingsSafeAndSelfHealing checks two properties under
// adversarial message reordering:
//
//   - Safety, always: subscriber lists never point outside the subtree.
//   - Bounded degradation: after quiescence plus one re-announcement
//     round, the overwhelming majority of interested nodes are covered by
//     pushes. Full coverage is NOT guaranteed without FIFO links — a
//     reordered unsubscribe can strand a stale virtual-path segment that
//     absorbs later re-subscriptions — and an uncovered node merely loses
//     the push benefit: its queries still resolve through the search tree
//     (the simulator measures exactly this degradation; the paper's
//     bursty-arrival discussion describes its symptom).
func TestAsyncInterleavingsSafeAndSelfHealing(t *testing.T) {
	totalInterested, totalCovered := 0, 0
	err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		src := rng.New(seed)
		tree := topology.Generate(src.IntRange(2, 50), src.IntRange(1, 4), src.Split())
		n := newAsyncNet(tree, src.Split())
		interested := map[int]bool{}
		ops := int(opsRaw%60) + 5

		for i := 0; i < ops; i++ {
			// Interleave state changes with deliveries in random order so
			// messages from different operations race.
			if src.Float64() < 0.4 || len(n.pool) == 0 {
				node := src.Intn(tree.N())
				if interested[node] {
					delete(interested, node)
					n.enqueue(node, n.states[node].LoseInterest())
				} else {
					interested[node] = true
					n.enqueue(node, n.states[node].BecomeInterested())
				}
			} else {
				n.deliverOne()
			}
			n.safety(t)
		}
		// Drain the pool: the network quiesces.
		for n.deliverOne() {
			n.safety(t)
		}
		// Self-healing: one re-announcement round per interested node (the
		// protocol's natural recovery — a node whose pushes stop re-issues
		// its subscription) followed by quiescence must restore coverage.
		for node := range interested {
			if node == tree.Root() {
				continue
			}
			st := n.states[node]
			if !st.Interested() {
				n.enqueue(node, st.BecomeInterested())
			} else {
				// Re-announce the existing subscription upstream.
				n.enqueue(node, []Action{{Kind: SendSubscribe, Subject: st.Representative()}})
			}
		}
		for n.deliverOne() {
			n.safety(t)
		}
		covered := n.pushCoverage()
		for node := range interested {
			if node == tree.Root() {
				continue
			}
			totalInterested++
			if covered[node] {
				totalCovered++
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
	if totalInterested == 0 {
		t.Fatal("property test never produced an interested node")
	}
	ratio := float64(totalCovered) / float64(totalInterested)
	if ratio < 0.95 {
		t.Fatalf("push coverage after heal = %.3f (%d/%d), want >= 0.95",
			ratio, totalCovered, totalInterested)
	}
	t.Logf("post-heal coverage: %d/%d (%.1f%%)", totalCovered, totalInterested, 100*ratio)
}
