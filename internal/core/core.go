// Package core implements the paper's primary contribution: the DUP
// (Dynamic-tree based Update Propagation) tree-maintenance algorithm of
// Figure 3, as a pure per-node state machine.
//
// Each node keeps a subscriber list recording, for each of its downstream
// branches in the index search tree, the nearest node interested in the
// index (possibly itself). Nodes whose list has at least one entry form a
// "virtual path" toward the root; nodes that are the root with subscribers,
// that hold two or more entries (branch points), or whose only entry is
// themselves (leaf subscribers) form the DUP tree, across which index
// updates are pushed directly — skipping the uninterested chains in
// between.
//
// The state machine is transport-agnostic: handlers mutate local state and
// return the upstream messages the node must send. Both the discrete-event
// simulator (dup/internal/sim) and the live goroutine network
// (dup/internal/live) drive it; they differ only in how those messages are
// delivered and how interest/failure detection is triggered.
package core

import "fmt"

// ActionKind identifies an upstream message a node must send after a state
// transition.
type ActionKind uint8

const (
	// SendSubscribe asks the upstream node to process subscribe(Subject).
	SendSubscribe ActionKind = iota
	// SendUnsubscribe asks the upstream node to process
	// unsubscribe(Subject).
	SendUnsubscribe
	// SendSubstitute asks the upstream node to replace Old with New in its
	// subscriber list.
	SendSubstitute
)

// String returns the action kind name.
func (k ActionKind) String() string {
	switch k {
	case SendSubscribe:
		return "subscribe"
	case SendUnsubscribe:
		return "unsubscribe"
	case SendSubstitute:
		return "substitute"
	}
	return fmt.Sprintf("action(%d)", uint8(k))
}

// Action is one upstream message emitted by a handler. The host delivers it
// to the node's current parent in the index search tree.
type Action struct {
	Kind    ActionKind
	Subject int // subscribe/unsubscribe subject
	Old     int // substitute: entry to remove
	New     int // substitute: entry to insert
}

// String renders the action for traces and test failure messages.
func (a Action) String() string {
	if a.Kind == SendSubstitute {
		return fmt.Sprintf("substitute(%d,%d)", a.Old, a.New)
	}
	return fmt.Sprintf("%s(%d)", a.Kind, a.Subject)
}

// State is one node's DUP protocol state. Create it with NewState; the
// zero value is unusable because the node id 0 would be ambiguous.
type State struct {
	self int
	root bool
	list []int // subscriber list, insertion-ordered, no duplicates
}

// NewState returns the DUP state for node self. isRoot marks the authority
// node, which absorbs subscriptions instead of forwarding them.
func NewState(self int, isRoot bool) *State {
	return &State{self: self, root: isRoot}
}

// Self returns the node id this state belongs to.
func (s *State) Self() int { return s.self }

// IsRoot reports whether this node is the authority node.
func (s *State) IsRoot() bool { return s.root }

// Len returns the subscriber-list length.
func (s *State) Len() int { return len(s.list) }

// Subscribers returns a copy of the subscriber list in insertion order.
func (s *State) Subscribers() []int {
	return append([]int(nil), s.list...)
}

// Contains reports whether n is in the subscriber list.
func (s *State) Contains(n int) bool {
	for _, v := range s.list {
		if v == n {
			return true
		}
	}
	return false
}

// Interested reports whether this node has registered its own interest
// (i.e. it is in its own subscriber list).
func (s *State) Interested() bool { return s.Contains(s.self) }

// OnVirtualPath reports whether the node has any subscriber — i.e. whether
// it lies on a virtual path (or in the DUP tree itself).
func (s *State) OnVirtualPath() bool { return len(s.list) > 0 }

// InTree reports whether the node is part of the DUP tree and therefore
// participates in update propagation: the root with at least one
// subscriber, any node with two or more entries (a branch point), or a
// node whose only entry is itself (a leaf subscriber). A non-root node
// whose single entry is another node is merely on the virtual path.
func (s *State) InTree() bool {
	switch {
	case s.root:
		return len(s.list) >= 1
	case len(s.list) >= 2:
		return true
	case len(s.list) == 1:
		return s.list[0] == s.self
	}
	return false
}

// PushTargets returns the nodes this node must push a fresh index to: every
// subscriber-list entry except itself. Only nodes for which InTree reports
// true push; virtual-path intermediates never receive pushes in the first
// place.
func (s *State) PushTargets() []int {
	return s.AppendPushTargets(make([]int, 0, len(s.list)))
}

// AppendPushTargets appends the push targets to dst and returns it,
// letting hot callers reuse one scratch buffer across calls instead of
// allocating per push.
func (s *State) AppendPushTargets(dst []int) []int {
	for _, v := range s.list {
		if v != s.self {
			dst = append(dst, v)
		}
	}
	return dst
}

// Representative returns the node id this node has announced upstream: the
// node itself when it is in the DUP tree (or wants to be), otherwise its
// single subscriber. It is used during failure recovery, when a node must
// re-announce its branch to a new parent. It panics when the list is empty
// — a node with no subscribers represents nothing.
func (s *State) Representative() int {
	switch {
	case len(s.list) == 0:
		panic(fmt.Sprintf("core: node %d has no subscribers, no representative", s.self))
	case len(s.list) == 1:
		return s.list[0]
	default:
		return s.self
	}
}

// add appends n if absent and reports whether the list changed.
func (s *State) add(n int) bool {
	if s.Contains(n) {
		return false
	}
	s.list = append(s.list, n)
	return true
}

// remove deletes n if present, preserving order, and reports whether the
// list changed.
func (s *State) remove(n int) bool {
	for i, v := range s.list {
		if v == n {
			s.list = append(s.list[:i], s.list[i+1:]...)
			return true
		}
	}
	return false
}

// BecomeInterested implements Figure 3 (A): the node's interest policy has
// fired and it is not yet in its own subscriber list, so it subscribes
// itself. The returned actions (if any) go to the node's parent. Calling it
// while already subscribed is a no-op.
func (s *State) BecomeInterested() []Action {
	if s.Interested() {
		return nil
	}
	return s.processSubscribe(s.self)
}

// HandleSubscribe implements Figure 3 (B): subscribe(nj) arrived from a
// downstream branch.
func (s *State) HandleSubscribe(nj int) []Action {
	return s.processSubscribe(nj)
}

// LoseInterest implements Figure 3 (D): the node's interest policy reports
// it is no longer interested. Calling it while not subscribed is a no-op.
func (s *State) LoseInterest() []Action {
	if !s.Interested() {
		return nil
	}
	return s.processUnsubscribe(s.self)
}

// HandleUnsubscribe implements Figure 3 (E): unsubscribe(nj) arrived from a
// downstream branch (or was synthesised by failure detection).
func (s *State) HandleUnsubscribe(nj int) []Action {
	return s.processUnsubscribe(nj)
}

// HandleSubstitute implements Figure 3 (C): replace old with new in the
// subscriber list; nodes not in the DUP tree forward the message upstream.
func (s *State) HandleSubstitute(old, new int) []Action {
	if old == new {
		return nil
	}
	if !s.remove(old) {
		// The substitution raced with another membership change (the old
		// entry was already unsubscribed here). Treating the message as a
		// fresh subscription for the new entry re-announces the branch
		// upstream and keeps the new subscriber reachable; a plain
		// (S − {old}) ∪ {new} would leave it a silent orphan.
		return s.processSubscribe(new)
	}
	s.add(new)
	if s.root {
		return nil
	}
	if len(s.list) == 1 {
		// Not a DUP-tree node: pass the substitution along the virtual path.
		return []Action{{Kind: SendSubstitute, Old: old, New: new}}
	}
	return nil
}

// processSubscribe is Figure 3's process_subscribe(nj, ni) with ni == s.
func (s *State) processSubscribe(nj int) []Action {
	if s.root {
		s.add(nj)
		return nil
	}
	var prev int
	hadOne := len(s.list) == 1
	if hadOne {
		prev = s.list[0] // "temporarily save the old subscriber id"
	}
	if !s.add(nj) {
		return nil // duplicate subscription (message retry); nothing changed
	}
	switch len(s.list) {
	case 1:
		// Had no subscriber, now has one: extend the virtual path upstream.
		return []Action{{Kind: SendSubscribe, Subject: nj}}
	case 2:
		// Had one subscriber, now two: this node becomes a DUP-tree branch
		// point and replaces its old announcement with itself. When the old
		// announcement was already this node (a leaf subscriber gaining a
		// downstream subscriber), the substitution would be a no-op and is
		// suppressed — see DESIGN.md.
		if prev == s.self {
			return nil
		}
		return []Action{{Kind: SendSubstitute, Old: prev, New: s.self}}
	default:
		// Already a DUP-tree node; no upstream change needed.
		return nil
	}
}

// processUnsubscribe is Figure 3's process_unsubscribe(nj, ni) with ni == s.
func (s *State) processUnsubscribe(nj int) []Action {
	if !s.remove(nj) {
		return nil // duplicate or raced unsubscription; nothing to do
	}
	if s.root {
		return nil
	}
	switch len(s.list) {
	case 0:
		// No subscribers left: clear this node's stretch of virtual path.
		// The paper's pseudocode sends unsubscribe(Ni) — the node's own id
		// — but upstream lists hold the *announced* subscriber, which for a
		// node emptying from one entry is exactly the entry just removed
		// (the paper's prose agrees: "nodes along the path remove N6 from
		// their subscriber list"). We therefore forward the subject, not
		// the forwarder's id. See the erratum note in DESIGN.md.
		return []Action{{Kind: SendUnsubscribe, Subject: nj}}
	case 1:
		// One subscriber left: this node leaves the DUP tree and hands its
		// position to the remaining subscriber. When the remaining
		// subscriber is this node itself (it stays a leaf subscriber) the
		// substitution would be a no-op and is suppressed.
		if s.list[0] == s.self {
			return nil
		}
		return []Action{{Kind: SendSubstitute, Old: s.self, New: s.list[0]}}
	default:
		// Still a branch point; remains in the DUP tree.
		return nil
	}
}

// Reset clears the subscriber list (used when a node re-joins after
// failure or transfers its role).
func (s *State) Reset() { s.list = s.list[:0] }

// AdoptSubscriber installs nj directly into the subscriber list without
// emitting upstream traffic. It is used by topology maintenance: when a new
// node splices into a virtual path, its downstream neighbour's announcement
// is transferred to it ("N3' inserts N6 to its subscriber list, and becomes
// an intermediate node in the virtual path", Section III-C), and when a
// leaving node's role transfers to a neighbour.
func (s *State) AdoptSubscriber(nj int) { s.add(nj) }

// DropSubscriber removes nj without emitting upstream traffic, for
// topology maintenance. It reports whether nj was present.
func (s *State) DropSubscriber(nj int) bool { return s.remove(nj) }

// SetRoot marks or unmarks this node as the authority node (used when the
// root fails and a neighbour takes over its indices).
func (s *State) SetRoot(isRoot bool) { s.root = isRoot }
