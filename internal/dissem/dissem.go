// Package dissem generalises DUP from index updates to topic-based data
// dissemination — the extension the paper's conclusion proposes ("The idea
// of DUP may be applied to more general data dissemination scenarios. We
// plan to extend DUP to a general data dissemination platform in overlay
// networks").
//
// Each topic hashes to a rendezvous node on a Chord ring (its authority).
// The Chord lookup paths toward the rendezvous form the topic's search
// tree; subscribers announce themselves with the DUP protocol, leaving
// virtual paths and a per-topic dynamic dissemination tree. Publishing an
// event delivers it from the rendezvous across that tree with one-hop
// short-cuts — the platform also reports what a SCRIBE-style multicast
// (hop-by-hop down the same search tree, the paper's related-work
// comparison) would have cost for the same subscriber set.
//
// The platform is deterministic and synchronous: tree-maintenance messages
// are delivered in order per operation, so tests can assert exact hop
// counts. The live goroutine network (dup/internal/live) demonstrates the
// same state machine under real concurrency.
package dissem

import (
	"fmt"
	"sort"

	"dup/internal/core"
	"dup/internal/overlay/chord"
	"dup/internal/rng"
	"dup/internal/topology"
)

// Event is one published datum delivered to subscribers.
type Event struct {
	Topic   string
	Seq     int64
	Payload string
}

// Delivery summarises one publication.
type Delivery struct {
	Event Event
	// Receivers are the ring ids that received the event (subscribers
	// plus the dissemination tree's branch points), in ascending order.
	Receivers []chord.ID
	// Subscribers is how many of the receivers had subscribed.
	Subscribers int
	// Hops is the number of dissemination-tree edges used (DUP's cost).
	Hops int
	// ScribeHops is what a SCRIBE-style hop-by-hop multicast down the
	// search tree would have used for the same subscriber set.
	ScribeHops int
}

// Platform is a DUP-based pub/sub system over a Chord ring.
type Platform struct {
	ring   *chord.Ring
	ids    []chord.ID
	topics map[string]*topic

	// ControlHops accumulates tree-maintenance hops (subscribe,
	// unsubscribe, substitute) across all topics.
	ControlHops int
}

// topic is the per-topic dissemination state.
type topic struct {
	name   string
	tree   *topology.Tree
	ringID []chord.ID       // tree id -> ring id
	treeID map[chord.ID]int // ring id -> tree id
	states []*core.State    // per tree id
	subbed map[int]bool     // tree ids subscribed
	seq    int64
	inbox  map[int][]Event // delivered events per tree id (for tests/demos)
}

// NewPlatform bootstraps a ring of n nodes.
func NewPlatform(n int, seed uint64) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("dissem: need at least one node, got %d", n)
	}
	ring := chord.Bootstrap(n, rng.New(seed), 8)
	return &Platform{
		ring:   ring,
		ids:    ring.IDs(),
		topics: make(map[string]*topic),
	}, nil
}

// Nodes returns the ring ids of all nodes in ascending order.
func (p *Platform) Nodes() []chord.ID { return append([]chord.ID(nil), p.ids...) }

// Rendezvous returns the ring id of the topic's rendezvous (authority)
// node.
func (p *Platform) Rendezvous(topicName string) (chord.ID, error) {
	t, err := p.topic(topicName)
	if err != nil {
		return 0, err
	}
	return t.ringID[0], nil
}

// topic lazily builds the per-topic search tree and protocol state.
func (p *Platform) topic(name string) (*topic, error) {
	if t, ok := p.topics[name]; ok {
		return t, nil
	}
	tree, ringID, err := p.ring.ExtractTree(name)
	if err != nil {
		return nil, fmt.Errorf("dissem: topic %q: %w", name, err)
	}
	t := &topic{
		name:   name,
		tree:   tree,
		ringID: ringID,
		treeID: make(map[chord.ID]int, len(ringID)),
		states: make([]*core.State, tree.N()),
		subbed: make(map[int]bool),
		inbox:  make(map[int][]Event),
	}
	for i, id := range ringID {
		t.treeID[id] = i
		t.states[i] = core.NewState(i, i == 0)
	}
	p.topics[name] = t
	return t, nil
}

// resolve maps a ring id to its tree id within the topic.
func (t *topic) resolve(node chord.ID) (int, error) {
	id, ok := t.treeID[node]
	if !ok {
		return 0, fmt.Errorf("dissem: node %d not on the ring", node)
	}
	return id, nil
}

// deliverUp walks tree-maintenance actions toward the root, counting one
// control hop per action hop, exactly like the simulator does.
func (p *Platform) deliverUp(t *topic, from int, acts []core.Action) {
	parent := t.tree.Parent(from)
	for _, a := range acts {
		if parent == -1 {
			panic(fmt.Sprintf("dissem: root emitted %v", a))
		}
		p.ControlHops++
		var next []core.Action
		switch a.Kind {
		case core.SendSubscribe:
			next = t.states[parent].HandleSubscribe(a.Subject)
		case core.SendUnsubscribe:
			next = t.states[parent].HandleUnsubscribe(a.Subject)
		case core.SendSubstitute:
			next = t.states[parent].HandleSubstitute(a.Old, a.New)
		}
		p.deliverUp(t, parent, next)
	}
}

// Subscribe registers node for the topic. It returns the number of
// control hops the subscription cost. Subscribing the rendezvous node
// itself is a no-op (it receives everything anyway).
func (p *Platform) Subscribe(node chord.ID, topicName string) (int, error) {
	t, err := p.topic(topicName)
	if err != nil {
		return 0, err
	}
	id, err := t.resolve(node)
	if err != nil {
		return 0, err
	}
	before := p.ControlHops
	if id != 0 && !t.subbed[id] {
		t.subbed[id] = true
		p.deliverUp(t, id, t.states[id].BecomeInterested())
	}
	return p.ControlHops - before, nil
}

// Unsubscribe withdraws node's subscription, returning the control hops
// used.
func (p *Platform) Unsubscribe(node chord.ID, topicName string) (int, error) {
	t, err := p.topic(topicName)
	if err != nil {
		return 0, err
	}
	id, err := t.resolve(node)
	if err != nil {
		return 0, err
	}
	before := p.ControlHops
	if t.subbed[id] {
		delete(t.subbed, id)
		p.deliverUp(t, id, t.states[id].LoseInterest())
	}
	return p.ControlHops - before, nil
}

// Subscribers returns the current subscribers of the topic in ascending
// ring-id order.
func (p *Platform) Subscribers(topicName string) []chord.ID {
	t, ok := p.topics[topicName]
	if !ok {
		return nil
	}
	out := make([]chord.ID, 0, len(t.subbed))
	for id := range t.subbed {
		out = append(out, t.ringID[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Publish delivers payload to every subscriber of the topic across its
// dissemination tree and returns the delivery summary.
func (p *Platform) Publish(topicName, payload string) (Delivery, error) {
	t, err := p.topic(topicName)
	if err != nil {
		return Delivery{}, err
	}
	t.seq++
	ev := Event{Topic: topicName, Seq: t.seq, Payload: payload}

	received := map[int]bool{}
	hops := 0
	var walk func(node int)
	walk = func(node int) {
		for _, target := range t.states[node].PushTargets() {
			hops++
			if received[target] {
				continue // defensive; a consistent tree never revisits
			}
			received[target] = true
			t.inbox[target] = append(t.inbox[target], ev)
			walk(target)
		}
	}
	walk(0)

	d := Delivery{Event: ev, Hops: hops, ScribeHops: p.scribeHops(t)}
	for id := range received {
		d.Receivers = append(d.Receivers, t.ringID[id])
		if t.subbed[id] {
			d.Subscribers++
		}
	}
	sort.Slice(d.Receivers, func(i, j int) bool { return d.Receivers[i] < d.Receivers[j] })
	return d, nil
}

// scribeHops computes the hop-by-hop multicast cost for the current
// subscriber set: the edges of the union of root-to-subscriber paths in
// the topic's search tree (SCRIBE forwards through every intermediate
// node, like CUP — the paper's related-work comparison).
func (p *Platform) scribeHops(t *topic) int {
	onPath := map[int]bool{}
	for id := range t.subbed {
		for _, n := range t.tree.PathToRoot(id) {
			if n != 0 {
				onPath[n] = true
			}
		}
	}
	return len(onPath)
}

// Inbox returns the events delivered to node for the topic, in order.
func (p *Platform) Inbox(node chord.ID, topicName string) []Event {
	t, ok := p.topics[topicName]
	if !ok {
		return nil
	}
	id, err := t.resolve(node)
	if err != nil {
		return nil
	}
	return append([]Event(nil), t.inbox[id]...)
}

// Route returns the index-search-tree path for the topic from node toward
// the rendezvous: the nodes a query visits, starting with node itself and
// ending at the rendezvous. Higher layers (the directory service) route
// lookups along it.
func (p *Platform) Route(node chord.ID, topicName string) ([]chord.ID, error) {
	t, err := p.topic(topicName)
	if err != nil {
		return nil, err
	}
	id, err := t.resolve(node)
	if err != nil {
		return nil, err
	}
	ids := t.tree.PathToRoot(id)
	out := make([]chord.ID, len(ids))
	for i, n := range ids {
		out[i] = t.ringID[n]
	}
	return out, nil
}

// TreeInfo describes a topic's search tree (for demos and tests).
func (p *Platform) TreeInfo(topicName string) (nodes, maxDepth int, meanDepth float64, err error) {
	t, err := p.topic(topicName)
	if err != nil {
		return 0, 0, 0, err
	}
	return t.tree.N(), t.tree.MaxDepth(), t.tree.MeanDepth(), nil
}

// Topic is a handle on one named topic, mirroring the live Network's
// Key(k) handle: every per-topic operation hangs off it, so call sites
// name the topic once instead of threading the string through each call.
// The handle is a cheap value — it holds no topic state of its own, and
// any number of handles on the same name address the same topic.
type Topic struct {
	p    *Platform
	name string
}

// Topic returns a handle on the named topic. The topic's search tree and
// protocol state are built lazily on first use, exactly as with the
// string-keyed Platform methods.
func (p *Platform) Topic(name string) *Topic { return &Topic{p: p, name: name} }

// Name returns the topic name the handle addresses.
func (t *Topic) Name() string { return t.name }

// Rendezvous returns the ring id of the topic's rendezvous (authority)
// node.
func (t *Topic) Rendezvous() (chord.ID, error) { return t.p.Rendezvous(t.name) }

// Subscribe registers node for the topic, returning the control hops the
// subscription cost.
func (t *Topic) Subscribe(node chord.ID) (int, error) { return t.p.Subscribe(node, t.name) }

// Unsubscribe withdraws node's subscription, returning the control hops
// used.
func (t *Topic) Unsubscribe(node chord.ID) (int, error) { return t.p.Unsubscribe(node, t.name) }

// Subscribers returns the topic's current subscribers in ascending
// ring-id order.
func (t *Topic) Subscribers() []chord.ID { return t.p.Subscribers(t.name) }

// Publish delivers payload to every subscriber across the topic's
// dissemination tree and returns the delivery summary.
func (t *Topic) Publish(payload string) (Delivery, error) { return t.p.Publish(t.name, payload) }

// Inbox returns the events delivered to node for the topic, in order.
func (t *Topic) Inbox(node chord.ID) []Event { return t.p.Inbox(node, t.name) }

// Route returns the topic's index-search-tree path from node toward the
// rendezvous.
func (t *Topic) Route(node chord.ID) ([]chord.ID, error) { return t.p.Route(node, t.name) }

// TreeInfo describes the topic's search tree.
func (t *Topic) TreeInfo() (nodes, maxDepth int, meanDepth float64, err error) {
	return t.p.TreeInfo(t.name)
}
