package dissem

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestSubscribePublishDeliver(t *testing.T) {
	p, err := NewPlatform(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	subs := []int{5, 40, 90, 127}
	for _, i := range subs {
		if _, err := p.Subscribe(nodes[i], "news"); err != nil {
			t.Fatal(err)
		}
	}
	d, err := p.Publish("news", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscribers != len(subs) {
		t.Fatalf("delivered to %d subscribers, want %d", d.Subscribers, len(subs))
	}
	for _, i := range subs {
		events := p.Inbox(nodes[i], "news")
		if len(events) != 1 || events[0].Payload != "hello" || events[0].Seq != 1 {
			t.Fatalf("node %d inbox = %v", i, events)
		}
	}
	if d.Hops == 0 || d.Hops > d.ScribeHops {
		t.Fatalf("DUP dissemination hops %d vs SCRIBE %d", d.Hops, d.ScribeHops)
	}
}

func TestPublishWithoutSubscribersIsFree(t *testing.T) {
	p, _ := NewPlatform(32, 2)
	d, err := p.Publish("quiet", "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Hops != 0 || len(d.Receivers) != 0 || d.ScribeHops != 0 {
		t.Fatalf("empty-topic publish cost %+v", d)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	p, _ := NewPlatform(64, 3)
	nodes := p.Nodes()
	p.Subscribe(nodes[10], "t")
	p.Subscribe(nodes[20], "t")
	p.Publish("t", "one")
	if _, err := p.Unsubscribe(nodes[10], "t"); err != nil {
		t.Fatal(err)
	}
	p.Publish("t", "two")
	if got := p.Inbox(nodes[10], "t"); len(got) != 1 {
		t.Fatalf("unsubscribed node received %d events, want 1", len(got))
	}
	if got := p.Inbox(nodes[20], "t"); len(got) != 2 {
		t.Fatalf("remaining subscriber received %d events, want 2", len(got))
	}
	if got := p.Subscribers("t"); len(got) != 1 || got[0] != nodes[20] {
		t.Fatalf("Subscribers = %v", got)
	}
}

func TestSubscribeIdempotent(t *testing.T) {
	p, _ := NewPlatform(64, 4)
	nodes := p.Nodes()
	h1, _ := p.Subscribe(nodes[7], "t")
	h2, _ := p.Subscribe(nodes[7], "t")
	if h1 == 0 {
		t.Fatal("first subscription cost nothing")
	}
	if h2 != 0 {
		t.Fatalf("duplicate subscription cost %d hops", h2)
	}
	p.Publish("t", "x")
	if got := p.Inbox(nodes[7], "t"); len(got) != 1 {
		t.Fatalf("duplicate subscription duplicated delivery: %d events", len(got))
	}
}

func TestRendezvousNeverSubscribes(t *testing.T) {
	p, _ := NewPlatform(32, 5)
	rv, err := p.Rendezvous("topic")
	if err != nil {
		t.Fatal(err)
	}
	hops, err := p.Subscribe(rv, "topic")
	if err != nil || hops != 0 {
		t.Fatalf("rendezvous self-subscription: hops=%d err=%v", hops, err)
	}
}

func TestTopicsAreIndependent(t *testing.T) {
	p, _ := NewPlatform(64, 6)
	nodes := p.Nodes()
	p.Subscribe(nodes[3], "a")
	p.Subscribe(nodes[4], "b")
	p.Publish("a", "for-a")
	if got := p.Inbox(nodes[4], "b"); len(got) != 0 {
		t.Fatalf("topic b subscriber received topic a events: %v", got)
	}
	da, _ := p.Publish("a", "x")
	db, _ := p.Publish("b", "y")
	if da.Subscribers != 1 || db.Subscribers != 1 {
		t.Fatalf("cross-topic interference: %d, %d", da.Subscribers, db.Subscribers)
	}
}

func TestUnknownNodeRejected(t *testing.T) {
	p, _ := NewPlatform(16, 7)
	if _, err := p.Subscribe(12345, "t"); err == nil {
		t.Fatal("unknown ring id accepted")
	}
}

func TestSeqNumbersIncrease(t *testing.T) {
	p, _ := NewPlatform(32, 8)
	nodes := p.Nodes()
	p.Subscribe(nodes[5], "t")
	for i := 1; i <= 5; i++ {
		d, _ := p.Publish("t", "x")
		if d.Event.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", d.Event.Seq, i)
		}
	}
	events := p.Inbox(nodes[5], "t")
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("inbox out of order: %v", events)
		}
	}
}

// TestDeliveryPropertyAllSubscribersAlwaysReached is the platform's core
// invariant under random subscribe/unsubscribe churn: every publication
// reaches exactly the current subscribers (plus branch points), and DUP's
// dissemination never uses more hops than SCRIBE-style multicast.
func TestDeliveryPropertyAllSubscribersAlwaysReached(t *testing.T) {
	err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		src := rng.New(seed)
		p, err := NewPlatform(src.IntRange(2, 80), seed^0xff)
		if err != nil {
			return false
		}
		nodes := p.Nodes()
		want := map[int]int{} // node index -> expected inbox size
		subscribed := map[int]bool{}
		ops := int(opsRaw%40) + 3
		published := 0
		for i := 0; i < ops; i++ {
			n := src.Intn(len(nodes))
			switch src.Intn(3) {
			case 0:
				if _, err := p.Subscribe(nodes[n], "t"); err != nil {
					return false
				}
				rv, _ := p.Rendezvous("t")
				if nodes[n] != rv {
					subscribed[n] = true
				}
			case 1:
				if _, err := p.Unsubscribe(nodes[n], "t"); err != nil {
					return false
				}
				delete(subscribed, n)
			case 2:
				d, err := p.Publish("t", "x")
				if err != nil {
					return false
				}
				published++
				if d.Subscribers != len(subscribed) {
					return false
				}
				if d.Hops > d.ScribeHops {
					return false
				}
				for s := range subscribed {
					want[s]++
				}
			}
		}
		for s, count := range want {
			// A node's inbox must contain at least the events published
			// while it was subscribed (it may hold more from branch-point
			// periods).
			if len(p.Inbox(nodes[s], "t")) < count {
				return false
			}
		}
		_ = published
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewPlatformRejectsBadSize(t *testing.T) {
	if _, err := NewPlatform(0, 1); err == nil {
		t.Fatal("zero-node platform accepted")
	}
}

func BenchmarkPublish(b *testing.B) {
	p, err := NewPlatform(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	nodes := p.Nodes()
	for i := 13; i < 1024; i += 37 {
		p.Subscribe(nodes[i], "bench")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Publish("bench", "x"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRouteAndTreeInfo(t *testing.T) {
	p, _ := NewPlatform(64, 9)
	nodes := p.Nodes()
	route, err := p.Route(nodes[30], "t")
	if err != nil {
		t.Fatal(err)
	}
	rv, _ := p.Rendezvous("t")
	if route[0] != nodes[30] || route[len(route)-1] != rv {
		t.Fatalf("route = %v, want start %d end %d", route, nodes[30], rv)
	}
	if _, err := p.Route(999, "t"); err == nil {
		t.Fatal("route from unknown node accepted")
	}
	n, maxD, meanD, err := p.TreeInfo("t")
	if err != nil || n != 64 || maxD < 1 || meanD <= 0 {
		t.Fatalf("TreeInfo = %d %d %v %v", n, maxD, meanD, err)
	}
	// Routing from the rendezvous itself is the empty suffix.
	rvRoute, err := p.Route(rv, "t")
	if err != nil || len(rvRoute) != 1 || rvRoute[0] != rv {
		t.Fatalf("rendezvous route = %v, %v", rvRoute, err)
	}
}

func TestInboxAndSubscribersUnknowns(t *testing.T) {
	p, _ := NewPlatform(16, 10)
	if got := p.Inbox(12345, "never-created"); got != nil {
		t.Fatalf("inbox for unknown topic = %v", got)
	}
	if got := p.Subscribers("never-created"); got != nil {
		t.Fatalf("subscribers for unknown topic = %v", got)
	}
	p.Subscribe(p.Nodes()[3], "t")
	if got := p.Inbox(99999, "t"); got != nil {
		t.Fatalf("inbox for unknown node = %v", got)
	}
	if _, err := p.Unsubscribe(99999, "t"); err == nil {
		t.Fatal("unsubscribe for unknown node accepted")
	}
	if _, err := p.Publish("t", "x"); err != nil {
		t.Fatal(err)
	}
}
