package eventq

import (
	"sort"
	"testing"
	"testing/quick"
	"unsafe"

	"dup/internal/proto"
	"dup/internal/rng"
)

// TestEventSize pins the event record at 32 bytes: heap sifts copy whole
// events, so growing the record silently taxes the simulator's hottest loop.
func TestEventSize(t *testing.T) {
	if s := unsafe.Sizeof(Event{}); s != 32 {
		t.Fatalf("Event is %d bytes, want 32", s)
	}
}

// ev builds a typed test event carrying id in the A operand.
func ev(id int) Event { return Ev(KindArrival, int64(id)) }

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Push(tm, ev(int(tm)))
	}
	var got []float64
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Time)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("pop order not sorted: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("popped %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(7.0, ev(i))
	}
	for i := 0; i < 100; i++ {
		e, ok := q.Pop()
		if !ok || e.A != int64(i) {
			t.Fatalf("tie-break broke FIFO at %d: got %v", i, e.A)
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue Len != 0")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(1, ev(9))
	e1, _ := q.Peek()
	e2, _ := q.Peek()
	if e1.A != 9 || e2.A != 9 || q.Len() != 1 {
		t.Fatal("Peek modified the queue")
	}
}

func TestMessageEvent(t *testing.T) {
	var q Queue
	m := &proto.Message{Kind: proto.KindPush, To: 3}
	q.Push(2, Message(m))
	e, ok := q.Pop()
	if !ok || e.Kind() != KindMessage || e.Msg != m {
		t.Fatalf("message event round-trip failed: %+v", e)
	}
}

func TestCounters(t *testing.T) {
	var q Queue
	q.Push(1, ev(0))
	q.Push(2, ev(1))
	q.Pop()
	if q.Scheduled() != 2 || q.Dispatched() != 1 {
		t.Fatalf("scheduled=%d dispatched=%d, want 2/1", q.Scheduled(), q.Dispatched())
	}
	q.Reset()
	if q.Len() != 0 || q.Scheduled() != 0 || q.Dispatched() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestGrowPreservesAndPresizes(t *testing.T) {
	var q Queue
	q.Push(3, ev(1))
	q.Push(1, ev(2))
	q.Grow(1024)
	if cap(q.heap) < 1024 {
		t.Fatalf("Grow left cap %d", cap(q.heap))
	}
	if e, _ := q.Pop(); e.A != 2 {
		t.Fatalf("Grow reordered the heap: %+v", e)
	}
	base := cap(q.heap)
	for i := 0; i < 1000; i++ {
		q.Push(float64(10+i), ev(i))
	}
	if cap(q.heap) != base {
		t.Fatal("pre-sized heap re-allocated under its capacity")
	}
}

// TestPushPastPanics covers the satellite guard: once an event at time t
// has been popped, pushing before t is caught by the queue itself, not
// only by the Clock wrapper.
func TestPushPastPanics(t *testing.T) {
	var q Queue
	q.Push(5, ev(1))
	q.Pop()
	q.Push(5, ev(2)) // exactly at the horizon is legal
	defer func() {
		if recover() == nil {
			t.Fatal("push into the already-popped past did not panic")
		}
	}()
	q.Push(4.999, ev(3))
}

// TestHeapPropertyRandom is a property test: any random interleaving of
// pushes and pops of typed events must preserve the (time, seq) dispatch
// order — the popped event is always the (time, insertion)-minimal pending
// one — and the set of popped events must equal the set pushed.
func TestHeapPropertyRandom(t *testing.T) {
	type rec struct {
		time float64
		id   int
	}
	err := quick.Check(func(seed uint64, opsRaw uint16) bool {
		src := rng.New(seed)
		ops := int(opsRaw%500) + 1
		var q Queue
		var mirror []rec // reference model: pending events
		next := 0
		horizon := 0.0
		checkPop := func() bool {
			e, ok := q.Pop()
			if !ok {
				return false
			}
			// The popped event must be the (time, id)-minimal pending one.
			best := 0
			for i, r := range mirror {
				if r.time < mirror[best].time ||
					(r.time == mirror[best].time && r.id < mirror[best].id) {
					best = i
				}
			}
			want := mirror[best]
			mirror = append(mirror[:best], mirror[best+1:]...)
			horizon = want.time
			return e.Time == want.time && int(e.A) == want.id
		}
		for i := 0; i < ops; i++ {
			if q.Len() == 0 || src.Float64() < 0.6 {
				// Offset by the pop horizon so the past-push guard never
				// fires; the guard has its own test.
				tm := horizon + float64(src.Intn(50))
				q.Push(tm, ev(next))
				mirror = append(mirror, rec{tm, next})
				next++
			} else if !checkPop() {
				return false
			}
		}
		for q.Len() > 0 {
			if !checkPop() {
				return false
			}
		}
		return len(mirror) == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvances(t *testing.T) {
	c := NewClock()
	c.At(10, ev(3))
	c.At(5, ev(2))
	c.After(1, ev(1))
	e, ok := c.Next()
	if !ok || e.A != 1 || c.Now() != 1 {
		t.Fatalf("first event wrong: %+v now=%v", e, c.Now())
	}
	e, _ = c.Next()
	if e.A != 2 || c.Now() != 5 {
		t.Fatalf("second event wrong: %+v now=%v", e, c.Now())
	}
	e, _ = c.Next()
	if e.A != 3 || c.Now() != 10 {
		t.Fatalf("third event wrong: %+v now=%v", e, c.Now())
	}
	if _, ok := c.Next(); ok {
		t.Fatal("drained clock still produced an event")
	}
}

func TestClockCausalityPanics(t *testing.T) {
	c := NewClock()
	c.At(5, ev(0))
	c.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(4, ev(1))
}

func TestClockNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewClock().After(-0.1, ev(0))
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.At(3, ev(0))
	c.Next()
	c.Reset()
	if c.Now() != 0 || c.Pending() != 0 {
		t.Fatal("Reset did not rewind clock")
	}
	c.At(0.5, ev(1)) // must not panic after reset
}

func BenchmarkPushPop(b *testing.B) {
	src := rng.New(1)
	var q Queue
	// Keep a standing population of 10k events, push+pop per iteration —
	// the simulator's steady-state access pattern.
	for i := 0; i < 10000; i++ {
		q.Push(src.Float64()*1000, ev(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := q.Pop()
		q.Push(e.Time+src.Float64(), e)
	}
}
