package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Push(tm, tm)
	}
	var got []float64
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Time)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("pop order not sorted: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("popped %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(7.0, i)
	}
	for i := 0; i < 100; i++ {
		e, ok := q.Pop()
		if !ok || e.Payload.(int) != i {
			t.Fatalf("tie-break broke FIFO at %d: got %v", i, e.Payload)
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue Len != 0")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(1, "a")
	e1, _ := q.Peek()
	e2, _ := q.Peek()
	if e1.Payload != "a" || e2.Payload != "a" || q.Len() != 1 {
		t.Fatal("Peek modified the queue")
	}
}

func TestCounters(t *testing.T) {
	var q Queue
	q.Push(1, nil)
	q.Push(2, nil)
	q.Pop()
	if q.Scheduled() != 2 || q.Dispatched() != 1 {
		t.Fatalf("scheduled=%d dispatched=%d, want 2/1", q.Scheduled(), q.Dispatched())
	}
	q.Reset()
	if q.Len() != 0 || q.Scheduled() != 0 || q.Dispatched() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

// TestHeapPropertyRandom is a property test: any interleaving of pushes and
// pops must emit timestamps in non-decreasing order, and the set of popped
// payloads must equal the set of pushed payloads.
func TestHeapPropertyRandom(t *testing.T) {
	type rec struct {
		time float64
		id   int
	}
	err := quick.Check(func(seed uint64, opsRaw uint16) bool {
		src := rng.New(seed)
		ops := int(opsRaw%500) + 1
		var q Queue
		var mirror []rec // reference model: pending events
		next := 0
		checkPop := func() bool {
			e, ok := q.Pop()
			if !ok {
				return false
			}
			// The popped event must be the (time, id)-minimal pending one.
			best := 0
			for i, r := range mirror {
				if r.time < mirror[best].time ||
					(r.time == mirror[best].time && r.id < mirror[best].id) {
					best = i
				}
			}
			want := mirror[best]
			mirror = append(mirror[:best], mirror[best+1:]...)
			return e.Time == want.time && e.Payload.(int) == want.id
		}
		for i := 0; i < ops; i++ {
			if q.Len() == 0 || src.Float64() < 0.6 {
				tm := float64(src.Intn(50))
				q.Push(tm, next)
				mirror = append(mirror, rec{tm, next})
				next++
			} else if !checkPop() {
				return false
			}
		}
		for q.Len() > 0 {
			if !checkPop() {
				return false
			}
		}
		return len(mirror) == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvances(t *testing.T) {
	c := NewClock()
	c.At(10, "b")
	c.At(5, "a")
	c.After(1, "first")
	e, ok := c.Next()
	if !ok || e.Payload != "first" || c.Now() != 1 {
		t.Fatalf("first event wrong: %+v now=%v", e, c.Now())
	}
	e, _ = c.Next()
	if e.Payload != "a" || c.Now() != 5 {
		t.Fatalf("second event wrong: %+v now=%v", e, c.Now())
	}
	e, _ = c.Next()
	if e.Payload != "b" || c.Now() != 10 {
		t.Fatalf("third event wrong: %+v now=%v", e, c.Now())
	}
	if _, ok := c.Next(); ok {
		t.Fatal("drained clock still produced an event")
	}
}

func TestClockCausalityPanics(t *testing.T) {
	c := NewClock()
	c.At(5, nil)
	c.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(4, nil)
}

func TestClockNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewClock().After(-0.1, nil)
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.At(3, nil)
	c.Next()
	c.Reset()
	if c.Now() != 0 || c.Pending() != 0 {
		t.Fatal("Reset did not rewind clock")
	}
	c.At(0.5, nil) // must not panic after reset
}

func BenchmarkPushPop(b *testing.B) {
	src := rng.New(1)
	var q Queue
	// Keep a standing population of 10k events, push+pop per iteration —
	// the simulator's steady-state access pattern.
	for i := 0; i < 10000; i++ {
		q.Push(src.Float64()*1000, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := q.Pop()
		q.Push(e.Time+src.Float64(), nil)
	}
}
