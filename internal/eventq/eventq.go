// Package eventq implements the pending-event set of the discrete-event
// simulator: a binary min-heap keyed by (time, sequence). The sequence
// number breaks ties in insertion order, which makes simulations fully
// deterministic even when many events share a timestamp.
//
// Event is a small typed record (a tagged union) rather than an opaque
// interface payload: the heap stores events inline, so scheduling and
// dispatching never allocates — the property the simulator's hot path is
// built around.
package eventq

import (
	"fmt"

	"dup/internal/proto"
)

// Kind discriminates the event union. The simulator owns the meaning of
// each kind; the queue only orders them.
type Kind uint8

const (
	// KindNone is the zero Kind; it marks an unset event.
	KindNone Kind = iota
	// KindMessage delivers Msg to Msg.To.
	KindMessage
	// KindArrival is a workload query arrival at node A.
	KindArrival
	// KindRefresh is the authority issuing index version A.
	KindRefresh
	// KindInterval is the end of TTL interval A.
	KindInterval
	// KindFail picks and fails a random alive node.
	KindFail
	// KindDetect is the keep-alive timeout for failed node A.
	KindDetect
	// KindRecover rejoins node A blank.
	KindRecover
	// KindRetry re-issues a query from origin A that already spent B hops.
	KindRetry
)

var kindNames = [...]string{
	"none", "message", "arrival", "refresh", "interval",
	"fail", "detect", "recover", "retry",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is a scheduled simulator callback: a tagged union of one message
// pointer and one inline integer operand, stored inline in the heap so
// scheduling is allocation-free. Msg is set only for KindMessage; A
// carries the node/version/interval operand of the other kinds (callers
// with two small operands pack them into A). The record is deliberately
// 32 bytes — heap sifts copy whole events, so the kind shares a word with
// the insertion sequence: key = seq<<8 | kind, which orders exactly like
// seq because the low byte is constant per event.
type Event struct {
	Time float64        // simulated seconds
	Msg  *proto.Message // KindMessage payload
	A    int64          // inline operand (node, version, interval, packed pair)
	key  uint64         // seq<<8 | kind, assigned by Push
}

// Kind returns the event's discriminator.
func (e Event) Kind() Kind { return Kind(e.key & 0xff) }

// Ev builds a typed event carrying operand a.
func Ev(k Kind, a int64) Event { return Event{A: a, key: uint64(k)} }

// Message builds a KindMessage event delivering m.
func Message(m *proto.Message) Event { return Event{Msg: m, key: uint64(KindMessage)} }

// Queue is a min-heap of events ordered by (Time, insertion sequence).
// The zero value is an empty, ready-to-use queue.
type Queue struct {
	heap    []Event
	nextSeq uint64
	popped  uint64
	horizon float64 // timestamp of the last popped event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Scheduled returns the total number of events ever pushed.
func (q *Queue) Scheduled() uint64 { return q.nextSeq }

// Dispatched returns the total number of events ever popped.
func (q *Queue) Dispatched() uint64 { return q.popped }

// Grow pre-sizes the heap for at least n pending events, so a simulation
// with a known steady-state population never re-allocates the heap.
func (q *Queue) Grow(n int) {
	if n <= cap(q.heap) {
		return
	}
	heap := make([]Event, len(q.heap), n)
	copy(heap, q.heap)
	q.heap = heap
}

// Push schedules ev at the given simulated time. Scheduling in the past —
// before an event that was already popped — is always a simulator bug, so
// Push guards it with a cheap comparison against the last popped timestamp
// and panics on violation.
func (q *Queue) Push(t float64, ev Event) {
	if t < q.horizon {
		panic(fmt.Sprintf("eventq: push at %v before already-popped time %v", t, q.horizon))
	}
	ev.Time = t
	ev.key = q.nextSeq<<8 | ev.key&0xff
	q.nextSeq++
	q.heap = append(q.heap, ev)
	q.up(len(q.heap) - 1)
}

// Peek returns the earliest pending event without removing it. The second
// result is false when the queue is empty.
func (q *Queue) Peek() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest pending event. The second result is
// false when the queue is empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	// The vacated slot is left as-is: a stale Msg pointer in the slack
	// only pins a pooled message that stays reachable anyway, and skipping
	// the 32-byte clearing write matters at tens of millions of pops.
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.popped++
	q.horizon = top.Time
	return top, true
}

// Reset discards all pending events and counters.
func (q *Queue) Reset() {
	clear(q.heap)
	q.heap = q.heap[:0]
	q.nextSeq = 0
	q.popped = 0
	q.horizon = 0
}

// less orders events by (Time, insertion sequence); comparing the packed
// keys is equivalent to comparing sequences because the kind byte is a
// tie-break below a strictly increasing sequence.
func less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.key < b.key
}

// up and down sift with a hole instead of pairwise swaps: the displaced
// event is held in a register and written exactly once, halving the copy
// traffic of the simulator's hottest loop.
func (q *Queue) up(i int) {
	e := q.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := &q.heap[parent]
		if !less(&e, p) {
			break
		}
		q.heap[i] = *p
		i = parent
	}
	q.heap[i] = e
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	e := q.heap[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && less(&q.heap[right], &q.heap[left]) {
			smallest = right
		}
		if !less(&q.heap[smallest], &e) {
			break
		}
		q.heap[i] = q.heap[smallest]
		i = smallest
	}
	q.heap[i] = e
}

// Clock is a monotonically advancing simulated clock coupled to a Queue.
// It enforces causality: scheduling in the past panics.
type Clock struct {
	now float64
	q   Queue
}

// NewClock returns a clock at time zero with an empty event queue.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Pending returns the number of events waiting to run.
func (c *Clock) Pending() int { return c.q.Len() }

// Dispatched returns the total number of events executed so far.
func (c *Clock) Dispatched() uint64 { return c.q.Dispatched() }

// Grow pre-sizes the pending-event heap for at least n events.
func (c *Clock) Grow(n int) { c.q.Grow(n) }

// At schedules ev at absolute time t. It panics if t is before Now —
// a causality violation that always indicates a simulator bug.
func (c *Clock) At(t float64, ev Event) {
	if t < c.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", t, c.now))
	}
	c.q.Push(t, ev)
}

// After schedules ev delay seconds from Now. Negative delays panic.
func (c *Clock) After(delay float64, ev Event) {
	if delay < 0 {
		panic(fmt.Sprintf("eventq: negative delay %v", delay))
	}
	c.q.Push(c.now+delay, ev)
}

// Next pops the earliest event, advances the clock to its timestamp and
// returns it. The second result is false when no events remain.
func (c *Clock) Next() (Event, bool) {
	e, ok := c.q.Pop()
	if !ok {
		return Event{}, false
	}
	c.now = e.Time
	return e, true
}

// Reset rewinds the clock to zero and clears all pending events.
func (c *Clock) Reset() {
	c.now = 0
	c.q.Reset()
}
