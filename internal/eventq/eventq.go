// Package eventq implements the pending-event set of the discrete-event
// simulator: a binary min-heap keyed by (time, sequence). The sequence
// number breaks ties in insertion order, which makes simulations fully
// deterministic even when many events share a timestamp.
package eventq

import "fmt"

// Event is a scheduled callback. The payload is opaque to the queue; the
// simulator dispatches on it.
type Event struct {
	Time    float64 // simulated seconds
	Payload any
	seq     uint64
}

// Queue is a min-heap of events ordered by (Time, insertion sequence).
// The zero value is an empty, ready-to-use queue.
type Queue struct {
	heap    []Event
	nextSeq uint64
	popped  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Scheduled returns the total number of events ever pushed.
func (q *Queue) Scheduled() uint64 { return q.nextSeq }

// Dispatched returns the total number of events ever popped.
func (q *Queue) Dispatched() uint64 { return q.popped }

// Push schedules payload at the given simulated time. Pushing an event in
// the past relative to events already popped is the caller's bug; the queue
// cannot detect it by itself, so the simulator wraps Push with a clock check.
func (q *Queue) Push(t float64, payload any) {
	e := Event{Time: t, Payload: payload, seq: q.nextSeq}
	q.nextSeq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
}

// Peek returns the earliest pending event without removing it. The second
// result is false when the queue is empty.
func (q *Queue) Peek() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest pending event. The second result is
// false when the queue is empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.popped++
	return top, true
}

// Reset discards all pending events and counters.
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	q.nextSeq = 0
	q.popped = 0
}

func (q *Queue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// Clock is a monotonically advancing simulated clock coupled to a Queue.
// It enforces causality: scheduling in the past panics.
type Clock struct {
	now float64
	q   Queue
}

// NewClock returns a clock at time zero with an empty event queue.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Pending returns the number of events waiting to run.
func (c *Clock) Pending() int { return c.q.Len() }

// Dispatched returns the total number of events executed so far.
func (c *Clock) Dispatched() uint64 { return c.q.Dispatched() }

// At schedules payload at absolute time t. It panics if t is before Now —
// a causality violation that always indicates a simulator bug.
func (c *Clock) At(t float64, payload any) {
	if t < c.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", t, c.now))
	}
	c.q.Push(t, payload)
}

// After schedules payload delay seconds from Now. Negative delays panic.
func (c *Clock) After(delay float64, payload any) {
	if delay < 0 {
		panic(fmt.Sprintf("eventq: negative delay %v", delay))
	}
	c.q.Push(c.now+delay, payload)
}

// Next pops the earliest event, advances the clock to its timestamp and
// returns it. The second result is false when no events remain.
func (c *Clock) Next() (Event, bool) {
	e, ok := c.q.Pop()
	if !ok {
		return Event{}, false
	}
	c.now = e.Time
	return e, true
}

// Reset rewinds the clock to zero and clears all pending events.
func (c *Clock) Reset() {
	c.now = 0
	c.q.Reset()
}
