package proto

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest:      "request",
		KindReply:        "reply",
		KindPush:         "push",
		KindSubscribe:    "subscribe",
		KindUnsubscribe:  "unsubscribe",
		KindSubstitute:   "substitute",
		KindInterest:     "interest",
		KindUninterest:   "uninterest",
		KindKeepAlive:    "keepalive",
		KindKeepAliveAck: "keepalive-ack",
		KindAck:          "ack",
		KindJoin:         "join",
		KindLeave:        "leave",
		KindState:        "state",
		KindBatch:        "batch",
		KindPrepare:      "prepare",
		KindPromise:      "promise",
		KindAccept:       "accept",
		KindCommit:       "commit",
		KindLease:        "lease",
		KindRootAnnounce: "root-announce",
		KindReconfig:     "reconfig",
		KindStateXfer:    "state-xfer",
	}
	if len(cases) != NumKinds {
		t.Errorf("test covers %d kinds, NumKinds = %d", len(cases), NumKinds)
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindControl(t *testing.T) {
	control := []Kind{KindSubscribe, KindUnsubscribe, KindSubstitute, KindInterest, KindUninterest}
	data := []Kind{KindRequest, KindReply, KindPush, KindKeepAlive, KindKeepAliveAck, KindAck, KindJoin, KindLeave, KindState, KindBatch,
		KindPrepare, KindPromise, KindAccept, KindCommit, KindLease}
	for _, k := range control {
		if !k.Control() {
			t.Errorf("%v should be a control kind", k)
		}
	}
	for _, k := range data {
		if k.Control() {
			t.Errorf("%v should not be a control kind", k)
		}
	}
}

func TestMessagePoolRoundTrip(t *testing.T) {
	m := NewMessage()
	if m.Kind != 0 || m.To != 0 || len(m.Path) != 0 || m.Piggy != nil {
		t.Fatalf("NewMessage returned a dirty message: %+v", m)
	}
	m.Kind = KindRequest
	m.To, m.Origin, m.Hops, m.Key = 3, 7, 2, 4
	m.Seq, m.Version, m.Expiry = 5, 9, 100
	m.Piggy = &Piggyback{Kind: KindSubscribe, Subject: 7}
	m.Path = append(m.Path, 7, 3, 1)
	pathCap := cap(m.Path)
	Release(m)

	// The released message must come back zeroed, with its path capacity
	// preserved for reuse (the pool is per-P, so the very next Get on the
	// same goroutine returns the value just Put).
	got := NewMessage()
	if got.Kind != 0 || got.To != 0 || got.Origin != 0 || got.Hops != 0 || got.Key != 0 ||
		got.Seq != 0 || got.Version != 0 || got.Expiry != 0 || got.Piggy != nil ||
		len(got.Path) != 0 || len(got.Batch) != 0 {
		t.Fatalf("pooled message not reset: %+v", got)
	}
	if got == m && cap(got.Path) != pathCap {
		t.Fatalf("reused message lost its path capacity: %d != %d", cap(got.Path), pathCap)
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	m := NewMessage()
	m.Kind, m.To, m.Origin, m.Seq, m.Version, m.Expiry = KindPush, 4, 1, 7, 3, 12.5
	m.Path = append(m.Path, 1, 2)
	m.Piggy = &Piggyback{Kind: KindSubscribe, Subject: 6}
	c := Clone(m)
	if c == m || &c.Path[0] == &m.Path[0] || c.Piggy == m.Piggy {
		t.Fatal("clone shares storage with the original")
	}
	if c.Kind != m.Kind || c.To != m.To || c.Seq != m.Seq || c.Version != m.Version ||
		c.Expiry != m.Expiry || len(c.Path) != 2 || c.Path[0] != 1 || c.Path[1] != 2 ||
		*c.Piggy != *m.Piggy {
		t.Fatalf("clone differs from original: %+v vs %+v", c, m)
	}
	m.Path[0] = 99
	if c.Path[0] != 1 {
		t.Fatal("mutating the original changed the clone")
	}
	m.Piggy = nil
	Release(m)
	Release(c)
}

func TestInUseBalancesAcrossNewAndRelease(t *testing.T) {
	base := InUse()
	msgs := make([]*Message, 10)
	for i := range msgs {
		msgs[i] = NewMessage()
	}
	if got := InUse() - base; got != 10 {
		t.Fatalf("InUse rose by %d, want 10", got)
	}
	clone := Clone(msgs[0])
	if got := InUse() - base; got != 11 {
		t.Fatalf("InUse after clone rose by %d, want 11", got)
	}
	Release(clone)
	for _, m := range msgs {
		Release(m)
	}
	if got := InUse() - base; got != 0 {
		t.Fatalf("InUse did not return to baseline: %+d", got)
	}
}

func TestBatchReleaseCascades(t *testing.T) {
	base := InUse()
	env := NewMessage()
	env.Kind = KindBatch
	env.To, env.Origin, env.Seq = 3, 1, 99
	for i := 0; i < 4; i++ {
		sub := NewMessage()
		sub.Kind, sub.To, sub.Key, sub.Seq = KindPush, 3, i, int64(i+1)
		env.Batch = append(env.Batch, sub)
	}
	if got := InUse() - base; got != 5 {
		t.Fatalf("InUse rose by %d, want 5", got)
	}
	c := Clone(env)
	if len(c.Batch) != 4 || c.Batch[0] == env.Batch[0] {
		t.Fatalf("clone did not deep-copy the batch: %+v", c)
	}
	if c.Batch[2].Key != 2 || c.Batch[2].Seq != 3 {
		t.Fatalf("cloned member differs: %+v", c.Batch[2])
	}
	if got := InUse() - base; got != 10 {
		t.Fatalf("InUse after clone rose by %d, want 10", got)
	}
	Release(env)
	Release(c)
	if got := InUse() - base; got != 0 {
		t.Fatalf("batch release leaked %d messages", got)
	}
}

func TestSetPiggyUsesInlineStorage(t *testing.T) {
	m := NewMessage()
	m.SetPiggy(KindSubscribe, 7)
	if m.Piggy == nil || m.Piggy.Kind != KindSubscribe || m.Piggy.Subject != 7 {
		t.Fatalf("SetPiggy: %+v", m.Piggy)
	}
	if m.Piggy != &m.piggyStore {
		t.Fatal("SetPiggy allocated instead of using the inline store")
	}
	c := Clone(m)
	if c.Piggy == m.Piggy || *c.Piggy != *m.Piggy {
		t.Fatalf("clone shares or mangles the piggyback: %p vs %p", c.Piggy, m.Piggy)
	}
	Release(m)
	Release(c)
}

func TestMessageString(t *testing.T) {
	cases := []struct {
		m    Message
		want string
	}{
		{Message{Kind: KindRequest, To: 3, Origin: 7, Hops: 2}, "request{to:3 origin:7 hops:2}"},
		{Message{Kind: KindReply, To: 7, Origin: 7, Version: 4}, "reply{to:7 origin:7 v:4}"},
		{Message{Kind: KindPush, To: 5, Origin: 0, Version: 2}, "push{to:5 from:0 v:2}"},
		{Message{Kind: KindSubscribe, To: 4, Subject: 5}, "subscribe{to:4 subject:5}"},
		{Message{Kind: KindSubstitute, To: 1, Old: 5, New: 2}, "substitute{to:1 old:5 new:2}"},
		{Message{Kind: KindKeepAlive, To: 0}, "keepalive{to:0}"},
		{Message{Kind: KindAck, To: 2, Seq: 9, Subject: int(KindPush)}, "ack{to:2 seq:9 of:push}"},
		{Message{Kind: KindJoin, To: 2, Origin: 9, Version: 3}, "join{to:2 origin:9 epoch:3}"},
		{Message{Kind: KindLeave, To: 2, Origin: 9, Subject: -1}, "leave{to:2 origin:9 rep:-1}"},
		{Message{Kind: KindState, To: 9, Origin: 2, Version: 7}, "state{to:9 from:2 v:7}"},
		{Message{Kind: KindBatch, To: 3, Origin: 1, Seq: 9}, "batch{to:3 from:1 seq:9 n:0}"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
