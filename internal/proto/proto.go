// Package proto defines the message vocabulary of the index caching and
// update propagation protocols. The same kinds are used by the
// discrete-event simulator and by the live goroutine network; only the
// transport differs.
package proto

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind identifies a protocol message type.
type Kind uint8

const (
	// KindRequest is a query for the index travelling up the index search
	// tree toward the authority node.
	KindRequest Kind = iota
	// KindReply carries the index back along the reverse request path;
	// every node on the way caches it (path caching).
	KindReply
	// KindPush proactively delivers a fresh index version. In CUP a push
	// travels hop-by-hop down the index search tree; in DUP it travels
	// directly between DUP-tree neighbours.
	KindPush
	// KindSubscribe announces that Subject wants index updates; it travels
	// upstream until the root or an existing DUP-tree node absorbs it
	// (paper Fig. 3 B).
	KindSubscribe
	// KindUnsubscribe withdraws Subject's interest (paper Fig. 3 E).
	KindUnsubscribe
	// KindSubstitute asks upstream nodes to replace Old with New in their
	// subscriber lists (paper Fig. 3 C).
	KindSubstitute
	// KindInterest is CUP's interest announcement: it marks the sender's
	// branch as interested at each node on the way to the root.
	KindInterest
	// KindUninterest withdraws a CUP branch interest marking.
	KindUninterest
	// KindKeepAlive is the hosting node's periodic liveness signal to the
	// authority node. It is not charged to the query cost metric: the
	// underlying network requires it for all schemes alike.
	KindKeepAlive
	// KindKeepAliveAck answers a keep-alive. The live network uses it for
	// ack-based failure detection; the simulator models detection delay
	// directly and never sends it.
	KindKeepAliveAck
	// KindAck acknowledges one reliable message (push, subscribe,
	// unsubscribe, substitute) by echoing its sender-assigned Seq. Subject
	// carries the acknowledged kind so the sender can keep per-kind
	// counters. Acks themselves are best-effort: a lost ack just means one
	// idempotent retransmission. The simulator's lossless event queue never
	// sends them.
	KindAck
	// KindJoin announces a node attaching to a running cluster. The joiner
	// sends it (reliably) to the parent the directory assigned; the parent
	// adopts the joiner into its keep-alive fabric and answers with a
	// KindState transfer when it holds a valid index copy. Version carries
	// the directory membership epoch at send time.
	KindJoin
	// KindLeave announces a graceful departure. Sent to the parent with
	// Subject = the leaver's remaining representative subscriber (or -1),
	// it runs the paper's substitute/unsubscribe logic proactively instead
	// of waiting for keep-alive death; copies sent to the leaver's
	// keep-alive children (Subject = -1) trigger immediate re-homing.
	KindLeave
	// KindState is a point-to-point index state transfer (Version, Expiry)
	// answering a KindJoin, so a rejoining subscriber re-syncs in one
	// message instead of a TTL of misses. Best-effort: a lost transfer
	// degrades to the ordinary query path.
	KindState
	// KindBatch is a coalescing envelope: several messages bound for the
	// same neighbour, sent as one frame (Batch holds the members). When the
	// envelope carries reliable members its own Seq is set and one ack for
	// the envelope settles all of them at once. Envelopes never nest.
	KindBatch
	// KindPrepare opens a replica leadership round (dup/internal/replica):
	// a candidate authority asks every member of the replica set to promise
	// the term in Old and to report its accepted log. Expiry proposes the
	// candidate's lease deadline. Replica kinds are not in the reliable
	// class — the replica layer retransmits on its own tick until quorum.
	KindPrepare
	// KindPromise answers the replica protocol's round-trips. Subject
	// discriminates: 0 = prepare promise (Path carries key,version pairs of
	// the sender's accepted log), 1 = accept ack (Key, Seq = the sender's
	// accepted version for that key), 2 = lease ack (Seq echoes the
	// renewal counter). Old always carries the term being answered.
	KindPromise
	// KindAccept replicates one ordered log entry: the leaseholder asks a
	// replica to durably accept (Key, Version, Expiry) under term Old.
	KindAccept
	// KindCommit tells a replica that a quorum has accepted (Key, Version)
	// under term Old, advancing its committed watermark. Advisory: safety
	// rests on the accepted log, commit only bounds failover work.
	KindCommit
	// KindLease renews the leaseholder's time-based lease: under term Old,
	// renewal counter Seq, proposed deadline Expiry. A quorum of lease acks
	// lets the leader keep serving reads and pushes locally.
	KindLease
	// KindRootAnnounce is the root's soft-state beacon: the authority
	// periodically bumps a root sequence number (Seq) and floods it down
	// the keep-alive tree (Subject = the announcing root, Origin = the
	// forwarding neighbour). A node whose observed root sequence stops
	// advancing times out its root path and re-selects a parent by score
	// instead of waiting for a keep-alive miss. Best-effort: the next
	// beacon refreshes whatever a lost one missed.
	KindRootAnnounce
	// KindReconfig carries the replica set's membership-change protocol
	// (dup/internal/replica). Subject discriminates: 0 = joint config
	// proposal (Path carries old members then new members, New = the old
	// set's length), 1 = final config (Path carries the new members),
	// 2 = config ack (Seq echoes the acked epoch), 3 = config request
	// from a member that saw a newer epoch stamped on a frame. Old always
	// carries the proposing leaseholder's term, Seq the config epoch.
	KindReconfig
	// KindStateXfer is the snapshot-style state transfer that brings a
	// replacement member's accepted log up to date before it gains a
	// vote. Subject discriminates: 0 = begin (Path carries the current
	// member set, Version the sender's failover floor, New the chunk
	// count), 1 = a chunk of the accepted log (Path carries key,version
	// pairs, Version the chunk index), 2 = the replacement's completion
	// ack. Old carries the sending leaseholder's term, Seq the config
	// epoch.
	KindStateXfer
)

var kindNames = [...]string{
	"request", "reply", "push", "subscribe", "unsubscribe",
	"substitute", "interest", "uninterest", "keepalive", "keepalive-ack",
	"ack", "join", "leave", "state", "batch",
	"prepare", "promise", "accept", "commit", "lease",
	"root-announce", "reconfig", "state-xfer",
}

// NumKinds is the number of defined message kinds; Kind values in
// [0, NumKinds) are valid. The wire codec rejects anything else.
const NumKinds = len(kindNames)

// String returns the lower-case message kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Control reports whether the kind is a tree-maintenance message
// (subscribe, unsubscribe, substitute, interest, uninterest) — the class
// the paper charges to cost as "messages used to propagate interests" and
// "messages used to maintain the DUP tree".
func (k Kind) Control() bool {
	switch k {
	case KindSubscribe, KindUnsubscribe, KindSubstitute, KindInterest, KindUninterest:
		return true
	}
	return false
}

// Message is one in-flight protocol message in the discrete-event
// simulator. Field use by kind:
//
//	Request:     To (next hop), Origin, Hops, Path (nodes visited)
//	Reply:       To, Origin, Hops (of the request), Path (remaining
//	             reverse path), Version, Expiry
//	Push:        To, Version, Expiry, Origin (the pushing node)
//	Subscribe:   To, Subject
//	Unsubscribe: To, Subject
//	Substitute:  To, Old, New
//	Interest:    To, Subject (the child whose branch became interested)
//	Uninterest:  To, Subject
type Message struct {
	Kind    Kind
	To      int        // delivery target (next hop)
	Origin  int        // query originator / pushing node / keep-alive sender
	Subject int        // subscribe/unsubscribe/interest subject
	Old     int        // substitute: node to remove
	New     int        // substitute: node to insert
	Key     int        // which keyed index tree the message belongs to (0 = default)
	Seq     int64      // request/reply correlation id (live transports only)
	Version int64      // index version carried by replies and pushes
	Expiry  float64    // absolute expiry of that version
	Hops    int        // hops travelled by the request (latency accounting)
	Path    []int      // request: visited nodes; reply: remaining reverse path
	Batch   []*Message // KindBatch only: the coalesced member messages
	Piggy   *Piggyback

	// piggyStore is inline backing for Piggy (see SetPiggy), so decoding a
	// piggybacked message does not allocate.
	piggyStore Piggyback
}

// SetPiggy attaches a piggyback using the message's inline storage, so hot
// paths (the wire decoder, Clone) stay allocation-free. The Piggy pointer
// is only valid while the caller owns the message.
func (m *Message) SetPiggy(k Kind, subject int) {
	m.piggyStore = Piggyback{Kind: k, Subject: subject}
	m.Piggy = &m.piggyStore
}

// pool recycles Message values between simulator runs and hops. Pooled
// messages keep their Path backing array, so a steady-state simulation
// reuses the same few hundred messages (and path slices) indefinitely
// instead of allocating one per send.
var pool = sync.Pool{New: func() any { return new(Message) }}

// inUse tracks NewMessage calls minus Release calls, so harnesses can
// assert that every pooled message handed out came back (no leaks through
// abandoned inboxes or queues). An atomic add per checkout is noise next
// to the send it accompanies and allocates nothing, so the hot path keeps
// its alloc-free guarantee.
var inUse atomic.Int64

// InUse reports how many pooled messages are currently checked out
// (NewMessage minus Release). Messages built as plain literals and then
// Released skew the count down, so callers comparing before/after a
// workload should take a baseline snapshot rather than assume zero.
func InUse() int64 { return inUse.Load() }

// NewMessage returns a zeroed Message, reusing a pooled one when
// available. Callers hand the message to the transport with Send; the
// transport releases it after final delivery.
func NewMessage() *Message {
	inUse.Add(1)
	return pool.Get().(*Message)
}

// Clone returns a pooled deep copy of m: the Path contents are copied into
// the clone's own backing array, any Piggyback is duplicated into the
// clone's inline storage, and batch members are cloned recursively, so the
// clone and the original can be released independently. The fault
// injection layer uses it to duplicate in-flight messages.
func Clone(m *Message) *Message {
	c := NewMessage()
	path, batch := c.Path, c.Batch
	*c = *m
	c.Path = append(path[:0], m.Path...)
	c.Batch = batch[:0]
	for _, sub := range m.Batch {
		c.Batch = append(c.Batch, Clone(sub))
	}
	if m.Piggy != nil {
		c.piggyStore = *m.Piggy
		c.Piggy = &c.piggyStore
	}
	return c
}

// Reset zeroes every field but keeps the Path and Batch capacity for
// reuse. It does not release batch members — that is Release's job; a
// caller that detached them resets with an empty Batch.
func (m *Message) Reset() {
	path := m.Path[:0]
	batch := m.Batch
	for i := range batch {
		batch[i] = nil // do not pin released members past the next reuse
	}
	*m = Message{Path: path, Batch: batch[:0]}
}

// Release resets m and returns it to the pool, first releasing any batch
// members still attached (an envelope owns its members). The caller must
// be the message's sole owner: after Release any retained pointer to m (or
// to its Path slice) is invalid, because the next NewMessage may hand it
// out again.
func Release(m *Message) {
	for _, sub := range m.Batch {
		if sub != nil {
			Release(sub)
		}
	}
	inUse.Add(-1)
	m.Reset()
	pool.Put(m)
}

// Piggyback is a control item riding on a request packet instead of
// travelling as its own message, so its hops are free: the paper lets a
// node "piggyback subscribe(N6) by setting the interest bit in the request
// packet it sends out". Each node a carrying request visits processes the
// piggyback; the scheme decides whether it continues riding. When the
// request is served before the piggyback is absorbed, the remainder
// continues as an ordinary (charged) control message.
type Piggyback struct {
	Kind    Kind // KindSubscribe (DUP) or KindInterest (CUP)
	Subject int
}

// String renders a compact human-readable form for traces.
func (m *Message) String() string {
	switch m.Kind {
	case KindRequest:
		return fmt.Sprintf("request{to:%d origin:%d hops:%d}", m.To, m.Origin, m.Hops)
	case KindReply:
		return fmt.Sprintf("reply{to:%d origin:%d v:%d}", m.To, m.Origin, m.Version)
	case KindPush:
		return fmt.Sprintf("push{to:%d from:%d v:%d}", m.To, m.Origin, m.Version)
	case KindSubscribe, KindUnsubscribe, KindInterest, KindUninterest:
		return fmt.Sprintf("%s{to:%d subject:%d}", m.Kind, m.To, m.Subject)
	case KindSubstitute:
		return fmt.Sprintf("substitute{to:%d old:%d new:%d}", m.To, m.Old, m.New)
	case KindAck:
		return fmt.Sprintf("ack{to:%d seq:%d of:%s}", m.To, m.Seq, Kind(m.Subject))
	case KindJoin:
		return fmt.Sprintf("join{to:%d origin:%d epoch:%d}", m.To, m.Origin, m.Version)
	case KindLeave:
		return fmt.Sprintf("leave{to:%d origin:%d rep:%d}", m.To, m.Origin, m.Subject)
	case KindState:
		return fmt.Sprintf("state{to:%d from:%d v:%d}", m.To, m.Origin, m.Version)
	case KindBatch:
		return fmt.Sprintf("batch{to:%d from:%d seq:%d n:%d}", m.To, m.Origin, m.Seq, len(m.Batch))
	case KindPrepare:
		return fmt.Sprintf("prepare{to:%d from:%d term:%d}", m.To, m.Origin, m.Old)
	case KindPromise:
		return fmt.Sprintf("promise{to:%d from:%d term:%d sub:%d}", m.To, m.Origin, m.Old, m.Subject)
	case KindAccept:
		return fmt.Sprintf("accept{to:%d key:%d term:%d v:%d}", m.To, m.Key, m.Old, m.Version)
	case KindCommit:
		return fmt.Sprintf("commit{to:%d key:%d term:%d v:%d}", m.To, m.Key, m.Old, m.Version)
	case KindLease:
		return fmt.Sprintf("lease{to:%d from:%d term:%d seq:%d}", m.To, m.Origin, m.Old, m.Seq)
	case KindRootAnnounce:
		return fmt.Sprintf("root-announce{to:%d from:%d root:%d seq:%d}", m.To, m.Origin, m.Subject, m.Seq)
	case KindReconfig:
		return fmt.Sprintf("reconfig{to:%d from:%d term:%d epoch:%d sub:%d}", m.To, m.Origin, m.Old, m.Seq, m.Subject)
	case KindStateXfer:
		return fmt.Sprintf("state-xfer{to:%d from:%d term:%d epoch:%d sub:%d}", m.To, m.Origin, m.Old, m.Seq, m.Subject)
	default:
		return fmt.Sprintf("%s{to:%d}", m.Kind, m.To)
	}
}
