package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width table printer for experiment output.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) addRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// emit renders the table: aligned columns for humans, or CSV rows when
// csv is set (plot-friendly; the section headers above the table remain
// as comment-style context lines in either mode).
func (t *table) emit(w io.Writer, csv bool) error {
	if csv {
		return t.writeCSV(w)
	}
	return t.write(w)
}

// writeCSV renders comma-separated rows with minimal quoting (cells
// containing commas or quotes are quoted per RFC 4180).
func (t *table) writeCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	total := len(t.headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// section prints an experiment header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n\n", title)
}
