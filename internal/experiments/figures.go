package experiments

import "io"

// lambdaSweep is the query-rate axis of Figures 4 and 8.
var lambdaSweep = []float64{0.1, 0.3, 1, 3, 10, 30, 100}

// runFig4 reproduces Figure 4: (a) average query latency and (b) cost
// relative to PCX, as functions of the mean query arrival rate λ under
// exponential inter-arrival times.
func runFig4(w io.Writer, opts Options) error {
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, lam := range lambdaSweep {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.Lambda = lam
			jobs = append(jobs, job{key(k, lam), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Figure 4 (a): average query latency vs λ (hops, ±95% CI)")
	t := newTable("λ", "PCX", "CUP", "DUP", "PCX ±CI", "CUP ±CI", "DUP ±CI")
	for _, lam := range lambdaSweep {
		p, c, d := res[key(kindPCX, lam)], res[key(kindCUP, lam)], res[key(kindDUP, lam)]
		t.addRow(lam, p.MeanLatency, c.MeanLatency, d.MeanLatency,
			p.LatencyCI95, c.LatencyCI95, d.LatencyCI95)
	}
	if err := t.emit(w, opts.CSV); err != nil {
		return err
	}
	section(w, "Figure 4 (b): cost relative to PCX vs λ")
	t = newTable("λ", "CUP/PCX", "DUP/PCX")
	for _, lam := range lambdaSweep {
		p, c, d := res[key(kindPCX, lam)], res[key(kindCUP, lam)], res[key(kindDUP, lam)]
		t.addRow(lam, rel(c.MeanCost, p.MeanCost), rel(d.MeanCost, p.MeanCost))
	}
	return t.emit(w, opts.CSV)
}

// runFig5 reproduces Figure 5: cost relative to PCX as the number of nodes
// grows.
func runFig5(w io.Writer, opts Options) error {
	nodes := []int{1024, 2048, 4096, 8192, 16384}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, n := range nodes {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.Nodes = n
			jobs = append(jobs, job{key(k, n), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Figure 5: cost relative to PCX vs number of nodes (λ = 1)")
	t := newTable("Nodes", "CUP/PCX", "DUP/PCX")
	for _, n := range nodes {
		p, c, d := res[key(kindPCX, n)], res[key(kindCUP, n)], res[key(kindDUP, n)]
		t.addRow(n, rel(c.MeanCost, p.MeanCost), rel(d.MeanCost, p.MeanCost))
	}
	return t.emit(w, opts.CSV)
}

// runFig6 reproduces Figure 6: effects of the maximum node degree D on (a)
// latency and (b) relative cost.
func runFig6(w io.Writer, opts Options) error {
	degrees := []int{2, 3, 4, 6, 8, 10}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, d := range degrees {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.MaxDegree = d
			jobs = append(jobs, job{key(k, d), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Figure 6 (a): average query latency vs maximum node degree D (hops)")
	t := newTable("D", "PCX", "CUP", "DUP")
	for _, deg := range degrees {
		p, c, d := res[key(kindPCX, deg)], res[key(kindCUP, deg)], res[key(kindDUP, deg)]
		t.addRow(deg, p.MeanLatency, c.MeanLatency, d.MeanLatency)
	}
	if err := t.emit(w, opts.CSV); err != nil {
		return err
	}
	section(w, "Figure 6 (b): cost relative to PCX vs maximum node degree D")
	t = newTable("D", "CUP/PCX", "DUP/PCX")
	for _, deg := range degrees {
		p, c, d := res[key(kindPCX, deg)], res[key(kindCUP, deg)], res[key(kindDUP, deg)]
		t.addRow(deg, rel(c.MeanCost, p.MeanCost), rel(d.MeanCost, p.MeanCost))
	}
	return t.emit(w, opts.CSV)
}

// runFig7 reproduces Figure 7: effects of the Zipf parameter θ on (a)
// latency and (b) relative cost.
func runFig7(w io.Writer, opts Options) error {
	thetas := []float64{0.5, 1, 1.5, 2, 3, 4}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, th := range thetas {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.Theta = th
			jobs = append(jobs, job{key(k, th), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Figure 7 (a): average query latency vs Zipf parameter θ (hops)")
	t := newTable("θ", "PCX", "CUP", "DUP")
	for _, th := range thetas {
		p, c, d := res[key(kindPCX, th)], res[key(kindCUP, th)], res[key(kindDUP, th)]
		t.addRow(th, p.MeanLatency, c.MeanLatency, d.MeanLatency)
	}
	if err := t.emit(w, opts.CSV); err != nil {
		return err
	}
	section(w, "Figure 7 (b): cost relative to PCX vs Zipf parameter θ")
	t = newTable("θ", "CUP/PCX", "DUP/PCX")
	for _, th := range thetas {
		p, c, d := res[key(kindPCX, th)], res[key(kindCUP, th)], res[key(kindDUP, th)]
		t.addRow(th, rel(c.MeanCost, p.MeanCost), rel(d.MeanCost, p.MeanCost))
	}
	return t.emit(w, opts.CSV)
}

// runFig8 reproduces Figure 8: latency and relative cost under Pareto
// query inter-arrival times with α ∈ {1.05, 1.20}.
func runFig8(w io.Writer, opts Options) error {
	alphas := []float64{1.05, 1.20}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, a := range alphas {
		for _, lam := range lambdaSweep {
			for _, k := range kinds {
				cfg := baseConfig(opts)
				cfg.Pareto = true
				cfg.Alpha = a
				cfg.Lambda = lam
				jobs = append(jobs, job{key(k, a, lam), cfg, k})
			}
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Figure 8 (a): average query latency vs λ under Pareto arrivals (hops)")
	t := newTable("λ",
		"PCX α=1.05", "CUP α=1.05", "DUP α=1.05",
		"PCX α=1.20", "CUP α=1.20", "DUP α=1.20")
	for _, lam := range lambdaSweep {
		row := []any{lam}
		for _, a := range alphas {
			for _, k := range kinds {
				row = append(row, res[key(k, a, lam)].MeanLatency)
			}
		}
		t.addRow(row...)
	}
	if err := t.emit(w, opts.CSV); err != nil {
		return err
	}
	section(w, "Figure 8 (b): cost relative to PCX vs λ under Pareto arrivals")
	t = newTable("λ", "CUP/PCX α=1.05", "DUP/PCX α=1.05", "CUP/PCX α=1.20", "DUP/PCX α=1.20")
	for _, lam := range lambdaSweep {
		row := []any{lam}
		for _, a := range alphas {
			p := res[key(kindPCX, a, lam)]
			row = append(row,
				rel(res[key(kindCUP, a, lam)].MeanCost, p.MeanCost),
				rel(res[key(kindDUP, a, lam)].MeanCost, p.MeanCost))
		}
		t.addRow(row...)
	}
	return t.emit(w, opts.CSV)
}

// rel guards division for the relative-cost columns.
func rel(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
