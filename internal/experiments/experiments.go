// Package experiments regenerates every table and figure of the paper's
// Section IV evaluation, plus the extension/ablation experiments listed in
// DESIGN.md. Each experiment prints the same rows or series the paper
// reports; cmd/dupbench is the CLI front end and bench_test.go wraps each
// experiment in a testing.B benchmark.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"dup/internal/scheme"
	"dup/internal/scheme/cup"
	"dup/internal/scheme/dupscheme"
	"dup/internal/sim"
)

// Scale selects how long each simulation runs.
type Scale int

const (
	// Quick runs 5 TTL cycles (18000 s simulated) per configuration —
	// minutes of wall clock for the full suite; shapes are stable.
	Quick Scale = iota
	// Full runs the paper's 180000 s per configuration.
	Full
)

// String returns "quick" or "full".
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// duration returns simulated seconds for the scale.
func (s Scale) duration() float64 {
	if s == Full {
		return 180000
	}
	return 18000
}

// Options selects how an experiment runs.
type Options struct {
	// Scale picks quick (5 TTL cycles) or full (180000 s) simulations.
	Scale Scale
	// Seed is the base random seed; replica i uses Seed+i.
	Seed uint64
	// Replicas runs every configuration this many times with distinct
	// seeds (and therefore distinct topologies) and reports across-run
	// means; values below 1 are treated as 1.
	Replicas int
	// CSV emits machine-readable comma-separated rows instead of aligned
	// tables.
	CSV bool
	// Context, when non-nil, bounds the experiment: cancellation stops
	// every in-flight simulation within milliseconds and the experiment
	// returns an error wrapping context.Canceled (or DeadlineExceeded).
	Context context.Context
}

// normalized applies defaults.
func (o Options) normalized() Options {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// Experiment is one reproducible artifact of the evaluation.
type Experiment struct {
	ID    string // e.g. "table2", "fig4", "ablation-directpush"
	Title string // the paper's caption, roughly
	Run   func(w io.Writer, opts Options) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: simulation parameters", runTable1},
		{"table2", "Table II: effects of the threshold value c", runTable2},
		{"fig4", "Figure 4: effects of the mean query arrival rate λ", runFig4},
		{"table3", "Table III: query latency as the number of nodes changes", runTable3},
		{"fig5", "Figure 5: relative cost as a function of the number of nodes", runFig5},
		{"fig6", "Figure 6: effects of the maximum node degree D", runFig6},
		{"fig7", "Figure 7: effects of the Zipf parameter θ", runFig7},
		{"fig8", "Figure 8: effects of Pareto query arrivals", runFig8},
		{"ablation-directpush", "Ablation: DUP direct pushes vs hop-by-hop pushes", runAblationDirectPush},
		{"ablation-pushlead", "Ablation: push lead time before expiry", runAblationPushLead},
		{"ablation-cutoffcup", "Ablation: CUP with push cut-off at uninterested nodes", runAblationCutoffCUP},
		{"ablation-chordtree", "Ablation: random [1,D] trees vs Chord- and CAN-derived search trees", runAblationChordTree},
		{"ablation-interestbasis", "Ablation: interest from local queries only vs all received queries", runAblationInterestBasis},
		{"flashcrowd", "Extension: migrating hot spots (flash crowds)", runFlashCrowd},
		{"churn", "Extension: node failure and recovery (Section III-C)", runChurn},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// baseConfig returns the Table I defaults for the options.
func baseConfig(opts Options) sim.Config {
	cfg := sim.Default()
	cfg.Duration = opts.Scale.duration()
	cfg.Warmup = cfg.TTL
	cfg.Seed = opts.Seed
	return cfg
}

// schemeKind identifies a scheme for the parallel runner.
type schemeKind int

const (
	kindPCX schemeKind = iota
	kindCUP
	kindCUPCutoff
	kindDUP
	kindDUPHopByHop
)

func (k schemeKind) new() scheme.Scheme {
	switch k {
	case kindPCX:
		return scheme.NewPCX()
	case kindCUP:
		return cup.New()
	case kindCUPCutoff:
		return cup.NewCutoff()
	case kindDUP:
		return dupscheme.New()
	case kindDUPHopByHop:
		return dupscheme.NewHopByHop()
	}
	panic("experiments: unknown scheme kind")
}

// job is one (config, scheme) cell of an experiment grid.
type job struct {
	key  string
	cfg  sim.Config
	kind schemeKind
}

// cell is one aggregated grid result (across opts.Replicas runs).
type cell struct {
	MeanLatency  float64
	LatencyCI95  float64
	MeanCost     float64
	CostCI95     float64
	LocalHitRate float64
	PushHops     int64
	ControlHops  int64
}

// runAll executes all jobs with bounded parallelism and returns results
// keyed by job key, each aggregated over opts.Replicas independent
// replications. PCX jobs automatically run with Lead = 0 (PCX has no push
// schedule; see DESIGN.md).
func runAll(jobs []job, opts Options) (map[string]*cell, error) {
	opts = opts.normalized()
	results := make(map[string]*cell, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := j.cfg
			if j.kind == kindPCX {
				cfg.Lead = 0
			}
			c, err := runCell(opts.Context, cfg, j.kind, opts.Replicas)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", j.key, err)
				}
				return
			}
			results[j.key] = c
		}(j)
	}
	wg.Wait()
	return results, firstErr
}

// runCell executes one grid cell. A single replica keeps the run's own
// sample confidence interval; several replicas report across-run CIs.
func runCell(ctx context.Context, cfg sim.Config, kind schemeKind, replicas int) (*cell, error) {
	if replicas == 1 {
		r, err := sim.RunContext(ctx, cfg, kind.new())
		if err != nil {
			return nil, err
		}
		return &cell{
			MeanLatency:  r.MeanLatency,
			LatencyCI95:  r.LatencyCI95,
			MeanCost:     r.MeanCost,
			LocalHitRate: r.LocalHitRate,
			PushHops:     r.PushHops,
			ControlHops:  r.ControlHops,
		}, nil
	}
	agg, err := sim.RunReplicatedContext(ctx, cfg, kind.new, replicas)
	if err != nil {
		return nil, err
	}
	return &cell{
		MeanLatency:  agg.MeanLatency(),
		LatencyCI95:  agg.LatencyCI95(),
		MeanCost:     agg.MeanCost(),
		CostCI95:     agg.CostCI95(),
		LocalHitRate: agg.HitRate.Mean(),
		PushHops:     agg.PushHops / int64(replicas),
		ControlHops:  agg.CtrlHops / int64(replicas),
	}, nil
}

// key builds a stable result key.
func key(kind schemeKind, parts ...any) string {
	s := fmt.Sprint(kind)
	for _, p := range parts {
		s += "/" + fmt.Sprint(p)
	}
	return s
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
