package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
	if len(IDs()) != len(Registry()) {
		t.Fatal("IDs() length mismatch")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale strings wrong")
	}
	if Quick.duration() >= Full.duration() {
		t.Fatal("quick scale should be shorter than full")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("A", "Blong", "C")
	tab.addRow("x", 1.23456, 7)
	tab.addRow("yyyy", 0.5, "z")
	var b strings.Builder
	if err := tab.write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Blong") || !strings.Contains(lines[2], "1.235") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	// Columns must align: header and rows share the position of column C.
	hpos := strings.Index(lines[0], "C")
	if lines[2][hpos] != '7' {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestTable1Instant(t *testing.T) {
	var b strings.Builder
	if err := runTable1(&b, Options{Scale: Quick, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Zipf parameter", "4096", "Threshold value c"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table1 output missing %q:\n%s", want, b.String())
		}
	}
}

func TestRelGuardsZero(t *testing.T) {
	if rel(1, 0) != 0 || rel(3, 2) != 1.5 {
		t.Fatal("rel() wrong")
	}
}

func TestCSVEmission(t *testing.T) {
	tab := newTable("a", "b")
	tab.addRow("plain", 1.5)
	tab.addRow(`with,comma`, `quote"inside`)
	var b strings.Builder
	if err := tab.emit(&b, true); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,1.500\n\"with,comma\",\"quote\"\"inside\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Replicas != 1 {
		t.Fatalf("default replicas = %d, want 1", o.Replicas)
	}
	if o.Context == nil {
		t.Fatal("normalized Options left Context nil")
	}
}

func TestReplicatedCellTightensCI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica simulation, skipped with -short")
	}
	cfg := baseConfig(Options{Scale: Quick, Seed: 5})
	cfg.Nodes = 256
	cfg.TTL = 600
	cfg.Lead = 10
	cfg.Duration = 6000
	cfg.Warmup = 600
	cfg.Lambda = 5
	c, err := runCell(context.Background(), cfg, kindDUP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.CostCI95 <= 0 {
		t.Fatal("replicated cell reported no cost CI")
	}
	if c.MeanLatency <= 0 || c.MeanCost <= 0 {
		t.Fatalf("degenerate replicated cell: %+v", c)
	}
}

// TestPushLeadAblationEndToEnd runs one real (quick-scale) experiment to
// verify the harness end to end; the remaining experiments share the same
// machinery and are exercised by cmd/dupbench and bench_test.go.
func TestPushLeadAblationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale simulation, skipped with -short")
	}
	var b strings.Builder
	if err := runAblationPushLead(&b, Options{Scale: Quick, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Lead (s)") || !strings.Contains(out, "Local hit rate") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 6 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

// TestAllExperimentsRunEndToEnd executes every registered experiment at
// quick scale — the same code paths cmd/dupbench drives — and sanity-checks
// the emitted tables. This is the harness's integration test (~10 s).
func TestAllExperimentsRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale suite, skipped with -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var b strings.Builder
			if err := e.Run(&b, Options{Scale: Quick, Seed: 1}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := b.String()
			if len(out) < 80 {
				t.Fatalf("%s produced implausibly short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s output missing section header:\n%s", e.ID, out)
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) < 5 {
				t.Fatalf("%s produced %d lines", e.ID, len(lines))
			}
			// CSV mode must also work and differ from the table mode.
			var c strings.Builder
			if err := e.Run(&c, Options{Scale: Quick, Seed: 1, CSV: true}); err != nil {
				t.Fatalf("%s (csv): %v", e.ID, err)
			}
			if !strings.Contains(c.String(), ",") {
				t.Fatalf("%s CSV output contains no commas:\n%s", e.ID, c.String())
			}
		})
	}
}
