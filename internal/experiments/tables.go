package experiments

import (
	"fmt"
	"io"
)

// runTable1 prints the simulation parameter defaults (Table I).
func runTable1(w io.Writer, opts Options) error {
	cfg := baseConfig(opts)
	section(w, "Table I: simulation parameters")
	t := newTable("Parameter", "Default", "Range")
	t.addRow("Number of nodes n", cfg.Nodes, "1024 to 16384")
	t.addRow("Maximum node degree D", cfg.MaxDegree, "2 to 10")
	t.addRow("Mean query arrival rate λ (queries/s)", cfg.Lambda, "0.1 to 100")
	t.addRow("Zipf parameter θ", cfg.Theta, "0.5 to 4")
	t.addRow("Pareto parameter α", "n/a", "1.05, 1.20")
	t.addRow("Threshold value c", cfg.Threshold, "2 to 10")
	t.addRow("Index TTL (s)", cfg.TTL, "fixed")
	t.addRow("Push lead before expiry (s)", cfg.Lead, "fixed")
	t.addRow("Per-hop delay mean (s)", cfg.HopDelayMean, "fixed")
	t.addRow("Simulated time (s)", cfg.Duration, fmt.Sprintf("%v scale", opts.Scale))
	return t.emit(w, opts.CSV)
}

// runTable2 reproduces Table II: average query cost and latency of DUP as
// the interest threshold c varies, for λ ∈ {0.1, 1, 10}.
func runTable2(w io.Writer, opts Options) error {
	cs := []int{2, 4, 6, 8, 10}
	lambdas := []float64{0.1, 1, 10}
	var jobs []job
	for _, c := range cs {
		for _, lam := range lambdas {
			cfg := baseConfig(opts)
			cfg.Threshold = c
			cfg.Lambda = lam
			jobs = append(jobs, job{key(kindDUP, c, lam), cfg, kindDUP})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Table II: the effects of the threshold value c (DUP)")
	headers := []string{"c value"}
	for _, c := range cs {
		headers = append(headers, fmt.Sprint(c))
	}
	t := newTable(headers...)
	for _, lam := range lambdas {
		costRow := []any{fmt.Sprintf("Avg query cost (λ=%g)", lam)}
		latRow := []any{fmt.Sprintf("Avg query latency (λ=%g)", lam)}
		for _, c := range cs {
			r := res[key(kindDUP, c, lam)]
			costRow = append(costRow, r.MeanCost)
			latRow = append(latRow, r.MeanLatency)
		}
		t.addRow(costRow...)
		t.addRow(latRow...)
	}
	return t.emit(w, opts.CSV)
}

// runTable3 reproduces Table III: query latency of PCX, CUP and DUP as the
// number of nodes varies, for λ ∈ {0.1, 1, 10}.
func runTable3(w io.Writer, opts Options) error {
	nodes := []int{1024, 2048, 4096, 8192, 16384}
	lambdas := []float64{0.1, 1, 10}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, n := range nodes {
		for _, lam := range lambdas {
			for _, k := range kinds {
				cfg := baseConfig(opts)
				cfg.Nodes = n
				cfg.Lambda = lam
				jobs = append(jobs, job{key(k, n, lam), cfg, k})
			}
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Table III: comparison of PCX, CUP, and DUP when the number of nodes changes")
	headers := []string{"Number of nodes"}
	for _, n := range nodes {
		headers = append(headers, fmt.Sprint(n))
	}
	t := newTable(headers...)
	names := map[schemeKind]string{kindPCX: "PCX", kindCUP: "CUP", kindDUP: "DUP"}
	for _, lam := range lambdas {
		for _, k := range kinds {
			row := []any{fmt.Sprintf("%s latency (λ=%g)", names[k], lam)}
			for _, n := range nodes {
				row = append(row, res[key(k, n, lam)].MeanLatency)
			}
			t.addRow(row...)
		}
	}
	return t.emit(w, opts.CSV)
}
