package experiments

import (
	"fmt"
	"io"

	"dup/internal/overlay/can"
	"dup/internal/overlay/chord"
	"dup/internal/rng"
)

// runAblationDirectPush isolates DUP's short-cut benefit: the same
// subscriber bookkeeping, but with pushes routed hop-by-hop along the
// index search tree instead of directly between DUP-tree neighbours.
func runAblationDirectPush(w io.Writer, opts Options) error {
	lambdas := []float64{1, 10, 100}
	var jobs []job
	for _, lam := range lambdas {
		cfg := baseConfig(opts)
		cfg.Lambda = lam
		jobs = append(jobs,
			job{key(kindDUP, lam), cfg, kindDUP},
			job{key(kindDUPHopByHop, lam), cfg, kindDUPHopByHop})
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Ablation: DUP direct pushes vs hop-by-hop pushes")
	t := newTable("λ", "DUP cost", "hop-by-hop cost", "DUP push hops", "hop-by-hop push hops")
	for _, lam := range lambdas {
		d, h := res[key(kindDUP, lam)], res[key(kindDUPHopByHop, lam)]
		t.addRow(lam, d.MeanCost, h.MeanCost, d.PushHops, h.PushHops)
	}
	return t.emit(w, opts.CSV)
}

// runAblationPushLead varies how early before expiry the root pushes the
// next version ("exactly one minute" in the paper): with no lead the push
// races the expiry and interested nodes briefly serve misses.
func runAblationPushLead(w io.Writer, opts Options) error {
	leads := []float64{0, 10, 60, 300}
	var jobs []job
	for _, lead := range leads {
		cfg := baseConfig(opts)
		cfg.Lambda = 10
		cfg.Lead = lead
		jobs = append(jobs, job{key(kindDUP, lead), cfg, kindDUP})
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Ablation: push lead time before expiry (DUP, λ = 10)")
	t := newTable("Lead (s)", "Latency (hops)", "Cost (hops/query)", "Local hit rate")
	for _, lead := range leads {
		r := res[key(kindDUP, lead)]
		t.addRow(lead, r.MeanLatency, r.MeanCost, r.LocalHitRate)
	}
	return t.emit(w, opts.CSV)
}

// runAblationCutoffCUP compares the evaluated CUP (branch-aggregated
// interest, pushes penetrate to interested nodes) against the cut-off
// variant of Section II-B's criticism, where a push stops at the first
// node that is not interested itself.
func runAblationCutoffCUP(w io.Writer, opts Options) error {
	lambdas := []float64{1, 10, 100}
	var jobs []job
	for _, lam := range lambdas {
		cfg := baseConfig(opts)
		cfg.Lambda = lam
		jobs = append(jobs,
			job{key(kindPCX, lam), cfg, kindPCX},
			job{key(kindCUP, lam), cfg, kindCUP},
			job{key(kindCUPCutoff, lam), cfg, kindCUPCutoff})
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Ablation: CUP vs CUP with push cut-off at uninterested nodes")
	t := newTable("λ", "CUP latency", "cut-off latency", "CUP/PCX cost", "cut-off/PCX cost", "CUP push hops", "cut-off push hops")
	for _, lam := range lambdas {
		p := res[key(kindPCX, lam)]
		c := res[key(kindCUP, lam)]
		x := res[key(kindCUPCutoff, lam)]
		t.addRow(lam, c.MeanLatency, x.MeanLatency,
			rel(c.MeanCost, p.MeanCost), rel(x.MeanCost, p.MeanCost),
			c.PushHops, x.PushHops)
	}
	return t.emit(w, opts.CSV)
}

// runAblationChordTree swaps the paper's random [1,D] index search trees
// for trees extracted from real DHT routing: Chord lookup paths and CAN
// greedy routes, on 4096-node overlays.
func runAblationChordTree(w io.Writer, opts Options) error {
	ring := chord.Bootstrap(4096, rng.New(opts.Seed^0xc0ffee), 8)
	chordTree, _, err := ring.ExtractTree("the-simulated-index")
	if err != nil {
		return err
	}
	canNet := can.New(4096, 2, rng.New(opts.Seed^0xbeef))
	canTree, _, err := canNet.ExtractTree("the-simulated-index")
	if err != nil {
		return err
	}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, k := range kinds {
		random := baseConfig(opts)
		random.Lambda = 10
		jobs = append(jobs, job{key(k, "random"), random, k})

		cfg := baseConfig(opts)
		cfg.Lambda = 10
		cfg.Tree = chordTree
		jobs = append(jobs, job{key(k, "chord"), cfg, k})

		cc := baseConfig(opts)
		cc.Lambda = 10
		cc.Tree = canTree
		jobs = append(jobs, job{key(k, "can"), cc, k})
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Ablation: random [1,D] trees vs Chord- and CAN-derived search trees (λ = 10)")
	fmt.Fprintf(w, "Chord tree: max depth %d, mean depth %.2f; CAN tree (d=2): max depth %d, mean depth %.2f\n\n",
		chordTree.MaxDepth(), chordTree.MeanDepth(), canTree.MaxDepth(), canTree.MeanDepth())
	t := newTable("Scheme", "Random lat", "Chord lat", "CAN lat", "Random cost", "Chord cost", "CAN cost")
	names := map[schemeKind]string{kindPCX: "PCX", kindCUP: "CUP", kindDUP: "DUP"}
	for _, k := range kinds {
		r, c, cn := res[key(k, "random")], res[key(k, "chord")], res[key(k, "can")]
		t.addRow(names[k], r.MeanLatency, c.MeanLatency, cn.MeanLatency,
			r.MeanCost, c.MeanCost, cn.MeanCost)
	}
	return t.emit(w, opts.CSV)
}

// runAblationInterestBasis resolves the paper's ambiguous "the number of
// queries a node receives" empirically: counting only locally generated
// queries versus also counting forwarded requests passing through.
func runAblationInterestBasis(w io.Writer, opts Options) error {
	lambdas := []float64{1, 10, 100}
	var jobs []job
	for _, lam := range lambdas {
		local := baseConfig(opts)
		local.Lambda = lam
		local.CountForwarded = false
		jobs = append(jobs, job{key(kindDUP, "local", lam), local, kindDUP})

		recv := baseConfig(opts)
		recv.Lambda = lam
		recv.CountForwarded = true
		jobs = append(jobs, job{key(kindDUP, "received", lam), recv, kindDUP})
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Ablation: interest counted on local queries only vs all received queries (DUP)")
	t := newTable("λ", "local lat", "received lat", "local cost", "received cost", "local ctrl", "received ctrl")
	for _, lam := range lambdas {
		l := res[key(kindDUP, "local", lam)]
		r := res[key(kindDUP, "received", lam)]
		t.addRow(lam, l.MeanLatency, r.MeanLatency, l.MeanCost, r.MeanCost,
			l.ControlHops, r.ControlHops)
	}
	return t.emit(w, opts.CSV)
}

// runFlashCrowd exercises migrating hot spots: the Zipf rank-to-node
// assignment is reshuffled periodically, so subscriptions must be torn
// down and rebuilt. Shorter rotation periods stress DUP's tree maintenance
// harder — a sharper version of the interest flapping the paper observes
// under bursty Pareto arrivals.
func runFlashCrowd(w io.Writer, opts Options) error {
	periods := []float64{0, 14400, 3600, 900}
	kinds := []schemeKind{kindPCX, kindCUP, kindDUP}
	var jobs []job
	for _, period := range periods {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.Lambda = 10
			cfg.Theta = 2
			cfg.HotspotRotate = period
			jobs = append(jobs, job{key(k, period), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Extension: flash crowds — hot spots migrate every R seconds (λ = 10, θ = 2)")
	t := newTable("Rotation (s)", "PCX lat", "DUP lat", "CUP/PCX cost", "DUP/PCX cost", "DUP ctrl hops")
	for _, period := range periods {
		p := res[key(kindPCX, period)]
		c := res[key(kindCUP, period)]
		d := res[key(kindDUP, period)]
		label := any("stationary")
		if period > 0 {
			label = period
		}
		t.addRow(label, p.MeanLatency, d.MeanLatency,
			rel(c.MeanCost, p.MeanCost), rel(d.MeanCost, p.MeanCost), d.ControlHops)
	}
	return t.emit(w, opts.CSV)
}

// runChurn exercises the Section III-C failure handling: nodes fail and
// recover while DUP (and PCX as the baseline) keep serving.
func runChurn(w io.Writer, opts Options) error {
	rates := []float64{0, 0.005, 0.02, 0.05}
	kinds := []schemeKind{kindPCX, kindDUP}
	var jobs []job
	for _, rate := range rates {
		for _, k := range kinds {
			cfg := baseConfig(opts)
			cfg.Lambda = 10
			cfg.FailRate = rate
			if rate > 0 {
				cfg.DetectDelay = 30
				cfg.DownTime = 600
				cfg.RetryTimeout = 5
			}
			jobs = append(jobs, job{key(k, rate), cfg, k})
		}
	}
	res, err := runAll(jobs, opts)
	if err != nil {
		return err
	}
	section(w, "Extension: query performance under node failures (λ = 10)")
	t := newTable("Fail rate (/s)", "PCX latency", "DUP latency", "PCX cost", "DUP cost")
	for _, rate := range rates {
		p, d := res[key(kindPCX, rate)], res[key(kindDUP, rate)]
		t.addRow(rate, p.MeanLatency, d.MeanLatency, p.MeanCost, d.MeanCost)
	}
	return t.emit(w, opts.CSV)
}
