package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"dup/internal/proto"
	"dup/internal/wire"
)

// burstCollector accumulates burst deliveries, recording each burst size.
// Per the BurstHandler contract it owns every message and releases them.
type burstCollector struct {
	mu    sync.Mutex
	seqs  []int64
	sizes []int
	drop  bool // stand-in for a full inbox: refuse (release) everything
	drops int
}

func (c *burstCollector) handler() BurstHandler {
	return func(ms []*proto.Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.sizes = append(c.sizes, len(ms))
		for _, m := range ms {
			if c.drop {
				c.drops++
			} else {
				c.seqs = append(c.seqs, m.Seq)
			}
			proto.Release(m)
		}
	}
}

func (c *burstCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seqs) + c.drops
}

func (c *burstCollector) waitFor(t *testing.T, n int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("got %d messages, want %d", c.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitInUse waits for the pooled-message balance to settle back to base:
// drop counters tick before the release that follows them, so a counter
// wait can race the last proto.Release by a hair.
func waitInUse(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for proto.InUse() != base {
		if time.Now().After(deadline) {
			t.Fatalf("pooled messages leaked: %d in use, want %d", proto.InUse(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitDrops(t *testing.T, tr *TCP, n int64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for tr.Drops() < n {
		if time.Now().After(deadline) {
			t.Fatalf("got %d drops, want %d", tr.Drops(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDispatchRunsWithTransportMutexHeld pins the copy-on-write handler
// table: inbound dispatch and local delivery are plain atomic loads, so
// both keep flowing while t.mu is held. Before the table, this test would
// deadlock-by-timeout on the per-frame mutex lookup.
func TestDispatchRunsWithTransportMutexHeld(t *testing.T) {
	a, b := tcpPair(t)
	var ca, cb collector
	a.Register(1, ca.handler())
	b.Register(2, cb.handler())

	// Establish the inbound connection first: accepting one takes t.mu
	// (inbound tracking); per-frame dispatch must not.
	a.Send(push(proto.KindPush, 2))
	cb.waitFor(t, 1, 3*time.Second)

	b.mu.Lock()
	for i := 0; i < 20; i++ {
		m := push(proto.KindPush, 2)
		m.Seq = int64(i)
		a.Send(m)
	}
	cb.waitFor(t, 21, 3*time.Second)
	b.mu.Unlock()

	// Local delivery is the same lock-free table load.
	a.mu.Lock()
	a.Send(push(proto.KindPush, 1))
	ca.waitFor(t, 1, 3*time.Second)
	a.mu.Unlock()
}

// TestBurstHandlerReceivesBursts drives enough back-to-back frames at one
// target that the reader gathers multi-frame bursts, and checks the burst
// handler sees every message, in order, with no per-message fallback.
func TestBurstHandlerReceivesBursts(t *testing.T) {
	a, b := tcpPair(t)
	var c burstCollector
	b.RegisterBurst(2, c.handler())
	const n = 200
	for i := 0; i < n; i++ {
		m := push(proto.KindPush, 2)
		m.Seq = int64(i)
		a.Send(m)
	}
	c.waitFor(t, n, 3*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, seq := range c.seqs {
		if seq != int64(i) {
			t.Fatalf("message %d arrived with seq %d: burst dispatch reordered the stream", i, seq)
		}
	}
	if len(c.sizes) == n {
		t.Logf("no multi-frame burst observed in %d deliveries (slow writer?)", n)
	}
}

// TestReceiveOwnershipBalance is the receive-path leak audit: bursts
// through decode → dispatch → drop via every refusal path (no handler
// registered, a handler that refuses, a burst handler with a full inbox,
// and a connection torn mid-burst) must release every pooled message.
func TestReceiveOwnershipBalance(t *testing.T) {
	base := proto.InUse()
	a, b := tcpPair(t)

	// No handler registered: every frame drops at the receiver.
	for i := 0; i < 10; i++ {
		a.Send(push(proto.KindPush, 2))
	}
	waitDrops(t, b, 10, 3*time.Second)
	waitInUse(t, base)

	// A per-message handler that refuses: the transport releases and
	// counts.
	refuse := collector{deny: true}
	b.Register(2, refuse.handler())
	for i := 0; i < 10; i++ {
		a.Send(push(proto.KindPush, 2))
	}
	waitDrops(t, b, 20, 3*time.Second)
	waitInUse(t, base)

	// A burst handler standing in for a full inbox: it owns the messages
	// and must release what it refuses.
	full := burstCollector{drop: true}
	b.RegisterBurst(2, full.handler())
	for i := 0; i < 10; i++ {
		a.Send(push(proto.KindPush, 2))
	}
	full.waitFor(t, 10, 3*time.Second)
	waitInUse(t, base)
	if d := b.Drops(); d != 20 {
		t.Fatalf("burst-handler refusals leaked into transport drops: %d, want 20", d)
	}

	// A connection torn mid-burst: complete frames ahead of the tear
	// dispatch, the torn frame is dropped bytes, never a message.
	var ok burstCollector
	b.RegisterBurst(2, ok.handler())
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for i := 0; i < 3; i++ {
		m := push(proto.KindPush, 2)
		m.Seq = int64(i)
		stream = wire.AppendFrame(stream, m)
		proto.Release(m)
	}
	whole := len(stream)
	m := push(proto.KindPush, 2)
	stream = wire.AppendFrame(stream, m)
	proto.Release(m)
	if _, err := conn.Write(stream[:whole+5]); err != nil { // 3 frames + a torn 4th
		t.Fatal(err)
	}
	conn.Close()
	ok.waitFor(t, 3, 3*time.Second)
	waitInUse(t, base)
}
