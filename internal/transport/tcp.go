package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/rng"
	"dup/internal/wire"
)

// TCPConfig parametrises a TCP transport.
type TCPConfig struct {
	// Listen is the address to accept inbound frames on ("" for a
	// send-only transport). Use "127.0.0.1:0" in tests and read the bound
	// address back with Addr.
	Listen string
	// Peers maps remote node ids to dial addresses. Several ids may share
	// one address (a daemon hosting several peers behind one listener).
	// SetPeer adds or updates entries after construction.
	Peers map[int]string

	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential dial retry with
	// jitter: attempt n sleeps min(BackoffMax, BackoffBase<<n) scaled by a
	// uniform factor in [0.5, 1.5). Defaults 25ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueLen is the per-connection write queue depth (default 256);
	// when the queue is full, new messages are dropped, not blocked on.
	QueueLen int
	// KeepAlivePeriod is the TCP-level keep-alive interval on every
	// connection (default 15s; <0 disables).
	KeepAlivePeriod time.Duration
	// ReadBurst caps how many frames one inbound read gathers before
	// dispatching them as a burst (default wire.DefaultBurstFrames, the
	// receive-side mirror of the 64-frame write gather). Raising it
	// amortizes per-wakeup costs further under sustained load at the cost
	// of per-burst latency; 1 degrades to frame-at-a-time dispatch.
	ReadBurst int
	// Seed drives the backoff jitter.
	Seed uint64
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	if c.KeepAlivePeriod == 0 {
		c.KeepAlivePeriod = 15 * time.Second
	}
}

// TCP is the socket transport. Outbound connections are dialled lazily on
// the first send to a peer address and reused for every later message to
// that address; each has a single writer goroutine draining a bounded
// queue, so senders never block on the network.
type TCP struct {
	cfg TCPConfig

	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener

	// handlers is a copy-on-write table: Register/RegisterBurst build a
	// fresh table under mu and swap the pointer, so the dispatch hot paths
	// (readLoop, Send's local delivery) do one atomic load and never touch
	// the mutex.
	handlers atomic.Pointer[handlerTable]

	mu      sync.Mutex
	peers   map[int]string
	conns   map[string]*peerConn // outbound, keyed by address
	inbound map[net.Conn]struct{}

	jmu sync.Mutex
	src *rng.Source

	drops     atomic.Int64
	kindDrops [proto.NumKinds]atomic.Int64
	framesOut atomic.Int64
	closed    atomic.Bool
	wg        sync.WaitGroup

	// Permanent-failure signal: failed is closed (with failErr set first)
	// when the transport can no longer serve — e.g. the listener dies and
	// stays dead — so a daemon can exit non-zero instead of running deaf.
	failed   chan struct{}
	failErr  error
	failOnce sync.Once
}

// peerConn is one reused outbound connection: a bounded frame queue and
// the writer goroutine that owns dialling, writing and reconnecting.
type peerConn struct {
	addr  string
	queue chan *[]byte
}

// handlerTable is one immutable snapshot of the registered handlers.
// Readers load it atomically and index without locks; writers clone,
// mutate and swap under t.mu.
type handlerTable struct {
	single map[int]Handler
	burst  map[int]BurstHandler
}

func (tab *handlerTable) clone() *handlerTable {
	nt := &handlerTable{
		single: make(map[int]Handler, len(tab.single)+1),
		burst:  make(map[int]BurstHandler, len(tab.burst)+1),
	}
	for id, h := range tab.single {
		nt.single[id] = h
	}
	for id, h := range tab.burst {
		nt.burst[id] = h
	}
	return nt
}

// NewTCP returns a started transport. With a Listen address it binds
// immediately, so Addr is valid as soon as NewTCP returns.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		peers:   make(map[int]string, len(cfg.Peers)),
		conns:   make(map[string]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		src:     rng.New(cfg.Seed),
		failed:  make(chan struct{}),
	}
	t.handlers.Store(&handlerTable{
		single: make(map[int]Handler),
		burst:  make(map[int]BurstHandler),
	})
	for id, addr := range cfg.Peers {
		t.peers[id] = addr
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// fail records the first permanent failure and closes the Done channel.
func (t *TCP) fail(err error) {
	t.failOnce.Do(func() {
		t.failErr = err
		close(t.failed)
	})
}

// Done is closed when the transport has failed permanently (the listener
// died and stayed dead). A daemon selects on it next to its signal and
// deadline channels so it can exit non-zero instead of running deaf; an
// orderly Close never fires it.
func (t *TCP) Done() <-chan struct{} { return t.failed }

// Err returns the permanent failure, or nil. Only meaningful after Done
// is closed.
func (t *TCP) Err() error {
	select {
	case <-t.failed:
		return t.failErr
	default:
		return nil
	}
}

// Addr returns the bound listen address ("" for a send-only transport).
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Register installs the handler for node id (nil uninstalls). Sends
// addressed to locally registered ids are delivered directly, without
// touching the network. Registration swaps a fresh copy-on-write table,
// so in-flight dispatches finish against the snapshot they loaded.
func (t *TCP) Register(id int, h Handler) {
	t.mu.Lock()
	nt := t.handlers.Load().clone()
	if h == nil {
		delete(nt.single, id)
	} else {
		nt.single[id] = h
	}
	t.handlers.Store(nt)
	t.mu.Unlock()
}

// RegisterBurst installs the burst handler for node id (nil uninstalls),
// making it the dispatch path for frames read off inbound connections.
// The per-message handler registered via Register keeps serving local
// sends.
func (t *TCP) RegisterBurst(id int, h BurstHandler) {
	t.mu.Lock()
	nt := t.handlers.Load().clone()
	if h == nil {
		delete(nt.burst, id)
	} else {
		nt.burst[id] = h
	}
	t.handlers.Store(nt)
	t.mu.Unlock()
}

// SetPeer adds or updates the dial address for a remote node id.
func (t *TCP) SetPeer(id int, addr string) {
	t.mu.Lock()
	t.peers[id] = addr
	t.mu.Unlock()
}

// Send routes m to node m.To: directly to a local handler, or framed onto
// the reused connection for the peer's address.
func (t *TCP) Send(m *proto.Message) {
	if t.closed.Load() {
		proto.Release(m)
		return
	}
	if h := t.handlers.Load().single[m.To]; h != nil {
		if !h(m) {
			t.drop(m)
		}
		return
	}
	t.mu.Lock()
	addr := t.peers[m.To]
	t.mu.Unlock()
	if addr == "" {
		t.drop(m)
		return
	}
	bufp := wire.GetBuf()
	*bufp = wire.AppendFrame((*bufp)[:0], m)
	kind := m.Kind
	proto.Release(m)
	pc := t.conn(addr)
	if pc == nil {
		wire.PutBuf(bufp)
		t.dropKind(kind)
		return
	}
	select {
	case pc.queue <- bufp:
		// The writer goroutine returns the buffer to the pool after the
		// frame is on the wire.
	default:
		wire.PutBuf(bufp)
		t.dropKind(kind)
	}
}

func (t *TCP) drop(m *proto.Message) {
	t.dropKind(m.Kind)
	proto.Release(m)
}

func (t *TCP) dropKind(k proto.Kind) {
	t.drops.Add(1)
	if int(k) < proto.NumKinds {
		t.kindDrops[k].Add(1)
	}
}

// Drops reports dropped messages.
func (t *TCP) Drops() int64 { return t.drops.Load() }

// FramesOut reports how many frames have been written to outbound
// connections. Divided by a protocol-level message count it measures how
// well the send-side coalescer amortizes syscalls and frames.
func (t *TCP) FramesOut() int64 { return t.framesOut.Load() }

// KindDrops reports dropped messages broken down by kind.
func (t *TCP) KindDrops() [proto.NumKinds]int64 {
	var out [proto.NumKinds]int64
	for k := range out {
		out[k] = t.kindDrops[k].Load()
	}
	return out
}

// conn returns the reused connection for addr, creating it (and its
// writer goroutine) on first use.
func (t *TCP) conn(addr string) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return nil
	}
	pc := t.conns[addr]
	if pc == nil {
		pc = &peerConn{addr: addr, queue: make(chan *[]byte, t.cfg.QueueLen)}
		t.conns[addr] = pc
		t.wg.Add(1)
		go t.writeLoop(pc)
	}
	return pc
}

// maxGather bounds how many queued frames one vectored write carries.
// Linux caps one writev at IOV_MAX (1024) iovecs; staying far below it
// keeps per-burst latency flat while still amortizing the syscall.
const maxGather = 64

// writeLoop owns one outbound connection: dial with backoff, drain the
// queue, reconnect on error. Queued frames are gathered into one vectored
// write (net.Buffers, writev on Linux): a burst of coalesced outbox
// flushes leaves in a single syscall with no intermediate copy into a
// bufio buffer. Frames lost to a failed write are counted as drops; the
// protocol's keep-alives re-establish state after reconnects.
func (t *TCP) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	// Reused across bursts: the pooled frame buffers drained from the
	// queue and the byte-slice views handed to writev. views entries are
	// re-sliced by a partial write, so they are refilled every burst.
	bufs := make([]*[]byte, 0, maxGather)
	views := make([][]byte, maxGather)
	for {
		conn := t.dial(pc.addr)
		if conn == nil {
			return // shutting down
		}
		for {
			var bufp *[]byte
			select {
			case <-t.ctx.Done():
				conn.Close()
				return
			case bufp = <-pc.queue:
			}
			// Opportunistically gather whatever queued while the last
			// burst was writing: one writev for the whole backlog.
			bufs = append(bufs[:0], bufp)
			for len(bufs) < maxGather {
				select {
				case b := <-pc.queue:
					bufs = append(bufs, b)
					continue
				default:
				}
				break
			}
			for i, b := range bufs {
				views[i] = *b
			}
			vecs := net.Buffers(views[:len(bufs)])
			_, err := vecs.WriteTo(conn)
			lastKind := frameKind(bufs[len(bufs)-1])
			for _, b := range bufs {
				wire.PutBuf(b)
			}
			if err != nil {
				t.dropKind(lastKind)
				conn.Close()
				t.logf("transport: write %s: %v (reconnecting)", pc.addr, err)
				break
			}
			t.framesOut.Add(int64(len(bufs)))
		}
	}
}

// frameKind reads the kind byte out of an encoded frame (length prefix,
// version byte, then the kind) so a post-encode drop can still be
// attributed; out-of-range values fall into the untyped total only.
func frameKind(bufp *[]byte) proto.Kind {
	if len(*bufp) > 5 {
		return proto.Kind((*bufp)[5])
	}
	return proto.Kind(proto.NumKinds)
}

// dial connects to addr, retrying with exponential backoff and jitter
// until it succeeds or the transport shuts down (then it returns nil).
func (t *TCP) dial(addr string) net.Conn {
	d := net.Dialer{Timeout: t.cfg.DialTimeout, KeepAlive: t.cfg.KeepAlivePeriod}
	for attempt := 0; ; attempt++ {
		if t.ctx.Err() != nil {
			return nil
		}
		conn, err := d.DialContext(t.ctx, "tcp", addr)
		if err == nil {
			return conn
		}
		delay := t.backoff(attempt)
		t.logf("transport: dial %s: %v (retry in %v)", addr, err, delay)
		select {
		case <-t.ctx.Done():
			return nil
		case <-time.After(delay):
		}
	}
}

// backoff computes min(BackoffMax, BackoffBase<<attempt) scaled by a
// uniform jitter factor in [0.5, 1.5).
func (t *TCP) backoff(attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	d := t.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	t.jmu.Lock()
	f := 0.5 + t.src.Float64()
	t.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// acceptLoop owns the listener.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	errStreak := 0
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.ctx.Err() != nil {
				return
			}
			t.logf("transport: accept: %v", err)
			if t.closed.Load() {
				return
			}
			// A transient hiccup clears on the next accept; a listener that
			// only ever returns errors is dead. Declare permanent failure
			// after a run of consecutive errors so the daemon can exit
			// instead of running deaf.
			errStreak++
			if errStreak >= 5 {
				t.fail(fmt.Errorf("transport: listener failed: %w", err))
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		errStreak = 0
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection in bursts and
// dispatches each burst to the registered handlers. Handler lookup is one
// atomic table load per burst — the hot path never takes t.mu.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	r := wire.NewReader(conn)
	for {
		ms, err := r.ReadBurst(t.cfg.ReadBurst)
		if len(ms) > 0 {
			// Frames decoded ahead of a stream error still dispatch: a
			// connection torn mid-burst loses the torn frame, nothing
			// before it.
			t.dispatch(ms)
		}
		if err != nil {
			if t.ctx.Err() == nil && !errors.Is(err, io.EOF) {
				t.logf("transport: read %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// dispatch routes one decoded burst. Consecutive frames for the same
// target — the common shape, since a remote lane's coalesced flush lands
// back-to-back — hand over as a single sub-burst; targets without a burst
// handler fall back to per-message delivery with the usual refusal
// accounting.
func (t *TCP) dispatch(ms []*proto.Message) {
	tab := t.handlers.Load()
	for i := 0; i < len(ms); {
		to := ms[i].To
		j := i + 1
		for j < len(ms) && ms[j].To == to {
			j++
		}
		if bh := tab.burst[to]; bh != nil {
			bh(ms[i:j])
		} else if h := tab.single[to]; h != nil {
			for _, m := range ms[i:j] {
				if !h(m) {
					t.drop(m)
				}
			}
		} else {
			for _, m := range ms[i:j] {
				t.drop(m)
			}
		}
		i = j
	}
}

// Close shuts the transport down: stop accepting, close every connection,
// wake the writer goroutines and wait for them.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.cancel()
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	// Return queued frame buffers to the pool.
	t.mu.Lock()
	for _, pc := range t.conns {
		draining := true
		for draining {
			select {
			case bufp := <-pc.queue:
				wire.PutBuf(bufp)
			default:
				draining = false
			}
		}
	}
	t.mu.Unlock()
	return nil
}

func (t *TCP) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}
