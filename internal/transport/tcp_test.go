package transport

import (
	"net"
	"testing"
	"time"

	"dup/internal/proto"
)

// tcpPair returns two connected TCP transports: node 1 lives on a, node 2
// lives on b, each knowing the other's address.
func tcpPair(t *testing.T) (a, b *TCP) {
	t.Helper()
	a, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewTCP(TCPConfig{Listen: "127.0.0.1:0", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	var ca, cb collector
	a.Register(1, ca.handler())
	b.Register(2, cb.handler())
	for i := 0; i < 20; i++ {
		m := proto.NewMessage()
		m.Kind, m.To, m.Origin, m.Seq = proto.KindRequest, 2, 1, int64(i)
		m.Path = append(m.Path, 1)
		a.Send(m)
	}
	cb.waitFor(t, 20, 3*time.Second)
	cb.mu.Lock()
	first := cb.got[0]
	cb.mu.Unlock()
	if first.Kind != proto.KindRequest || first.Origin != 1 || len(first.Path) != 1 || first.Path[0] != 1 {
		t.Fatalf("message mangled in transit: %+v", first)
	}
	// And the reverse direction, reusing b's inbound... outbound conn is
	// separate by design; this exercises b dialling a.
	m := proto.NewMessage()
	m.Kind, m.To, m.Origin = proto.KindKeepAliveAck, 1, 2
	b.Send(m)
	ca.waitFor(t, 1, 3*time.Second)
}

func TestTCPLocalDeliveryBypassesNetwork(t *testing.T) {
	a, err := NewTCP(TCPConfig{Seed: 3}) // send-only: no listener at all
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var c collector
	a.Register(5, c.handler())
	a.Send(push(proto.KindPush, 5))
	c.waitFor(t, 1, time.Second)
}

func TestTCPDialRetryWithLateListener(t *testing.T) {
	a, err := NewTCP(TCPConfig{Seed: 4, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Reserve an address, then close it so the first dials fail.
	probe, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()
	a.SetPeer(9, addr)
	a.Send(push(proto.KindPush, 9)) // queued; dial retries in the background
	time.Sleep(100 * time.Millisecond)
	// Now the listener comes up on the same address: the queued frame must
	// arrive once a retry succeeds.
	b, err := NewTCP(TCPConfig{Listen: addr, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var c collector
	b.Register(9, c.handler())
	c.waitFor(t, 1, 5*time.Second)
	if a.Drops() != 0 {
		t.Fatalf("drops = %d, want 0 (frame should have waited in the queue)", a.Drops())
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	a, b := tcpPair(t)
	var c collector
	b.Register(2, c.handler())
	for i := 0; i < 50; i++ {
		a.Send(push(proto.KindPush, 2))
	}
	c.waitFor(t, 50, 3*time.Second)
	a.mu.Lock()
	conns := len(a.conns)
	a.mu.Unlock()
	if conns != 1 {
		t.Fatalf("%d outbound connections for one peer address, want 1", conns)
	}
}

func TestTCPUnknownTargetDropped(t *testing.T) {
	a, _ := tcpPair(t)
	a.Send(push(proto.KindPush, 42)) // no handler, no peer address
	if a.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", a.Drops())
	}
	if kd := a.KindDrops(); kd[proto.KindPush] != 1 {
		t.Fatalf("kind drops = %v, want one push", kd)
	}
}

func TestTCPCloseIsIdempotentAndFast(t *testing.T) {
	a, b := tcpPair(t)
	var c collector
	b.Register(2, c.handler())
	a.Send(push(proto.KindPush, 2))
	c.waitFor(t, 1, 3*time.Second)
	done := make(chan struct{})
	go func() {
		a.Close()
		a.Close()
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	a.Send(push(proto.KindPush, 2)) // after close: silently released
}

func TestTCPMalformedInboundDoesNotKillTransport(t *testing.T) {
	a, b := tcpPair(t)
	var c collector
	b.Register(2, c.handler())
	// A healthy message first, so the good connection exists.
	a.Send(push(proto.KindPush, 2))
	c.waitFor(t, 1, 3*time.Second)
	// Now a raw garbage connection straight at b's listener: the read loop
	// must reject it and keep serving the healthy connection.
	garbage, err := newRawConn(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	garbage.Write([]byte{0, 0, 0, 3, 0xff, 0xff, 0xff})
	garbage.Close()
	a.Send(push(proto.KindPush, 2))
	c.waitFor(t, 2, 3*time.Second)
}

// newRawConn dials addr directly, bypassing the transport.
func newRawConn(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}
