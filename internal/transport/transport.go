// Package transport moves proto messages between peers. It defines the
// Transport interface the live network speaks and two implementations:
//
//   - Chan: in-process delivery over goroutines and timers with injected
//     exponential link latency — the transport the original live network
//     used, now behind the shared interface.
//   - TCP: real sockets. One listener per transport, lazily dialled and
//     reused outbound connections with per-connection write queues, dial
//     retry with exponential backoff and jitter, TCP keep-alive, and
//     clean shutdown. Frames use the dup/internal/wire codec.
//
// Both implementations drive the identical protocol state machine in
// dup/internal/live; the loopback cluster tests prove it.
//
// Message ownership: a message handed to Send belongs to the transport,
// which either delivers it to a registered handler (ownership passes to
// the handler) or releases it back to the proto pool. A handler that
// returns false refuses delivery (dead or overloaded node); the transport
// releases the message and counts a drop. Inbound TCP frames are decoded
// into pooled messages, so the same ownership rule holds end to end.
package transport

import "dup/internal/proto"

// Handler consumes one inbound message addressed to a hosted node. It
// must not block: the live network's handlers post into a buffered inbox
// and report false when the node refuses delivery. Returning false hands
// the message back to the transport, which releases it and counts a drop.
type Handler func(m *proto.Message) bool

// BurstHandler consumes one decoded burst of inbound messages, every one
// addressed to the same hosted node. Unlike Handler it takes ownership of
// every message unconditionally: what it cannot deliver (dead node, full
// inbox) it must proto.Release and count itself, so a refusal costs the
// hot path no round-trip back through the transport. The slice stays the
// transport's and is invalid after return. Like Handler it must not
// block.
type BurstHandler func(ms []*proto.Message)

// BurstRegistrar is implemented by transports that decode inbound frames
// in bursts (TCP). A registered burst handler becomes the preferred
// dispatch path for frames arriving off the wire; the per-message Handler
// registered alongside it keeps serving local sends and transports
// without burst support (Chan, the faults middleware — which must stay
// per-message so injected loss sees every message).
type BurstRegistrar interface {
	// RegisterBurst installs the burst handler for inbound frames
	// addressed to node id; nil uninstalls it, falling dispatch back to
	// the per-message Handler.
	RegisterBurst(id int, h BurstHandler)
}

// Transport delivers protocol messages between peers addressed by node id.
type Transport interface {
	// Register installs the handler for inbound messages addressed to
	// node id, marking the node as locally hosted. Register before
	// traffic flows; messages for unregistered ids are dropped.
	Register(id int, h Handler)

	// Send delivers m to node m.To, taking ownership of m. Delivery is
	// asynchronous and unreliable by design (the protocol tolerates loss
	// and repairs through keep-alives); failures are counted as drops,
	// never surfaced to the sender.
	Send(m *proto.Message)

	// Drops reports how many messages this transport has dropped: dead or
	// missing targets, full queues, and failed writes. Injected loss comes
	// from the fault middleware in dup/internal/faults, which wraps any
	// Transport and folds its own drops into these counts.
	Drops() int64

	// KindDrops breaks Drops down by message kind, indexed by proto.Kind.
	// The sums can trail Drops slightly: a frame lost after encoding whose
	// kind byte is no longer reachable is counted only in the total.
	KindDrops() [proto.NumKinds]int64

	// Close shuts the transport down and releases its resources. Messages
	// sent after Close are dropped silently.
	Close() error
}
