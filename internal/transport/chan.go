package transport

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/rng"
)

// ChanConfig parametrises the in-process transport.
type ChanConfig struct {
	// HopDelay is the mean of the exponentially distributed link latency
	// injected per message; zero delivers immediately.
	HopDelay time.Duration
	// Seed drives the latency jitter.
	Seed uint64
	// DropHook, when set, sees every outbound message before delivery and
	// drops the ones it returns true for (injected message loss).
	DropHook func(m *proto.Message) bool
}

// Chan is the in-process transport: messages cross goroutines directly,
// optionally delayed by a timer to model link latency.
type Chan struct {
	cfg ChanConfig

	mu       sync.Mutex
	handlers map[int]Handler
	src      *rng.Source
	hook     atomic.Pointer[func(m *proto.Message) bool]

	drops  atomic.Int64
	closed atomic.Bool
}

// NewChan returns a started in-process transport.
func NewChan(cfg ChanConfig) *Chan {
	c := &Chan{
		cfg:      cfg,
		handlers: make(map[int]Handler),
		src:      rng.New(cfg.Seed),
	}
	if cfg.DropHook != nil {
		h := cfg.DropHook
		c.hook.Store(&h)
	}
	return c
}

// Register installs the handler for node id.
func (c *Chan) Register(id int, h Handler) {
	c.mu.Lock()
	c.handlers[id] = h
	c.mu.Unlock()
}

// SetDropHook installs (or with nil clears) the loss-injection hook.
func (c *Chan) SetDropHook(h func(m *proto.Message) bool) {
	if h == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&h)
}

// Send delivers m to node m.To after the injected link latency.
func (c *Chan) Send(m *proto.Message) {
	if c.closed.Load() {
		proto.Release(m)
		return
	}
	if hook := c.hook.Load(); hook != nil && (*hook)(m) {
		c.drop(m)
		return
	}
	var delay time.Duration
	if c.cfg.HopDelay > 0 {
		c.mu.Lock()
		delay = time.Duration(-float64(c.cfg.HopDelay) * math.Log(c.src.Float64Open()))
		c.mu.Unlock()
	}
	if delay <= 0 {
		c.deliver(m)
		return
	}
	time.AfterFunc(delay, func() { c.deliver(m) })
}

func (c *Chan) deliver(m *proto.Message) {
	if c.closed.Load() {
		proto.Release(m)
		return
	}
	c.mu.Lock()
	h := c.handlers[m.To]
	c.mu.Unlock()
	if h == nil || !h(m) {
		c.drop(m)
	}
}

func (c *Chan) drop(m *proto.Message) {
	c.drops.Add(1)
	proto.Release(m)
}

// Drops reports dropped messages.
func (c *Chan) Drops() int64 { return c.drops.Load() }

// Close stops delivery; pending timers release their messages on firing.
func (c *Chan) Close() error {
	c.closed.Store(true)
	return nil
}
