package transport

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/rng"
)

// ChanConfig parametrises the in-process transport.
type ChanConfig struct {
	// HopDelay is the mean of the exponentially distributed link latency
	// injected per message; zero delivers immediately.
	HopDelay time.Duration
	// Seed drives the latency jitter.
	Seed uint64
}

// Chan is the in-process transport: messages cross goroutines directly,
// optionally delayed by a timer to model link latency. Message loss,
// duplication and partitions are injected by wrapping a Chan in a
// faults.Transport, not here.
type Chan struct {
	cfg ChanConfig

	mu       sync.Mutex
	handlers map[int]Handler
	src      *rng.Source

	drops     atomic.Int64
	kindDrops [proto.NumKinds]atomic.Int64
	closed    atomic.Bool
}

// NewChan returns a started in-process transport.
func NewChan(cfg ChanConfig) *Chan {
	return &Chan{
		cfg:      cfg,
		handlers: make(map[int]Handler),
		src:      rng.New(cfg.Seed),
	}
}

// Register installs the handler for node id.
func (c *Chan) Register(id int, h Handler) {
	c.mu.Lock()
	c.handlers[id] = h
	c.mu.Unlock()
}

// Send delivers m to node m.To after the injected link latency.
func (c *Chan) Send(m *proto.Message) {
	if c.closed.Load() {
		proto.Release(m)
		return
	}
	var delay time.Duration
	if c.cfg.HopDelay > 0 {
		c.mu.Lock()
		delay = time.Duration(-float64(c.cfg.HopDelay) * math.Log(c.src.Float64Open()))
		c.mu.Unlock()
	}
	if delay <= 0 {
		c.deliver(m)
		return
	}
	time.AfterFunc(delay, func() { c.deliver(m) })
}

func (c *Chan) deliver(m *proto.Message) {
	if c.closed.Load() {
		proto.Release(m)
		return
	}
	c.mu.Lock()
	h := c.handlers[m.To]
	c.mu.Unlock()
	if h == nil || !h(m) {
		c.drop(m)
	}
}

func (c *Chan) drop(m *proto.Message) {
	c.drops.Add(1)
	if int(m.Kind) < proto.NumKinds {
		c.kindDrops[m.Kind].Add(1)
	}
	proto.Release(m)
}

// Drops reports dropped messages.
func (c *Chan) Drops() int64 { return c.drops.Load() }

// KindDrops reports dropped messages broken down by kind.
func (c *Chan) KindDrops() [proto.NumKinds]int64 {
	var out [proto.NumKinds]int64
	for k := range out {
		out[k] = c.kindDrops[k].Load()
	}
	return out
}

// Close stops delivery; pending timers release their messages on firing.
func (c *Chan) Close() error {
	c.closed.Store(true)
	return nil
}
