package transport

import (
	"sync"
	"testing"
	"time"

	"dup/internal/proto"
)

// collector is a test handler accumulating delivered messages.
type collector struct {
	mu   sync.Mutex
	got  []proto.Message
	deny bool
}

func (c *collector) handler() Handler {
	return func(m *proto.Message) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.deny {
			return false
		}
		cp := *m
		cp.Path = append([]int(nil), m.Path...)
		c.got = append(c.got, cp)
		proto.Release(m)
		return true
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) waitFor(t *testing.T, n int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("got %d messages, want %d", c.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func push(kind proto.Kind, to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind, m.To = kind, to
	return m
}

func TestChanDelivers(t *testing.T) {
	tr := NewChan(ChanConfig{HopDelay: 100 * time.Microsecond, Seed: 1})
	defer tr.Close()
	var c collector
	tr.Register(7, c.handler())
	for i := 0; i < 10; i++ {
		tr.Send(push(proto.KindPush, 7))
	}
	c.waitFor(t, 10, time.Second)
	if tr.Drops() != 0 {
		t.Fatalf("drops = %d, want 0", tr.Drops())
	}
}

func TestChanDropsUnregisteredAndRefused(t *testing.T) {
	tr := NewChan(ChanConfig{})
	defer tr.Close()
	tr.Send(push(proto.KindPush, 99)) // nobody there
	var c collector
	c.deny = true
	tr.Register(1, c.handler())
	tr.Send(push(proto.KindPush, 1)) // handler refuses
	deadline := time.Now().Add(time.Second)
	for tr.Drops() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("drops = %d, want 2", tr.Drops())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChanKindDrops(t *testing.T) {
	tr := NewChan(ChanConfig{})
	defer tr.Close()
	tr.Send(push(proto.KindPush, 99))      // nobody there
	tr.Send(push(proto.KindPush, 99))      // nobody there
	tr.Send(push(proto.KindSubscribe, 99)) // nobody there
	kd := tr.KindDrops()
	if kd[proto.KindPush] != 2 || kd[proto.KindSubscribe] != 1 {
		t.Fatalf("kind drops = %v, want 2 pushes and 1 subscribe", kd)
	}
	var total int64
	for _, n := range kd {
		total += n
	}
	if total != tr.Drops() {
		t.Fatalf("kind drops sum to %d, Drops() = %d", total, tr.Drops())
	}
}

func TestChanCloseStopsDelivery(t *testing.T) {
	tr := NewChan(ChanConfig{})
	var c collector
	tr.Register(1, c.handler())
	tr.Close()
	tr.Send(push(proto.KindPush, 1))
	time.Sleep(10 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("delivered after Close")
	}
}
