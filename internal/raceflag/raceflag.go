//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-exactness tests consult it: under -race, sync.Pool
// deliberately drops items at random (to surface unsynchronised reuse),
// so pooled hot paths are not allocation-free there by design.
package raceflag

// Enabled is true when the race detector is compiled in.
const Enabled = false
