//go:build race

package raceflag

// Enabled is true when the race detector is compiled in.
const Enabled = true
