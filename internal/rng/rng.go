// Package rng provides deterministic pseudo-random number streams and the
// probability distributions used throughout the DUP evaluation: exponential
// and Pareto inter-arrival times, Zipf-like node selection, and uniform
// integer draws for topology generation.
//
// Every consumer of randomness in the simulator owns an independent Source
// derived from a master seed, so changing one component's draw count never
// perturbs another component's stream. This makes whole simulations
// reproducible from a single seed.
package rng

import "math/bits"

// Source is a deterministic 64-bit pseudo-random source implementing the
// xoshiro256** algorithm. It is not safe for concurrent use; give each
// goroutine or simulator component its own Source (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	// Expand the seed with SplitMix64 so that nearby seeds (0, 1, 2, ...)
	// yield unrelated states, per the xoshiro authors' recommendation.
	var s Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15 // xoshiro state must not be all zero
	}
	return &s
}

// Split derives a new independent Source from s. The derived stream is a
// function of the parent's current state, so Split calls made in a fixed
// order are themselves deterministic.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform float64 in (0, 1). It is used to feed
// inverse-CDF transforms that are undefined at 0.
func (s *Source) Float64Open() float64 {
	for {
		f := s.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi], inclusive on both ends. This
// matches the paper's "number of children uniformly selected from [1, D]".
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (s *Source) boundedUint64(n uint64) uint64 {
	if n == 0 {
		panic("rng: bounded draw with n == 0")
	}
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Shuffle permutes the integers [0, n) uniformly and calls swap(i, j) for
// each transposition, mirroring math/rand's Shuffle contract.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
