package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRankBounds(t *testing.T) {
	z := NewZipf(New(30), 100, 0.8)
	for i := 0; i < 100000; i++ {
		r := z.Rank()
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of [1,100]", r)
		}
	}
}

func TestZipfIndexBounds(t *testing.T) {
	z := NewZipf(New(30), 50, 1.2)
	for i := 0; i < 10000; i++ {
		idx := z.Index()
		if idx < 0 || idx >= 50 {
			t.Fatalf("index %d out of [0,50)", idx)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	err := quick.Check(func(nRaw uint8, thetaRaw uint8) bool {
		n := int(nRaw%200) + 1
		theta := float64(thetaRaw%40) / 10 // 0..3.9
		z := NewZipf(New(31), n, theta)
		sum := 0.0
		for i := 1; i <= n; i++ {
			sum += z.Prob(i)
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbMonotoneDecreasing(t *testing.T) {
	z := NewZipf(New(32), 1000, 2.0)
	for i := 2; i <= 1000; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfEmpiricalMatchesTheory(t *testing.T) {
	const n, draws = 20, 400000
	for _, theta := range []float64{0.5, 1.0, 2.0} {
		z := NewZipf(New(33), n, theta)
		counts := make([]int, n+1)
		for i := 0; i < draws; i++ {
			counts[z.Rank()]++
		}
		for i := 1; i <= n; i++ {
			got := float64(counts[i]) / draws
			want := z.Prob(i)
			if math.Abs(got-want) > 0.005 {
				t.Errorf("theta=%v rank %d: empirical %v theory %v", theta, i, got, want)
			}
		}
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	z := NewZipf(New(34), 10, 0)
	for i := 1; i <= 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("theta=0 Prob(%d)=%v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfHighThetaConcentrates(t *testing.T) {
	z := NewZipf(New(35), 4096, 4)
	if z.Prob(1) < 0.9 {
		t.Fatalf("theta=4 over 4096 ranks: Prob(1)=%v, want > 0.9", z.Prob(1))
	}
}

func TestZipfSingleRank(t *testing.T) {
	z := NewZipf(New(36), 1, 1.5)
	for i := 0; i < 100; i++ {
		if z.Rank() != 1 {
			t.Fatal("single-rank zipf returned rank != 1")
		}
	}
	if z.Prob(1) != 1 {
		t.Fatalf("Prob(1)=%v, want 1", z.Prob(1))
	}
}

func TestZipfAccessors(t *testing.T) {
	z := NewZipf(New(37), 42, 1.25)
	if z.N() != 42 {
		t.Errorf("N() = %d, want 42", z.N())
	}
	if z.Theta() != 1.25 {
		t.Errorf("Theta() = %v, want 1.25", z.Theta())
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":      func() { NewZipf(New(1), 0, 1) },
		"theta<0":  func() { NewZipf(New(1), 10, -0.5) },
		"rank=0":   func() { NewZipf(New(1), 10, 1).Prob(0) },
		"rank=n+1": func() { NewZipf(New(1), 10, 1).Prob(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(New(1), 4096, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Rank()
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkExponentialSample(b *testing.B) {
	e := NewExponential(New(1), 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Sample()
	}
}
