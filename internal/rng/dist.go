package rng

import (
	"fmt"
	"math"
)

// Distribution draws positive real samples, used for inter-arrival times and
// per-hop message latencies.
type Distribution interface {
	// Sample returns the next draw. Samples are strictly positive.
	Sample() float64
	// Mean returns the distribution's theoretical mean, or +Inf when the
	// mean does not exist (Pareto with alpha <= 1).
	Mean() float64
}

// Exponential is an exponential distribution with the given mean. The paper
// uses it both for query inter-arrival times (default workload) and for the
// per-hop message latency (mean 0.1 s).
type Exponential struct {
	mean float64
	src  *Source
}

// NewExponential returns an exponential distribution with the given mean,
// drawing from src. It panics if mean <= 0.
func NewExponential(src *Source, mean float64) *Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: exponential mean must be positive, got %v", mean))
	}
	return &Exponential{mean: mean, src: src}
}

// Sample draws via inverse transform: -mean * ln(U), U in (0,1).
func (e *Exponential) Sample() float64 {
	return -e.mean * math.Log(e.src.Float64Open())
}

// Mean returns the configured mean.
func (e *Exponential) Mean() float64 { return e.mean }

// Pareto is the (Lomax / shifted) Pareto distribution the paper uses for
// bursty query inter-arrival times. Its CDF is
//
//	F(x) = 1 - (k / (x + k))^alpha,  x >= 0
//
// with 0 < alpha < 2 in the paper's experiments. For alpha > 1 the mean is
// k / (alpha - 1), so the paper sets k = (alpha - 1) / lambda to obtain a
// mean arrival rate of lambda.
type Pareto struct {
	alpha, k float64
	src      *Source
}

// NewPareto returns a Pareto distribution with shape alpha and scale k,
// drawing from src. It panics unless alpha > 0 and k > 0.
func NewPareto(src *Source, alpha, k float64) *Pareto {
	if alpha <= 0 || k <= 0 {
		panic(fmt.Sprintf("rng: pareto needs alpha > 0 and k > 0, got alpha=%v k=%v", alpha, k))
	}
	return &Pareto{alpha: alpha, k: k, src: src}
}

// NewParetoWithRate returns a Pareto distribution with shape alpha whose
// mean inter-arrival time is 1/lambda, i.e. k = (alpha-1)/lambda. This is
// exactly how Section IV ties the Pareto scale parameter to the query
// arrival rate. It panics unless alpha > 1 (the mean must exist).
func NewParetoWithRate(src *Source, alpha, lambda float64) *Pareto {
	if alpha <= 1 {
		panic(fmt.Sprintf("rng: pareto rate parameterisation needs alpha > 1, got %v", alpha))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: pareto rate must be positive, got %v", lambda))
	}
	return NewPareto(src, alpha, (alpha-1)/lambda)
}

// Sample draws via inverse transform: k * (U^(-1/alpha) - 1).
func (p *Pareto) Sample() float64 {
	u := p.src.Float64Open()
	return p.k * (math.Pow(u, -1/p.alpha) - 1)
}

// Mean returns k/(alpha-1) for alpha > 1 and +Inf otherwise.
func (p *Pareto) Mean() float64 {
	if p.alpha <= 1 {
		return math.Inf(1)
	}
	return p.k / (p.alpha - 1)
}

// Alpha returns the shape parameter.
func (p *Pareto) Alpha() float64 { return p.alpha }

// K returns the scale parameter.
func (p *Pareto) K() float64 { return p.k }

// Deterministic is a degenerate distribution that always returns the same
// value. It is useful in tests that need exact event timings.
type Deterministic struct{ Value float64 }

// Sample returns the fixed value.
func (d Deterministic) Sample() float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }
