package rng

import (
	"fmt"
	"math"
)

// Zipf draws ranks from the Zipf-like distribution the paper uses to assign
// queries to nodes:
//
//	P(rank i) = (1 / i^theta) / sum_{k=1}^{n} 1/k^theta,  1 <= i <= n
//
// Small theta approaches uniform; large theta concentrates queries on a few
// hot ranks. Sampling is by inverse CDF over a precomputed cumulative table
// with binary search, O(log n) per draw and exact for any theta >= 0.
type Zipf struct {
	cdf   []float64 // cdf[i] = P(rank <= i+1)
	theta float64
	src   *Source
}

// NewZipf returns a Zipf-like sampler over ranks [1, n] with skew theta,
// drawing from src. It panics if n <= 0 or theta < 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("rng: zipf needs n > 0, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("rng: zipf needs theta >= 0, got %v", theta))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		cdf[i-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against accumulated rounding
	return &Zipf{cdf: cdf, theta: theta, src: src}
}

// Rank draws a rank in [1, n].
func (z *Zipf) Rank() int {
	u := z.src.Float64()
	// Binary search for the first index with cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Index draws a zero-based index in [0, n), i.e. Rank()-1.
func (z *Zipf) Index() int { return z.Rank() - 1 }

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Prob returns the probability mass of rank i (1-based). It panics if i is
// out of range.
func (z *Zipf) Prob(i int) float64 {
	if i < 1 || i > len(z.cdf) {
		panic(fmt.Sprintf("rng: zipf rank %d out of range [1,%d]", i, len(z.cdf)))
	}
	if i == 1 {
		return z.cdf[0]
	}
	return z.cdf[i-1] - z.cdf[i-2]
}
