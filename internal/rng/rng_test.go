package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestNearbySeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(7)
	p2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			t.Fatalf("child stream tracks parent stream at draw %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams from equal parents diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenPositive(t *testing.T) {
	s := New(4)
	for i := 0; i < 100000; i++ {
		if f := s.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	s := New(6)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(1, 4)
		if v < 1 || v > 4 {
			t.Fatalf("IntRange(1,4) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 1; v <= 4; v++ {
		if !seen[v] {
			t.Errorf("IntRange(1,4) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if v := s.IntRange(3, 3); v != 3 {
			t.Fatalf("IntRange(3,3) = %d", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test on Intn(10): 10 bins, 100k draws.
	s := New(8)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom, p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("Intn(10) chi-squared = %v, exceeds 27.88 (p=0.001)", chi2)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShuffleMixes(t *testing.T) {
	s := New(12)
	identity := 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		p := s.Perm(5)
		id := true
		for i, v := range p {
			if i != v {
				id = false
				break
			}
		}
		if id {
			identity++
		}
	}
	// P(identity) = 1/120; over 1000 trials expect ~8, allow generous slack.
	if identity > 40 {
		t.Fatalf("identity permutation appeared %d/%d times", identity, trials)
	}
}

func TestExponentialMean(t *testing.T) {
	for _, mean := range []float64{0.1, 1, 10} {
		e := NewExponential(New(20), mean)
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += e.Sample()
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Errorf("exponential(%v): sample mean %v deviates > 2%%", mean, got)
		}
		if e.Mean() != mean {
			t.Errorf("Mean() = %v, want %v", e.Mean(), mean)
		}
	}
}

func TestExponentialPositive(t *testing.T) {
	e := NewExponential(New(21), 0.1)
	for i := 0; i < 100000; i++ {
		if v := e.Sample(); v <= 0 {
			t.Fatalf("non-positive exponential sample %v", v)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExponential(-1) did not panic")
		}
	}()
	NewExponential(New(1), -1)
}

func TestParetoWithRateMean(t *testing.T) {
	// For alpha = 1.2 the mean exists; check the rate parameterisation
	// delivers mean inter-arrival 1/lambda. Pareto with alpha close to 1 has
	// huge variance, so tolerate 15% on a large sample.
	for _, lambda := range []float64{0.5, 2} {
		p := NewParetoWithRate(New(22), 1.2, lambda)
		sum := 0.0
		const n = 2000000
		for i := 0; i < n; i++ {
			sum += p.Sample()
		}
		got := sum / n
		want := 1 / lambda
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("pareto(1.2, lambda=%v): sample mean %v, want ~%v", lambda, got, want)
		}
		if p.Mean() != want {
			t.Errorf("Mean() = %v, want %v", p.Mean(), want)
		}
	}
}

func TestParetoCDFShape(t *testing.T) {
	// Empirical CDF at x should match 1-(k/(x+k))^alpha.
	p := NewPareto(New(23), 1.5, 2.0)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = p.Sample()
	}
	for _, x := range []float64{0.5, 2, 8} {
		count := 0
		for _, s := range samples {
			if s <= x {
				count++
			}
		}
		got := float64(count) / n
		want := 1 - math.Pow(2.0/(x+2.0), 1.5)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pareto CDF at %v: got %v want %v", x, got, want)
		}
	}
}

func TestParetoInfiniteMeanBelowOne(t *testing.T) {
	p := NewPareto(New(24), 0.9, 1)
	if !math.IsInf(p.Mean(), 1) {
		t.Fatalf("alpha=0.9 mean should be +Inf, got %v", p.Mean())
	}
}

func TestParetoWithRatePanicsOnAlphaLEOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewParetoWithRate(alpha=1) did not panic")
		}
	}()
	NewParetoWithRate(New(1), 1.0, 1)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 0.25}
	for i := 0; i < 10; i++ {
		if d.Sample() != 0.25 {
			t.Fatal("deterministic sample changed")
		}
	}
	if d.Mean() != 0.25 {
		t.Fatal("deterministic mean wrong")
	}
}
