// Package directory is a multi-key content directory built from the
// repository's substrates — the system the paper's introduction motivates.
// Hosting peers register (key, host) mappings with each key's authority
// node (dup/internal/index.Store); peers look keys up along the key's
// index search tree, caching results with a TTL on the way
// (dup/internal/cache.TTLCache, path caching); and peers that query a key
// often can Watch it, subscribing through the DUP dissemination platform
// so that updates are pushed to their caches before they expire.
//
// Time is supplied by the caller (simulated seconds), keeping the whole
// service deterministic and unit-testable.
package directory

import (
	"fmt"

	"dup/internal/cache"
	"dup/internal/dissem"
	"dup/internal/index"
	"dup/internal/overlay/chord"
)

// Lookup is the outcome of one directory query.
type Lookup struct {
	Value string
	// Hops the request travelled before reaching a valid mapping
	// (0 = served from the querying peer's own cache).
	Hops int
	// Authoritative reports whether the answer came from the authority
	// node rather than a cache.
	Authoritative bool
}

// Directory is the running service.
type Directory struct {
	platform *dissem.Platform
	ttl      float64
	stores   map[chord.ID]*index.Store    // per-authority index tables
	caches   map[chord.ID]*cache.TTLCache // per-peer lookup caches
	watchers map[string][]chord.ID        // key -> peers watching it
}

// Config parametrises the directory.
type Config struct {
	Nodes      int     // ring size
	Seed       uint64  // ring/topology seed
	TTL        float64 // index version lifetime, seconds
	CacheSize  int     // per-peer cache capacity (entries)
	GracePings float64 // keep-alive grace for hosting peers, seconds
}

// DefaultConfig returns a small deterministic directory.
func DefaultConfig() Config {
	return Config{Nodes: 256, Seed: 1, TTL: 3600, CacheSize: 128, GracePings: 300}
}

// New builds the directory service.
func New(cfg Config) (*Directory, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("directory: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.TTL <= 0 || cfg.CacheSize <= 0 || cfg.GracePings <= 0 {
		return nil, fmt.Errorf("directory: TTL, CacheSize and GracePings must be positive")
	}
	p, err := dissem.NewPlatform(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &Directory{
		platform: p,
		ttl:      cfg.TTL,
		stores:   make(map[chord.ID]*index.Store),
		caches:   make(map[chord.ID]*cache.TTLCache),
		watchers: make(map[string][]chord.ID),
	}
	for _, id := range p.Nodes() {
		d.caches[id] = cache.NewTTLCache(cfg.CacheSize)
		d.stores[id] = index.NewStore(cfg.TTL, cfg.GracePings)
	}
	return d, nil
}

// Nodes returns the ring ids of all peers.
func (d *Directory) Nodes() []chord.ID { return d.platform.Nodes() }

// Authority returns the ring id of the node responsible for key.
func (d *Directory) Authority(key string) (chord.ID, error) {
	return d.platform.Rendezvous(key)
}

// Register announces that host serves key, at time now. The mapping is
// stored at the key's authority and pushed to every watcher.
func (d *Directory) Register(key, host string, now float64) error {
	auth, err := d.platform.Rendezvous(key)
	if err != nil {
		return err
	}
	rec := d.stores[auth].Put(key, host, now)
	return d.pushToWatchers(key, rec, now)
}

// KeepAlive refreshes the hosting peer's liveness for key at time now.
func (d *Directory) KeepAlive(key string, now float64) error {
	auth, err := d.platform.Rendezvous(key)
	if err != nil {
		return err
	}
	if !d.stores[auth].KeepAlive(key, now) {
		return fmt.Errorf("directory: key %q not registered", key)
	}
	return nil
}

// Refresh re-issues the current version of key (the authority's per-TTL
// refresh) and pushes it to watchers.
func (d *Directory) Refresh(key string, now float64) error {
	auth, err := d.platform.Rendezvous(key)
	if err != nil {
		return err
	}
	rec, ok := d.stores[auth].Refresh(key, now)
	if !ok {
		return fmt.Errorf("directory: key %q not registered", key)
	}
	return d.pushToWatchers(key, rec, now)
}

// pushToWatchers disseminates the fresh record across the key's DUP tree
// and installs it into every watcher's cache.
func (d *Directory) pushToWatchers(key string, rec index.Record, now float64) error {
	if len(d.watchers[key]) == 0 {
		return nil
	}
	delivery, err := d.platform.Publish(key, rec.Value)
	if err != nil {
		return err
	}
	item := cache.Item{Key: key, Value: rec.Value, Version: rec.Version, Expiry: rec.Expiry}
	for _, id := range delivery.Receivers {
		d.caches[id].Put(item, now)
	}
	return nil
}

// Lookup resolves key from peer `at` at time now, following the key's
// index search tree and path-caching the answer, exactly like the
// simulator's query routing.
func (d *Directory) Lookup(at chord.ID, key string, now float64) (Lookup, error) {
	route, err := d.platform.Route(at, key)
	if err != nil {
		return Lookup{}, err
	}
	auth := route[len(route)-1]
	for hops, node := range route {
		if it, ok := d.caches[node].Get(key, now); ok {
			d.fillPath(route[:hops], it, now)
			return Lookup{Value: it.Value, Hops: hops}, nil
		}
		if node == auth {
			rec, ok := d.stores[auth].Get(key)
			if !ok {
				return Lookup{}, fmt.Errorf("directory: key %q not found", key)
			}
			it := cache.Item{Key: key, Value: rec.Value, Version: rec.Version, Expiry: rec.Expiry}
			d.fillPath(route[:hops], it, now)
			return Lookup{Value: rec.Value, Hops: hops, Authoritative: true}, nil
		}
	}
	return Lookup{}, fmt.Errorf("directory: route for %q did not reach the authority", key)
}

// fillPath implements path caching: every node the reply retraces stores
// the item.
func (d *Directory) fillPath(path []chord.ID, it cache.Item, now float64) {
	for _, node := range path {
		d.caches[node].Put(it, now)
	}
}

// Watch subscribes peer `at` to pushes for key, so its cache is refreshed
// ahead of expiry. It returns the subscription's control-hop cost.
func (d *Directory) Watch(at chord.ID, key string) (int, error) {
	hops, err := d.platform.Subscribe(at, key)
	if err != nil {
		return 0, err
	}
	for _, w := range d.watchers[key] {
		if w == at {
			return hops, nil
		}
	}
	d.watchers[key] = append(d.watchers[key], at)
	return hops, nil
}

// Unwatch withdraws the subscription.
func (d *Directory) Unwatch(at chord.ID, key string) (int, error) {
	hops, err := d.platform.Unsubscribe(at, key)
	if err != nil {
		return 0, err
	}
	ws := d.watchers[key]
	for i, w := range ws {
		if w == at {
			d.watchers[key] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	return hops, nil
}

// Expired returns the keys whose hosting peers missed their keep-alive
// grace at the given authority as of now — the authority must update or
// drop them ("the authority node ... considers the node hosting the data
// is dead because it did not receive the keep-alive message").
func (d *Directory) Expired(authority chord.ID, now float64) []string {
	s, ok := d.stores[authority]
	if !ok {
		return nil
	}
	return s.Expired(now)
}

// CacheStats aggregates hit/miss counts over every peer cache.
func (d *Directory) CacheStats() (hits, misses uint64) {
	for _, c := range d.caches {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}
