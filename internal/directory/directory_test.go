package directory

import (
	"strings"
	"testing"

	"dup/internal/overlay/chord"
)

type chordID = chord.ID

func mustNew(t *testing.T, cfg Config) *Directory {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRegisterAndLookup(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if err := d.Register("movie.avi", "host-42", 0); err != nil {
		t.Fatal(err)
	}
	nodes := d.Nodes()
	far := nodes[len(nodes)/3]
	r, err := d.Lookup(far, "movie.avi", 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != "host-42" || !r.Authoritative {
		t.Fatalf("first lookup = %+v, want authoritative host-42", r)
	}
	if r.Hops == 0 {
		auth, _ := d.Authority("movie.avi")
		if far != auth {
			t.Fatal("remote first lookup took zero hops")
		}
	}
	// Second lookup from the same peer: local cache hit.
	r2, err := d.Lookup(far, "movie.avi", 20)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Hops != 0 || r2.Authoritative {
		t.Fatalf("second lookup = %+v, want local cache hit", r2)
	}
}

func TestPathCachingServesSiblings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 128
	d := mustNew(t, cfg)
	d.Register("k", "h", 0)
	nodes := d.Nodes()
	// Find two peers sharing a route prefix: query one, then check the
	// other's lookup got cheaper than its full route.
	a := nodes[17]
	ra, _ := d.Lookup(a, "k", 1)
	rb, err := d.Lookup(a, "k", 2)
	if err != nil || rb.Hops > ra.Hops {
		t.Fatalf("repeat lookup went farther: %d then %d (%v)", ra.Hops, rb.Hops, err)
	}
}

func TestTTLExpiryForcesRefetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	d := mustNew(t, cfg)
	d.Register("k", "h", 0)
	peer := d.Nodes()[50]
	d.Lookup(peer, "k", 1)
	// After expiry the cached copy is dead; the lookup must travel again.
	r, err := d.Lookup(peer, "k", 150)
	if err == nil {
		// The record itself also expired at the authority; Register anew
		// keeps the test focused on cache behaviour.
		t.Logf("lookup after expiry: %+v", r)
	}
	d.Register("k", "h2", 160)
	r2, err := d.Lookup(peer, "k", 170)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Hops == 0 && peer != mustAuth(t, d, "k") {
		t.Fatal("expired cache served a fresh lookup")
	}
	if r2.Value != "h2" {
		t.Fatalf("lookup returned %q, want h2", r2.Value)
	}
}

func mustAuth(t *testing.T, d *Directory, key string) chordID {
	t.Helper()
	a, err := d.Authority(key)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestWatchKeepsCacheFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	d := mustNew(t, cfg)
	d.Register("hot", "h1", 0)
	peer := d.Nodes()[99]
	if _, err := d.Watch(peer, "hot"); err != nil {
		t.Fatal(err)
	}
	// The authority refreshes ahead of each expiry; the watcher's cache
	// stays warm across boundaries without querying.
	for now := 90.0; now < 500; now += 100 {
		if err := d.Refresh("hot", now); err != nil {
			t.Fatal(err)
		}
		r, err := d.Lookup(peer, "hot", now+5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hops != 0 {
			t.Fatalf("watched lookup at t=%v took %d hops, want 0", now+5, r.Hops)
		}
	}
}

func TestUpdatePropagatesToWatchers(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.Register("k", "old-host", 0)
	peer := d.Nodes()[42]
	d.Watch(peer, "k")
	if err := d.Register("k", "new-host", 10); err != nil {
		t.Fatal(err)
	}
	r, err := d.Lookup(peer, "k", 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != "new-host" || r.Hops != 0 {
		t.Fatalf("watcher lookup = %+v, want pushed new-host locally", r)
	}
}

func TestUnwatchStopsPushes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	d := mustNew(t, cfg)
	d.Register("k", "h1", 0)
	peer := d.Nodes()[60]
	d.Watch(peer, "k")
	if _, err := d.Unwatch(peer, "k"); err != nil {
		t.Fatal(err)
	}
	d.Register("k", "h2", 150)
	r, err := d.Lookup(peer, "k", 151)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops == 0 && peer != mustAuth(t, d, "k") {
		t.Fatal("unwatched peer still served pushed data locally")
	}
	if r.Value != "h2" {
		t.Fatalf("got %q", r.Value)
	}
}

func TestKeepAliveAndExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GracePings = 50
	d := mustNew(t, cfg)
	d.Register("k", "h", 0)
	auth := mustAuth(t, d, "k")
	if err := d.KeepAlive("k", 30); err != nil {
		t.Fatal(err)
	}
	if exp := d.Expired(auth, 60); len(exp) != 0 {
		t.Fatalf("key expired despite keep-alive: %v", exp)
	}
	if exp := d.Expired(auth, 200); len(exp) != 1 || exp[0] != "k" {
		t.Fatalf("Expired = %v, want [k]", exp)
	}
	if err := d.KeepAlive("missing", 0); err == nil {
		t.Fatal("keep-alive for unknown key accepted")
	}
}

func TestLookupUnknownKey(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	_, err := d.Lookup(d.Nodes()[3], "missing", 0)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("lookup of missing key: %v", err)
	}
}

func TestRefreshUnknownKey(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if err := d.Refresh("missing", 0); err == nil {
		t.Fatal("refresh of unknown key accepted")
	}
}

func TestMultipleKeysIndependent(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	d.Register("a", "ha", 0)
	d.Register("b", "hb", 0)
	peer := d.Nodes()[77]
	ra, _ := d.Lookup(peer, "a", 1)
	rb, _ := d.Lookup(peer, "b", 1)
	if ra.Value != "ha" || rb.Value != "hb" {
		t.Fatalf("cross-key mixup: %+v %+v", ra, rb)
	}
	hits, misses := d.CacheStats()
	if hits+misses == 0 {
		t.Fatal("cache stats empty after lookups")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"nodes": {Nodes: 0, TTL: 1, CacheSize: 1, GracePings: 1},
		"ttl":   {Nodes: 4, TTL: 0, CacheSize: 1, GracePings: 1},
		"cache": {Nodes: 4, TTL: 1, CacheSize: 0, GracePings: 1},
		"pings": {Nodes: 4, TTL: 1, CacheSize: 1, GracePings: 0},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}
