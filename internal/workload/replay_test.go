package workload

import (
	"math"
	"strings"
	"testing"
)

func TestReplayOrderedPlayback(t *testing.T) {
	r := NewReplay([]Arrival{{Time: 3, Node: 1}, {Time: 1, Node: 0}, {Time: 2, Node: 2}}, false)
	want := []Arrival{{1, 0}, {2, 2}, {3, 1}}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("arrival %d = %+v, want %+v", i, got, w)
		}
	}
	if got := r.Next(); !math.IsInf(got.Time, 1) {
		t.Fatalf("exhausted trace returned %+v, want +Inf", got)
	}
	if r.Len() != 3 || r.Span() != 3 {
		t.Fatalf("Len/Span = %d/%v", r.Len(), r.Span())
	}
}

func TestReplayLoops(t *testing.T) {
	r := NewReplay([]Arrival{{Time: 1, Node: 5}, {Time: 4, Node: 6}}, true)
	want := []float64{1, 4, 5, 8, 9, 12}
	for i, w := range want {
		got := r.Next()
		if got.Time != w {
			t.Fatalf("loop arrival %d time = %v, want %v", i, got.Time, w)
		}
	}
}

func TestReplayPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewReplay(nil, false) },
		"zeroTime": func() { NewReplay([]Arrival{{Time: 0, Node: 1}}, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []Arrival{{Time: 0.5, Node: 3}, {Time: 1.25, Node: 0}}
	var b strings.Builder
	if err := WriteTrace(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(strings.NewReader(b.String()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := map[string]string{
		"badJSON": "not-json\n",
		"badTime": `{"t":0,"node":1}` + "\n",
		"badNode": `{"t":1,"node":9}` + "\n",
		"empty":   "\n\n",
	}
	for name, input := range cases {
		if _, err := ReadTrace(strings.NewReader(input), 4); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	input := "\n" + `{"t":1,"node":2}` + "\n\n" + `{"t":2,"node":3}` + "\n"
	out, err := ReadTrace(strings.NewReader(input), 4)
	if err != nil || len(out) != 2 {
		t.Fatalf("got %v, %v", out, err)
	}
}
