package workload

import (
	"math"
	"testing"

	"dup/internal/rng"
)

func TestArrivalRateExponential(t *testing.T) {
	g := New(Config{Nodes: 100, Lambda: 2, Theta: 0.8}, rng.New(1))
	const n = 100000
	var last float64
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Time <= last {
			t.Fatalf("arrival times not strictly increasing at %d", i)
		}
		last = a.Time
	}
	rate := n / last
	if math.Abs(rate-2)/2 > 0.02 {
		t.Fatalf("empirical rate %v, want ~2", rate)
	}
}

func TestArrivalRatePareto(t *testing.T) {
	g := New(Config{Nodes: 100, Lambda: 5, Theta: 0.8, Pareto: true, Alpha: 1.2}, rng.New(2))
	const n = 1000000
	var last float64
	for i := 0; i < n; i++ {
		last = g.Next().Time
	}
	rate := n / last
	if math.Abs(rate-5)/5 > 0.15 { // heavy tail: generous tolerance
		t.Fatalf("empirical Pareto rate %v, want ~5", rate)
	}
}

func TestNodesInRange(t *testing.T) {
	g := New(Config{Nodes: 50, Lambda: 1, Theta: 1}, rng.New(3))
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Node < 0 || a.Node >= 50 {
			t.Fatalf("node %d out of range", a.Node)
		}
	}
}

func TestExcludeRoot(t *testing.T) {
	g := New(Config{Nodes: 20, Lambda: 1, Theta: 0.8, ExcludeRoot: true}, rng.New(4))
	for i := 0; i < 20000; i++ {
		if a := g.Next(); a.Node == 0 {
			t.Fatal("root generated a query despite ExcludeRoot")
		}
	}
	if g.NodeProb(0) != 0 {
		t.Fatal("NodeProb(0) should be 0 with ExcludeRoot")
	}
}

func TestZipfSkewObserved(t *testing.T) {
	g := New(Config{Nodes: 64, Lambda: 1, Theta: 2}, rng.New(5))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Node]++
	}
	hot := g.HottestNode()
	gotHot := float64(counts[hot]) / n
	wantHot := g.NodeProb(hot)
	if math.Abs(gotHot-wantHot) > 0.01 {
		t.Fatalf("hottest node frequency %v, want ~%v", gotHot, wantHot)
	}
	if gotHot < 0.5 {
		t.Fatalf("theta=2 hottest node got only %v of queries", gotHot)
	}
}

func TestThetaNearZeroUniform(t *testing.T) {
	g := New(Config{Nodes: 10, Lambda: 1, Theta: 0}, rng.New(6))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Node]++
	}
	for node, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("theta=0 node %d frequency %v, want ~0.1", node, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Generator {
		return New(Config{Nodes: 100, Lambda: 1, Theta: 0.8}, rng.New(42))
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("same seed diverged at arrival %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestRankAssignmentIsPermutation(t *testing.T) {
	g := New(Config{Nodes: 30, Lambda: 1, Theta: 1}, rng.New(7))
	sum := 0.0
	for id := 0; id < 30; id++ {
		sum += g.NodeProb(id)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("node probabilities sum to %v", sum)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nodes=0":        func() { New(Config{Nodes: 0, Lambda: 1}, rng.New(1)) },
		"lambda=0":       func() { New(Config{Nodes: 10, Lambda: 0}, rng.New(1)) },
		"excludeSingle":  func() { New(Config{Nodes: 1, Lambda: 1, ExcludeRoot: true}, rng.New(1)) },
		"paretoAlphaLE1": func() { New(Config{Nodes: 10, Lambda: 1, Pareto: true, Alpha: 1}, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRotationMovesHotspot(t *testing.T) {
	g := New(Config{Nodes: 64, Lambda: 10, Theta: 3, RotateEvery: 100}, rng.New(9))
	// Observe the modal node in two windows separated by several rotations.
	countWindow := func(until float64) int {
		counts := map[int]int{}
		for {
			a := g.Next()
			if a.Time > until {
				break
			}
			counts[a.Node]++
		}
		best, bestN := -1, -1
		for n, c := range counts {
			if c > bestN {
				best, bestN = n, c
			}
		}
		return best
	}
	first := countWindow(90)
	// Skip ahead through several rotations.
	var last int
	for i := 0; i < 6; i++ {
		last = countWindow(90 + float64(i+1)*300)
	}
	if first == last {
		t.Skip("hot node landed on the same id after rotation (1/64 chance)")
	}
}

func TestRotationZeroIsStationary(t *testing.T) {
	a := New(Config{Nodes: 32, Lambda: 5, Theta: 2}, rng.New(10))
	b := New(Config{Nodes: 32, Lambda: 5, Theta: 2, RotateEvery: 0}, rng.New(10))
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("RotateEvery=0 changed the stream")
		}
	}
}

func TestRotationNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative RotateEvery did not panic")
		}
	}()
	New(Config{Nodes: 8, Lambda: 1, RotateEvery: -1}, rng.New(1))
}
