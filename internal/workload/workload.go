// Package workload generates the query stream of Section IV: network-wide
// query arrivals with exponential (default) or heavy-tailed Pareto
// inter-arrival times, distributed over nodes by a Zipf-like popularity
// assignment.
//
// The arrival rate λ is network-wide: "when λ = 1 query per second, only
// one query is generated per second in the whole network". Each arrival is
// then assigned to a node by drawing a Zipf rank and mapping ranks to nodes
// through a seeded random permutation, so hot nodes sit at random positions
// in the index search tree rather than clustering near the root.
package workload

import (
	"fmt"

	"dup/internal/rng"
)

// Arrival is one generated query: its absolute time and the node it
// originates at.
type Arrival struct {
	Time float64
	Node int
}

// Generator produces the query arrival stream.
type Generator struct {
	inter      rng.Distribution
	zipf       *rng.Zipf
	rankNode   []int // rank (0-based) -> node id
	now        float64
	rotateGap  float64
	nextRotate float64
	shuffleSrc *rng.Source
}

// Config selects the workload.
type Config struct {
	Nodes  int     // number of nodes in the network
	Lambda float64 // network-wide mean query arrival rate, queries/second
	Theta  float64 // Zipf-like skew of the query distribution over nodes
	// Pareto selects heavy-tailed inter-arrival times with shape Alpha
	// (k is derived as (Alpha-1)/Lambda, exactly as in the paper). When
	// false, inter-arrival times are exponential with rate Lambda.
	Pareto bool
	Alpha  float64
	// ExcludeRoot removes node 0 (the authority node) from the query
	// population: the authority answers locally and contributes neither
	// latency nor cost, so including it would only dilute the metrics.
	ExcludeRoot bool
	// RotateEvery, when positive, re-assigns the Zipf ranks to nodes every
	// RotateEvery seconds — a flash-crowd model where the identity of the
	// hot nodes migrates over time, stressing the schemes' interest
	// tracking (subscriptions must be torn down and rebuilt).
	RotateEvery float64
}

// New returns a Generator drawing all randomness from src.
func New(cfg Config, src *rng.Source) *Generator {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("workload: need nodes > 0, got %d", cfg.Nodes))
	}
	if cfg.Lambda <= 0 {
		panic(fmt.Sprintf("workload: need lambda > 0, got %v", cfg.Lambda))
	}
	population := cfg.Nodes
	offset := 0
	if cfg.ExcludeRoot {
		if cfg.Nodes < 2 {
			panic("workload: cannot exclude the root from a single-node network")
		}
		population = cfg.Nodes - 1
		offset = 1
	}
	var inter rng.Distribution
	if cfg.Pareto {
		inter = rng.NewParetoWithRate(src.Split(), cfg.Alpha, cfg.Lambda)
	} else {
		inter = rng.NewExponential(src.Split(), 1/cfg.Lambda)
	}
	if cfg.RotateEvery < 0 {
		panic(fmt.Sprintf("workload: RotateEvery must be non-negative, got %v", cfg.RotateEvery))
	}
	zipf := rng.NewZipf(src.Split(), population, cfg.Theta)
	// Random rank-to-node assignment.
	shuffleSrc := src.Split()
	perm := shuffleSrc.Perm(population)
	rankNode := make([]int, population)
	for rank, p := range perm {
		rankNode[rank] = p + offset
	}
	g := &Generator{
		inter: inter, zipf: zipf, rankNode: rankNode,
		rotateGap: cfg.RotateEvery, shuffleSrc: shuffleSrc,
	}
	if g.rotateGap > 0 {
		g.nextRotate = g.rotateGap
	}
	return g
}

// Next returns the next query arrival. Successive calls return strictly
// increasing times.
func (g *Generator) Next() Arrival {
	g.now += g.inter.Sample()
	for g.rotateGap > 0 && g.now >= g.nextRotate {
		g.rotate()
		g.nextRotate += g.rotateGap
	}
	return Arrival{Time: g.now, Node: g.rankNode[g.zipf.Index()]}
}

// rotate migrates the hot spots: a fresh random rank-to-node assignment.
func (g *Generator) rotate() {
	g.shuffleSrc.Shuffle(len(g.rankNode), func(i, j int) {
		g.rankNode[i], g.rankNode[j] = g.rankNode[j], g.rankNode[i]
	})
}

// NodeProb returns the probability that a query lands on node id. It is
// O(population) and intended for tests.
func (g *Generator) NodeProb(id int) float64 {
	for rank, node := range g.rankNode {
		if node == id {
			return g.zipf.Prob(rank + 1)
		}
	}
	return 0
}

// HottestNode returns the node holding Zipf rank 1.
func (g *Generator) HottestNode() int { return g.rankNode[0] }
