package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Source produces query arrivals; Generator (synthetic) and Replay
// (trace-driven) both implement it. The paper's workload methodology
// follows trace studies of deployed peer-to-peer systems ([10], [17]);
// Replay lets recorded traces drive the simulator directly.
type Source interface {
	// Next returns the next arrival. Sources that run out return an
	// arrival with Time = +Inf, which the simulator treats as the end of
	// the stream.
	Next() Arrival
}

// Replay plays back a fixed arrival trace, optionally looping it forever
// with the trace's total span as the period.
type Replay struct {
	arrivals []Arrival
	i        int
	loop     bool
	offset   float64
	span     float64
}

// NewReplay returns a Source replaying the given arrivals (sorted by time
// internally; the input is not modified). With loop set, the trace repeats
// end-to-end indefinitely, shifted by its span each cycle. It panics if
// the trace is empty, contains non-positive times, or has a zero span in
// loop mode.
func NewReplay(arrivals []Arrival, loop bool) *Replay {
	if len(arrivals) == 0 {
		panic("workload: empty replay trace")
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	if sorted[0].Time <= 0 {
		panic(fmt.Sprintf("workload: replay trace starts at %v, need positive times", sorted[0].Time))
	}
	span := sorted[len(sorted)-1].Time
	if loop && span <= 0 {
		panic("workload: cannot loop a zero-span trace")
	}
	return &Replay{arrivals: sorted, loop: loop, span: span}
}

// Len returns the number of arrivals in one pass of the trace.
func (r *Replay) Len() int { return len(r.arrivals) }

// Span returns the duration of one pass of the trace.
func (r *Replay) Span() float64 { return r.span }

// Next implements Source.
func (r *Replay) Next() Arrival {
	if r.i == len(r.arrivals) {
		if !r.loop {
			return Arrival{Time: math.Inf(1)}
		}
		r.i = 0
		r.offset += r.span
	}
	a := r.arrivals[r.i]
	r.i++
	a.Time += r.offset
	return a
}

// ReadTrace parses a JSON-lines arrival trace: one {"t": seconds, "node":
// id} object per line (blank lines ignored). It validates that times are
// positive and node ids are within [0, nodes); pass nodes <= 0 to skip the
// range check.
func ReadTrace(r io.Reader, nodes int) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec struct {
			T    float64 `json:"t"`
			Node int     `json:"node"`
		}
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if rec.T <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive time %v", line, rec.T)
		}
		if nodes > 0 && (rec.Node < 0 || rec.Node >= nodes) {
			return nil, fmt.Errorf("workload: trace line %d: node %d out of [0,%d)", line, rec.Node, nodes)
		}
		out = append(out, Arrival{Time: rec.T, Node: rec.Node})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: trace contains no arrivals")
	}
	return out, nil
}

// WriteTrace emits arrivals in the JSON-lines trace format ReadTrace
// accepts.
func WriteTrace(w io.Writer, arrivals []Arrival) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, a := range arrivals {
		rec := struct {
			T    float64 `json:"t"`
			Node int     `json:"node"`
		}{a.Time, a.Node}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
