// Package schemetest provides a deterministic in-memory scheme.Host for
// unit-testing maintenance schemes without the discrete-event simulator:
// messages are queued and delivered synchronously on demand, per-hop
// charges are tallied per message kind, and access counts are set directly
// by the test.
package schemetest

import (
	"fmt"

	"dup/internal/cache"
	"dup/internal/index"
	"dup/internal/proto"
	"dup/internal/scheme"
	"dup/internal/topology"
)

// Host is a test double implementing scheme.Host.
type Host struct {
	tree      *topology.Tree
	caches    []cache.Entry
	counts    []int
	auth      *index.Authority
	threshold int
	now       float64

	queue    []*proto.Message
	HopsSent map[proto.Kind]int

	sch scheme.Scheme
}

// New returns a Host over the given tree with interest threshold c and the
// paper's TTL/lead schedule, attached to s.
func New(tree *topology.Tree, c int, s scheme.Scheme) *Host {
	h := &Host{
		tree:      tree,
		caches:    make([]cache.Entry, tree.N()),
		counts:    make([]int, tree.N()),
		auth:      index.NewAuthority(3600, 60),
		threshold: c,
		HopsSent:  map[proto.Kind]int{},
		sch:       s,
	}
	s.Attach(h)
	return h
}

// Tree implements scheme.Host.
func (h *Host) Tree() *topology.Tree { return h.tree }

// Now implements scheme.Host.
func (h *Host) Now() float64 { return h.now }

// SetNow advances the fake clock.
func (h *Host) SetNow(t float64) { h.now = t }

// Send implements scheme.Host: one hop charged, delivery deferred until
// Drain.
func (h *Host) Send(m *proto.Message) {
	h.HopsSent[m.Kind]++
	h.queue = append(h.queue, m)
}

// SendVia implements scheme.Host.
func (h *Host) SendVia(m *proto.Message, hops int) {
	if hops < 1 {
		panic(fmt.Sprintf("schemetest: SendVia with %d hops", hops))
	}
	h.HopsSent[m.Kind] += hops
	h.queue = append(h.queue, m)
}

// Cache implements scheme.Host.
func (h *Host) Cache(n int) *cache.Entry { return &h.caches[n] }

// Authority implements scheme.Host.
func (h *Host) Authority() *index.Authority { return h.auth }

// Threshold implements scheme.Host.
func (h *Host) Threshold() int { return h.threshold }

// IntervalCount implements scheme.Host.
func (h *Host) IntervalCount(n int) int { return h.counts[n] }

// SetCount sets node n's access count for the current interval.
func (h *Host) SetCount(n, count int) { h.counts[n] = count }

// ResetCounts zeroes all access counts (interval boundary).
func (h *Host) ResetCounts() {
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Pending returns the number of undelivered messages.
func (h *Host) Pending() int { return len(h.queue) }

// Drain delivers queued messages to the scheme in FIFO order until the
// queue is empty, returning how many were delivered.
func (h *Host) Drain() int {
	delivered := 0
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		h.sch.OnMessage(m)
		delivered++
	}
	return delivered
}

// Access simulates `count` query arrivals at node n with the given miss
// state, returning the last piggyback the scheme produced (piggybacks are
// not carried further by this host; tests exercise OnPiggyback directly).
func (h *Host) Access(n, count int, miss bool) *proto.Piggyback {
	var p *proto.Piggyback
	for i := 0; i < count; i++ {
		h.counts[n]++
		if got := h.sch.OnAccess(n, miss); got != nil {
			p = got
		}
	}
	return p
}
