package scheme

import (
	"testing"

	"dup/internal/proto"
)

func TestPCXName(t *testing.T) {
	if NewPCX().Name() != "PCX" {
		t.Fatal("PCX name wrong")
	}
}

func TestPCXHooksAreInert(t *testing.T) {
	p := NewPCX()
	p.Attach(nil) // must tolerate any host; PCX keeps no state
	if piggy := p.OnAccess(3, true); piggy != nil {
		t.Fatalf("PCX produced piggyback %+v", piggy)
	}
	p.OnRefresh(1, 3600)
	p.OnIntervalEnd()
	p.OnNodeDown(1, 0, []int{2, 3})
	p.OnNodeUp(1, 0)
}

func TestPCXRejectsMessages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PCX accepted a push message")
		}
	}()
	NewPCX().OnMessage(&proto.Message{Kind: proto.KindPush, To: 1})
}

func TestPCXRejectsPiggybacks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PCX accepted a piggyback")
		}
	}()
	NewPCX().OnPiggyback(1, &proto.Piggyback{Kind: proto.KindSubscribe, Subject: 2})
}
