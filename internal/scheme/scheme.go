// Package scheme defines the contract between the discrete-event simulator
// and an index maintenance scheme (PCX, CUP, DUP), plus the PCX baseline
// itself.
//
// The simulator owns everything the three schemes share — the index search
// tree, per-node caches, path caching of replies, access tracking and the
// authority node's refresh schedule — and calls into the scheme at the
// points where the paper's three schemes differ: when a query arrives at a
// node, when a scheme-specific message is delivered, when the root issues
// a fresh index version, and at TTL interval boundaries.
package scheme

import (
	"dup/internal/cache"
	"dup/internal/index"
	"dup/internal/proto"
	"dup/internal/topology"
)

// Host is the simulator-side interface a scheme programs against.
type Host interface {
	// Tree returns the index search tree.
	Tree() *topology.Tree
	// Now returns the current simulated time in seconds.
	Now() float64
	// Send transmits m to m.To after a random per-hop delay, charging one
	// hop of m.Kind to the cost metric. Ownership of m transfers to the
	// host: schemes should obtain messages from proto.NewMessage and must
	// not retain or reuse m after Send — the simulator host recycles it
	// through the message pool once delivery completes.
	Send(m *proto.Message)
	// SendVia transmits m like Send but charges and delays `hops` hops.
	// It models a message routed hop-by-hop through `hops` tree edges
	// without simulating the intermediate arrivals (used by the
	// hop-by-hop push ablation).
	SendVia(m *proto.Message, hops int)
	// Cache returns node n's index cache slot.
	Cache(n int) *cache.Entry
	// Authority describes the index refresh schedule.
	Authority() *index.Authority
	// Threshold returns the interest threshold c: a node is interested
	// when it received more than c queries in the last TTL interval.
	Threshold() int
	// IntervalCount returns the queries node n has received so far in the
	// current TTL interval (Section III-B access tracking).
	IntervalCount(n int) int
}

// Scheme is one index maintenance scheme under evaluation.
type Scheme interface {
	// Name returns the scheme's display name ("PCX", "CUP", "DUP").
	Name() string
	// Attach gives the scheme its host. It is called once, before any
	// event, and must initialise all per-node state.
	Attach(h Host)
	// OnAccess runs after a query (locally generated or a forwarded
	// request) has been counted at node n. Schemes use it to evaluate the
	// interest policy. miss reports whether the query will be forwarded
	// onward (node n holds no valid copy); in that case the scheme may
	// return a control item to piggyback on the forwarded request — its
	// hops are free, exactly as the paper's interest bit. With miss false
	// the return value must be nil and any control traffic is sent
	// explicitly.
	OnAccess(n int, miss bool) *proto.Piggyback
	// OnPiggyback delivers a piggybacked control item to node n, which a
	// carrying request is visiting. The scheme returns the item that
	// should continue riding upstream, or nil when it was absorbed.
	// Follow-up messages of other kinds (e.g. a substitution) are sent
	// explicitly via the host.
	OnPiggyback(n int, p *proto.Piggyback) *proto.Piggyback
	// OnMessage delivers a scheme-specific message (push, subscribe,
	// unsubscribe, substitute, interest, uninterest) to node m.To.
	// Requests and replies never reach the scheme; the host serves them.
	// The host releases m to the message pool when OnMessage returns, so
	// schemes must not retain m.
	OnMessage(m *proto.Message)
	// OnRefresh runs when the authority node issues version v (expiring
	// at expiry). Push-based schemes start their propagation here.
	OnRefresh(v int64, expiry float64)
	// OnIntervalEnd runs at each TTL interval boundary, before the host
	// resets the per-node access counters. Schemes evaluate interest loss
	// here.
	OnIntervalEnd()
	// OnNodeDown runs when node f's failure has been detected and the
	// underlying network has repaired routing: f's former children (those
	// it had at detection time) are now children of oldParent. The scheme
	// repairs its own distribution state following the paper's Section
	// III-C failure cases; any messages it sends are charged as usual.
	OnNodeDown(f, oldParent int, formerChildren []int)
	// OnNodeUp runs when node f rejoins the network, blank, as a leaf
	// child of parent.
	OnNodeUp(f, parent int)
}

// PCX is the Path Caching with eXpiration baseline: indices are cached
// passively by every node a reply passes through and evicted when their
// TTL expires. All scheme hooks are no-ops — the host's shared machinery
// (query forwarding, path caching, TTL) is the whole scheme.
type PCX struct{}

// NewPCX returns the PCX baseline scheme.
func NewPCX() *PCX { return &PCX{} }

// Name returns "PCX".
func (*PCX) Name() string { return "PCX" }

// Attach implements Scheme; PCX keeps no state.
func (*PCX) Attach(Host) {}

// OnAccess implements Scheme; PCX has no interest policy.
func (*PCX) OnAccess(int, bool) *proto.Piggyback { return nil }

// OnPiggyback implements Scheme; PCX never creates piggybacks.
func (*PCX) OnPiggyback(int, *proto.Piggyback) *proto.Piggyback {
	panic("pcx: unexpected piggyback")
}

// OnMessage implements Scheme; PCX defines no messages.
func (*PCX) OnMessage(m *proto.Message) {
	panic("pcx: unexpected message " + m.String())
}

// OnRefresh implements Scheme; PCX never pushes.
func (*PCX) OnRefresh(int64, float64) {}

// OnIntervalEnd implements Scheme.
func (*PCX) OnIntervalEnd() {}

// OnNodeDown implements Scheme; PCX keeps no distribution state.
func (*PCX) OnNodeDown(int, int, []int) {}

// OnNodeUp implements Scheme.
func (*PCX) OnNodeUp(int, int) {}
