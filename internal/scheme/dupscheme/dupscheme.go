// Package dupscheme adapts the DUP tree-maintenance state machine
// (dup/internal/core) to the discrete-event simulator's scheme interface.
//
// It wires the paper's Figure 3 handlers to protocol messages: interest
// changes trigger BecomeInterested/LoseInterest, subscribe/unsubscribe/
// substitute messages travel one index-search-tree hop at a time, and
// index updates travel directly between DUP-tree neighbours — one overlay
// hop per edge of the dynamic update propagation tree, which is the
// short-cut that gives DUP its advantage.
package dupscheme

import (
	"fmt"

	"dup/internal/core"
	"dup/internal/proto"
	"dup/internal/scheme"
)

// DUP is the dynamic-tree based update propagation scheme.
type DUP struct {
	h          scheme.Host
	st         []*core.State
	lastPushed []int64 // highest version each node has forwarded on
	targets    []int   // scratch push-target buffer, reused across pushes

	// HopByHopPush disables DUP's direct pushes: updates are routed along
	// the index search tree through every intermediate node, charging one
	// hop per tree edge. This is the "no short-cut" ablation; with it DUP
	// degenerates to roughly CUP's push cost while keeping DUP's
	// subscriber bookkeeping.
	HopByHopPush bool
}

// New returns a DUP scheme instance.
func New() *DUP { return &DUP{} }

// NewHopByHop returns the ablation variant with direct pushes disabled.
func NewHopByHop() *DUP { return &DUP{HopByHopPush: true} }

// Name returns the scheme's display name.
func (d *DUP) Name() string {
	if d.HopByHopPush {
		return "DUP-hopbyhop"
	}
	return "DUP"
}

// Attach implements scheme.Scheme.
func (d *DUP) Attach(h scheme.Host) {
	d.h = h
	n := h.Tree().N()
	d.st = make([]*core.State, n)
	d.lastPushed = make([]int64, n)
	for i := 0; i < n; i++ {
		d.st[i] = core.NewState(i, h.Tree().IsRoot(i))
		d.lastPushed[i] = -1
	}
}

// State exposes node n's protocol state for tests and trace tooling.
func (d *DUP) State(n int) *core.State { return d.st[n] }

// emit converts the state machine's upstream actions into messages to node
// from's parent.
func (d *DUP) emit(from int, acts []core.Action) {
	if len(acts) == 0 {
		return
	}
	parent := d.h.Tree().Parent(from)
	if parent == -1 {
		panic(fmt.Sprintf("dupscheme: root emitted upstream actions %v", acts))
	}
	for _, a := range acts {
		m := proto.NewMessage()
		m.To = parent
		switch a.Kind {
		case core.SendSubscribe:
			m.Kind, m.Subject = proto.KindSubscribe, a.Subject
		case core.SendUnsubscribe:
			m.Kind, m.Subject = proto.KindUnsubscribe, a.Subject
		case core.SendSubstitute:
			m.Kind, m.Old, m.New = proto.KindSubstitute, a.Old, a.New
		}
		d.h.Send(m)
	}
}

// OnAccess implements scheme.Scheme: Figure 3 (A) — refresh access
// tracking (done by the host), then subscribe if the interest policy
// fires. On a miss the subscription rides the forwarded request ("it
// either sends out subscribe(N6) explicitly or piggybacks subscribe(N6) by
// setting the interest bit in the request packet it sends out").
func (d *DUP) OnAccess(n int, miss bool) *proto.Piggyback {
	if d.st[n].Interested() || d.h.IntervalCount(n) <= d.h.Threshold() {
		return nil
	}
	acts := d.st[n].BecomeInterested()
	if miss {
		return d.emitWithPiggy(n, acts)
	}
	d.emit(n, acts)
	return nil
}

// OnPiggyback implements scheme.Scheme: a piggybacked subscribe(Subject)
// is processed by every node the carrying request visits, exactly as an
// explicit subscribe message would be, and keeps riding while the state
// machine wants to extend the virtual path further upstream.
func (d *DUP) OnPiggyback(n int, p *proto.Piggyback) *proto.Piggyback {
	if p.Kind != proto.KindSubscribe {
		panic(fmt.Sprintf("dupscheme: unexpected piggyback %v", p.Kind))
	}
	return d.emitWithPiggy(n, d.st[n].HandleSubscribe(p.Subject))
}

// emitWithPiggy sends acts upstream like emit, except that a subscribe
// action is returned as a piggyback (to ride the in-flight request) rather
// than transmitted. The state machine emits at most one subscribe per
// transition, so a single return value suffices.
func (d *DUP) emitWithPiggy(n int, acts []core.Action) *proto.Piggyback {
	var piggy *proto.Piggyback
	rest := acts[:0:0]
	for _, a := range acts {
		if a.Kind == core.SendSubscribe && piggy == nil {
			piggy = &proto.Piggyback{Kind: proto.KindSubscribe, Subject: a.Subject}
			continue
		}
		rest = append(rest, a)
	}
	d.emit(n, rest)
	return piggy
}

// OnIntervalEnd implements scheme.Scheme: Figure 3 (D) — nodes whose query
// count over the finished interval fell to the threshold or below lose
// interest.
func (d *DUP) OnIntervalEnd() {
	for n, s := range d.st {
		if s.Interested() && d.h.IntervalCount(n) <= d.h.Threshold() {
			d.emit(n, s.LoseInterest())
		}
	}
}

// OnRefresh implements scheme.Scheme: the root pushes the fresh version
// across the DUP tree.
func (d *DUP) OnRefresh(v int64, expiry float64) {
	d.pushFrom(d.h.Tree().Root(), v, expiry)
}

// pushFrom sends version v to every push target of node n. The scratch
// target buffer is safe to reuse because Send never re-enters the scheme
// synchronously.
func (d *DUP) pushFrom(n int, v int64, expiry float64) {
	d.targets = d.st[n].AppendPushTargets(d.targets[:0])
	for _, target := range d.targets {
		m := proto.NewMessage()
		m.Kind, m.To, m.Origin = proto.KindPush, target, n
		m.Version, m.Expiry = v, expiry
		if d.HopByHopPush {
			d.h.SendVia(m, d.treeDistance(n, target))
		} else {
			d.h.Send(m)
		}
	}
}

// treeDistance returns the number of index-search-tree edges between an
// ancestor and a descendant (push targets are always descendants).
func (d *DUP) treeDistance(anc, desc int) int {
	t := d.h.Tree()
	dist := t.Depth(desc) - t.Depth(anc)
	if dist <= 0 {
		panic(fmt.Sprintf("dupscheme: push target %d not below %d", desc, anc))
	}
	return dist
}

// OnNodeDown implements scheme.Scheme: the paper's Section III-C failure
// handling, with the failed node's former parent acting as the node that
// takes over its position.
//
//   - Case 1 (not on any virtual path): nothing below fires.
//   - Case 2 (last node of a virtual path, e.g. N6): the upstream
//     virtual-path neighbour — here the parent, which listed f — detects
//     the failure and processes unsubscribe(f) per algorithm (E).
//   - Cases 3 and 4 (inside a virtual path / a DUP-tree branch point):
//     each former child that has subscribers re-announces its
//     representative to the replacing node with a subscribe, exactly as
//     the paper prescribes for the downstream neighbours of N5 or N3.
//   - Case 5 (root failure) is outside the simulator's churn model; the
//     live network implements it.
func (d *DUP) OnNodeDown(f, oldParent int, formerChildren []int) {
	if d.st[f].IsRoot() {
		panic("dupscheme: root failure is not supported by the simulator")
	}
	if d.st[oldParent].Contains(f) {
		d.emit(oldParent, d.st[oldParent].HandleUnsubscribe(f))
	}
	for _, child := range formerChildren {
		if d.st[child].OnVirtualPath() {
			m := proto.NewMessage()
			m.Kind, m.To = proto.KindSubscribe, oldParent
			m.Subject = d.st[child].Representative()
			d.h.Send(m)
		}
	}
	d.st[f].Reset()
	d.lastPushed[f] = -1
}

// OnNodeUp implements scheme.Scheme: the node rejoins blank, as a leaf
// outside every virtual path, so nothing specific needs to be done (the
// paper's "if the arriving node falls outside of any virtual path, nothing
// specific needs to be done").
func (d *DUP) OnNodeUp(f, parent int) {
	d.st[f].Reset()
	d.lastPushed[f] = -1
}

// OnMessage implements scheme.Scheme.
func (d *DUP) OnMessage(m *proto.Message) {
	n := m.To
	switch m.Kind {
	case proto.KindSubscribe:
		d.emit(n, d.st[n].HandleSubscribe(m.Subject))
	case proto.KindUnsubscribe:
		d.emit(n, d.st[n].HandleUnsubscribe(m.Subject))
	case proto.KindSubstitute:
		d.emit(n, d.st[n].HandleSubstitute(m.Old, m.New))
	case proto.KindPush:
		d.h.Cache(n).Store(m.Version, m.Expiry)
		// Forward across the DUP tree only if this node has not already
		// forwarded this version. The monotone guard both deduplicates
		// concurrent pushes and breaks propagation cycles that transient
		// subscriber states could otherwise create. It is deliberately
		// independent of the cache: a node whose cache was refreshed by a
		// passing reply must still forward the push to its subscribers.
		if m.Version > d.lastPushed[n] {
			d.lastPushed[n] = m.Version
			d.pushFrom(n, m.Version, m.Expiry)
		}
	default:
		panic(fmt.Sprintf("dupscheme: unexpected message %v", m))
	}
}
