package dupscheme

import (
	"testing"

	"dup/internal/proto"
	"dup/internal/scheme/schemetest"
	"dup/internal/topology"
)

// Paper tree ids: N1=0 N2=1 N3=2 N4=3 N5=4 N6=5 N7=6 N8=7.

func TestSubscribeOnHitIsExplicit(t *testing.T) {
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	if p := h.Access(5, 7, false); p != nil {
		t.Fatalf("hit access returned piggyback %+v", p)
	}
	if !d.State(5).Interested() {
		t.Fatal("N6 not subscribed after 7 queries")
	}
	// subscribe(N6) travels N5 -> N3 -> N2 -> N1: the first hop (N6->N5)
	// plus three forwards = 4 charged hops.
	h.Drain()
	if got := h.HopsSent[proto.KindSubscribe]; got != 4 {
		t.Fatalf("subscribe hops = %d, want 4", got)
	}
	if !d.State(0).Contains(5) {
		t.Fatal("root never heard about N6")
	}
}

func TestSubscribeRidesRequestOnMiss(t *testing.T) {
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	p := h.Access(5, 7, true)
	if p == nil || p.Kind != proto.KindSubscribe || p.Subject != 5 {
		t.Fatalf("miss access piggyback = %+v, want subscribe(5)", p)
	}
	if h.HopsSent[proto.KindSubscribe] != 0 {
		t.Fatal("piggybacked subscribe was charged hops")
	}
	// Ride the request up the paper tree: each visited node processes it.
	for _, hop := range []int{4, 2, 1, 0} {
		if p == nil {
			t.Fatalf("piggyback absorbed before reaching node %d", hop)
		}
		p = d.OnPiggyback(hop, p)
	}
	if p != nil {
		t.Fatalf("piggyback survived the root: %+v", p)
	}
	if !d.State(0).Contains(5) || !d.State(2).Contains(5) {
		t.Fatal("virtual path not installed by piggybacked subscribe")
	}
	if h.HopsSent[proto.KindSubscribe] != 0 {
		t.Fatal("riding subscribe charged hops")
	}
}

func TestPaperFigure2PushHops(t *testing.T) {
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	// N6 and N4 interested (Figure 2 (b)).
	h.Access(5, 7, false)
	h.Drain()
	h.Access(3, 7, false)
	h.Drain()

	h.SetNow(3540)
	d.OnRefresh(1, 7200)
	h.Drain()
	// The paper's worked example: three push hops (N1->N3, N3->N4, N3->N6).
	if got := h.HopsSent[proto.KindPush]; got != 3 {
		t.Fatalf("push hops = %d, want 3", got)
	}
	for _, n := range []int{2, 3, 5} {
		if !h.Cache(n).Valid(3600) {
			t.Errorf("node %d missed the push", n)
		}
	}
	// Virtual-path members N2 and N5 must not receive pushes.
	for _, n := range []int{1, 4} {
		if h.Cache(n).Has() {
			t.Errorf("virtual-path node %d received a push", n)
		}
	}
}

func TestHopByHopAblationChargesTreeDistance(t *testing.T) {
	d := NewHopByHop()
	h := schemetest.New(topology.Paper(), 6, d)
	h.Access(5, 7, false) // only N6: root pushes over 4 tree edges
	h.Drain()
	d.OnRefresh(1, 7200)
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 4 {
		t.Fatalf("hop-by-hop push hops = %d, want 4 (tree distance)", got)
	}
	if d.Name() != "DUP-hopbyhop" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestUnsubscribeAtIntervalEnd(t *testing.T) {
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	h.Access(5, 7, false)
	h.Drain()
	h.ResetCounts()
	d.OnIntervalEnd()
	h.Drain()
	if d.State(5).Interested() {
		t.Fatal("N6 still subscribed after idle interval")
	}
	for _, n := range []int{0, 1, 2, 4} {
		if d.State(n).OnVirtualPath() {
			t.Fatalf("node %d still on virtual path: %v", n, d.State(n).Subscribers())
		}
	}
	if h.HopsSent[proto.KindUnsubscribe] == 0 {
		t.Fatal("no unsubscribe traffic was charged")
	}
}

func TestPushDeduplicatedAndForwardedDespiteWarmCache(t *testing.T) {
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	h.Access(5, 7, false)
	h.Drain()
	h.Access(3, 7, false)
	h.Drain()
	// N3's cache is pre-warmed by a passing reply of version 1; the push
	// must still be forwarded to N4 and N6.
	h.Cache(2).Store(1, 7200)
	d.OnRefresh(1, 7200)
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 3 {
		t.Fatalf("push hops = %d, want 3 despite warm cache at N3", got)
	}
	// A replayed push of the same version must not cascade again.
	d.OnMessage(&proto.Message{Kind: proto.KindPush, To: 2, Version: 1, Expiry: 7200})
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 3 {
		t.Fatalf("duplicate push cascaded: %d hops", got)
	}
}

func TestUnexpectedMessagePanics(t *testing.T) {
	d := New()
	schemetest.New(topology.Paper(), 6, d)
	defer func() {
		if recover() == nil {
			t.Fatal("request message did not panic DUP scheme")
		}
	}()
	d.OnMessage(&proto.Message{Kind: proto.KindRequest, To: 1})
}

func TestBadPiggybackPanics(t *testing.T) {
	d := New()
	schemetest.New(topology.Paper(), 6, d)
	defer func() {
		if recover() == nil {
			t.Fatal("interest piggyback did not panic DUP scheme")
		}
	}()
	d.OnPiggyback(1, &proto.Piggyback{Kind: proto.KindInterest, Subject: 2})
}

// Failure-case tests replay Section III-C on the paper tree via the
// scheme-level repair hook. Ids: N1=0 N2=1 N3=2 N4=3 N5=4 N6=5 N7=6 N8=7.

// setupFig2b builds the Figure 2 (b) state: N4 and N6 interested, N3 a
// DUP-tree branch point.
func setupFig2b(t *testing.T) (*DUP, *schemetest.Host) {
	t.Helper()
	d := New()
	h := schemetest.New(topology.Paper(), 6, d)
	h.Access(5, 7, false)
	h.Drain()
	h.Access(3, 7, false)
	h.Drain()
	return d, h
}

func TestFailureCase1NoVirtualPath(t *testing.T) {
	// N8 (7) is on no virtual path; its failure must trigger nothing.
	d, h := setupFig2b(t)
	before := h.HopsSent[proto.KindSubscribe] + h.HopsSent[proto.KindUnsubscribe] +
		h.HopsSent[proto.KindSubstitute]
	d.OnNodeDown(7, 5, nil)
	h.Drain()
	after := h.HopsSent[proto.KindSubscribe] + h.HopsSent[proto.KindUnsubscribe] +
		h.HopsSent[proto.KindSubstitute]
	if after != before {
		t.Fatalf("case 1 produced %d control hops", after-before)
	}
}

func TestFailureCase2EndOfVirtualPath(t *testing.T) {
	// N6 (5) fails: its parent N5 (4) holds it as the branch entry and
	// must clear the virtual path; the root ends up pushing only to N4.
	d, h := setupFig2b(t)
	d.OnNodeDown(5, 4, nil)
	h.Drain()
	if d.State(4).OnVirtualPath() {
		t.Fatalf("N5 still on virtual path: %v", d.State(4).Subscribers())
	}
	if got := d.State(0).Subscribers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("root list = %v, want [3]", got)
	}
}

func TestFailureCase3InsideVirtualPath(t *testing.T) {
	// N5 (4) fails: it was a virtual-path intermediate between N3 and N6.
	// Repair reattaches N6 under N3 and N6 re-announces its representative
	// (itself), keeping it reachable.
	d, h := setupFig2b(t)
	d.OnNodeDown(4, 2, []int{5})
	h.Drain()
	if !d.State(2).Contains(5) {
		t.Fatalf("N3 lost N6 after case-3 repair: %v", d.State(2).Subscribers())
	}
	// A push from the root must still reach both interested nodes.
	d.OnRefresh(5, 99999)
	h.Drain()
	if !h.Cache(5).Valid(0) || !h.Cache(3).Valid(0) {
		t.Fatal("push missed an interested node after case-3 repair")
	}
}

func TestFailureCase4BranchPoint(t *testing.T) {
	// N3 (2) fails: a DUP-tree branch point with two subscribers. Its
	// former children N4 and N5 re-announce their representatives (N4 and
	// N6) to N2; the root's entry for N3 is replaced through the repair.
	d, h := setupFig2b(t)
	// Root currently lists N3.
	if got := d.State(0).Subscribers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("precondition: root list = %v", got)
	}
	d.OnNodeDown(2, 1, []int{3, 4})
	h.Drain()
	d.OnRefresh(7, 99999)
	h.Drain()
	if !h.Cache(5).Valid(0) || !h.Cache(3).Valid(0) {
		t.Fatalf("push missed interested nodes after branch-point failure; root=%v N2=%v",
			d.State(0).Subscribers(), d.State(1).Subscribers())
	}
	if d.State(2).Len() != 0 {
		t.Fatal("failed node's state not reset")
	}
}

func TestNodeUpResetsState(t *testing.T) {
	d, h := setupFig2b(t)
	_ = h
	d.OnNodeUp(5, 4)
	if d.State(5).OnVirtualPath() || d.State(5).Interested() {
		t.Fatal("recovered node kept protocol state")
	}
}

func TestRootFailurePanicsInSimulator(t *testing.T) {
	d, h := setupFig2b(t)
	_ = h
	defer func() {
		if recover() == nil {
			t.Fatal("root failure did not panic (unsupported in the simulator)")
		}
	}()
	d.OnNodeDown(0, -1, []int{1})
}
