package cup

import (
	"testing"

	"dup/internal/proto"
	"dup/internal/scheme/schemetest"
	"dup/internal/topology"
)

// Paper tree ids: N1=0 N2=1 N3=2 N4=3 N5=4 N6=5 N7=6 N8=7.

func TestInterestAnnouncedExplicitlyOnHit(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	// Seven hit-queries at N6: crosses the threshold on a locally served
	// query, so the announcement is an explicit one-hop message.
	if p := h.Access(5, 7, false); p != nil {
		t.Fatalf("hit access returned piggyback %+v", p)
	}
	if !c.Interested(5) {
		t.Fatal("N6 not interested after 7 queries")
	}
	if h.HopsSent[proto.KindInterest] != 1 {
		t.Fatalf("interest hops = %d, want 1", h.HopsSent[proto.KindInterest])
	}
}

func TestInterestRidesRequestOnMiss(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	p := h.Access(5, 7, true)
	if p == nil || p.Kind != proto.KindInterest || p.Subject != 5 {
		t.Fatalf("miss access piggyback = %+v, want interest(5)", p)
	}
	if h.HopsSent[proto.KindInterest] != 0 {
		t.Fatal("piggybacked interest was charged hops")
	}
}

func TestBranchAggregationPenetratesIntermediates(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(5, 7, false) // N6 interested, announces to N5
	h.Drain()             // N5 records branch, announces to N3, ... up to root

	// The push must travel N1->N2->N3->N5->N6: four hops.
	h.SetNow(3540)
	c.OnRefresh(1, 7200)
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 4 {
		t.Fatalf("push hops = %d, want 4 (hop-by-hop chain to N6)", got)
	}
	if !h.Cache(5).Valid(3600) {
		t.Fatal("interested node N6 did not cache the push")
	}
	// Intermediates received but must not have stored the index.
	for _, mid := range []int{1, 2, 4} {
		if h.Cache(mid).Has() {
			t.Errorf("uninterested intermediate %d cached the pushed index", mid)
		}
	}
}

func TestCutoffVariantStopsAtUninterestedHop(t *testing.T) {
	c := NewCutoff()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(5, 7, false) // N6 interested; in cut-off mode only N5 hears
	h.Drain()
	c.OnRefresh(1, 7200)
	h.Drain()
	// N5 is not interested, so the root has no interested child on this
	// path: no push leaves the root.
	if got := h.HopsSent[proto.KindPush]; got != 0 {
		t.Fatalf("cut-off CUP pushed %d hops, want 0 (N6 is cut off)", got)
	}
	if h.Cache(5).Has() {
		t.Fatal("cut-off N6 received a push anyway")
	}
}

func TestCutoffChainDelivers(t *testing.T) {
	// When the whole chain N2..N6 is interested, the cut-off variant does
	// deliver.
	c := NewCutoff()
	h := schemetest.New(topology.Paper(), 6, c)
	for _, n := range []int{1, 2, 4, 5} {
		h.Access(n, 7, false)
	}
	h.Drain()
	c.OnRefresh(1, 7200)
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 4 {
		t.Fatalf("push hops = %d, want 4", got)
	}
	if !h.Cache(5).Valid(0) {
		t.Fatal("N6 missed the push")
	}
}

func TestInterestLossWithdrawsAnnouncement(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(5, 7, false)
	h.Drain()
	// Interval ends with N6 below the threshold.
	h.ResetCounts()
	c.OnIntervalEnd()
	h.Drain()
	if c.Interested(5) {
		t.Fatal("N6 still interested after idle interval")
	}
	c.OnRefresh(1, 7200)
	h.Drain()
	if got := h.HopsSent[proto.KindPush]; got != 0 {
		t.Fatalf("push hops after uninterest = %d, want 0", got)
	}
}

func TestPushDeduplicated(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(5, 7, false)
	h.Drain()
	c.OnRefresh(1, 7200)
	h.Drain()
	first := h.HopsSent[proto.KindPush]
	// A duplicate push of the same version at N2 must not cascade again.
	c.OnMessage(&proto.Message{Kind: proto.KindPush, To: 1, Version: 1, Expiry: 7200})
	h.Drain()
	if h.HopsSent[proto.KindPush] != first {
		t.Fatal("duplicate push was forwarded again")
	}
}

func TestOnPiggybackChainsUpstream(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	_ = h
	// N5 (4) absorbs N6's interest bit; its own wanting state flips, so
	// the announcement for N5 keeps riding.
	p := c.OnPiggyback(4, &proto.Piggyback{Kind: proto.KindInterest, Subject: 5})
	if p == nil || p.Subject != 4 || p.Kind != proto.KindInterest {
		t.Fatalf("OnPiggyback returned %+v, want interest(4)", p)
	}
	// Delivering it again at N3 (2) chains once more.
	p = c.OnPiggyback(2, &proto.Piggyback{Kind: proto.KindInterest, Subject: 4})
	if p == nil || p.Subject != 2 {
		t.Fatalf("OnPiggyback at N3 returned %+v, want interest(2)", p)
	}
	// At the root it is absorbed.
	if p := c.OnPiggyback(0, &proto.Piggyback{Kind: proto.KindInterest, Subject: 1}); p != nil {
		t.Fatalf("root did not absorb the interest bit: %+v", p)
	}
}

func TestUnexpectedMessagePanics(t *testing.T) {
	c := New()
	schemetest.New(topology.Paper(), 6, c)
	defer func() {
		if recover() == nil {
			t.Fatal("reply message did not panic CUP")
		}
	}()
	c.OnMessage(&proto.Message{Kind: proto.KindReply, To: 1})
}

func TestNames(t *testing.T) {
	if New().Name() != "CUP" || NewCutoff().Name() != "CUP-cutoff" {
		t.Fatal("scheme names wrong")
	}
}

func TestOnNodeDownReannouncesChildren(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(5, 7, false) // N6 interested; chain announced to root
	h.Drain()
	// N5 (4) fails; its child N6 (5) reattaches under N3 (2) and must
	// re-announce so pushes keep flowing.
	c.OnNodeDown(4, 2, []int{5})
	h.Drain()
	c.OnRefresh(3, 99999)
	h.Drain()
	if !h.Cache(5).Valid(0) {
		t.Fatal("N6 missed the push after its parent failed")
	}
}

func TestOnNodeDownClearsFailedNodeState(t *testing.T) {
	c := New()
	h := schemetest.New(topology.Paper(), 6, c)
	h.Access(4, 7, false) // N5 interested
	h.Drain()
	c.OnNodeDown(4, 2, nil)
	h.Drain()
	if c.Interested(4) {
		t.Fatal("failed node still marked interested")
	}
	c.OnNodeUp(4, 2)
	if c.Interested(4) {
		t.Fatal("recovered node kept interest")
	}
}
