// Package cup implements the Controlled Update Propagation baseline
// (Roussopoulos & Baker, USENIX ATC 2003) as the DUP paper models it: the
// authority node pushes fresh indices hop-by-hop down the index search
// tree, and each node forwards the update only to children that have
// announced their own interest.
//
// Interest uses the same threshold policy as DUP (more than c queries
// received in the last TTL interval) and is announced one hop, to the
// node's parent ("extra messages are used to inform neighbors about their
// interests"); the hops of these announcements are charged to CUP's query
// cost. Because the push travels strictly hop-by-hop through interested
// nodes, an interested node is cut off from updates whenever any node
// between it and the root is not interested itself — the structural
// limitation Section II-B criticises and DUP removes with its dynamic
// tree: "If intermediate nodes decide to stop forwarding the index, N6 is
// cut off from the update information. This incurs long delay and high
// cost when N6 needs to access the index." The same property explains
// Figure 7: with large Zipf θ the hot nodes are scattered and the
// intermediate nodes between them and the root are rarely interested, so
// CUP's pushes rarely reach the hot spots.
package cup

import (
	"fmt"
	"slices"

	"dup/internal/proto"
	"dup/internal/scheme"
)

// CUP is the controlled update propagation scheme.
type CUP struct {
	h          scheme.Host
	interested []bool  // self-interest per node
	childOK    [][]int // per node: children that announced interest, sorted
	announced  []bool  // wanting state the parent last heard
	lastPushed []int64 // highest version each node has forwarded on

	// Cutoff selects the degenerate variant Section II-B warns about: a
	// node announces only its own interest, so a push stops at the first
	// hop whose node is not interested itself and deep interested nodes
	// are cut off from updates ("if intermediate nodes decide to stop
	// forwarding the index, N6 is cut off from the update information").
	// The default (false) is the paper's evaluated CUP: branch interest is
	// aggregated upstream and the push travels hop-by-hop through
	// intermediate nodes toward the interested ones. Intermediates
	// "receive the updated index even if they do not need it" — they
	// forward without storing; only interested nodes refresh their caches.
	Cutoff bool

	// IntermediateCache makes uninterested intermediate nodes store the
	// indices they forward (a calibration variant; off by default — see
	// the CUP substitution note in DESIGN.md).
	IntermediateCache bool
}

// New returns the paper's CUP: branch-aggregated interest, hop-by-hop
// pushes through (non-caching) intermediates.
func New() *CUP { return &CUP{} }

// NewCutoff returns the cut-off variant of Section II-B's criticism.
func NewCutoff() *CUP { return &CUP{Cutoff: true} }

// Name returns "CUP", or "CUP-cutoff" for the cut-off variant.
func (c *CUP) Name() string {
	if c.Cutoff {
		return "CUP-cutoff"
	}
	return "CUP"
}

// Attach implements scheme.Scheme.
func (c *CUP) Attach(h scheme.Host) {
	n := h.Tree().N()
	c.h = h
	c.interested = make([]bool, n)
	c.childOK = make([][]int, n)
	c.announced = make([]bool, n)
	c.lastPushed = make([]int64, n)
	for i := range c.lastPushed {
		c.lastPushed[i] = -1
	}
}

// Interested reports whether node n currently registers interest (tests).
func (c *CUP) Interested(n int) bool { return c.interested[n] }

// registerChild records child's interest announcement at node n. The
// per-node registration list is kept sorted so that pushDown fans out in a
// deterministic child order — map iteration here would make same-seed runs
// diverge in their (time, seq) event interleaving.
func (c *CUP) registerChild(n, child int) {
	s := c.childOK[n]
	i, found := slices.BinarySearch(s, child)
	if found {
		return
	}
	c.childOK[n] = slices.Insert(s, i, child)
}

// unregisterChild removes child's registration at node n, if present.
func (c *CUP) unregisterChild(n, child int) {
	if i, found := slices.BinarySearch(c.childOK[n], child); found {
		c.childOK[n] = slices.Delete(c.childOK[n], i, i+1)
	}
}

// wanting reports whether node n should be announced to its parent: its
// own interest, plus — except in the cut-off variant — any announced
// branch.
func (c *CUP) wanting(n int) bool {
	if c.interested[n] {
		return true
	}
	return !c.Cutoff && len(c.childOK[n]) > 0
}

// reconcile sends an interest or uninterest announcement to node n's parent
// whenever n's wanting state no longer matches what was last announced.
func (c *CUP) reconcile(n int) {
	if c.h.Tree().IsRoot(n) {
		return
	}
	w := c.wanting(n)
	if w == c.announced[n] {
		return
	}
	c.announced[n] = w
	kind := proto.KindInterest
	if !w {
		kind = proto.KindUninterest
	}
	m := proto.NewMessage()
	m.Kind, m.To, m.Subject = kind, c.h.Tree().Parent(n), n
	c.h.Send(m)
}

// OnAccess implements scheme.Scheme: the interest-gain policy, evaluated on
// every query arrival. When the query is a miss the announcement rides the
// forwarded request as an interest bit instead of costing a hop.
func (c *CUP) OnAccess(n int, miss bool) *proto.Piggyback {
	if c.interested[n] || c.h.IntervalCount(n) <= c.h.Threshold() {
		return nil
	}
	c.interested[n] = true
	if miss && !c.h.Tree().IsRoot(n) && !c.announced[n] {
		c.announced[n] = true
		return &proto.Piggyback{Kind: proto.KindInterest, Subject: n}
	}
	c.reconcile(n)
	return nil
}

// OnPiggyback implements scheme.Scheme: an interest bit from child
// m.Subject is absorbed here (this node is the child's parent). In the
// aggregated variant, this node's own announcement may continue riding the
// same request when its wanting state just flipped.
func (c *CUP) OnPiggyback(n int, p *proto.Piggyback) *proto.Piggyback {
	if p.Kind != proto.KindInterest {
		panic(fmt.Sprintf("cup: unexpected piggyback %v", p.Kind))
	}
	c.registerChild(n, p.Subject)
	if c.h.Tree().IsRoot(n) {
		return nil
	}
	if c.wanting(n) && !c.announced[n] {
		c.announced[n] = true
		return &proto.Piggyback{Kind: proto.KindInterest, Subject: n}
	}
	return nil
}

// OnIntervalEnd implements scheme.Scheme: the interest-loss policy. A node
// whose query count over the interval that just finished did not exceed
// the threshold stops being interested.
func (c *CUP) OnIntervalEnd() {
	for n := range c.interested {
		if c.interested[n] && c.h.IntervalCount(n) <= c.h.Threshold() {
			c.interested[n] = false
			c.reconcile(n)
		}
	}
}

// OnRefresh implements scheme.Scheme: the root starts the hop-by-hop push
// toward its interested children.
func (c *CUP) OnRefresh(v int64, expiry float64) {
	root := c.h.Tree().Root()
	c.lastPushed[root] = v
	c.pushDown(root, v, expiry)
}

// pushDown forwards version v to every interested child of node n, in
// ascending child order (deterministic fan-out).
func (c *CUP) pushDown(n int, v int64, expiry float64) {
	for _, child := range c.childOK[n] {
		m := proto.NewMessage()
		m.Kind, m.To, m.Origin = proto.KindPush, child, n
		m.Version, m.Expiry = v, expiry
		c.h.Send(m)
	}
}

// OnNodeDown implements scheme.Scheme: the failed node's registrations are
// purged and its former children re-announce themselves to their new
// parent, so interested branches keep receiving pushes.
func (c *CUP) OnNodeDown(f, oldParent int, formerChildren []int) {
	// The failed node's own state is gone.
	c.interested[f] = false
	c.announced[f] = false
	c.childOK[f] = c.childOK[f][:0]
	c.lastPushed[f] = -1
	// Its registration at the parent is stale.
	c.unregisterChild(oldParent, f)
	// Children that believe they are registered re-announce over their new
	// edge (one charged hop each); the parent's own announcement state is
	// reconciled afterwards.
	for _, child := range formerChildren {
		if c.announced[child] {
			m := proto.NewMessage()
			m.Kind, m.To, m.Subject = proto.KindInterest, oldParent, child
			c.h.Send(m)
		}
	}
	c.reconcile(oldParent)
}

// OnNodeUp implements scheme.Scheme: the node rejoins blank.
func (c *CUP) OnNodeUp(f, parent int) {
	c.interested[f] = false
	c.announced[f] = false
	c.childOK[f] = c.childOK[f][:0]
	c.lastPushed[f] = -1
}

// OnMessage implements scheme.Scheme.
func (c *CUP) OnMessage(m *proto.Message) {
	n := m.To
	switch m.Kind {
	case proto.KindInterest:
		c.registerChild(n, m.Subject)
		c.reconcile(n)
	case proto.KindUninterest:
		c.unregisterChild(n, m.Subject)
		c.reconcile(n)
	case proto.KindPush:
		// Only a node that needs the index stores it; an uninterested
		// intermediate receives and forwards without refreshing its cache.
		// The monotone forward guard deduplicates pushes that raced with
		// interest changes, independently of the cache (which passing
		// replies also refresh).
		if c.interested[n] || c.IntermediateCache {
			c.h.Cache(n).Store(m.Version, m.Expiry)
		}
		if m.Version > c.lastPushed[n] {
			c.lastPushed[n] = m.Version
			c.pushDown(n, m.Version, m.Expiry)
		}
	default:
		panic(fmt.Sprintf("cup: unexpected message %v", m))
	}
}
