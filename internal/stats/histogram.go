package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations (query latencies in hops are
// small non-negative integers) in unit-width bins, with an overflow bin for
// values at or above the configured cap.
type Histogram struct {
	bins     []int64
	overflow int64
	total    int64
}

// NewHistogram returns a histogram with bins for values 0..cap-1 and an
// overflow bin. It panics if cap <= 0.
func NewHistogram(capValue int) *Histogram {
	if capValue <= 0 {
		panic(fmt.Sprintf("stats: histogram cap must be positive, got %d", capValue))
	}
	return &Histogram{bins: make([]int64, capValue)}
}

// Add records one observation. Negative values panic — hop counts cannot be
// negative and a negative observation indicates an accounting bug.
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	if v >= len(h.bins) {
		h.overflow++
	} else {
		h.bins[v]++
	}
	h.total++
}

// Count returns the number of observations equal to v, or the overflow
// count when v is the cap or larger.
func (h *Histogram) Count(v int) int64 {
	if v < 0 {
		return 0
	}
	if v >= len(h.bins) {
		return h.overflow
	}
	return h.bins[v]
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are <= v. Overflowed observations are reported as the
// cap value. It returns 0 when the histogram is empty.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := int64(p * float64(h.total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for v, c := range h.bins {
		cum += c
		if cum >= need {
			return v
		}
	}
	return len(h.bins)
}

// String renders a compact sparkline-style summary of non-empty bins, e.g.
// "0:5310 1:211 2:40 ge8:3". Useful in trace output and test failures.
func (h *Histogram) String() string {
	var b strings.Builder
	for v, c := range h.bins {
		if c > 0 {
			fmt.Fprintf(&b, "%d:%d ", v, c)
		}
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "ge%d:%d ", len(h.bins), h.overflow)
	}
	return strings.TrimSpace(b.String())
}

// Quantiles is a convenience for computing several percentiles of a raw
// float64 sample in one sort. It returns one value per requested p.
func Quantiles(sample []float64, ps ...float64) []float64 {
	if len(sample) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		if p >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		idx := int(p * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}
