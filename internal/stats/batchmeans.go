package stats

// BatchMeans estimates the confidence interval of the mean of a correlated
// stream (successive query latencies in a simulation are correlated through
// shared cache state) by grouping observations into fixed-size batches and
// treating the batch means as independent samples. This is the classic
// method-of-batch-means used by simulation texts and implicitly by the
// paper's "run until the 95% confidence interval is obtained" rule.
type BatchMeans struct {
	batchSize int64
	current   Online
	batches   Online
}

// NewBatchMeans returns a BatchMeans with the given batch size. Sizes below
// 1 are clamped to 1 (which degenerates to the plain sample CI).
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize < 1 {
		batchSize = 1
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation, closing a batch whenever batchSize
// observations have accumulated.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() >= b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches. Observations in the
// unfinished tail batch are excluded, keeping batches equally weighted.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI95 returns the 95% confidence half-width computed over batch means.
func (b *BatchMeans) CI95() float64 { return b.batches.CI95() }

// RelativeCI95 returns CI95 relative to the grand mean; see Online.
func (b *BatchMeans) RelativeCI95() float64 { return b.batches.RelativeCI95() }
