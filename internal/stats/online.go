// Package stats provides the statistics machinery the evaluation relies on:
// numerically stable online moments (Welford), 95% confidence intervals via
// Student's t distribution, batch-means analysis for correlated simulation
// output, and fixed-width histograms for latency distributions.
package stats

import "math"

// Online accumulates count, mean and variance of a stream of observations
// in a single pass using Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddN records the same observation value n times. It is useful when an
// aggregate counter stands in for individual samples.
func (o *Online) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		o.Add(x)
	}
}

// N returns the number of observations recorded.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean, or 0 when no observations were recorded.
func (o *Online) Mean() float64 { return o.mean }

// Sum returns the sum of all observations.
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// StdErr returns the standard error of the mean, or 0 with no observations.
func (o *Online) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return o.StdDev() / math.Sqrt(float64(o.n))
}

// Min returns the smallest observation, or 0 with no observations.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 with no observations.
func (o *Online) Max() float64 { return o.max }

// Reset discards all recorded observations.
func (o *Online) Reset() { *o = Online{} }

// Merge folds other into o, as if every observation added to other had been
// added to o. It uses the parallel variant of Welford's update.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	delta := other.mean - o.mean
	total := o.n + other.n
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(total)
	o.mean += delta * float64(other.n) / float64(total)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = total
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using Student's t quantile for the observed sample size. It returns 0 for
// fewer than two observations.
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return TQuantile95(o.n-1) * o.StdErr()
}

// RelativeCI95 returns CI95 divided by |mean|, the relative half-width used
// as the simulation stopping rule. It returns +Inf when the mean is zero
// and fewer than two observations have identical value zero... specifically:
// if the mean is 0 it returns 0 when the variance is also 0 (a degenerate
// but converged stream) and +Inf otherwise.
func (o *Online) RelativeCI95() float64 {
	ci := o.CI95()
	if o.mean == 0 {
		if ci == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return ci / math.Abs(o.mean)
}
