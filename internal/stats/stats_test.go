package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d, want 8", o.N())
	}
	if !almostEqual(o.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	// Sample variance (n-1) of this classic dataset is 32/7.
	if !almostEqual(o.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", o.Variance(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", o.Min(), o.Max())
	}
	if !almostEqual(o.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", o.Sum())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdErr() != 0 || o.CI95() != 0 {
		t.Fatal("empty Online should report zeros")
	}
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Variance() != 0 || o.CI95() != 0 {
		t.Fatal("single-observation Online: mean 3.5, variance 0, CI 0")
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatal("single-observation min/max wrong")
	}
}

func TestOnlineAddN(t *testing.T) {
	var a, b Online
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatal("AddN disagrees with repeated Add")
	}
}

func TestOnlineReset(t *testing.T) {
	var o Online
	o.Add(1)
	o.Add(2)
	o.Reset()
	if o.N() != 0 || o.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	err := quick.Check(func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Online
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(all.Mean())
		return almostEqual(a.Mean(), all.Mean(), 1e-8*scale) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6*(1+all.Variance()))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmptyCases(t *testing.T) {
	var a, b Online
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("merge of empties not empty")
	}
	b.Add(7)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatal("merge into empty lost data")
	}
	var c Online
	a.Merge(&c) // empty into non-empty
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatal("merge of empty perturbed state")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// 10 observations 1..10: mean 5.5, sd ~3.0277, stderr ~0.9574,
	// t(9) = 2.262 -> CI ~2.1659.
	var o Online
	for i := 1; i <= 10; i++ {
		o.Add(float64(i))
	}
	if !almostEqual(o.CI95(), 2.1659, 0.001) {
		t.Fatalf("CI95 = %v, want ~2.1659", o.CI95())
	}
	if !almostEqual(o.RelativeCI95(), 2.1659/5.5, 0.001) {
		t.Fatalf("RelativeCI95 = %v", o.RelativeCI95())
	}
}

func TestRelativeCI95ZeroMean(t *testing.T) {
	var o Online
	o.Add(0)
	o.Add(0)
	if o.RelativeCI95() != 0 {
		t.Fatalf("all-zero stream should be converged, got %v", o.RelativeCI95())
	}
	var p Online
	p.Add(-1)
	p.Add(1)
	if !math.IsInf(p.RelativeCI95(), 1) {
		t.Fatalf("zero-mean nonzero-variance stream should give +Inf, got %v", p.RelativeCI95())
	}
}

func TestTQuantile95(t *testing.T) {
	cases := map[int64]float64{1: 12.706, 5: 2.571, 30: 2.042, 120: 1.98, 1000000: 1.96}
	for df, want := range cases {
		got := TQuantile95(df)
		if !almostEqual(got, want, 0.01) {
			t.Errorf("TQuantile95(%d) = %v, want ~%v", df, got, want)
		}
	}
	if TQuantile95(0) != 0 {
		t.Error("TQuantile95(0) should be 0")
	}
	// Monotone decreasing in df.
	prev := TQuantile95(1)
	for df := int64(2); df < 200; df++ {
		cur := TQuantile95(df)
		if cur > prev+1e-9 {
			t.Fatalf("t quantile increased at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestBatchMeansConvergesOnIID(t *testing.T) {
	bm := NewBatchMeans(100)
	// Deterministic pseudo-noise around 10.
	x := 0.5
	for i := 0; i < 100000; i++ {
		x = math.Mod(x*997+0.1234567, 1)
		bm.Add(10 + (x - 0.5))
	}
	if bm.Batches() != 1000 {
		t.Fatalf("Batches = %d, want 1000", bm.Batches())
	}
	if !almostEqual(bm.Mean(), 10, 0.01) {
		t.Fatalf("Mean = %v, want ~10", bm.Mean())
	}
	if bm.RelativeCI95() > 0.01 {
		t.Fatalf("RelativeCI95 = %v, should be tiny", bm.RelativeCI95())
	}
}

func TestBatchMeansExcludesPartialTail(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 10; i++ {
		bm.Add(1)
	}
	for i := 0; i < 5; i++ {
		bm.Add(100) // unfinished batch, must not count
	}
	if bm.Batches() != 1 {
		t.Fatalf("Batches = %d, want 1", bm.Batches())
	}
	if bm.Mean() != 1 {
		t.Fatalf("Mean = %v, want 1 (tail excluded)", bm.Mean())
	}
}

func TestBatchMeansClampsBatchSize(t *testing.T) {
	bm := NewBatchMeans(0)
	bm.Add(2)
	bm.Add(4)
	if bm.Batches() != 2 || bm.Mean() != 3 {
		t.Fatalf("batch size clamp broken: batches=%d mean=%v", bm.Batches(), bm.Mean())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 0, 1, 3, 7, 8, 20} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(3) != 1 || h.Count(7) != 1 {
		t.Fatal("bin counts wrong")
	}
	if h.Count(8) != 2 || h.Count(100) != 2 {
		t.Fatalf("overflow count = %d, want 2", h.Count(8))
	}
	if h.Count(-1) != 0 {
		t.Fatal("negative query should count 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		if v < 100 {
			h.Add(v)
		} else {
			h.Add(150) // overflows
		}
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("p50 = %d, want 50", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Errorf("p99 = %d, want 99", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %d, want 100 (cap, from overflow)", p)
	}
	if NewHistogram(4).Percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"cap=0":    func() { NewHistogram(0) },
		"negative": func() { NewHistogram(4).Add(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(0)
	h.Add(2)
	h.Add(9)
	got := h.String()
	want := "0:2 2:1 ge4:1"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestQuantiles(t *testing.T) {
	sample := []float64{5, 1, 4, 2, 3}
	qs := Quantiles(sample, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("Quantiles = %v", qs)
	}
	empty := Quantiles(nil, 0.5)
	if empty[0] != 0 {
		t.Fatal("empty sample quantile should be 0")
	}
	// Input must not be mutated.
	if sample[0] != 5 {
		t.Fatal("Quantiles mutated its input")
	}
}

func TestOnlinePropertyMeanBounds(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var o Online
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			o.Add(x)
		}
		if o.N() > 0 {
			ok = o.Mean() >= o.Min()-1e-9 && o.Mean() <= o.Max()+1e-9 && o.Variance() >= 0
		}
		return ok
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
