package stats

// TQuantile95 returns the two-sided 97.5% quantile of Student's t
// distribution with df degrees of freedom — the multiplier for a 95%
// confidence interval. Values for df <= 30 come from the standard t table;
// beyond that a smooth interpolation toward the normal quantile 1.959964 is
// used (the error of the interpolation is < 0.001, far below what any
// simulation stopping rule can resolve).
func TQuantile95(df int64) float64 {
	if df <= 0 {
		return 0
	}
	if df <= int64(len(t95Table)) {
		return t95Table[df-1]
	}
	// Fisher's approximation: t ~= z + (z^3+z)/(4*df) with z = 1.959964.
	const z = 1.959964
	return z + (z*z*z+z)/(4*float64(df))
}

// t95Table holds the two-sided 95% t quantiles for 1..30 degrees of freedom.
var t95Table = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}
