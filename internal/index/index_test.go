package index

import (
	"testing"
	"testing/quick"
)

func TestAuthoritySchedule(t *testing.T) {
	// Paper defaults: TTL 3600 s, push lead 60 s.
	a := NewAuthority(3600, 60)
	cases := []struct {
		t    float64
		want int64
	}{
		{0, 0}, {100, 0}, {3539.9, 0},
		{3540, 1}, // 60 s before first expiry: version 1 issued
		{3600, 1}, {7139, 1}, {7140, 2},
	}
	for _, c := range cases {
		if got := a.VersionAt(c.t); got != c.want {
			t.Errorf("VersionAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if a.Expiry(0) != 3600 || a.Expiry(1) != 7200 {
		t.Errorf("Expiry wrong: %v, %v", a.Expiry(0), a.Expiry(1))
	}
	if a.IssueTime(0) != 0 || a.IssueTime(1) != 3540 || a.IssueTime(2) != 7140 {
		t.Errorf("IssueTime wrong: %v %v %v", a.IssueTime(1), a.IssueTime(2), a.IssueTime(0))
	}
	if a.IntervalEnd(0) != 3600 || a.IntervalEnd(2) != 10800 {
		t.Errorf("IntervalEnd wrong")
	}
}

func TestAuthorityZeroLead(t *testing.T) {
	a := NewAuthority(3600, 0)
	if a.VersionAt(3599.999) != 0 {
		t.Error("version bumped early with zero lead")
	}
	if a.VersionAt(3600) != 1 {
		t.Error("version not bumped at TTL with zero lead")
	}
}

func TestAuthorityNegativeTime(t *testing.T) {
	a := NewAuthority(100, 10)
	if a.VersionAt(-5) != 0 {
		t.Error("negative time should clamp to version 0")
	}
}

func TestAuthorityInvariants(t *testing.T) {
	a := NewAuthority(3600, 60)
	err := quick.Check(func(raw uint32) bool {
		tm := float64(raw) / 10
		v := a.VersionAt(tm)
		// The version held at time t must not be expired at t, and its
		// issue time must not be in the future.
		return a.Expiry(v) > tm && a.IssueTime(v) <= tm
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewAuthorityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ttl=0":     func() { NewAuthority(0, 0) },
		"lead<0":    func() { NewAuthority(100, -1) },
		"lead>=ttl": func() { NewAuthority(100, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(3600, 120)
	r := s.Put("movie.avi", "node42", 10)
	if r.Version != 1 || r.Expiry != 3610 || r.Value != "node42" {
		t.Fatalf("Put returned %+v", r)
	}
	got, ok := s.Get("movie.avi")
	if !ok || got != r {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on missing key returned ok")
	}
}

func TestStoreVersionBumpsOnChange(t *testing.T) {
	s := NewStore(100, 10)
	s.Put("k", "a", 0)
	r := s.Put("k", "a", 5) // same value: keep version, refresh expiry
	if r.Version != 1 || r.Expiry != 105 {
		t.Fatalf("same-value Put: %+v", r)
	}
	r = s.Put("k", "b", 6) // value changed: bump
	if r.Version != 2 {
		t.Fatalf("changed-value Put: %+v", r)
	}
}

func TestStoreRefresh(t *testing.T) {
	s := NewStore(100, 10)
	s.Put("k", "a", 0)
	r, ok := s.Refresh("k", 50)
	if !ok || r.Version != 2 || r.Expiry != 150 {
		t.Fatalf("Refresh = %+v, %v", r, ok)
	}
	if _, ok := s.Refresh("missing", 0); ok {
		t.Fatal("Refresh on missing key returned ok")
	}
}

func TestStoreKeepAliveAndExpired(t *testing.T) {
	s := NewStore(1000, 30)
	s.Put("a", "n1", 0)
	s.Put("b", "n2", 0)
	if !s.KeepAlive("a", 25) {
		t.Fatal("KeepAlive on existing key failed")
	}
	if s.KeepAlive("missing", 25) {
		t.Fatal("KeepAlive on missing key succeeded")
	}
	// At t=40: b's last keep-alive was at 0, 40 > 30 -> expired; a is fine.
	exp := s.Expired(40)
	if len(exp) != 1 || exp[0] != "b" {
		t.Fatalf("Expired = %v, want [b]", exp)
	}
	if exp := s.Expired(10); len(exp) != 0 {
		t.Fatalf("Expired(10) = %v, want none", exp)
	}
}

func TestStoreDeleteLenKeys(t *testing.T) {
	s := NewStore(100, 10)
	s.Put("b", "x", 0)
	s.Put("a", "y", 0)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
}

func TestStorePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore(0, 0) did not panic")
		}
	}()
	NewStore(0, 0)
}
