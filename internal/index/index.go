// Package index models the (key, value) mapping a structured peer-to-peer
// network maintains: versioned index entries with absolute expiry times, the
// authority node's refresh/push schedule, and a multi-key store with
// keep-alive tracking for live deployments.
//
// Version semantics: the index for the simulated key is refreshed by its
// authority node once per TTL. Version v is issued at v·TTL and every copy
// of it — wherever cached — expires at (v+1)·TTL. Under the push schemes
// (CUP, DUP) the authority creates version v one lead-time early, at
// v·TTL − lead, and propagates it so that interested nodes never observe an
// expired cache ("the root pushes the updated index to interested nodes
// exactly one minute before the previous index expires", Section IV).
package index

import "fmt"

// Authority describes the refresh schedule of the node that owns the index.
type Authority struct {
	ttl  float64 // index time-to-live, seconds (paper default: 3600)
	lead float64 // how early the next version is created, seconds (paper: 60)
}

// NewAuthority returns an authority with the given TTL and push lead time.
// Use lead 0 for schemes without proactive pushes (PCX). It panics unless
// 0 <= lead < ttl.
func NewAuthority(ttl, lead float64) *Authority {
	if ttl <= 0 {
		panic(fmt.Sprintf("index: ttl must be positive, got %v", ttl))
	}
	if lead < 0 || lead >= ttl {
		panic(fmt.Sprintf("index: lead must be in [0, ttl), got %v", lead))
	}
	return &Authority{ttl: ttl, lead: lead}
}

// TTL returns the index time-to-live in seconds.
func (a *Authority) TTL() float64 { return a.ttl }

// Lead returns the push lead time in seconds.
func (a *Authority) Lead() float64 { return a.lead }

// VersionAt returns the version the authority node holds at time t: version
// v from v·TTL − lead onward (version 0 from the start of time).
func (a *Authority) VersionAt(t float64) int64 {
	if t < 0 {
		return 0
	}
	return int64((t + a.lead) / a.ttl)
}

// Expiry returns the absolute time at which copies of version v expire.
func (a *Authority) Expiry(v int64) float64 {
	return float64(v+1) * a.ttl
}

// IssueTime returns the time at which the authority creates version v —
// also the time a push of v begins. Version 0 exists from time 0.
func (a *Authority) IssueTime(v int64) float64 {
	if v == 0 {
		return 0
	}
	return float64(v)*a.ttl - a.lead
}

// IntervalEnd returns the end time of TTL interval k (intervals are
// [k·TTL, (k+1)·TTL); access-tracking counters reset at these boundaries).
func (a *Authority) IntervalEnd(k int64) float64 {
	return float64(k+1) * a.ttl
}
