package index

import (
	"fmt"
	"sort"
	"sync"
)

// Record is one (key, value) index entry as held by an authority node: the
// address of the node hosting the data, a version counter bumped on every
// update, and the absolute expiry of the current version.
type Record struct {
	Key     string
	Value   string  // address/id of the hosting node
	Version int64   // bumped on every update
	Expiry  float64 // absolute time at which this version expires
}

// Store is the authority-side index table used by the live network: it maps
// keys to Records and tracks per-key keep-alive deadlines so that a hosting
// node that stops refreshing is declared dead and its entry updated. Store
// is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	ttl      float64
	deadline float64 // keep-alive grace period
	recs     map[string]*Record
	alive    map[string]float64 // key -> last keep-alive time
}

// NewStore returns a Store whose entries live for ttl seconds per version
// and whose hosting nodes must send keep-alives at least every grace
// seconds. It panics if ttl <= 0 or grace <= 0.
func NewStore(ttl, grace float64) *Store {
	if ttl <= 0 || grace <= 0 {
		panic(fmt.Sprintf("index: NewStore needs positive ttl and grace, got %v, %v", ttl, grace))
	}
	return &Store{
		ttl:      ttl,
		deadline: grace,
		recs:     make(map[string]*Record),
		alive:    make(map[string]float64),
	}
}

// Put inserts or updates the index for key, bumping its version, and
// records a keep-alive at time now. It returns the stored record.
func (s *Store) Put(key, value string, now float64) Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	if !ok {
		r = &Record{Key: key}
		s.recs[key] = r
	}
	if !ok || r.Value != value {
		r.Version++
	}
	r.Value = value
	r.Expiry = now + s.ttl
	s.alive[key] = now
	return *r
}

// Get returns the record for key and whether it exists.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// KeepAlive refreshes the hosting node's liveness for key at time now. It
// reports whether the key exists.
func (s *Store) KeepAlive(key string, now float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[key]; !ok {
		return false
	}
	s.alive[key] = now
	return true
}

// Refresh re-issues the current version of key at time now (same value, new
// version and expiry) and returns the new record. This is the authority's
// per-TTL refresh. It reports whether the key exists.
func (s *Store) Refresh(key string, now float64) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	if !ok {
		return Record{}, false
	}
	r.Version++
	r.Expiry = now + s.ttl
	return *r, true
}

// Expired returns the keys whose hosting node missed its keep-alive window
// as of time now. The authority node treats these hosts as dead and must
// update (or drop) their indices.
func (s *Store) Expired(now float64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k, last := range s.alive {
		if now-last > s.deadline {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes the index for key. It reports whether the key existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[key]; !ok {
		return false
	}
	delete(s.recs, key)
	delete(s.alive, key)
	return true
}

// Len returns the number of keys in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.recs))
	for k := range s.recs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
