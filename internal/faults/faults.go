// Package faults is the one way to hurt the network: a composable
// transport middleware that wraps any dup/internal/transport.Transport
// (in-process channels or TCP sockets) and injects seeded, deterministic
// failures between the protocol and the wire. It replaces the ad-hoc drop
// hooks the transports used to carry.
//
// A wrapper represents one endpoint's view of the network — in a live
// cluster each Network (or each node, for per-node fault control) sends
// through its own wrapper — so every fault is naturally directional:
// blocking B on A's wrapper kills A→B while B→A still flows, which is
// exactly the asymmetric-partition shape the churn literature cares
// about. The injectable faults are:
//
//   - probabilistic loss (SetLoss / Config.Loss),
//   - duplication of delivered messages (Config.Duplicate) — retries and
//     duplicates must be idempotent at the receiver,
//   - reordering, by holding a random subset of messages back for a delay
//     (Config.Reorder / Config.ReorderDelay),
//   - extra per-message delay with an exponential distribution
//     (Config.Delay),
//   - asymmetric partitions (Block / BlockKind and their Unblock pairs),
//   - crash/restart of the whole endpoint (Crash / Restart): outbound
//     messages are dropped and inbound deliveries are refused, as if the
//     process behind the endpoint died with its listener up,
//   - permanent kill (KillForever): Crash with no way back — Restart is
//     a no-op afterwards, modelling a machine that is gone for good and
//     can only be replaced, never revived.
//
// All randomness comes from one seeded source, so a single-threaded
// sender sees a reproducible fault pattern; under true concurrency the
// per-message rates stay deterministic even though the interleaving does
// not. Injected drops are folded into Drops/KindDrops along with the
// wrapped transport's own, so existing accounting keeps working.
package faults

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/rng"
	"dup/internal/transport"
)

// Config parametrises a fault wrapper. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic draw. Wrappers with the same seed
	// and the same send sequence make the same decisions.
	Seed uint64
	// Loss is the i.i.d. probability that an outbound message is dropped.
	Loss float64
	// Duplicate is the probability that an outbound message is delivered
	// twice (the copy is a deep clone; receivers must dedup).
	Duplicate float64
	// Reorder is the probability that an outbound message is held back
	// for ReorderDelay before delivery, letting later sends overtake it.
	Reorder float64
	// ReorderDelay is how long a reordered message is held (default 5ms).
	ReorderDelay time.Duration
	// Delay, when positive, adds an exponentially distributed extra delay
	// with this mean to every outbound message.
	Delay time.Duration
	// CloseInner, when set, closes the wrapped transport on Close. Leave
	// it unset when several wrappers share one fabric (the owner of the
	// fabric closes it once).
	CloseInner bool
}

type blockKey struct {
	to   int
	kind proto.Kind
}

// Transport is the fault-injecting middleware. It implements
// transport.Transport and forwards to the wrapped transport whatever the
// configured faults let through.
type Transport struct {
	inner transport.Transport
	cfg   Config

	mu          sync.Mutex
	src         *rng.Source
	loss        float64
	blockedTo   map[int]bool
	blockedKind map[blockKey]bool

	down   atomic.Bool
	killed atomic.Bool
	closed atomic.Bool

	injected  atomic.Int64
	kindDrops [proto.NumKinds]atomic.Int64
}

var _ transport.Transport = (*Transport)(nil)

// Wrap returns a fault wrapper around inner.
func Wrap(inner transport.Transport, cfg Config) *Transport {
	if cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = 5 * time.Millisecond
	}
	return &Transport{
		inner:       inner,
		cfg:         cfg,
		src:         rng.New(cfg.Seed),
		loss:        cfg.Loss,
		blockedTo:   make(map[int]bool),
		blockedKind: make(map[blockKey]bool),
	}
}

// Register installs the handler for node id on the wrapped transport,
// interposing the endpoint's crash state: while the endpoint is down,
// inbound deliveries are refused (and counted as drops by the inner
// transport, where the message arrived).
func (f *Transport) Register(id int, h transport.Handler) {
	// A nil handler deregisters id; pass it through unwrapped so the inner
	// transport sees the removal (wrapping nil would turn deregistration
	// into a crash on the next delivery).
	if h == nil {
		f.inner.Register(id, nil)
		return
	}
	f.inner.Register(id, func(m *proto.Message) bool {
		if f.down.Load() || f.closed.Load() {
			return false
		}
		return h(m)
	})
}

// Send applies the configured faults to m and forwards whatever survives.
func (f *Transport) Send(m *proto.Message) {
	if f.closed.Load() || f.down.Load() {
		f.drop(m)
		return
	}
	f.mu.Lock()
	if f.blockedTo[m.To] || f.blockedKind[blockKey{m.To, m.Kind}] {
		f.mu.Unlock()
		f.drop(m)
		return
	}
	lost := f.loss > 0 && f.src.Float64() < f.loss
	duped := !lost && f.cfg.Duplicate > 0 && f.src.Float64() < f.cfg.Duplicate
	held := !lost && f.cfg.Reorder > 0 && f.src.Float64() < f.cfg.Reorder
	var extra time.Duration
	if !lost && f.cfg.Delay > 0 {
		extra = time.Duration(-float64(f.cfg.Delay) * math.Log(f.src.Float64Open()))
	}
	f.mu.Unlock()
	if lost {
		f.drop(m)
		return
	}
	if duped {
		f.forward(proto.Clone(m), 0)
	}
	if held {
		extra += f.cfg.ReorderDelay
	}
	f.forward(m, extra)
}

// forward hands m to the inner transport, after delay when positive.
func (f *Transport) forward(m *proto.Message, delay time.Duration) {
	if delay <= 0 {
		f.inner.Send(m)
		return
	}
	time.AfterFunc(delay, func() {
		if f.closed.Load() || f.down.Load() {
			f.drop(m)
			return
		}
		f.inner.Send(m)
	})
}

func (f *Transport) drop(m *proto.Message) {
	f.injected.Add(1)
	if int(m.Kind) < proto.NumKinds {
		f.kindDrops[m.Kind].Add(1)
	}
	proto.Release(m)
}

// SetLoss changes the i.i.d. outbound loss probability (0 disables).
func (f *Transport) SetLoss(p float64) {
	f.mu.Lock()
	f.loss = p
	f.mu.Unlock()
}

// Block makes node id unreachable from this endpoint: every outbound
// message to it is dropped. Traffic from id keeps arriving — that is the
// asymmetric half of a partition; block the reverse direction on the
// other endpoint's wrapper for a full partition.
func (f *Transport) Block(id int) {
	f.mu.Lock()
	f.blockedTo[id] = true
	f.mu.Unlock()
}

// Unblock lifts a Block.
func (f *Transport) Unblock(id int) {
	f.mu.Lock()
	delete(f.blockedTo, id)
	f.mu.Unlock()
}

// BlockKind drops only outbound messages of kind k addressed to id —
// e.g. lose pushes to one neighbour while its keep-alives flow.
func (f *Transport) BlockKind(id int, k proto.Kind) {
	f.mu.Lock()
	f.blockedKind[blockKey{id, k}] = true
	f.mu.Unlock()
}

// UnblockKind lifts a BlockKind.
func (f *Transport) UnblockKind(id int, k proto.Kind) {
	f.mu.Lock()
	delete(f.blockedKind, blockKey{id, k})
	f.mu.Unlock()
}

// Crash takes the endpoint down: outbound messages are dropped here and
// inbound deliveries are refused at the wrapped handlers, in both cases
// invisible to the peers until their failure detectors notice.
func (f *Transport) Crash() { f.down.Store(true) }

// Restart brings a crashed endpoint back. A KillForever is permanent:
// Restart on a killed endpoint is a no-op, so a schedule cannot revive a
// process the scenario declared dead for good.
func (f *Transport) Restart() {
	if f.killed.Load() {
		return
	}
	f.down.Store(false)
}

// KillForever takes the endpoint down permanently. Unlike Crash there is
// no way back: the process is gone, its disk with it, and the only path
// to full strength is replacing it through reconfiguration.
func (f *Transport) KillForever() {
	f.killed.Store(true)
	f.down.Store(true)
}

// Down reports whether the endpoint is currently crashed or killed.
func (f *Transport) Down() bool { return f.down.Load() }

// Killed reports whether the endpoint was permanently killed.
func (f *Transport) Killed() bool { return f.killed.Load() }

// Injected reports how many messages this wrapper itself dropped
// (partitions, loss, crash), excluding the wrapped transport's drops.
func (f *Transport) Injected() int64 { return f.injected.Load() }

// Drops reports injected drops plus the wrapped transport's own.
func (f *Transport) Drops() int64 { return f.injected.Load() + f.inner.Drops() }

// KindDrops reports per-kind drops, injected plus inner.
func (f *Transport) KindDrops() [proto.NumKinds]int64 {
	out := f.inner.KindDrops()
	for k := range out {
		out[k] += f.kindDrops[k].Load()
	}
	return out
}

// Close shuts the wrapper down; the wrapped transport is closed too when
// Config.CloseInner is set. Held (reordered/delayed) messages are
// released when their timers fire.
func (f *Transport) Close() error {
	f.closed.Store(true)
	if f.cfg.CloseInner {
		return f.inner.Close()
	}
	return nil
}
