package faults

import (
	"testing"
	"time"

	"dup/internal/proto"
	"dup/internal/transport"
)

// sink is a test handler counting deliveries per (kind, seq).
type sink struct {
	ch chan proto.Message
}

func newSink() *sink { return &sink{ch: make(chan proto.Message, 1024)} }

func (s *sink) handler() transport.Handler {
	return func(m *proto.Message) bool {
		cp := *m
		cp.Path = nil
		s.ch <- cp
		proto.Release(m)
		return true
	}
}

func (s *sink) collect(d time.Duration) []proto.Message {
	var got []proto.Message
	deadline := time.After(d)
	for {
		select {
		case m := <-s.ch:
			got = append(got, m)
		case <-deadline:
			return got
		}
	}
}

func send(f *Transport, kind proto.Kind, to int, seq int64) {
	m := proto.NewMessage()
	m.Kind, m.To, m.Seq = kind, to, seq
	f.Send(m)
}

func wrapped(t *testing.T, cfg Config) (*Transport, *sink) {
	t.Helper()
	cfg.CloseInner = true
	f := Wrap(transport.NewChan(transport.ChanConfig{}), cfg)
	t.Cleanup(func() { f.Close() })
	s := newSink()
	f.Register(1, s.handler())
	return f, s
}

func TestNoFaultsPassesEverythingThrough(t *testing.T) {
	f, s := wrapped(t, Config{Seed: 1})
	for i := 0; i < 50; i++ {
		send(f, proto.KindPush, 1, int64(i))
	}
	if got := s.collect(50 * time.Millisecond); len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	if f.Drops() != 0 || f.Injected() != 0 {
		t.Fatalf("drops = %d injected = %d, want 0", f.Drops(), f.Injected())
	}
}

func TestLossIsSeededAndReproducible(t *testing.T) {
	deliveredWith := func(seed uint64) []int64 {
		f := Wrap(transport.NewChan(transport.ChanConfig{}), Config{Seed: seed, Loss: 0.5, CloseInner: true})
		defer f.Close()
		s := newSink()
		f.Register(1, s.handler())
		for i := 0; i < 200; i++ {
			send(f, proto.KindPush, 1, int64(i))
		}
		var seqs []int64
		for _, m := range s.collect(50 * time.Millisecond) {
			seqs = append(seqs, m.Seq)
		}
		return seqs
	}
	a, b := deliveredWith(7), deliveredWith(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("loss 0.5 delivered %d of 200", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := deliveredWith(8); len(c) == len(a) && equal(c, a) {
		t.Fatal("different seeds produced the identical loss pattern")
	}
}

func equal(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDuplicationDeliversCopies(t *testing.T) {
	f, s := wrapped(t, Config{Seed: 3, Duplicate: 1})
	for i := 0; i < 10; i++ {
		send(f, proto.KindPush, 1, int64(i))
	}
	got := s.collect(100 * time.Millisecond)
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20 (every message doubled)", len(got))
	}
	perSeq := map[int64]int{}
	for _, m := range got {
		perSeq[m.Seq]++
	}
	for seq, n := range perSeq {
		if n != 2 {
			t.Fatalf("seq %d delivered %d times, want 2", seq, n)
		}
	}
}

func TestReorderHoldsMessagesBack(t *testing.T) {
	// Hold the first message; deliver the rest straight through. With a
	// 30ms hold, seq 0 must arrive after seq 1..9 — a genuine reorder.
	f := Wrap(transport.NewChan(transport.ChanConfig{}),
		Config{Seed: 1, CloseInner: true, ReorderDelay: 30 * time.Millisecond})
	defer f.Close()
	s := newSink()
	f.Register(1, s.handler())
	f.cfg.Reorder = 1 // deterministically hold...
	send(f, proto.KindPush, 1, 0)
	f.cfg.Reorder = 0 // ...only the first
	for i := 1; i < 10; i++ {
		send(f, proto.KindPush, 1, int64(i))
	}
	got := s.collect(100 * time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	if got[len(got)-1].Seq != 0 {
		t.Fatalf("held message arrived at position %d, want last", func() int {
			for i, m := range got {
				if m.Seq == 0 {
					return i
				}
			}
			return -1
		}())
	}
}

func TestAsymmetricBlock(t *testing.T) {
	inner := transport.NewChan(transport.ChanConfig{})
	a := Wrap(inner, Config{Seed: 1})
	b := Wrap(inner, Config{Seed: 2, CloseInner: true})
	defer b.Close()
	defer a.Close()
	sa, sb := newSink(), newSink()
	a.Register(1, sa.handler()) // node 1 lives behind a
	b.Register(2, sb.handler()) // node 2 lives behind b

	a.Block(2) // A→B dead, B→A alive
	send(a, proto.KindPush, 2, 0)
	send(b, proto.KindPush, 1, 1)
	if got := sb.collect(30 * time.Millisecond); len(got) != 0 {
		t.Fatalf("blocked direction delivered %d messages", len(got))
	}
	if got := sa.collect(30 * time.Millisecond); len(got) != 1 {
		t.Fatalf("open direction delivered %d messages, want 1", len(got))
	}
	if a.Injected() != 1 {
		t.Fatalf("a injected %d drops, want 1", a.Injected())
	}
	if kd := a.KindDrops(); kd[proto.KindPush] != 1 {
		t.Fatalf("kind drops = %v, want one push", kd)
	}

	a.Unblock(2)
	send(a, proto.KindPush, 2, 2)
	if got := sb.collect(30 * time.Millisecond); len(got) != 1 {
		t.Fatalf("unblocked direction delivered %d messages, want 1", len(got))
	}
}

func TestBlockKindIsSelective(t *testing.T) {
	f, s := wrapped(t, Config{Seed: 1})
	f.BlockKind(1, proto.KindPush)
	send(f, proto.KindPush, 1, 0)
	send(f, proto.KindKeepAlive, 1, 1)
	got := s.collect(30 * time.Millisecond)
	if len(got) != 1 || got[0].Kind != proto.KindKeepAlive {
		t.Fatalf("got %v, want only the keep-alive", got)
	}
	f.UnblockKind(1, proto.KindPush)
	send(f, proto.KindPush, 1, 2)
	if got := s.collect(30 * time.Millisecond); len(got) != 1 || got[0].Kind != proto.KindPush {
		t.Fatalf("got %v after unblock, want the push", got)
	}
}

func TestCrashCutsBothDirections(t *testing.T) {
	inner := transport.NewChan(transport.ChanConfig{})
	a := Wrap(inner, Config{Seed: 1})
	b := Wrap(inner, Config{Seed: 2, CloseInner: true})
	defer b.Close()
	defer a.Close()
	sa, sb := newSink(), newSink()
	a.Register(1, sa.handler())
	b.Register(2, sb.handler())

	b.Crash()
	send(b, proto.KindPush, 1, 0) // outbound from the crashed endpoint
	send(a, proto.KindPush, 2, 1) // inbound to the crashed endpoint
	if got := sa.collect(30 * time.Millisecond); len(got) != 0 {
		t.Fatalf("crashed endpoint still sent %d messages", len(got))
	}
	if got := sb.collect(30 * time.Millisecond); len(got) != 0 {
		t.Fatalf("crashed endpoint still received %d messages", len(got))
	}
	if !b.Down() {
		t.Fatal("Down() = false after Crash")
	}

	b.Restart()
	send(b, proto.KindPush, 1, 2)
	send(a, proto.KindPush, 2, 3)
	if got := sa.collect(50 * time.Millisecond); len(got) != 1 {
		t.Fatalf("restarted endpoint sent %d messages, want 1", len(got))
	}
	if got := sb.collect(50 * time.Millisecond); len(got) != 1 {
		t.Fatalf("restarted endpoint received %d messages, want 1", len(got))
	}
}

func TestKillForeverSurvivesRestart(t *testing.T) {
	inner := transport.NewChan(transport.ChanConfig{})
	a := Wrap(inner, Config{Seed: 1})
	b := Wrap(inner, Config{Seed: 2, CloseInner: true})
	defer b.Close()
	defer a.Close()
	sa, sb := newSink(), newSink()
	a.Register(1, sa.handler())
	b.Register(2, sb.handler())

	b.KillForever()
	if !b.Down() || !b.Killed() {
		t.Fatalf("Down() = %v Killed() = %v after KillForever, want true/true", b.Down(), b.Killed())
	}
	b.Restart() // must be a no-op on a killed endpoint
	if !b.Down() {
		t.Fatal("Restart revived a permanently killed endpoint")
	}
	send(b, proto.KindPush, 1, 0)
	send(a, proto.KindPush, 2, 1)
	if got := sa.collect(30 * time.Millisecond); len(got) != 0 {
		t.Fatalf("killed endpoint still sent %d messages", len(got))
	}
	if got := sb.collect(30 * time.Millisecond); len(got) != 0 {
		t.Fatalf("killed endpoint still received %d messages", len(got))
	}

	// A plain crashed endpoint is unaffected by another's permanent kill.
	a.Crash()
	a.Restart()
	if a.Down() || a.Killed() {
		t.Fatalf("Down() = %v Killed() = %v after Crash+Restart, want false/false", a.Down(), a.Killed())
	}
}

func TestNoPooledMessageLeaks(t *testing.T) {
	base := proto.InUse()
	f, s := wrapped(t, Config{Seed: 5, Loss: 0.3, Duplicate: 0.3, Reorder: 0.3,
		ReorderDelay: 2 * time.Millisecond, Delay: time.Millisecond})
	for i := 0; i < 300; i++ {
		send(f, proto.KindPush, 1, int64(i))
	}
	send(f, proto.KindPush, 99, 0) // unregistered: inner drop
	s.collect(150 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for proto.InUse() > base {
		if time.Now().After(deadline) {
			t.Fatalf("%d pooled messages leaked", proto.InUse()-base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
