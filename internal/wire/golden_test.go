package wire

import (
	"encoding/hex"
	"testing"

	"dup/internal/proto"
)

// goldenVectors pins the byte-exact payload encoding of every pre-replica
// message kind, keyed and key-0, as produced by the version-3 codec that
// shipped before the replica subsystem (PR 7). The replica work bumped
// Version to 4; these vectors are the executable proof that no pre-replica
// frame changed — a Replicas=1 cluster speaks byte-identical wire format
// to a pre-replica binary. Regenerate only on a deliberate format change.
//
// Every vector encodes the same field values (To=31, Origin=42, Subject=7,
// Old=7, New=11, Seq=99, Version=12345, Hops=3, Expiry=1.7e9,
// Path=[5,1000]), with Key 0 and 64 variants; push carries a piggybacked
// subscribe(7); the batch envelope holds two keyed pushes.
var goldenVectors = []struct {
	name string
	msg  *proto.Message
	hex  string
}{
	{"request/key=0", goldenMsg(proto.KindRequest, 0), "0100003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"request/key=64", goldenMsg(proto.KindRequest, 64), "0300003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"reply/key=0", goldenMsg(proto.KindReply, 0), "0101003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"reply/key=64", goldenMsg(proto.KindReply, 64), "0301003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"push/key=0", goldenMsg(proto.KindPush, 0), "0102013e540e0e16c601f2c0010641d954fc40000000040ad00f030e"},
	{"push/key=64", goldenMsg(proto.KindPush, 64), "0302013e540e0e16c601f2c00106800141d954fc40000000040ad00f030e"},
	{"subscribe/key=0", goldenMsg(proto.KindSubscribe, 0), "0103003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"subscribe/key=64", goldenMsg(proto.KindSubscribe, 64), "0303003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"unsubscribe/key=0", goldenMsg(proto.KindUnsubscribe, 0), "0104003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"unsubscribe/key=64", goldenMsg(proto.KindUnsubscribe, 64), "0304003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"substitute/key=0", goldenMsg(proto.KindSubstitute, 0), "0105003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"substitute/key=64", goldenMsg(proto.KindSubstitute, 64), "0305003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"interest/key=0", goldenMsg(proto.KindInterest, 0), "0106003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"interest/key=64", goldenMsg(proto.KindInterest, 64), "0306003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"uninterest/key=0", goldenMsg(proto.KindUninterest, 0), "0107003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"uninterest/key=64", goldenMsg(proto.KindUninterest, 64), "0307003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"keepalive/key=0", goldenMsg(proto.KindKeepAlive, 0), "0108003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"keepalive/key=64", goldenMsg(proto.KindKeepAlive, 64), "0308003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"keepalive-ack/key=0", goldenMsg(proto.KindKeepAliveAck, 0), "0109003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"keepalive-ack/key=64", goldenMsg(proto.KindKeepAliveAck, 64), "0309003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"ack/key=0", goldenMsg(proto.KindAck, 0), "010a003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"ack/key=64", goldenMsg(proto.KindAck, 64), "030a003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"join/key=0", goldenMsg(proto.KindJoin, 0), "020b003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"join/key=64", goldenMsg(proto.KindJoin, 64), "030b003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"leave/key=0", goldenMsg(proto.KindLeave, 0), "020c003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"leave/key=64", goldenMsg(proto.KindLeave, 64), "030c003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"state/key=0", goldenMsg(proto.KindState, 0), "020d003e540e0e16c601f2c0010641d954fc40000000040ad00f"},
	{"state/key=64", goldenMsg(proto.KindState, 64), "030d003e540e0e16c601f2c00106800141d954fc40000000040ad00f"},
	{"batch/key=0", goldenBatch(), "030e003e5480808001042c0102003e5400000000f2c0010041d954fc40000000002e0302003e5400000000f2c001000241d954fc4000000000"},
}

// goldenMsg builds the fixed-field message the vectors were generated
// from. Field values deliberately exercise multi-byte varints and the
// float expiry.
func goldenMsg(k proto.Kind, key int) *proto.Message {
	m := &proto.Message{
		Kind: k, To: 31, Origin: 42, Subject: 7, Old: 7, New: 11,
		Key: key, Seq: 99, Version: 12345, Hops: 3,
		Expiry: 1.7e9, Path: []int{5, 1000},
	}
	if k == proto.KindPush {
		m.SetPiggy(proto.KindSubscribe, 7)
	}
	return m
}

// goldenBatch builds the envelope vector: two keyed pushes coalesced for
// one neighbour, under an envelope Seq with multi-byte varint encoding.
func goldenBatch() *proto.Message {
	mk := func(key int) *proto.Message {
		return &proto.Message{Kind: proto.KindPush, To: 31, Origin: 42, Key: key,
			Version: 12345, Expiry: 1.7e9}
	}
	return &proto.Message{Kind: proto.KindBatch, To: 31, Origin: 42, Seq: 1 << 20,
		Batch: []*proto.Message{mk(0), mk(1)}}
}

// TestGoldenPreReplicaEncodings asserts every pre-replica kind still
// encodes to the exact bytes the version-3 codec produced, and that those
// bytes decode back to the same message.
func TestGoldenPreReplicaEncodings(t *testing.T) {
	for _, g := range goldenVectors {
		got := hex.EncodeToString(AppendMessage(nil, g.msg))
		if got != g.hex {
			t.Errorf("%s: encoding drifted from the pre-replica wire format\n got  %s\n want %s",
				g.name, got, g.hex)
			continue
		}
		raw, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad vector: %v", g.name, err)
		}
		m, err := DecodeMessage(raw)
		if err != nil {
			t.Errorf("%s: golden bytes no longer decode: %v", g.name, err)
			continue
		}
		if !equalMessage(g.msg, m) {
			t.Errorf("%s: golden bytes decode to a different message:\n in  %+v\n out %+v",
				g.name, g.msg, m)
		}
		proto.Release(m)
	}
	// The vectors must cover the entire pre-replica vocabulary — if a kind
	// is added to it (rather than to the replica range) this test must be
	// extended deliberately.
	covered := map[proto.Kind]bool{}
	for _, g := range goldenVectors {
		covered[g.msg.Kind] = true
	}
	for k := proto.Kind(0); int(k) < v3Kinds; k++ {
		if !covered[k] {
			t.Errorf("pre-replica kind %s has no golden vector", k)
		}
	}
}
