package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"testing"

	"dup/internal/proto"
	"dup/internal/raceflag"
)

// sampleMessages returns one representative message per kind, plus
// variants exercising every field: negative sentinels, long paths and a
// piggyback rider.
func sampleMessages() []*proto.Message {
	msgs := []*proto.Message{
		{Kind: proto.KindRequest, To: 3, Origin: 7, Seq: 41, Hops: 2, Path: []int{7, 3}},
		{Kind: proto.KindReply, To: 7, Origin: 7, Seq: 41, Version: 9, Expiry: 1234.5, Hops: 3, Path: []int{7}},
		{Kind: proto.KindPush, To: 5, Origin: 0, Version: 2, Expiry: 17.25},
		{Kind: proto.KindSubscribe, To: 4, Subject: 5},
		{Kind: proto.KindUnsubscribe, To: 4, Subject: 5},
		{Kind: proto.KindSubstitute, To: 1, Old: 5, New: 2},
		{Kind: proto.KindInterest, To: 2, Subject: 9},
		{Kind: proto.KindUninterest, To: 2, Subject: 9},
		{Kind: proto.KindKeepAlive, To: 0, Origin: 12},
		{Kind: proto.KindKeepAliveAck, To: 12, Origin: 0},
		{Kind: proto.KindAck, To: 0, Origin: 5, Seq: 17, Subject: int(proto.KindPush)},
		{Kind: proto.KindJoin, To: 2, Origin: 9, Seq: 3, Version: 4},
		{Kind: proto.KindLeave, To: 2, Origin: 9, Seq: 5, Subject: -1},
		{Kind: proto.KindState, To: 9, Origin: 2, Version: 7, Expiry: 321.5},
		// Negative sentinels (-1 parents) and a piggyback rider.
		{Kind: proto.KindRequest, To: -1, Origin: -1, Old: -1, New: -1, Subject: -1, Hops: 1,
			Piggy: &proto.Piggyback{Kind: proto.KindSubscribe, Subject: 6}},
		// A long path.
		{Kind: proto.KindReply, To: 1, Version: 1 << 40, Expiry: -2.5,
			Path: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		// Keyed (version-3) variants: the Key field only exists in v3
		// payloads, for both version-1 and version-2 kind vocabularies.
		{Kind: proto.KindPush, To: 5, Origin: 2, Key: 8, Version: 6, Expiry: 90.5},
		{Kind: proto.KindRequest, To: 3, Origin: 7, Key: 64, Seq: 8, Hops: 1, Path: []int{7}},
		{Kind: proto.KindJoin, To: 2, Origin: 9, Key: 3, Seq: 6, Version: 4},
		// Replica quorum kinds (version 4): the Key varint always travels,
		// including the zero key of the default index tree.
		{Kind: proto.KindPrepare, To: 1, Origin: 2, Old: 3, Expiry: 444.25},
		{Kind: proto.KindPromise, To: 2, Origin: 1, Old: 3, Subject: 0, Path: []int{0, 7, 2, 9}},
		{Kind: proto.KindPromise, To: 0, Origin: 1, Old: 3, Subject: 1, Key: 2, Seq: 12},
		{Kind: proto.KindAccept, To: 1, Origin: 0, Old: 3, Key: 2, Version: 12, Expiry: 90.5},
		{Kind: proto.KindAccept, To: 1, Origin: 0, Old: 3, Key: 0, Version: 13, Expiry: 91.5},
		{Kind: proto.KindCommit, To: 1, Origin: 0, Old: 3, Key: 2, Version: 12},
		{Kind: proto.KindLease, To: 1, Origin: 0, Old: 3, Seq: 5, Expiry: 445.25},
		// Soft-state tree beacon (version 5): like the replica kinds the
		// Key varint always travels, including the zero key.
		{Kind: proto.KindRootAnnounce, To: 4, Origin: 1, Subject: 0, Seq: 97},
		{Kind: proto.KindRootAnnounce, To: 7, Origin: 4, Subject: 0, Key: 3, Seq: 98},
		// Quorum reconfiguration kinds (version 6): always-keyed layout.
		{Kind: proto.KindReconfig, To: 1, Origin: 0, Old: 3, Subject: 0, Seq: 2, New: 3, Path: []int{0, 1, 2, 0, 1, 3}},
		{Kind: proto.KindReconfig, To: 0, Origin: 1, Old: 3, Subject: 2, Key: 1, Seq: 2},
		{Kind: proto.KindStateXfer, To: 3, Origin: 0, Old: 3, Subject: 1, Seq: 1, New: 1, Path: []int{0, 12, 1, 7}, Expiry: 1025},
		// A coalescing envelope with mixed-kind, mixed-key members.
		{Kind: proto.KindBatch, To: 4, Origin: 1, Seq: 33, Batch: []*proto.Message{
			{Kind: proto.KindPush, To: 4, Origin: 1, Key: 8, Version: 12, Expiry: 64.5},
			{Kind: proto.KindAck, To: 4, Origin: 1, Seq: 17, Subject: int(proto.KindPush)},
			{Kind: proto.KindSubscribe, To: 4, Origin: 1, Key: 3, Subject: 9},
			{Kind: proto.KindState, To: 4, Origin: 1, Version: 7, Expiry: 321.5},
		}},
	}
	return msgs
}

// equalMessage compares every field; an empty and a nil path are the same
// path.
func equalMessage(a, b *proto.Message) bool {
	if a.Kind != b.Kind || a.To != b.To || a.Origin != b.Origin ||
		a.Subject != b.Subject || a.Old != b.Old || a.New != b.New ||
		a.Key != b.Key || a.Seq != b.Seq || a.Version != b.Version ||
		math.Float64bits(a.Expiry) != math.Float64bits(b.Expiry) ||
		a.Hops != b.Hops || len(a.Path) != len(b.Path) ||
		len(a.Batch) != len(b.Batch) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	for i := range a.Batch {
		if !equalMessage(a.Batch[i], b.Batch[i]) {
			return false
		}
	}
	if (a.Piggy == nil) != (b.Piggy == nil) {
		return false
	}
	if a.Piggy != nil && *a.Piggy != *b.Piggy {
		return false
	}
	return true
}

func TestRoundTripEveryKind(t *testing.T) {
	seen := map[proto.Kind]bool{}
	for _, m := range sampleMessages() {
		seen[m.Kind] = true
		payload := AppendMessage(nil, m)
		got, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", m, err)
		}
		if !equalMessage(m, got) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", m, got)
		}
		proto.Release(got)
	}
	if len(seen) != proto.NumKinds {
		t.Fatalf("samples cover %d kinds, want %d", len(seen), proto.NumKinds)
	}
}

// TestPayloadVersionStamping pins the version byte each message encodes
// under: the original vocabulary stays at 1 (so version-1 binaries keep
// decoding it), the membership kinds added in version 2 stamp 2, keyed
// messages and batch envelopes stamp 3 — which is what keeps key-0
// traffic byte-identical to the version-2 wire format — only the replica
// quorum kinds stamp 4, and only the soft-state tree kinds stamp 5.
func TestPayloadVersionStamping(t *testing.T) {
	for _, m := range sampleMessages() {
		p := AppendMessage(nil, m)
		want := byte(1)
		switch {
		case int(m.Kind) >= v5Kinds:
			want = 6
		case int(m.Kind) >= v4Kinds:
			want = 5
		case int(m.Kind) >= v3Kinds:
			want = 4
		case m.Kind == proto.KindBatch || m.Key != 0:
			want = 3
		case m.Kind == proto.KindJoin || m.Kind == proto.KindLeave || m.Kind == proto.KindState:
			want = 2
		}
		if p[0] != want {
			t.Errorf("kind %s (key %d) stamped version %d, want %d", m.Kind, m.Key, p[0], want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	m := &proto.Message{Kind: proto.KindPush, To: 9, Origin: 1, Version: 4, Expiry: 99.5}
	frame := AppendFrame(nil, m)
	r := NewReader(bytes.NewReader(frame))
	got, err := r.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !equalMessage(m, got) {
		t.Fatalf("frame round trip mismatch: %+v vs %+v", m, got)
	}
	proto.Release(got)
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestStreamManyMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := w.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !equalMessage(want, got) {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, want, got)
		}
		proto.Release(got)
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Fatalf("after stream: %v, want io.EOF", err)
	}
}

func TestStreamOverSocketPair(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	want := &proto.Message{Kind: proto.KindRequest, To: 2, Origin: 5, Seq: 7, Hops: 1, Path: []int{5}}
	go func() {
		w := NewWriter(a)
		if err := w.WriteMessage(want); err == nil {
			w.Flush()
		}
	}()
	got, err := NewReader(b).ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if !equalMessage(want, got) {
		t.Fatalf("mismatch over pipe: %+v vs %+v", want, got)
	}
	proto.Release(got)
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := AppendMessage(nil, &proto.Message{Kind: proto.KindSubscribe, To: 1, Subject: 2})
	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad version", append([]byte{99}, good[1:]...), ErrVersion},
		{"zero version", append([]byte{0}, good[1:]...), ErrVersion},
		{"unknown kind", append([]byte{good[0], 200}, good[2:]...), ErrUnknownKind},
		{"unknown flags", append([]byte{good[0], good[1], 0x80}, good[3:]...), ErrBadFlags},
		{"truncated fields", good[:4], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0), ErrTrailing},
		// Each kind is bound to its minimal version (plus version 3 when
		// keyed); any other version byte is non-canonical and rejected.
		{"v1 kind stamped v2", append([]byte{2}, good[1:]...), ErrVersion},
		{"v2 kind stamped v1",
			func() []byte {
				p := AppendMessage(nil, &proto.Message{Kind: proto.KindJoin, To: 1, Origin: 2})
				p[0] = 1
				return p
			}(), ErrVersion},
		{"v1 kind stamped v4", append([]byte{4}, good[1:]...), ErrVersion},
		{"replica kind stamped v3",
			func() []byte {
				p := AppendMessage(nil, &proto.Message{Kind: proto.KindAccept, To: 1, Old: 2, Key: 3, Version: 9})
				p[0] = 3
				return p
			}(), ErrVersion},
		{"root-announce stamped v4",
			func() []byte {
				p := AppendMessage(nil, &proto.Message{Kind: proto.KindRootAnnounce, To: 1, Origin: 2, Seq: 9})
				p[0] = 4
				return p
			}(), ErrVersion},
		{"batch stamped v4",
			func() []byte {
				p := batchPayload()
				p[0] = 4
				return p
			}(), ErrVersion},
		{"batch stamped v2",
			func() []byte {
				p := batchPayload()
				p[0] = 2
				return p
			}(), ErrVersion},
		{"batch with piggy flag", []byte{3, byte(proto.KindBatch), flagPiggy}, ErrBadFlags},
		{"truncated batch member",
			func() []byte {
				p := batchPayload()
				return p[:len(p)-1]
			}(), ErrTruncated},
		{"nested batch",
			AppendMessage(nil, &proto.Message{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{
				{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{{Kind: proto.KindPush, To: 1}}},
			}}), ErrUnknownKind},
	}
	for _, c := range cases {
		if _, err := DecodeMessage(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// A version-3 non-batch payload whose Key field is zero would be a
	// second encoding of a key-0 message, so the decoder rejects it.
	v3zero := []byte{3, byte(proto.KindSubscribe), 0}
	for i := 0; i < 9; i++ {
		v3zero = append(v3zero, 0) // To..Hops (8 varints) + Key
	}
	v3zero = append(v3zero, make([]byte, 8)...) // expiry
	v3zero = append(v3zero, 0)                  // path length
	if _, err := DecodeMessage(v3zero); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("v3 with zero key: err = %v, want %v", err, ErrNonCanonical)
	}
	// Zero-member and oversized batch envelopes.
	bz := []byte{3, byte(proto.KindBatch), 0, 0, 0, 0} // To, Origin, Seq zeros
	if _, err := DecodeMessage(appendVarintBytes(append([]byte{}, bz...), 0)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty batch: err = %v, want %v", err, ErrTooLarge)
	}
	if _, err := DecodeMessage(appendVarintBytes(append([]byte{}, bz...), MaxBatch+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized batch: err = %v, want %v", err, ErrTooLarge)
	}
	// A member whose declared length leaves slack inside the sub-payload.
	slack := append([]byte{}, bz...)
	slack = appendVarintBytes(slack, 1) // one member
	member := AppendMessage(nil, &proto.Message{Kind: proto.KindPush, To: 1})
	slack = appendVarintBytes(slack, int64(len(member)+1))
	slack = append(slack, member...)
	slack = append(slack, 0)
	if _, err := DecodeMessage(slack); !errors.Is(err, ErrTrailing) {
		t.Errorf("slack batch member: err = %v, want %v", err, ErrTrailing)
	}
	// Oversized path length.
	huge := []byte{1, byte(proto.KindRequest), 0}
	for i := 0; i < 8; i++ {
		huge = append(huge, 0) // To..Hops zeros
	}
	huge = append(huge, make([]byte, 8)...) // expiry
	huge = appendVarintBytes(huge, MaxPath+1)
	if _, err := DecodeMessage(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized path: err = %v, want %v", err, ErrTooLarge)
	}
	// Negative path length.
	neg := huge[:len(huge)-varintLen(MaxPath+1)]
	neg = appendVarintBytes(neg, -1)
	if _, err := DecodeMessage(neg); !errors.Is(err, ErrTooLarge) {
		t.Errorf("negative path: err = %v, want %v", err, ErrTooLarge)
	}
}

func TestReaderRejectsBadFrames(t *testing.T) {
	// Oversized frame header.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewReader(bytes.NewReader(hdr[:])).ReadMessage(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized frame: %v, want %v", err, ErrTooLarge)
	}
	// Zero-length frame.
	if _, err := NewReader(bytes.NewReader(make([]byte, 4))).ReadMessage(); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty frame: %v, want %v", err, ErrTruncated)
	}
	// Partial header.
	if _, err := NewReader(bytes.NewReader([]byte{0, 0})).ReadMessage(); !errors.Is(err, ErrTruncated) {
		t.Errorf("partial header: %v, want %v", err, ErrTruncated)
	}
	// Header promising more than the stream holds.
	frame := AppendFrame(nil, &proto.Message{Kind: proto.KindPush, To: 1})
	if _, err := NewReader(bytes.NewReader(frame[:len(frame)-2])).ReadMessage(); !errors.Is(err, ErrTruncated) {
		t.Errorf("short body: %v, want %v", err, ErrTruncated)
	}
}

func TestDecodedMessageIsPooledAndClean(t *testing.T) {
	payload := AppendMessage(nil, &proto.Message{Kind: proto.KindRequest, To: 1, Path: []int{1, 2, 3}})
	m, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	proto.Release(m)
	fresh := proto.NewMessage()
	defer proto.Release(fresh)
	if fresh.Kind != 0 || len(fresh.Path) != 0 || fresh.To != 0 {
		t.Fatalf("released decoded message leaked state: %+v", fresh)
	}
}

// batchPayload encodes a small valid envelope for the malformed-decode
// cases to corrupt.
func batchPayload() []byte {
	return AppendMessage(nil, &proto.Message{Kind: proto.KindBatch, To: 2, Origin: 1, Seq: 5,
		Batch: []*proto.Message{{Kind: proto.KindPush, To: 2, Origin: 1, Key: 3, Version: 9}}})
}

func appendVarintBytes(p []byte, v int64) []byte {
	u := uint64(v<<1) ^ uint64(v>>63)
	for u >= 0x80 {
		p = append(p, byte(u)|0x80)
		u >>= 7
	}
	return append(p, byte(u))
}

func varintLen(v int64) int {
	return len(appendVarintBytes(nil, v))
}

func TestEncodeDecodeAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool drops items at random under the race detector, so decode is not allocation-free there")
	}
	m := &proto.Message{Kind: proto.KindReply, To: 3, Origin: 9, Seq: 2, Version: 7, Expiry: 5.5, Hops: 4, Path: []int{9, 4, 3}}
	buf := AppendMessage(nil, m)
	// Warm the pool so the measured loop reuses one message.
	if got, err := DecodeMessage(buf); err != nil {
		t.Fatal(err)
	} else {
		proto.Release(got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendMessage(buf[:0], m)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		proto.Release(got)
	})
	if allocs > 0.5 {
		t.Errorf("encode+decode allocates %.1f times per message, want 0", allocs)
	}
}

func BenchmarkEncode(b *testing.B) {
	m := &proto.Message{Kind: proto.KindReply, To: 3, Origin: 9, Seq: 2, Version: 7, Expiry: 5.5, Hops: 4, Path: []int{9, 4, 3}}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMessage(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	m := &proto.Message{Kind: proto.KindReply, To: 3, Origin: 9, Seq: 2, Version: 7, Expiry: 5.5, Hops: 4, Path: []int{9, 4, 3}}
	buf := AppendMessage(nil, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := DecodeMessage(buf)
		if err != nil {
			b.Fatal(err)
		}
		proto.Release(got)
	}
}
