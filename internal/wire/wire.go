// Package wire is the binary codec that carries proto messages between
// peers over a byte stream. Frames are length-prefixed and versioned:
//
//	| u32 payload length (big endian) | payload |
//
// and the payload is
//
//	| u8 version | u8 kind | u8 flags | varint fields ... |
//
// with every integer field as a signed varint (zigzag, so the protocol's
// -1 sentinels stay one byte), the expiry as 8 IEEE-754 big-endian bytes,
// the path as a count-prefixed varint list, and an optional piggyback
// behind a flag bit. Encoding appends to a caller buffer; decoding fills a
// pooled proto.Message whose Path backing array is reused, so a busy
// connection round-trips messages without per-message allocation.
//
// Decoding is strict: unknown versions, unknown kinds, unknown flag bits,
// truncated fields, oversized paths and trailing bytes are all rejected,
// so a malformed or hostile frame can not smuggle state into a node.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dup/internal/proto"
)

const (
	// Version is the current payload format version; it is the first byte
	// of every payload so the format can evolve behind one check. Version 2
	// added the membership kinds (join, leave, state); the field layout is
	// unchanged.
	Version = 2

	// v1Kinds is the kind-vocabulary size of version-1 payloads. Kinds
	// below it encode as version 1 (so upgraded peers interoperate with
	// version-1 binaries for the original vocabulary); the membership kinds
	// at and above it require version 2.
	v1Kinds = 11

	// MaxFrame bounds the payload length a reader accepts (and a writer
	// produces). Protocol messages are tens of bytes; the megabyte bound
	// only exists to cap what a broken or hostile peer can make us buffer.
	MaxFrame = 1 << 20

	// MaxPath bounds the request/reply path length. No index search tree
	// here is remotely that deep; like MaxFrame it is an input-sanity cap.
	MaxPath = 1 << 12

	// frameHeader is the byte length of the frame length prefix.
	frameHeader = 4

	// flagPiggy marks a trailing piggyback record.
	flagPiggy = 1 << 0
	// knownFlags masks the flag bits this version defines.
	knownFlags = flagPiggy
)

// Decode errors. Errors wrap these sentinels, so callers can classify with
// errors.Is while still seeing the offending detail.
var (
	ErrVersion      = errors.New("wire: unsupported version")
	ErrUnknownKind  = errors.New("wire: unknown message kind")
	ErrBadFlags     = errors.New("wire: unknown flag bits")
	ErrTruncated    = errors.New("wire: truncated payload")
	ErrTrailing     = errors.New("wire: trailing bytes after payload")
	ErrTooLarge     = errors.New("wire: frame exceeds size bound")
	ErrNonCanonical = errors.New("wire: non-canonical varint")
)

// payloadVersion returns the version byte a kind encodes under: the
// minimal version whose vocabulary includes it. Stamping the minimum (not
// the current Version) keeps the encoding canonical — one byte sequence
// per message — and lets the original vocabulary stay readable by
// version-1 decoders.
func payloadVersion(k proto.Kind) byte {
	if int(k) >= v1Kinds {
		return 2
	}
	return 1
}

// AppendMessage appends m's payload encoding (no length prefix) to dst and
// returns the extended slice.
func AppendMessage(dst []byte, m *proto.Message) []byte {
	flags := byte(0)
	if m.Piggy != nil {
		flags |= flagPiggy
	}
	dst = append(dst, payloadVersion(m.Kind), byte(m.Kind), flags)
	dst = binary.AppendVarint(dst, int64(m.To))
	dst = binary.AppendVarint(dst, int64(m.Origin))
	dst = binary.AppendVarint(dst, int64(m.Subject))
	dst = binary.AppendVarint(dst, int64(m.Old))
	dst = binary.AppendVarint(dst, int64(m.New))
	dst = binary.AppendVarint(dst, m.Seq)
	dst = binary.AppendVarint(dst, m.Version)
	dst = binary.AppendVarint(dst, int64(m.Hops))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Expiry))
	dst = binary.AppendVarint(dst, int64(len(m.Path)))
	for _, p := range m.Path {
		dst = binary.AppendVarint(dst, int64(p))
	}
	if m.Piggy != nil {
		dst = append(dst, byte(m.Piggy.Kind))
		dst = binary.AppendVarint(dst, int64(m.Piggy.Subject))
	}
	return dst
}

// AppendFrame appends the length-prefixed frame for m to dst.
func AppendFrame(dst []byte, m *proto.Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendMessage(dst, m)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHeader))
	return dst
}

// decoder walks a payload, remembering the first error.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.p) == 0 {
		d.err = fmt.Errorf("%w: missing byte", ErrTruncated)
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint", ErrTruncated)
		return 0
	}
	// A multi-byte varint ending in a zero byte carries redundant
	// continuation groups; rejecting it keeps the encoding canonical (one
	// byte sequence per message), which the fuzzer relies on.
	if n > 1 && d.p[n-1] == 0 {
		d.err = ErrNonCanonical
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.err = fmt.Errorf("%w: missing float64", ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.p))
	d.p = d.p[8:]
	return v
}

// DecodeMessage decodes one payload (as produced by AppendMessage) into a
// pooled proto.Message. On success the caller owns the message and must
// eventually proto.Release it (or hand it to a transport that does). On
// error no message is retained.
func DecodeMessage(p []byte) (*proto.Message, error) {
	d := decoder{p: p}
	v := d.byte()
	if d.err == nil && (v == 0 || v > Version) {
		return nil, fmt.Errorf("%w: got %d, want 1..%d", ErrVersion, v, Version)
	}
	kind := d.byte()
	if d.err == nil && int(kind) >= proto.NumKinds {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
	// Each kind has exactly one valid version byte (the minimal version
	// that defines it), so the encoding stays canonical under fuzzing and a
	// membership kind can not masquerade as a version-1 payload.
	if d.err == nil && v != payloadVersion(proto.Kind(kind)) {
		return nil, fmt.Errorf("%w: kind %s requires version %d, got %d",
			ErrVersion, proto.Kind(kind), payloadVersion(proto.Kind(kind)), v)
	}
	flags := d.byte()
	if d.err == nil && flags&^byte(knownFlags) != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrBadFlags, flags)
	}
	m := proto.NewMessage()
	m.Kind = proto.Kind(kind)
	m.To = int(d.varint())
	m.Origin = int(d.varint())
	m.Subject = int(d.varint())
	m.Old = int(d.varint())
	m.New = int(d.varint())
	m.Seq = d.varint()
	m.Version = d.varint()
	m.Hops = int(d.varint())
	m.Expiry = d.float()
	pathLen := d.varint()
	if d.err == nil && (pathLen < 0 || pathLen > MaxPath) {
		proto.Release(m)
		return nil, fmt.Errorf("%w: path length %d", ErrTooLarge, pathLen)
	}
	for i := int64(0); i < pathLen && d.err == nil; i++ {
		m.Path = append(m.Path, int(d.varint()))
	}
	if flags&flagPiggy != 0 {
		pk := d.byte()
		if d.err == nil && int(pk) >= proto.NumKinds {
			proto.Release(m)
			return nil, fmt.Errorf("%w: piggy kind %d", ErrUnknownKind, pk)
		}
		m.Piggy = &proto.Piggyback{Kind: proto.Kind(pk), Subject: int(d.varint())}
	}
	if d.err != nil {
		proto.Release(m)
		return nil, d.err
	}
	if len(d.p) != 0 {
		proto.Release(m)
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.p))
	}
	return m, nil
}
