// Package wire is the binary codec that carries proto messages between
// peers over a byte stream. Frames are length-prefixed and versioned:
//
//	| u32 payload length (big endian) | payload |
//
// and the payload is
//
//	| u8 version | u8 kind | u8 flags | varint fields ... |
//
// with every integer field as a signed varint (zigzag, so the protocol's
// -1 sentinels stay one byte), the expiry as 8 IEEE-754 big-endian bytes,
// the path as a count-prefixed varint list, and an optional piggyback
// behind a flag bit. Version-3 payloads insert a non-zero Key varint
// (multi-key data plane) between Hops and Expiry; version-4 payloads (the
// replica quorum kinds) always carry the Key varint; KindBatch envelopes
// use their own compact layout carrying a count-prefixed list of
// length-delimited member payloads. Encoding appends to a caller buffer;
// decoding fills a pooled proto.Message whose Path backing array is
// reused, so a busy connection round-trips messages without per-message
// allocation.
//
// Decoding is strict: unknown versions, unknown kinds, unknown flag bits,
// truncated fields, oversized paths or batches, nested envelopes and
// trailing bytes are all rejected, so a malformed or hostile frame can not
// smuggle state into a node.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"dup/internal/proto"
)

const (
	// Version is the current payload format version; it is the first byte
	// of every payload so the format can evolve behind one check. Version 2
	// added the membership kinds (join, leave, state) with the field layout
	// unchanged; version 3 adds the Key field (stamped only when Key != 0,
	// so single-key traffic stays byte-identical to version 2) and the
	// KindBatch envelope; version 4 adds the replica quorum kinds (prepare,
	// promise, accept, commit, lease), which always carry the Key varint
	// (even when zero) and exist in no older vocabulary; version 5 adds
	// the soft-state tree beacon (root-announce), likewise always carrying
	// the Key varint; version 6 adds the quorum reconfiguration kinds
	// (reconfig, state-xfer) with the same always-keyed layout. Each kind
	// stamps its minimal version, so a cluster that does not use
	// replication or root announces emits byte-identical frames to a
	// version-3 binary.
	Version = 6

	// v1Kinds is the kind-vocabulary size of version-1 payloads. Kinds
	// below it encode as version 1 (so upgraded peers interoperate with
	// version-1 binaries for the original vocabulary); the membership kinds
	// at and above it require version 2.
	v1Kinds = 11

	// v3Kinds is the kind-vocabulary size of version-3 payloads; the
	// replica kinds at and above it require version 4.
	v3Kinds = 15

	// v4Kinds is the kind-vocabulary size of version-4 payloads; the
	// soft-state tree kinds at and above it require version 5.
	v4Kinds = 20

	// v5Kinds is the kind-vocabulary size of version-5 payloads; the
	// quorum reconfiguration kinds at and above it require version 6.
	v5Kinds = 21

	// keyVersion is the payload version that introduced the optional Key
	// field: any pre-replica kind may be raised to it when Key != 0.
	keyVersion = 3

	// MaxFrame bounds the payload length a reader accepts (and a writer
	// produces). Protocol messages are tens of bytes; the megabyte bound
	// only exists to cap what a broken or hostile peer can make us buffer.
	MaxFrame = 1 << 20

	// MaxPath bounds the request/reply path length. No index search tree
	// here is remotely that deep; like MaxFrame it is an input-sanity cap.
	MaxPath = 1 << 12

	// MaxBatch bounds how many member messages one batch envelope may
	// carry. A node's coalescer flushes per loop iteration, so real
	// envelopes hold at most an inbox's worth of messages.
	MaxBatch = 1 << 12

	// frameHeader is the byte length of the frame length prefix.
	frameHeader = 4

	// flagPiggy marks a trailing piggyback record.
	flagPiggy = 1 << 0
	// knownFlags masks the flag bits this version defines.
	knownFlags = flagPiggy
)

// Decode errors. Errors wrap these sentinels, so callers can classify with
// errors.Is while still seeing the offending detail.
var (
	ErrVersion      = errors.New("wire: unsupported version")
	ErrUnknownKind  = errors.New("wire: unknown message kind")
	ErrBadFlags     = errors.New("wire: unknown flag bits")
	ErrTruncated    = errors.New("wire: truncated payload")
	ErrTrailing     = errors.New("wire: trailing bytes after payload")
	ErrTooLarge     = errors.New("wire: frame exceeds size bound")
	ErrNonCanonical = errors.New("wire: non-canonical varint")
)

// bufPool recycles encode buffers across senders. The transport's write
// path and the batch encoder both borrow from it, so steady-state encoding
// reuses the same few buffers instead of allocating one per frame.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetBuf borrows a reusable byte buffer (length 0) from the shared encode
// pool. Return it with PutBuf when the encoded bytes have been copied out
// or written.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer borrowed with GetBuf to the pool. The caller
// must not retain the slice afterwards.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// minVersion returns the minimal payload version whose vocabulary includes
// the kind. Stamping the minimum (not the current Version) keeps the
// encoding canonical — one byte sequence per message — and lets older
// vocabularies stay readable by older decoders.
func minVersion(k proto.Kind) byte {
	switch {
	case int(k) >= v5Kinds:
		return 6
	case int(k) >= v4Kinds:
		return 5
	case int(k) >= v3Kinds:
		return 4
	case k == proto.KindBatch:
		return 3
	case int(k) >= v1Kinds:
		return 2
	}
	return 1
}

// payloadVersion returns the version byte the message encodes under: the
// kind's minimal version, raised to 3 when a pre-replica kind carries a
// non-zero Key (the Key field only exists from version 3 on). Key-0
// messages of the old vocabulary therefore stay byte-identical to their
// version-1/2 encodings, the replica kinds always stamp 4, and the
// soft-state tree kinds always stamp 5.
func payloadVersion(m *proto.Message) byte {
	mv := minVersion(m.Kind)
	if mv < keyVersion && m.Key != 0 {
		return keyVersion
	}
	return mv
}

// AppendMessage appends m's payload encoding (no length prefix) to dst and
// returns the extended slice.
func AppendMessage(dst []byte, m *proto.Message) []byte {
	if m.Kind == proto.KindBatch {
		return appendBatch(dst, m)
	}
	v := payloadVersion(m)
	flags := byte(0)
	if m.Piggy != nil {
		flags |= flagPiggy
	}
	dst = append(dst, v, byte(m.Kind), flags)
	dst = binary.AppendVarint(dst, int64(m.To))
	dst = binary.AppendVarint(dst, int64(m.Origin))
	dst = binary.AppendVarint(dst, int64(m.Subject))
	dst = binary.AppendVarint(dst, int64(m.Old))
	dst = binary.AppendVarint(dst, int64(m.New))
	dst = binary.AppendVarint(dst, m.Seq)
	dst = binary.AppendVarint(dst, m.Version)
	dst = binary.AppendVarint(dst, int64(m.Hops))
	if v >= 3 {
		dst = binary.AppendVarint(dst, int64(m.Key))
	}
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Expiry))
	dst = binary.AppendVarint(dst, int64(len(m.Path)))
	for _, p := range m.Path {
		dst = binary.AppendVarint(dst, int64(p))
	}
	if m.Piggy != nil {
		dst = append(dst, byte(m.Piggy.Kind))
		dst = binary.AppendVarint(dst, int64(m.Piggy.Subject))
	}
	return dst
}

// appendBatch encodes a KindBatch envelope: only the envelope's routing
// identity (To, Origin, Seq) and its members travel, each member as a
// length-delimited full payload encoding:
//
//	| 3 | KindBatch | 0 | To | Origin | Seq | count | { len | payload }* |
//
// Keeping the envelope this narrow makes decode→re-encode byte-identical.
func appendBatch(dst []byte, m *proto.Message) []byte {
	dst = append(dst, byte(3), byte(proto.KindBatch), 0)
	dst = binary.AppendVarint(dst, int64(m.To))
	dst = binary.AppendVarint(dst, int64(m.Origin))
	dst = binary.AppendVarint(dst, m.Seq)
	dst = binary.AppendVarint(dst, int64(len(m.Batch)))
	sp := GetBuf()
	for _, sub := range m.Batch {
		*sp = AppendMessage((*sp)[:0], sub)
		dst = binary.AppendVarint(dst, int64(len(*sp)))
		dst = append(dst, *sp...)
	}
	PutBuf(sp)
	return dst
}

// AppendFrame appends the length-prefixed frame for m to dst.
func AppendFrame(dst []byte, m *proto.Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendMessage(dst, m)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHeader))
	return dst
}

// decoder walks a payload, remembering the first error.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.p) == 0 {
		d.err = fmt.Errorf("%w: missing byte", ErrTruncated)
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint", ErrTruncated)
		return 0
	}
	// A multi-byte varint ending in a zero byte carries redundant
	// continuation groups; rejecting it keeps the encoding canonical (one
	// byte sequence per message), which the fuzzer relies on.
	if n > 1 && d.p[n-1] == 0 {
		d.err = ErrNonCanonical
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.err = fmt.Errorf("%w: missing float64", ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.p))
	d.p = d.p[8:]
	return v
}

// DecodeMessage decodes one payload (as produced by AppendMessage) into a
// pooled proto.Message. On success the caller owns the message and must
// eventually proto.Release it (or hand it to a transport that does). On
// error no message is retained.
func DecodeMessage(p []byte) (*proto.Message, error) {
	return decodeMessage(p, 0)
}

// decodeMessage is DecodeMessage with a nesting depth: batch members
// decode at depth 1, where a further envelope is rejected (envelopes never
// nest).
func decodeMessage(p []byte, depth int) (*proto.Message, error) {
	d := decoder{p: p}
	v := d.byte()
	if d.err == nil && (v == 0 || v > Version) {
		return nil, fmt.Errorf("%w: got %d, want 1..%d", ErrVersion, v, Version)
	}
	kind := d.byte()
	if d.err == nil && int(kind) >= proto.NumKinds {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
	k := proto.Kind(kind)
	// A pre-replica kind has exactly two valid version bytes: its minimal
	// version (Key == 0) and version 3 (non-zero Key); a replica or
	// soft-state tree kind has exactly one (its minimal version, Key always
	// present). That keeps the encoding
	// canonical under fuzzing, and no kind can masquerade under a foreign
	// vocabulary. A version-3 non-batch payload whose Key decodes to zero
	// is rejected below for the same reason.
	if d.err == nil && v != minVersion(k) && !(v == keyVersion && minVersion(k) < keyVersion) {
		if minVersion(k) >= keyVersion {
			return nil, fmt.Errorf("%w: kind %s requires version %d, got %d",
				ErrVersion, k, minVersion(k), v)
		}
		return nil, fmt.Errorf("%w: kind %s requires version %d or %d, got %d",
			ErrVersion, k, minVersion(k), keyVersion, v)
	}
	if k == proto.KindBatch && depth > 0 {
		return nil, fmt.Errorf("%w: nested batch envelope", ErrUnknownKind)
	}
	flags := d.byte()
	if d.err == nil && flags&^byte(knownFlags) != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrBadFlags, flags)
	}
	if d.err == nil && k == proto.KindBatch && flags != 0 {
		return nil, fmt.Errorf("%w: %#x on batch envelope", ErrBadFlags, flags)
	}
	if d.err != nil {
		return nil, d.err
	}
	if k == proto.KindBatch {
		return decodeBatch(&d, depth)
	}
	m := proto.NewMessage()
	m.Kind = k
	m.To = int(d.varint())
	m.Origin = int(d.varint())
	m.Subject = int(d.varint())
	m.Old = int(d.varint())
	m.New = int(d.varint())
	m.Seq = d.varint()
	m.Version = d.varint()
	m.Hops = int(d.varint())
	if v >= 3 {
		m.Key = int(d.varint())
		// Version 3 is only ever stamped to carry a non-zero Key; version 4
		// payloads always include the field, so zero is canonical there.
		if d.err == nil && v == keyVersion && m.Key == 0 {
			proto.Release(m)
			return nil, fmt.Errorf("%w: version 3 with zero key", ErrNonCanonical)
		}
	}
	m.Expiry = d.float()
	pathLen := d.varint()
	if d.err == nil && (pathLen < 0 || pathLen > MaxPath) {
		proto.Release(m)
		return nil, fmt.Errorf("%w: path length %d", ErrTooLarge, pathLen)
	}
	for i := int64(0); i < pathLen && d.err == nil; i++ {
		m.Path = append(m.Path, int(d.varint()))
	}
	if flags&flagPiggy != 0 {
		pk := d.byte()
		if d.err == nil && int(pk) >= proto.NumKinds {
			proto.Release(m)
			return nil, fmt.Errorf("%w: piggy kind %d", ErrUnknownKind, pk)
		}
		m.SetPiggy(proto.Kind(pk), int(d.varint()))
	}
	if d.err != nil {
		proto.Release(m)
		return nil, d.err
	}
	if len(d.p) != 0 {
		proto.Release(m)
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.p))
	}
	return m, nil
}

// decodeBatch decodes the envelope body after version/kind/flags. Each
// member payload is decoded strictly (its declared length must be consumed
// exactly), so a valid envelope re-encodes byte-identically.
func decodeBatch(d *decoder, depth int) (*proto.Message, error) {
	m := proto.NewMessage()
	m.Kind = proto.KindBatch
	m.To = int(d.varint())
	m.Origin = int(d.varint())
	m.Seq = d.varint()
	count := d.varint()
	if d.err == nil && (count < 1 || count > MaxBatch) {
		proto.Release(m)
		return nil, fmt.Errorf("%w: batch of %d members", ErrTooLarge, count)
	}
	for i := int64(0); i < count && d.err == nil; i++ {
		sublen := d.varint()
		if d.err != nil {
			break
		}
		if sublen < 1 || sublen > int64(len(d.p)) {
			d.err = fmt.Errorf("%w: batch member length %d of %d", ErrTruncated, sublen, len(d.p))
			break
		}
		sub, err := decodeMessage(d.p[:sublen], depth+1)
		if err != nil {
			d.err = err
			break
		}
		d.p = d.p[sublen:]
		m.Batch = append(m.Batch, sub)
	}
	if d.err != nil {
		proto.Release(m) // cascades into any members decoded so far
		return nil, d.err
	}
	if len(d.p) != 0 {
		proto.Release(m)
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.p))
	}
	return m, nil
}
