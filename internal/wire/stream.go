package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dup/internal/proto"
)

// Writer frames messages onto a byte stream. It keeps one reusable encode
// buffer, so steady-state writing does not allocate. Not safe for
// concurrent use; the TCP transport gives each connection one writer
// goroutine and one Writer.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteMessage frames and buffers m. The caller keeps ownership of m.
func (w *Writer) WriteMessage(m *proto.Message) error {
	w.buf = AppendFrame(w.buf[:0], m)
	if len(w.buf)-frameHeader > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(w.buf)-frameHeader)
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Flush pushes buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// readerBufSize is the initial fill-buffer size: large enough that one
// Read off a loaded socket gathers dozens of typical frames, small enough
// to keep per-connection cost negligible. The buffer grows on demand (up
// to one max-size frame) when a single frame outruns it.
const readerBufSize = 64 << 10

// DefaultBurstFrames caps how many frames one ReadBurst call decodes when
// the caller passes max <= 0. It mirrors the writer's maxGather so one
// receive burst is about one send gather.
const DefaultBurstFrames = 64

// errDrained is next()'s internal would-block signal: the buffered bytes
// hold no complete frame and the caller asked not to read more.
var errDrained = errors.New("wire: drained")

// Reader decodes frames from a byte stream into pooled messages. It fills
// one reusable buffer with large reads and decodes frames out of it, so a
// burst of inbound frames pays one Read syscall, not one per frame. Not
// safe for concurrent use.
type Reader struct {
	r        io.Reader
	buf      []byte // filled wire bytes; the unconsumed window is buf[pos:lim]
	pos, lim int
	burst    []*proto.Message // reused backing slice for ReadBurst results
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// ReadMessage reads one frame and decodes it. On success the caller owns
// the returned message and must eventually proto.Release it. io.EOF at a
// frame boundary is returned as io.EOF; a partial frame becomes a
// truncation error. It is the one-frame view of the same decode path
// ReadBurst runs, so both produce identical message streams for the same
// bytes.
func (r *Reader) ReadMessage() (*proto.Message, error) {
	return r.next(true)
}

// ReadBurst decodes up to max frames (<= 0 means DefaultBurstFrames) and
// returns them as one burst. It blocks only until the first frame is
// complete; the rest of the burst is whatever further frames the fill
// buffer already holds, so a quiet stream degrades to one message per
// call and a loaded one amortizes the read across the gather. The caller
// owns every returned message; the slice itself belongs to the Reader and
// is overwritten by the next ReadMessage/ReadBurst call. When err is
// non-nil the messages decoded before the failure are still returned —
// dispatch them, then treat the stream as broken.
func (r *Reader) ReadBurst(max int) ([]*proto.Message, error) {
	if max <= 0 {
		max = DefaultBurstFrames
	}
	burst := r.burst[:0]
	for len(burst) < max {
		m, err := r.next(len(burst) == 0)
		if err == errDrained {
			break
		}
		if err != nil {
			r.burst = burst
			return burst, err
		}
		burst = append(burst, m)
	}
	r.burst = burst
	return burst, nil
}

// next decodes one frame out of the fill buffer. With block it reads from
// the stream until a complete frame (or an error) arrives; without, it
// returns errDrained as soon as the buffered bytes run dry, never
// touching the underlying reader.
func (r *Reader) next(block bool) (*proto.Message, error) {
	for {
		if have := r.lim - r.pos; have >= frameHeader {
			n := binary.BigEndian.Uint32(r.buf[r.pos:])
			if n == 0 {
				return nil, fmt.Errorf("%w: empty frame", ErrTruncated)
			}
			if n > MaxFrame {
				return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
			}
			total := frameHeader + int(n)
			if have >= total {
				m, err := DecodeMessage(r.buf[r.pos+frameHeader : r.pos+total])
				r.pos += total
				return m, err
			}
		}
		if !block {
			return nil, errDrained
		}
		if err := r.fill(); err != nil {
			return nil, r.classify(err)
		}
	}
}

// fill grows the unconsumed window with one read from the stream,
// compacting leftovers to the buffer's front (and growing it, bounded by
// the max frame size) when the tail has no free space.
func (r *Reader) fill() error {
	if r.buf == nil {
		r.buf = make([]byte, readerBufSize)
	}
	if r.pos == r.lim {
		r.pos, r.lim = 0, 0
	} else if r.lim == len(r.buf) {
		// Compact when that frees at least half the buffer. Otherwise one
		// pending frame dominates it: grow toward the largest frame the
		// length prefix already validated against MaxFrame, so trickled
		// reads stay linear instead of re-copying a nearly-full buffer
		// per fill. A full buffer with pos == 0 at the max size cannot
		// reach here — it already holds a complete max-size frame.
		if r.pos >= len(r.buf)/2 || len(r.buf) >= frameHeader+MaxFrame {
			r.lim = copy(r.buf, r.buf[r.pos:r.lim])
			r.pos = 0
		} else {
			grown := make([]byte, min(2*len(r.buf), frameHeader+MaxFrame))
			r.lim = copy(grown, r.buf[r.pos:r.lim])
			r.pos = 0
			r.buf = grown
		}
	}
	for {
		n, err := r.r.Read(r.buf[r.lim:])
		r.lim += n
		if n > 0 {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// classify maps a stream error onto the frame boundary: end-of-stream
// between frames is a clean io.EOF, inside a header or body it is a
// truncation; other errors pass through untouched.
func (r *Reader) classify(err error) error {
	have := r.lim - r.pos
	if err != io.EOF {
		if have >= frameHeader {
			return fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
		}
		return err
	}
	switch {
	case have == 0:
		return io.EOF
	case have < frameHeader:
		return fmt.Errorf("%w: partial frame header", ErrTruncated)
	case have == frameHeader:
		return fmt.Errorf("%w: frame body: %v", ErrTruncated, io.EOF)
	default:
		return fmt.Errorf("%w: frame body: %v", ErrTruncated, io.ErrUnexpectedEOF)
	}
}
