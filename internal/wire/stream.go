package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dup/internal/proto"
)

// Writer frames messages onto a byte stream. It keeps one reusable encode
// buffer, so steady-state writing does not allocate. Not safe for
// concurrent use; the TCP transport gives each connection one writer
// goroutine and one Writer.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteMessage frames and buffers m. The caller keeps ownership of m.
func (w *Writer) WriteMessage(m *proto.Message) error {
	w.buf = AppendFrame(w.buf[:0], m)
	if len(w.buf)-frameHeader > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(w.buf)-frameHeader)
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Flush pushes buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes frames from a byte stream into pooled messages, reusing
// one payload buffer across reads. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadMessage reads one frame and decodes it. On success the caller owns
// the returned message and must eventually proto.Release it. io.EOF at a
// frame boundary is returned as io.EOF; a partial frame becomes
// io.ErrUnexpectedEOF.
func (r *Reader) ReadMessage() (*proto.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: partial frame header", ErrTruncated)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrTruncated)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	return DecodeMessage(buf)
}
