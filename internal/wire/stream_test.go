package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dup/internal/proto"
)

// chunkReader hands out at most n bytes per Read, tearing frames across
// fill boundaries the way a congested socket does.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := min(c.n, min(len(c.data), len(p)))
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// sampleStream frames every sample message, repeated, into one wire image.
func sampleStream(repeat int) ([]byte, []*proto.Message) {
	var stream []byte
	var want []*proto.Message
	for i := 0; i < repeat; i++ {
		for _, m := range sampleMessages() {
			stream = AppendFrame(stream, m)
			want = append(want, m)
		}
	}
	return stream, want
}

// drainMessages reads the whole stream one frame at a time.
func drainMessages(r *Reader) ([]*proto.Message, error) {
	var out []*proto.Message
	for {
		m, err := r.ReadMessage()
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}

// drainBursts reads the whole stream in bursts, recording each burst size.
func drainBursts(r *Reader, max int) ([]*proto.Message, []int, error) {
	var out []*proto.Message
	var sizes []int
	for {
		ms, err := r.ReadBurst(max)
		out = append(out, ms...)
		if len(ms) > 0 {
			sizes = append(sizes, len(ms))
		}
		if err != nil {
			return out, sizes, err
		}
	}
}

func releaseAll(ms []*proto.Message) {
	for _, m := range ms {
		proto.Release(m)
	}
}

// TestReadBurstMatchesReadMessage is the wire-image acceptance check: the
// burst path and the one-frame path must produce identical message
// streams and identical terminal errors for the same bytes, torn frames
// included.
func TestReadBurstMatchesReadMessage(t *testing.T) {
	stream, want := sampleStream(3)
	cases := []struct {
		name  string
		bytes []byte
	}{
		{"clean", stream},
		{"truncated header", append(append([]byte(nil), stream...), 0, 0)},
		{"truncated body", stream[:len(stream)-3]},
		{"oversized prefix", append(append([]byte(nil), stream...), 0xff, 0xff, 0xff, 0xff, 1)},
		{"trailing garbage frame", append(append([]byte(nil), stream...), 0, 0, 0, 2, 0x99, 0x99)},
	}
	for _, tc := range cases {
		for _, chunk := range []int{0, 1, 5, 4096} {
			r1 := NewReader(bytes.NewReader(tc.bytes))
			var src io.Reader = bytes.NewReader(tc.bytes)
			if chunk > 0 {
				src = &chunkReader{data: tc.bytes, n: chunk}
			}
			r2 := NewReader(src)
			one, err1 := drainMessages(r1)
			burst, _, err2 := drainBursts(r2, 7)
			if len(one) != len(burst) {
				t.Fatalf("%s/chunk=%d: %d messages via ReadMessage, %d via ReadBurst",
					tc.name, chunk, len(one), len(burst))
			}
			for i := range one {
				if !equalMessage(one[i], burst[i]) {
					t.Fatalf("%s/chunk=%d: message %d differs:\n %+v\n %+v",
						tc.name, chunk, i, one[i], burst[i])
				}
			}
			e1, e2 := "", ""
			if err1 != nil {
				e1 = err1.Error()
			}
			if err2 != nil {
				e2 = err2.Error()
			}
			if e1 != e2 {
				t.Fatalf("%s/chunk=%d: errors diverge: %q vs %q", tc.name, chunk, e1, e2)
			}
			if len(one) >= len(want) {
				for i, m := range want {
					if !equalMessage(m, one[i]) {
						t.Fatalf("%s/chunk=%d: decoded message %d does not match encoded", tc.name, chunk, i)
					}
				}
			}
			releaseAll(one)
			releaseAll(burst)
		}
	}
}

// TestReadBurstGathers proves the point of the burst path: when the whole
// stream is already buffered, one call returns many frames, capped at the
// requested maximum.
func TestReadBurstGathers(t *testing.T) {
	stream, want := sampleStream(2)
	r := NewReader(bytes.NewReader(stream))
	got, sizes, err := drainBursts(r, 6)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	if sizes[0] != 6 {
		t.Fatalf("first burst gathered %d frames, want the cap 6 (sizes %v)", sizes[0], sizes)
	}
	for _, s := range sizes {
		if s > 6 {
			t.Fatalf("burst of %d frames exceeds cap 6", s)
		}
	}
	releaseAll(got)
}

// TestReadBurstReturnsDecodedBeforeError: frames decoded ahead of a torn
// frame must be surfaced, not lost with the error.
func TestReadBurstReturnsDecodedBeforeError(t *testing.T) {
	stream, want := sampleStream(1)
	torn := stream[:len(stream)-2] // tear the final frame's body
	r := NewReader(bytes.NewReader(torn))
	got, _, err := drainBursts(r, 0)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("terminal error = %v, want ErrTruncated", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("decoded %d messages before the tear, want %d", len(got), len(want)-1)
	}
	releaseAll(got)
}

// TestReadBurstOversizedFrame: a frame bigger than the initial fill
// buffer must decode by growing it, via both paths.
func TestReadBurstOversizedFrame(t *testing.T) {
	m := proto.NewMessage()
	m.Kind = proto.KindBatch
	m.To = 1
	for i := 0; i < 256; i++ {
		sub := proto.NewMessage()
		sub.Kind = proto.KindPush
		sub.To, sub.Origin, sub.Key = 1, 2, i
		for p := 0; p < 128; p++ {
			sub.Path = append(sub.Path, (1<<40)+p)
		}
		m.Batch = append(m.Batch, sub)
	}
	defer proto.Release(m)
	frame := AppendFrame(nil, m)
	if len(frame) <= readerBufSize {
		t.Fatalf("test frame of %d bytes does not outrun the %d-byte buffer", len(frame), readerBufSize)
	}
	for _, burst := range []bool{false, true} {
		r := NewReader(bytes.NewReader(frame))
		var got *proto.Message
		var err error
		if burst {
			var ms []*proto.Message
			ms, err = r.ReadBurst(0)
			if len(ms) == 1 {
				got = ms[0]
			}
		} else {
			got, err = r.ReadMessage()
		}
		if err != nil || got == nil {
			t.Fatalf("burst=%v: oversized frame failed: %v", burst, err)
		}
		if !equalMessage(m, got) {
			t.Fatalf("burst=%v: oversized frame decoded wrong", burst)
		}
		proto.Release(got)
	}
}
