package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"

	"dup/internal/proto"
)

// FuzzDecodeEncode feeds arbitrary bytes to the decoder. Whatever decodes
// must re-encode byte-identically (the format has one canonical encoding)
// and re-decode to an equal message; whatever fails to decode must fail
// with a wire error, not a panic. The corpus is seeded with a valid
// payload for every proto.Kind plus the field-coverage variants.
func FuzzDecodeEncode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
	}
	// A few deliberately broken seeds steer the fuzzer at the reject paths.
	f.Add([]byte{})
	f.Add([]byte{99})
	f.Add([]byte{Version, 200, 0})
	f.Add([]byte{Version, 0, 0xff})
	// Batch reject paths: bare envelope header, zero member count, and a
	// nested envelope.
	f.Add([]byte{3, byte(proto.KindBatch), 0})
	f.Add([]byte{3, byte(proto.KindBatch), 0, 0, 0, 0, 0})
	f.Add(AppendMessage(nil, &proto.Message{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{
		{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{{Kind: proto.KindPush, To: 1}}},
	}}))
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := DecodeMessage(p)
		if err != nil {
			return // rejected without panicking: fine
		}
		if int(m.Kind) >= proto.NumKinds {
			t.Fatalf("decoder accepted unknown kind %d", m.Kind)
		}
		re := AppendMessage(nil, m)
		if !bytes.Equal(re, p) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", p, re)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !equalMessage(m, m2) {
			t.Fatalf("re-decode mismatch:\n %+v\n %+v", m, m2)
		}
		proto.Release(m)
		proto.Release(m2)
	})
}

// FuzzReadBurst feeds arbitrary byte streams to the burst decoder and
// holds it to the ReadMessage contract: for the same bytes both paths
// must produce the same message sequence and fail at the same point,
// whatever the burst cap and however the stream is torn across reads.
// The corpus seeds torn frames, oversized length prefixes and trailing
// garbage on top of a valid multi-frame stream.
func FuzzReadBurst(f *testing.F) {
	var stream []byte
	for _, m := range sampleMessages() {
		stream = AppendFrame(stream, m)
	}
	f.Add(stream, uint8(7), uint8(0))
	f.Add(stream[:len(stream)-3], uint8(2), uint8(3)) // torn body, tiny reads
	f.Add(append(append([]byte(nil), stream...), 0xff, 0xff, 0xff, 0xff, 1), uint8(64), uint8(9))
	f.Add(append(append([]byte(nil), stream...), 0, 0, 0, 2, 0x99, 0x99), uint8(1), uint8(1))
	f.Add([]byte{0, 0, 0, 0}, uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, p []byte, cap8, chunk8 uint8) {
		one := NewReader(bytes.NewReader(p))
		var src io.Reader = bytes.NewReader(p)
		if chunk8 > 0 {
			src = iotest.OneByteReader(bytes.NewReader(p))
			if chunk8 > 1 {
				src = &fuzzChunkReader{data: p, n: int(chunk8)}
			}
		}
		burst := NewReader(src)
		var ms1 []*proto.Message
		var err1 error
		for err1 == nil && len(ms1) < 1024 {
			var m *proto.Message
			m, err1 = one.ReadMessage()
			if err1 == nil {
				ms1 = append(ms1, m)
			}
		}
		var ms2 []*proto.Message
		var err2 error
		for err2 == nil && len(ms2) < 1024 {
			var got []*proto.Message
			got, err2 = burst.ReadBurst(int(cap8))
			if len(got) > int(cap8) && cap8 > 0 {
				t.Fatalf("burst of %d frames exceeds cap %d", len(got), cap8)
			}
			ms2 = append(ms2, got...)
		}
		if len(ms1) >= 1024 || len(ms2) >= 1024 {
			// Hit the iteration backstop before either stream ended; the
			// prefixes are not comparable frame-for-frame.
			for _, m := range append(ms1, ms2...) {
				proto.Release(m)
			}
			return
		}
		if len(ms1) != len(ms2) {
			t.Fatalf("%d messages via ReadMessage, %d via ReadBurst", len(ms1), len(ms2))
		}
		for i := range ms1 {
			if !equalMessage(ms1[i], ms2[i]) {
				t.Fatalf("message %d differs:\n %+v\n %+v", i, ms1[i], ms2[i])
			}
		}
		if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("errors diverge: %v vs %v", err1, err2)
		}
		for _, m := range ms1 {
			proto.Release(m)
		}
		for _, m := range ms2 {
			proto.Release(m)
		}
	})
}

// fuzzChunkReader tears the stream into n-byte reads.
type fuzzChunkReader struct {
	data []byte
	n    int
}

func (c *fuzzChunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// FuzzFrameReader feeds arbitrary byte streams to the frame reader: it
// must either produce valid messages or return an error, never panic or
// read past the declared frame.
func FuzzFrameReader(f *testing.F) {
	var stream []byte
	for _, m := range sampleMessages() {
		stream = AppendFrame(stream, m)
	}
	f.Add(stream)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, p []byte) {
		r := NewReader(bytes.NewReader(p))
		for i := 0; i < 64; i++ {
			m, err := r.ReadMessage()
			if err != nil {
				return
			}
			if int(m.Kind) >= proto.NumKinds {
				t.Fatalf("reader surfaced unknown kind %d", m.Kind)
			}
			proto.Release(m)
		}
	})
}
