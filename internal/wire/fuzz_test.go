package wire

import (
	"bytes"
	"testing"

	"dup/internal/proto"
)

// FuzzDecodeEncode feeds arbitrary bytes to the decoder. Whatever decodes
// must re-encode byte-identically (the format has one canonical encoding)
// and re-decode to an equal message; whatever fails to decode must fail
// with a wire error, not a panic. The corpus is seeded with a valid
// payload for every proto.Kind plus the field-coverage variants.
func FuzzDecodeEncode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
	}
	// A few deliberately broken seeds steer the fuzzer at the reject paths.
	f.Add([]byte{})
	f.Add([]byte{99})
	f.Add([]byte{Version, 200, 0})
	f.Add([]byte{Version, 0, 0xff})
	// Batch reject paths: bare envelope header, zero member count, and a
	// nested envelope.
	f.Add([]byte{3, byte(proto.KindBatch), 0})
	f.Add([]byte{3, byte(proto.KindBatch), 0, 0, 0, 0, 0})
	f.Add(AppendMessage(nil, &proto.Message{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{
		{Kind: proto.KindBatch, To: 1, Batch: []*proto.Message{{Kind: proto.KindPush, To: 1}}},
	}}))
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := DecodeMessage(p)
		if err != nil {
			return // rejected without panicking: fine
		}
		if int(m.Kind) >= proto.NumKinds {
			t.Fatalf("decoder accepted unknown kind %d", m.Kind)
		}
		re := AppendMessage(nil, m)
		if !bytes.Equal(re, p) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", p, re)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !equalMessage(m, m2) {
			t.Fatalf("re-decode mismatch:\n %+v\n %+v", m, m2)
		}
		proto.Release(m)
		proto.Release(m2)
	})
}

// FuzzFrameReader feeds arbitrary byte streams to the frame reader: it
// must either produce valid messages or return an error, never panic or
// read past the declared frame.
func FuzzFrameReader(f *testing.F) {
	var stream []byte
	for _, m := range sampleMessages() {
		stream = AppendFrame(stream, m)
	}
	f.Add(stream)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, p []byte) {
		r := NewReader(bytes.NewReader(p))
		for i := 0; i < 64; i++ {
			m, err := r.ReadMessage()
			if err != nil {
				return
			}
			if int(m.Kind) >= proto.NumKinds {
				t.Fatalf("reader surfaced unknown kind %d", m.Kind)
			}
			proto.Release(m)
		}
	})
}
