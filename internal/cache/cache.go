// Package cache provides the two index caches of the system: Entry, the
// single-index per-node cache slot the simulator uses (one simulated key,
// version + absolute expiry), and TTLCache, a general multi-key cache with
// LRU eviction used by the live network where nodes cache indices for many
// keys at once.
package cache

// Entry is one node's cached copy of the simulated index: the version it
// holds and the absolute time at which that version expires. The zero value
// is an empty slot (version -1 would also work, but Valid on the zero value
// reports false because Expiry is 0).
type Entry struct {
	Version int64
	Expiry  float64
	has     bool
}

// Valid reports whether the slot holds an unexpired copy at time now. A
// copy expiring exactly at now is already invalid (the paper's TTL model:
// usable strictly before expiry).
func (e *Entry) Valid(now float64) bool {
	return e.has && now < e.Expiry
}

// Has reports whether the slot holds any copy, expired or not.
func (e *Entry) Has() bool { return e.has }

// Store caches version with the given absolute expiry if it is at least as
// new as the current content; stale writes (older versions arriving late
// due to message reordering) are ignored. It reports whether the slot
// changed.
func (e *Entry) Store(version int64, expiry float64) bool {
	if e.has && version < e.Version {
		return false
	}
	if e.has && version == e.Version && expiry <= e.Expiry {
		return false
	}
	e.Version = version
	e.Expiry = expiry
	e.has = true
	return true
}

// Invalidate clears the slot.
func (e *Entry) Invalidate() { *e = Entry{} }
