package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestEntryZeroValueInvalid(t *testing.T) {
	var e Entry
	if e.Valid(0) || e.Has() {
		t.Fatal("zero-value entry should be empty")
	}
}

func TestEntryStoreAndExpiry(t *testing.T) {
	var e Entry
	if !e.Store(0, 3600) {
		t.Fatal("initial store rejected")
	}
	if !e.Valid(0) || !e.Valid(3599.99) {
		t.Fatal("entry should be valid before expiry")
	}
	if e.Valid(3600) {
		t.Fatal("entry valid exactly at expiry")
	}
	if !e.Has() {
		t.Fatal("Has false after store")
	}
}

func TestEntryRejectsStaleVersions(t *testing.T) {
	var e Entry
	e.Store(5, 100)
	if e.Store(4, 999) {
		t.Fatal("older version accepted")
	}
	if e.Version != 5 || e.Expiry != 100 {
		t.Fatal("stale write mutated entry")
	}
	if e.Store(5, 100) {
		t.Fatal("identical write reported change")
	}
	if !e.Store(5, 150) {
		t.Fatal("same version, later expiry should extend")
	}
	if !e.Store(6, 200) {
		t.Fatal("newer version rejected")
	}
}

func TestEntryInvalidate(t *testing.T) {
	var e Entry
	e.Store(1, 10)
	e.Invalidate()
	if e.Has() || e.Valid(0) {
		t.Fatal("Invalidate did not clear entry")
	}
	// After invalidation, even version 0 stores again.
	if !e.Store(0, 5) {
		t.Fatal("store after invalidate rejected")
	}
}

func TestEntryMonotoneProperty(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		var e Entry
		lastV := int64(-1)
		for _, op := range ops {
			v := int64(op % 64)
			exp := float64(op % 971)
			e.Store(v, exp)
			if e.Has() {
				if e.Version < lastV {
					return false // version went backwards
				}
				lastV = e.Version
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTTLCacheBasics(t *testing.T) {
	c := NewTTLCache(4)
	c.Put(Item{Key: "a", Value: "n1", Version: 1, Expiry: 100}, 0)
	it, ok := c.Get("a", 50)
	if !ok || it.Value != "n1" {
		t.Fatalf("Get = %+v, %v", it, ok)
	}
	if _, ok := c.Get("a", 100); ok {
		t.Fatal("expired entry returned")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not removed on access")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestTTLCacheLRUEviction(t *testing.T) {
	c := NewTTLCache(2)
	c.Put(Item{Key: "a", Expiry: 1000}, 0)
	c.Put(Item{Key: "b", Expiry: 1000}, 0)
	c.Get("a", 1) // a becomes MRU
	c.Put(Item{Key: "c", Expiry: 1000}, 2)
	if _, ok := c.Get("b", 3); ok {
		t.Fatal("LRU item b not evicted")
	}
	if _, ok := c.Get("a", 3); !ok {
		t.Fatal("MRU item a evicted")
	}
	if _, ok := c.Get("c", 3); !ok {
		t.Fatal("new item c missing")
	}
}

func TestTTLCacheVersionGuard(t *testing.T) {
	c := NewTTLCache(4)
	c.Put(Item{Key: "k", Version: 5, Expiry: 1000}, 0)
	if c.Put(Item{Key: "k", Version: 3, Expiry: 2000}, 1) {
		t.Fatal("stale version overwrote newer cache entry")
	}
	// But a stale version may replace an expired entry.
	if !c.Put(Item{Key: "k", Version: 3, Expiry: 2000}, 1500) {
		t.Fatal("replacement of expired entry rejected")
	}
}

func TestTTLCacheInvalidate(t *testing.T) {
	c := NewTTLCache(4)
	c.Put(Item{Key: "k", Expiry: 100}, 0)
	if !c.Invalidate("k") || c.Invalidate("k") {
		t.Fatal("Invalidate semantics wrong")
	}
}

func TestTTLCacheSweep(t *testing.T) {
	c := NewTTLCache(10)
	for i := 0; i < 6; i++ {
		c.Put(Item{Key: fmt.Sprintf("k%d", i), Expiry: float64(10 * (i + 1))}, 0)
	}
	if removed := c.Sweep(35); removed != 3 {
		t.Fatalf("Sweep removed %d, want 3 (expiries 10,20,30)", removed)
	}
	if c.Len() != 3 {
		t.Fatalf("Len after sweep = %d", c.Len())
	}
}

func TestTTLCacheConcurrent(t *testing.T) {
	c := NewTTLCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.Put(Item{Key: k, Version: int64(i), Expiry: float64(i + 1000)}, float64(i))
				c.Get(k, float64(i))
				if i%100 == 0 {
					c.Sweep(float64(i))
				}
			}
		}(g)
	}
	wg.Wait() // run with -race; correctness is "no race, no panic"
}

func TestTTLCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTTLCache(0) did not panic")
		}
	}()
	NewTTLCache(0)
}
