package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Item is one cached multi-key index entry.
type Item struct {
	Key     string
	Value   string
	Version int64
	Expiry  float64
}

// TTLCache is a bounded multi-key index cache with LRU eviction and
// absolute per-item expiry, safe for concurrent use. Live-network nodes use
// one TTLCache each; the PCX/CUP/DUP schemes differ only in how entries get
// refreshed, not in how they are stored.
type TTLCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	items    map[string]*list.Element // value: *Item stored in order
	hits     uint64
	misses   uint64
}

// NewTTLCache returns a cache holding at most capacity items. It panics if
// capacity <= 0.
func NewTTLCache(capacity int) *TTLCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", capacity))
	}
	return &TTLCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the valid (unexpired at now) entry for key, marking it
// recently used. Expired entries are removed on access and count as misses.
func (c *TTLCache) Get(key string, now float64) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Item{}, false
	}
	it := el.Value.(*Item)
	if now >= it.Expiry {
		c.order.Remove(el)
		delete(c.items, key)
		c.misses++
		return Item{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return *it, true
}

// Put stores the item, unless a strictly newer version of the same key is
// already cached. The least recently used item is evicted when the cache is
// full. It reports whether the item was stored.
func (c *TTLCache) Put(item Item, now float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[item.Key]; ok {
		cur := el.Value.(*Item)
		if cur.Version > item.Version && now < cur.Expiry {
			return false
		}
		*cur = item
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*Item).Key)
		}
	}
	it := item
	c.items[item.Key] = c.order.PushFront(&it)
	return true
}

// Invalidate removes key from the cache; it reports whether it was present.
func (c *TTLCache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of items currently held (including any that have
// expired but have not been touched since).
func (c *TTLCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *TTLCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Sweep removes every expired item and returns how many were removed. Live
// nodes call this periodically to bound memory.
func (c *TTLCache) Sweep(now float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if it := el.Value.(*Item); now >= it.Expiry {
			c.order.Remove(el)
			delete(c.items, it.Key)
			removed++
		}
		el = next
	}
	return removed
}
