package topology

// Paper returns the eight-node index search tree of the paper's Figures 1
// and 2, with zero-based ids: node i here is N(i+1) in the paper.
//
//	N1(0) ── N2(1) ── N3(2) ─┬─ N4(3)
//	                         └─ N5(4) ── N6(5) ─┬─ N7(6)
//	                                            └─ N8(7)
//
// It is used by tests that replay the paper's worked examples (e.g. "DUP
// costs three hops while PCX costs ten hops and CUP costs five hops").
func Paper() *Tree {
	return FromParents([]int{-1, 0, 1, 2, 2, 4, 5, 5})
}
