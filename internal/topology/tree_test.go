package topology

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestGenerateValid(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000} {
		for _, d := range []int{1, 2, 4, 10} {
			tr := Generate(n, d, rng.New(uint64(n*100+d)))
			if tr.N() != n {
				t.Fatalf("n=%d d=%d: N() = %d", n, d, tr.N())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
		}
	}
}

func TestGenerateRespectsMaxDegree(t *testing.T) {
	tr := Generate(5000, 4, rng.New(9))
	sawMultiple := false
	for i := 0; i < tr.N(); i++ {
		if k := len(tr.Children(i)); k > 4 {
			t.Fatalf("node %d has %d children, max 4", i, k)
		} else if k > 1 {
			sawMultiple = true
		}
	}
	if !sawMultiple {
		t.Fatal("no node with more than one child in a 5000-node degree-4 tree")
	}
}

func TestGenerateDegreeOneIsChain(t *testing.T) {
	tr := Generate(50, 1, rng.New(3))
	if tr.MaxDepth() != 49 {
		t.Fatalf("degree-1 tree should be a chain; max depth %d", tr.MaxDepth())
	}
	for i := 1; i < 50; i++ {
		if tr.Parent(i) != i-1 {
			t.Fatalf("chain broken at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 4, rng.New(42))
	b := Generate(500, 4, rng.New(42))
	for i := 0; i < 500; i++ {
		if a.Parent(i) != b.Parent(i) {
			t.Fatalf("same seed produced different trees at node %d", i)
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0": func() { Generate(0, 4, rng.New(1)) },
		"d=0": func() { Generate(10, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPaperTreeShape(t *testing.T) {
	tr := Paper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.N() != 8 {
		t.Fatalf("paper tree has %d nodes", tr.N())
	}
	// N6 (id 5) is four hops from the root: the paper's "eight hops for N6
	// to send the request and get the index from N1" round trip.
	if tr.Depth(5) != 4 {
		t.Fatalf("depth(N6) = %d, want 4", tr.Depth(5))
	}
	if tr.Depth(3) != 3 {
		t.Fatalf("depth(N4) = %d, want 3", tr.Depth(3))
	}
	if got := tr.LCA(3, 5); got != 2 {
		t.Fatalf("LCA(N4, N6) = %d, want N3 (2)", got)
	}
}

func TestPathToRoot(t *testing.T) {
	tr := Paper()
	path := tr.PathToRoot(5)
	want := []int{5, 4, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	rootPath := tr.PathToRoot(0)
	if len(rootPath) != 1 || rootPath[0] != 0 {
		t.Fatalf("root path = %v", rootPath)
	}
}

func TestAncestor(t *testing.T) {
	tr := Paper()
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 5, true}, {2, 5, true}, {5, 5, true},
		{3, 5, false}, {5, 2, false}, {4, 7, true},
	}
	for _, c := range cases {
		if got := tr.Ancestor(c.a, c.b); got != c.want {
			t.Errorf("Ancestor(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestChildToward(t *testing.T) {
	tr := Paper()
	if got := tr.ChildToward(2, 7); got != 4 {
		t.Fatalf("ChildToward(N3, N8) = %d, want N5 (4)", got)
	}
	if got := tr.ChildToward(0, 1); got != 1 {
		t.Fatalf("ChildToward(N1, N2) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ChildToward(self, self) did not panic")
		}
	}()
	tr.ChildToward(3, 3)
}

func TestLCAProperty(t *testing.T) {
	tr := Generate(2000, 3, rng.New(77))
	err := quick.Check(func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw)%2000, int(bRaw)%2000
		l := tr.LCA(a, b)
		// The LCA must be an ancestor of both, and no child of it toward a
		// may also be an ancestor of b (i.e. it is the lowest).
		if !tr.Ancestor(l, a) || !tr.Ancestor(l, b) {
			return false
		}
		if l != a && l != b {
			ca := tr.ChildToward(l, a)
			if tr.Ancestor(ca, b) {
				return false
			}
		}
		return tr.LCA(a, b) == tr.LCA(b, a)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMaxDepth(t *testing.T) {
	tr := Paper()
	// Depths: 0,1,2,3,3,4,5,5 -> mean 23/8, max 5.
	if tr.MaxDepth() != 5 {
		t.Fatalf("MaxDepth = %d", tr.MaxDepth())
	}
	if got, want := tr.MeanDepth(), 23.0/8; got != want {
		t.Fatalf("MeanDepth = %v, want %v", got, want)
	}
}

func TestMeanDepthShrinksWithDegree(t *testing.T) {
	lo := Generate(4096, 2, rng.New(5))
	hi := Generate(4096, 10, rng.New(5))
	if hi.MeanDepth() >= lo.MeanDepth() {
		t.Fatalf("degree 10 tree (%v) not shallower than degree 2 tree (%v)",
			hi.MeanDepth(), lo.MeanDepth())
	}
}

func TestFromParentsRejectsMalformed(t *testing.T) {
	for name, parents := range map[string][]int{
		"empty":       {},
		"rootParent":  {0},
		"selfLoop":    {-1, 1},
		"outOfRange":  {-1, 5},
		"forwardOnly": {-1, 2, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromParents(%s) did not panic", name)
				}
			}()
			FromParents(parents)
		}()
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Generate(10, 3, rng.New(1))
	tr.depth[5] = 99
	if tr.Validate() == nil {
		t.Fatal("Validate accepted corrupted depth")
	}
}

func TestSingleNodeTree(t *testing.T) {
	tr := Generate(1, 4, rng.New(1))
	if tr.N() != 1 || tr.MaxDepth() != 0 || !tr.IsRoot(0) {
		t.Fatal("single-node tree malformed")
	}
	if len(tr.Children(0)) != 0 {
		t.Fatal("single node has children")
	}
}
