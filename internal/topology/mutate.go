package topology

import "fmt"

// The mutation operations below support churn simulation (Section III-C of
// the paper): the underlying peer-to-peer protocol repairs the index search
// tree when nodes fail and recover, and the maintenance schemes adjust
// their own state on top of the repaired routing.

// Detach removes node n from the routing tree: every child of n reattaches
// to n's parent, and n itself is left parentless and childless (depth 0 by
// convention). Subtree depths are updated. It panics when n is the root —
// root failure hands the authority role to a successor instead (handled by
// the live network, not the simulator).
func (t *Tree) Detach(n int) {
	if n == 0 {
		panic("topology: cannot detach the root")
	}
	p := t.parent[n]
	if p == -1 {
		return // already detached
	}
	for _, c := range t.children[n] {
		t.parent[c] = p
		t.children[p] = append(t.children[p], c)
		t.refreshDepths(c, t.depth[p]+1)
	}
	t.children[n] = nil
	t.removeChild(p, n)
	t.parent[n] = -1
	t.depth[n] = 0
}

// Attach re-inserts a detached node n as a child of parent. It panics if n
// is still attached, if parent equals n, or if parent is itself detached.
func (t *Tree) Attach(n, parent int) {
	if n == 0 {
		panic("topology: cannot attach the root")
	}
	if t.parent[n] != -1 {
		panic(fmt.Sprintf("topology: node %d is still attached", n))
	}
	if parent == n {
		panic("topology: node cannot be its own parent")
	}
	if parent != 0 && t.parent[parent] == -1 {
		panic(fmt.Sprintf("topology: parent %d is detached", parent))
	}
	t.parent[n] = parent
	t.children[parent] = append(t.children[parent], n)
	t.refreshDepths(n, t.depth[parent]+1)
}

// Attached reports whether node n currently participates in routing (the
// root always does).
func (t *Tree) Attached(n int) bool { return n == 0 || t.parent[n] != -1 }

// refreshDepths sets node n's depth to d and recomputes its subtree.
func (t *Tree) refreshDepths(n, d int) {
	t.depth[n] = d
	for _, c := range t.children[n] {
		t.refreshDepths(c, d+1)
	}
}

// removeChild deletes c from p's child list, preserving order.
func (t *Tree) removeChild(p, c int) {
	kids := t.children[p]
	for i, v := range kids {
		if v == c {
			t.children[p] = append(kids[:i], kids[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("topology: node %d is not a child of %d", c, p))
}

// NearestAttachedAncestor walks up from node n's original position using
// the provided original-parent vector until it finds an attached node, and
// returns it. It is used to re-home recovering nodes whose old parent is
// still down.
func (t *Tree) NearestAttachedAncestor(n int, originalParent []int) int {
	for p := originalParent[n]; ; p = originalParent[p] {
		if p == -1 {
			return 0
		}
		if t.Attached(p) {
			return p
		}
	}
}
