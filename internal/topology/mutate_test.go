package topology

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestDetachReattachesChildren(t *testing.T) {
	tr := Paper()
	tr.Detach(4) // N5 fails: N6 reattaches to N3
	if tr.Parent(5) != 2 {
		t.Fatalf("N6 parent = %d, want N3 (2)", tr.Parent(5))
	}
	if tr.Depth(5) != 3 || tr.Depth(6) != 4 {
		t.Fatalf("depths not refreshed: N6=%d N7=%d", tr.Depth(5), tr.Depth(6))
	}
	if tr.Attached(4) {
		t.Fatal("detached node still attached")
	}
	if err := validateIgnoring(tr, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDetachLeaf(t *testing.T) {
	tr := Paper()
	tr.Detach(7)
	if tr.Attached(7) {
		t.Fatal("leaf still attached")
	}
	for _, c := range tr.Children(5) {
		if c == 7 {
			t.Fatal("N6 still lists detached child")
		}
	}
}

func TestDetachIdempotent(t *testing.T) {
	tr := Paper()
	tr.Detach(3)
	tr.Detach(3) // no-op, must not panic
	if tr.Attached(3) {
		t.Fatal("node attached after double detach")
	}
}

func TestAttachRestores(t *testing.T) {
	tr := Paper()
	tr.Detach(4)
	tr.Attach(4, 2)
	if tr.Parent(4) != 2 || tr.Depth(4) != 3 {
		t.Fatalf("reattach wrong: parent=%d depth=%d", tr.Parent(4), tr.Depth(4))
	}
	// N6 stays where the repair put it (child of N3), N5 returns empty.
	if len(tr.Children(4)) != 0 {
		t.Fatal("reattached node kept children")
	}
}

func TestAttachPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"stillAttached": func() { tr := Paper(); tr.Attach(4, 2) },
		"selfParent":    func() { tr := Paper(); tr.Detach(4); tr.Attach(4, 4) },
		"deadParent": func() {
			tr := Paper()
			tr.Detach(4)
			tr.Detach(5)
			tr.Attach(5, 4)
		},
		"detachRoot": func() { Paper().Detach(0) },
		"attachRoot": func() { Paper().Attach(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNearestAttachedAncestor(t *testing.T) {
	tr := Paper()
	orig := make([]int, tr.N())
	for i := range orig {
		orig[i] = tr.Parent(i)
	}
	tr.Detach(4)
	tr.Detach(2)
	// N5's original parent N3 is down; nearest attached original ancestor
	// is N2.
	if got := tr.NearestAttachedAncestor(4, orig); got != 1 {
		t.Fatalf("ancestor = %d, want N2 (1)", got)
	}
	tr.Detach(1)
	if got := tr.NearestAttachedAncestor(4, orig); got != 0 {
		t.Fatalf("ancestor = %d, want root", got)
	}
}

// validateIgnoring runs the structural checks while skipping detached
// nodes.
func validateIgnoring(t *Tree, detached ...int) error {
	dead := map[int]bool{}
	for _, d := range detached {
		dead[d] = true
	}
	for i := 0; i < t.N(); i++ {
		if dead[i] || i == 0 {
			continue
		}
		p := t.Parent(i)
		if p == -1 {
			continue // also detached
		}
		if t.Depth(i) != t.Depth(p)+1 {
			return errDepth(i, t.Depth(i), p, t.Depth(p))
		}
	}
	return nil
}

type errDepthT struct{ i, di, p, dp int }

func errDepth(i, di, p, dp int) error { return errDepthT{i, di, p, dp} }
func (e errDepthT) Error() string {
	return "depth mismatch"
}

// TestChurnPropertyRoutingStaysConsistent applies random detach/attach
// sequences and verifies that attached nodes always form a tree rooted at
// 0 with consistent depths.
func TestChurnPropertyRoutingStaysConsistent(t *testing.T) {
	err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		src := rng.New(seed)
		n := src.IntRange(3, 40)
		tr := Generate(n, src.IntRange(1, 4), src.Split())
		orig := make([]int, n)
		for i := range orig {
			orig[i] = tr.Parent(i)
		}
		down := map[int]bool{}
		ops := int(opsRaw%60) + 5
		for i := 0; i < ops; i++ {
			node := src.IntRange(1, n-1)
			if down[node] {
				tr.Attach(node, tr.NearestAttachedAncestor(node, orig))
				delete(down, node)
			} else {
				tr.Detach(node)
				down[node] = true
			}
			// Check invariants over attached nodes.
			for v := 0; v < n; v++ {
				if down[v] {
					if tr.Attached(v) {
						return false
					}
					continue
				}
				// Walk to root, bounded.
				hops := 0
				for w := v; w != 0; w = tr.Parent(w) {
					if w == -1 || down[w] {
						return false
					}
					if tr.Depth(w) != tr.Depth(tr.Parent(w))+1 {
						return false
					}
					hops++
					if hops > n {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}
