// Package topology builds and navigates index search trees — the routing
// structure that queries for a key follow toward its authority node in a
// structured peer-to-peer network. Node 0 is always the root (the authority
// node for the simulated index).
//
// Two constructions are provided: the paper's random trees, where each
// node's child count is drawn uniformly from [1, D] (Section IV), and trees
// derived from actual Chord lookup paths (see dup/internal/overlay/chord),
// used by the topology ablation experiment.
package topology

import (
	"fmt"

	"dup/internal/rng"
)

// Tree is an immutable rooted tree over nodes 0..N-1 with node 0 as root.
type Tree struct {
	parent   []int   // parent[0] == -1
	children [][]int // children[i] in insertion order
	depth    []int   // depth[0] == 0
}

// Generate builds a random index search tree with n nodes where each node's
// child count is drawn uniformly from [1, maxDegree], in breadth-first
// order, truncated once n nodes exist. This follows Section IV: "The number
// of children for each node is uniformly selected from [1, D]."
// It panics if n <= 0 or maxDegree <= 0.
func Generate(n, maxDegree int, src *rng.Source) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("topology: need n > 0, got %d", n))
	}
	if maxDegree <= 0 {
		panic(fmt.Sprintf("topology: need maxDegree > 0, got %d", maxDegree))
	}
	t := &Tree{
		parent:   make([]int, n),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	t.parent[0] = -1
	next := 1
	// Frontier processed in FIFO order; node ids are assigned in BFS order
	// so ids are contiguous per level.
	for head := 0; head < n && next < n; head++ {
		want := src.IntRange(1, maxDegree)
		for c := 0; c < want && next < n; c++ {
			t.parent[next] = head
			t.depth[next] = t.depth[head] + 1
			t.children[head] = append(t.children[head], next)
			next++
		}
	}
	return t
}

// FromParents builds a tree from an explicit parent vector: parent[0] must
// be -1 and every other entry must point to an already-valid node forming a
// single tree rooted at 0. It is used by tests (hand-built paper figures)
// and by the Chord adapter. It panics on malformed input.
func FromParents(parent []int) *Tree {
	n := len(parent)
	if n == 0 {
		panic("topology: empty parent vector")
	}
	if parent[0] != -1 {
		panic(fmt.Sprintf("topology: parent[0] must be -1, got %d", parent[0]))
	}
	t := &Tree{
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	for i := 1; i < n; i++ {
		p := parent[i]
		if p < 0 || p >= n || p == i {
			panic(fmt.Sprintf("topology: node %d has invalid parent %d", i, p))
		}
		t.children[p] = append(t.children[p], i)
	}
	// Compute depths and verify connectivity (every node reaches the root
	// without a cycle).
	for i := 1; i < n; i++ {
		d, hops := 0, 0
		for j := i; j != 0; j = t.parent[j] {
			d++
			hops++
			if hops > n {
				panic(fmt.Sprintf("topology: cycle involving node %d", i))
			}
		}
		t.depth[i] = d
	}
	return t
}

// Clone returns a deep copy of the tree. Simulations that mutate routing
// (churn) clone caller-provided trees first.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		parent:   append([]int(nil), t.parent...),
		children: make([][]int, len(t.children)),
		depth:    append([]int(nil), t.depth...),
	}
	for i, kids := range t.children {
		c.children[i] = append([]int(nil), kids...)
	}
	return c
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node id (always 0).
func (t *Tree) Root() int { return 0 }

// Parent returns the parent of node i, or -1 for the root.
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns the children of node i. The slice must not be modified.
func (t *Tree) Children(i int) []int { return t.children[i] }

// Depth returns the number of hops from node i to the root.
func (t *Tree) Depth(i int) int { return t.depth[i] }

// IsRoot reports whether i is the root.
func (t *Tree) IsRoot(i int) bool { return i == 0 }

// PathToRoot returns the nodes from i (inclusive) to the root (inclusive).
func (t *Tree) PathToRoot(i int) []int {
	path := make([]int, 0, t.depth[i]+1)
	for j := i; j != -1; j = t.parent[j] {
		path = append(path, j)
	}
	return path
}

// Ancestor reports whether a is an ancestor of b (or equal to b).
func (t *Tree) Ancestor(a, b int) bool {
	for j := b; j != -1; j = t.parent[j] {
		if j == a {
			return true
		}
	}
	return false
}

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b int) int {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a, b = t.parent[a], t.parent[b]
	}
	return a
}

// ChildToward returns the child of ancestor anc whose subtree contains
// node i, i.e. the first hop from anc on the downward path to i. It panics
// if anc is not a strict ancestor of i.
func (t *Tree) ChildToward(anc, i int) int {
	prev := -1
	for j := i; j != -1; j = t.parent[j] {
		if j == anc {
			if prev == -1 {
				panic(fmt.Sprintf("topology: ChildToward(%d, %d): not a strict ancestor", anc, i))
			}
			return prev
		}
		prev = j
	}
	panic(fmt.Sprintf("topology: ChildToward(%d, %d): %d is not an ancestor", anc, i, anc))
}

// MaxDepth returns the depth of the deepest node.
func (t *Tree) MaxDepth() int {
	m := 0
	for _, d := range t.depth {
		if d > m {
			m = d
		}
	}
	return m
}

// MeanDepth returns the average node depth — the expected cold-cache query
// latency of the PCX scheme.
func (t *Tree) MeanDepth() float64 {
	sum := 0
	for _, d := range t.depth {
		sum += d
	}
	return float64(sum) / float64(len(t.depth))
}

// Validate checks the structural invariants (root parent, consistent
// children/parent, consistent depths, connectivity) and returns an error
// describing the first violation, or nil. Generation code is trusted; this
// is used by tests and by adapters that build trees from external sources.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		return fmt.Errorf("empty tree")
	}
	if t.parent[0] != -1 {
		return fmt.Errorf("root parent is %d, want -1", t.parent[0])
	}
	if t.depth[0] != 0 {
		return fmt.Errorf("root depth is %d, want 0", t.depth[0])
	}
	childCount := 0
	for p, kids := range t.children {
		for _, c := range kids {
			childCount++
			if c <= 0 || c >= n {
				return fmt.Errorf("node %d lists invalid child %d", p, c)
			}
			if t.parent[c] != p {
				return fmt.Errorf("child %d of %d has parent %d", c, p, t.parent[c])
			}
			if t.depth[c] != t.depth[p]+1 {
				return fmt.Errorf("child %d depth %d, parent %d depth %d", c, t.depth[c], p, t.depth[p])
			}
		}
	}
	if childCount != n-1 {
		return fmt.Errorf("tree has %d child links, want %d", childCount, n-1)
	}
	return nil
}
