package live

import (
	"fmt"
	"sort"
	"sync"

	"dup/internal/topology"
)

// Dynamic extends Directory with live membership: nodes can join a
// running cluster (the directory inserts them into the index search tree
// and assigns a parent) and leave it (their children are re-homed to
// their grandparent). Every membership change bumps an epoch counter, so
// concurrent observers of a join/leave race can order their snapshots
// deterministically — the chaos harness audits its invariants against the
// membership at verdict-time epoch, not the initial roster.
type Dynamic interface {
	Directory
	// Join inserts id as a new member and returns its assigned parent.
	Join(id int) (parent int, err error)
	// Leave removes id, re-homing its children under its parent.
	Leave(id int) error
	// Children returns the current children of id, ascending.
	Children(id int) []int
	// Members returns the current member ids, ascending.
	Members() []int
	// Epoch returns the membership epoch: it increments on every Join and
	// Leave and never moves otherwise.
	Epoch() uint64
}

// DynDirectory is the mutable in-process Directory: MemDirectory's
// liveness oracle plus live membership. One shared instance per cluster.
type DynDirectory struct {
	mu        sync.Mutex
	parent    map[int]int
	member    map[int]bool
	dead      map[int]bool
	rootID    int
	epoch     uint64
	maxDegree int
}

// NewDynDirectory returns a directory seeded from the index search tree;
// joiners are attached respecting maxDegree where possible.
func NewDynDirectory(tree *topology.Tree, maxDegree int) *DynDirectory {
	if maxDegree < 1 {
		maxDegree = 1
	}
	d := &DynDirectory{
		parent:    make(map[int]int, tree.N()),
		member:    make(map[int]bool, tree.N()),
		dead:      make(map[int]bool),
		maxDegree: maxDegree,
		epoch:     1,
	}
	for i := 0; i < tree.N(); i++ {
		d.parent[i] = tree.Parent(i)
		d.member[i] = true
	}
	return d
}

// RootID returns the designated authority node.
func (d *DynDirectory) RootID() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rootID
}

// Parent returns the current routing parent of id, or -1 for a node the
// directory does not know (or that left).
func (d *DynDirectory) Parent(id int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] {
		return -1
	}
	return d.parent[id]
}

// SetParent records a repair. Non-members (on either side, except the -1
// root marker) are ignored rather than corrupting state.
func (d *DynDirectory) SetParent(id, parent int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] || (parent != -1 && !d.member[parent]) {
		return
	}
	d.parent[id] = parent
}

// AliveAncestor walks the directory upward from id until it reaches a
// member that is alive and unsuspected (falling back to the authority).
func (d *DynDirectory) AliveAncestor(id int, suspect func(int) bool) int {
	if suspect == nil {
		suspect = func(int) bool { return false }
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] {
		return -1
	}
	p := d.parent[id]
	for hops := 0; p != -1 && hops < len(d.parent); hops++ {
		if d.member[p] && !d.dead[p] && !suspect(p) {
			return p
		}
		p = d.parent[p]
	}
	if d.rootID != id && d.member[d.rootID] && !d.dead[d.rootID] && !suspect(d.rootID) {
		return d.rootID
	}
	return -1
}

// Promote elects id if the designated authority is dead or departed.
func (d *DynDirectory) Promote(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] || (d.member[d.rootID] && !d.dead[d.rootID]) {
		return false
	}
	d.rootID = id
	d.parent[id] = -1
	return true
}

// SetDead records harness-level liveness; non-members are ignored.
func (d *DynDirectory) SetDead(id int, dead bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] {
		return
	}
	d.dead[id] = dead
}

// Revive marks id alive and reports whether it still holds the authority
// role, atomically against Promote.
func (d *DynDirectory) Revive(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] {
		return false
	}
	d.dead[id] = false
	return d.rootID == id
}

// Join inserts id under the alive member with the fewest children —
// preferring members with spare degree, ties broken by lowest id — so the
// same join sequence always yields the same tree.
func (d *DynDirectory) Join(id int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 {
		return -1, fmt.Errorf("live: cannot join negative id %d", id)
	}
	if d.member[id] {
		return -1, fmt.Errorf("live: node %d is already a member", id)
	}
	degree := make(map[int]int, len(d.parent))
	for c, p := range d.parent {
		if d.member[c] && p >= 0 {
			degree[p]++
		}
	}
	// Prefer members with spare degree over saturated ones, then fewest
	// children; the ascending scan breaks ties by lowest id.
	better := func(deg, bestDeg int) bool {
		if (deg < d.maxDegree) != (bestDeg < d.maxDegree) {
			return deg < d.maxDegree
		}
		return deg < bestDeg
	}
	best, bestDeg := -1, 0
	for _, cand := range d.sortedMembersLocked() {
		if d.dead[cand] {
			continue
		}
		if best == -1 || better(degree[cand], bestDeg) {
			best, bestDeg = cand, degree[cand]
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("live: no alive member to adopt node %d", id)
	}
	d.member[id] = true
	d.dead[id] = false
	d.parent[id] = best
	d.epoch++
	return best, nil
}

// Leave removes id, re-homing its children under its parent. A departed
// root counts as dead, so a child's Promote succeeds.
func (d *DynDirectory) Leave(id int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.member[id] {
		return fmt.Errorf("live: node %d is not a member", id)
	}
	p := d.parent[id]
	for c, cp := range d.parent {
		if cp == id && d.member[c] {
			d.parent[c] = p
		}
	}
	delete(d.member, id)
	d.dead[id] = true
	d.epoch++
	return nil
}

// Children returns the current children of id, ascending.
func (d *DynDirectory) Children(id int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for c, p := range d.parent {
		if p == id && d.member[c] {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// Members returns the current member ids, ascending. Dead-but-member
// nodes (crashed, not departed) are included: they still occupy their
// place in the tree.
func (d *DynDirectory) Members() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sortedMembersLocked()
}

func (d *DynDirectory) sortedMembersLocked() []int {
	out := make([]int, 0, len(d.member))
	for id, ok := range d.member {
		if ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Epoch returns the membership epoch.
func (d *DynDirectory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}
