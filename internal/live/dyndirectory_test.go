package live

import (
	"testing"

	"dup/internal/topology"
)

func TestDynDirectoryJoinPrefersSpareDegree(t *testing.T) {
	//   0
	//  / \
	// 1   2
	d := NewDynDirectory(topology.FromParents([]int{-1, 0, 0}), 2)
	p, err := d.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("first joiner attached under %d, want 1 (lowest id with spare degree)", p)
	}
	p, err = d.Join(4)
	if err != nil {
		t.Fatal(err)
	}
	if p != 2 {
		t.Fatalf("second joiner attached under %d, want 2 (fewest children)", p)
	}
	if _, err := d.Join(4); err == nil {
		t.Fatal("joining an existing member succeeded")
	}
	if _, err := d.Join(-1); err == nil {
		t.Fatal("joining a negative id succeeded")
	}
}

func TestDynDirectoryJoinAvoidsDeadMembers(t *testing.T) {
	d := NewDynDirectory(topology.FromParents([]int{-1, 0, 0}), 8)
	d.SetDead(0, true)
	p, err := d.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("joiner was attached under a dead member")
	}
}

func TestDynDirectoryLeaveRehomesChildren(t *testing.T) {
	// 0 - 1 - 2 chain: when 1 leaves, 2 must re-home under 0.
	d := NewDynDirectory(topology.FromParents([]int{-1, 0, 1}), 2)
	if err := d.Leave(1); err != nil {
		t.Fatal(err)
	}
	if p := d.Parent(2); p != 0 {
		t.Fatalf("orphaned child re-homed under %d, want 0", p)
	}
	if p := d.Parent(1); p != -1 {
		t.Fatalf("departed node still has parent %d", p)
	}
	if got := d.Members(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members after leave = %v, want [0 2]", got)
	}
	if err := d.Leave(1); err == nil {
		t.Fatal("leaving twice succeeded")
	}
}

func TestDynDirectoryEpochMovesOnlyOnMembership(t *testing.T) {
	d := NewDynDirectory(topology.FromParents([]int{-1, 0, 1}), 2)
	e0 := d.Epoch()
	d.SetParent(2, 0)
	d.SetDead(2, true)
	d.SetDead(2, false)
	if d.Epoch() != e0 {
		t.Fatal("epoch moved without a membership change")
	}
	if _, err := d.Join(3); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != e0+1 {
		t.Fatalf("epoch after join = %d, want %d", d.Epoch(), e0+1)
	}
	if err := d.Leave(3); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != e0+2 {
		t.Fatalf("epoch after leave = %d, want %d", d.Epoch(), e0+2)
	}
}

func TestDynDirectoryPromoteAfterRootLeaves(t *testing.T) {
	d := NewDynDirectory(topology.FromParents([]int{-1, 0, 0}), 2)
	if d.Promote(1) {
		t.Fatal("promoted over a live authority")
	}
	if err := d.Leave(0); err != nil {
		t.Fatal(err)
	}
	if !d.Promote(1) {
		t.Fatal("could not promote after the authority departed")
	}
	if got := d.RootID(); got != 1 {
		t.Fatalf("authority is %d after promotion, want 1", got)
	}
	if p := d.Parent(1); p != -1 {
		t.Fatalf("new authority still has parent %d", p)
	}
}
