package live

import (
	"testing"
	"time"

	"dup/internal/overlay/chord"
	"dup/internal/rng"
)

// query retries until the deadline, mirroring how a real client handles
// timeouts while repairs are in flight.
func query(t *testing.T, nw *Network, at int, deadline time.Duration) QueryResult {
	t.Helper()
	end := time.Now().Add(deadline)
	var last error
	for time.Now().Before(end) {
		r, err := nw.Query(at, 250*time.Millisecond)
		if err == nil {
			return r
		}
		last = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("query at node %d never resolved: %v", at, last)
	return QueryResult{}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.MaxDegree = 0 },
		func(c *Config) { c.Lead = c.TTL },
		func(c *Config) { c.Threshold = -1 },
		func(c *Config) { c.HopDelay = -time.Second },
		func(c *Config) { c.DeadAfter = c.KeepAliveEvery },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Start(c); err == nil {
			t.Errorf("Start accepted mutation %d", i)
		}
	}
}

func TestQueriesResolveEverywhere(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 32
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for id := 0; id < nw.Nodes(); id++ {
		r := query(t, nw, id, 2*time.Second)
		if r.Hops < 0 {
			t.Fatalf("node %d: negative hops", id)
		}
		if id == 0 && !r.Local {
			t.Fatal("authority node query was not local")
		}
	}
	s := nw.Stats()
	if s.Queries != int64(nw.Nodes()) {
		t.Fatalf("stats queries = %d, want %d", s.Queries, nw.Nodes())
	}
}

func TestHotNodeGetsSubscribedAndPushed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 48
	cfg.Seed = 3
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	hot := nw.Nodes() - 1 // a deep node
	// Hammer it past the threshold, then let two refresh cycles pass.
	for i := 0; i < cfg.Threshold+3; i++ {
		query(t, nw, hot, time.Second)
	}
	time.Sleep(2 * cfg.TTL)
	if nw.Stats().Subscribes == 0 {
		t.Fatal("hot node never subscribed")
	}
	if nw.Stats().Pushes == 0 {
		t.Fatal("no pushes flowed despite a subscription")
	}
	// A query right after the refresh cycle must be served locally from
	// the pushed copy. Query twice to absorb scheduling jitter.
	r := query(t, nw, hot, time.Second)
	r2 := query(t, nw, hot, time.Second)
	if !r.Local && !r2.Local {
		t.Fatalf("hot node still missing after pushes: hops %d then %d", r.Hops, r2.Hops)
	}
}

func TestInteriorNodeFailureHeals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 48
	cfg.Seed = 5
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	// Find an interior node: the parent of the last node.
	victim := nw.directoryParent(nw.Nodes() - 1)
	if victim <= 0 {
		t.Skip("last node attaches directly to the root in this topology")
	}
	nw.Fail(victim)
	// Children detect the death and re-home; queries from the subtree must
	// resolve again within a few detection periods.
	time.Sleep(cfg.DeadAfter + 4*cfg.KeepAliveEvery)
	r := query(t, nw, nw.Nodes()-1, 3*time.Second)
	if r.Version < 0 {
		t.Fatal("impossible version")
	}
	nw.Recover(victim)
	time.Sleep(2 * cfg.KeepAliveEvery)
	query(t, nw, victim, 2*time.Second)
}

func TestRootFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 32
	cfg.Seed = 7
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	oldRoot := nw.RootID()
	if oldRoot != 0 {
		t.Fatalf("initial root = %d, want 0", oldRoot)
	}
	nw.Fail(0)
	// A child of the root must take over (case 5) after detection.
	deadline := time.Now().Add(3 * time.Second)
	for nw.RootID() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no node took over as authority")
		}
		time.Sleep(10 * time.Millisecond)
	}
	newRoot := nw.RootID()
	// Queries anywhere must resolve against the new authority.
	r := query(t, nw, nw.Nodes()-1, 4*time.Second)
	_ = r
	// The old root recovers as a regular node.
	nw.Recover(0)
	time.Sleep(2 * cfg.KeepAliveEvery)
	if nw.RootID() != newRoot {
		t.Fatalf("root changed again after old root recovered: %d", nw.RootID())
	}
	query(t, nw, 0, 2*time.Second)
}

func TestRootRecoversWhenNotYetReplaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 16
	cfg.DeadAfter = time.Second // detection slower than our recovery
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	nw.Fail(0)
	time.Sleep(50 * time.Millisecond)
	nw.Recover(0) // nobody promoted yet: must resume as authority
	if nw.RootID() != 0 {
		t.Fatalf("root id changed to %d", nw.RootID())
	}
	r := query(t, nw, 0, 2*time.Second)
	if !r.Local {
		t.Fatal("recovered authority did not serve locally")
	}
}

func TestStopIsIdempotentAndClean(t *testing.T) {
	nw, err := Start(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	query(t, nw, 5, time.Second)
	nw.Stop()
	nw.Stop() // second stop must not panic
	if _, err := nw.Query(5, 100*time.Millisecond); err == nil {
		t.Skip("query raced shutdown and still resolved; acceptable")
	}
}

func TestQueryValidation(t *testing.T) {
	nw, err := Start(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if _, err := nw.Query(-1, time.Second); err == nil {
		t.Fatal("negative node id accepted")
	}
	if _, err := nw.Query(10000, time.Second); err == nil {
		t.Fatal("out-of-range node id accepted")
	}
	nw.Fail(3)
	if _, err := nw.Query(3, 100*time.Millisecond); err == nil {
		t.Fatal("query at dead node accepted")
	}
}

func TestPresetChordTopology(t *testing.T) {
	ring := chord.Bootstrap(48, rng.New(21), 4)
	tree, _, err := ring.ExtractTree("live-key")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tree = tree
	cfg.Nodes = 0 // ignored with a preset tree
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if nw.Nodes() != tree.N() {
		t.Fatalf("network size %d, tree %d", nw.Nodes(), tree.N())
	}
	for _, id := range []int{0, tree.N() / 2, tree.N() - 1} {
		query(t, nw, id, 2*time.Second)
	}
	if nw.MeanLatency() < 0 {
		t.Fatal("negative mean latency")
	}
}
