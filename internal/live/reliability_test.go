package live

import (
	"testing"
	"time"

	"dup/internal/faults"
	"dup/internal/proto"
	"dup/internal/topology"
	"dup/internal/transport"
)

// bootFaulty starts a single-process network whose in-process fabric sits
// behind a fault wrapper, returning both.
func bootFaulty(t *testing.T, cfg Config, fcfg faults.Config) (*Network, *faults.Transport) {
	t.Helper()
	fcfg.CloseInner = true
	tree := cfg.BuildTree()
	f := faults.Wrap(transport.NewChan(transport.ChanConfig{HopDelay: cfg.HopDelay, Seed: cfg.Seed}), fcfg)
	hosts := make([]int, tree.N())
	for i := range hosts {
		hosts[i] = i
	}
	nw, err := StartWith(cfg, Options{Transport: f, Directory: NewMemDirectory(tree), Hosts: hosts})
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	t.Cleanup(nw.Stop)
	return nw, f
}

// TestLostPushIsRetransmitted drops an authority push on the floor and
// asserts the delivery guarantee: the push is retransmitted after the ack
// goes missing and the subscriber converges to the new version while its
// old cached copy is still valid — i.e. without waiting for TTL expiry.
func TestLostPushIsRetransmitted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0})
	cfg.TTL = 300 * time.Millisecond
	cfg.Lead = 100 * time.Millisecond
	cfg.Threshold = 1
	cfg.HopDelay = 100 * time.Microsecond
	cfg.KeepAliveEvery = 15 * time.Millisecond
	cfg.DeadAfter = 250 * time.Millisecond
	nw, f := bootFaulty(t, cfg, faults.Config{Seed: 1})

	// Make node 1 hot so it subscribes and starts receiving pushes.
	query(t, nw, 1, 2*time.Second)
	query(t, nw, 1, 2*time.Second)
	waitUntil(t, 4*cfg.TTL, "node 1 to hold a pushed copy", func() bool {
		in, err := nw.Inspect(1, time.Second)
		return err == nil && in.HaveCopy && nw.Stats().Pushes > 0
	})

	// Cut only pushes to node 1 (acks and keep-alives still flow) and wait
	// for the next refresh push to be dropped.
	drops0 := nw.Stats().DropsByKind[proto.KindPush]
	f.BlockKind(1, proto.KindPush)
	waitUntil(t, 4*cfg.TTL, "a push to be dropped", func() bool {
		return nw.Stats().DropsByKind[proto.KindPush] > drops0
	})
	in0, err := nw.Inspect(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f.UnblockKind(1, proto.KindPush)

	// The retransmission must land while node 1's current copy is still
	// valid: convergence comes from the reliability layer, not from the
	// cache expiring and a query refetching.
	waitUntil(t, 4*cfg.TTL, "node 1 to converge past the dropped push", func() bool {
		in, err := nw.Inspect(1, time.Second)
		return err == nil && in.Version > in0.Version
	})
	if now := time.Now(); !now.Before(in0.Expiry) {
		t.Fatalf("converged only after the old copy expired (%v past expiry)", now.Sub(in0.Expiry))
	}
	s := nw.Stats()
	if s.Retransmits == 0 || s.RetransmitsByKind[proto.KindPush] == 0 {
		t.Fatalf("no push retransmissions recorded: %+v", s)
	}
	if s.Acks == 0 || s.AcksByKind[proto.KindPush] == 0 {
		t.Fatalf("no push acks recorded: %+v", s)
	}
	if s.RetransmitGiveUps != 0 {
		t.Fatalf("reliability layer gave up %d times on a healed link", s.RetransmitGiveUps)
	}
}

// TestDuplicateDeliveriesAreSuppressed doubles every message at the
// transport and asserts the receivers absorb the copies: protocol
// behaviour stays correct and the duplicates are counted, not re-applied.
func TestDuplicateDeliveriesAreSuppressed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0, 0})
	cfg.TTL = 300 * time.Millisecond
	cfg.Lead = 60 * time.Millisecond
	cfg.Threshold = 1
	cfg.HopDelay = 100 * time.Microsecond
	cfg.KeepAliveEvery = 15 * time.Millisecond
	cfg.DeadAfter = 100 * time.Millisecond
	nw, _ := bootFaulty(t, cfg, faults.Config{Seed: 2, Duplicate: 1})

	query(t, nw, 1, 2*time.Second)
	query(t, nw, 1, 2*time.Second)
	waitUntil(t, 6*cfg.TTL, "duplicated pushes to be suppressed", func() bool {
		s := nw.Stats()
		return s.DupSuppressed > 0 && s.DupSuppressedByKind[proto.KindPush] > 0
	})
	// Queries still resolve to a coherent version stream.
	r1 := query(t, nw, 1, 2*time.Second)
	r2 := query(t, nw, 2, 2*time.Second)
	if r1.Version < 0 || r2.Version < 0 {
		t.Fatalf("bogus versions under duplication: %d, %d", r1.Version, r2.Version)
	}
}

// TestAckTimeoutEscalatesToRepair kills a subscriber's endpoint silently
// and asserts the sender's retransmit deadline escalates into the Section
// III-C path: the dead neighbour is unsubscribed without waiting for the
// keep-alive detector alone.
func TestAckTimeoutEscalatesToRepair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0})
	cfg.TTL = 200 * time.Millisecond
	cfg.Lead = 50 * time.Millisecond
	cfg.Threshold = 1
	cfg.HopDelay = 100 * time.Microsecond
	cfg.KeepAliveEvery = 15 * time.Millisecond
	cfg.DeadAfter = 10 * time.Second // keep-alive detection effectively off
	cfg.RetransmitAfter = 20 * time.Millisecond
	cfg.RetransmitDeadline = 150 * time.Millisecond
	nw, f := bootFaulty(t, cfg, faults.Config{Seed: 3})

	query(t, nw, 1, 2*time.Second)
	query(t, nw, 1, 2*time.Second)
	waitUntil(t, 6*cfg.TTL, "node 1 to be subscribed and pushed to", func() bool {
		in, err := nw.Inspect(0, time.Second)
		return err == nil && len(in.PushTargets) > 0 && nw.Stats().Pushes > 0
	})

	// Silently eat everything to node 1: pushes go unacked, and with the
	// keep-alive detector out of the picture only the retransmit deadline
	// can notice. Keep node 1 hot while waiting so the interest policy
	// doesn't unsubscribe it first and mask the escalation.
	f.Block(1)
	waitUntil(t, 8*cfg.TTL, "ack timeout to unsubscribe the dead neighbour", func() bool {
		nw.Query(1, 50*time.Millisecond) // keep interest up; replies may be blocked
		in, err := nw.Inspect(0, time.Second)
		return err == nil && nw.Stats().RetransmitGiveUps > 0 && len(in.Subscribers) == 0
	})
}
