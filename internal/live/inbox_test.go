package live

import (
	"testing"
	"time"

	"dup/internal/proto"
)

// TestBurstHandlerFullInboxDropsAndBalances pins the burst path's
// ownership rule without a transport in the loop: a burst wider than the
// lane inbox parks what fits, releases the overflow here (never handing
// it back to the transport) and counts every refusal as an inbox drop —
// on the dead-node path too. Nothing pooled may leak.
func TestBurstHandlerFullInboxDropsAndBalances(t *testing.T) {
	base := proto.InUse()
	cfg := DefaultConfig()
	cfg.InboxDepth = 4
	nw := &Network{cfg: cfg, keyStats: map[int]*keyCounters{}}
	n := newNode(nw, 1, 0) // lanes never started: the inbox only fills

	burst := make([]*proto.Message, 0, 10)
	for i := 0; i < 10; i++ {
		m := proto.NewMessage()
		m.Kind, m.To, m.Origin, m.Seq = proto.KindPush, 1, 0, int64(i)
		burst = append(burst, m)
	}
	n.burstHandler()(burst)
	if got := nw.stats.inboxDrops.Load(); got != 6 {
		t.Fatalf("10 messages into a depth-4 inbox: %d inbox drops, want 6", got)
	}
	if got := proto.InUse(); got != base+4 {
		t.Fatalf("%d messages in use, want the 4 parked in the inbox (base %d, got %d)",
			got-base, base, got)
	}

	// The per-message handler counts refusals into the same signal.
	m := proto.NewMessage()
	m.Kind, m.To = proto.KindPush, 1
	if n.handler()(m) {
		t.Fatal("handler accepted into a full inbox")
	}
	proto.Release(m) // a refusal leaves ownership with the caller
	if got := nw.stats.inboxDrops.Load(); got != 7 {
		t.Fatalf("inbox drops = %d after a per-message refusal, want 7", got)
	}

	// A dead node refuses the whole burst.
	n.dead.Store(true)
	burst = burst[:0]
	for i := 0; i < 3; i++ {
		m := proto.NewMessage()
		m.Kind, m.To = proto.KindPush, 1
		burst = append(burst, m)
	}
	n.burstHandler()(burst)
	if got := nw.stats.inboxDrops.Load(); got != 10 {
		t.Fatalf("inbox drops = %d after a dead-node burst, want 10", got)
	}

	n.drain() // release the parked messages, as Stop would
	if got := proto.InUse(); got != base {
		t.Fatalf("pooled messages leaked: %d in use, want %d", got, base)
	}
}

// TestInboxBurstCountersPopulate boots a small cluster and checks the
// drain-batch observability plumbing: every lane wakeup observes a batch
// of at least one, so the max/mean pair must come out positive once any
// traffic (here, keep-alives) has flowed.
func TestInboxBurstCountersPopulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		s := nw.Stats()
		if s.InboxBurstMax >= 1 && s.InboxBurstMean >= 1 {
			if int64(s.InboxBurstMean+0.5) > s.InboxBurstMax {
				t.Fatalf("burst mean %.2f exceeds max %d", s.InboxBurstMean, s.InboxBurstMax)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst counters never populated: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
