package live

import (
	"testing"
	"time"

	"dup/internal/faults"
	"dup/internal/proto"
	"dup/internal/topology"
)

// TestStaleRootPathExpiresAndRehomes is the soft-state tree's core
// guarantee, isolated from the keep-alive detector: on a 0 <- 1 <- 2
// chain, only root-announce frames to node 1 are dropped. Node 1 stays
// fully alive — it acks every keep-alive and every reliable send — but it
// stops relaying the root sequence, so node 2's observed sequence stalls.
// Node 2 must expire its root path and re-home under the best-scored
// ancestor (the root itself) within a few beacon periods, with zero
// retransmit give-ups and without node 1 ever being declared dead.
func TestStaleRootPathExpiresAndRehomes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0, 1})
	cfg.TTL = 400 * time.Millisecond
	cfg.Lead = 100 * time.Millisecond
	cfg.Threshold = 1
	cfg.HopDelay = 100 * time.Microsecond
	cfg.KeepAliveEvery = 15 * time.Millisecond
	cfg.DeadAfter = 200 * time.Millisecond
	cfg.RootAnnounceEvery = 25 * time.Millisecond
	cfg.RootExpireAfter = 250 * time.Millisecond
	nw, f := bootFaulty(t, cfg, faults.Config{Seed: 1})

	// Wait for the beacon to reach the end of the chain.
	waitUntil(t, 4*cfg.TTL, "the root sequence to reach node 2", func() bool {
		in, err := nw.Inspect(2, time.Second)
		return err == nil && in.RootSeq > 0
	})

	// Stall the sequence at node 1: beacons to it vanish, everything else
	// (keep-alives, acks, pushes) still flows, so the keep-alive detector
	// never has cause to fire.
	blocked := time.Now()
	f.BlockKind(1, proto.KindRootAnnounce)

	waitUntil(t, 4*cfg.TTL, "node 2 to re-home under the root", func() bool {
		in, err := nw.Inspect(2, time.Second)
		return err == nil && in.Parent == 0
	})
	if elapsed, bound := time.Since(blocked), cfg.RootExpireAfter+20*cfg.RootAnnounceEvery; elapsed > bound {
		t.Fatalf("re-home took %v, want <= %v (expiry plus beacon slack)", elapsed, bound)
	}

	s := nw.Stats()
	if s.RootExpiries == 0 {
		t.Fatal("node 2 changed parent without recording a root-path expiry")
	}
	if s.RetransmitGiveUps != 0 {
		t.Fatalf("expiry repair must not cost delivery: %d retransmit give-ups", s.RetransmitGiveUps)
	}
	in1, err := nw.Inspect(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in1.Dead {
		t.Fatal("node 1 was declared dead; repair must come from sequence expiry, not keep-alive miss")
	}
	if in1.Parent != 0 {
		t.Fatalf("node 1 has no better ancestor than the root and must keep it, got parent %d", in1.Parent)
	}

	// Re-homed, node 2 hears the root first-hand: its sequence resumes
	// advancing even though frames to node 1 stay blocked.
	in2, err := nw.Inspect(2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 4*cfg.TTL, "node 2's root sequence to resume", func() bool {
		in, err := nw.Inspect(2, time.Second)
		return err == nil && in.RootSeq > in2.RootSeq
	})
}

// TestAnnounceDisabledStaysInert pins the equivalence knob: with
// RootAnnounceEvery zero the soft-state machinery must be completely
// dormant — no beacons sent, no expiries, no observed sequence — while
// queries still resolve.
func TestAnnounceDisabledStaysInert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.RootAnnounceEvery = 0
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	for id := 1; id < cfg.Nodes; id++ {
		query(t, nw, id, 2*time.Second)
	}
	// Long enough for several default beacon periods, had one been armed.
	time.Sleep(300 * time.Millisecond)

	s := nw.Stats()
	if s.RootAnnounces != 0 || s.RootExpiries != 0 {
		t.Fatalf("announce disabled but counters moved: announces=%d expiries=%d",
			s.RootAnnounces, s.RootExpiries)
	}
	for id := 0; id < cfg.Nodes; id++ {
		in, err := nw.Inspect(id, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if in.RootSeq != 0 || in.RootSeqAge != 0 {
			t.Fatalf("node %d reports soft-state fields with announces off: seq=%d age=%v",
				id, in.RootSeq, in.RootSeqAge)
		}
	}
}

// TestConfigValidateSoftState covers the beacon timing cross-checks and
// the adaptive default expiry.
func TestConfigValidateSoftState(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RootAnnounceEvery = -time.Second },
		func(c *Config) { c.RootExpireAfter = -time.Second },
		// Expiry without a beacon can never be satisfied.
		func(c *Config) { c.RootAnnounceEvery = 0; c.RootExpireAfter = 300 * time.Millisecond },
		// Beacon slower than the data it protects.
		func(c *Config) { c.RootAnnounceEvery = c.TTL },
		// Expiry within one beacon period flaps on every tick.
		func(c *Config) { c.RootExpireAfter = c.RootAnnounceEvery },
		// Expiry at or below DeadAfter would race the keep-alive detector.
		func(c *Config) { c.RootExpireAfter = c.DeadAfter },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("soft-state mutation %d accepted", i)
		}
	}

	// The zero-value expiry adapts: nominally 4 beacon periods, stretched
	// to 2 x DeadAfter whenever a config slows the keep-alive detector
	// past it, so the detector keeps first claim on dead parents.
	c := DefaultConfig()
	if want := 4 * c.RootAnnounceEvery; c.rootExpireAfter() != want {
		t.Fatalf("default expiry = %v, want %v", c.rootExpireAfter(), want)
	}
	c.KeepAliveEvery = 2 * time.Second
	c.DeadAfter = 10 * time.Second
	if err := c.Validate(); err != nil {
		t.Fatalf("stretched DeadAfter must stay valid with the default expiry: %v", err)
	}
	if want := 2 * c.DeadAfter; c.rootExpireAfter() != want {
		t.Fatalf("stretched expiry = %v, want %v", c.rootExpireAfter(), want)
	}
	// An explicit expiry is taken at its word and validated strictly.
	c.RootExpireAfter = 5 * time.Second
	if err := c.Validate(); err == nil {
		t.Fatal("explicit RootExpireAfter below DeadAfter accepted")
	}
}
