package live

import (
	"sync"

	"dup/internal/topology"
)

// Directory is the underlying DHT's routing state stand-in: who a node's
// current upstream is, who the designated authority is, and the repair
// primitives the paper delegates to the overlay. The live network asks it
// where to re-home after a failure and who wins an authority fail-over.
//
// Two implementations exist. MemDirectory is a shared in-memory oracle for
// clusters living in one process (every Network in the cluster points at
// the same instance); it additionally knows which nodes the test harness
// has killed, like a DHT whose routing tables have already repaired.
// StaticDirectory is for multi-process deployments (cmd/dupd): it knows
// only the static tree, so repairs rely purely on each node's own
// keep-alive suspicions.
type Directory interface {
	// RootID returns the currently designated authority node.
	RootID() int
	// Parent returns the current upstream of id (-1 for the root).
	Parent(id int) int
	// SetParent records a repair: id re-homed under parent.
	SetParent(id, parent int)
	// AliveAncestor walks upstream from id and returns the nearest
	// ancestor that is believed alive and not suspected by the caller
	// (suspect may be nil), falling back to the designated authority and
	// finally to -1 when nothing is left.
	AliveAncestor(id int, suspect func(int) bool) int
	// Promote elects id as the new authority if the designated one is
	// believed dead; the first caller wins. It reports whether id now
	// holds the role.
	Promote(id int) bool
	// SetDead records the harness-level liveness of id (MemDirectory
	// only; StaticDirectory ignores it).
	SetDead(id int, dead bool)
	// Revive marks id alive again and reports whether it is still the
	// designated authority, atomically with respect to Promote — so a
	// recovering old root and a promoting substitute cannot both win.
	Revive(id int) (isRoot bool)
}

// MemDirectory is the in-process Directory: one shared instance per
// cluster, serialising repairs exactly like the old live.Network mutex
// did.
type MemDirectory struct {
	mu     sync.Mutex
	parent []int
	dead   []bool
	rootID int
}

// NewMemDirectory returns a directory seeded from the index search tree.
func NewMemDirectory(tree *topology.Tree) *MemDirectory {
	n := tree.N()
	d := &MemDirectory{parent: make([]int, n), dead: make([]bool, n)}
	for i := 0; i < n; i++ {
		d.parent[i] = tree.Parent(i)
	}
	return d
}

// RootID returns the designated authority node.
func (d *MemDirectory) RootID() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rootID
}

// Parent returns the current routing parent of id, or -1 for an id the
// directory does not know.
func (d *MemDirectory) Parent(id int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.parent) {
		return -1
	}
	return d.parent[id]
}

// SetParent records a repair. Unknown ids and unknown parents (other
// than -1, the root marker) are ignored rather than corrupting state.
func (d *MemDirectory) SetParent(id, parent int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.parent) || parent < -1 || parent >= len(d.parent) {
		return
	}
	d.parent[id] = parent
}

// AliveAncestor walks the directory upward from id until it reaches a
// node that is alive and unsuspected (falling back to the authority).
func (d *MemDirectory) AliveAncestor(id int, suspect func(int) bool) int {
	if suspect == nil {
		suspect = func(int) bool { return false }
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.parent) {
		return -1
	}
	p := d.parent[id]
	for hops := 0; p != -1 && hops < len(d.parent); hops++ {
		if !d.dead[p] && !suspect(p) {
			return p
		}
		p = d.parent[p]
	}
	if d.rootID != id && !d.dead[d.rootID] && !suspect(d.rootID) {
		return d.rootID
	}
	return -1
}

// Promote elects id if the designated authority is dead.
func (d *MemDirectory) Promote(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.parent) || !d.dead[d.rootID] {
		return false
	}
	d.rootID = id
	d.parent[id] = -1
	return true
}

// SetDead records harness-level liveness; unknown ids are ignored.
func (d *MemDirectory) SetDead(id int, dead bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.dead) {
		return
	}
	d.dead[id] = dead
}

// Revive marks id alive and reports whether it still holds the authority
// role, atomically against Promote.
func (d *MemDirectory) Revive(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.dead) {
		return false
	}
	d.dead[id] = false
	return d.rootID == id
}

// StaticDirectory is the Directory for multi-process clusters: every
// process derives the identical static tree from shared configuration, and
// repairs rely on each node's own keep-alive suspicions because no global
// liveness oracle exists. Promote trusts the caller's evidence (its whole
// ancestor chain missed keep-alives), which in a partitioned network can
// elect an authority per partition — the usual price of failure detection
// without consensus; partitions re-converge on version numbers when they
// heal.
type StaticDirectory struct {
	mu     sync.Mutex
	parent []int
	rootID int
	closed bool
}

// NewStaticDirectory returns a directory seeded from the static tree.
func NewStaticDirectory(tree *topology.Tree) *StaticDirectory {
	n := tree.N()
	d := &StaticDirectory{parent: make([]int, n)}
	for i := 0; i < n; i++ {
		d.parent[i] = tree.Parent(i)
	}
	return d
}

// RootID returns this process's view of the authority node.
func (d *StaticDirectory) RootID() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rootID
}

// Parent returns the current routing parent of id, or -1 for an id the
// directory does not know (or after Close).
func (d *StaticDirectory) Parent(id int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || id < 0 || id >= len(d.parent) {
		return -1
	}
	return d.parent[id]
}

// SetParent records a repair. Unknown ids and unknown parents (other
// than -1, the root marker) are ignored, as is any write after Close.
func (d *StaticDirectory) SetParent(id, parent int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || id < 0 || id >= len(d.parent) || parent < -1 || parent >= len(d.parent) {
		return
	}
	d.parent[id] = parent
}

// AliveAncestor walks upward skipping the caller's suspects; without a
// liveness oracle, unsuspected nodes count as alive.
func (d *StaticDirectory) AliveAncestor(id int, suspect func(int) bool) int {
	if suspect == nil {
		suspect = func(int) bool { return false }
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || id < 0 || id >= len(d.parent) {
		return -1
	}
	p := d.parent[id]
	for hops := 0; p != -1 && hops < len(d.parent); hops++ {
		if !suspect(p) {
			return p
		}
		p = d.parent[p]
	}
	if d.rootID != id && !suspect(d.rootID) {
		return d.rootID
	}
	return -1
}

// Promote trusts the caller's keep-alive evidence.
func (d *StaticDirectory) Promote(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || id < 0 || id >= len(d.parent) {
		return false
	}
	d.rootID = id
	d.parent[id] = -1
	return true
}

// SetDead is a no-op: there is no global liveness oracle.
func (d *StaticDirectory) SetDead(id int, dead bool) {}

// Revive reports whether id still holds the authority role in this
// process's view.
func (d *StaticDirectory) Revive(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.closed && d.rootID == id
}

// Close releases the directory: further lookups behave as if the tree
// were empty (Parent/AliveAncestor return -1, writes are ignored). A
// dupd process calls this after its Network stops, so a stray late
// lookup cannot resurrect routing state.
func (d *StaticDirectory) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}
