package live

import (
	"sync/atomic"
	"time"

	"dup/internal/core"
	"dup/internal/rng"
)

// mKind enumerates live-network message kinds.
type mKind uint8

const (
	mQuery        mKind = iota // external query injection
	mRequest                   // forwarded query
	mReply                     // index travelling back along the path
	mPush                      // fresh index version across the DUP tree
	mSubscribe                 // Figure 3 (B)
	mUnsubscribe               // Figure 3 (E)
	mSubstitute                // Figure 3 (C)
	mKeepAlive                 // child -> parent liveness
	mKeepAliveAck              // parent -> child
	mReset                     // recovery: blank state, adopt new parent
	mBecomeRoot                // case 5: take over as authority
)

// message is one live-network datagram.
type message struct {
	kind     mKind
	from     int
	subject  int // subscribe/unsubscribe subject
	old, new int // substitute
	version  int64
	expiry   time.Time
	hops     int
	path     []int
	res      chan QueryResult
}

// node is one live peer. All fields below the channel block are owned by
// the node's goroutine.
type node struct {
	nw    *Network
	id    int
	inbox chan message
	quit  chan struct{}

	dead   atomic.Bool
	isRoot atomic.Bool

	parent   int
	st       *core.State
	delaySrc *rng.Source

	// Cached index copy.
	haveCopy   bool
	cacheVer   int64
	cacheExp   time.Time
	lastPushed int64

	// Authority state (root only).
	version int64
	expiry  time.Time

	// Access tracking (interest policy).
	count         int
	intervalStart time.Time

	// Liveness.
	lastAck   time.Time
	childSeen map[int]time.Time
}

func newNode(nw *Network, id, parent int, delaySrc *rng.Source) *node {
	n := &node{
		nw:         nw,
		id:         id,
		inbox:      make(chan message, 256),
		quit:       make(chan struct{}),
		parent:     parent,
		st:         core.NewState(id, parent == -1),
		delaySrc:   delaySrc,
		lastPushed: -1,
		childSeen:  map[int]time.Time{},
	}
	if parent == -1 {
		n.isRoot.Store(true)
	}
	return n
}

// post delivers m to the node unless it is dead or its inbox is full (a
// dead-node stand-in for packet loss under overload). Recovery resets are
// the only messages that reach a dead node.
func (n *node) post(m message) bool {
	if n.dead.Load() && m.kind != mReset {
		return false
	}
	select {
	case n.inbox <- m:
		return true
	default:
		return false
	}
}

// send routes a message to another node with link latency.
func (n *node) send(to int, m message) {
	m.from = n.id
	n.nw.send(to, m, n.delaySrc)
}

// run is the node's goroutine body.
func (n *node) run() {
	defer n.nw.wg.Done()
	now := time.Now()
	n.intervalStart = now
	n.lastAck = now
	if n.isRoot.Load() {
		n.version = 0
		n.expiry = now.Add(n.nw.cfg.TTL)
	}
	tick := time.NewTicker(n.nw.cfg.KeepAliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			return
		case m := <-n.inbox:
			if !n.dead.Load() || m.kind == mReset {
				n.handle(m)
			}
		case <-tick.C:
			if !n.dead.Load() {
				n.tick(time.Now())
			}
		}
	}
}

// tick runs the periodic work: the authority refresh schedule, keep-alives
// with parent-death detection, child-death detection, and the
// interest-loss policy at interval boundaries.
func (n *node) tick(now time.Time) {
	cfg := n.nw.cfg
	if n.isRoot.Load() {
		if now.After(n.expiry.Add(-cfg.Lead)) {
			n.version++
			n.expiry = now.Add(cfg.TTL)
			n.pushOut(n.version, n.expiry)
		}
	} else {
		// Keep-alive to the parent; declare it dead after the timeout.
		n.nw.stats.keepAlive.Add(1)
		n.send(n.parent, message{kind: mKeepAlive})
		if now.Sub(n.lastAck) > cfg.DeadAfter {
			n.parentDied(now)
		}
	}
	// Child-death detection (case 2: the upstream virtual-path neighbour
	// notices and clears the path).
	for child, seen := range n.childSeen {
		if now.Sub(seen) > cfg.DeadAfter {
			delete(n.childSeen, child)
			if n.st.Contains(child) {
				n.emit(n.st.HandleUnsubscribe(child))
			}
		}
	}
	// Interval boundary: interest loss (Figure 3 D).
	if now.Sub(n.intervalStart) >= cfg.TTL {
		if n.st.Interested() && n.count <= cfg.Threshold {
			n.emit(n.st.LoseInterest())
		}
		n.count = 0
		n.intervalStart = now
	}
}

// parentDied repairs after a keep-alive timeout: re-home under the nearest
// alive ancestor (the underlying DHT's routing repair), re-announce any
// virtual path (cases 3/4), or take over as authority when no root is
// left (case 5).
func (n *node) parentDied(now time.Time) {
	n.lastAck = now // do not re-trigger while repairing
	newParent := n.nw.aliveAncestor(n.id)
	if newParent == -1 || newParent == n.id {
		if n.nw.promote(n.id) {
			n.becomeRoot(now)
		}
		return
	}
	n.parent = newParent
	n.nw.setParent(n.id, newParent)
	if n.st.OnVirtualPath() {
		n.nw.stats.subscribes.Add(1)
		n.send(newParent, message{kind: mSubscribe, subject: n.st.Representative()})
	}
}

// becomeRoot is case 5: this node takes over the failed authority's index
// with refreshed information and resumes update propagation.
func (n *node) becomeRoot(now time.Time) {
	n.parent = -1
	n.nw.setParent(n.id, -1)
	n.st.SetRoot(true)
	n.isRoot.Store(true)
	if n.cacheVer > n.version {
		n.version = n.cacheVer
	}
	n.version++
	n.expiry = now.Add(n.nw.cfg.TTL)
	n.pushOut(n.version, n.expiry)
}

// handle processes one message.
func (n *node) handle(m message) {
	switch m.kind {
	case mQuery:
		n.localQuery(m.res)
	case mRequest:
		n.onRequest(m)
	case mReply:
		n.onReply(m)
	case mPush:
		n.onPush(m)
	case mSubscribe:
		n.emit(n.st.HandleSubscribe(m.subject))
	case mUnsubscribe:
		n.emit(n.st.HandleUnsubscribe(m.subject))
	case mSubstitute:
		n.emit(n.st.HandleSubstitute(m.old, m.new))
	case mKeepAlive:
		n.childSeen[m.from] = time.Now()
		n.send(m.from, message{kind: mKeepAliveAck})
	case mKeepAliveAck:
		n.lastAck = time.Now()
	case mReset:
		n.reset(m.from)
	case mBecomeRoot:
		n.becomeRoot(time.Now())
	}
}

// reset blanks the node after recovery and re-homes it under parent.
func (n *node) reset(parent int) {
	n.st.Reset()
	n.st.SetRoot(false)
	n.isRoot.Store(false)
	n.parent = parent
	n.nw.setParent(n.id, parent)
	n.haveCopy = false
	n.lastPushed = -1
	n.count = 0
	n.intervalStart = time.Now()
	n.lastAck = time.Now()
	clear(n.childSeen)
}

// valid reports whether the node can serve the index right now, returning
// the version and expiry it would serve.
func (n *node) valid(now time.Time) (int64, time.Time, bool) {
	if n.isRoot.Load() {
		return n.version, n.expiry, true
	}
	if n.haveCopy && now.Before(n.cacheExp) {
		return n.cacheVer, n.cacheExp, true
	}
	return 0, time.Time{}, false
}

// access counts a query arrival and applies the interest-gain policy
// (Figure 3 A).
func (n *node) access() {
	n.count++
	if n.count > n.nw.cfg.Threshold && !n.st.Interested() && !n.isRoot.Load() {
		n.emit(n.st.BecomeInterested())
	}
}

// localQuery serves or forwards a query generated at this node.
func (n *node) localQuery(res chan QueryResult) {
	n.access()
	n.nw.stats.queries.Add(1)
	now := time.Now()
	if v, _, ok := n.valid(now); ok {
		n.nw.stats.localHits.Add(1)
		res <- QueryResult{Version: v, Hops: 0, Local: true}
		return
	}
	n.send(n.parent, message{
		kind: mRequest, hops: 1, path: []int{n.id}, res: res,
	})
}

// onRequest serves the query if possible, otherwise forwards it upstream.
func (n *node) onRequest(m message) {
	n.access()
	now := time.Now()
	if v, exp, ok := n.valid(now); ok {
		n.nw.stats.queryHops.Add(int64(m.hops))
		m.res <- QueryResult{Version: v, Hops: m.hops}
		last := len(m.path) - 1
		n.send(m.path[last], message{
			kind: mReply, version: v, expiry: exp, path: m.path[:last],
		})
		return
	}
	if n.isRoot.Load() {
		// The authority always serves; only a mid-fail-over vacuum gets
		// here, and the query times out and is retried by the caller.
		return
	}
	m.path = append(m.path, n.id)
	m.hops++
	n.send(n.parent, m)
}

// onReply caches the index and keeps retracing the request path.
func (n *node) onReply(m message) {
	n.store(m.version, m.expiry)
	if len(m.path) == 0 {
		return
	}
	last := len(m.path) - 1
	next := m.path[last]
	m.path = m.path[:last]
	n.send(next, m)
}

// onPush refreshes the cache and forwards across the DUP tree.
func (n *node) onPush(m message) {
	n.nw.stats.pushes.Add(1)
	n.store(m.version, m.expiry)
	if m.version > n.lastPushed {
		n.lastPushed = m.version
		n.pushOut(m.version, m.expiry)
	}
}

// pushOut sends version v directly to every DUP-tree push target.
func (n *node) pushOut(v int64, exp time.Time) {
	for _, target := range n.st.PushTargets() {
		n.send(target, message{kind: mPush, version: v, expiry: exp})
	}
}

// store updates the cached copy, ignoring stale versions.
func (n *node) store(v int64, exp time.Time) {
	if n.haveCopy && v < n.cacheVer {
		return
	}
	n.haveCopy = true
	n.cacheVer = v
	n.cacheExp = exp
}

// emit sends the state machine's upstream actions to the current parent.
func (n *node) emit(acts []core.Action) {
	for _, a := range acts {
		switch a.Kind {
		case core.SendSubscribe:
			n.nw.stats.subscribes.Add(1)
			n.send(n.parent, message{kind: mSubscribe, subject: a.Subject})
		case core.SendUnsubscribe:
			n.send(n.parent, message{kind: mUnsubscribe, subject: a.Subject})
		case core.SendSubstitute:
			n.nw.stats.substitutes.Add(1)
			n.send(n.parent, message{kind: mSubstitute, old: a.Old, new: a.New})
		}
	}
}

// promote elects id as the new authority if the designated one is dead;
// the first caller wins (serialized by the directory mutex).
func (nw *Network) promote(id int) bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if !nw.nodes[nw.rootID].dead.Load() {
		return false
	}
	nw.rootID = id
	nw.parent[id] = -1
	return true
}
