package live

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/core"
	"dup/internal/proto"
	"dup/internal/store"
	"dup/internal/transport"
)

// ctrlKind enumerates local control injections (never on the wire).
type ctrlKind uint8

const (
	cQuery      ctrlKind = iota // external query injection
	cReset                      // recovery: blank state, adopt new parent
	cBecomeRoot                 // case 5: take over as authority
	cInspect                    // state snapshot for Network.Inspect
	cLeave                      // graceful departure: proactive substitute
	cReboot                     // crash-and-restart with durable state
	cJoinKey                    // join one keyed index tree
	cLeaveKey                   // depart one keyed index tree
)

// ctrlMsg is one local control injection from the Network into a node.
type ctrlMsg struct {
	kind     ctrlKind
	parent   int
	key      int
	res      chan QueryResult
	info     chan NodeInfo
	deadline time.Time
	children []int             // cLeave: keep-alive children to notify
	done     chan struct{}     // cLeave: closed once departure is acked
	states   []store.NodeState // cReboot: durable per-key state to resume from
}

// reliableKind reports whether k carries tree, index or membership state
// that must survive message loss: such messages are seq-stamped,
// acknowledged by the receiver, and retransmitted until acked or given up
// on.
func reliableKind(k proto.Kind) bool {
	switch k {
	case proto.KindPush, proto.KindSubscribe, proto.KindUnsubscribe, proto.KindSubstitute,
		proto.KindJoin, proto.KindLeave:
		return true
	}
	return false
}

// relEntry is one reliable message awaiting acknowledgement: enough of
// the payload to rebuild it for a retransmission.
type relEntry struct {
	kind              proto.Kind
	to                int
	subject, old, new int
	key               int
	version           int64
	expiry            float64
	retryAt, deadline time.Time
	backoff           time.Duration
}

// batchRec remembers which reliable member seqs one batch envelope
// carried, so the envelope's single ack can settle all of them. Entries
// expire at the members' retransmit deadline: by then every member has
// either been settled or given up on.
type batchRec struct {
	seqs     []int64
	deadline time.Time
}

// seqWindow dedups inbound (origin, seq) pairs so retransmissions and
// transport-level duplicates are absorbed instead of re-applied. It
// remembers the most recent limit (Config.DedupWindow) sequence numbers;
// eviction is FIFO, which is safe because a sender only ever retransmits
// its few most recent unacknowledged messages.
type seqWindow struct {
	seen  map[int64]struct{}
	fifo  []int64
	next  int
	limit int
}

// observe records seq and reports whether it was already seen.
func (w *seqWindow) observe(seq int64) bool {
	if _, ok := w.seen[seq]; ok {
		return true
	}
	if len(w.fifo) < w.limit {
		w.fifo = append(w.fifo, seq)
	} else {
		delete(w.seen, w.fifo[w.next])
		w.fifo[w.next] = seq
		w.next = (w.next + 1) % w.limit
	}
	w.seen[seq] = struct{}{}
	return false
}

// pendingQuery is a query issued at this node that is waiting for its
// reply to retrace the request path back here.
type pendingQuery struct {
	res     chan QueryResult
	expires time.Time
}

// shard is one keyed index tree's per-node state: the DUP-tree state
// machine plus the cache, authority schedule, interest window and durable
// record for that key. The routing tree (parent, keep-alive fabric,
// retransmit queue, dedup windows) stays node-level — the underlying DHT
// routes every key through the same neighbours — so a shard is exactly
// the per-key state the paper hangs off one index.
type shard struct {
	key int
	st  *core.State

	// Cached index copy.
	haveCopy   bool
	cacheVer   int64
	cacheExp   time.Time
	lastPushed int64

	// Authority state (root only).
	version int64
	expiry  time.Time

	// Access tracking (interest policy).
	count         int
	intervalStart time.Time

	// Per-key stats sink (registry entry shared with Network.StatsKey).
	kc *keyCounters

	// Durable state. lastRec is the last journal record written for this
	// key, so state that did not change does not hit the log again.
	lastRec  store.NodeState
	recValid bool
}

// node is one live peer. All fields below the channel block are owned by
// the node's goroutine. Protocol messages arrive through the transport
// handler into inbox; control injections (query, reset, become-root)
// arrive from the hosting Network through ctrl.
type node struct {
	nw    *Network
	id    int
	inbox chan *proto.Message
	ctrl  chan ctrlMsg
	quit  chan struct{}

	dead   atomic.Bool
	isRoot atomic.Bool

	parent int

	// Per-key data plane: one shard per keyed index tree this node
	// participates in. keys mirrors the map in sorted order so iteration
	// is deterministic.
	shards map[int]*shard
	keys   []int

	// Query correlation: queries born here wait in pending, keyed by the
	// Seq their request carried.
	nextSeq int64
	pending map[int64]pendingQuery

	// Liveness. suspects holds peers this node has watched miss their
	// keep-alive window; the directory skips them when re-homing.
	lastAck   time.Time
	childSeen map[int]time.Time
	suspects  map[int]time.Time

	// Delivery guarantees. Reliable outbound messages wait in unacked
	// (keyed by their seq) until the receiver's ack arrives, re-sent with
	// doubling backoff until the retransmit deadline; seen dedups inbound
	// (origin, seq) pairs so retries are idempotent. relSeq is node-global
	// across keys, so one (origin, seq) window per origin suffices.
	relSeq  int64
	unacked map[int64]*relEntry
	seen    map[int]*seqWindow

	// Send-side coalescer: messages bound for the same neighbour within
	// one node-loop iteration are flushed together — bare when alone,
	// inside one KindBatch envelope when several — so a busy link carries
	// many protocol messages per frame and one ack settles all of them.
	// batches maps an envelope's seq to the reliable member seqs it
	// carried.
	obOrder []int
	obBins  map[int][]*proto.Message
	batches map[int64]*batchRec

	// Membership. announce makes the node introduce itself to its parent
	// (KindJoin) when its goroutine starts — set for joiners and for nodes
	// resuming from recovered state. leaving/leaveDone track a graceful
	// departure waiting for its announcements to be acknowledged.
	announce  bool
	leaving   bool
	leaveDone chan struct{}
	stopOnce  sync.Once
}

// maxEnvelope bounds how many members one flushed envelope carries; it is
// comfortably below wire.MaxBatch so every envelope the coalescer builds
// is decodable.
const maxEnvelope = 1 << 10

func newNode(nw *Network, id, parent int) *node {
	n := &node{
		nw:        nw,
		id:        id,
		inbox:     make(chan *proto.Message, nw.cfg.inboxDepth()),
		ctrl:      make(chan ctrlMsg, 16),
		quit:      make(chan struct{}),
		parent:    parent,
		shards:    map[int]*shard{},
		pending:   map[int64]pendingQuery{},
		childSeen: map[int]time.Time{},
		suspects:  map[int]time.Time{},
		// Seeding relSeq from the clock keeps seqs unique across process
		// restarts, so a rebooted peer's fresh stream is not mistaken for
		// retransmissions of its previous incarnation's.
		relSeq:  time.Now().UnixNano(),
		unacked: map[int64]*relEntry{},
		seen:    map[int]*seqWindow{},
		obBins:  map[int][]*proto.Message{},
		batches: map[int64]*batchRec{},
	}
	if parent == -1 {
		n.isRoot.Store(true)
	}
	n.addShard(0, time.Now())
	return n
}

// shard returns the state for one keyed index tree, creating it on first
// touch: a push or request for a key this node has never seen makes it a
// participant in that key's tree.
func (n *node) shard(key int) *shard {
	if sh, ok := n.shards[key]; ok {
		return sh
	}
	return n.addShard(key, time.Now())
}

func (n *node) addShard(key int, now time.Time) *shard {
	sh := &shard{
		key:           key,
		st:            core.NewState(n.id, n.isRoot.Load()),
		lastPushed:    -1,
		intervalStart: now,
		kc:            n.nw.kc(key),
	}
	if n.isRoot.Load() {
		sh.expiry = now.Add(n.nw.cfg.TTL)
	}
	n.shards[key] = sh
	n.keys = append(n.keys, key)
	sort.Ints(n.keys)
	return sh
}

// dropShard removes one keyed shard (LeaveKey); key 0 never drops.
func (n *node) dropShard(key int) {
	if key == 0 {
		return
	}
	delete(n.shards, key)
	for i, k := range n.keys {
		if k == key {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			break
		}
	}
}

// handler is the node's transport-facing inbox: it takes ownership of
// accepted messages (the node goroutine releases them after handling) and
// refuses delivery — so the transport counts a drop — when the node is
// dead or the inbox is full.
func (n *node) handler() transport.Handler {
	return func(m *proto.Message) bool {
		if n.dead.Load() {
			return false
		}
		select {
		case n.inbox <- m:
			return true
		default:
			return false
		}
	}
}

// postCtrl delivers a control injection unless the node is wedged.
func (n *node) postCtrl(c ctrlMsg) bool {
	select {
	case n.ctrl <- c:
		return true
	default:
		return false
	}
}

// newMsg builds an outbound message; the transport owns it after Send.
func (n *node) newMsg(kind proto.Kind, to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = kind
	m.To = to
	m.Origin = n.id
	return m
}

// send queues m for this loop iteration's flush, first registering
// reliable kinds for acknowledgement tracking so a lost message is
// retransmitted.
func (n *node) send(m *proto.Message) {
	if m.To < 0 || m.To == n.id {
		proto.Release(m)
		return
	}
	if reliableKind(m.Kind) {
		n.track(m)
	}
	n.out(m)
}

// out bins m by target for the end-of-iteration flush, keeping bins in
// first-touch order so flushing is deterministic.
func (n *node) out(m *proto.Message) {
	bin, ok := n.obBins[m.To]
	if !ok || len(bin) == 0 {
		n.obOrder = append(n.obOrder, m.To)
	}
	n.obBins[m.To] = append(bin, m)
}

// flush drains the outbox: a lone message to a target goes out bare
// (byte-identical to the unbatched protocol, and kind-level fault
// injection still sees it); two or more are coalesced into one KindBatch
// envelope — one frame, one syscall, and when any member is reliable one
// envelope ack settles them all. Retransmissions never pass through here:
// tick re-sends them bare so they are individually acknowledged.
func (n *node) flush() {
	for _, to := range n.obOrder {
		bin := n.obBins[to]
		for len(bin) > 0 {
			if len(bin) == 1 {
				n.nw.tr.Send(bin[0])
				bin = bin[1:]
				break
			}
			chunk := bin
			if len(chunk) > maxEnvelope {
				chunk = chunk[:maxEnvelope]
			}
			env := n.newMsg(proto.KindBatch, to)
			env.Batch = append(env.Batch, chunk...)
			var seqs []int64
			for _, m := range chunk {
				if reliableKind(m.Kind) && m.Seq > 0 {
					seqs = append(seqs, m.Seq)
				}
			}
			if len(seqs) > 0 {
				n.relSeq++
				env.Seq = n.relSeq
				n.batches[env.Seq] = &batchRec{
					seqs:     seqs,
					deadline: time.Now().Add(n.nw.cfg.retransmitDeadline()),
				}
			}
			n.nw.tr.Send(env)
			bin = bin[len(chunk):]
		}
		n.obBins[to] = n.obBins[to][:0]
	}
	n.obOrder = n.obOrder[:0]
}

// track assigns m the next reliable sequence number and files a
// retransmit entry. The queue is bounded: at capacity the message still
// goes out once, untracked, counted as a give-up. A newer push to the
// same target and key supersedes any older unacked push to it — the
// receiver only wants the latest version anyway — but inherits the
// superseded entry's deadline: the clock measures how long the peer has
// gone without acking, and must not reset just because fresh versions
// keep coming.
func (n *node) track(m *proto.Message) {
	now := time.Now()
	deadline := now.Add(n.nw.cfg.retransmitDeadline())
	if m.Kind == proto.KindPush {
		for seq, e := range n.unacked {
			if e.kind == proto.KindPush && e.to == m.To && e.key == m.Key {
				if e.deadline.Before(deadline) {
					deadline = e.deadline
				}
				delete(n.unacked, seq)
			}
		}
	}
	if len(n.unacked) >= n.nw.cfg.maxUnacked() {
		n.nw.stats.giveUps.Add(1)
		return
	}
	n.relSeq++
	m.Seq = n.relSeq
	backoff := n.nw.cfg.retransmitAfter()
	n.unacked[n.relSeq] = &relEntry{
		kind:     m.Kind,
		to:       m.To,
		subject:  m.Subject,
		old:      m.Old,
		new:      m.New,
		key:      m.Key,
		version:  m.Version,
		expiry:   m.Expiry,
		retryAt:  now.Add(backoff),
		deadline: deadline,
		backoff:  backoff,
	}
}

// timeToUnix and unixToTime convert between the node's monotonic-friendly
// time.Time state and the float64 unix seconds that cross the wire.
func timeToUnix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

func unixToTime(f float64) time.Time {
	if f == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(f*1e9))
}

// run is the node's goroutine body.
func (n *node) run() {
	defer n.nw.wg.Done()
	now := time.Now()
	n.lastAck = now
	for _, k := range n.keys {
		sh := n.shards[k]
		sh.intervalStart = now
		// A recovered authority enters with its pre-crash version already
		// adopted; only a genuinely fresh root starts the schedule at zero.
		if n.isRoot.Load() && sh.expiry.IsZero() {
			sh.version = 0
			sh.expiry = now.Add(n.nw.cfg.TTL)
		}
	}
	if n.announce {
		n.announce = false
		n.sendJoin()
	}
	n.record()
	n.flush()
	tick := time.NewTicker(n.nw.cfg.KeepAliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			n.drain()
			return
		case m := <-n.inbox:
			if n.dead.Load() {
				proto.Release(m) // raced in just before death
				continue
			}
			n.handle(m)
			n.record()
		case c := <-n.ctrl:
			n.control(c)
			n.record()
		case <-tick.C:
			if !n.dead.Load() {
				n.tick(time.Now())
				n.record()
			}
		}
		n.flush()
	}
}

// stop closes the quit channel exactly once: Leave and Network.Stop can
// race to shut the same node down.
func (n *node) stop() {
	n.stopOnce.Do(func() { close(n.quit) })
}

// tick runs the periodic work: the per-key authority refresh schedule,
// keep-alives with parent-death detection, child-death detection, and the
// interest-loss policy at interval boundaries.
func (n *node) tick(now time.Time) {
	cfg := n.nw.cfg
	if n.isRoot.Load() {
		for _, k := range n.keys {
			sh := n.shards[k]
			if now.After(sh.expiry.Add(-cfg.Lead)) {
				sh.version++
				sh.expiry = now.Add(cfg.TTL)
				n.pushOut(sh, sh.version, sh.expiry)
			}
		}
	} else {
		// Keep-alive to the parent, suppressed while acks are flowing: any
		// ack from the parent is liveness proof as good as a keep-alive
		// ack, so a busy link carries no keep-alive frames at all. Declare
		// the parent dead after the timeout as before.
		if n.parent >= 0 && now.Sub(n.lastAck) >= cfg.KeepAliveEvery {
			n.nw.stats.keepAlive.Add(1)
			n.send(n.newMsg(proto.KindKeepAlive, n.parent))
		}
		if now.Sub(n.lastAck) > cfg.DeadAfter {
			n.parentDied(now)
		}
	}
	// Child-death detection (case 2: the upstream virtual-path neighbour
	// notices and clears the path) — across every keyed tree.
	for child, seen := range n.childSeen {
		if now.Sub(seen) > cfg.DeadAfter {
			delete(n.childSeen, child)
			n.unsubscribeEverywhere(child)
		}
	}
	// Forget old suspicions so a recovered peer becomes routable again.
	for id, when := range n.suspects {
		if now.Sub(when) > 4*cfg.DeadAfter {
			delete(n.suspects, id)
		}
	}
	// Retransmit unacknowledged reliable messages with doubling backoff;
	// at the deadline give up and escalate exactly like a keep-alive miss.
	// Retransmissions go out bare (not through the coalescer) so the
	// receiver acks them individually.
	for seq, e := range n.unacked {
		if now.After(e.deadline) {
			delete(n.unacked, seq)
			n.nw.stats.giveUps.Add(1)
			n.escalate(e.to, now)
			continue
		}
		if now.After(e.retryAt) {
			e.backoff *= 2
			if limit := 8 * cfg.retransmitAfter(); e.backoff > limit {
				e.backoff = limit
			}
			e.retryAt = now.Add(e.backoff)
			n.nw.stats.retransmits.Add(1)
			n.nw.stats.retransmitsByKind[e.kind].Add(1)
			m := n.newMsg(e.kind, e.to)
			m.Seq = seq
			m.Subject, m.Old, m.New = e.subject, e.old, e.new
			m.Key = e.key
			m.Version, m.Expiry = e.version, e.expiry
			n.nw.tr.Send(m)
		}
	}
	// Settled or abandoned batch envelopes.
	for seq, b := range n.batches {
		if now.After(b.deadline) {
			delete(n.batches, seq)
		}
	}
	// Abandoned queries: the caller timed out long ago.
	for seq, p := range n.pending {
		if now.After(p.expires) {
			delete(n.pending, seq)
		}
	}
	// Interval boundary per key: interest loss (Figure 3 D).
	for _, k := range n.keys {
		sh := n.shards[k]
		if now.Sub(sh.intervalStart) >= cfg.TTL {
			if sh.st.Interested() && sh.count <= cfg.Threshold {
				n.emit(sh, sh.st.LoseInterest())
			}
			sh.count = 0
			sh.intervalStart = now
		}
	}
	n.maybeFinishLeave()
}

// suspected is the node's local failure-detector verdict, consulted by the
// directory when picking a replacement ancestor.
func (n *node) suspected(id int) bool {
	_, ok := n.suspects[id]
	return ok
}

// unsubscribeEverywhere clears a dead peer out of every keyed tree it
// subscribed to on this node.
func (n *node) unsubscribeEverywhere(id int) {
	for _, k := range n.keys {
		sh := n.shards[k]
		if sh.st.Contains(id) {
			n.emit(sh, sh.st.HandleUnsubscribe(id))
		}
	}
}

// escalate reacts to a peer that stopped acknowledging reliable
// messages: treat it exactly like a keep-alive miss. A dead parent
// re-homes the node (cases 3/4/5); a dead DUP-tree neighbour is
// unsubscribed so the subscriber lists match the repaired trees (case 2).
func (n *node) escalate(to int, now time.Time) {
	n.suspects[to] = now
	if to == n.parent {
		n.parentDied(now)
		return
	}
	delete(n.childSeen, to)
	n.unsubscribeEverywhere(to)
}

// parentDied repairs after a keep-alive timeout: re-home under the nearest
// believed-alive ancestor (the underlying DHT's routing repair),
// re-announce any virtual path per keyed tree (cases 3/4), or take over as
// authority when no root is left (case 5).
func (n *node) parentDied(now time.Time) {
	n.lastAck = now // do not re-trigger while repairing
	if n.parent >= 0 {
		n.suspects[n.parent] = now
		// Abandon reliable messages aimed at the dead parent: re-homing
		// re-announces the virtual path, which supersedes them.
		for seq, e := range n.unacked {
			if e.to == n.parent {
				delete(n.unacked, seq)
			}
		}
	}
	newParent := n.nw.dir.AliveAncestor(n.id, n.suspected)
	if newParent == -1 || newParent == n.id {
		if n.nw.dir.Promote(n.id) {
			n.becomeRoot(now)
		}
		return
	}
	n.parent = newParent
	n.nw.dir.SetParent(n.id, newParent)
	for _, k := range n.keys {
		sh := n.shards[k]
		if sh.st.OnVirtualPath() {
			n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := n.newMsg(proto.KindSubscribe, newParent)
			m.Key = k
			m.Subject = sh.st.Representative()
			n.send(m)
		}
	}
}

// becomeRoot is case 5: this node takes over the failed authority's
// indexes (every key) with refreshed information and resumes update
// propagation.
func (n *node) becomeRoot(now time.Time) {
	n.parent = -1
	n.nw.dir.SetParent(n.id, -1)
	n.isRoot.Store(true)
	for _, k := range n.keys {
		sh := n.shards[k]
		sh.st.SetRoot(true)
		if sh.cacheVer > sh.version {
			sh.version = sh.cacheVer
		}
		sh.version++
		sh.expiry = now.Add(n.nw.cfg.TTL)
		n.pushOut(sh, sh.version, sh.expiry)
	}
}

// control processes one local injection from the hosting Network.
func (n *node) control(c ctrlMsg) {
	switch c.kind {
	case cQuery:
		n.localQuery(c)
	case cReset:
		n.reset(c.parent)
	case cBecomeRoot:
		n.becomeRoot(time.Now())
	case cInspect:
		c.info <- n.info(c.key)
	case cLeave:
		n.beginLeave(c)
	case cReboot:
		n.reboot(c.states)
	case cJoinKey:
		n.joinKey(c.key)
	case cLeaveKey:
		n.leaveKey(c.key)
	}
}

// info snapshots one keyed shard's protocol state for Network.Inspect.
func (n *node) info(key int) NodeInfo {
	in := NodeInfo{
		ID:      n.id,
		Key:     key,
		Parent:  n.parent,
		IsRoot:  n.isRoot.Load(),
		Dead:    n.dead.Load(),
		Keys:    append([]int(nil), n.keys...),
		Unacked: len(n.unacked),
	}
	sh, ok := n.shards[key]
	if !ok {
		return in
	}
	in.Interested = sh.st.Interested()
	in.Subscribers = append([]int(nil), sh.st.Subscribers()...)
	in.PushTargets = append([]int(nil), sh.st.PushTargets()...)
	if in.IsRoot {
		in.HaveCopy, in.Version, in.Expiry = true, sh.version, sh.expiry
	} else if sh.haveCopy {
		in.HaveCopy, in.Version, in.Expiry = true, sh.cacheVer, sh.cacheExp
	}
	return in
}

// drain releases whatever is still parked in the inbox or the unflushed
// outbox; called on the node goroutine at quit and again by Stop after the
// goroutine exits (a handler may have raced one last message in).
func (n *node) drain() {
	for _, to := range n.obOrder {
		for _, m := range n.obBins[to] {
			proto.Release(m)
		}
		n.obBins[to] = n.obBins[to][:0]
	}
	n.obOrder = n.obOrder[:0]
	for {
		select {
		case m := <-n.inbox:
			proto.Release(m)
		default:
			return
		}
	}
}

// handle processes one protocol message arriving from the transport.
func (n *node) handle(m *proto.Message) {
	n.handleMsg(m, false)
}

// handleMsg processes one protocol message; batched members skip the
// individual acknowledgement (the envelope was acked once for all of
// them) but still pass the dedup window. Each case either forwards m
// (ownership moves back to the transport) or falls through to the final
// Release.
func (n *node) handleMsg(m *proto.Message, batched bool) {
	if m.Kind == proto.KindBatch {
		if batched {
			proto.Release(m) // envelopes never nest
			return
		}
		n.onBatch(m)
		return
	}
	// Any message from a known keep-alive child proves it alive, which is
	// what lets busy children suppress their keep-alive frames entirely.
	if _, ok := n.childSeen[m.Origin]; ok {
		n.childSeen[m.Origin] = time.Now()
	}
	if m.Kind == proto.KindAck {
		n.onAck(m)
		proto.Release(m)
		return
	}
	// Reliable kinds with a seq are acknowledged; duplicates (a
	// retransmission whose original got through, or a transport-level
	// copy) are re-acked — the first ack may have been the loss — and
	// absorbed without touching protocol state. A node-level KindJoin is
	// the exception: it marks a new incarnation of the origin, whose
	// clock-seeded seq stream could overlap the previous incarnation's
	// window if its clock lags, so it is processed regardless (onJoin is
	// idempotent) and resets the origin's window.
	if reliableKind(m.Kind) && m.Seq > 0 {
		nodeJoin := m.Kind == proto.KindJoin && m.Key == 0
		if n.dedup(m.Origin, m.Seq) && !nodeJoin {
			n.nw.stats.dups.Add(1)
			n.nw.stats.dupsByKind[m.Kind].Add(1)
			if !batched {
				n.ackTo(m)
			}
			proto.Release(m)
			return
		}
		if !batched {
			n.ackTo(m)
		}
	}
	switch m.Kind {
	case proto.KindRequest:
		n.onRequest(m)
		return
	case proto.KindReply:
		n.onReply(m)
		return
	case proto.KindPush:
		n.onPush(m)
	case proto.KindSubscribe:
		sh := n.shard(m.Key)
		n.emit(sh, sh.st.HandleSubscribe(m.Subject))
	case proto.KindUnsubscribe:
		sh := n.shard(m.Key)
		n.emit(sh, sh.st.HandleUnsubscribe(m.Subject))
	case proto.KindSubstitute:
		sh := n.shard(m.Key)
		n.emit(sh, sh.st.HandleSubstitute(m.Old, m.New))
	case proto.KindKeepAlive:
		n.childSeen[m.Origin] = time.Now()
		n.send(n.newMsg(proto.KindKeepAliveAck, m.Origin))
	case proto.KindKeepAliveAck:
		n.lastAck = time.Now()
		delete(n.suspects, m.Origin)
	case proto.KindJoin:
		n.onJoin(m)
	case proto.KindLeave:
		n.onLeave(m)
	case proto.KindState:
		sh := n.shard(m.Key)
		n.storeIn(sh, m.Version, unixToTime(m.Expiry))
	}
	proto.Release(m)
}

// onBatch unpacks a coalescing envelope: acknowledge the envelope once
// (settling every reliable member at the sender), then process the
// members in order. Members are detached before the envelope is released
// so the pooled envelope cannot take them down with it.
func (n *node) onBatch(m *proto.Message) {
	if m.Seq > 0 {
		a := n.newMsg(proto.KindAck, m.Origin)
		a.Seq = m.Seq
		a.Subject = int(proto.KindBatch)
		n.send(a)
	}
	subs := m.Batch
	m.Batch = m.Batch[:0]
	for i, sub := range subs {
		subs[i] = nil
		if sub != nil {
			n.handleMsg(sub, true)
		}
	}
	proto.Release(m)
}

// onJoin adopts a joining (or recovering) child into the keep-alive
// fabric and answers with best-effort state transfers, so the joiner
// holds servable index copies without waiting out a TTL of misses. A
// node-level join (key 0) resets the origin's incarnation and transfers
// every key's state; a key-scoped join transfers just that key.
func (n *node) onJoin(m *proto.Message) {
	now := time.Now()
	n.childSeen[m.Origin] = now
	delete(n.suspects, m.Origin)
	if m.Key != 0 {
		if sh, ok := n.shards[m.Key]; ok {
			n.transferState(sh, m.Origin, now)
		}
		return
	}
	// A join starts the origin's incarnation afresh: drop the dedup window
	// its predecessor filled, so the newcomer's messages can never be
	// absorbed as duplicates of messages it never sent.
	delete(n.seen, m.Origin)
	for _, k := range n.keys {
		n.transferState(n.shards[k], m.Origin, now)
	}
}

// transferState sends one key's valid index copy to a joiner.
func (n *node) transferState(sh *shard, to int, now time.Time) {
	v, exp, ok := n.valid(sh, now)
	if !ok {
		return
	}
	s := n.newMsg(proto.KindState, to)
	s.Key = sh.key
	s.Version = v
	s.Expiry = timeToUnix(exp)
	n.send(s)
}

// onLeave handles a peer's departure announcement. A key-scoped leave
// splices the departing node out of that key's subscriber list only —
// substitute its remaining representative (Figure 3 C) or unsubscribe the
// branch (Figure 3 E). A node-level leave (key 0) additionally retires the
// origin from the keep-alive fabric; from the parent it triggers immediate
// re-homing — the same repair a keep-alive death would cause, minus the
// detection delay. A departing multi-key node sends one leave per key,
// key 0 last, so the per-key splices land before the node-level effects.
func (n *node) onLeave(m *proto.Message) {
	now := time.Now()
	if sh, ok := n.shards[m.Key]; ok && sh.st.Contains(m.Origin) {
		if m.Subject >= 0 && m.Subject != n.id {
			n.emit(sh, sh.st.HandleSubstitute(m.Origin, m.Subject))
		} else {
			n.emit(sh, sh.st.HandleUnsubscribe(m.Origin))
		}
	}
	if m.Key != 0 {
		return
	}
	delete(n.childSeen, m.Origin)
	delete(n.seen, m.Origin) // a departed peer's window is dead state
	n.suspects[m.Origin] = now
	if m.Origin == n.parent {
		n.parentDied(now)
	}
}

// ackTo acknowledges a reliable message back to its sender.
func (n *node) ackTo(m *proto.Message) {
	a := n.newMsg(proto.KindAck, m.Origin)
	a.Seq = m.Seq
	a.Subject = int(m.Kind)
	n.send(a)
}

// dedup records the (origin, seq) pair and reports a duplicate.
func (n *node) dedup(origin int, seq int64) bool {
	w := n.seen[origin]
	if w == nil {
		w = &seqWindow{seen: map[int64]struct{}{}, limit: n.nw.cfg.dedupWindow()}
		n.seen[origin] = w
	}
	return w.observe(seq)
}

// settle removes one reliable message from the retransmit queue if origin
// is the peer it was sent to, counting the ack.
func (n *node) settle(seq int64, origin int) bool {
	e, ok := n.unacked[seq]
	if !ok || e.to != origin {
		return false
	}
	delete(n.unacked, seq)
	n.nw.stats.acks.Add(1)
	n.nw.stats.acksByKind[e.kind].Add(1)
	return true
}

// onAck settles reliable messages: the peer has them. A batch-envelope
// ack settles every reliable member the envelope carried in one step. An
// ack is also a liveness proof at least as good as a keep-alive ack.
func (n *node) onAck(m *proto.Message) {
	settled := false
	if m.Subject == int(proto.KindBatch) {
		b, ok := n.batches[m.Seq]
		if !ok {
			return
		}
		delete(n.batches, m.Seq)
		for _, seq := range b.seqs {
			if n.settle(seq, m.Origin) {
				settled = true
			}
		}
	} else {
		settled = n.settle(m.Seq, m.Origin)
	}
	if !settled {
		return // late ack for a settled or abandoned message
	}
	delete(n.suspects, m.Origin)
	if m.Origin == n.parent {
		n.lastAck = time.Now()
	}
	n.maybeFinishLeave()
}

// sendJoin announces this node to its parent: a reliable KindJoin
// carrying the membership epoch, answered by per-key state transfers when
// the parent holds valid copies.
func (n *node) sendJoin() {
	if n.parent < 0 {
		return
	}
	m := n.newMsg(proto.KindJoin, n.parent)
	if dyn, ok := n.nw.dir.(Dynamic); ok {
		m.Version = int64(dyn.Epoch())
	}
	n.send(m)
}

// joinKey makes this node a participant in one keyed index tree: create
// the shard and announce it upstream (key-scoped KindJoin, answered by a
// state transfer when the parent holds a valid copy of that key).
func (n *node) joinKey(key int) {
	n.shard(key)
	if key == 0 || n.parent < 0 {
		return
	}
	m := n.newMsg(proto.KindJoin, n.parent)
	m.Key = key
	if dyn, ok := n.nw.dir.(Dynamic); ok {
		m.Version = int64(dyn.Epoch())
	}
	n.send(m)
}

// leaveKey departs one keyed index tree: withdraw interest, tell the
// parent how to splice this node out of that key's subscriber list, and
// drop the shard. Key 0 is the node's own existence — use Network.Leave.
// Downstream subscribers of the dropped key self-heal: their queries still
// route through this node (routing is node-level), and a later push or
// request for the key lazily recreates the shard.
func (n *node) leaveKey(key int) {
	if key == 0 {
		return
	}
	sh, ok := n.shards[key]
	if !ok {
		return
	}
	if sh.st.Interested() {
		n.emit(sh, sh.st.LoseInterest())
	}
	if n.parent >= 0 && sh.st.OnVirtualPath() {
		rep := -1
		if subs := sh.st.Subscribers(); len(subs) == 1 && subs[0] != n.id {
			rep = subs[0]
		}
		m := n.newMsg(proto.KindLeave, n.parent)
		m.Key = key
		m.Subject = rep
		n.send(m)
	}
	n.dropShard(key)
}

// beginLeave starts a graceful departure: withdraw interest the ordinary
// way (Figure 3 D), tell the parent how to splice this node out of each
// keyed subscriber list — key 0 last, because the key-0 leave carries the
// node-level departure — and tell the keep-alive children to re-home now
// rather than after a detection timeout. The node keeps running — acking,
// retransmitting — until its departure announcements are acknowledged;
// maybeFinishLeave then signals the waiting Network.Leave.
func (n *node) beginLeave(c ctrlMsg) {
	if n.leaving {
		if c.done != nil {
			close(c.done)
		}
		return
	}
	n.leaving = true
	n.leaveDone = c.done
	for _, k := range n.keys {
		sh := n.shards[k]
		if sh.st.Interested() {
			n.emit(sh, sh.st.LoseInterest())
		}
	}
	if n.parent >= 0 {
		// With exactly one remaining subscriber the parent can substitute
		// it in place (Figure 3 C). With more, no single node represents
		// the branch: the parent unsubscribes it and the re-homed children
		// re-announce their own virtual paths. One leave per key; keys are
		// sorted ascending and 0 is always present, so iterating in
		// reverse puts the node-level (key 0) leave last.
		for i := len(n.keys) - 1; i >= 0; i-- {
			k := n.keys[i]
			sh := n.shards[k]
			if k != 0 && !sh.st.OnVirtualPath() {
				continue
			}
			rep := -1
			if subs := sh.st.Subscribers(); len(subs) == 1 && subs[0] != n.id {
				rep = subs[0]
			}
			m := n.newMsg(proto.KindLeave, n.parent)
			m.Key = k
			m.Subject = rep
			n.send(m)
		}
	}
	for _, child := range c.children {
		if child == n.id {
			continue
		}
		m := n.newMsg(proto.KindLeave, child)
		m.Subject = -1
		n.send(m)
	}
	n.maybeFinishLeave()
}

// maybeFinishLeave completes a pending departure once nothing reliable is
// left unacknowledged (the retransmit deadline bounds how long that can
// take: give-ups empty the queue too).
func (n *node) maybeFinishLeave() {
	if !n.leaving || n.leaveDone == nil || len(n.unacked) != 0 {
		return
	}
	close(n.leaveDone)
	n.leaveDone = nil
}

// reboot models a crash-and-restart: blank in-memory state, then resume
// from the durable per-key records as a restarted process would. Cold
// reboots (no records) come back like a plain recovery.
func (n *node) reboot(states []store.NodeState) {
	if len(states) > 0 {
		n.adoptStates(states)
		n.sendJoin()
		return
	}
	if n.nw.dir.RootID() == n.id {
		n.becomeRoot(time.Now())
		return
	}
	n.reset(n.nw.dir.Parent(n.id))
	n.sendJoin()
}

// adoptStates restores durable state recorded by a previous incarnation,
// one record per key. A still-designated authority resumes its exact
// pre-crash versions with fresh TTLs and immediately re-pushes them
// (subscribers accept an equal version, so the trees learn the authority
// is back without a version regression). Any other node re-homes under
// its recorded parent, adopts its recorded subscriber lists, and
// re-announces interest upstream per key.
func (n *node) adoptStates(states []store.NodeState) {
	if len(states) == 0 {
		return
	}
	now := time.Now()
	// Role and parent are node-level, so every key's record agrees on them.
	if states[0].IsRoot && n.nw.dir.RootID() == n.id {
		n.reset(-1)
		n.isRoot.Store(true)
		for _, ns := range states {
			sh := n.shard(ns.Key)
			sh.st.SetRoot(true)
			for _, s := range ns.Subscribers {
				if s != n.id {
					sh.st.AdoptSubscriber(s)
				}
			}
			sh.version = ns.Version
			sh.expiry = now.Add(n.nw.cfg.TTL)
			n.pushOut(sh, sh.version, sh.expiry)
		}
		return
	}
	parent := states[0].Parent
	if parent < 0 || parent == n.id {
		parent = n.nw.dir.Parent(n.id)
	}
	n.reset(parent)
	for _, ns := range states {
		sh := n.shard(ns.Key)
		interested := false
		for _, s := range ns.Subscribers {
			if s == n.id {
				interested = true
				continue
			}
			sh.st.AdoptSubscriber(s)
		}
		if interested {
			n.emit(sh, sh.st.BecomeInterested())
		} else if sh.st.OnVirtualPath() && parent >= 0 {
			// Re-announce the virtual path: the parent may have dropped
			// this branch while the node was down.
			n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := n.newMsg(proto.KindSubscribe, parent)
			m.Key = ns.Key
			m.Subject = sh.st.Representative()
			n.send(m)
		}
		if exp := unixToTime(ns.Expiry); exp.After(now) {
			sh.haveCopy, sh.cacheVer, sh.cacheExp = true, ns.Version, exp
		}
	}
}

// record journals the node's durable state when it changed since the last
// record — one record per keyed shard: the run loop calls it after every
// message, control injection and tick, so the journal tracks parent,
// role, version and subscriber lists without the protocol paths knowing
// about persistence.
func (n *node) record() {
	if n.nw.journal == nil || n.dead.Load() {
		return
	}
	for _, k := range n.keys {
		sh := n.shards[k]
		ns := store.NodeState{ID: n.id, Key: k, Parent: n.parent, IsRoot: n.isRoot.Load()}
		if ns.IsRoot {
			ns.Version, ns.Expiry = sh.version, timeToUnix(sh.expiry)
		} else if sh.haveCopy {
			ns.Version, ns.Expiry = sh.cacheVer, timeToUnix(sh.cacheExp)
		}
		subs := sh.st.Subscribers()
		if sh.recValid && ns.Parent == sh.lastRec.Parent && ns.IsRoot == sh.lastRec.IsRoot &&
			ns.Version == sh.lastRec.Version && ns.Expiry == sh.lastRec.Expiry &&
			equalInts(subs, sh.lastRec.Subscribers) {
			continue
		}
		ns.Subscribers = append([]int(nil), subs...)
		sh.lastRec = ns
		sh.recValid = true
		n.nw.journal.Record(ns)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset blanks the node after recovery and re-homes it under parent.
// Every keyed shard blanks with it: the underlying process restarted.
func (n *node) reset(parent int) {
	n.isRoot.Store(false)
	n.parent = parent
	n.nw.dir.SetParent(n.id, parent)
	now := time.Now()
	for _, k := range n.keys {
		sh := n.shards[k]
		sh.st.Reset()
		sh.st.SetRoot(false)
		sh.haveCopy = false
		sh.lastPushed = -1
		sh.count = 0
		sh.intervalStart = now
	}
	n.lastAck = now
	clear(n.childSeen)
	clear(n.suspects)
	clear(n.pending)
	// Drop the retransmit queue (those messages described pre-failure
	// state) but keep the dedup windows and relSeq: peers' seq streams
	// continue across our recovery, and ours must not restart.
	clear(n.unacked)
	clear(n.batches)
}

// valid reports whether the node can serve one key's index right now,
// returning the version and expiry it would serve.
func (n *node) valid(sh *shard, now time.Time) (int64, time.Time, bool) {
	if n.isRoot.Load() {
		return sh.version, sh.expiry, true
	}
	if sh.haveCopy && now.Before(sh.cacheExp) {
		return sh.cacheVer, sh.cacheExp, true
	}
	return 0, time.Time{}, false
}

// access counts a query arrival on one key and applies the interest-gain
// policy (Figure 3 A).
func (n *node) access(sh *shard) {
	sh.count++
	if sh.count > n.nw.cfg.Threshold && !sh.st.Interested() && !n.isRoot.Load() {
		n.emit(sh, sh.st.BecomeInterested())
	}
}

// localQuery serves a query generated at this node, or sends a request
// upstream and parks the caller in pending until the reply retraces.
func (n *node) localQuery(c ctrlMsg) {
	sh := n.shard(c.key)
	n.access(sh)
	n.nw.stats.queries.Add(1)
	sh.kc.queries.Add(1)
	now := time.Now()
	if v, _, ok := n.valid(sh, now); ok {
		n.nw.stats.localHits.Add(1)
		sh.kc.localHits.Add(1)
		c.res <- QueryResult{Version: v, Hops: 0, Local: true}
		return
	}
	n.nextSeq++
	n.pending[n.nextSeq] = pendingQuery{res: c.res, expires: c.deadline}
	m := n.newMsg(proto.KindRequest, n.parent)
	m.Key = c.key
	m.Seq = n.nextSeq
	m.Hops = 1
	m.Path = append(m.Path, n.id)
	n.send(m)
}

// onRequest serves the query if possible, otherwise forwards it upstream.
func (n *node) onRequest(m *proto.Message) {
	sh := n.shard(m.Key)
	n.access(sh)
	now := time.Now()
	if v, exp, ok := n.valid(sh, now); ok {
		// Turn the request into the reply and retrace the path; the origin
		// completes the waiting query when it arrives.
		last := len(m.Path) - 1
		if last < 0 {
			proto.Release(m)
			return
		}
		m.Kind = proto.KindReply
		m.To = m.Path[last]
		m.Path = m.Path[:last]
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.send(m)
		return
	}
	if n.isRoot.Load() {
		// The authority always serves; only a mid-fail-over vacuum gets
		// here, and the query times out and is retried by the caller.
		proto.Release(m)
		return
	}
	m.Path = append(m.Path, n.id)
	m.Hops++
	m.To = n.parent
	n.send(m)
}

// onReply caches the index and keeps retracing the request path; at the
// origin it completes the pending query.
func (n *node) onReply(m *proto.Message) {
	sh := n.shard(m.Key)
	n.storeIn(sh, m.Version, unixToTime(m.Expiry))
	if len(m.Path) == 0 {
		if p, ok := n.pending[m.Seq]; ok {
			delete(n.pending, m.Seq)
			n.nw.stats.queryHops.Add(int64(m.Hops))
			sh.kc.queryHops.Add(int64(m.Hops))
			p.res <- QueryResult{Version: m.Version, Hops: m.Hops}
		}
		proto.Release(m)
		return
	}
	last := len(m.Path) - 1
	m.To = m.Path[last]
	m.Path = m.Path[:last]
	n.send(m)
}

// onPush refreshes the key's cache and forwards across that key's DUP
// tree.
func (n *node) onPush(m *proto.Message) {
	sh := n.shard(m.Key)
	n.nw.stats.pushes.Add(1)
	sh.kc.pushes.Add(1)
	exp := unixToTime(m.Expiry)
	n.storeIn(sh, m.Version, exp)
	if m.Version > sh.lastPushed {
		sh.lastPushed = m.Version
		n.pushOut(sh, m.Version, exp)
	}
}

// pushOut sends version v directly to every push target of one key's DUP
// tree.
func (n *node) pushOut(sh *shard, v int64, exp time.Time) {
	for _, target := range sh.st.PushTargets() {
		m := n.newMsg(proto.KindPush, target)
		m.Key = sh.key
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.send(m)
	}
}

// storeIn updates one key's cached copy, ignoring stale versions.
func (n *node) storeIn(sh *shard, v int64, exp time.Time) {
	if sh.haveCopy && v < sh.cacheVer {
		return
	}
	sh.haveCopy = true
	sh.cacheVer = v
	sh.cacheExp = exp
}

// emit sends one shard's state-machine actions to the current parent.
func (n *node) emit(sh *shard, acts []core.Action) {
	for _, a := range acts {
		switch a.Kind {
		case core.SendSubscribe:
			n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := n.newMsg(proto.KindSubscribe, n.parent)
			m.Key = sh.key
			m.Subject = a.Subject
			n.send(m)
		case core.SendUnsubscribe:
			m := n.newMsg(proto.KindUnsubscribe, n.parent)
			m.Key = sh.key
			m.Subject = a.Subject
			n.send(m)
		case core.SendSubstitute:
			n.nw.stats.substitutes.Add(1)
			sh.kc.substitutes.Add(1)
			m := n.newMsg(proto.KindSubstitute, n.parent)
			m.Key = sh.key
			m.Old, m.New = a.Old, a.New
			n.send(m)
		}
	}
}
