package live

import (
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/core"
	"dup/internal/proto"
	"dup/internal/store"
	"dup/internal/transport"
)

// ctrlKind enumerates local control injections (never on the wire).
type ctrlKind uint8

const (
	cQuery      ctrlKind = iota // external query injection
	cReset                      // recovery: blank state, adopt new parent
	cBecomeRoot                 // case 5: take over as authority
	cInspect                    // state snapshot for Network.Inspect
	cLeave                      // graceful departure: proactive substitute
	cReboot                     // crash-and-restart with durable state
)

// ctrlMsg is one local control injection from the Network into a node.
type ctrlMsg struct {
	kind     ctrlKind
	parent   int
	res      chan QueryResult
	info     chan NodeInfo
	deadline time.Time
	children []int            // cLeave: keep-alive children to notify
	done     chan struct{}    // cLeave: closed once departure is acked
	state    *store.NodeState // cReboot: durable state to resume from
}

// reliableKind reports whether k carries tree, index or membership state
// that must survive message loss: such messages are seq-stamped,
// acknowledged by the receiver, and retransmitted until acked or given up
// on.
func reliableKind(k proto.Kind) bool {
	switch k {
	case proto.KindPush, proto.KindSubscribe, proto.KindUnsubscribe, proto.KindSubstitute,
		proto.KindJoin, proto.KindLeave:
		return true
	}
	return false
}

// relEntry is one reliable message awaiting acknowledgement: enough of
// the payload to rebuild it for a retransmission.
type relEntry struct {
	kind              proto.Kind
	to                int
	subject, old, new int
	version           int64
	expiry            float64
	retryAt, deadline time.Time
	backoff           time.Duration
}

// seqWindow dedups inbound (origin, seq) pairs so retransmissions and
// transport-level duplicates are absorbed instead of re-applied. It
// remembers the most recent limit (Config.DedupWindow) sequence numbers;
// eviction is FIFO, which is safe because a sender only ever retransmits
// its few most recent unacknowledged messages.
type seqWindow struct {
	seen  map[int64]struct{}
	fifo  []int64
	next  int
	limit int
}

// observe records seq and reports whether it was already seen.
func (w *seqWindow) observe(seq int64) bool {
	if _, ok := w.seen[seq]; ok {
		return true
	}
	if len(w.fifo) < w.limit {
		w.fifo = append(w.fifo, seq)
	} else {
		delete(w.seen, w.fifo[w.next])
		w.fifo[w.next] = seq
		w.next = (w.next + 1) % w.limit
	}
	w.seen[seq] = struct{}{}
	return false
}

// pendingQuery is a query issued at this node that is waiting for its
// reply to retrace the request path back here.
type pendingQuery struct {
	res     chan QueryResult
	expires time.Time
}

// node is one live peer. All fields below the channel block are owned by
// the node's goroutine. Protocol messages arrive through the transport
// handler into inbox; control injections (query, reset, become-root)
// arrive from the hosting Network through ctrl.
type node struct {
	nw    *Network
	id    int
	inbox chan *proto.Message
	ctrl  chan ctrlMsg
	quit  chan struct{}

	dead   atomic.Bool
	isRoot atomic.Bool

	parent int
	st     *core.State

	// Query correlation: queries born here wait in pending, keyed by the
	// Seq their request carried.
	nextSeq int64
	pending map[int64]pendingQuery

	// Cached index copy.
	haveCopy   bool
	cacheVer   int64
	cacheExp   time.Time
	lastPushed int64

	// Authority state (root only).
	version int64
	expiry  time.Time

	// Access tracking (interest policy).
	count         int
	intervalStart time.Time

	// Liveness. suspects holds peers this node has watched miss their
	// keep-alive window; the directory skips them when re-homing.
	lastAck   time.Time
	childSeen map[int]time.Time
	suspects  map[int]time.Time

	// Delivery guarantees. Reliable outbound messages wait in unacked
	// (keyed by their seq) until the receiver's ack arrives, re-sent with
	// doubling backoff until the retransmit deadline; seen dedups inbound
	// (origin, seq) pairs so retries are idempotent.
	relSeq  int64
	unacked map[int64]*relEntry
	seen    map[int]*seqWindow

	// Membership. announce makes the node introduce itself to its parent
	// (KindJoin) when its goroutine starts — set for joiners and for nodes
	// resuming from recovered state. leaving/leaveDone track a graceful
	// departure waiting for its announcements to be acknowledged.
	announce  bool
	leaving   bool
	leaveDone chan struct{}
	stopOnce  sync.Once

	// Durable state. lastRec is the last journal record written, so state
	// that did not change does not hit the log again.
	lastRec  store.NodeState
	recValid bool
}

func newNode(nw *Network, id, parent int) *node {
	n := &node{
		nw:         nw,
		id:         id,
		inbox:      make(chan *proto.Message, nw.cfg.inboxDepth()),
		ctrl:       make(chan ctrlMsg, 16),
		quit:       make(chan struct{}),
		parent:     parent,
		st:         core.NewState(id, parent == -1),
		pending:    map[int64]pendingQuery{},
		lastPushed: -1,
		childSeen:  map[int]time.Time{},
		suspects:   map[int]time.Time{},
		// Seeding relSeq from the clock keeps seqs unique across process
		// restarts, so a rebooted peer's fresh stream is not mistaken for
		// retransmissions of its previous incarnation's.
		relSeq:  time.Now().UnixNano(),
		unacked: map[int64]*relEntry{},
		seen:    map[int]*seqWindow{},
	}
	if parent == -1 {
		n.isRoot.Store(true)
	}
	return n
}

// handler is the node's transport-facing inbox: it takes ownership of
// accepted messages (the node goroutine releases them after handling) and
// refuses delivery — so the transport counts a drop — when the node is
// dead or the inbox is full.
func (n *node) handler() transport.Handler {
	return func(m *proto.Message) bool {
		if n.dead.Load() {
			return false
		}
		select {
		case n.inbox <- m:
			return true
		default:
			return false
		}
	}
}

// postCtrl delivers a control injection unless the node is wedged.
func (n *node) postCtrl(c ctrlMsg) bool {
	select {
	case n.ctrl <- c:
		return true
	default:
		return false
	}
}

// newMsg builds an outbound message; the transport owns it after Send.
func (n *node) newMsg(kind proto.Kind, to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = kind
	m.To = to
	m.Origin = n.id
	return m
}

// send transmits m, first registering reliable kinds for
// acknowledgement tracking so a lost message is retransmitted.
func (n *node) send(m *proto.Message) {
	if m.To < 0 || m.To == n.id {
		proto.Release(m)
		return
	}
	if reliableKind(m.Kind) {
		n.track(m)
	}
	n.nw.tr.Send(m)
}

// track assigns m the next reliable sequence number and files a
// retransmit entry. The queue is bounded: at capacity the message still
// goes out once, untracked, counted as a give-up. A newer push to the
// same target supersedes any older unacked push to it — the receiver
// only wants the latest version anyway — but inherits the superseded
// entry's deadline: the clock measures how long the peer has gone
// without acking, and must not reset just because fresh versions keep
// coming.
func (n *node) track(m *proto.Message) {
	now := time.Now()
	deadline := now.Add(n.nw.cfg.retransmitDeadline())
	if m.Kind == proto.KindPush {
		for seq, e := range n.unacked {
			if e.kind == proto.KindPush && e.to == m.To {
				if e.deadline.Before(deadline) {
					deadline = e.deadline
				}
				delete(n.unacked, seq)
			}
		}
	}
	if len(n.unacked) >= n.nw.cfg.maxUnacked() {
		n.nw.stats.giveUps.Add(1)
		return
	}
	n.relSeq++
	m.Seq = n.relSeq
	backoff := n.nw.cfg.retransmitAfter()
	n.unacked[n.relSeq] = &relEntry{
		kind:     m.Kind,
		to:       m.To,
		subject:  m.Subject,
		old:      m.Old,
		new:      m.New,
		version:  m.Version,
		expiry:   m.Expiry,
		retryAt:  now.Add(backoff),
		deadline: deadline,
		backoff:  backoff,
	}
}

// timeToUnix and unixToTime convert between the node's monotonic-friendly
// time.Time state and the float64 unix seconds that cross the wire.
func timeToUnix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

func unixToTime(f float64) time.Time {
	if f == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(f*1e9))
}

// run is the node's goroutine body.
func (n *node) run() {
	defer n.nw.wg.Done()
	now := time.Now()
	n.intervalStart = now
	n.lastAck = now
	// A recovered authority enters with its pre-crash version already
	// adopted; only a genuinely fresh root starts the schedule at zero.
	if n.isRoot.Load() && n.expiry.IsZero() {
		n.version = 0
		n.expiry = now.Add(n.nw.cfg.TTL)
	}
	if n.announce {
		n.announce = false
		n.sendJoin()
	}
	n.record()
	tick := time.NewTicker(n.nw.cfg.KeepAliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			n.drain()
			return
		case m := <-n.inbox:
			if n.dead.Load() {
				proto.Release(m) // raced in just before death
				continue
			}
			n.handle(m)
			n.record()
		case c := <-n.ctrl:
			n.control(c)
			n.record()
		case <-tick.C:
			if !n.dead.Load() {
				n.tick(time.Now())
				n.record()
			}
		}
	}
}

// stop closes the quit channel exactly once: Leave and Network.Stop can
// race to shut the same node down.
func (n *node) stop() {
	n.stopOnce.Do(func() { close(n.quit) })
}

// tick runs the periodic work: the authority refresh schedule, keep-alives
// with parent-death detection, child-death detection, and the
// interest-loss policy at interval boundaries.
func (n *node) tick(now time.Time) {
	cfg := n.nw.cfg
	if n.isRoot.Load() {
		if now.After(n.expiry.Add(-cfg.Lead)) {
			n.version++
			n.expiry = now.Add(cfg.TTL)
			n.pushOut(n.version, n.expiry)
		}
	} else {
		// Keep-alive to the parent; declare it dead after the timeout.
		n.nw.stats.keepAlive.Add(1)
		if n.parent >= 0 {
			n.nw.tr.Send(n.newMsg(proto.KindKeepAlive, n.parent))
		}
		if now.Sub(n.lastAck) > cfg.DeadAfter {
			n.parentDied(now)
		}
	}
	// Child-death detection (case 2: the upstream virtual-path neighbour
	// notices and clears the path).
	for child, seen := range n.childSeen {
		if now.Sub(seen) > cfg.DeadAfter {
			delete(n.childSeen, child)
			if n.st.Contains(child) {
				n.emit(n.st.HandleUnsubscribe(child))
			}
		}
	}
	// Forget old suspicions so a recovered peer becomes routable again.
	for id, when := range n.suspects {
		if now.Sub(when) > 4*cfg.DeadAfter {
			delete(n.suspects, id)
		}
	}
	// Retransmit unacknowledged reliable messages with doubling backoff;
	// at the deadline give up and escalate exactly like a keep-alive miss.
	for seq, e := range n.unacked {
		if now.After(e.deadline) {
			delete(n.unacked, seq)
			n.nw.stats.giveUps.Add(1)
			n.escalate(e.to, now)
			continue
		}
		if now.After(e.retryAt) {
			e.backoff *= 2
			if limit := 8 * cfg.retransmitAfter(); e.backoff > limit {
				e.backoff = limit
			}
			e.retryAt = now.Add(e.backoff)
			n.nw.stats.retransmits.Add(1)
			n.nw.stats.retransmitsByKind[e.kind].Add(1)
			m := n.newMsg(e.kind, e.to)
			m.Seq = seq
			m.Subject, m.Old, m.New = e.subject, e.old, e.new
			m.Version, m.Expiry = e.version, e.expiry
			n.nw.tr.Send(m)
		}
	}
	// Abandoned queries: the caller timed out long ago.
	for seq, p := range n.pending {
		if now.After(p.expires) {
			delete(n.pending, seq)
		}
	}
	// Interval boundary: interest loss (Figure 3 D).
	if now.Sub(n.intervalStart) >= cfg.TTL {
		if n.st.Interested() && n.count <= cfg.Threshold {
			n.emit(n.st.LoseInterest())
		}
		n.count = 0
		n.intervalStart = now
	}
	n.maybeFinishLeave()
}

// suspected is the node's local failure-detector verdict, consulted by the
// directory when picking a replacement ancestor.
func (n *node) suspected(id int) bool {
	_, ok := n.suspects[id]
	return ok
}

// escalate reacts to a peer that stopped acknowledging reliable
// messages: treat it exactly like a keep-alive miss. A dead parent
// re-homes the node (cases 3/4/5); a dead DUP-tree neighbour is
// unsubscribed so the subscriber list matches the repaired tree (case 2).
func (n *node) escalate(to int, now time.Time) {
	n.suspects[to] = now
	if to == n.parent {
		n.parentDied(now)
		return
	}
	delete(n.childSeen, to)
	if n.st.Contains(to) {
		n.emit(n.st.HandleUnsubscribe(to))
	}
}

// parentDied repairs after a keep-alive timeout: re-home under the nearest
// believed-alive ancestor (the underlying DHT's routing repair),
// re-announce any virtual path (cases 3/4), or take over as authority when
// no root is left (case 5).
func (n *node) parentDied(now time.Time) {
	n.lastAck = now // do not re-trigger while repairing
	if n.parent >= 0 {
		n.suspects[n.parent] = now
		// Abandon reliable messages aimed at the dead parent: re-homing
		// re-announces the virtual path, which supersedes them.
		for seq, e := range n.unacked {
			if e.to == n.parent {
				delete(n.unacked, seq)
			}
		}
	}
	newParent := n.nw.dir.AliveAncestor(n.id, n.suspected)
	if newParent == -1 || newParent == n.id {
		if n.nw.dir.Promote(n.id) {
			n.becomeRoot(now)
		}
		return
	}
	n.parent = newParent
	n.nw.dir.SetParent(n.id, newParent)
	if n.st.OnVirtualPath() {
		n.nw.stats.subscribes.Add(1)
		m := n.newMsg(proto.KindSubscribe, newParent)
		m.Subject = n.st.Representative()
		n.send(m)
	}
}

// becomeRoot is case 5: this node takes over the failed authority's index
// with refreshed information and resumes update propagation.
func (n *node) becomeRoot(now time.Time) {
	n.parent = -1
	n.nw.dir.SetParent(n.id, -1)
	n.st.SetRoot(true)
	n.isRoot.Store(true)
	if n.cacheVer > n.version {
		n.version = n.cacheVer
	}
	n.version++
	n.expiry = now.Add(n.nw.cfg.TTL)
	n.pushOut(n.version, n.expiry)
}

// control processes one local injection from the hosting Network.
func (n *node) control(c ctrlMsg) {
	switch c.kind {
	case cQuery:
		n.localQuery(c)
	case cReset:
		n.reset(c.parent)
	case cBecomeRoot:
		n.becomeRoot(time.Now())
	case cInspect:
		c.info <- n.info()
	case cLeave:
		n.beginLeave(c)
	case cReboot:
		n.reboot(c.state)
	}
}

// info snapshots the node's protocol state for Network.Inspect.
func (n *node) info() NodeInfo {
	in := NodeInfo{
		ID:          n.id,
		Parent:      n.parent,
		IsRoot:      n.isRoot.Load(),
		Dead:        n.dead.Load(),
		Interested:  n.st.Interested(),
		Subscribers: append([]int(nil), n.st.Subscribers()...),
		PushTargets: append([]int(nil), n.st.PushTargets()...),
		Unacked:     len(n.unacked),
	}
	if in.IsRoot {
		in.HaveCopy, in.Version, in.Expiry = true, n.version, n.expiry
	} else if n.haveCopy {
		in.HaveCopy, in.Version, in.Expiry = true, n.cacheVer, n.cacheExp
	}
	return in
}

// drain releases whatever is still parked in the inbox; called on the
// node goroutine at quit and again by Stop after the goroutine exits (a
// handler may have raced one last message in).
func (n *node) drain() {
	for {
		select {
		case m := <-n.inbox:
			proto.Release(m)
		default:
			return
		}
	}
}

// handle processes one protocol message. The node owns m here: each case
// either forwards it (ownership moves back to the transport) or falls
// through to the final Release.
func (n *node) handle(m *proto.Message) {
	if m.Kind == proto.KindAck {
		n.onAck(m)
		proto.Release(m)
		return
	}
	// Reliable kinds with a seq are acknowledged; duplicates (a
	// retransmission whose original got through, or a transport-level
	// copy) are re-acked — the first ack may have been the loss — and
	// absorbed without touching protocol state. KindJoin is the exception:
	// it marks a new incarnation of the origin, whose clock-seeded seq
	// stream could overlap the previous incarnation's window if its clock
	// lags, so it is processed regardless (onJoin is idempotent) and
	// resets the origin's window.
	if reliableKind(m.Kind) && m.Seq > 0 {
		if n.dedup(m.Origin, m.Seq) && m.Kind != proto.KindJoin {
			n.nw.stats.dups.Add(1)
			n.nw.stats.dupsByKind[m.Kind].Add(1)
			n.ackTo(m)
			proto.Release(m)
			return
		}
		n.ackTo(m)
	}
	switch m.Kind {
	case proto.KindRequest:
		n.onRequest(m)
		return
	case proto.KindReply:
		n.onReply(m)
		return
	case proto.KindPush:
		n.onPush(m)
	case proto.KindSubscribe:
		n.emit(n.st.HandleSubscribe(m.Subject))
	case proto.KindUnsubscribe:
		n.emit(n.st.HandleUnsubscribe(m.Subject))
	case proto.KindSubstitute:
		n.emit(n.st.HandleSubstitute(m.Old, m.New))
	case proto.KindKeepAlive:
		n.childSeen[m.Origin] = time.Now()
		n.nw.tr.Send(n.newMsg(proto.KindKeepAliveAck, m.Origin))
	case proto.KindKeepAliveAck:
		n.lastAck = time.Now()
		delete(n.suspects, m.Origin)
	case proto.KindJoin:
		n.onJoin(m)
	case proto.KindLeave:
		n.onLeave(m)
	case proto.KindState:
		n.store(m.Version, unixToTime(m.Expiry))
	}
	proto.Release(m)
}

// onJoin adopts a joining (or recovering) child into the keep-alive
// fabric and answers with a best-effort state transfer, so the joiner
// holds a servable index copy without waiting out a TTL of misses.
func (n *node) onJoin(m *proto.Message) {
	now := time.Now()
	// A join starts the origin's incarnation afresh: drop the dedup window
	// its predecessor filled, so the newcomer's messages can never be
	// absorbed as duplicates of messages it never sent.
	delete(n.seen, m.Origin)
	n.childSeen[m.Origin] = now
	delete(n.suspects, m.Origin)
	if v, exp, ok := n.valid(now); ok {
		s := n.newMsg(proto.KindState, m.Origin)
		s.Version = v
		s.Expiry = timeToUnix(exp)
		n.nw.tr.Send(s)
	}
}

// onLeave handles a peer's graceful departure announcement. From a
// subscriber it is the paper's substitute logic run proactively: splice
// the departing node's remaining representative into the list (Figure 3
// C), or unsubscribe the branch when nothing remains (Figure 3 E). From
// the parent it triggers immediate re-homing — the same repair a
// keep-alive death would cause, minus the detection delay.
func (n *node) onLeave(m *proto.Message) {
	now := time.Now()
	delete(n.childSeen, m.Origin)
	delete(n.seen, m.Origin) // a departed peer's window is dead state
	n.suspects[m.Origin] = now
	if n.st.Contains(m.Origin) {
		if m.Subject >= 0 && m.Subject != n.id {
			n.emit(n.st.HandleSubstitute(m.Origin, m.Subject))
		} else {
			n.emit(n.st.HandleUnsubscribe(m.Origin))
		}
	}
	if m.Origin == n.parent {
		n.parentDied(now)
	}
}

// ackTo acknowledges a reliable message back to its sender.
func (n *node) ackTo(m *proto.Message) {
	a := n.newMsg(proto.KindAck, m.Origin)
	a.Seq = m.Seq
	a.Subject = int(m.Kind)
	n.send(a)
}

// dedup records the (origin, seq) pair and reports a duplicate.
func (n *node) dedup(origin int, seq int64) bool {
	w := n.seen[origin]
	if w == nil {
		w = &seqWindow{seen: map[int64]struct{}{}, limit: n.nw.cfg.dedupWindow()}
		n.seen[origin] = w
	}
	return w.observe(seq)
}

// onAck settles a reliable message: the peer has it. An ack is also a
// liveness proof at least as good as a keep-alive ack.
func (n *node) onAck(m *proto.Message) {
	e, ok := n.unacked[m.Seq]
	if !ok || e.to != m.Origin {
		return // late ack for a settled or abandoned message
	}
	delete(n.unacked, m.Seq)
	n.nw.stats.acks.Add(1)
	n.nw.stats.acksByKind[e.kind].Add(1)
	delete(n.suspects, m.Origin)
	if m.Origin == n.parent {
		n.lastAck = time.Now()
	}
	n.maybeFinishLeave()
}

// sendJoin announces this node to its parent: a reliable KindJoin
// carrying the membership epoch, answered by a state transfer when the
// parent holds a valid copy.
func (n *node) sendJoin() {
	if n.parent < 0 {
		return
	}
	m := n.newMsg(proto.KindJoin, n.parent)
	if dyn, ok := n.nw.dir.(Dynamic); ok {
		m.Version = int64(dyn.Epoch())
	}
	n.send(m)
}

// beginLeave starts a graceful departure: withdraw interest the ordinary
// way (Figure 3 D), tell the parent how to splice this node out of its
// subscriber list, and tell the keep-alive children to re-home now rather
// than after a detection timeout. The node keeps running — acking,
// retransmitting — until its departure announcements are acknowledged;
// maybeFinishLeave then signals the waiting Network.Leave.
func (n *node) beginLeave(c ctrlMsg) {
	if n.leaving {
		if c.done != nil {
			close(c.done)
		}
		return
	}
	n.leaving = true
	n.leaveDone = c.done
	if n.st.Interested() {
		n.emit(n.st.LoseInterest())
	}
	if n.parent >= 0 {
		// With exactly one remaining subscriber the parent can substitute
		// it in place (Figure 3 C). With more, no single node represents
		// the branch: the parent unsubscribes it and the re-homed children
		// re-announce their own virtual paths.
		rep := -1
		if subs := n.st.Subscribers(); len(subs) == 1 && subs[0] != n.id {
			rep = subs[0]
		}
		m := n.newMsg(proto.KindLeave, n.parent)
		m.Subject = rep
		n.send(m)
	}
	for _, child := range c.children {
		if child == n.id {
			continue
		}
		m := n.newMsg(proto.KindLeave, child)
		m.Subject = -1
		n.send(m)
	}
	n.maybeFinishLeave()
}

// maybeFinishLeave completes a pending departure once nothing reliable is
// left unacknowledged (the retransmit deadline bounds how long that can
// take: give-ups empty the queue too).
func (n *node) maybeFinishLeave() {
	if !n.leaving || n.leaveDone == nil || len(n.unacked) != 0 {
		return
	}
	close(n.leaveDone)
	n.leaveDone = nil
}

// reboot models a crash-and-restart: blank in-memory state, then resume
// from the durable record ns as a restarted process would. Cold reboots
// (ns nil) come back like a plain recovery.
func (n *node) reboot(ns *store.NodeState) {
	if ns != nil {
		n.adoptState(ns)
		n.sendJoin()
		return
	}
	if n.nw.dir.RootID() == n.id {
		n.becomeRoot(time.Now())
		return
	}
	n.reset(n.nw.dir.Parent(n.id))
	n.sendJoin()
}

// adoptState restores durable state recorded by a previous incarnation.
// A still-designated authority resumes its exact pre-crash version with a
// fresh TTL and immediately re-pushes it (subscribers accept an equal
// version, so the tree learns the authority is back without a version
// regression). Any other node re-homes under its recorded parent, adopts
// its recorded subscriber list, and re-announces interest upstream.
func (n *node) adoptState(ns *store.NodeState) {
	now := time.Now()
	if ns.IsRoot && n.nw.dir.RootID() == n.id {
		n.reset(-1)
		n.st.SetRoot(true)
		n.isRoot.Store(true)
		for _, s := range ns.Subscribers {
			if s != n.id {
				n.st.AdoptSubscriber(s)
			}
		}
		n.version = ns.Version
		n.expiry = now.Add(n.nw.cfg.TTL)
		n.pushOut(n.version, n.expiry)
		return
	}
	parent := ns.Parent
	if parent < 0 || parent == n.id {
		parent = n.nw.dir.Parent(n.id)
	}
	n.reset(parent)
	interested := false
	for _, s := range ns.Subscribers {
		if s == n.id {
			interested = true
			continue
		}
		n.st.AdoptSubscriber(s)
	}
	if interested {
		n.emit(n.st.BecomeInterested())
	} else if n.st.OnVirtualPath() && parent >= 0 {
		// Re-announce the virtual path: the parent may have dropped this
		// branch while the node was down.
		n.nw.stats.subscribes.Add(1)
		m := n.newMsg(proto.KindSubscribe, parent)
		m.Subject = n.st.Representative()
		n.send(m)
	}
	if exp := unixToTime(ns.Expiry); exp.After(now) {
		n.haveCopy, n.cacheVer, n.cacheExp = true, ns.Version, exp
	}
}

// record journals the node's durable state when it changed since the last
// record: the run loop calls it after every message, control injection
// and tick, so the journal tracks parent, role, version and subscriber
// list without the protocol paths knowing about persistence.
func (n *node) record() {
	if n.nw.journal == nil || n.dead.Load() {
		return
	}
	ns := store.NodeState{ID: n.id, Parent: n.parent, IsRoot: n.isRoot.Load()}
	if ns.IsRoot {
		ns.Version, ns.Expiry = n.version, timeToUnix(n.expiry)
	} else if n.haveCopy {
		ns.Version, ns.Expiry = n.cacheVer, timeToUnix(n.cacheExp)
	}
	subs := n.st.Subscribers()
	if n.recValid && ns.Parent == n.lastRec.Parent && ns.IsRoot == n.lastRec.IsRoot &&
		ns.Version == n.lastRec.Version && ns.Expiry == n.lastRec.Expiry &&
		equalInts(subs, n.lastRec.Subscribers) {
		return
	}
	ns.Subscribers = append([]int(nil), subs...)
	n.lastRec = ns
	n.recValid = true
	n.nw.journal.Record(ns)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset blanks the node after recovery and re-homes it under parent.
func (n *node) reset(parent int) {
	n.st.Reset()
	n.st.SetRoot(false)
	n.isRoot.Store(false)
	n.parent = parent
	n.nw.dir.SetParent(n.id, parent)
	n.haveCopy = false
	n.lastPushed = -1
	n.count = 0
	n.intervalStart = time.Now()
	n.lastAck = time.Now()
	clear(n.childSeen)
	clear(n.suspects)
	clear(n.pending)
	// Drop the retransmit queue (those messages described pre-failure
	// state) but keep the dedup windows and relSeq: peers' seq streams
	// continue across our recovery, and ours must not restart.
	clear(n.unacked)
}

// valid reports whether the node can serve the index right now, returning
// the version and expiry it would serve.
func (n *node) valid(now time.Time) (int64, time.Time, bool) {
	if n.isRoot.Load() {
		return n.version, n.expiry, true
	}
	if n.haveCopy && now.Before(n.cacheExp) {
		return n.cacheVer, n.cacheExp, true
	}
	return 0, time.Time{}, false
}

// access counts a query arrival and applies the interest-gain policy
// (Figure 3 A).
func (n *node) access() {
	n.count++
	if n.count > n.nw.cfg.Threshold && !n.st.Interested() && !n.isRoot.Load() {
		n.emit(n.st.BecomeInterested())
	}
}

// localQuery serves a query generated at this node, or sends a request
// upstream and parks the caller in pending until the reply retraces.
func (n *node) localQuery(c ctrlMsg) {
	n.access()
	n.nw.stats.queries.Add(1)
	now := time.Now()
	if v, _, ok := n.valid(now); ok {
		n.nw.stats.localHits.Add(1)
		c.res <- QueryResult{Version: v, Hops: 0, Local: true}
		return
	}
	n.nextSeq++
	n.pending[n.nextSeq] = pendingQuery{res: c.res, expires: c.deadline}
	m := n.newMsg(proto.KindRequest, n.parent)
	m.Seq = n.nextSeq
	m.Hops = 1
	m.Path = append(m.Path, n.id)
	n.nw.tr.Send(m)
}

// onRequest serves the query if possible, otherwise forwards it upstream.
func (n *node) onRequest(m *proto.Message) {
	n.access()
	now := time.Now()
	if v, exp, ok := n.valid(now); ok {
		// Turn the request into the reply and retrace the path; the origin
		// completes the waiting query when it arrives.
		last := len(m.Path) - 1
		if last < 0 {
			proto.Release(m)
			return
		}
		m.Kind = proto.KindReply
		m.To = m.Path[last]
		m.Path = m.Path[:last]
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.nw.tr.Send(m)
		return
	}
	if n.isRoot.Load() {
		// The authority always serves; only a mid-fail-over vacuum gets
		// here, and the query times out and is retried by the caller.
		proto.Release(m)
		return
	}
	m.Path = append(m.Path, n.id)
	m.Hops++
	m.To = n.parent
	n.nw.tr.Send(m)
}

// onReply caches the index and keeps retracing the request path; at the
// origin it completes the pending query.
func (n *node) onReply(m *proto.Message) {
	n.store(m.Version, unixToTime(m.Expiry))
	if len(m.Path) == 0 {
		if p, ok := n.pending[m.Seq]; ok {
			delete(n.pending, m.Seq)
			n.nw.stats.queryHops.Add(int64(m.Hops))
			p.res <- QueryResult{Version: m.Version, Hops: m.Hops}
		}
		proto.Release(m)
		return
	}
	last := len(m.Path) - 1
	m.To = m.Path[last]
	m.Path = m.Path[:last]
	n.nw.tr.Send(m)
}

// onPush refreshes the cache and forwards across the DUP tree.
func (n *node) onPush(m *proto.Message) {
	n.nw.stats.pushes.Add(1)
	exp := unixToTime(m.Expiry)
	n.store(m.Version, exp)
	if m.Version > n.lastPushed {
		n.lastPushed = m.Version
		n.pushOut(m.Version, exp)
	}
}

// pushOut sends version v directly to every DUP-tree push target.
func (n *node) pushOut(v int64, exp time.Time) {
	for _, target := range n.st.PushTargets() {
		m := n.newMsg(proto.KindPush, target)
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.send(m)
	}
}

// store updates the cached copy, ignoring stale versions.
func (n *node) store(v int64, exp time.Time) {
	if n.haveCopy && v < n.cacheVer {
		return
	}
	n.haveCopy = true
	n.cacheVer = v
	n.cacheExp = exp
}

// emit sends the state machine's upstream actions to the current parent.
func (n *node) emit(acts []core.Action) {
	for _, a := range acts {
		switch a.Kind {
		case core.SendSubscribe:
			n.nw.stats.subscribes.Add(1)
			m := n.newMsg(proto.KindSubscribe, n.parent)
			m.Subject = a.Subject
			n.send(m)
		case core.SendUnsubscribe:
			m := n.newMsg(proto.KindUnsubscribe, n.parent)
			m.Subject = a.Subject
			n.send(m)
		case core.SendSubstitute:
			n.nw.stats.substitutes.Add(1)
			m := n.newMsg(proto.KindSubstitute, n.parent)
			m.Old, m.New = a.Old, a.New
			n.send(m)
		}
	}
}
