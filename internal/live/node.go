package live

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/core"
	"dup/internal/proto"
	"dup/internal/replica"
	"dup/internal/store"
	"dup/internal/transport"
)

// ctrlKind enumerates local control injections (never on the wire). The
// first block arrives from the hosting Network; the second block is
// inter-lane coordination on sharded nodes — lane 0 owns the node-level
// fabric (parent, keep-alives, suspects) and fans node-wide effects out to
// the data lanes, which report peer observations back.
type ctrlKind uint8

const (
	cQuery      ctrlKind = iota // external query injection
	cReset                      // recovery: blank state, adopt new parent
	cBecomeRoot                 // case 5: take over as authority
	cInspect                    // state snapshot for Network.Inspect
	cLeave                      // graceful departure: proactive substitute
	cReboot                     // crash-and-restart with durable state
	cJoinKey                    // join one keyed index tree
	cLeaveKey                   // depart one keyed index tree

	cResetLane // lane 0 -> data lane: blank lane state after recovery
	cRootLane  // lane 0 -> data lane: this node became authority
	cAbdicate  // lane 0 -> data lane: lost the quorum race; serve as inner node again
	cReparent  // lane 0 -> data lane: re-homed; drop old parent's queue, re-announce
	cAdoptLane // lane 0 -> data lane: resume from durable per-key records
	cLaneLeave // lane 0 -> data lane: graceful departure started
	cPeerJoin  // lane 0 -> data lane: peer rejoined; reset its window, transfer state
	cUnsubPeer // lane 0 -> data lane: peer died; splice it out of lane shards
	cSuspect   // data lane -> lane 0: peer stopped acking reliable messages
	cAlive     // data lane -> lane 0: peers whose messages this lane saw
)

// ctrlMsg is one local control injection into a lane.
type ctrlMsg struct {
	kind     ctrlKind
	parent   int
	key      int
	peer     int  // cReparent/cPeerJoin/cUnsubPeer/cSuspect/cRootLane subject
	asRoot   bool // cAdoptLane: resume as the designated authority
	res      chan QueryResult
	info     chan NodeInfo
	deadline time.Time
	children []int             // cLeave: keep-alive children to notify
	peers    []int             // cAlive: peers seen since the last digest
	done     chan struct{}     // cLeave: closed once departure is acked
	states   []store.NodeState // cReboot/cAdoptLane: durable state to resume from
}

// reliableKind reports whether k carries tree, index or membership state
// that must survive message loss: such messages are seq-stamped,
// acknowledged by the receiver, and retransmitted until acked or given up
// on.
func reliableKind(k proto.Kind) bool {
	switch k {
	case proto.KindPush, proto.KindSubscribe, proto.KindUnsubscribe, proto.KindSubstitute,
		proto.KindJoin, proto.KindLeave:
		return true
	}
	return false
}

// relEntry is one reliable message awaiting acknowledgement: enough of
// the payload to rebuild it for a retransmission. Entries are pooled on a
// per-lane freelist so the steady-state send path allocates nothing.
// sentAt/ps feed the per-neighbour delivery stats when the ack arrives.
type relEntry struct {
	kind              proto.Kind
	to                int
	subject, old, new int
	key               int
	version           int64
	expiry            float64
	retryAt, deadline time.Time
	backoff           time.Duration
	sentAt            time.Time
	ps                *peerStat
}

// peerStat is one neighbour's observed delivery quality, feeding the
// scored parent selection that replaces a blind nearest-ancestor walk
// when a root path expires: sent/acked give ack reliability, srttNs a
// smoothed ack round-trip latency (EWMA, gain 1/8), beaconAt the last
// time a root-announce beacon arrived through this neighbour. All
// counters are atomics so any lane can update them on its hot path.
type peerStat struct {
	sent     atomic.Int64
	acked    atomic.Int64
	srttNs   atomic.Int64
	beaconAt atomic.Int64
}

// batchRec remembers which reliable member seqs one batch envelope
// carried, so the envelope's single ack can settle all of them. Entries
// expire at the members' retransmit deadline: by then every member has
// either been settled or given up on. Records are pooled per lane.
type batchRec struct {
	seqs     []int64
	deadline time.Time
}

// seqWindow dedups inbound (origin, seq) pairs so retransmissions and
// transport-level duplicates are absorbed instead of re-applied. It
// remembers the most recent limit (Config.DedupWindow) sequence numbers;
// eviction is FIFO, which is safe because a sender only ever retransmits
// its few most recent unacknowledged messages.
type seqWindow struct {
	seen  map[int64]struct{}
	fifo  []int64
	next  int
	limit int
}

// observe records seq and reports whether it was already seen.
func (w *seqWindow) observe(seq int64) bool {
	if _, ok := w.seen[seq]; ok {
		return true
	}
	if len(w.fifo) < w.limit {
		w.fifo = append(w.fifo, seq)
	} else {
		delete(w.seen, w.fifo[w.next])
		w.fifo[w.next] = seq
		w.next = (w.next + 1) % w.limit
	}
	w.seen[seq] = struct{}{}
	return false
}

// pendingQuery is a query issued at this node that is waiting for its
// reply to retrace the request path back here.
type pendingQuery struct {
	res     chan QueryResult
	expires time.Time
}

// shard is one keyed index tree's per-node state: the DUP-tree state
// machine plus the cache, authority schedule, interest window and durable
// record for that key. The routing tree (parent, keep-alive fabric,
// retransmit queue, dedup windows) stays node-level — the underlying DHT
// routes every key through the same neighbours — so a shard is exactly
// the per-key state the paper hangs off one index.
type shard struct {
	key int
	st  *core.State

	// Cached index copy.
	haveCopy   bool
	cacheVer   int64
	cacheExp   time.Time
	lastPushed int64

	// Authority state (root only).
	version int64
	expiry  time.Time

	// Access tracking (interest policy).
	count         int
	intervalStart time.Time

	// Per-key stats sink (registry entry shared with Network.StatsKey).
	kc *keyCounters

	// Durable state. lastRec is the last journal record written for this
	// key, so state that did not change does not hit the log again.
	lastRec  store.NodeState
	recValid bool
}

// node is one live peer. With Config.ShardLoops > 1 the node runs several
// lanes — independent receive/ctrl loops that partition the keyed shards
// by key % L, so independent keys process in parallel across cores. Lane
// 0 additionally owns the node-level fabric: the routing parent, the
// keep-alive protocol, child liveness, suspicion, membership and graceful
// departure. The fields grouped as "lane-0-owned" below are touched only
// on lane 0's goroutine; parent and lastAck are atomics because data
// lanes read the parent on every send and refresh lastAck when the parent
// acks lane traffic.
type node struct {
	nw   *Network
	id   int
	quit chan struct{}

	dead   atomic.Bool
	isRoot atomic.Bool

	// rep is the node's replicated-authority group (Config.Replicas >= 2
	// only; nil otherwise — the zero-cost off switch). Members carry one
	// from birth; a non-member carries one from the moment the directory
	// promotes it. The Group is internally synchronised, so any lane may
	// Step inbound replica traffic or Bump through it; the pointer itself
	// is atomic because promotion (lane 0) can race data-lane reads.
	rep atomic.Pointer[replica.Group]

	// parentV is the routing parent id (-1 for the root), read by every
	// lane on the send path and written by lane 0 during repair.
	parentV atomic.Int64

	// lastAckV is the last time the parent acknowledged anything from this
	// node, in unix nanoseconds: keep-alive suppression and parent-death
	// detection read it on lane 0; any lane stores it when a parent ack
	// settles.
	lastAckV atomic.Int64

	lanes []*lane

	// Lane-0-owned liveness. suspects holds peers this node has watched
	// miss their keep-alive window; the directory skips them when
	// re-homing. childSeen tracks keep-alive children.
	childSeen map[int]time.Time
	suspects  map[int]time.Time

	// Soft-state root path (Config.RootAnnounceEvery > 0, else dormant).
	// rootSeqV is the highest root-announce sequence this node observed
	// (or issued, on a root); rootSeqAtV is the unix-nano instant it last
	// advanced. Lane 0 drives expiry off them; they are atomics so info()
	// can snapshot from any lane. lastAnnounce is lane-0-owned: the last
	// time this node originated a beacon as root.
	rootSeqV     atomic.Int64
	rootSeqAtV   atomic.Int64
	lastAnnounce time.Time

	// peerMu guards peers, the per-neighbour delivery-quality table behind
	// scored parent selection. Entries are created on first touch and
	// never removed; the counters inside are atomics, so steady-state
	// updates take only the read lock.
	peerMu sync.RWMutex
	peers  map[int]*peerStat

	// keyMu guards allKeys, the node-wide sorted key registry behind
	// NodeInfo.Keys: shards live per lane, so the union is kept here.
	keyMu   sync.Mutex
	allKeys []int

	// Membership. announce makes the node introduce itself to its parent
	// (KindJoin) when lane 0 starts — set for joiners and for nodes
	// resuming from recovered state. leaving/leaveDone/leaveLanes track a
	// graceful departure: each lane signals once its reliable queue
	// drains, and the last one closes leaveDone.
	announce   bool
	leaving    bool
	leaveDone  chan struct{}
	leaveLanes atomic.Int32
	stopOnce   sync.Once
}

// lane is one receive/ctrl loop of a node: a partition of the keyed
// shards (key % ShardLoops == idx) with its own inbox, reliable-delivery
// machinery and send-side coalescer. Every field is owned by the lane's
// goroutine. Reliable seq streams are strided — lane i issues seqs
// congruent to i modulo the lane count — so a receiver routes acks and
// envelopes to the owning lane from the seq alone.
type lane struct {
	n      *node
	idx    int
	stride int64

	inbox chan *proto.Message
	ctrl  chan ctrlMsg

	// Per-key data plane: the shards this lane owns. keys mirrors the map
	// in sorted order so iteration is deterministic.
	shards map[int]*shard
	keys   []int

	// Query correlation: queries born on this lane wait in pending, keyed
	// by the Seq their request carried.
	nextSeq int64
	pending map[int64]pendingQuery

	// Delivery guarantees. Reliable outbound messages wait in unacked
	// (keyed by their seq) until the receiver's ack arrives, re-sent with
	// doubling backoff until the retransmit deadline; seen dedups inbound
	// (origin, seq) pairs so retries are idempotent.
	relSeq  int64
	unacked map[int64]*relEntry
	seen    map[int]*seqWindow

	// Send-side coalescer: messages bound for the same neighbour within
	// one lane-loop iteration are flushed together — bare when alone,
	// inside one KindBatch envelope when several — so a busy link carries
	// many protocol messages per frame and one ack settles all of them.
	// batches maps an envelope's seq to the reliable member seqs it
	// carried.
	obOrder []int
	obBins  map[int][]*proto.Message
	batches map[int64]*batchRec

	// Freelists: settled retransmit entries and batch records are reused
	// so the steady-state push path allocates nothing.
	relFree []*relEntry
	recFree []*batchRec

	// seenPeers accumulates message origins on data lanes between ticks;
	// each tick flushes a cAlive digest to lane 0, which refreshes
	// childSeen — the sharded equivalent of "any message from a child
	// proves it alive". Nil on lane 0.
	seenPeers map[int]struct{}

	// Graceful departure: leaving is set by beginLeave (lane 0) or
	// cLaneLeave; leaveSent records that this lane already reported its
	// queue drained.
	leaving   bool
	leaveSent bool
}

// maxEnvelope bounds how many members one flushed envelope carries; it is
// comfortably below wire.MaxBatch so every envelope the coalescer builds
// is decodable.
const maxEnvelope = 1 << 10

func newNode(nw *Network, id, parent int) *node {
	loops := nw.cfg.shardLoops()
	n := &node{
		nw:        nw,
		id:        id,
		quit:      make(chan struct{}),
		childSeen: map[int]time.Time{},
		suspects:  map[int]time.Time{},
		peers:     map[int]*peerStat{},
	}
	n.setParent(parent)
	if parent == -1 {
		n.isRoot.Store(true)
	}
	if r := nw.cfg.replicas(); r > 1 && id < r {
		n.rep.Store(replica.New(n.replicaConfig()))
	}
	// Seeding relSeq from the clock keeps seqs unique across process
	// restarts, so a rebooted peer's fresh stream is not mistaken for
	// retransmissions of its previous incarnation's. The base is rounded
	// down to a multiple of the lane count and lane i starts at base+i:
	// every seq a lane ever issues stays congruent to its index, which is
	// what lets receivers route acks by seq alone.
	base := time.Now().UnixNano()
	base -= base % int64(loops)
	n.lanes = make([]*lane, loops)
	for i := range n.lanes {
		l := &lane{
			n:       n,
			idx:     i,
			stride:  int64(loops),
			inbox:   make(chan *proto.Message, nw.cfg.inboxDepth()),
			ctrl:    make(chan ctrlMsg, 16),
			shards:  map[int]*shard{},
			pending: map[int64]pendingQuery{},
			relSeq:  base + int64(i),
			unacked: map[int64]*relEntry{},
			seen:    map[int]*seqWindow{},
			obBins:  map[int][]*proto.Message{},
			batches: map[int64]*batchRec{},
		}
		if i > 0 {
			l.seenPeers = map[int]struct{}{}
		}
		n.lanes[i] = l
	}
	n.lanes[0].addShard(0, time.Now())
	return n
}

// replicaConfig builds this node's replica-group configuration: the
// replica set is nodes 0..Replicas-1, the lease runs one TTL (the same
// freshness horizon as the index itself), and accepted log entries land
// in the Network's journal when it is replica-capable. With Replicas <=
// 1 no Group is ever built, so this is only called in replicated mode.
func (n *node) replicaConfig() replica.Config {
	r := n.nw.cfg.replicas()
	members := make([]int, r)
	for i := range members {
		members[i] = i
	}
	var rj store.ReplicaJournal
	if j, ok := n.nw.journal.(store.ReplicaJournal); ok {
		rj = j
	}
	return replica.Config{
		ID:      n.id,
		Members: members,
		Lease:   n.nw.cfg.TTL,
		Journal: rj,
	}
}

// replicaKind reports whether k belongs to the replicated-authority
// quorum protocol; such messages bypass the DUP state machine and step
// the node's replica group instead.
func replicaKind(k proto.Kind) bool {
	switch k {
	case proto.KindPrepare, proto.KindPromise, proto.KindAccept,
		proto.KindCommit, proto.KindLease, proto.KindReconfig, proto.KindStateXfer:
		return true
	}
	return false
}

// parent returns the current routing parent (-1 for the root).
func (n *node) parent() int { return int(n.parentV.Load()) }

func (n *node) setParent(p int) { n.parentV.Store(int64(p)) }

func (n *node) lastAck() time.Time { return time.Unix(0, n.lastAckV.Load()) }

func (n *node) sawParentAck(now time.Time) { n.lastAckV.Store(now.UnixNano()) }

// peerView returns the delivery-stat entry for id without creating one;
// nil means the neighbour has never been observed.
func (n *node) peerView(id int) *peerStat {
	n.peerMu.RLock()
	ps := n.peers[id]
	n.peerMu.RUnlock()
	return ps
}

// peerStatFor returns the delivery-stat entry for id, creating it on
// first touch.
func (n *node) peerStatFor(id int) *peerStat {
	if ps := n.peerView(id); ps != nil {
		return ps
	}
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if ps := n.peers[id]; ps != nil {
		return ps
	}
	ps := &peerStat{}
	n.peers[id] = ps
	return ps
}

// laneForKey returns the lane owning one keyed shard.
func (n *node) laneForKey(key int) *lane {
	if len(n.lanes) == 1 {
		return n.lanes[0]
	}
	i := key % len(n.lanes)
	if i < 0 {
		i += len(n.lanes)
	}
	return n.lanes[i]
}

// laneForSeq returns the lane that issued a reliable seq: streams are
// strided, so seq mod the lane count is the issuing lane's index. This
// only holds when every process of the cluster runs the same ShardLoops,
// which Config documents as a requirement (like Nodes and Seed).
func (n *node) laneForSeq(seq int64) *lane {
	i := int(seq % int64(len(n.lanes)))
	if i < 0 {
		i += len(n.lanes)
	}
	return n.lanes[i]
}

// laneFor routes one inbound message to the lane that owns its state:
// keyed traffic by key, acks and reliable envelopes by the seq stride,
// node-level fabric (keep-alives, key-0 membership) to lane 0. Every
// member of a coalesced envelope routes to the same lane as the envelope
// itself, because a lane only coalesces its own traffic.
func (n *node) laneFor(m *proto.Message) *lane {
	if len(n.lanes) == 1 {
		return n.lanes[0]
	}
	switch m.Kind {
	case proto.KindAck:
		return n.laneForSeq(m.Seq)
	case proto.KindBatch:
		if m.Seq > 0 {
			return n.laneForSeq(m.Seq)
		}
		if len(m.Batch) > 0 && m.Batch[0] != nil {
			return n.laneFor(m.Batch[0])
		}
		return n.lanes[0]
	case proto.KindKeepAlive, proto.KindKeepAliveAck, proto.KindRootAnnounce:
		return n.lanes[0]
	}
	return n.laneForKey(m.Key)
}

// handler is the node's transport-facing inbox: it takes ownership of
// accepted messages (the owning lane releases them after handling) and
// refuses delivery — so the transport counts a drop — when the node is
// dead or the lane's inbox is full. Refusals also count toward
// Stats.InboxDrops, the saturation signal shared with the burst path.
func (n *node) handler() transport.Handler {
	return func(m *proto.Message) bool {
		if n.dead.Load() {
			n.nw.stats.inboxDrops.Add(1)
			return false
		}
		select {
		case n.laneFor(m).inbox <- m:
			return true
		default:
			n.nw.stats.inboxDrops.Add(1)
			return false
		}
	}
}

// burstHandler is the node's burst-dispatch inbox, registered alongside
// handler on transports that decode inbound frames in bursts (TCP). It
// owns every message in the burst: accepted ones route to their lane's
// inbox exactly like the per-message path, refused ones (dead node, full
// lane inbox) are released here and counted as Stats.InboxDrops — the
// transport is out of the loop, which is what keeps the hot path
// lock-free.
func (n *node) burstHandler() transport.BurstHandler {
	return func(ms []*proto.Message) {
		if n.dead.Load() {
			n.nw.stats.inboxDrops.Add(int64(len(ms)))
			for _, m := range ms {
				proto.Release(m)
			}
			return
		}
		for _, m := range ms {
			select {
			case n.laneFor(m).inbox <- m:
			default:
				n.nw.stats.inboxDrops.Add(1)
				proto.Release(m)
			}
		}
	}
}

// postCtrl delivers a control injection unless the lane is wedged.
func (l *lane) postCtrl(c ctrlMsg) bool {
	select {
	case l.ctrl <- c:
		return true
	default:
		return false
	}
}

// bcast fans a control injection out to every data lane; lane 0 calls it
// to apply node-level transitions (recovery, promotion, re-homing,
// departure) to the whole node. Best-effort like any postCtrl.
func (l *lane) bcast(c ctrlMsg) {
	for _, dl := range l.n.lanes[1:] {
		dl.postCtrl(c)
	}
}

// registerKey and unregisterKey maintain the node-wide key registry
// behind NodeInfo.Keys; shard ownership itself is per lane.
func (n *node) registerKey(key int) {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	i := sort.SearchInts(n.allKeys, key)
	if i < len(n.allKeys) && n.allKeys[i] == key {
		return
	}
	n.allKeys = append(n.allKeys, 0)
	copy(n.allKeys[i+1:], n.allKeys[i:])
	n.allKeys[i] = key
}

func (n *node) unregisterKey(key int) {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	i := sort.SearchInts(n.allKeys, key)
	if i < len(n.allKeys) && n.allKeys[i] == key {
		n.allKeys = append(n.allKeys[:i], n.allKeys[i+1:]...)
	}
}

func (n *node) keysSnapshot() []int {
	n.keyMu.Lock()
	defer n.keyMu.Unlock()
	return append([]int(nil), n.allKeys...)
}

// newMsg builds an outbound message; the transport owns it after Send.
func (l *lane) newMsg(kind proto.Kind, to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = kind
	m.To = to
	m.Origin = l.n.id
	return m
}

// shard returns the state for one keyed index tree, creating it on first
// touch: a push or request for a key this node has never seen makes it a
// participant in that key's tree.
func (l *lane) shard(key int) *shard {
	if sh, ok := l.shards[key]; ok {
		return sh
	}
	return l.addShard(key, time.Now())
}

func (l *lane) addShard(key int, now time.Time) *shard {
	sh := &shard{
		key:           key,
		st:            core.NewState(l.n.id, l.n.isRoot.Load()),
		lastPushed:    -1,
		intervalStart: now,
		kc:            l.n.nw.kc(key),
	}
	if l.n.isRoot.Load() {
		sh.expiry = now.Add(l.n.nw.cfg.TTL)
	}
	l.shards[key] = sh
	l.keys = append(l.keys, key)
	sort.Ints(l.keys)
	l.n.registerKey(key)
	return sh
}

// dropShard removes one keyed shard (LeaveKey); key 0 never drops.
func (l *lane) dropShard(key int) {
	if key == 0 {
		return
	}
	delete(l.shards, key)
	for i, k := range l.keys {
		if k == key {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			break
		}
	}
	l.n.unregisterKey(key)
}

// getRel and putRel run the pooled retransmit-entry freelist.
func (l *lane) getRel() *relEntry {
	if n := len(l.relFree); n > 0 {
		e := l.relFree[n-1]
		l.relFree = l.relFree[:n-1]
		return e
	}
	return &relEntry{}
}

func (l *lane) putRel(e *relEntry) {
	*e = relEntry{}
	l.relFree = append(l.relFree, e)
}

// getRec and putRec run the pooled batch-record freelist; seqs keeps its
// capacity across reuses.
func (l *lane) getRec() *batchRec {
	if n := len(l.recFree); n > 0 {
		b := l.recFree[n-1]
		l.recFree = l.recFree[:n-1]
		return b
	}
	return &batchRec{}
}

func (l *lane) putRec(b *batchRec) {
	b.seqs = b.seqs[:0]
	b.deadline = time.Time{}
	l.recFree = append(l.recFree, b)
}

// send queues m for this loop iteration's flush, first registering
// reliable kinds for acknowledgement tracking so a lost message is
// retransmitted.
func (l *lane) send(m *proto.Message) {
	if m.To < 0 || m.To == l.n.id {
		proto.Release(m)
		return
	}
	if reliableKind(m.Kind) {
		l.track(m)
	}
	l.out(m)
}

// sendAll queues a replica group's outbound messages.
func (l *lane) sendAll(msgs []*proto.Message) {
	for _, m := range msgs {
		l.send(m)
	}
}

// out bins m by target for the end-of-iteration flush, keeping bins in
// first-touch order so flushing is deterministic.
func (l *lane) out(m *proto.Message) {
	bin, ok := l.obBins[m.To]
	if !ok || len(bin) == 0 {
		l.obOrder = append(l.obOrder, m.To)
	}
	l.obBins[m.To] = append(bin, m)
}

// flush drains the outbox: a lone message to a target goes out bare
// (byte-identical to the unbatched protocol, and kind-level fault
// injection still sees it); two or more are coalesced into one KindBatch
// envelope — one frame, one syscall, and when any member is reliable one
// envelope ack settles them all. Retransmissions never pass through here:
// tick re-sends them bare so they are individually acknowledged.
func (l *lane) flush() {
	for _, to := range l.obOrder {
		bin := l.obBins[to]
		for len(bin) > 0 {
			if len(bin) == 1 {
				l.n.nw.tr.Send(bin[0])
				bin = bin[1:]
				break
			}
			chunk := bin
			if len(chunk) > maxEnvelope {
				chunk = chunk[:maxEnvelope]
			}
			env := l.newMsg(proto.KindBatch, to)
			env.Batch = append(env.Batch, chunk...)
			var rec *batchRec
			for _, m := range chunk {
				if reliableKind(m.Kind) && m.Seq > 0 {
					if rec == nil {
						rec = l.getRec()
					}
					rec.seqs = append(rec.seqs, m.Seq)
				}
			}
			if rec != nil {
				l.relSeq += l.stride
				env.Seq = l.relSeq
				rec.deadline = time.Now().Add(l.n.nw.cfg.retransmitDeadline())
				l.batches[env.Seq] = rec
			}
			l.n.nw.tr.Send(env)
			bin = bin[len(chunk):]
		}
		l.obBins[to] = l.obBins[to][:0]
	}
	l.obOrder = l.obOrder[:0]
}

// track assigns m the next reliable sequence number and files a
// retransmit entry. The queue is bounded: at capacity the message still
// goes out once, untracked, counted as a give-up. A newer push to the
// same target and key supersedes any older unacked push to it — the
// receiver only wants the latest version anyway — but inherits the
// superseded entry's deadline: the clock measures how long the peer has
// gone without acking, and must not reset just because fresh versions
// keep coming.
func (l *lane) track(m *proto.Message) {
	now := time.Now()
	deadline := now.Add(l.n.nw.cfg.retransmitDeadline())
	if m.Kind == proto.KindPush {
		for seq, e := range l.unacked {
			if e.kind == proto.KindPush && e.to == m.To && e.key == m.Key {
				if e.deadline.Before(deadline) {
					deadline = e.deadline
				}
				// The superseded push will never be acked through no fault of
				// the peer's; take it back out of the reliability denominator
				// so a healthy stream of fresh versions does not read as loss.
				if e.ps != nil {
					e.ps.sent.Add(-1)
				}
				delete(l.unacked, seq)
				l.putRel(e)
			}
		}
	}
	if len(l.unacked) >= l.n.nw.cfg.maxUnacked() {
		l.n.nw.stats.giveUps.Add(1)
		return
	}
	l.relSeq += l.stride
	m.Seq = l.relSeq
	backoff := l.n.nw.cfg.retransmitAfter()
	e := l.getRel()
	e.kind = m.Kind
	e.to = m.To
	e.subject, e.old, e.new = m.Subject, m.Old, m.New
	e.key = m.Key
	e.version, e.expiry = m.Version, m.Expiry
	e.retryAt = now.Add(backoff)
	e.deadline = deadline
	e.backoff = backoff
	e.sentAt = now
	e.ps = l.n.peerStatFor(m.To)
	e.ps.sent.Add(1)
	l.unacked[l.relSeq] = e
}

// timeToUnix and unixToTime convert between the node's monotonic-friendly
// time.Time state and the float64 unix seconds that cross the wire.
func timeToUnix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

func unixToTime(f float64) time.Time {
	if f == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(f*1e9))
}

// run is one lane's goroutine body. Lane 0 additionally runs the
// node-level fabric: the initial join announcement, keep-alives and
// failure detection happen there.
func (l *lane) run() {
	n := l.n
	defer n.nw.wg.Done()
	now := time.Now()
	if l.idx == 0 {
		n.sawParentAck(now)
		// The root-path clock starts fresh: a joiner has not missed any
		// beacons yet.
		n.rootSeqAtV.Store(now.UnixNano())
	}
	for _, k := range l.keys {
		sh := l.shards[k]
		sh.intervalStart = now
		// A recovered authority enters with its pre-crash version already
		// adopted; only a genuinely fresh root starts the schedule at zero.
		if n.isRoot.Load() && sh.expiry.IsZero() {
			sh.version = 0
			sh.expiry = now.Add(n.nw.cfg.TTL)
		}
	}
	if l.idx == 0 && n.announce {
		n.announce = false
		l.sendJoin()
	}
	if l.idx == 0 && n.isRoot.Load() {
		if g := n.rep.Load(); g != nil {
			// A fresh cluster's boot root leads term 1 outright (there is
			// nothing to floor above); a root resuming a recovered log
			// re-runs the quorum promise round so its floors rise above
			// every version any quorum ever accepted.
			if g.Term() == 0 {
				g.BootLeader()
			} else if !g.Leading() {
				l.sendAll(g.StartCandidate(now))
			}
		}
	}
	l.record()
	l.flush()
	tick := time.NewTicker(n.nw.cfg.KeepAliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			l.drain()
			return
		case m := <-l.inbox:
			if n.dead.Load() {
				proto.Release(m) // raced in just before death
				continue
			}
			l.handleMsg(m, false)
			// Opportunistic batch drain: one wakeup handles whatever else
			// the inbox already holds (bounded by DrainBatch), so the
			// select, the journal record and the outbox flush amortize
			// across the burst — the receive-side mirror of the writer's
			// gather. Bounded so ctrl injections and ticks stay live under
			// sustained inbound load.
			batch := 1
		drain:
			for limit := n.nw.cfg.drainBatch(); batch < limit; {
				select {
				case m := <-l.inbox:
					if n.dead.Load() {
						proto.Release(m)
						break drain
					}
					l.handleMsg(m, false)
					batch++
				default:
					break drain
				}
			}
			l.observeBurst(int64(batch))
			l.record()
		case c := <-l.ctrl:
			l.control(c)
			l.record()
		case <-tick.C:
			if !n.dead.Load() {
				l.tick(time.Now())
				l.record()
			}
		}
		l.flush()
	}
}

// observeBurst folds one wakeup's drained batch size into the network's
// inbox-pressure counters behind Stats.InboxBurstMax / InboxBurstMean.
func (l *lane) observeBurst(batch int64) {
	s := &l.n.nw.stats
	s.burstSum.Add(batch)
	s.burstN.Add(1)
	for {
		cur := s.burstMax.Load()
		if batch <= cur || s.burstMax.CompareAndSwap(cur, batch) {
			return
		}
	}
}

// stop closes the quit channel exactly once: Leave and Network.Stop can
// race to shut the same node down. Every lane watches it.
func (n *node) stop() {
	n.stopOnce.Do(func() { close(n.quit) })
}

// tick runs one lane's periodic work: the authority refresh schedule and
// interest-loss policy for the lane's shards, retransmits for its
// reliable queue — plus, on lane 0 only, keep-alives with parent-death
// detection, child-death detection and suspicion expiry. Data lanes flush
// their peer-observation digest to lane 0 instead.
func (l *lane) tick(now time.Time) {
	n := l.n
	cfg := n.nw.cfg
	if n.isRoot.Load() {
		rep := n.rep.Load()
		for _, k := range l.keys {
			sh := l.shards[k]
			if now.After(sh.expiry.Add(-cfg.Lead)) {
				if rep != nil {
					// Quorum gate: the bump goes through the replicated
					// log — it may stall (no lease yet, or the reserve
					// ahead of quorum acknowledgement is exhausted), in
					// which case the old version keeps serving until its
					// expiry and the next tick retries; and it may jump
					// (a fail-over floor), which the stream adopts.
					exp := now.Add(cfg.TTL)
					v, msgs, ok := rep.Bump(k, sh.version+1, timeToUnix(exp), now)
					l.sendAll(msgs)
					if !ok {
						continue
					}
					sh.version = v
					sh.expiry = exp
					l.pushOut(sh, v, exp)
					continue
				}
				sh.version++
				sh.expiry = now.Add(cfg.TTL)
				l.pushOut(sh, sh.version, sh.expiry)
			}
		}
	} else if l.idx == 0 {
		// Keep-alive to the parent, suppressed while acks are flowing: any
		// ack from the parent — on any lane — is liveness proof as good as
		// a keep-alive ack, so a busy link carries no keep-alive frames at
		// all. Declare the parent dead after the timeout as before.
		parent := n.parent()
		last := n.lastAck()
		if parent >= 0 && now.Sub(last) >= cfg.KeepAliveEvery {
			n.nw.stats.keepAlive.Add(1)
			l.send(l.newMsg(proto.KindKeepAlive, parent))
		}
		if now.Sub(last) > cfg.DeadAfter {
			l.parentDied(now)
		}
	}
	if l.idx == 0 {
		// Soft-state tree: a root originates its sequence beacon; an inner
		// node whose root sequence stopped advancing for a full expiry —
		// its parent is alive (keep-alive acks flow) but the path above it
		// has gone stale — re-homes under the best-scored alternative.
		if cfg.announceOn() && !n.leaving {
			if n.isRoot.Load() {
				l.announceRoot(now)
			} else if n.parent() >= 0 &&
				now.Sub(time.Unix(0, n.rootSeqAtV.Load())) > cfg.rootExpireAfter() {
				l.expireRootPath(now)
			}
		}
		// Replica-group periodic work: lease renewal and anti-entropy for
		// a leader, prepare retransmission for a candidate, commit
		// watermarks. Followers return nothing. A directory-promoted root
		// first reconciles its role against the quorum: if someone else
		// provably holds the lease it abdicates and re-homes under them
		// (multi-process fail-over can promote one root per process — the
		// quorum picks the survivor); if its own leadership went stale it
		// re-elects rather than serving nothing forever.
		if g := n.rep.Load(); g != nil {
			if n.isRoot.Load() {
				if to, ok := g.LeaseHolder(now); ok && to != n.id && !n.suspected(to) {
					l.abdicate(to, now)
				} else if g.StaleLeader(now) {
					l.sendAll(g.StartCandidate(now))
				}
			}
			l.sendAll(g.Tick(now))
			// Permanent-failure horizon: a member silent past PermanentAfter
			// (well beyond DeadAfter's restartable suspicion) is gone for
			// good — the leaseholder heals the quorum by replacing it with a
			// directory member through the two-phase reconfiguration.
			if cfg.PermanentAfter > 0 && g.Leading() && !g.ReconfigInFlight() {
				if dead := g.DeadMembers(now, cfg.PermanentAfter); len(dead) > 0 {
					if repl := n.pickReplacement(g, dead); repl >= 0 {
						msgs, _ := g.ProposeReplace(dead[0], repl, now)
						l.sendAll(msgs)
					}
				}
			}
		}
		// Child-death detection (case 2: the upstream virtual-path
		// neighbour notices and clears the path) — across every keyed tree,
		// so the splice fans out to the data lanes.
		for child, seen := range n.childSeen {
			if now.Sub(seen) > cfg.DeadAfter {
				delete(n.childSeen, child)
				l.unsubscribePeer(child)
				l.bcast(ctrlMsg{kind: cUnsubPeer, peer: child})
			}
		}
		// Forget old suspicions so a recovered peer becomes routable again.
		for id, when := range n.suspects {
			if now.Sub(when) > 4*cfg.DeadAfter {
				delete(n.suspects, id)
			}
		}
	} else if len(l.seenPeers) > 0 {
		peers := make([]int, 0, len(l.seenPeers))
		for p := range l.seenPeers {
			peers = append(peers, p)
		}
		clear(l.seenPeers)
		n.lanes[0].postCtrl(ctrlMsg{kind: cAlive, peers: peers})
	}
	// Retransmit unacknowledged reliable messages with doubling backoff;
	// at the deadline give up and escalate exactly like a keep-alive miss.
	// Retransmissions go out bare (not through the coalescer) so the
	// receiver acks them individually.
	for seq, e := range l.unacked {
		if now.After(e.deadline) {
			delete(l.unacked, seq)
			n.nw.stats.giveUps.Add(1)
			to := e.to
			l.putRel(e)
			l.escalate(to, now)
			continue
		}
		if now.After(e.retryAt) {
			e.backoff *= 2
			if limit := 8 * cfg.retransmitAfter(); e.backoff > limit {
				e.backoff = limit
			}
			e.retryAt = now.Add(e.backoff)
			n.nw.stats.retransmits.Add(1)
			n.nw.stats.retransmitsByKind[e.kind].Add(1)
			m := l.newMsg(e.kind, e.to)
			m.Seq = seq
			m.Subject, m.Old, m.New = e.subject, e.old, e.new
			m.Key = e.key
			m.Version, m.Expiry = e.version, e.expiry
			n.nw.tr.Send(m)
		}
	}
	// Settled or abandoned batch envelopes.
	for seq, b := range l.batches {
		if now.After(b.deadline) {
			delete(l.batches, seq)
			l.putRec(b)
		}
	}
	// Abandoned queries: the caller timed out long ago.
	for seq, p := range l.pending {
		if now.After(p.expires) {
			delete(l.pending, seq)
		}
	}
	// Interval boundary per key: interest loss (Figure 3 D).
	for _, k := range l.keys {
		sh := l.shards[k]
		if now.Sub(sh.intervalStart) >= cfg.TTL {
			if sh.st.Interested() && sh.count <= cfg.Threshold {
				l.emit(sh, sh.st.LoseInterest())
			}
			sh.count = 0
			sh.intervalStart = now
		}
	}
	l.maybeFinishLeave()
}

// suspected is the node's local failure-detector verdict, consulted by the
// directory when picking a replacement ancestor (on lane 0's goroutine).
func (n *node) suspected(id int) bool {
	_, ok := n.suspects[id]
	return ok
}

// pickReplacement chooses the replica-set replacement for a permanently
// dead member: the lowest-id directory member that is not already in the
// set, not this node (a leader cannot state-transfer to itself), not
// locally suspected and not itself on the dead list. -1 when the
// directory has nobody to offer.
func (n *node) pickReplacement(g *replica.Group, dead []int) int {
	members := g.Members()
	in := func(set []int, id int) bool {
		for _, m := range set {
			if m == id {
				return true
			}
		}
		return false
	}
	roster := n.nw.Members()
	sort.Ints(roster)
	for _, id := range roster {
		if id == n.id || in(members, id) || in(dead, id) || n.suspected(id) {
			continue
		}
		return id
	}
	return -1
}

// unsubscribePeer clears a dead or departed peer out of every keyed tree
// it subscribed to on this lane.
func (l *lane) unsubscribePeer(id int) {
	for _, k := range l.keys {
		sh := l.shards[k]
		if sh.st.Contains(id) {
			l.emit(sh, sh.st.HandleUnsubscribe(id))
		}
	}
}

// escalate reacts to a peer that stopped acknowledging reliable
// messages: treat it exactly like a keep-alive miss. On lane 0 that runs
// the full repair (a dead parent re-homes the node, cases 3/4/5; a dead
// DUP-tree neighbour is unsubscribed, case 2). A data lane splices the
// peer out of its own shards and reports the suspicion to lane 0, which
// owns the node-level verdict.
func (l *lane) escalate(to int, now time.Time) {
	n := l.n
	if l.idx != 0 {
		l.unsubscribePeer(to)
		n.lanes[0].postCtrl(ctrlMsg{kind: cSuspect, peer: to})
		return
	}
	n.suspects[to] = now
	if to == n.parent() {
		l.parentDied(now)
		return
	}
	delete(n.childSeen, to)
	l.unsubscribePeer(to)
	l.bcast(ctrlMsg{kind: cUnsubPeer, peer: to})
}

// onSuspect is lane 0's half of a data lane's escalation.
func (l *lane) onSuspect(peer int, now time.Time) {
	n := l.n
	n.suspects[peer] = now
	if peer == n.parent() {
		l.parentDied(now)
		return
	}
	delete(n.childSeen, peer)
	l.unsubscribePeer(peer)
	l.bcast(ctrlMsg{kind: cUnsubPeer, peer: peer})
}

// parentDied repairs after a keep-alive timeout (lane 0): re-home under
// the nearest believed-alive ancestor (the underlying DHT's routing
// repair), re-announce any virtual path per keyed tree (cases 3/4), or
// take over as authority when no root is left (case 5). Data lanes follow
// through cReparent or cRootLane.
func (l *lane) parentDied(now time.Time) {
	n := l.n
	n.sawParentAck(now) // do not re-trigger while repairing
	// A keep-alive repair restarts the soft-state clock too: the new
	// parent gets a full expiry to prove its path before beacons are due.
	n.rootSeqAtV.Store(now.UnixNano())
	old := n.parent()
	if old >= 0 {
		n.suspects[old] = now
		// Abandon reliable messages aimed at the dead parent: re-homing
		// re-announces the virtual path, which supersedes them.
		l.dropUnackedTo(old)
	}
	newParent := n.nw.dir.AliveAncestor(n.id, n.suspected)
	if newParent == -1 || newParent == n.id {
		if n.nw.dir.Promote(n.id) {
			l.becomeRoot(now, old)
		}
		return
	}
	n.setParent(newParent)
	n.nw.dir.SetParent(n.id, newParent)
	l.reannounce(newParent)
	l.bcast(ctrlMsg{kind: cReparent, parent: newParent, peer: old})
}

// dropUnackedTo abandons every reliable message queued for one peer.
func (l *lane) dropUnackedTo(to int) {
	for seq, e := range l.unacked {
		if e.to == to {
			delete(l.unacked, seq)
			l.putRel(e)
		}
	}
}

// reannounce re-subscribes this lane's virtual paths under a new parent.
func (l *lane) reannounce(parent int) {
	if parent < 0 {
		return
	}
	for _, k := range l.keys {
		sh := l.shards[k]
		if sh.st.OnVirtualPath() {
			l.n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := l.newMsg(proto.KindSubscribe, parent)
			m.Key = k
			m.Subject = sh.st.Representative()
			l.send(m)
		}
	}
}

// onReparent is a data lane's half of re-homing: lane 0 already updated
// the parent atomically, so drop the queue aimed at the old parent and
// re-announce this lane's virtual paths to the new one.
func (l *lane) onReparent(parent, old int) {
	if old >= 0 {
		l.dropUnackedTo(old)
	}
	l.reannounce(parent)
}

// announceRoot originates the root's soft-state beacon (lane 0): bump
// the root sequence and flood it to every keep-alive child. A replicated
// authority draws the sequence from its quorum group — term in the high
// bits, so it resumes strictly above every predecessor's — and only
// while it provably leads: a deposed or partitioned root falls silent,
// which is exactly what lets its old subtree's paths expire over to the
// live leader. A promoted non-replicated root continues one past the
// highest sequence it ever observed, keeping the stream monotone.
func (l *lane) announceRoot(now time.Time) {
	n := l.n
	if now.Sub(n.lastAnnounce) < n.nw.cfg.RootAnnounceEvery {
		return
	}
	seq := n.rootSeqV.Load() + 1
	if g := n.rep.Load(); g != nil {
		s, ok := g.NextAnnounce(now)
		if !ok {
			return // no live lease: stay silent
		}
		if s > seq {
			seq = s
		}
	}
	n.lastAnnounce = now
	n.rootSeqV.Store(seq)
	n.rootSeqAtV.Store(now.UnixNano())
	for child := range n.childSeen {
		l.sendBeacon(child, n.id, seq)
	}
}

// sendBeacon emits one root-announce frame. Best-effort by design: a
// lost beacon is refreshed by the next one, so beacons never enter the
// reliable queue.
func (l *lane) sendBeacon(to, root int, seq int64) {
	l.n.nw.stats.rootAnnounces.Add(1)
	m := l.newMsg(proto.KindRootAnnounce, to)
	m.Subject = root
	m.Seq = seq
	l.send(m)
}

// onRootAnnounce ingests a root-sequence beacon (lane 0). Any beacon
// refreshes the forwarding neighbour's freshness stat — proof it has a
// live path to the root, scored at selection time — but only a strictly
// newer sequence arriving from the current parent advances this node's
// own root path and propagates down: beacons from other neighbours must
// not keep a stale parent's path looking fresh.
func (l *lane) onRootAnnounce(m *proto.Message, now time.Time) {
	n := l.n
	if !n.nw.cfg.announceOn() || n.isRoot.Load() {
		return
	}
	n.peerStatFor(m.Origin).beaconAt.Store(now.UnixNano())
	if m.Origin != n.parent() || m.Seq <= n.rootSeqV.Load() {
		return
	}
	n.rootSeqV.Store(m.Seq)
	n.rootSeqAtV.Store(now.UnixNano())
	for child := range n.childSeen {
		if child != m.Origin {
			l.sendBeacon(child, m.Subject, m.Seq)
		}
	}
}

// expireRootPath repairs a root path whose sequence stopped advancing
// (lane 0): the parent still acks — it is alive — but everything above
// it has gone stale (an upstream partition, a deposed authority still
// chattering). Re-home under the best-scored alternative ancestor. The
// old parent is NOT suspected: the keep-alive detector (DeadAfter <
// RootExpireAfter by Validate) already had first claim on a truly dead
// one, and a merely-stale parent must stay routable for its own subtree.
func (l *lane) expireRootPath(now time.Time) {
	n := l.n
	old := n.parent()
	// Restart the expiry clock whatever happens below: with no better
	// candidate the node keeps its parent and re-evaluates one expiry
	// later.
	n.rootSeqAtV.Store(now.UnixNano())
	best := n.selectParent(old, now)
	if best < 0 || best == old {
		return
	}
	n.nw.stats.rootExpiries.Add(1)
	// Reliable traffic aimed at the stale parent is abandoned: re-homing
	// re-announces the virtual paths, which supersedes it.
	l.dropUnackedTo(old)
	n.setParent(best)
	n.nw.dir.SetParent(n.id, best)
	n.sawParentAck(now) // fresh keep-alive clock for the new parent
	l.reannounce(best)
	l.bcast(ctrlMsg{kind: cReparent, parent: best, peer: old})
}

// selectParent picks the replacement parent for an expired root path:
// walk the stale parent's ancestor chain (nearest first) plus the
// designated authority, skipping self, the stale parent and suspects,
// and keep the highest-scoring candidate. The strictly-greater
// comparison keeps ties on the nearest ancestor, so a chain with no
// observed history degrades to exactly the AliveAncestor choice.
func (n *node) selectParent(old int, now time.Time) int {
	best, bestScore := -1, 0.0
	consider := func(id int) {
		if id < 0 || id == n.id || id == old || n.suspected(id) {
			return
		}
		if s := n.scorePeer(id, now); best < 0 || s > bestScore {
			best, bestScore = id, s
		}
	}
	maxHops := n.nw.cfg.Nodes
	if maxHops <= 0 {
		maxHops = 1 << 12 // preset-tree configs leave Nodes unset
	}
	p := n.nw.dir.Parent(old)
	for hops := 0; p >= 0 && hops < maxHops; hops++ {
		consider(p)
		p = n.nw.dir.Parent(p)
	}
	consider(n.nw.dir.RootID())
	return best
}

// scorePeer ranks one candidate parent by observed delivery quality:
// ack reliability (with a +1 optimistic prior so a quiet neighbour is
// not punished for silence), smoothed ack latency normalised against the
// keep-alive period, and a freshness boost — up to 2x — for neighbours
// whose beacons arrived recently. An entirely unobserved candidate
// scores the neutral 1.0: better than a proven-lossy peer, worse than a
// proven-fresh one.
func (n *node) scorePeer(id int, now time.Time) float64 {
	ps := n.peerView(id)
	if ps == nil {
		return 1.0
	}
	sent, acked := ps.sent.Load(), ps.acked.Load()
	rel := float64(acked+1) / float64(sent+1)
	if rel > 1 {
		rel = 1
	}
	lat := 1.0
	if srtt := ps.srttNs.Load(); srtt > 0 {
		ka := float64(n.nw.cfg.KeepAliveEvery.Nanoseconds())
		lat = ka / (ka + float64(srtt))
	}
	fresh := 1.0
	if at := ps.beaconAt.Load(); at > 0 {
		age := float64(now.UnixNano() - at)
		if age < 0 {
			age = 0
		}
		exp := float64(n.nw.cfg.rootExpireAfter().Nanoseconds())
		fresh = 1 + exp/(exp+age)
	}
	return rel * lat * fresh
}

// becomeRoot is case 5 (lane 0): this node takes over the failed
// authority's indexes (every key, every lane) with refreshed information
// and resumes update propagation.
func (l *lane) becomeRoot(now time.Time, old int) {
	n := l.n
	n.setParent(-1)
	n.nw.dir.SetParent(n.id, -1)
	n.isRoot.Store(true)
	if n.nw.cfg.replicas() > 1 {
		// The new authority must win a quorum promise round before it may
		// expose versions: promotion floors its streams above everything
		// any quorum ever accepted. Replica-set members carry their group
		// from birth; a promoted outsider builds one here and leads from
		// outside the set (its quorum counts purely among the members).
		g := n.rep.Load()
		if g == nil {
			g = replica.New(n.replicaConfig())
			n.rep.Store(g)
		}
		if !g.Leading() {
			l.sendAll(g.StartCandidate(now))
		}
	}
	l.rootLane(now, old)
	l.bcast(ctrlMsg{kind: cRootLane, peer: old})
}

// abdicate is fail-over's losing side (lane 0): this directory-promoted
// root lost the quorum race — the replica group proved a live lease held
// by someone else — so it re-homes under the true leaseholder and goes
// back to being an inner node. Its subtree keeps resolving through it:
// whatever it exposed during its own brief lease survives as a cached
// copy, and the winner's floored stream re-enters through the renewed
// subscription.
func (l *lane) abdicate(to int, now time.Time) {
	n := l.n
	if g := n.rep.Load(); g != nil {
		// The abandoned candidacy must not keep escalating terms against
		// the leader this node is about to adopt.
		g.StandDown()
	}
	n.isRoot.Store(false)
	n.setParent(to)
	n.nw.dir.SetParent(n.id, to)
	n.sawParentAck(now) // fresh keep-alive clock for the new parent
	n.rootSeqAtV.Store(now.UnixNano())
	delete(n.suspects, to)
	l.abdicateLane(to, now)
	l.bcast(ctrlMsg{kind: cAbdicate, parent: to})
}

// abdicateLane applies an abdication to one lane's shards: back to inner-
// node serving, with the lost candidacy's exposures preserved as cached
// copies (per-site monotonicity: this node may never again resolve below
// a version it served as root).
func (l *lane) abdicateLane(parent int, now time.Time) {
	for _, k := range l.keys {
		sh := l.shards[k]
		sh.st.SetRoot(false)
		if sh.version > sh.cacheVer {
			sh.cacheVer, sh.cacheExp = sh.version, sh.expiry
			sh.haveCopy = true
		}
	}
	l.reannounce(parent)
}

// rootLane applies a promotion to one lane's shards: refresh every
// version past any cached copy and push. old (when >= 0) is the dead
// parent whose queued messages are abandoned.
func (l *lane) rootLane(now time.Time, old int) {
	if old >= 0 {
		l.dropUnackedTo(old)
	}
	rep := l.n.rep.Load()
	for _, k := range l.keys {
		sh := l.shards[k]
		sh.st.SetRoot(true)
		if sh.cacheVer > sh.version {
			sh.version = sh.cacheVer
		}
		if rep != nil {
			// Nothing is exposed or pushed yet: the expired schedule makes
			// the next tick bump through the replicated log, which floors
			// the stream above every version the old authority could have
			// served — the cached version is only a lower-bound hint.
			sh.expiry = now
			continue
		}
		sh.version++
		sh.expiry = now.Add(l.n.nw.cfg.TTL)
		l.pushOut(sh, sh.version, sh.expiry)
	}
}

// control processes one local injection.
func (l *lane) control(c ctrlMsg) {
	switch c.kind {
	case cQuery:
		l.localQuery(c)
	case cReset:
		l.reset(c.parent)
	case cBecomeRoot:
		l.becomeRoot(time.Now(), -1)
	case cInspect:
		c.info <- l.info(c.key)
	case cLeave:
		l.beginLeave(c)
	case cReboot:
		l.reboot(c.states)
	case cJoinKey:
		l.joinKey(c.key)
	case cLeaveKey:
		l.leaveKey(c.key)
	case cResetLane:
		l.resetLane()
	case cRootLane:
		l.rootLane(time.Now(), c.peer)
	case cAbdicate:
		l.abdicateLane(c.parent, time.Now())
	case cReparent:
		l.onReparent(c.parent, c.peer)
	case cAdoptLane:
		l.adoptLane(c.states, c.asRoot)
	case cLaneLeave:
		l.leaving = true
		l.leaveAnnounce()
		l.maybeFinishLeave()
	case cPeerJoin:
		l.onPeerJoin(c.peer)
	case cUnsubPeer:
		l.unsubscribePeer(c.peer)
	case cSuspect:
		l.onSuspect(c.peer, time.Now())
	case cAlive:
		now := time.Now()
		for _, p := range c.peers {
			if _, ok := l.n.childSeen[p]; ok {
				l.n.childSeen[p] = now
			}
		}
	}
}

// info snapshots one keyed shard's protocol state for Network.Inspect.
// Unacked counts the inspected key's lane only: each lane runs its own
// reliable queue, and with ShardLoops == 1 (the default) that is the
// whole node.
func (l *lane) info(key int) NodeInfo {
	n := l.n
	in := NodeInfo{
		ID:      n.id,
		Key:     key,
		Parent:  n.parent(),
		IsRoot:  n.isRoot.Load(),
		Dead:    n.dead.Load(),
		Keys:    n.keysSnapshot(),
		Unacked: len(l.unacked),
	}
	if n.nw.cfg.announceOn() {
		in.RootSeq = n.rootSeqV.Load()
		if at := n.rootSeqAtV.Load(); at > 0 {
			in.RootSeqAge = time.Since(time.Unix(0, at))
		}
	}
	sh, ok := l.shards[key]
	if !ok {
		return in
	}
	in.Interested = sh.st.Interested()
	in.Subscribers = append([]int(nil), sh.st.Subscribers()...)
	in.PushTargets = append([]int(nil), sh.st.PushTargets()...)
	if in.IsRoot {
		in.HaveCopy, in.Version, in.Expiry = true, sh.version, sh.expiry
	} else if sh.haveCopy {
		in.HaveCopy, in.Version, in.Expiry = true, sh.cacheVer, sh.cacheExp
	}
	return in
}

// drain releases whatever is still parked in one lane's inbox or
// unflushed outbox; called on the lane goroutine at quit and again by
// Stop after the goroutine exits (a handler may have raced one last
// message in).
func (l *lane) drain() {
	for _, to := range l.obOrder {
		for _, m := range l.obBins[to] {
			proto.Release(m)
		}
		l.obBins[to] = l.obBins[to][:0]
	}
	l.obOrder = l.obOrder[:0]
	for {
		select {
		case m := <-l.inbox:
			proto.Release(m)
		default:
			return
		}
	}
}

// drain drains every lane; Network.Stop calls it after the goroutines
// have exited.
func (n *node) drain() {
	for _, l := range n.lanes {
		l.drain()
	}
}

// handleMsg processes one protocol message; batched members skip the
// individual acknowledgement (the envelope was acked once for all of
// them) but still pass the dedup window. Each case either forwards m
// (ownership moves back to the transport) or falls through to the final
// Release.
func (l *lane) handleMsg(m *proto.Message, batched bool) {
	n := l.n
	if m.Kind == proto.KindBatch {
		if batched {
			proto.Release(m) // envelopes never nest
			return
		}
		l.onBatch(m)
		return
	}
	// Any message from a known keep-alive child proves it alive, which is
	// what lets busy children suppress their keep-alive frames entirely.
	// Lane 0 owns childSeen; data lanes accumulate origins and digest them
	// to lane 0 each tick.
	if l.idx == 0 {
		if _, ok := n.childSeen[m.Origin]; ok {
			n.childSeen[m.Origin] = time.Now()
		}
	} else {
		l.seenPeers[m.Origin] = struct{}{}
	}
	if m.Kind == proto.KindAck {
		l.onAck(m)
		proto.Release(m)
		return
	}
	// Reliable kinds with a seq are acknowledged; duplicates (a
	// retransmission whose original got through, or a transport-level
	// copy) are re-acked — the first ack may have been the loss — and
	// absorbed without touching protocol state. A node-level KindJoin is
	// the exception: it marks a new incarnation of the origin, whose
	// clock-seeded seq stream could overlap the previous incarnation's
	// window if its clock lags, so it is processed regardless (onJoin is
	// idempotent) and resets the origin's window.
	if reliableKind(m.Kind) && m.Seq > 0 {
		nodeJoin := m.Kind == proto.KindJoin && m.Key == 0
		if l.dedup(m.Origin, m.Seq) && !nodeJoin {
			n.nw.stats.dups.Add(1)
			n.nw.stats.dupsByKind[m.Kind].Add(1)
			if !batched {
				l.ackTo(m)
			}
			proto.Release(m)
			return
		}
		if !batched {
			l.ackTo(m)
		}
	}
	if replicaKind(m.Kind) {
		// Quorum-protocol traffic steps the replica group directly; the
		// Group is internally synchronised, so whichever lane the keyed
		// routing delivered to may step it. Nodes with no group (outside
		// the replica set, never promoted) drop the frame — except a
		// reconfiguration or state-transfer frame addressed to this node,
		// which is the leaseholder recruiting it as a replacement member:
		// that builds a learner group on the spot, which then adopts the
		// real member set and epoch from the frames themselves.
		g := n.rep.Load()
		if g == nil && n.nw.cfg.replicas() > 1 && m.To == n.id &&
			(m.Kind == proto.KindReconfig || m.Kind == proto.KindStateXfer) {
			fresh := replica.New(n.replicaConfig())
			if !n.rep.CompareAndSwap(nil, fresh) {
				fresh = n.rep.Load()
			}
			g = fresh
		}
		if g != nil {
			l.sendAll(g.Step(m, time.Now()))
		}
		proto.Release(m)
		return
	}
	switch m.Kind {
	case proto.KindRequest:
		l.onRequest(m)
		return
	case proto.KindReply:
		l.onReply(m)
		return
	case proto.KindPush:
		l.onPush(m)
	case proto.KindSubscribe:
		sh := l.shard(m.Key)
		l.emit(sh, sh.st.HandleSubscribe(m.Subject))
	case proto.KindUnsubscribe:
		sh := l.shard(m.Key)
		l.emit(sh, sh.st.HandleUnsubscribe(m.Subject))
	case proto.KindSubstitute:
		sh := l.shard(m.Key)
		l.emit(sh, sh.st.HandleSubstitute(m.Old, m.New))
	case proto.KindKeepAlive:
		n.childSeen[m.Origin] = time.Now()
		l.send(l.newMsg(proto.KindKeepAliveAck, m.Origin))
	case proto.KindKeepAliveAck:
		n.sawParentAck(time.Now())
		delete(n.suspects, m.Origin)
	case proto.KindRootAnnounce:
		if l.idx == 0 {
			l.onRootAnnounce(m, time.Now())
		}
	case proto.KindJoin:
		l.onJoin(m)
	case proto.KindLeave:
		l.onLeave(m)
	case proto.KindState:
		sh := l.shard(m.Key)
		l.storeIn(sh, m.Version, unixToTime(m.Expiry))
	}
	proto.Release(m)
}

// onBatch unpacks a coalescing envelope: acknowledge the envelope once
// (settling every reliable member at the sender), then process the
// members in order. Members are detached before the envelope is released
// so the pooled envelope cannot take them down with it. Routing by the
// envelope's strided seq (or its first member) delivered it to the lane
// that owns every member.
func (l *lane) onBatch(m *proto.Message) {
	if m.Seq > 0 {
		a := l.newMsg(proto.KindAck, m.Origin)
		a.Seq = m.Seq
		a.Subject = int(proto.KindBatch)
		l.send(a)
	}
	subs := m.Batch
	m.Batch = m.Batch[:0]
	for i, sub := range subs {
		subs[i] = nil
		if sub != nil {
			l.handleMsg(sub, true)
		}
	}
	proto.Release(m)
}

// onJoin adopts a joining (or recovering) child into the keep-alive
// fabric and answers with best-effort state transfers, so the joiner
// holds servable index copies without waiting out a TTL of misses. A
// node-level join (key 0, always lane 0) resets the origin's incarnation
// and transfers every key's state — the data lanes theirs via cPeerJoin;
// a key-scoped join transfers just that key.
func (l *lane) onJoin(m *proto.Message) {
	now := time.Now()
	n := l.n
	if l.idx == 0 {
		n.childSeen[m.Origin] = now
		delete(n.suspects, m.Origin)
	}
	if m.Key != 0 {
		if sh, ok := l.shards[m.Key]; ok {
			l.transferState(sh, m.Origin, now)
		}
		return
	}
	// A join starts the origin's incarnation afresh: drop the dedup window
	// its predecessor filled, so the newcomer's messages can never be
	// absorbed as duplicates of messages it never sent.
	delete(l.seen, m.Origin)
	for _, k := range l.keys {
		l.transferState(l.shards[k], m.Origin, now)
	}
	l.bcast(ctrlMsg{kind: cPeerJoin, peer: m.Origin})
}

// onPeerJoin is a data lane's half of a node-level join: reset the
// peer's dedup window for this lane's seq stream and transfer this
// lane's keys.
func (l *lane) onPeerJoin(peer int) {
	now := time.Now()
	delete(l.seen, peer)
	for _, k := range l.keys {
		l.transferState(l.shards[k], peer, now)
	}
}

// transferState sends one key's valid index copy to a joiner.
func (l *lane) transferState(sh *shard, to int, now time.Time) {
	v, exp, ok := l.valid(sh, now)
	if !ok {
		return
	}
	s := l.newMsg(proto.KindState, to)
	s.Key = sh.key
	s.Version = v
	s.Expiry = timeToUnix(exp)
	l.send(s)
}

// onLeave handles a peer's departure announcement. A key-scoped leave
// splices the departing node out of that key's subscriber list only —
// substitute its remaining representative (Figure 3 C) or unsubscribe the
// branch (Figure 3 E). A node-level leave (key 0, always lane 0)
// additionally retires the origin from the keep-alive fabric; from the
// parent it triggers immediate re-homing — the same repair a keep-alive
// death would cause, minus the detection delay. A departing multi-key
// node sends one leave per key, key 0 last, so the per-key splices land
// before the node-level effects.
func (l *lane) onLeave(m *proto.Message) {
	now := time.Now()
	n := l.n
	if sh, ok := l.shards[m.Key]; ok && sh.st.Contains(m.Origin) {
		if m.Subject >= 0 && m.Subject != n.id {
			l.emit(sh, sh.st.HandleSubstitute(m.Origin, m.Subject))
		} else {
			l.emit(sh, sh.st.HandleUnsubscribe(m.Origin))
		}
	}
	if m.Key != 0 {
		return
	}
	delete(n.childSeen, m.Origin)
	delete(l.seen, m.Origin) // a departed peer's window is dead state
	n.suspects[m.Origin] = now
	if m.Origin == n.parent() {
		l.parentDied(now)
	}
}

// ackTo acknowledges a reliable message back to its sender.
func (l *lane) ackTo(m *proto.Message) {
	a := l.newMsg(proto.KindAck, m.Origin)
	a.Seq = m.Seq
	a.Subject = int(m.Kind)
	l.send(a)
}

// dedup records the (origin, seq) pair and reports a duplicate. Windows
// are per lane: with strided seq streams each lane only ever sees the
// slice of an origin's seqs congruent to its own index.
func (l *lane) dedup(origin int, seq int64) bool {
	w := l.seen[origin]
	if w == nil {
		w = &seqWindow{seen: map[int64]struct{}{}, limit: l.n.nw.cfg.dedupWindow()}
		l.seen[origin] = w
	}
	return w.observe(seq)
}

// settle removes one reliable message from the retransmit queue if origin
// is the peer it was sent to, counting the ack.
func (l *lane) settle(seq int64, origin int) bool {
	e, ok := l.unacked[seq]
	if !ok || e.to != origin {
		return false
	}
	delete(l.unacked, seq)
	l.n.nw.stats.acks.Add(1)
	l.n.nw.stats.acksByKind[e.kind].Add(1)
	if e.ps != nil {
		e.ps.acked.Add(1)
		if rtt := time.Since(e.sentAt).Nanoseconds(); rtt > 0 {
			if old := e.ps.srttNs.Load(); old == 0 {
				e.ps.srttNs.Store(rtt)
			} else {
				// EWMA with gain 1/8; a racing store from another lane loses
				// one sample, which the next ack smooths over anyway.
				e.ps.srttNs.Store(old - old/8 + rtt/8)
			}
		}
	}
	l.putRel(e)
	return true
}

// onAck settles reliable messages: the peer has them. A batch-envelope
// ack settles every reliable member the envelope carried in one step. An
// ack is also a liveness proof at least as good as a keep-alive ack.
func (l *lane) onAck(m *proto.Message) {
	n := l.n
	settled := false
	if m.Subject == int(proto.KindBatch) {
		b, ok := l.batches[m.Seq]
		if !ok {
			return
		}
		delete(l.batches, m.Seq)
		for _, seq := range b.seqs {
			if l.settle(seq, m.Origin) {
				settled = true
			}
		}
		l.putRec(b)
	} else {
		settled = l.settle(m.Seq, m.Origin)
	}
	if !settled {
		return // late ack for a settled or abandoned message
	}
	if l.idx == 0 {
		delete(n.suspects, m.Origin)
	}
	if m.Origin == n.parent() {
		n.sawParentAck(time.Now())
	}
	l.maybeFinishLeave()
}

// sendJoin announces this node to its parent (lane 0): a reliable
// KindJoin carrying the membership epoch, answered by per-key state
// transfers when the parent holds valid copies.
func (l *lane) sendJoin() {
	parent := l.n.parent()
	if parent < 0 {
		return
	}
	m := l.newMsg(proto.KindJoin, parent)
	if dyn, ok := l.n.nw.dir.(Dynamic); ok {
		m.Version = int64(dyn.Epoch())
	}
	l.send(m)
}

// joinKey makes this node a participant in one keyed index tree: create
// the shard and announce it upstream (key-scoped KindJoin, answered by a
// state transfer when the parent holds a valid copy of that key).
func (l *lane) joinKey(key int) {
	l.shard(key)
	parent := l.n.parent()
	if key == 0 || parent < 0 {
		return
	}
	m := l.newMsg(proto.KindJoin, parent)
	m.Key = key
	if dyn, ok := l.n.nw.dir.(Dynamic); ok {
		m.Version = int64(dyn.Epoch())
	}
	l.send(m)
}

// leaveKey departs one keyed index tree: withdraw interest, tell the
// parent how to splice this node out of that key's subscriber list, and
// drop the shard. Key 0 is the node's own existence — use Network.Leave.
// Downstream subscribers of the dropped key self-heal: their queries still
// route through this node (routing is node-level), and a later push or
// request for the key lazily recreates the shard.
func (l *lane) leaveKey(key int) {
	if key == 0 {
		return
	}
	sh, ok := l.shards[key]
	if !ok {
		return
	}
	if sh.st.Interested() {
		l.emit(sh, sh.st.LoseInterest())
	}
	parent := l.n.parent()
	if parent >= 0 && sh.st.OnVirtualPath() {
		rep := -1
		if subs := sh.st.Subscribers(); len(subs) == 1 && subs[0] != l.n.id {
			rep = subs[0]
		}
		m := l.newMsg(proto.KindLeave, parent)
		m.Key = key
		m.Subject = rep
		l.send(m)
	}
	l.dropShard(key)
}

// beginLeave starts a graceful departure (lane 0): every lane withdraws
// interest the ordinary way (Figure 3 D) and tells the parent how to
// splice this node out of its keyed subscriber lists — lane 0's key-0
// leave carries the node-level departure and goes last within its lane —
// and the keep-alive children are told to re-home now rather than after a
// detection timeout. The node keeps running — acking, retransmitting —
// until every lane's departure announcements are acknowledged;
// maybeFinishLeave then signals the waiting Network.Leave.
func (l *lane) beginLeave(c ctrlMsg) {
	n := l.n
	if n.leaving {
		if c.done != nil {
			close(c.done)
		}
		return
	}
	n.leaving = true
	n.leaveDone = c.done
	n.leaveLanes.Store(int32(len(n.lanes)))
	l.leaving = true
	for _, dl := range n.lanes[1:] {
		if !dl.postCtrl(ctrlMsg{kind: cLaneLeave}) {
			n.laneLeaveDone()
		}
	}
	l.leaveAnnounce()
	for _, child := range c.children {
		if child == n.id {
			continue
		}
		m := l.newMsg(proto.KindLeave, child)
		m.Subject = -1
		l.send(m)
	}
	l.maybeFinishLeave()
}

// leaveAnnounce withdraws this lane's interest and announces its per-key
// departures upstream. With exactly one remaining subscriber the parent
// can substitute it in place (Figure 3 C). With more, no single node
// represents the branch: the parent unsubscribes it and the re-homed
// children re-announce their own virtual paths. One leave per key; keys
// are sorted ascending and lane 0 always holds key 0, so iterating in
// reverse puts the node-level (key 0) leave last.
func (l *lane) leaveAnnounce() {
	n := l.n
	for _, k := range l.keys {
		sh := l.shards[k]
		if sh.st.Interested() {
			l.emit(sh, sh.st.LoseInterest())
		}
	}
	parent := n.parent()
	if parent < 0 {
		return
	}
	for i := len(l.keys) - 1; i >= 0; i-- {
		k := l.keys[i]
		sh := l.shards[k]
		if k != 0 && !sh.st.OnVirtualPath() {
			continue
		}
		rep := -1
		if subs := sh.st.Subscribers(); len(subs) == 1 && subs[0] != n.id {
			rep = subs[0]
		}
		m := l.newMsg(proto.KindLeave, parent)
		m.Key = k
		m.Subject = rep
		l.send(m)
	}
}

// maybeFinishLeave reports this lane's part of a pending departure done
// once nothing reliable is left unacknowledged (the retransmit deadline
// bounds how long that can take: give-ups empty the queue too). The last
// lane to drain closes the waiter's channel.
func (l *lane) maybeFinishLeave() {
	if !l.leaving || l.leaveSent || len(l.unacked) != 0 {
		return
	}
	l.leaveSent = true
	l.n.laneLeaveDone()
}

func (n *node) laneLeaveDone() {
	if n.leaveLanes.Add(-1) == 0 && n.leaveDone != nil {
		close(n.leaveDone)
	}
}

// reboot models a crash-and-restart (lane 0): blank in-memory state, then
// resume from the durable per-key records as a restarted process would.
// Cold reboots (no records) come back like a plain recovery.
func (l *lane) reboot(states []store.NodeState) {
	n := l.n
	if len(states) > 0 {
		n.adopt(states, true)
		l.sendJoin()
		return
	}
	if n.nw.dir.RootID() == n.id {
		l.becomeRoot(time.Now(), -1)
		return
	}
	l.reset(n.nw.dir.Parent(n.id))
	l.sendJoin()
}

// adopt restores durable state recorded by a previous incarnation, one
// record per key. A still-designated authority resumes its exact
// pre-crash versions with fresh TTLs and immediately re-pushes them
// (subscribers accept an equal version, so the trees learn the authority
// is back without a version regression). Any other node re-homes under
// its recorded parent, adopts its recorded subscriber lists, and
// re-announces interest upstream per key. Records are partitioned to the
// lanes that own their keys; at boot (runtime false, no goroutines yet)
// lanes adopt directly, at runtime lane 0 adopts its own slice and fans
// the rest out via cAdoptLane.
func (n *node) adopt(states []store.NodeState, runtime bool) {
	if len(states) == 0 {
		return
	}
	// Role and parent are node-level, so every key's record agrees on them.
	asRoot := states[0].IsRoot && n.nw.dir.RootID() == n.id
	parent := -1
	if !asRoot {
		parent = states[0].Parent
		if parent < 0 || parent == n.id {
			parent = n.nw.dir.Parent(n.id)
		}
	}
	if g := n.rep.Load(); g != nil && !asRoot {
		// Resuming as a non-root: drop any pre-crash leadership or
		// candidacy so a stale high-term incarnation cannot depose the
		// live authority (same rule as reset).
		g.StandDown()
	}
	n.isRoot.Store(asRoot)
	n.setParent(parent)
	n.nw.dir.SetParent(n.id, parent)
	now := time.Now()
	n.sawParentAck(now)
	n.rootSeqAtV.Store(now.UnixNano())
	clear(n.childSeen)
	clear(n.suspects)
	parts := make([][]store.NodeState, len(n.lanes))
	for _, ns := range states {
		li := n.laneForKey(ns.Key).idx
		parts[li] = append(parts[li], ns)
	}
	if !runtime {
		for i, l := range n.lanes {
			l.adoptLane(parts[i], asRoot)
		}
		return
	}
	n.lanes[0].adoptLane(parts[0], asRoot)
	for i := 1; i < len(n.lanes); i++ {
		// Every data lane gets the injection even with no records: the
		// resetLane half still applies.
		n.lanes[i].postCtrl(ctrlMsg{kind: cAdoptLane, states: parts[i], asRoot: asRoot})
	}
}

// adoptLane applies one lane's slice of the durable records: blank the
// lane, then resume as authority or as subscriber per key.
func (l *lane) adoptLane(states []store.NodeState, asRoot bool) {
	n := l.n
	l.resetLane()
	now := time.Now()
	parent := n.parent()
	for _, ns := range states {
		sh := l.shard(ns.Key)
		if asRoot {
			sh.st.SetRoot(true)
			for _, s := range ns.Subscribers {
				if s != n.id {
					sh.st.AdoptSubscriber(s)
				}
			}
			sh.version = ns.Version
			if n.rep.Load() != nil {
				// A replicated authority resuming from disk may hold a
				// stale (or torn) journal: nothing is served or pushed
				// until the quorum promise round floors the stream, then
				// the next tick bumps through the replicated log.
				sh.expiry = now
				continue
			}
			sh.expiry = now.Add(n.nw.cfg.TTL)
			l.pushOut(sh, sh.version, sh.expiry)
			continue
		}
		interested := false
		for _, s := range ns.Subscribers {
			if s == n.id {
				interested = true
				continue
			}
			sh.st.AdoptSubscriber(s)
		}
		if interested {
			l.emit(sh, sh.st.BecomeInterested())
		} else if sh.st.OnVirtualPath() && parent >= 0 {
			// Re-announce the virtual path: the parent may have dropped
			// this branch while the node was down.
			n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := l.newMsg(proto.KindSubscribe, parent)
			m.Key = ns.Key
			m.Subject = sh.st.Representative()
			l.send(m)
		}
		if exp := unixToTime(ns.Expiry); exp.After(now) {
			sh.haveCopy, sh.cacheVer, sh.cacheExp = true, ns.Version, exp
		}
	}
}

// record journals the lane's durable state when it changed since the last
// record — one record per keyed shard: the lane loop calls it after every
// message, control injection and tick, so the journal tracks parent,
// role, version and subscriber lists without the protocol paths knowing
// about persistence.
func (l *lane) record() {
	n := l.n
	if n.nw.journal == nil || n.dead.Load() {
		return
	}
	parent := n.parent()
	isRoot := n.isRoot.Load()
	for _, k := range l.keys {
		sh := l.shards[k]
		ns := store.NodeState{ID: n.id, Key: k, Parent: parent, IsRoot: isRoot}
		if ns.IsRoot {
			ns.Version, ns.Expiry = sh.version, timeToUnix(sh.expiry)
		} else if sh.haveCopy {
			ns.Version, ns.Expiry = sh.cacheVer, timeToUnix(sh.cacheExp)
		}
		subs := sh.st.Subscribers()
		if sh.recValid && ns.Parent == sh.lastRec.Parent && ns.IsRoot == sh.lastRec.IsRoot &&
			ns.Version == sh.lastRec.Version && ns.Expiry == sh.lastRec.Expiry &&
			equalInts(subs, sh.lastRec.Subscribers) {
			continue
		}
		ns.Subscribers = append([]int(nil), subs...)
		sh.lastRec = ns
		sh.recValid = true
		n.nw.journal.Record(ns)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset blanks the node after recovery and re-homes it under parent
// (lane 0): node-level liveness clears here, every lane blanks its
// shards — data lanes through cResetLane.
func (l *lane) reset(parent int) {
	n := l.n
	if g := n.rep.Load(); g != nil {
		// Rejoining as a non-root: any leadership or candidacy this
		// incarnation held is over. Without this, a revived ex-root whose
		// partitioned candidacy escalated the term would steal the lease
		// from the legitimate authority the moment it reconnects.
		g.StandDown()
	}
	n.isRoot.Store(false)
	n.setParent(parent)
	n.nw.dir.SetParent(n.id, parent)
	n.sawParentAck(time.Now())
	n.rootSeqAtV.Store(time.Now().UnixNano())
	clear(n.childSeen)
	clear(n.suspects)
	l.resetLane()
	l.bcast(ctrlMsg{kind: cResetLane})
}

// resetLane blanks one lane's protocol state: the underlying process
// restarted. It drops the retransmit queue (those messages described
// pre-failure state) but keeps the dedup windows and relSeq: peers' seq
// streams continue across our recovery, and ours must not restart.
func (l *lane) resetLane() {
	now := time.Now()
	for _, k := range l.keys {
		sh := l.shards[k]
		sh.st.Reset()
		sh.st.SetRoot(false)
		sh.haveCopy = false
		sh.lastPushed = -1
		sh.count = 0
		sh.intervalStart = now
	}
	clear(l.pending)
	for seq, e := range l.unacked {
		delete(l.unacked, seq)
		l.putRel(e)
	}
	for seq, b := range l.batches {
		delete(l.batches, seq)
		l.putRec(b)
	}
}

// valid reports whether the node can serve one key's index right now,
// returning the version and expiry it would serve. A replicated
// authority additionally needs a live quorum lease and an unexpired
// version: a promoted or lease-less root refusing to serve (the caller
// retries) is what keeps resolved versions monotone across fail-over.
func (l *lane) valid(sh *shard, now time.Time) (int64, time.Time, bool) {
	if l.n.isRoot.Load() {
		if g := l.n.rep.Load(); g != nil && (!g.MayServe(now) || !sh.expiry.After(now)) {
			return 0, time.Time{}, false
		}
		return sh.version, sh.expiry, true
	}
	if sh.haveCopy && now.Before(sh.cacheExp) {
		return sh.cacheVer, sh.cacheExp, true
	}
	return 0, time.Time{}, false
}

// access counts a query arrival on one key and applies the interest-gain
// policy (Figure 3 A).
func (l *lane) access(sh *shard) {
	sh.count++
	if sh.count > l.n.nw.cfg.Threshold && !sh.st.Interested() && !l.n.isRoot.Load() {
		l.emit(sh, sh.st.BecomeInterested())
	}
}

// localQuery serves a query generated at this node, or sends a request
// upstream and parks the caller in pending until the reply retraces.
func (l *lane) localQuery(c ctrlMsg) {
	n := l.n
	sh := l.shard(c.key)
	l.access(sh)
	n.nw.stats.queries.Add(1)
	sh.kc.queries.Add(1)
	now := time.Now()
	if v, _, ok := l.valid(sh, now); ok {
		n.nw.stats.localHits.Add(1)
		sh.kc.localHits.Add(1)
		c.res <- QueryResult{Version: v, Hops: 0, Local: true}
		return
	}
	l.nextSeq++
	l.pending[l.nextSeq] = pendingQuery{res: c.res, expires: c.deadline}
	m := l.newMsg(proto.KindRequest, n.parent())
	m.Key = c.key
	m.Seq = l.nextSeq
	m.Hops = 1
	m.Path = append(m.Path, n.id)
	l.send(m)
}

// onRequest serves the query if possible, otherwise forwards it upstream.
func (l *lane) onRequest(m *proto.Message) {
	sh := l.shard(m.Key)
	l.access(sh)
	now := time.Now()
	if v, exp, ok := l.valid(sh, now); ok {
		// Turn the request into the reply and retrace the path; the origin
		// completes the waiting query when it arrives.
		last := len(m.Path) - 1
		if last < 0 {
			proto.Release(m)
			return
		}
		m.Kind = proto.KindReply
		m.To = m.Path[last]
		m.Path = m.Path[:last]
		m.Version = v
		m.Expiry = timeToUnix(exp)
		l.send(m)
		return
	}
	if l.n.isRoot.Load() {
		// The authority always serves; only a mid-fail-over vacuum gets
		// here, and the query times out and is retried by the caller.
		proto.Release(m)
		return
	}
	m.Path = append(m.Path, l.n.id)
	m.Hops++
	m.To = l.n.parent()
	l.send(m)
}

// onReply caches the index and keeps retracing the request path; at the
// origin it completes the pending query.
func (l *lane) onReply(m *proto.Message) {
	sh := l.shard(m.Key)
	l.storeIn(sh, m.Version, unixToTime(m.Expiry))
	if len(m.Path) == 0 {
		if p, ok := l.pending[m.Seq]; ok {
			delete(l.pending, m.Seq)
			l.n.nw.stats.queryHops.Add(int64(m.Hops))
			sh.kc.queryHops.Add(int64(m.Hops))
			p.res <- QueryResult{Version: m.Version, Hops: m.Hops}
		}
		proto.Release(m)
		return
	}
	last := len(m.Path) - 1
	m.To = m.Path[last]
	m.Path = m.Path[:last]
	l.send(m)
}

// onPush refreshes the key's cache and forwards across that key's DUP
// tree.
func (l *lane) onPush(m *proto.Message) {
	sh := l.shard(m.Key)
	l.n.nw.stats.pushes.Add(1)
	sh.kc.pushes.Add(1)
	exp := unixToTime(m.Expiry)
	l.storeIn(sh, m.Version, exp)
	if m.Version > sh.lastPushed {
		sh.lastPushed = m.Version
		l.pushOut(sh, m.Version, exp)
	}
}

// pushOut sends version v directly to every push target of one key's DUP
// tree.
func (l *lane) pushOut(sh *shard, v int64, exp time.Time) {
	for _, target := range sh.st.PushTargets() {
		m := l.newMsg(proto.KindPush, target)
		m.Key = sh.key
		m.Version = v
		m.Expiry = timeToUnix(exp)
		l.send(m)
	}
}

// storeIn updates one key's cached copy, ignoring stale versions.
func (l *lane) storeIn(sh *shard, v int64, exp time.Time) {
	if sh.haveCopy && v < sh.cacheVer {
		return
	}
	sh.haveCopy = true
	sh.cacheVer = v
	sh.cacheExp = exp
}

// emit sends one shard's state-machine actions to the current parent.
func (l *lane) emit(sh *shard, acts []core.Action) {
	parent := l.n.parent()
	for _, a := range acts {
		switch a.Kind {
		case core.SendSubscribe:
			l.n.nw.stats.subscribes.Add(1)
			sh.kc.subscribes.Add(1)
			m := l.newMsg(proto.KindSubscribe, parent)
			m.Key = sh.key
			m.Subject = a.Subject
			l.send(m)
		case core.SendUnsubscribe:
			m := l.newMsg(proto.KindUnsubscribe, parent)
			m.Key = sh.key
			m.Subject = a.Subject
			l.send(m)
		case core.SendSubstitute:
			l.n.nw.stats.substitutes.Add(1)
			sh.kc.substitutes.Add(1)
			m := l.newMsg(proto.KindSubstitute, parent)
			m.Key = sh.key
			m.Old, m.New = a.Old, a.New
			l.send(m)
		}
	}
}
