package live

import (
	"sync/atomic"
	"time"

	"dup/internal/core"
	"dup/internal/proto"
	"dup/internal/transport"
)

// ctrlKind enumerates local control injections (never on the wire).
type ctrlKind uint8

const (
	cQuery      ctrlKind = iota // external query injection
	cReset                      // recovery: blank state, adopt new parent
	cBecomeRoot                 // case 5: take over as authority
)

// ctrlMsg is one local control injection from the Network into a node.
type ctrlMsg struct {
	kind     ctrlKind
	parent   int
	res      chan QueryResult
	deadline time.Time
}

// pendingQuery is a query issued at this node that is waiting for its
// reply to retrace the request path back here.
type pendingQuery struct {
	res     chan QueryResult
	expires time.Time
}

// node is one live peer. All fields below the channel block are owned by
// the node's goroutine. Protocol messages arrive through the transport
// handler into inbox; control injections (query, reset, become-root)
// arrive from the hosting Network through ctrl.
type node struct {
	nw    *Network
	id    int
	inbox chan *proto.Message
	ctrl  chan ctrlMsg
	quit  chan struct{}

	dead   atomic.Bool
	isRoot atomic.Bool

	parent int
	st     *core.State

	// Query correlation: queries born here wait in pending, keyed by the
	// Seq their request carried.
	nextSeq int64
	pending map[int64]pendingQuery

	// Cached index copy.
	haveCopy   bool
	cacheVer   int64
	cacheExp   time.Time
	lastPushed int64

	// Authority state (root only).
	version int64
	expiry  time.Time

	// Access tracking (interest policy).
	count         int
	intervalStart time.Time

	// Liveness. suspects holds peers this node has watched miss their
	// keep-alive window; the directory skips them when re-homing.
	lastAck   time.Time
	childSeen map[int]time.Time
	suspects  map[int]time.Time
}

func newNode(nw *Network, id, parent int) *node {
	n := &node{
		nw:         nw,
		id:         id,
		inbox:      make(chan *proto.Message, 256),
		ctrl:       make(chan ctrlMsg, 16),
		quit:       make(chan struct{}),
		parent:     parent,
		st:         core.NewState(id, parent == -1),
		pending:    map[int64]pendingQuery{},
		lastPushed: -1,
		childSeen:  map[int]time.Time{},
		suspects:   map[int]time.Time{},
	}
	if parent == -1 {
		n.isRoot.Store(true)
	}
	return n
}

// handler is the node's transport-facing inbox: it takes ownership of
// accepted messages (the node goroutine releases them after handling) and
// refuses delivery — so the transport counts a drop — when the node is
// dead or the inbox is full.
func (n *node) handler() transport.Handler {
	return func(m *proto.Message) bool {
		if n.dead.Load() {
			return false
		}
		select {
		case n.inbox <- m:
			return true
		default:
			return false
		}
	}
}

// postCtrl delivers a control injection unless the node is wedged.
func (n *node) postCtrl(c ctrlMsg) bool {
	select {
	case n.ctrl <- c:
		return true
	default:
		return false
	}
}

// newMsg builds an outbound message; the transport owns it after Send.
func (n *node) newMsg(kind proto.Kind, to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = kind
	m.To = to
	m.Origin = n.id
	return m
}

// timeToUnix and unixToTime convert between the node's monotonic-friendly
// time.Time state and the float64 unix seconds that cross the wire.
func timeToUnix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

func unixToTime(f float64) time.Time {
	if f == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(f*1e9))
}

// run is the node's goroutine body.
func (n *node) run() {
	defer n.nw.wg.Done()
	now := time.Now()
	n.intervalStart = now
	n.lastAck = now
	if n.isRoot.Load() {
		n.version = 0
		n.expiry = now.Add(n.nw.cfg.TTL)
	}
	tick := time.NewTicker(n.nw.cfg.KeepAliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			return
		case m := <-n.inbox:
			if n.dead.Load() {
				proto.Release(m) // raced in just before death
				continue
			}
			n.handle(m)
		case c := <-n.ctrl:
			n.control(c)
		case <-tick.C:
			if !n.dead.Load() {
				n.tick(time.Now())
			}
		}
	}
}

// tick runs the periodic work: the authority refresh schedule, keep-alives
// with parent-death detection, child-death detection, and the
// interest-loss policy at interval boundaries.
func (n *node) tick(now time.Time) {
	cfg := n.nw.cfg
	if n.isRoot.Load() {
		if now.After(n.expiry.Add(-cfg.Lead)) {
			n.version++
			n.expiry = now.Add(cfg.TTL)
			n.pushOut(n.version, n.expiry)
		}
	} else {
		// Keep-alive to the parent; declare it dead after the timeout.
		n.nw.stats.keepAlive.Add(1)
		if n.parent >= 0 {
			n.nw.tr.Send(n.newMsg(proto.KindKeepAlive, n.parent))
		}
		if now.Sub(n.lastAck) > cfg.DeadAfter {
			n.parentDied(now)
		}
	}
	// Child-death detection (case 2: the upstream virtual-path neighbour
	// notices and clears the path).
	for child, seen := range n.childSeen {
		if now.Sub(seen) > cfg.DeadAfter {
			delete(n.childSeen, child)
			if n.st.Contains(child) {
				n.emit(n.st.HandleUnsubscribe(child))
			}
		}
	}
	// Forget old suspicions so a recovered peer becomes routable again.
	for id, when := range n.suspects {
		if now.Sub(when) > 4*cfg.DeadAfter {
			delete(n.suspects, id)
		}
	}
	// Abandoned queries: the caller timed out long ago.
	for seq, p := range n.pending {
		if now.After(p.expires) {
			delete(n.pending, seq)
		}
	}
	// Interval boundary: interest loss (Figure 3 D).
	if now.Sub(n.intervalStart) >= cfg.TTL {
		if n.st.Interested() && n.count <= cfg.Threshold {
			n.emit(n.st.LoseInterest())
		}
		n.count = 0
		n.intervalStart = now
	}
}

// suspected is the node's local failure-detector verdict, consulted by the
// directory when picking a replacement ancestor.
func (n *node) suspected(id int) bool {
	_, ok := n.suspects[id]
	return ok
}

// parentDied repairs after a keep-alive timeout: re-home under the nearest
// believed-alive ancestor (the underlying DHT's routing repair),
// re-announce any virtual path (cases 3/4), or take over as authority when
// no root is left (case 5).
func (n *node) parentDied(now time.Time) {
	n.lastAck = now // do not re-trigger while repairing
	if n.parent >= 0 {
		n.suspects[n.parent] = now
	}
	newParent := n.nw.dir.AliveAncestor(n.id, n.suspected)
	if newParent == -1 || newParent == n.id {
		if n.nw.dir.Promote(n.id) {
			n.becomeRoot(now)
		}
		return
	}
	n.parent = newParent
	n.nw.dir.SetParent(n.id, newParent)
	if n.st.OnVirtualPath() {
		n.nw.stats.subscribes.Add(1)
		m := n.newMsg(proto.KindSubscribe, newParent)
		m.Subject = n.st.Representative()
		n.nw.tr.Send(m)
	}
}

// becomeRoot is case 5: this node takes over the failed authority's index
// with refreshed information and resumes update propagation.
func (n *node) becomeRoot(now time.Time) {
	n.parent = -1
	n.nw.dir.SetParent(n.id, -1)
	n.st.SetRoot(true)
	n.isRoot.Store(true)
	if n.cacheVer > n.version {
		n.version = n.cacheVer
	}
	n.version++
	n.expiry = now.Add(n.nw.cfg.TTL)
	n.pushOut(n.version, n.expiry)
}

// control processes one local injection from the hosting Network.
func (n *node) control(c ctrlMsg) {
	switch c.kind {
	case cQuery:
		n.localQuery(c)
	case cReset:
		n.reset(c.parent)
	case cBecomeRoot:
		n.becomeRoot(time.Now())
	}
}

// handle processes one protocol message. The node owns m here: each case
// either forwards it (ownership moves back to the transport) or falls
// through to the final Release.
func (n *node) handle(m *proto.Message) {
	switch m.Kind {
	case proto.KindRequest:
		n.onRequest(m)
		return
	case proto.KindReply:
		n.onReply(m)
		return
	case proto.KindPush:
		n.onPush(m)
	case proto.KindSubscribe:
		n.emit(n.st.HandleSubscribe(m.Subject))
	case proto.KindUnsubscribe:
		n.emit(n.st.HandleUnsubscribe(m.Subject))
	case proto.KindSubstitute:
		n.emit(n.st.HandleSubstitute(m.Old, m.New))
	case proto.KindKeepAlive:
		n.childSeen[m.Origin] = time.Now()
		n.nw.tr.Send(n.newMsg(proto.KindKeepAliveAck, m.Origin))
	case proto.KindKeepAliveAck:
		n.lastAck = time.Now()
		delete(n.suspects, m.Origin)
	}
	proto.Release(m)
}

// reset blanks the node after recovery and re-homes it under parent.
func (n *node) reset(parent int) {
	n.st.Reset()
	n.st.SetRoot(false)
	n.isRoot.Store(false)
	n.parent = parent
	n.nw.dir.SetParent(n.id, parent)
	n.haveCopy = false
	n.lastPushed = -1
	n.count = 0
	n.intervalStart = time.Now()
	n.lastAck = time.Now()
	clear(n.childSeen)
	clear(n.suspects)
	clear(n.pending)
}

// valid reports whether the node can serve the index right now, returning
// the version and expiry it would serve.
func (n *node) valid(now time.Time) (int64, time.Time, bool) {
	if n.isRoot.Load() {
		return n.version, n.expiry, true
	}
	if n.haveCopy && now.Before(n.cacheExp) {
		return n.cacheVer, n.cacheExp, true
	}
	return 0, time.Time{}, false
}

// access counts a query arrival and applies the interest-gain policy
// (Figure 3 A).
func (n *node) access() {
	n.count++
	if n.count > n.nw.cfg.Threshold && !n.st.Interested() && !n.isRoot.Load() {
		n.emit(n.st.BecomeInterested())
	}
}

// localQuery serves a query generated at this node, or sends a request
// upstream and parks the caller in pending until the reply retraces.
func (n *node) localQuery(c ctrlMsg) {
	n.access()
	n.nw.stats.queries.Add(1)
	now := time.Now()
	if v, _, ok := n.valid(now); ok {
		n.nw.stats.localHits.Add(1)
		c.res <- QueryResult{Version: v, Hops: 0, Local: true}
		return
	}
	n.nextSeq++
	n.pending[n.nextSeq] = pendingQuery{res: c.res, expires: c.deadline}
	m := n.newMsg(proto.KindRequest, n.parent)
	m.Seq = n.nextSeq
	m.Hops = 1
	m.Path = append(m.Path, n.id)
	n.nw.tr.Send(m)
}

// onRequest serves the query if possible, otherwise forwards it upstream.
func (n *node) onRequest(m *proto.Message) {
	n.access()
	now := time.Now()
	if v, exp, ok := n.valid(now); ok {
		// Turn the request into the reply and retrace the path; the origin
		// completes the waiting query when it arrives.
		last := len(m.Path) - 1
		if last < 0 {
			proto.Release(m)
			return
		}
		m.Kind = proto.KindReply
		m.To = m.Path[last]
		m.Path = m.Path[:last]
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.nw.tr.Send(m)
		return
	}
	if n.isRoot.Load() {
		// The authority always serves; only a mid-fail-over vacuum gets
		// here, and the query times out and is retried by the caller.
		proto.Release(m)
		return
	}
	m.Path = append(m.Path, n.id)
	m.Hops++
	m.To = n.parent
	n.nw.tr.Send(m)
}

// onReply caches the index and keeps retracing the request path; at the
// origin it completes the pending query.
func (n *node) onReply(m *proto.Message) {
	n.store(m.Version, unixToTime(m.Expiry))
	if len(m.Path) == 0 {
		if p, ok := n.pending[m.Seq]; ok {
			delete(n.pending, m.Seq)
			n.nw.stats.queryHops.Add(int64(m.Hops))
			p.res <- QueryResult{Version: m.Version, Hops: m.Hops}
		}
		proto.Release(m)
		return
	}
	last := len(m.Path) - 1
	m.To = m.Path[last]
	m.Path = m.Path[:last]
	n.nw.tr.Send(m)
}

// onPush refreshes the cache and forwards across the DUP tree.
func (n *node) onPush(m *proto.Message) {
	n.nw.stats.pushes.Add(1)
	exp := unixToTime(m.Expiry)
	n.store(m.Version, exp)
	if m.Version > n.lastPushed {
		n.lastPushed = m.Version
		n.pushOut(m.Version, exp)
	}
}

// pushOut sends version v directly to every DUP-tree push target.
func (n *node) pushOut(v int64, exp time.Time) {
	for _, target := range n.st.PushTargets() {
		m := n.newMsg(proto.KindPush, target)
		m.Version = v
		m.Expiry = timeToUnix(exp)
		n.nw.tr.Send(m)
	}
}

// store updates the cached copy, ignoring stale versions.
func (n *node) store(v int64, exp time.Time) {
	if n.haveCopy && v < n.cacheVer {
		return
	}
	n.haveCopy = true
	n.cacheVer = v
	n.cacheExp = exp
}

// emit sends the state machine's upstream actions to the current parent.
func (n *node) emit(acts []core.Action) {
	for _, a := range acts {
		switch a.Kind {
		case core.SendSubscribe:
			n.nw.stats.subscribes.Add(1)
			m := n.newMsg(proto.KindSubscribe, n.parent)
			m.Subject = a.Subject
			n.nw.tr.Send(m)
		case core.SendUnsubscribe:
			m := n.newMsg(proto.KindUnsubscribe, n.parent)
			m.Subject = a.Subject
			n.nw.tr.Send(m)
		case core.SendSubstitute:
			n.nw.stats.substitutes.Add(1)
			m := n.newMsg(proto.KindSubstitute, n.parent)
			m.Old, m.New = a.Old, a.New
			n.nw.tr.Send(m)
		}
	}
}
