// Package live runs the DUP protocol on a real concurrent network: one
// goroutine per peer, messages delivered through a pluggable transport
// (in-process channels or TCP sockets, dup/internal/transport), periodic
// keep-alives with ack-based failure detection, and the paper's Section
// III-C recovery — including case 5, authority (root) fail-over.
//
// Where the discrete-event simulator (dup/internal/sim) reproduces the
// paper's measurements, this package demonstrates that the same protocol
// state machine (dup/internal/core) drives a working system under true
// concurrency. Start boots a self-contained cluster on the in-process
// transport; StartWith accepts any Transport and Directory, which is how
// cmd/dupd runs the identical state machine over real sockets and how the
// tests boot a multi-Network loopback cluster.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/replica"
	"dup/internal/rng"
	"dup/internal/store"
	"dup/internal/topology"
	"dup/internal/transport"
)

// Config parametrises a live network.
type Config struct {
	// Nodes and MaxDegree shape the index search tree (node 0 is the
	// authority node for the index).
	Nodes     int
	MaxDegree int
	// TTL is the index version lifetime; the authority refreshes and
	// pushes Lead before each expiry.
	TTL  time.Duration
	Lead time.Duration
	// Threshold is the interest threshold c per TTL interval.
	Threshold int
	// HopDelay is the mean injected link latency (in-process transport
	// only; a TCP transport has real latency instead).
	HopDelay time.Duration
	// KeepAliveEvery is the keep-alive period; a peer that misses acks
	// for DeadAfter is declared failed.
	KeepAliveEvery time.Duration
	DeadAfter      time.Duration
	// RootAnnounceEvery is the soft-state tree beacon period: the authority
	// bumps a root sequence number that often and floods it down the
	// keep-alive tree, and every node re-advertises its root path by
	// forwarding the beacon to its children. Zero disables announces — the
	// tree is pure hard state repaired by keep-alive misses, byte-identical
	// on the wire to the pre-announce protocol.
	RootAnnounceEvery time.Duration
	// RootExpireAfter is how long a node lets its observed root sequence
	// stall before declaring its root path stale and re-selecting a parent
	// by score (announce freshness, ack reliability, smoothed delivery
	// latency per neighbour). Zero means 4 × RootAnnounceEvery. It must
	// exceed DeadAfter so the keep-alive failure detector gets first shot
	// at a genuinely dead parent.
	RootExpireAfter time.Duration
	// RetransmitAfter is the initial backoff before an unacknowledged
	// reliable message (push, subscribe, unsubscribe, substitute) is sent
	// again; it doubles per retry. Zero means KeepAliveEvery.
	RetransmitAfter time.Duration
	// RetransmitDeadline bounds how long a reliable message may stay
	// unacknowledged before the sender gives up and escalates into the
	// Section III-C repair path. Zero means DeadAfter.
	RetransmitDeadline time.Duration
	// MaxUnacked bounds the per-node retransmit queue; beyond it reliable
	// messages go out untracked and count as give-ups. Zero means 256.
	MaxUnacked int
	// DedupWindow is how many recent sequence numbers a receiver remembers
	// per origin when absorbing retransmissions and transport duplicates.
	// Zero means 128.
	DedupWindow int
	// InboxDepth is the per-node inbound message buffer; when it is full
	// the transport counts a drop. Zero means 256.
	InboxDepth int
	// DrainBatch bounds how many inbox messages one lane wakeup handles:
	// after blocking on one receive the lane opportunistically drains up
	// to DrainBatch-1 more before recording state and flushing its
	// outbox, so per-wakeup costs amortize across the burst the way the
	// TCP writer's gather amortizes the write syscall. Zero means 64; 1
	// restores strict message-at-a-time handling. Pure scheduling — no
	// effect on the wire image.
	DrainBatch int
	// Keys is how many keyed index trees every hosted node participates in
	// at boot (keys 0..Keys-1, each with its own DUP tree, authority
	// schedule and interest window over the shared routing tree). Zero
	// means 1 — the single-index protocol, byte-identical on the wire to
	// the pre-multi-key format. Nodes also pick up keys lazily when
	// traffic for them arrives, and per node via JoinKey/LeaveKey.
	Keys int
	// ShardLoops runs each hosted node as that many parallel receive/ctrl
	// loops ("lanes"), partitioning its keyed shards by key modulo the
	// lane count so independent keys process on independent cores. Lane 0
	// keeps the node-level fabric (parent, keep-alives, failure
	// detection, membership). Reliable sequence numbers are strided by
	// lane, which is how receivers route acknowledgements without parsing
	// payloads — so, like Nodes, MaxDegree and Seed, every process of a
	// cluster must use the same ShardLoops. Zero means 1: one loop per
	// node, byte-identical behaviour to the unsharded protocol.
	ShardLoops int
	// Replicas is how many nodes replicate each key's authority version
	// stream (nodes 0..Replicas-1, the replica set of every key). With
	// Replicas R >= 2 the authority holds a quorum lease and appends every
	// version it exposes to a replicated update log before (or within a
	// bounded reserve ahead of) quorum acknowledgement, so losing the
	// authority's disk cannot regress the stream: fail-over floors the new
	// authority's versions above everything any quorum ever accepted. Zero
	// or one means no replication — byte-identical on the wire to the
	// pre-replica protocol. Like Nodes and Seed, every process of a
	// cluster must use the same Replicas.
	Replicas int
	// PermanentAfter is the permanent-failure horizon for replica-set
	// members: when the leaseholder has heard nothing from a member for
	// this long it proposes replacing it through the two-phase quorum
	// reconfiguration, drawing the replacement from the directory. It
	// must exceed DeadAfter — keep-alive suspicion is restartable, this
	// is the verdict that the machine is gone for good. Zero disables
	// automatic replacement (membership only changes via recovery or an
	// operator). Only meaningful with Replicas >= 2.
	PermanentAfter time.Duration
	// Seed drives topology generation and latency jitter. Every process
	// of a multi-process cluster must use the same Seed (and Nodes and
	// MaxDegree) so they derive the same tree.
	Seed uint64
	// Tree optionally overrides topology generation, e.g. with an index
	// search tree extracted from a Chord ring or CAN torus
	// (overlay/chord.ExtractTree, overlay/can.ExtractTree). Node 0 must be
	// the root. Nodes is ignored when set.
	Tree *topology.Tree
}

// DefaultConfig returns a small, fast test-scale network.
func DefaultConfig() Config {
	return Config{
		Nodes:          64,
		MaxDegree:      4,
		TTL:            400 * time.Millisecond,
		Lead:           80 * time.Millisecond,
		Threshold:      3,
		HopDelay:       time.Millisecond,
		KeepAliveEvery: 40 * time.Millisecond,
		DeadAfter:      150 * time.Millisecond,
		// Beacon at a quarter of the TTL; paths expire after four missed
		// beacons (RootExpireAfter zero = 4 × RootAnnounceEvery = 400ms),
		// past DeadAfter so keep-alive detection still fires first on a
		// dead parent.
		RootAnnounceEvery: 100 * time.Millisecond,
		MaxUnacked:        256,
		DedupWindow:       128,
		InboxDepth:        256,
		Seed:              1,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Tree == nil && c.Nodes < 2:
		return fmt.Errorf("live: need at least 2 nodes, got %d", c.Nodes)
	case c.Tree != nil && c.Tree.N() < 2:
		return fmt.Errorf("live: preset tree needs at least 2 nodes, got %d", c.Tree.N())
	case c.MaxDegree < 1:
		return fmt.Errorf("live: need MaxDegree >= 1, got %d", c.MaxDegree)
	case c.TTL <= 0 || c.Lead < 0 || c.Lead >= c.TTL:
		return fmt.Errorf("live: need 0 <= Lead < TTL, got TTL=%v Lead=%v", c.TTL, c.Lead)
	case c.Threshold < 0:
		return fmt.Errorf("live: need Threshold >= 0, got %d", c.Threshold)
	case c.HopDelay < 0:
		return fmt.Errorf("live: need HopDelay >= 0, got %v", c.HopDelay)
	case c.KeepAliveEvery <= 0 || c.DeadAfter <= c.KeepAliveEvery:
		return fmt.Errorf("live: need DeadAfter > KeepAliveEvery > 0, got %v, %v",
			c.DeadAfter, c.KeepAliveEvery)
	case c.RootAnnounceEvery < 0 || c.RootExpireAfter < 0:
		return fmt.Errorf("live: need RootAnnounceEvery and RootExpireAfter >= 0, got %v, %v",
			c.RootAnnounceEvery, c.RootExpireAfter)
	case c.RootAnnounceEvery == 0 && c.RootExpireAfter != 0:
		return fmt.Errorf("live: RootExpireAfter needs RootAnnounceEvery > 0, got %v, %v",
			c.RootExpireAfter, c.RootAnnounceEvery)
	case c.RootAnnounceEvery > 0 && c.RootAnnounceEvery >= c.TTL:
		return fmt.Errorf("live: need RootAnnounceEvery < TTL, got %v, %v",
			c.RootAnnounceEvery, c.TTL)
	case c.RootAnnounceEvery > 0 && c.rootExpireAfter() <= c.RootAnnounceEvery:
		return fmt.Errorf("live: need RootExpireAfter > RootAnnounceEvery, got %v, %v",
			c.rootExpireAfter(), c.RootAnnounceEvery)
	case c.RootAnnounceEvery > 0 && c.rootExpireAfter() <= c.DeadAfter:
		return fmt.Errorf("live: need RootExpireAfter > DeadAfter, got %v, %v",
			c.rootExpireAfter(), c.DeadAfter)
	case c.RetransmitAfter < 0 || c.RetransmitDeadline < 0:
		return fmt.Errorf("live: need RetransmitAfter and RetransmitDeadline >= 0, got %v, %v",
			c.RetransmitAfter, c.RetransmitDeadline)
	case c.retransmitDeadline() <= c.retransmitAfter():
		return fmt.Errorf("live: need RetransmitDeadline > RetransmitAfter, got %v, %v",
			c.retransmitDeadline(), c.retransmitAfter())
	case c.MaxUnacked < 0 || c.DedupWindow < 0 || c.InboxDepth < 0:
		return fmt.Errorf("live: need MaxUnacked, DedupWindow and InboxDepth >= 0, got %d, %d, %d",
			c.MaxUnacked, c.DedupWindow, c.InboxDepth)
	case c.DrainBatch < 0:
		return fmt.Errorf("live: need DrainBatch >= 0, got %d", c.DrainBatch)
	case c.Keys < 0:
		return fmt.Errorf("live: need Keys >= 0, got %d", c.Keys)
	case c.ShardLoops < 0:
		return fmt.Errorf("live: need ShardLoops >= 0, got %d", c.ShardLoops)
	case c.Replicas < 0:
		return fmt.Errorf("live: need Replicas >= 0, got %d", c.Replicas)
	case c.PermanentAfter < 0:
		return fmt.Errorf("live: need PermanentAfter >= 0, got %v", c.PermanentAfter)
	case c.PermanentAfter > 0 && c.PermanentAfter <= c.DeadAfter:
		return fmt.Errorf("live: need PermanentAfter > DeadAfter, got %v, %v",
			c.PermanentAfter, c.DeadAfter)
	case c.Tree == nil && c.Nodes >= 2 && c.Replicas > c.Nodes:
		return fmt.Errorf("live: need Replicas <= Nodes, got %d > %d", c.Replicas, c.Nodes)
	case c.Tree != nil && c.Replicas > c.Tree.N():
		return fmt.Errorf("live: need Replicas <= tree size, got %d > %d", c.Replicas, c.Tree.N())
	}
	return nil
}

// maxUnacked resolves the effective retransmit-queue bound.
func (c *Config) maxUnacked() int {
	if c.MaxUnacked > 0 {
		return c.MaxUnacked
	}
	return 256
}

// dedupWindow resolves the effective per-origin dedup window size.
func (c *Config) dedupWindow() int {
	if c.DedupWindow > 0 {
		return c.DedupWindow
	}
	return 128
}

// inboxDepth resolves the effective inbound buffer depth.
func (c *Config) inboxDepth() int {
	if c.InboxDepth > 0 {
		return c.InboxDepth
	}
	return 256
}

// drainBatch resolves the effective per-wakeup inbox drain bound.
func (c *Config) drainBatch() int {
	if c.DrainBatch > 0 {
		return c.DrainBatch
	}
	return 64
}

// keys resolves the effective boot-time key count.
func (c *Config) keys() int {
	if c.Keys > 0 {
		return c.Keys
	}
	return 1
}

// replicas resolves the effective authority replication factor.
func (c *Config) replicas() int {
	if c.Replicas > 0 {
		return c.Replicas
	}
	return 1
}

// shardLoops resolves the effective lane count per node.
func (c *Config) shardLoops() int {
	if c.ShardLoops > 0 {
		return c.ShardLoops
	}
	return 1
}

// rootExpireAfter resolves the effective root-path staleness bound:
// four beacon periods, stretched past DeadAfter when a config slows the
// keep-alive detector down — that detector must keep first claim on a
// truly dead parent, so the default expiry always sits above it.
func (c *Config) rootExpireAfter() time.Duration {
	if c.RootExpireAfter > 0 {
		return c.RootExpireAfter
	}
	e := 4 * c.RootAnnounceEvery
	if e <= c.DeadAfter {
		e = 2 * c.DeadAfter
	}
	return e
}

// announceOn reports whether the soft-state tree beacon is enabled.
func (c *Config) announceOn() bool { return c.RootAnnounceEvery > 0 }

// retransmitAfter resolves the effective initial retransmit backoff.
func (c *Config) retransmitAfter() time.Duration {
	if c.RetransmitAfter > 0 {
		return c.RetransmitAfter
	}
	return c.KeepAliveEvery
}

// retransmitDeadline resolves the effective retransmit give-up bound.
func (c *Config) retransmitDeadline() time.Duration {
	if c.RetransmitDeadline > 0 {
		return c.RetransmitDeadline
	}
	return c.DeadAfter
}

// BuildTree returns the index search tree the configuration describes: the
// preset Tree when set, otherwise a deterministic function of Nodes,
// MaxDegree and Seed — so every process of a cluster derives the same one.
func (c *Config) BuildTree() *topology.Tree {
	if c.Tree != nil {
		return c.Tree
	}
	return topology.Generate(c.Nodes, c.MaxDegree, rng.New(c.Seed).Split())
}

// QueryResult is the outcome of one index query.
type QueryResult struct {
	Version int64
	Hops    int  // hops the request travelled before reaching a valid index
	Local   bool // served from the querying node's own cache
}

// Stats aggregates network-wide counters. In a multi-process cluster each
// Network counts only its hosted nodes' activity.
type Stats struct {
	Queries     int64
	QueryHops   int64
	LocalHits   int64
	Pushes      int64
	Subscribes  int64
	Substitutes int64
	KeepAlives  int64
	// Drops counts messages the transport dropped (dead or unreachable
	// nodes, full queues, injected faults); DropsByKind breaks it down by
	// message kind.
	Drops       int64
	DropsByKind [proto.NumKinds]int64
	// Receive-path pressure: InboxDrops counts inbound messages the
	// hosted nodes refused (dead node, or the owning lane's inbox full —
	// the signal that InboxDepth or ShardLoops is undersized for the
	// load); InboxBurstMax and InboxBurstMean describe how many messages
	// one lane wakeup drained from its inbox — a mean near 1 is an idle
	// cluster, a mean near Config.DrainBatch a saturated one.
	InboxDrops     int64
	InboxBurstMax  int64
	InboxBurstMean float64
	// Delivery guarantees: Retransmits counts re-sent reliable messages,
	// Acks counts acknowledgements received back, DupSuppressed counts
	// retransmitted or duplicated copies the receiver recognised and
	// absorbed, and RetransmitGiveUps counts reliable sends abandoned at
	// the retransmit deadline (each escalates into the Section III-C
	// repair path). The ByKind arrays are indexed by proto.Kind.
	Retransmits         int64
	RetransmitsByKind   [proto.NumKinds]int64
	Acks                int64
	AcksByKind          [proto.NumKinds]int64
	DupSuppressed       int64
	DupSuppressedByKind [proto.NumKinds]int64
	RetransmitGiveUps   int64
	// Soft-state tree: RootAnnounces counts beacons sent (root bumps plus
	// downstream forwards), RootExpiries counts root paths a node timed out
	// because the observed root sequence stalled, each re-homing the node
	// under the best-scored ancestor instead of waiting for a keep-alive
	// miss. Zero when Config.RootAnnounceEvery is 0.
	RootAnnounces int64
	RootExpiries  int64
	// Replication health (zero unless a node hosted here currently leads a
	// replica quorum): ReplicaLag is the widest gap between a key's log
	// head and the version a quorum has durably accepted; ReserveHeadroom
	// is how much of the version-reserve lease remains before the leader
	// would have to block on quorum acknowledgement.
	ReplicaLag      int64
	ReserveHeadroom int64
	// Quorum reconfiguration health (zero values unless a hosted node
	// carries a replica group): ConfigEpoch is the highest membership
	// epoch any hosted member has adopted and QuorumMembers that epoch's
	// member count; PermSuspects is how many members the hosted
	// leaseholder currently sees silent past Config.PermanentAfter;
	// ReconfigInFlight reports a membership change still in progress on
	// any hosted member (a proposal running, or a joint config awaiting
	// its final commit).
	ConfigEpoch      int64
	QuorumMembers    int
	PermSuspects     int
	ReconfigInFlight bool
}

// KeyStats aggregates one keyed index tree's counters across the nodes
// this Network hosts. The per-key counters are additive slices of the
// corresponding global Stats fields: summing a field over every key that
// carries traffic yields the global count.
type KeyStats struct {
	Key         int
	Queries     int64
	QueryHops   int64
	LocalHits   int64
	Pushes      int64
	Subscribes  int64
	Substitutes int64
}

// keyCounters is the mutable registry entry behind KeyStats, shared by
// every hosted shard of one key.
type keyCounters struct {
	queries, queryHops, localHits   atomic.Int64
	pushes, subscribes, substitutes atomic.Int64
}

// Options parametrises StartWith: which transport carries the messages,
// which directory stands in for the underlying DHT, and which node ids
// this Network hosts. Several Networks (or several processes) hosting
// disjoint id sets over a shared transport fabric form one cluster.
type Options struct {
	// Transport carries the protocol messages. The Network takes
	// ownership and closes it on Stop.
	Transport transport.Transport
	// Directory is the DHT routing stand-in. In-process clusters share
	// one MemDirectory; cross-process clusters each hold a
	// StaticDirectory over the same tree.
	Directory Directory
	// Hosts lists the node ids this Network runs. Ids must be in
	// [0, tree size). Hosts may be empty: such a Network starts with no
	// nodes and populates itself through Join.
	Hosts []int
	// Journal, when set, receives a durable state record every time a
	// hosted node's protocol state (parent, role, version, subscriber
	// list) changes. dupd wires a file-backed store.Store here; the chaos
	// harness a store.Mem.
	Journal store.Journal
	// Recovered seeds hosted nodes with state a previous incarnation
	// recorded, one record per keyed index tree: the authority resumes its
	// versions, subscribers re-adopt their lists and re-sync via a
	// join/state-transfer exchange.
	Recovered map[int][]store.NodeState
	// RecoveredReplicas seeds hosted replica-set members with the
	// replicated update log a previous incarnation accepted (one record
	// per keyed index tree, as recorded by a store.ReplicaJournal). Only
	// meaningful with Config.Replicas >= 2; a recovering authority
	// re-runs the quorum promise round before exposing versions, so a
	// stale or lost log never regresses the stream.
	RecoveredReplicas map[int][]store.ReplicaState
	// RecoveredConfigs seeds hosted replica-set members with the durable
	// membership record a previous incarnation journalled (as recorded by
	// a store.ReplicaConfigJournal), so every member reboots into the
	// config epoch it had adopted — including a joint config journalled
	// mid-reconfiguration, which the leaseholder resumes and commits. A
	// node whose record names it a member builds its replica group from
	// the record even when its id lies outside the seed set 0..Replicas-1
	// (it was admitted as a replacement).
	RecoveredConfigs map[int]store.ReplicaConfig
}

// Network runs the hosted subset of a live cluster.
type Network struct {
	cfg     Config
	tr      transport.Transport
	dir     Directory
	journal store.Journal

	// mu guards the mutable membership below: hosted grows on Join and
	// shrinks on Leave, size tracks the highest id ever seen.
	mu     sync.RWMutex
	size   int // total cluster size, hosted or not
	hosted map[int]*node
	left   []*node // departed nodes, drained once more at Stop

	// kmu guards the lazily-populated per-key counter registry.
	kmu      sync.RWMutex
	keyStats map[int]*keyCounters

	stats struct {
		queries, queryHops, localHits              atomic.Int64
		pushes, subscribes, substitutes, keepAlive atomic.Int64
		retransmits, acks, dups, giveUps           atomic.Int64
		rootAnnounces, rootExpiries                atomic.Int64
		inboxDrops                                 atomic.Int64
		burstMax, burstSum, burstN                 atomic.Int64
		retransmitsByKind                          [proto.NumKinds]atomic.Int64
		acksByKind                                 [proto.NumKinds]atomic.Int64
		dupsByKind                                 [proto.NumKinds]atomic.Int64
	}

	stopped atomic.Bool
	wg      sync.WaitGroup
}

// ErrTimeout is returned when a query is not answered in time (e.g. its
// route passed through a failed node before repair finished).
var ErrTimeout = errors.New("live: query timed out")

// Start boots a self-contained network: builds the index search tree,
// wires every node over the in-process transport with injected link
// latency, and begins the authority's refresh schedule.
func Start(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tree := cfg.BuildTree()
	tr := transport.NewChan(transport.ChanConfig{HopDelay: cfg.HopDelay, Seed: cfg.Seed})
	hosts := make([]int, tree.N())
	for i := range hosts {
		hosts[i] = i
	}
	// The dynamic directory keeps MemDirectory's oracle semantics and
	// additionally supports live Join/Leave.
	return boot(cfg, tree, tr, NewDynDirectory(tree, cfg.MaxDegree), hosts, Options{})
}

// StartWith boots the hosted part of a cluster over the given transport
// and directory. The same state machine runs whether the transport is
// in-process channels or TCP sockets; cmd/dupd is StartWith plus flags.
func StartWith(cfg Config, opts Options) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Transport == nil || opts.Directory == nil {
		return nil, errors.New("live: StartWith needs a Transport and a Directory")
	}
	tree := cfg.BuildTree()
	for _, id := range opts.Hosts {
		if id < 0 || id >= tree.N() {
			return nil, fmt.Errorf("live: hosted node %d outside tree of %d", id, tree.N())
		}
	}
	return boot(cfg, tree, opts.Transport, opts.Directory, opts.Hosts, opts)
}

func boot(cfg Config, tree *topology.Tree, tr transport.Transport, dir Directory, hosts []int, opts Options) (*Network, error) {
	nw := &Network{
		cfg:      cfg,
		tr:       tr,
		dir:      dir,
		journal:  opts.Journal,
		size:     tree.N(),
		hosted:   make(map[int]*node, len(hosts)),
		keyStats: make(map[int]*keyCounters),
	}
	now := time.Now()
	for _, id := range hosts {
		if nw.hosted[id] != nil {
			return nil, fmt.Errorf("live: node %d hosted twice", id)
		}
		n := newNode(nw, id, dir.Parent(id))
		for k := 1; k < cfg.keys(); k++ {
			n.laneForKey(k).addShard(k, now)
		}
		if states, ok := opts.Recovered[id]; ok {
			// Restore the previous incarnation's durable state before the
			// goroutines start; the node re-announces itself (join +
			// state-transfer) once running.
			n.adopt(states, false)
			n.announce = true
		}
		if rc, ok := opts.RecoveredConfigs[id]; ok {
			// A journalled membership record can make a node a replica-set
			// member even when its id lies outside the seed set (it was
			// admitted as a replacement before the reboot).
			if n.rep.Load() == nil && cfg.replicas() > 1 && memberOf(rc, id) {
				n.rep.Store(replica.New(n.replicaConfig()))
			}
			if g := n.rep.Load(); g != nil {
				g.RestoreConfig(rc)
			}
		}
		if rs := opts.RecoveredReplicas[id]; len(rs) > 0 {
			if g := n.rep.Load(); g != nil {
				g.Restore(rs)
			}
		}
		nw.hosted[id] = n
		tr.Register(id, n.handler())
		if br, ok := tr.(transport.BurstRegistrar); ok {
			br.RegisterBurst(id, n.burstHandler())
		}
	}
	for _, n := range nw.hosted {
		for _, l := range n.lanes {
			nw.wg.Add(1)
			go l.run()
		}
	}
	return nw, nil
}

// Stop shuts the network down: closes the transport, waits for every
// hosted node goroutine, and releases messages still parked in inboxes so
// pooled-message accounting stays balanced.
func (nw *Network) Stop() {
	if nw.stopped.Swap(true) {
		return
	}
	nw.tr.Close()
	nw.mu.Lock()
	hosted := make([]*node, 0, len(nw.hosted))
	for _, n := range nw.hosted {
		hosted = append(hosted, n)
	}
	left := nw.left
	nw.mu.Unlock()
	for _, n := range hosted {
		n.stop()
	}
	nw.wg.Wait()
	for _, n := range hosted {
		n.drain()
	}
	// Departed nodes drained themselves at exit, but a handler may have
	// raced one last message in before deregistration took effect.
	for _, n := range left {
		n.drain()
	}
}

// Stats returns a snapshot of the network counters.
func (nw *Network) Stats() Stats {
	s := Stats{
		Queries:           nw.stats.queries.Load(),
		QueryHops:         nw.stats.queryHops.Load(),
		LocalHits:         nw.stats.localHits.Load(),
		Pushes:            nw.stats.pushes.Load(),
		Subscribes:        nw.stats.subscribes.Load(),
		Substitutes:       nw.stats.substitutes.Load(),
		KeepAlives:        nw.stats.keepAlive.Load(),
		Drops:             nw.tr.Drops(),
		DropsByKind:       nw.tr.KindDrops(),
		Retransmits:       nw.stats.retransmits.Load(),
		Acks:              nw.stats.acks.Load(),
		DupSuppressed:     nw.stats.dups.Load(),
		RetransmitGiveUps: nw.stats.giveUps.Load(),
		RootAnnounces:     nw.stats.rootAnnounces.Load(),
		RootExpiries:      nw.stats.rootExpiries.Load(),
		InboxDrops:        nw.stats.inboxDrops.Load(),
		InboxBurstMax:     nw.stats.burstMax.Load(),
	}
	if n := nw.stats.burstN.Load(); n > 0 {
		s.InboxBurstMean = float64(nw.stats.burstSum.Load()) / float64(n)
	}
	for k := 0; k < proto.NumKinds; k++ {
		s.RetransmitsByKind[k] = nw.stats.retransmitsByKind[k].Load()
		s.AcksByKind[k] = nw.stats.acksByKind[k].Load()
		s.DupSuppressedByKind[k] = nw.stats.dupsByKind[k].Load()
	}
	now := time.Now()
	nw.mu.RLock()
	for _, n := range nw.hosted {
		g := n.rep.Load()
		if g == nil {
			continue
		}
		if lag, headroom, leading := g.ReserveStatus(); leading {
			if lag > s.ReplicaLag {
				s.ReplicaLag = lag
			}
			if s.ReserveHeadroom == 0 || headroom < s.ReserveHeadroom {
				s.ReserveHeadroom = headroom
			}
		}
		if e := g.Epoch(); s.QuorumMembers == 0 || e > s.ConfigEpoch {
			s.ConfigEpoch = e
			s.QuorumMembers = len(g.Members())
		}
		if g.ReconfigInFlight() {
			s.ReconfigInFlight = true
		}
		if nw.cfg.PermanentAfter > 0 {
			if d := len(g.DeadMembers(now, nw.cfg.PermanentAfter)); d > s.PermSuspects {
				s.PermSuspects = d
			}
		}
	}
	nw.mu.RUnlock()
	return s
}

// memberOf reports whether id belongs to a journalled membership record
// (either half of a joint config).
func memberOf(rc store.ReplicaConfig, id int) bool {
	for _, m := range rc.New {
		if m == id {
			return true
		}
	}
	for _, m := range rc.Old {
		if m == id {
			return true
		}
	}
	return false
}

// kc returns the counter registry entry for one key, creating it on first
// touch. Shards cache the returned pointer, so the lock is off the hot
// path.
func (nw *Network) kc(key int) *keyCounters {
	nw.kmu.RLock()
	c := nw.keyStats[key]
	nw.kmu.RUnlock()
	if c != nil {
		return c
	}
	nw.kmu.Lock()
	defer nw.kmu.Unlock()
	if c = nw.keyStats[key]; c == nil {
		c = &keyCounters{}
		nw.keyStats[key] = c
	}
	return c
}

// StatsKey returns one keyed index tree's counter snapshot.
//
// Deprecated: use Network.Key(key).Stats instead.
func (nw *Network) StatsKey(key int) KeyStats {
	return nw.Key(key).Stats()
}

// Keys returns every key that has a counter registry entry on this
// Network (every key any hosted node ever sharded), sorted ascending.
func (nw *Network) Keys() []int {
	nw.kmu.RLock()
	out := make([]int, 0, len(nw.keyStats))
	for k := range nw.keyStats {
		out = append(out, k)
	}
	nw.kmu.RUnlock()
	sort.Ints(out)
	return out
}

// NodeInfo is a consistent snapshot of one hosted node's protocol state,
// taken on the node's own goroutine.
type NodeInfo struct {
	ID int
	// Key is the keyed index tree this snapshot describes; Keys lists
	// every key the node currently participates in.
	Key    int
	Keys   []int
	Parent int
	IsRoot bool
	Dead   bool
	// HaveCopy/Version/Expiry describe the index copy the node would
	// serve right now: the authority's own version for the root, the
	// cached copy otherwise (HaveCopy false when there is none).
	HaveCopy bool
	Version  int64
	Expiry   time.Time
	// Interested reports whether the node's own query rate crossed the
	// interest threshold this interval window.
	Interested bool
	// Subscribers is the node's DUP subscriber list; PushTargets is who
	// it forwards a push to (subscribers minus virtual-path absorption).
	Subscribers []int
	PushTargets []int
	// Unacked counts reliable messages still awaiting acknowledgement on
	// the inspected key's lane; with ShardLoops == 1 (the default) that
	// is the whole node.
	Unacked int
	// RootSeq is the highest root sequence number the node has observed
	// (or issued, for the root) on the soft-state tree beacon; RootSeqAge
	// is how long ago it last advanced. Zero values when announces are
	// disabled (Config.RootAnnounceEvery == 0).
	RootSeq    int64
	RootSeqAge time.Duration
}

// Inspect returns a snapshot of a hosted node's protocol state for key 0,
// taken on the node's own goroutine so it is internally consistent. It
// works on dead nodes too — the chaos harness uses it to audit repaired
// trees.
func (nw *Network) Inspect(id int, timeout time.Duration) (NodeInfo, error) {
	return nw.Key(0).Inspect(id, timeout)
}

// InspectKey is Inspect for one keyed index tree.
//
// Deprecated: use Network.Key(key).Inspect instead.
func (nw *Network) InspectKey(id, key int, timeout time.Duration) (NodeInfo, error) {
	return nw.Key(key).Inspect(id, timeout)
}

// node returns the hosted node for id, or nil.
func (nw *Network) node(id int) *node {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.hosted[id]
}

// Nodes returns the total cluster size (hosted here or not).
func (nw *Network) Nodes() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.size
}

// MeanLatency returns the average hops per resolved query so far.
func (nw *Network) MeanLatency() float64 {
	q := nw.stats.queries.Load()
	if q == 0 {
		return 0
	}
	return float64(nw.stats.queryHops.Load()) / float64(q)
}

// RootID returns the currently designated authority node's id (which may
// be momentarily dead while fail-over is in progress).
func (nw *Network) RootID() int { return nw.dir.RootID() }

// Query issues a key-0 index query at the given hosted node and waits up
// to timeout for the answer.
func (nw *Network) Query(at int, timeout time.Duration) (QueryResult, error) {
	return nw.Key(0).Query(at, timeout)
}

// QueryKey is Query against one keyed index tree.
//
// Deprecated: use Network.Key(key).Query instead.
func (nw *Network) QueryKey(at, key int, timeout time.Duration) (QueryResult, error) {
	return nw.Key(key).Query(at, timeout)
}

// Fail kills a hosted node abruptly: it stops processing messages.
// Neighbours discover the failure through keep-alive timeouts. Killing
// the current authority node exercises the paper's case 5 (a new
// authority takes over).
func (nw *Network) Fail(id int) {
	n := nw.node(id)
	if n == nil {
		return
	}
	n.dead.Store(true)
	nw.dir.SetDead(id, true)
}

// Recover brings a hosted node back. If it is still the designated
// authority (nobody was promoted while it was down) it resumes that role
// with a fresh version; otherwise it rejoins blank under the nearest
// alive node on its original ancestor path.
func (nw *Network) Recover(id int) {
	n := nw.node(id)
	if n == nil || !n.dead.Load() {
		return
	}
	// Revive decides atomically against a concurrent promotion, so a
	// recovering old root and a promoting substitute cannot both win.
	designated := nw.dir.Revive(id)
	n.dead.Store(false)
	if designated {
		n.lanes[0].postCtrl(ctrlMsg{kind: cBecomeRoot})
		return
	}
	n.lanes[0].postCtrl(ctrlMsg{kind: cReset, parent: nw.dir.AliveAncestor(id, nil)})
}

// directoryParent is the DHT stand-in: the routing parent of id.
func (nw *Network) directoryParent(id int) int { return nw.dir.Parent(id) }

// Members returns the current roster: the directory's membership when it
// is dynamic, otherwise every id in the static tree.
func (nw *Network) Members() []int {
	if dyn, ok := nw.dir.(Dynamic); ok {
		return dyn.Members()
	}
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	out := make([]int, nw.size)
	for i := range out {
		out[i] = i
	}
	return out
}

// dynamic returns the membership-capable directory, or an error when the
// configured Directory cannot mutate its node set.
func (nw *Network) dynamic() (Dynamic, error) {
	if dyn, ok := nw.dir.(Dynamic); ok {
		return dyn, nil
	}
	return nil, fmt.Errorf("live: directory %T does not support membership changes", nw.dir)
}

// Join attaches a brand-new node to the running cluster: the directory
// inserts it into the index search tree (epoch-stamped, so races against
// other membership changes resolve deterministically), and the node
// announces itself to its assigned parent with a KindJoin — the parent
// adopts it into the keep-alive fabric and answers with a state transfer
// when it holds a valid index copy. The joiner builds interest from
// scratch like any cold node.
func (nw *Network) Join(id int) error {
	dyn, err := nw.dynamic()
	if err != nil {
		return err
	}
	if nw.stopped.Load() {
		return errors.New("live: network is stopped")
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.hosted[id] != nil {
		return fmt.Errorf("live: node %d is already hosted here", id)
	}
	parent, err := dyn.Join(id)
	if err != nil {
		return err
	}
	n := newNode(nw, id, parent)
	n.announce = true
	nw.hosted[id] = n
	if id >= nw.size {
		nw.size = id + 1
	}
	nw.tr.Register(id, n.handler())
	if br, ok := nw.tr.(transport.BurstRegistrar); ok {
		br.RegisterBurst(id, n.burstHandler())
	}
	for _, l := range n.lanes {
		nw.wg.Add(1)
		go l.run()
	}
	return nil
}

// Leave departs a hosted node gracefully: the directory re-homes its
// children, and the node runs the paper's substitute logic proactively —
// its parent splices the remaining representative into the subscriber
// list (or unsubscribes the branch) on receipt of KindLeave instead of
// waiting a keep-alive death to notice. Leave waits up to timeout for the
// departure announcements to be acknowledged, then deregisters the node.
func (nw *Network) Leave(id int, timeout time.Duration) error {
	dyn, err := nw.dynamic()
	if err != nil {
		return err
	}
	nw.mu.Lock()
	n := nw.hosted[id]
	if n == nil {
		nw.mu.Unlock()
		return fmt.Errorf("live: node %d is not hosted here", id)
	}
	// Snapshot the children before the directory re-homes them: they are
	// exactly the peers whose keep-alive parent is about to vanish.
	children := dyn.Children(id)
	if err := dyn.Leave(id); err != nil {
		nw.mu.Unlock()
		return err
	}
	delete(nw.hosted, id)
	nw.left = append(nw.left, n)
	nw.mu.Unlock()

	done := make(chan struct{})
	if n.lanes[0].postCtrl(ctrlMsg{kind: cLeave, children: children, done: done}) {
		select {
		case <-done:
		case <-time.After(timeout):
		}
	}
	// Deregister and stop: late messages to the departed id count as
	// transport drops from here on.
	nw.tr.Register(id, nil)
	if br, ok := nw.tr.(transport.BurstRegistrar); ok {
		br.RegisterBurst(id, nil)
	}
	n.dead.Store(true)
	n.stop()
	return nil
}

// Reboot models a crash-and-restart with durable state: the hosted node
// blanks its in-memory protocol state and resumes from states (one record
// per keyed index tree, as recorded by a Journal), re-announcing itself
// to its parent exactly like a restarted dupd with -state-dir. An empty
// slice reboots cold. The node set is unchanged — the directory still
// counts the node as a member throughout.
func (nw *Network) Reboot(id int, states []store.NodeState) error {
	n := nw.node(id)
	if n == nil {
		return fmt.Errorf("live: node %d is not hosted here", id)
	}
	if !n.lanes[0].postCtrl(ctrlMsg{kind: cReboot, states: states}) {
		return fmt.Errorf("live: node %d is overloaded", id)
	}
	return nil
}

// JoinKey makes a hosted node a participant in one keyed index tree.
//
// Deprecated: use Network.Key(key).Join instead.
func (nw *Network) JoinKey(id, key int) error {
	return nw.Key(key).Join(id)
}

// LeaveKey departs a hosted node from one keyed index tree.
//
// Deprecated: use Network.Key(key).Leave instead.
func (nw *Network) LeaveKey(id, key int) error {
	return nw.Key(key).Leave(id)
}

// KeyHandle scopes Network operations to one keyed index tree. It is the
// keyed API surface: nw.Key(k).Query(...) replaces the older pairs of
// key-0 methods and *Key variants. Handles are cheap values — build them
// on the fly or keep one per key; they hold no state beyond the key.
type KeyHandle struct {
	nw  *Network
	key int
}

// Key returns the operation handle for one keyed index tree. Key 0 is
// the node-level tree every peer participates in; negative keys yield a
// handle whose operations fail with a validation error.
func (nw *Network) Key(key int) *KeyHandle {
	return &KeyHandle{nw: nw, key: key}
}

// Key reports which keyed index tree this handle scopes to.
func (h *KeyHandle) Key() int { return h.key }

// Query issues an index query for this key at the given hosted node and
// waits up to timeout for the answer. Querying a key the node has never
// seen makes it a lazy participant in that key's tree.
func (h *KeyHandle) Query(at int, timeout time.Duration) (QueryResult, error) {
	nw := h.nw
	if at < 0 || at >= nw.Nodes() {
		return QueryResult{}, fmt.Errorf("live: no node %d", at)
	}
	if h.key < 0 {
		return QueryResult{}, fmt.Errorf("live: need key >= 0, got %d", h.key)
	}
	n := nw.node(at)
	if n == nil {
		return QueryResult{}, fmt.Errorf("live: node %d is not hosted here", at)
	}
	if nw.stopped.Load() || n.dead.Load() {
		return QueryResult{}, fmt.Errorf("live: node %d is down", at)
	}
	res := make(chan QueryResult, 1)
	c := ctrlMsg{kind: cQuery, key: h.key, res: res, deadline: time.Now().Add(timeout + time.Second)}
	if !n.laneForKey(h.key).postCtrl(c) {
		return QueryResult{}, fmt.Errorf("live: node %d is overloaded", at)
	}
	select {
	case r := <-res:
		return r, nil
	case <-time.After(timeout):
		return QueryResult{}, ErrTimeout
	}
}

// Stats returns this keyed index tree's counter snapshot across the
// nodes the Network hosts. Keys nobody touched report zeros.
func (h *KeyHandle) Stats() KeyStats {
	nw := h.nw
	s := KeyStats{Key: h.key}
	nw.kmu.RLock()
	c := nw.keyStats[h.key]
	nw.kmu.RUnlock()
	if c == nil {
		return s
	}
	s.Queries = c.queries.Load()
	s.QueryHops = c.queryHops.Load()
	s.LocalHits = c.localHits.Load()
	s.Pushes = c.pushes.Load()
	s.Subscribes = c.subscribes.Load()
	s.Substitutes = c.substitutes.Load()
	return s
}

// Inspect snapshots a hosted node's protocol state for this key, taken
// on the owning lane's goroutine so it is internally consistent. It
// works on dead nodes too — the chaos harness uses it to audit repaired
// trees. Inspecting a key the node does not participate in returns the
// node-level fields with empty shard state.
func (h *KeyHandle) Inspect(id int, timeout time.Duration) (NodeInfo, error) {
	nw := h.nw
	if h.key < 0 {
		return NodeInfo{}, fmt.Errorf("live: need key >= 0, got %d", h.key)
	}
	n := nw.node(id)
	if n == nil {
		return NodeInfo{}, fmt.Errorf("live: node %d is not hosted here", id)
	}
	res := make(chan NodeInfo, 1)
	if !n.laneForKey(h.key).postCtrl(ctrlMsg{kind: cInspect, key: h.key, info: res}) {
		return NodeInfo{}, fmt.Errorf("live: node %d is overloaded", id)
	}
	select {
	case in := <-res:
		return in, nil
	case <-time.After(timeout):
		return NodeInfo{}, ErrTimeout
	}
}

// Join makes a hosted node a participant in this keyed index tree: it
// creates the key's shard and announces it upstream, so the parent
// adopts the branch and transfers its index copy when it holds a valid
// one. Key participation is per node — node-level membership is
// Network.Join and Network.Leave.
func (h *KeyHandle) Join(id int) error {
	if h.key < 0 {
		return fmt.Errorf("live: need key >= 0, got %d", h.key)
	}
	n := h.nw.node(id)
	if n == nil {
		return fmt.Errorf("live: node %d is not hosted here", id)
	}
	if !n.laneForKey(h.key).postCtrl(ctrlMsg{kind: cJoinKey, key: h.key}) {
		return fmt.Errorf("live: node %d is overloaded", id)
	}
	return nil
}

// Leave departs a hosted node from this keyed index tree: it withdraws
// interest, tells its parent how to splice it out of the key's
// subscriber list, and drops the shard. Key 0 cannot be left — it is the
// node's own existence; use Network.Leave.
func (h *KeyHandle) Leave(id int) error {
	if h.key <= 0 {
		return fmt.Errorf("live: need key > 0, got %d (key 0 is node-level: use Leave)", h.key)
	}
	n := h.nw.node(id)
	if n == nil {
		return fmt.Errorf("live: node %d is not hosted here", id)
	}
	if !n.laneForKey(h.key).postCtrl(ctrlMsg{kind: cLeaveKey, key: h.key}) {
		return fmt.Errorf("live: node %d is overloaded", id)
	}
	return nil
}
