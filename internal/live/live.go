// Package live runs the DUP protocol on a real concurrent network: one
// goroutine per peer, messages delivered over channels with injected link
// latency, periodic keep-alives with ack-based failure detection, and the
// paper's Section III-C recovery — including case 5, authority (root)
// fail-over.
//
// Where the discrete-event simulator (dup/internal/sim) reproduces the
// paper's measurements, this package demonstrates that the same protocol
// state machine (dup/internal/core) drives a working system under true
// concurrency: the examples/livecluster binary boots a network, kills
// nodes mid-run and shows queries continuing to resolve.
package live

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/rng"
	"dup/internal/topology"
)

// Config parametrises a live network.
type Config struct {
	// Nodes and MaxDegree shape the index search tree (node 0 is the
	// authority node for the index).
	Nodes     int
	MaxDegree int
	// TTL is the index version lifetime; the authority refreshes and
	// pushes Lead before each expiry.
	TTL  time.Duration
	Lead time.Duration
	// Threshold is the interest threshold c per TTL interval.
	Threshold int
	// HopDelay is the mean injected link latency.
	HopDelay time.Duration
	// KeepAliveEvery is the keep-alive period; a peer that misses acks
	// for DeadAfter is declared failed.
	KeepAliveEvery time.Duration
	DeadAfter      time.Duration
	// Seed drives topology generation and latency jitter.
	Seed uint64
	// Tree optionally overrides topology generation, e.g. with an index
	// search tree extracted from a Chord ring or CAN torus
	// (overlay/chord.ExtractTree, overlay/can.ExtractTree). Node 0 must be
	// the root. Nodes is ignored when set.
	Tree *topology.Tree
}

// DefaultConfig returns a small, fast test-scale network.
func DefaultConfig() Config {
	return Config{
		Nodes:          64,
		MaxDegree:      4,
		TTL:            400 * time.Millisecond,
		Lead:           80 * time.Millisecond,
		Threshold:      3,
		HopDelay:       time.Millisecond,
		KeepAliveEvery: 40 * time.Millisecond,
		DeadAfter:      150 * time.Millisecond,
		Seed:           1,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Tree == nil && c.Nodes < 2:
		return fmt.Errorf("live: need at least 2 nodes, got %d", c.Nodes)
	case c.Tree != nil && c.Tree.N() < 2:
		return fmt.Errorf("live: preset tree needs at least 2 nodes, got %d", c.Tree.N())
	case c.MaxDegree < 1:
		return fmt.Errorf("live: need MaxDegree >= 1, got %d", c.MaxDegree)
	case c.TTL <= 0 || c.Lead < 0 || c.Lead >= c.TTL:
		return fmt.Errorf("live: need 0 <= Lead < TTL, got TTL=%v Lead=%v", c.TTL, c.Lead)
	case c.Threshold < 0:
		return fmt.Errorf("live: need Threshold >= 0, got %d", c.Threshold)
	case c.HopDelay < 0:
		return fmt.Errorf("live: need HopDelay >= 0, got %v", c.HopDelay)
	case c.KeepAliveEvery <= 0 || c.DeadAfter <= c.KeepAliveEvery:
		return fmt.Errorf("live: need DeadAfter > KeepAliveEvery > 0, got %v, %v",
			c.DeadAfter, c.KeepAliveEvery)
	}
	return nil
}

// QueryResult is the outcome of one index query.
type QueryResult struct {
	Version int64
	Hops    int  // hops the request travelled before reaching a valid index
	Local   bool // served from the querying node's own cache
}

// Stats aggregates network-wide counters.
type Stats struct {
	Queries     int64
	QueryHops   int64
	LocalHits   int64
	Pushes      int64
	Subscribes  int64
	Substitutes int64
	KeepAlives  int64
	Drops       int64 // messages dropped at dead nodes
}

// Network is a running live cluster.
type Network struct {
	cfg   Config
	nodes []*node

	mu     sync.Mutex // guards parent and rootID (the DHT directory stand-in)
	parent []int
	rootID int // the designated authority node

	stats struct {
		queries, queryHops, localHits              atomic.Int64
		pushes, subscribes, substitutes, keepAlive atomic.Int64
		drops                                      atomic.Int64
	}

	stopped atomic.Bool
	wg      sync.WaitGroup
}

// ErrTimeout is returned when a query is not answered in time (e.g. its
// route passed through a failed node before repair finished).
var ErrTimeout = errors.New("live: query timed out")

// Start boots the network: builds the index search tree, spawns one
// goroutine per node and begins the authority's refresh schedule.
func Start(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	tree := cfg.Tree
	if tree == nil {
		tree = topology.Generate(cfg.Nodes, cfg.MaxDegree, src.Split())
	}
	n := tree.N()
	nw := &Network{cfg: cfg, parent: make([]int, n), rootID: 0}
	for i := 0; i < n; i++ {
		nw.parent[i] = tree.Parent(i)
	}
	nw.nodes = make([]*node, n)
	for i := 0; i < n; i++ {
		nw.nodes[i] = newNode(nw, i, tree.Parent(i), src.Split())
	}
	for _, n := range nw.nodes {
		nw.wg.Add(1)
		go n.run()
	}
	return nw, nil
}

// Stop shuts the network down and waits for every node goroutine.
func (nw *Network) Stop() {
	if nw.stopped.Swap(true) {
		return
	}
	for _, n := range nw.nodes {
		close(n.quit)
	}
	nw.wg.Wait()
}

// Stats returns a snapshot of the network counters.
func (nw *Network) Stats() Stats {
	return Stats{
		Queries:     nw.stats.queries.Load(),
		QueryHops:   nw.stats.queryHops.Load(),
		LocalHits:   nw.stats.localHits.Load(),
		Pushes:      nw.stats.pushes.Load(),
		Subscribes:  nw.stats.subscribes.Load(),
		Substitutes: nw.stats.substitutes.Load(),
		KeepAlives:  nw.stats.keepAlive.Load(),
		Drops:       nw.stats.drops.Load(),
	}
}

// Nodes returns the network size.
func (nw *Network) Nodes() int { return len(nw.nodes) }

// MeanLatency returns the average hops per resolved query so far.
func (nw *Network) MeanLatency() float64 {
	q := nw.stats.queries.Load()
	if q == 0 {
		return 0
	}
	return float64(nw.stats.queryHops.Load()) / float64(q)
}

// RootID returns the currently designated authority node's id (which may
// be momentarily dead while fail-over is in progress).
func (nw *Network) RootID() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.rootID
}

// Query issues an index query at the given node and waits up to timeout
// for the answer.
func (nw *Network) Query(at int, timeout time.Duration) (QueryResult, error) {
	if at < 0 || at >= len(nw.nodes) {
		return QueryResult{}, fmt.Errorf("live: no node %d", at)
	}
	res := make(chan QueryResult, 1)
	if !nw.nodes[at].post(message{kind: mQuery, res: res}) {
		return QueryResult{}, fmt.Errorf("live: node %d is down", at)
	}
	select {
	case r := <-res:
		return r, nil
	case <-time.After(timeout):
		return QueryResult{}, ErrTimeout
	}
}

// Fail kills node id abruptly: it stops processing messages. Neighbours
// discover the failure through keep-alive timeouts. Killing the current
// authority node exercises the paper's case 5 (a new authority takes
// over).
func (nw *Network) Fail(id int) { nw.nodes[id].dead.Store(true) }

// Recover brings node id back. If it is still the designated authority
// (nobody was promoted while it was down) it resumes that role with a
// fresh version; otherwise it rejoins blank under the nearest alive node
// on its original ancestor path.
func (nw *Network) Recover(id int) {
	n := nw.nodes[id]
	if !n.dead.Load() {
		return
	}
	// Flip liveness under the directory mutex so a concurrent promote()
	// cannot elect a second authority while we decide.
	nw.mu.Lock()
	designated := nw.rootID == id
	n.dead.Store(false)
	nw.mu.Unlock()
	if designated {
		n.post(message{kind: mBecomeRoot})
		return
	}
	parent := nw.aliveAncestor(id)
	n.post(message{kind: mReset, from: parent})
}

// directoryParent is the DHT stand-in: the routing parent of id.
func (nw *Network) directoryParent(id int) int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.parent[id]
}

// setParent records a repair in the directory.
func (nw *Network) setParent(id, parent int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.parent[id] = parent
}

// aliveAncestor walks the directory upward from id until it reaches an
// alive node (falling back to the current authority).
func (nw *Network) aliveAncestor(id int) int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	p := nw.parent[id]
	for hops := 0; p != -1 && hops < len(nw.nodes); hops++ {
		if !nw.nodes[p].dead.Load() {
			return p
		}
		p = nw.parent[p]
	}
	// Fall back to the designated authority.
	if nw.rootID != id && !nw.nodes[nw.rootID].dead.Load() {
		return nw.rootID
	}
	return -1
}

// send delivers m to node `to` after an exponentially distributed link
// delay. Messages to dead nodes are dropped (counted).
func (nw *Network) send(to int, m message, delaySrc *rng.Source) {
	if nw.stopped.Load() {
		return
	}
	delay := time.Duration(0)
	if nw.cfg.HopDelay > 0 {
		delay = time.Duration(-float64(nw.cfg.HopDelay) * math.Log(delaySrc.Float64Open()))
	}
	target := nw.nodes[to]
	time.AfterFunc(delay, func() {
		if nw.stopped.Load() {
			return
		}
		if !target.post(m) {
			nw.stats.drops.Add(1)
		}
	})
}
