package live

import (
	"fmt"
	"testing"
	"time"

	"dup/internal/faults"
	"dup/internal/proto"
	"dup/internal/topology"
	"dup/internal/transport"
)

// bootTCPCluster starts one Network per host set, each on its own TCP
// transport bound to 127.0.0.1 behind a fault wrapper, all sharing one
// MemDirectory — a loopback stand-in for a multi-process deployment.
// Every message between host sets crosses a real socket, and each
// endpoint's wrapper is the handle for hurting it.
func bootTCPCluster(t *testing.T, cfg Config, hostSets [][]int) ([]*Network, []*faults.Transport) {
	t.Helper()
	tcps := make([]*transport.TCP, len(hostSets))
	trs := make([]*faults.Transport, len(hostSets))
	for i := range hostSets {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Listen:      "127.0.0.1:0",
			Seed:        uint64(i + 1),
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tr
		trs[i] = faults.Wrap(tr, faults.Config{Seed: uint64(i + 1), CloseInner: true})
	}
	addrOf := map[int]string{}
	for i, hosts := range hostSets {
		for _, id := range hosts {
			addrOf[id] = tcps[i].Addr()
		}
	}
	for i := range tcps {
		local := map[int]bool{}
		for _, id := range hostSets[i] {
			local[id] = true
		}
		for id, addr := range addrOf {
			if !local[id] {
				tcps[i].SetPeer(id, addr)
			}
		}
	}
	tree := cfg.BuildTree()
	dir := NewMemDirectory(tree)
	nets := make([]*Network, len(hostSets))
	for i, hosts := range hostSets {
		nw, err := StartWith(cfg, Options{Transport: trs[i], Directory: dir, Hosts: hosts})
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = nw
	}
	t.Cleanup(func() {
		for _, nw := range nets {
			nw.Stop()
		}
	})
	return nets, trs
}

// netFor returns the network hosting node id.
func netFor(t *testing.T, nets []*Network, hostSets [][]int, id int) *Network {
	t.Helper()
	for i, hosts := range hostSets {
		for _, h := range hosts {
			if h == id {
				return nets[i]
			}
		}
	}
	t.Fatalf("node %d hosted nowhere", id)
	return nil
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPLoopbackCluster runs a 9-node cluster split across three TCP
// transports: queries resolve everywhere over real sockets, authority
// pushes reach hot subscribers, and the Section III-C recovery heals the
// tree after a non-root node is killed mid-run.
func TestTCPLoopbackCluster(t *testing.T) {
	//        0
	//      /   \
	//     1     2
	//    / \   / \
	//   3   4 5   6
	//   |   |
	//   7   8
	tree := topology.FromParents([]int{-1, 0, 0, 1, 1, 2, 2, 3, 4})
	cfg := DefaultConfig()
	cfg.Tree = tree
	hostSets := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	nets, _ := bootTCPCluster(t, cfg, hostSets)

	// Every node answers over the socket fabric.
	for id := 0; id < tree.N(); id++ {
		nw := netFor(t, nets, hostSets, id)
		r := query(t, nw, id, 3*time.Second)
		if id == 0 && !r.Local {
			t.Fatal("authority node query was not local")
		}
	}

	// Make the deep leaves hot so they subscribe; the authority's pushes
	// must then reach them across two socket hops and turn their queries
	// into local hits.
	for _, hot := range []int{7, 8} {
		nw := netFor(t, nets, hostSets, hot)
		for i := 0; i < cfg.Threshold+2; i++ {
			query(t, nw, hot, 2*time.Second)
		}
	}
	for _, hot := range []int{7, 8} {
		nw := netFor(t, nets, hostSets, hot)
		waitUntil(t, 4*cfg.TTL, fmt.Sprintf("pushes to reach node %d", hot), func() bool {
			r, err := nw.Query(hot, 500*time.Millisecond)
			return err == nil && r.Local
		})
	}
	if s := netFor(t, nets, hostSets, 7).Stats(); s.Subscribes == 0 {
		t.Fatal("hot leaf 7 never subscribed")
	}
	waitUntil(t, 4*cfg.TTL, "authority pushes to arrive at the hot leaves' host", func() bool {
		return netFor(t, nets, hostSets, 7).Stats().Pushes > 0
	})

	// Kill an interior non-root node mid-run. Its children (hosted by a
	// different transport) must detect the death via keep-alive timeouts
	// and re-home, after which the whole subtree answers again.
	victim := 1
	netFor(t, nets, hostSets, victim).Fail(victim)
	time.Sleep(cfg.DeadAfter + 4*cfg.KeepAliveEvery)
	for _, id := range []int{3, 4, 7, 8} {
		query(t, netFor(t, nets, hostSets, id), id, 4*time.Second)
	}

	// And it rejoins cleanly.
	netFor(t, nets, hostSets, victim).Recover(victim)
	time.Sleep(2 * cfg.KeepAliveEvery)
	query(t, netFor(t, nets, hostSets, victim), victim, 3*time.Second)
	if got := netFor(t, nets, hostSets, 0).RootID(); got != 0 {
		t.Fatalf("authority moved to %d after a non-root failure", got)
	}
}

// TestTCPClusterKeepAliveMissSubstitute isolates a leaf with the fault
// wrapper and asserts the exact Section III-C consequence: the branch point
// above it misses keep-alives, synthesises the unsubscribe, leaves the
// DUP tree with substitute(self, remaining), and the intermediate node
// forwards the substitution — two substitute emissions, deterministically.
// Healing the faults lets the leaf rejoin and resolve queries again.
func TestTCPClusterKeepAliveMissSubstitute(t *testing.T) {
	//   0 - 1 - 2 - {3, 4}
	tree := topology.FromParents([]int{-1, 0, 1, 2, 2})
	cfg := DefaultConfig()
	cfg.Tree = tree
	// Disable the organic interest policy (the polling queries below would
	// otherwise trip intermediate nodes' thresholds and grow the tree
	// non-deterministically): membership comes only from the injected
	// subscriptions.
	cfg.Threshold = 1 << 20
	hostSets := [][]int{{0, 1, 2, 4}, {3}}
	nets, trs := bootTCPCluster(t, cfg, hostSets)
	netA, netB := nets[0], nets[1]
	trA, trB := trs[0], trs[1]

	// Build the DUP tree deterministically by injecting the leaves'
	// subscriptions at their parent, exactly as the wire would carry them:
	// subscribe(4) makes 2-1-0 a virtual path for 4; subscribe(3) then
	// makes 2 a branch point (substitute(4, 2) travels up).
	subscribe := func(at, subject int) {
		m := proto.NewMessage()
		m.Kind, m.To, m.Origin, m.Subject = proto.KindSubscribe, at, subject, subject
		trA.Send(m)
	}
	subscribe(2, 4)
	subscribe(2, 3)

	// Let several push and keep-alive rounds complete. The window is
	// query-free, so a valid cache at either leaf afterwards can only have
	// come from an authority push — a path-cached reply would need a query
	// to prime it — and node 2 has seen enough of 3's keep-alives to hold
	// it in its failure detector.
	time.Sleep(2 * cfg.TTL)
	for _, leaf := range []int{3, 4} {
		nw := netFor(t, nets, hostSets, leaf)
		if r := query(t, nw, leaf, 2*time.Second); !r.Local {
			t.Fatalf("no push reached leaf %d", leaf)
		}
	}
	base := netA.Stats().Substitutes

	// Cut node 3 off in both directions: its endpoint crashes (outbound
	// dropped, inbound refused) and side A additionally drops traffic to
	// it at the source. Node 2 now misses 3's keep-alives.
	trB.Crash()
	trA.Block(3)

	// Section III-C: 2's failure detector fires, it unsubscribes 3, drops
	// to one subscriber, and leaves the tree with substitute(2, 4); node 1
	// forwards substitute(2, 4) upstream. Exactly two emissions on side A.
	waitUntil(t, 10*cfg.DeadAfter, "substitute pair after keep-alive miss", func() bool {
		return netA.Stats().Substitutes >= base+2
	})
	if got := netA.Stats().Substitutes; got != base+2 {
		t.Fatalf("substitutes = %d, want exactly %d", got, base+2)
	}

	// The surviving leaf keeps receiving pushes on the repaired tree: after
	// another query-free window every pre-repair cache has expired, so a
	// local hit proves fresh pushes are flowing root -> 4 directly.
	time.Sleep(2 * cfg.TTL)
	if r := query(t, netA, 4, 2*time.Second); !r.Local {
		t.Fatal("pushes stopped reaching leaf 4 after the substitution")
	}

	// Heal the partition: node 3 answers queries again (through whatever
	// ancestor it re-homed under while isolated).
	trB.Restart()
	trA.Unblock(3)
	waitUntil(t, 5*time.Second, "leaf 3 to resolve queries after healing", func() bool {
		_, err := netB.Query(3, 500*time.Millisecond)
		return err == nil
	})
}
