package live

import (
	"testing"
	"time"
)

// TestReplicatedClusterServes boots a Replicas=3 cluster and checks the
// ordinary data path still works end to end: the leased authority
// exposes versions, pushes flow, and queries resolve everywhere.
func TestReplicatedClusterServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 24
	cfg.Replicas = 3
	cfg.Seed = 11
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for id := 0; id < nw.Nodes(); id += 5 {
		query(t, nw, id, 3*time.Second)
	}
	// Versions must advance: the quorum lease keeps the hot path a local
	// append, not a stall.
	first := query(t, nw, 0, 2*time.Second).Version
	time.Sleep(3 * cfg.TTL)
	second := query(t, nw, 0, 2*time.Second).Version
	if second <= first {
		t.Fatalf("authority stream stalled under replication: %d then %d", first, second)
	}
}

// TestReplicatedFailoverNeverRegresses kills the leaseholder and checks
// the promoted authority's first exposure lands strictly above every
// version the old one ever served — the quorum floor at work.
func TestReplicatedFailoverNeverRegresses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 24
	cfg.Replicas = 3
	cfg.Seed = 7
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	// Let the stream advance a few refresh cycles, sampling the freshest
	// version straight from the authority.
	var pre int64
	for i := 0; i < 3; i++ {
		time.Sleep(cfg.TTL)
		pre = query(t, nw, 0, 2*time.Second).Version
	}
	if pre == 0 {
		t.Fatal("authority never advanced past version 0")
	}
	nw.Fail(0)
	deadline := time.Now().Add(5 * time.Second)
	for nw.RootID() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no node took over as authority")
		}
		time.Sleep(10 * time.Millisecond)
	}
	newRoot := nw.RootID()
	r := query(t, nw, newRoot, 5*time.Second)
	if r.Version <= pre {
		t.Fatalf("failover regressed: new authority %d serves %d, old had exposed %d",
			newRoot, r.Version, pre)
	}
	// The old leaseholder comes back as a follower; the authority must
	// not change again and the stream keeps moving.
	nw.Recover(0)
	time.Sleep(2 * cfg.KeepAliveEvery)
	if nw.RootID() != newRoot {
		t.Fatalf("root changed again after old leaseholder recovered: %d", nw.RootID())
	}
	later := query(t, nw, newRoot, 3*time.Second).Version
	if later < r.Version {
		t.Fatalf("stream regressed after recovery: %d then %d", r.Version, later)
	}
}

// TestReplicasConfigValidation pins the new knob's validation edges.
func TestReplicasConfigValidation(t *testing.T) {
	c := DefaultConfig()
	c.Replicas = -1
	if c.Validate() == nil {
		t.Error("negative Replicas accepted")
	}
	c = DefaultConfig()
	c.Nodes = 4
	c.Replicas = 5
	if c.Validate() == nil {
		t.Error("Replicas > Nodes accepted")
	}
	c = DefaultConfig()
	c.Replicas = 3
	if err := c.Validate(); err != nil {
		t.Errorf("Replicas=3 rejected: %v", err)
	}
}
