package live

import (
	"sync"
	"testing"
	"time"

	"dup/internal/rng"
)

// TestStressRandomChurnAndQueries hammers a live network with concurrent
// queriers while nodes fail and recover at random. The assertions are
// survival assertions: no deadlock, no panic, queries keep resolving, and
// the network still answers everywhere after churn stops. Run with -race.
func TestStressRandomChurnAndQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped with -short")
	}
	cfg := DefaultConfig()
	cfg.Nodes = 48
	cfg.Seed = 99
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Four concurrent query workers.
	var resolved, failed sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := src.Intn(cfg.Nodes)
				if _, err := nw.Query(at, 200*time.Millisecond); err == nil {
					ct, _ := resolved.LoadOrStore(w, new(int))
					*ct.(*int)++
				} else {
					ct, _ := failed.LoadOrStore(w, new(int))
					*ct.(*int)++
				}
			}
		}(w)
	}

	// Churn driver: fail and recover random non-root nodes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(42)
		down := map[int]bool{}
		for i := 0; i < 20; i++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := 1 + src.Intn(cfg.Nodes-1)
			if down[victim] {
				nw.Recover(victim)
				delete(down, victim)
			} else {
				nw.Fail(victim)
				down[victim] = true
			}
			time.Sleep(60 * time.Millisecond)
		}
		for v := range down {
			nw.Recover(v)
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := 0
	resolved.Range(func(_, v any) bool { total += *v.(*int); return true })
	if total == 0 {
		t.Fatal("no query resolved during churn")
	}

	// After churn settles, every node must answer again.
	time.Sleep(cfg.DeadAfter + 4*cfg.KeepAliveEvery)
	for id := 0; id < nw.Nodes(); id++ {
		query(t, nw, id, 3*time.Second)
	}
	t.Logf("resolved %d queries during churn; drops %d", total, nw.Stats().Drops)
}
