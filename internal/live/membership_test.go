package live

import (
	"sync"
	"testing"
	"time"

	"dup/internal/topology"
)

// listedAnywhere reports whether any member's subscriber list or push
// targets still mention id.
func listedAnywhere(t *testing.T, nw *Network, members []int, id int) bool {
	t.Helper()
	for _, m := range members {
		if m == id {
			continue
		}
		in, err := nw.Inspect(m, time.Second)
		if err != nil {
			continue
		}
		for _, s := range in.Subscribers {
			if s == id {
				return true
			}
		}
		for _, p := range in.PushTargets {
			if p == id {
				return true
			}
		}
	}
	return false
}

// TestJoinSubscribeLeaveRejoinWithinTTL runs the full membership dance
// inside a single TTL generation: a node joins the running cluster,
// becomes interested and subscribes, departs gracefully (its subscription
// must be spliced out everywhere), then rejoins under the same id and
// subscribes again. The rejoin is the hard part — peers still hold the
// first incarnation's suspicion marks and dedup window, and none of that
// may bleed into the second incarnation's subscription.
func TestJoinSubscribeLeaveRejoinWithinTTL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.MaxDegree = 2
	cfg.TTL = 10 * time.Second // one generation spans the whole test
	cfg.Lead = 500 * time.Millisecond
	cfg.Threshold = 2
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	start := time.Now()
	id := cfg.Nodes // first fresh id above the initial roster

	subscribeAndVerify := func(round string) {
		t.Helper()
		for i := 0; i < cfg.Threshold+2; i++ {
			query(t, nw, id, 2*time.Second)
		}
		waitUntil(t, 4*time.Second, round+": joiner listed as a subscriber", func() bool {
			in, err := nw.Inspect(id, time.Second)
			if err != nil || !in.Interested {
				return false
			}
			return listedAnywhere(t, nw, nw.Members(), id)
		})
	}

	if err := nw.Join(id); err != nil {
		t.Fatal(err)
	}
	subscribeAndVerify("join")

	if err := nw.Leave(id, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	members := nw.Members()
	for _, m := range members {
		if m == id {
			t.Fatal("directory still lists the departed node")
		}
	}
	waitUntil(t, 4*time.Second, "departure spliced out of every subscriber list", func() bool {
		return !listedAnywhere(t, nw, members, id)
	})

	if err := nw.Join(id); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	subscribeAndVerify("rejoin")

	if elapsed := time.Since(start); elapsed >= cfg.TTL {
		t.Fatalf("dance took %v, exceeding one TTL (%v) — the rejoin no longer races the first incarnation's state", elapsed, cfg.TTL)
	}
}

// TestInspectDuringRepair hammers Inspect from several goroutines while a
// Section III-C repair is in flight (an interior node is killed mid-run,
// its subtree re-homes and substitutes). Inspect must stay responsive and
// race-free throughout, and the repair must still complete.
func TestInspectDuringRepair(t *testing.T) {
	//   0 - 1 - 2 - {3, 4}
	tree := topology.FromParents([]int{-1, 0, 1, 2, 2})
	cfg := DefaultConfig()
	cfg.Tree = tree
	cfg.Threshold = 2
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	// Make the leaves hot so the kill has a DUP tree to repair.
	for _, leaf := range []int{3, 4} {
		for i := 0; i < cfg.Threshold+2; i++ {
			query(t, nw, leaf, 2*time.Second)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range []int{0, 2, 3, 4} {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if in, err := nw.Inspect(id, time.Second); err == nil && in.ID != id {
					t.Errorf("inspect of %d answered for %d", id, in.ID)
					return
				}
			}
		}(id)
	}

	// Kill the interior node and let the keep-alive detector trigger the
	// repair while the inspectors run.
	nw.Fail(1)
	time.Sleep(cfg.DeadAfter + 6*cfg.KeepAliveEvery)
	close(stop)
	wg.Wait()

	// The subtree must answer again on the repaired tree.
	for _, id := range []int{2, 3, 4} {
		query(t, nw, id, 4*time.Second)
	}
}
