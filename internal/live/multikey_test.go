package live

import (
	"testing"
	"time"

	"dup/internal/topology"
)

// queryKey retries a keyed query until the deadline, mirroring how a real
// client rides out in-flight repairs.
func queryKey(t *testing.T, nw *Network, at, key int, deadline time.Duration) QueryResult {
	t.Helper()
	end := time.Now().Add(deadline)
	var last error
	for time.Now().Before(end) {
		r, err := nw.Key(key).Query(at, 250*time.Millisecond)
		if err == nil {
			return r
		}
		last = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("query at node %d key %d never resolved: %v", at, key, last)
	return QueryResult{}
}

// TestMultiKeyQueriesResolve boots a cluster with several keyed index
// trees and checks that every key resolves at every node, that the
// per-key counters attribute traffic to the right tree, and that the
// authority serves each key from its own shard.
func TestMultiKeyQueriesResolve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 16
	cfg.Seed = 11
	cfg.Keys = 3
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for key := 0; key < cfg.Keys; key++ {
		for _, id := range []int{0, 5, nw.Nodes() - 1} {
			r := queryKey(t, nw, id, key, 2*time.Second)
			if id == 0 && !r.Local {
				t.Fatalf("authority query for key %d was not local", key)
			}
		}
	}
	keys := nw.Keys()
	if len(keys) < cfg.Keys {
		t.Fatalf("Keys() = %v, want at least %d keys", keys, cfg.Keys)
	}
	for key := 0; key < cfg.Keys; key++ {
		ks := nw.Key(key).Stats()
		if ks.Key != key {
			t.Fatalf("Key(%d).Stats().Key = %d", key, ks.Key)
		}
		if ks.Queries != 3 {
			t.Fatalf("key %d: %d queries attributed, want 3", key, ks.Queries)
		}
		in, err := nw.Key(key).Inspect(0, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsRoot || !in.HaveCopy {
			t.Fatalf("authority shard for key %d: IsRoot=%v HaveCopy=%v", key, in.IsRoot, in.HaveCopy)
		}
	}
	// The global counters aggregate across keys.
	if got, want := nw.Stats().Queries, int64(3*cfg.Keys); got != want {
		t.Fatalf("global queries = %d, want %d", got, want)
	}
	// A key nobody touched reports zeros.
	if ks := nw.Key(97).Stats(); ks.Queries != 0 || ks.Pushes != 0 {
		t.Fatalf("untouched key has counters: %+v", ks)
	}
}

// TestCrossKeyIsolationUnderFailure is the multi-key data plane's core
// promise: a fault on the node serving one key's hot spot must not
// perturb the other keys' trees. Key 1 is hot at node 2, key 2 at node
// 3; killing node 2 stalls key 1 there while key 2 keeps refreshing,
// and recovery brings key 1 back.
func TestCrossKeyIsolationUnderFailure(t *testing.T) {
	cfg := DefaultConfig()
	//     0
	//     |
	//     1
	//    / \
	//   2   3
	cfg.Tree = topology.FromParents([]int{-1, 0, 1, 1})
	cfg.Nodes = 0
	cfg.Keys = 3
	cfg.TTL = 200 * time.Millisecond
	cfg.Lead = 50 * time.Millisecond
	cfg.Threshold = 1
	cfg.KeepAliveEvery = 50 * time.Millisecond
	cfg.DeadAfter = 250 * time.Millisecond
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for i := 0; i < cfg.Threshold+2; i++ {
		queryKey(t, nw, 2, 1, time.Second)
		queryKey(t, nw, 3, 2, time.Second)
	}
	// Both keyed trees must start pushing to their hot node.
	deadline := time.Now().Add(3 * time.Second)
	key1, key2 := nw.Key(1), nw.Key(2)
	for key1.Stats().Pushes == 0 || key2.Stats().Pushes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pushes never flowed: key1=%+v key2=%+v", key1.Stats(), key2.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	nw.Fail(2)
	time.Sleep(cfg.DeadAfter + 4*cfg.KeepAliveEvery)
	key1Stalled := key1.Stats().Pushes
	key2Before := key2.Stats().Pushes
	// Keep key 2 hot across several refresh cycles while node 2 is dead.
	for end := time.Now().Add(4 * cfg.TTL); time.Now().Before(end); {
		queryKey(t, nw, 3, 2, time.Second)
		time.Sleep(cfg.TTL / 4)
	}
	if got := key2.Stats().Pushes; got <= key2Before {
		t.Fatalf("key 2 pushes stalled at %d while key 1's node was dead", got)
	}
	if got := key1.Stats().Pushes; got != key1Stalled {
		t.Fatalf("key 1 pushes moved from %d to %d with its only subscriber dead", key1Stalled, got)
	}

	// Recovery: node 2 rejoins, and key 1 reconverges once it is hot again.
	nw.Recover(2)
	time.Sleep(2 * cfg.KeepAliveEvery)
	for i := 0; i < cfg.Threshold+2; i++ {
		queryKey(t, nw, 2, 1, 2*time.Second)
	}
	deadline = time.Now().Add(3 * time.Second)
	for key1.Stats().Pushes == key1Stalled {
		if time.Now().After(deadline) {
			t.Fatal("key 1 never reconverged after recovery")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJoinKeyLeaveKey exercises per-key membership: a node departs one
// keyed index tree without disturbing its node-level membership or its
// other keys, then rejoins it.
func TestJoinKeyLeaveKey(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0, 0})
	cfg.Nodes = 0
	cfg.Keys = 2
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	if err := nw.Key(0).Leave(1); err == nil {
		t.Fatal("Key(0).Leave accepted key 0 (node-level membership)")
	}
	if err := nw.Key(-1).Join(1); err == nil {
		t.Fatal("Key(-1).Join accepted a negative key")
	}

	h := nw.Key(1)
	if h.Key() != 1 {
		t.Fatalf("Key(1).Key() = %d", h.Key())
	}
	queryKey(t, nw, 1, 1, 2*time.Second)
	in, err := h.Inspect(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKey(in.Keys, 1) {
		t.Fatalf("node 1 missing shard for key 1: keys %v", in.Keys)
	}

	if err := h.Leave(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		in, err = h.Inspect(1, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !hasKey(in.Keys, 1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard for key 1 still present after Leave: keys %v", in.Keys)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Node-level membership and the other keys are untouched.
	if !hasKey(in.Keys, 0) {
		t.Fatalf("keyed Leave removed the key-0 shard: keys %v", in.Keys)
	}
	queryKey(t, nw, 1, 0, 2*time.Second)

	if err := h.Join(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		in, err = h.Inspect(1, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if hasKey(in.Keys, 1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard for key 1 never reappeared after Join")
		}
		time.Sleep(20 * time.Millisecond)
	}
	queryKey(t, nw, 1, 1, 2*time.Second)
}

// TestDeprecatedKeyWrappers pins the compatibility contract: the old
// per-key method names (QueryKey, StatsKey, InspectKey, JoinKey,
// LeaveKey) must keep working and behave exactly like the Key(k) handle
// they now delegate to.
func TestDeprecatedKeyWrappers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = topology.FromParents([]int{-1, 0, 0})
	cfg.Nodes = 0
	cfg.Keys = 2
	nw, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()

	if _, err := nw.QueryKey(1, 1, 2*time.Second); err != nil {
		t.Fatalf("QueryKey: %v", err)
	}
	if got, want := nw.StatsKey(1), nw.Key(1).Stats(); got != want {
		t.Fatalf("StatsKey(1) = %+v, Key(1).Stats() = %+v", got, want)
	}
	in, err := nw.InspectKey(1, 1, time.Second)
	if err != nil {
		t.Fatalf("InspectKey: %v", err)
	}
	if !hasKey(in.Keys, 1) {
		t.Fatalf("InspectKey(1, 1): keys %v", in.Keys)
	}
	if err := nw.LeaveKey(1, 1); err != nil {
		t.Fatalf("LeaveKey: %v", err)
	}
	if err := nw.JoinKey(1, 1); err != nil {
		t.Fatalf("JoinKey: %v", err)
	}
}

func hasKey(keys []int, key int) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}
