package live

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dup/internal/proto"
	"dup/internal/rng"
	"dup/internal/transport"
)

// wireErrLog collects transport diagnostics and remembers every wire-level
// decode failure: with sharded lanes writing concurrently to the same
// neighbour sockets, a locking bug in the outbox or writer would surface
// as interleaved bytes inside a frame, which the codec reports as a
// "wire:" error on the receiving side.
type wireErrLog struct {
	mu     sync.Mutex
	broken []string
}

func (w *wireErrLog) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if strings.Contains(line, "wire:") {
		w.mu.Lock()
		w.broken = append(w.broken, line)
		w.mu.Unlock()
	}
}

func (w *wireErrLog) corrupted() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.broken...)
}

// TestStressShardedLanesTCP hammers many keyed shards of sharded
// (ShardLoops > 1) nodes over real sockets while the tree repairs around
// failing and recovering peers. It asserts the three properties the
// sharded data plane must keep: queries keep resolving on every lane, no
// frame is ever corrupted by concurrent lane flushes (no "wire:" decode
// errors at any receiver), and the pooled-message accounting returns to
// balance after shutdown. Run with -race: the lanes of one node share the
// node-level atomics and the per-connection write queues, which is
// exactly where a data race would live.
func TestStressShardedLanesTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped with -short")
	}
	base := proto.InUse()

	cfg := DefaultConfig()
	cfg.Nodes = 12
	cfg.MaxDegree = 3
	cfg.Keys = 8
	cfg.ShardLoops = 4
	cfg.Seed = 7

	hostSets := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	elog := &wireErrLog{}
	tcps := make([]*transport.TCP, len(hostSets))
	for i := range hostSets {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Listen:      "127.0.0.1:0",
			Seed:        uint64(i + 1),
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
			Logf:        elog.logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tr
	}
	addrOf := map[int]string{}
	for i, hosts := range hostSets {
		for _, id := range hosts {
			addrOf[id] = tcps[i].Addr()
		}
	}
	for i := range tcps {
		local := map[int]bool{}
		for _, id := range hostSets[i] {
			local[id] = true
		}
		for id, addr := range addrOf {
			if !local[id] {
				tcps[i].SetPeer(id, addr)
			}
		}
	}
	dir := NewMemDirectory(cfg.BuildTree())
	nets := make([]*Network, len(hostSets))
	for i, hosts := range hostSets {
		nw, err := StartWith(cfg, Options{Transport: tcps[i], Directory: dir, Hosts: hosts})
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = nw
	}
	stopped := false
	stopAll := func() {
		if !stopped {
			stopped = true
			for _, nw := range nets {
				nw.Stop()
			}
		}
	}
	defer stopAll()

	whose := func(id int) *Network {
		if id < len(hostSets[0]) {
			return nets[0]
		}
		return nets[1]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Eight concurrent workers per the keyed handle API, each hammering
	// random (node, key) pairs so every lane of every node carries
	// traffic at once.
	var resolved sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := src.Intn(cfg.Nodes)
				key := src.Intn(cfg.Keys)
				if _, err := whose(at).Key(key).Query(at, 200*time.Millisecond); err == nil {
					ct, _ := resolved.LoadOrStore(w, new(int))
					*ct.(*int)++
				}
			}
		}(w)
	}

	// Churn driver: fail and recover random non-root nodes so the tree
	// repairs (re-homing, re-announced virtual paths, authority refresh)
	// while every lane keeps flushing into the shared sockets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(42)
		down := map[int]bool{}
		for i := 0; i < 16; i++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := 1 + src.Intn(cfg.Nodes-1)
			if down[victim] {
				whose(victim).Recover(victim)
				delete(down, victim)
			} else {
				whose(victim).Fail(victim)
				down[victim] = true
			}
			time.Sleep(75 * time.Millisecond)
		}
		for v := range down {
			whose(v).Recover(v)
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := 0
	resolved.Range(func(_, v any) bool { total += *v.(*int); return true })
	if total == 0 {
		t.Fatal("no query resolved during sharded churn")
	}

	// After churn settles, every key must answer at every node: each
	// lane's shards repaired and the authority schedule kept running.
	time.Sleep(cfg.DeadAfter + 4*cfg.KeepAliveEvery)
	for id := 0; id < cfg.Nodes; id++ {
		for key := 0; key < cfg.Keys; key++ {
			if _, err := whose(id).Key(key).Query(id, 3*time.Second); err != nil {
				t.Fatalf("node %d key %d did not answer after churn: %v", id, key, err)
			}
		}
	}

	if broken := elog.corrupted(); len(broken) > 0 {
		t.Fatalf("concurrent lane flushes corrupted %d frame(s): %q", len(broken), broken[0])
	}

	// Pooled-message balance: once the networks stop, every message the
	// cluster ever allocated must be back in the pool.
	stopAll()
	deadline := time.Now().Add(5 * time.Second)
	for proto.InUse() > base {
		if time.Now().After(deadline) {
			t.Fatalf("proto pool unbalanced after stop: %d messages still out", proto.InUse()-base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("resolved %d queries across %d keys x %d lanes during churn", total, cfg.Keys, cfg.ShardLoops)
}
