package live

import (
	"testing"

	"dup/internal/topology"
	"dup/internal/transport"
)

func testTree() *topology.Tree {
	return topology.FromParents([]int{-1, 0, 0, 1})
}

func TestMemDirectoryUnknownIDs(t *testing.T) {
	d := NewMemDirectory(testTree())
	if got := d.Parent(-1); got != -1 {
		t.Fatalf("Parent(-1) = %d, want -1", got)
	}
	if got := d.Parent(99); got != -1 {
		t.Fatalf("Parent(99) = %d, want -1", got)
	}
	if got := d.AliveAncestor(-5, nil); got != -1 {
		t.Fatalf("AliveAncestor(-5) = %d, want -1", got)
	}
	d.SetParent(99, 0)  // ignored
	d.SetParent(1, 99)  // unknown parent: ignored
	d.SetDead(99, true) // ignored
	if d.Parent(1) != 0 {
		t.Fatalf("Parent(1) = %d after bogus writes, want 0", d.Parent(1))
	}
	if d.Promote(-1) {
		t.Fatal("Promote(-1) succeeded")
	}
	if d.Revive(99) {
		t.Fatal("Revive(99) reported a root")
	}
}

func TestStaticDirectoryUnknownIDs(t *testing.T) {
	d := NewStaticDirectory(testTree())
	if got := d.Parent(99); got != -1 {
		t.Fatalf("Parent(99) = %d, want -1", got)
	}
	if got := d.AliveAncestor(99, nil); got != -1 {
		t.Fatalf("AliveAncestor(99) = %d, want -1", got)
	}
	d.SetParent(99, 0)
	d.SetParent(1, 99)
	if d.Parent(1) != 0 {
		t.Fatalf("Parent(1) = %d after bogus writes, want 0", d.Parent(1))
	}
	if d.Promote(99) {
		t.Fatal("Promote(99) succeeded")
	}
}

func TestStaticDirectoryLookupAfterClose(t *testing.T) {
	d := NewStaticDirectory(testTree())
	if d.Parent(3) != 1 {
		t.Fatalf("Parent(3) = %d before Close, want 1", d.Parent(3))
	}
	d.Close()
	if got := d.Parent(3); got != -1 {
		t.Fatalf("Parent(3) = %d after Close, want -1", got)
	}
	if got := d.AliveAncestor(3, nil); got != -1 {
		t.Fatalf("AliveAncestor(3) = %d after Close, want -1", got)
	}
	if d.Promote(2) {
		t.Fatal("Promote succeeded after Close")
	}
	if d.Revive(0) {
		t.Fatal("Revive reported a root after Close")
	}
	d.SetParent(3, 0) // ignored
	d.Close()         // idempotent
}

func TestStartWithDuplicateHostsFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tree = testTree()
	tr := transport.NewChan(transport.ChanConfig{})
	defer tr.Close()
	_, err := StartWith(cfg, Options{
		Transport: tr,
		Directory: NewMemDirectory(testTree()),
		Hosts:     []int{1, 2, 1},
	})
	if err == nil {
		t.Fatal("StartWith accepted a duplicate host registration")
	}
}
