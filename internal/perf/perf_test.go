package perf

import (
	"os"
	"path/filepath"
	"testing"
)

// quickWorkload shrinks the standard throughput workload so unit tests run
// in milliseconds.
func quickWorkload() Workload {
	w := DefaultWorkloads()[0]
	w.Cfg.Nodes = 128
	w.Cfg.TTL = 600
	w.Cfg.Lead = 10
	w.Cfg.Duration = 1800
	w.Cfg.Warmup = 600
	w.Cfg.Lambda = 5
	return w
}

func TestMeasureReportsPlausibleSample(t *testing.T) {
	s, err := Measure(quickWorkload(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events == 0 || s.EventsPerSec <= 0 || s.BestWallSeconds <= 0 {
		t.Fatalf("degenerate sample: %+v", s)
	}
	if s.AllocsPerRun == 0 || s.AllocsPerKEvent <= 0 {
		t.Fatalf("sample measured no allocations: %+v", s)
	}
	if s.Runs != 2 {
		t.Fatalf("runs = %d, want 2", s.Runs)
	}
}

func TestMeasureRejectsBrokenConfig(t *testing.T) {
	w := quickWorkload()
	w.Cfg.Lambda = -1
	if _, err := Measure(w, 1); err == nil {
		t.Fatal("invalid workload config accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := Load(path)
	if err != nil || len(f.Entries) != 0 || f.Last() != nil {
		t.Fatalf("missing file did not load empty: %+v, %v", f, err)
	}
	e := Entry{Label: "first", Samples: map[string]Sample{"w": {Events: 7}}}
	if err := Append(path, e); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, Entry{Label: "second"}); err != nil {
		t.Fatal(err)
	}
	f, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 2 || f.Entries[0].Label != "first" || f.Last().Label != "second" {
		t.Fatalf("round-trip lost entries: %+v", f)
	}
	if f.Entries[0].Samples["w"].Events != 7 {
		t.Fatalf("sample did not survive: %+v", f.Entries[0])
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage baseline accepted")
	}
}
