package perf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dup/internal/live"
	"dup/internal/transport"
)

// Live-cluster workload shape. The PR 5 harness ran 9 nodes x 8 keys with
// one sequential driver sleeping between rounds, which measured the
// driver, not the cluster; this one runs a 48-node tree hosting 32 keyed
// index trees across 4 shard lanes per node, with one closed-loop query
// driver per node so every lane of every node carries traffic at once.
const (
	liveKeys   = 32
	liveNodes  = 48
	liveShards = 4
	// liveProbeKeys is how many keys the push-to-resolve latency probers
	// sample; probing every key would turn the probers into the workload.
	liveProbeKeys = 8
	// liveMeasure is the steady-state measurement window. Long enough to
	// span many TTL refresh cycles, short enough that a multi-run Measure
	// stays interactive.
	liveMeasure = 2 * time.Second
)

// Replicated-authority workload shape: small enough that the quorum
// timing (not cluster size) dominates the fail-over number, big enough
// that the promoted authority serves a real tree.
const (
	repNodes   = 24
	repKeys    = 8
	repShards  = 2
	repMeasure = 1500 * time.Millisecond
	// repFailoverDeadline bounds the fail-over wait; crossing it means
	// promotion or the quorum floor is broken, which is an error, not a
	// slow sample.
	repFailoverDeadline = 10 * time.Second
)

// liveReplicatedRun measures the replicated authority end to end: a
// 24-node in-process cluster with Replicas=3 runs the steady-state query
// load (Events and throughput, like live-cluster), then the leaseholder
// is killed outright and Failover is the time until a distant site
// resolves a version strictly above everything the dead authority had
// exposed — detection, promotion, the quorum lease round and the
// version-reserve floor, all included.
func liveReplicatedRun() (Result, error) {
	cfg := live.DefaultConfig()
	cfg.Nodes = repNodes
	cfg.MaxDegree = 4
	cfg.Seed = 12
	cfg.TTL = 80 * time.Millisecond
	cfg.Lead = 20 * time.Millisecond
	cfg.Threshold = 1
	cfg.KeepAliveEvery = 20 * time.Millisecond
	cfg.DeadAfter = 100 * time.Millisecond
	// The default beacon period assumes the default TTL; scale it with
	// the compressed clock here (expiry resolves past DeadAfter).
	cfg.RootAnnounceEvery = cfg.TTL / 4
	cfg.Keys = repKeys
	cfg.ShardLoops = repShards
	cfg.Replicas = 3
	nw, err := live.Start(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("live-replicated: %w", err)
	}
	defer nw.Stop()

	// Warm up: every node crosses the interest threshold on every key.
	var wwg sync.WaitGroup
	for id := 1; id < repNodes; id++ {
		wwg.Add(1)
		go func(id int) {
			defer wwg.Done()
			for o := 0; o < repKeys; o++ {
				key := (id*5 + o) % repKeys
				h := nw.Key(key)
				for i := 0; i <= cfg.Threshold+1; i++ {
					h.Query(id, time.Second)
				}
			}
		}(id)
	}
	wwg.Wait()

	// Steady state: closed-loop drivers, one per node, measured by stats
	// delta — the same shape as live-cluster minus the TCP fabric.
	statsBase := nw.Stats()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < repNodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := id % repKeys
			for {
				select {
				case <-stop:
					return
				default:
				}
				nw.Key(key).Query(id, 100*time.Millisecond)
				key++
				if key == repKeys {
					key = 0
				}
			}
		}(id)
	}
	time.Sleep(repMeasure)
	close(stop)
	wg.Wait()
	s, b := nw.Stats(), statsBase
	events := uint64((s.Queries - b.Queries) + (s.Pushes - b.Pushes) +
		(s.Subscribes - b.Subscribes) + (s.Substitutes - b.Substitutes) +
		(s.Acks - b.Acks) + (s.KeepAlives - b.KeepAlives) + (s.Retransmits - b.Retransmits))

	// Fail-over: sample the freshest exposed version at the leaseholder,
	// kill it, and clock how long a distant site takes to resolve past it.
	root := nw.RootID()
	pre, err := nw.Key(0).Query(root, 2*time.Second)
	if err != nil {
		return Result{}, fmt.Errorf("live-replicated: pre-kill query: %w", err)
	}
	site := repNodes - 1
	t0 := time.Now()
	nw.Fail(root)
	deadline := t0.Add(repFailoverDeadline)
	var failover time.Duration
	for {
		r, qerr := nw.Key(0).Query(site, 100*time.Millisecond)
		if qerr == nil && r.Version > pre.Version {
			failover = time.Since(t0)
			break
		}
		if time.Now().After(deadline) {
			return Result{}, fmt.Errorf("live-replicated: no fail-over within %v of killing the leaseholder", repFailoverDeadline)
		}
	}
	return Result{
		Events:   events,
		Failover: failover,
	}, nil
}

// liveClusterRun measures the live data plane end to end: a 48-node
// cluster split across three Networks, every inter-Network message
// crossing a real loopback TCP socket, all liveKeys index trees refreshing
// and every node kept interested in every key by closed-loop drivers.
// Events are the protocol messages the cluster processed (queries, pushes,
// control, acks); FramesPerPush is TCP frames written per push delivered —
// below 1 means the coalescer amortised several protocol messages per
// frame. P50/P99 are push-to-resolve latencies: the time from the
// authority publishing a fresh version to a leaf node resolving it from
// its own pushed copy.
func liveClusterRun() (Result, error) { return liveCluster(liveKeys) }

// liveCluster is the workload body, parameterised by key count so the
// EXPERIMENTS.md key-count sweep can reuse it.
func liveCluster(liveKeys int) (Result, error) {
	cfg := live.DefaultConfig()
	cfg.Nodes = liveNodes
	cfg.MaxDegree = 4
	cfg.Seed = 12
	cfg.TTL = 80 * time.Millisecond
	cfg.Lead = 20 * time.Millisecond
	cfg.Threshold = 1
	cfg.KeepAliveEvery = 20 * time.Millisecond
	cfg.DeadAfter = 100 * time.Millisecond
	// The default beacon period assumes the default TTL; scale it with
	// the compressed clock here (expiry resolves past DeadAfter).
	cfg.RootAnnounceEvery = cfg.TTL / 4
	cfg.Keys = liveKeys
	cfg.ShardLoops = liveShards
	tree := cfg.BuildTree()

	hostSets := make([][]int, 3)
	for id := 0; id < liveNodes; id++ {
		i := id * len(hostSets) / liveNodes
		hostSets[i] = append(hostSets[i], id)
	}
	tcps := make([]*transport.TCP, len(hostSets))
	for i := range hostSets {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Listen:      "127.0.0.1:0",
			Seed:        uint64(i + 1),
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		})
		if err != nil {
			return Result{}, fmt.Errorf("live-cluster: %w", err)
		}
		tcps[i] = tr
	}
	addrOf := map[int]string{}
	for i, hosts := range hostSets {
		for _, id := range hosts {
			addrOf[id] = tcps[i].Addr()
		}
	}
	for i := range tcps {
		local := map[int]bool{}
		for _, id := range hostSets[i] {
			local[id] = true
		}
		for id, addr := range addrOf {
			if !local[id] {
				tcps[i].SetPeer(id, addr)
			}
		}
	}
	dir := live.NewMemDirectory(tree)
	nets := make([]*live.Network, len(hostSets))
	for i, hosts := range hostSets {
		nw, err := live.StartWith(cfg, live.Options{Transport: tcps[i], Directory: dir, Hosts: hosts})
		if err != nil {
			for _, booted := range nets {
				if booted != nil {
					booted.Stop()
				}
			}
			return Result{}, fmt.Errorf("live-cluster: %w", err)
		}
		nets[i] = nw
	}
	defer func() {
		for _, nw := range nets {
			nw.Stop()
		}
	}()
	netBy := make([]*live.Network, liveNodes)
	for i, hosts := range hostSets {
		for _, id := range hosts {
			netBy[id] = nets[i]
		}
	}

	// Warm up: every node crosses the interest threshold on every key, so
	// each keyed DUP tree spans the full cluster and authority refreshes
	// push along every edge. One goroutine per node, each starting at a
	// different key, so the subscription flux spreads across lanes instead
	// of stampeding key by key.
	var wwg sync.WaitGroup
	for id := 1; id < liveNodes; id++ {
		wwg.Add(1)
		go func(id int) {
			defer wwg.Done()
			for o := 0; o < liveKeys; o++ {
				key := (id*7 + o) % liveKeys
				h := netBy[id].Key(key)
				for i := 0; i <= cfg.Threshold+1; i++ {
					h.Query(id, time.Second)
				}
			}
		}(id)
	}
	wwg.Wait()

	// Measure from here: the warmup's subscription flux is connection
	// setup, not steady state.
	var framesBase int64
	for _, tr := range tcps {
		framesBase += tr.FramesOut()
	}
	statsBase := make([]live.Stats, len(nets))
	for i, nw := range nets {
		statsBase[i] = nw.Stats()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Steady state: one closed-loop driver per node cycling through the
	// keys with no think time. After warmup almost every query is a local
	// hit against the node's pushed copy, so the wire carries mostly push
	// traffic while the drivers exercise the sharded receive loops.
	for id := 0; id < liveNodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nw := netBy[id]
			key := id % liveKeys
			for {
				select {
				case <-stop:
					return
				default:
				}
				nw.Key(key).Query(id, 100*time.Millisecond)
				key++
				if key == liveKeys {
					key = 0
				}
			}
		}(id)
	}

	// Push-to-resolve probers: for a few sampled keys, watch the authority
	// publish fresh versions (local query at the root) and stamp the moment
	// a deep leaf first resolves each one from its own copy. The leaf's
	// copy only advances when a push lands, so the gap is propagation
	// latency through the keyed tree, not query latency.
	probeKeys := liveProbeKeys
	if probeKeys > liveKeys {
		probeKeys = liveKeys
	}
	leaf := liveNodes - 1
	latCh := make(chan time.Duration, 1024)
	for p := 0; p < probeKeys; p++ {
		wg.Add(1)
		go func(key int) {
			defer wg.Done()
			hRoot := netBy[0].Key(key)
			hLeaf := netBy[leaf].Key(key)
			rootSeen := map[int64]time.Time{}
			var lastRoot, lastLeaf int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r, err := hRoot.Query(0, 50*time.Millisecond); err == nil && r.Version > lastRoot {
					lastRoot = r.Version
					rootSeen[r.Version] = time.Now()
				}
				if r, err := hLeaf.Query(leaf, 50*time.Millisecond); err == nil && r.Version > lastLeaf {
					lastLeaf = r.Version
					if t0, ok := rootSeen[r.Version]; ok {
						select {
						case latCh <- time.Since(t0):
						default:
						}
					}
					for v := range rootSeen {
						if v <= r.Version {
							delete(rootSeen, v)
						}
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(p)
	}

	time.Sleep(liveMeasure)
	close(stop)
	wg.Wait()

	var frames int64
	for _, tr := range tcps {
		frames += tr.FramesOut()
	}
	frames -= framesBase
	var events uint64
	var pushes int64
	for i, nw := range nets {
		s, b := nw.Stats(), statsBase[i]
		pushes += s.Pushes - b.Pushes
		events += uint64((s.Queries - b.Queries) + (s.Pushes - b.Pushes) +
			(s.Subscribes - b.Subscribes) + (s.Substitutes - b.Substitutes) +
			(s.Acks - b.Acks) + (s.KeepAlives - b.KeepAlives) + (s.Retransmits - b.Retransmits))
	}
	if pushes == 0 {
		return Result{}, fmt.Errorf("live-cluster: no pushes flowed during the measurement window")
	}
	close(latCh)
	var lats []time.Duration
	for d := range latCh {
		lats = append(lats, d)
	}
	res := Result{
		Events:        events,
		FramesPerPush: float64(frames) / float64(pushes),
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.P50Latency = lats[len(lats)/2]
		res.P99Latency = lats[len(lats)*99/100]
	}
	return res, nil
}
