package perf

import (
	"fmt"
	"time"

	"dup/internal/live"
	"dup/internal/topology"
	"dup/internal/transport"
)

// liveKeys is how many keyed index trees the live-cluster workload runs.
// Eight keys refreshing on the same schedule is what gives the send-side
// coalescer envelopes to build: each authority tick emits one push per
// key per target, and they all land in the same flush.
const liveKeys = 8

// liveClusterRun measures the live data plane end to end: a nine-node
// cluster split across three Networks, every inter-Network message
// crossing a real loopback TCP socket, all liveKeys index trees
// refreshing and every node kept interested in every key. Events are the
// protocol messages the cluster processed (queries, pushes, control,
// acks); FramesPerPush is TCP frames written per push delivered — below 1
// means the coalescer amortised several protocol messages per frame.
func liveClusterRun() (Result, error) { return liveCluster(liveKeys) }

// liveCluster is the workload body, parameterised by key count so the
// EXPERIMENTS.md key-count sweep can reuse it.
func liveCluster(liveKeys int) (Result, error) {
	//        0
	//      /   \
	//     1     2
	//    / \   / \
	//   3   4 5   6
	//   |   |
	//   7   8
	tree := topology.FromParents([]int{-1, 0, 0, 1, 1, 2, 2, 3, 4})
	cfg := live.DefaultConfig()
	cfg.Tree = tree
	cfg.TTL = 80 * time.Millisecond
	cfg.Lead = 20 * time.Millisecond
	cfg.Threshold = 1
	cfg.KeepAliveEvery = 20 * time.Millisecond
	cfg.DeadAfter = 100 * time.Millisecond
	cfg.Keys = liveKeys

	hostSets := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	tcps := make([]*transport.TCP, len(hostSets))
	for i := range hostSets {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Listen:      "127.0.0.1:0",
			Seed:        uint64(i + 1),
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		})
		if err != nil {
			return Result{}, fmt.Errorf("live-cluster: %w", err)
		}
		tcps[i] = tr
	}
	addrOf := map[int]string{}
	for i, hosts := range hostSets {
		for _, id := range hosts {
			addrOf[id] = tcps[i].Addr()
		}
	}
	for i := range tcps {
		local := map[int]bool{}
		for _, id := range hostSets[i] {
			local[id] = true
		}
		for id, addr := range addrOf {
			if !local[id] {
				tcps[i].SetPeer(id, addr)
			}
		}
	}
	dir := live.NewMemDirectory(tree)
	nets := make([]*live.Network, len(hostSets))
	for i, hosts := range hostSets {
		nw, err := live.StartWith(cfg, live.Options{Transport: tcps[i], Directory: dir, Hosts: hosts})
		if err != nil {
			for _, booted := range nets {
				if booted != nil {
					booted.Stop()
				}
			}
			return Result{}, fmt.Errorf("live-cluster: %w", err)
		}
		nets[i] = nw
	}
	defer func() {
		for _, nw := range nets {
			nw.Stop()
		}
	}()
	netOf := func(id int) *live.Network {
		for i, hosts := range hostSets {
			for _, h := range hosts {
				if h == id {
					return nets[i]
				}
			}
		}
		return nil
	}

	// Warm up: every node crosses the interest threshold on every key, so
	// each keyed DUP tree spans the full cluster and authority refreshes
	// push along every edge.
	for key := 0; key < liveKeys; key++ {
		for id := 1; id < tree.N(); id++ {
			for i := 0; i <= cfg.Threshold+1; i++ {
				netOf(id).QueryKey(id, key, time.Second)
			}
		}
	}

	// Measure from here: the warmup's subscription flux is connection
	// setup, not steady state.
	var framesBase int64
	for _, tr := range tcps {
		framesBase += tr.FramesOut()
	}
	statsBase := make([]live.Stats, len(nets))
	for i, nw := range nets {
		statsBase[i] = nw.Stats()
	}

	// Steady state: a query per (node, key) every 25 ms keeps every shard
	// above the interest threshold (almost all are local hits, so the wire
	// carries mostly push traffic) while the authority refreshes all
	// liveKeys trees every TTL.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for key := 0; key < liveKeys; key++ {
			for id := 0; id < tree.N(); id++ {
				netOf(id).QueryKey(id, key, 100*time.Millisecond)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	var frames int64
	for _, tr := range tcps {
		frames += tr.FramesOut()
	}
	frames -= framesBase
	var events uint64
	var pushes int64
	for i, nw := range nets {
		s, b := nw.Stats(), statsBase[i]
		pushes += s.Pushes - b.Pushes
		events += uint64((s.Queries - b.Queries) + (s.Pushes - b.Pushes) +
			(s.Subscribes - b.Subscribes) + (s.Substitutes - b.Substitutes) +
			(s.Acks - b.Acks) + (s.KeepAlives - b.KeepAlives) + (s.Retransmits - b.Retransmits))
	}
	if pushes == 0 {
		return Result{}, fmt.Errorf("live-cluster: no pushes flowed during the measurement window")
	}
	return Result{
		Events:        events,
		FramesPerPush: float64(frames) / float64(pushes),
	}, nil
}
