package perf

import (
	"testing"

	"dup/internal/raceflag"
)

// baselinePath is BENCH_sim.json at the repository root, relative to this
// package directory.
const baselinePath = "../../BENCH_sim.json"

// Guard bounds. Throughput varies wildly across machines (CI containers,
// laptops, loaded hosts), so its bound only catches order-of-magnitude
// collapses; allocations per event are machine-independent and determinism
// makes them stable, so their bound is tight.
const (
	maxThroughputDrop = 25.0 // fresh events/s may not be 25x below recorded
	maxAllocGrowth    = 3.0  // fresh allocs/1k-events may not be 3x recorded
)

// TestNoRegressionAgainstBaseline measures the standard workloads once and
// compares them against the newest BENCH_sim.json entry. It skips when the
// baseline is absent (fresh clones before the first `dupbench -perf
// -perflabel ...` run).
func TestNoRegressionAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("measures full workloads, skipped with -short")
	}
	// The race detector slows the measured code 10-30x and sync.Pool
	// drops items at random under it, so neither bound compares against
	// a baseline recorded without it; the plain `go test ./...` pass is
	// where this guard bites.
	if raceflag.Enabled {
		t.Skip("baseline comparisons are meaningless under the race detector")
	}
	f, err := Load(baselinePath)
	if err != nil {
		t.Fatalf("baseline unreadable: %v", err)
	}
	base := f.Last()
	if base == nil {
		t.Skipf("no baseline recorded in %s; run dupbench -perf -perflabel to create one", baselinePath)
	}
	for _, w := range DefaultWorkloads() {
		rec, ok := base.Samples[w.ID]
		if !ok {
			// A workload added after the baseline was recorded has nothing
			// to compare against; say so instead of silently passing.
			t.Logf("%s: not in baseline entry %q, skipped — refresh with dupbench -perf -perflabel",
				w.ID, base.Label)
			continue
		}
		// Samples record min-of-runs, so the more -perfruns the recording
		// used, the luckier its alloc floor: a 2-run measurement cannot
		// fairly chase a 12-run baseline's minimum. Match the baseline's
		// run count for the alloc-checked workloads (they all finish in
		// well under 100ms per run); the NoisyAllocs ones skip the alloc
		// bound and the 25x throughput bound never needs more than two.
		runs := 2
		if !w.NoisyAllocs && rec.Runs > runs {
			runs = rec.Runs
		}
		got, err := Measure(w, runs)
		if err != nil {
			t.Fatalf("%s: %v", w.ID, err)
		}
		if got.EventsPerSec*maxThroughputDrop < rec.EventsPerSec {
			t.Errorf("%s: throughput collapsed: %.0f events/s vs recorded %.0f (allowing %gx)",
				w.ID, got.EventsPerSec, rec.EventsPerSec, maxThroughputDrop)
		}
		// Workloads flagged NoisyAllocs allocate in runtime machinery
		// (goroutines, sockets, timers) outside the measured code, so
		// their counts are not comparable.
		if w.NoisyAllocs {
			continue
		}
		if rec.AllocsPerKEvent > 0 && got.AllocsPerKEvent > rec.AllocsPerKEvent*maxAllocGrowth {
			t.Errorf("%s: allocation regression: %.2f allocs/1k-events vs recorded %.2f (allowing %gx)",
				w.ID, got.AllocsPerKEvent, rec.AllocsPerKEvent, maxAllocGrowth)
		}
	}
}
