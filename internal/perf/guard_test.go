package perf

import (
	"testing"

	"dup/internal/raceflag"
)

// baselinePath is BENCH_sim.json at the repository root, relative to this
// package directory.
const baselinePath = "../../BENCH_sim.json"

// Guard bounds. Throughput varies wildly across machines (CI containers,
// laptops, loaded hosts), so its bound only catches order-of-magnitude
// collapses; allocations per event are machine-independent and determinism
// makes them stable, so their bound is tight.
const (
	maxThroughputDrop = 25.0 // fresh events/s may not be 25x below recorded
	maxAllocGrowth    = 3.0  // fresh allocs/1k-events may not be 3x recorded
)

// TestNoRegressionAgainstBaseline measures the standard workloads once and
// compares them against the newest BENCH_sim.json entry. It skips when the
// baseline is absent (fresh clones before the first `dupbench -perf
// -perflabel ...` run).
func TestNoRegressionAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("measures full workloads, skipped with -short")
	}
	f, err := Load(baselinePath)
	if err != nil {
		t.Fatalf("baseline unreadable: %v", err)
	}
	base := f.Last()
	if base == nil {
		t.Skipf("no baseline recorded in %s; run dupbench -perf -perflabel to create one", baselinePath)
	}
	for _, w := range DefaultWorkloads() {
		rec, ok := base.Samples[w.ID]
		if !ok {
			continue // workload added after the baseline was recorded
		}
		got, err := Measure(w, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.ID, err)
		}
		if got.EventsPerSec*maxThroughputDrop < rec.EventsPerSec {
			t.Errorf("%s: throughput collapsed: %.0f events/s vs recorded %.0f (allowing %gx)",
				w.ID, got.EventsPerSec, rec.EventsPerSec, maxThroughputDrop)
		}
		// Under -race, sync.Pool drops items at random, so pooled hot
		// paths allocate by design and the recorded counts don't apply.
		if raceflag.Enabled {
			continue
		}
		if rec.AllocsPerKEvent > 0 && got.AllocsPerKEvent > rec.AllocsPerKEvent*maxAllocGrowth {
			t.Errorf("%s: allocation regression: %.2f allocs/1k-events vs recorded %.2f (allowing %gx)",
				w.ID, got.AllocsPerKEvent, rec.AllocsPerKEvent, maxAllocGrowth)
		}
	}
}
