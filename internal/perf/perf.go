// Package perf is the repeatable performance harness behind the
// BENCH_sim.json baseline at the repository root. It runs fixed simulator
// workloads several times, measures throughput (events per second) and
// allocation pressure (allocations per run and per thousand events), and
// appends the result as a labelled entry to the baseline file, so
// regressions show up as a diff against recorded history rather than as
// folklore.
//
// The quickest way to refresh the baseline:
//
//	go run ./cmd/dupbench -perf -perflabel "my change"
//
// internal/perf/guard_test.go compares a fresh measurement against the
// newest recorded entry and fails on order-of-magnitude regressions; it is
// skipped when the baseline file is absent.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dup/internal/scheme"
	"dup/internal/scheme/cup"
	"dup/internal/scheme/dupscheme"
	"dup/internal/sim"
)

// Workload is one fixed simulator configuration the harness measures.
type Workload struct {
	ID  string
	Cfg sim.Config
	New func() scheme.Scheme
}

// throughputConfig mirrors bench_test.go's benchConfig(12) with λ = 50:
// 1024 nodes, three TTL cycles, the configuration BenchmarkSimulatorThroughput
// uses, so harness numbers and `go test -bench SimulatorThroughput` numbers
// describe the same run.
func throughputConfig() sim.Config {
	cfg := sim.Default()
	cfg.Nodes = 1024
	cfg.Duration = 3 * cfg.TTL
	cfg.Warmup = cfg.TTL
	cfg.Seed = 12
	cfg.Lambda = 50
	return cfg
}

// DefaultWorkloads returns the standard measurement set: the throughput
// configuration under each scheme family, plus a churn variant that
// exercises failure repair.
func DefaultWorkloads() []Workload {
	pcxCfg := throughputConfig()
	pcxCfg.Lead = 0 // PCX has no push schedule
	churnCfg := throughputConfig()
	churnCfg.Lambda = 10
	churnCfg.FailRate = 0.02
	churnCfg.DetectDelay = 30
	churnCfg.DownTime = 600
	churnCfg.RetryTimeout = 5
	newDUP := func() scheme.Scheme { return dupscheme.New() }
	return []Workload{
		{"throughput-dup", throughputConfig(), newDUP},
		{"throughput-cup", throughputConfig(), func() scheme.Scheme { return cup.New() }},
		{"throughput-pcx", pcxCfg, func() scheme.Scheme { return scheme.NewPCX() }},
		{"churn-dup", churnCfg, newDUP},
	}
}

// Sample is the measurement of one workload across several runs. Throughput
// comes from the fastest run (least scheduler noise); allocation counts are
// per run and deterministic, so any run serves.
type Sample struct {
	EventsPerSec    float64 `json:"events_per_sec"`
	SimSecPerSec    float64 `json:"simsec_per_sec"`
	Events          uint64  `json:"events"`
	AllocsPerRun    uint64  `json:"allocs_per_run"`
	BytesPerRun     uint64  `json:"bytes_per_run"`
	AllocsPerKEvent float64 `json:"allocs_per_1000_events"`
	BestWallSeconds float64 `json:"best_wall_seconds"`
	Runs            int     `json:"runs"`
}

// Measure runs w `runs` times and aggregates the measurements.
func Measure(w Workload, runs int) (Sample, error) {
	if runs < 1 {
		runs = 1
	}
	s := Sample{Runs: runs}
	var before, after runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := sim.Run(w.Cfg, w.New())
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return Sample{}, fmt.Errorf("perf: %s: %w", w.ID, err)
		}
		allocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		if i == 0 || wall < s.BestWallSeconds {
			s.BestWallSeconds = wall
			s.Events = r.Events
			s.EventsPerSec = float64(r.Events) / wall
			s.SimSecPerSec = r.SimTime / wall
		}
		if i == 0 || allocs < s.AllocsPerRun {
			s.AllocsPerRun = allocs
			s.BytesPerRun = bytes
		}
	}
	if s.Events > 0 {
		s.AllocsPerKEvent = float64(s.AllocsPerRun) / float64(s.Events) * 1000
	}
	return s, nil
}

// Entry is one labelled harness invocation: every workload's sample plus
// enough provenance to interpret the numbers later.
type Entry struct {
	Label     string            `json:"label"`
	Recorded  string            `json:"recorded"` // RFC 3339, UTC
	GoVersion string            `json:"go_version"`
	Platform  string            `json:"platform"` // GOOS/GOARCH, NumCPU
	Samples   map[string]Sample `json:"samples"`  // keyed by Workload.ID
}

// Collect measures every workload and assembles a labelled entry.
func Collect(ws []Workload, runs int, label string) (Entry, error) {
	e := Entry{
		Label:     label,
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Platform:  fmt.Sprintf("%s/%s, %d cpu", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Samples:   make(map[string]Sample, len(ws)),
	}
	for _, w := range ws {
		s, err := Measure(w, runs)
		if err != nil {
			return Entry{}, err
		}
		e.Samples[w.ID] = s
	}
	return e, nil
}

// File is the on-disk shape of BENCH_sim.json: entries in recording order,
// oldest first, so the file reads as the performance history of the repo.
type File struct {
	Entries []Entry `json:"entries"`
}

// Last returns the newest entry, or nil for an empty file.
func (f *File) Last() *Entry {
	if len(f.Entries) == 0 {
		return nil
	}
	return &f.Entries[len(f.Entries)-1]
}

// Load reads a baseline file. A missing file is not an error: it loads as
// an empty history, so the first Append creates the file.
func Load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &f, nil
}

// Append adds e to the baseline at path, creating the file when absent.
func Append(path string, e Entry) error {
	f, err := Load(path)
	if err != nil {
		return err
	}
	f.Entries = append(f.Entries, e)
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
