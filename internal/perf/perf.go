// Package perf is the repeatable performance harness behind the
// BENCH_sim.json baseline at the repository root. It runs fixed simulator
// workloads several times, measures throughput (events per second) and
// allocation pressure (allocations per run and per thousand events), and
// appends the result as a labelled entry to the baseline file, so
// regressions show up as a diff against recorded history rather than as
// folklore.
//
// The quickest way to refresh the baseline:
//
//	go run ./cmd/dupbench -perf -perflabel "my change"
//
// internal/perf/guard_test.go compares a fresh measurement against the
// newest recorded entry and fails on order-of-magnitude regressions; it is
// skipped when the baseline file is absent.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dup/internal/proto"
	"dup/internal/scheme"
	"dup/internal/scheme/cup"
	"dup/internal/scheme/dupscheme"
	"dup/internal/sim"
	"dup/internal/wire"
)

// Workload is one fixed measurement the harness runs: either a simulator
// configuration (Cfg and New set) or an arbitrary function (Run set).
type Workload struct {
	ID  string
	Cfg sim.Config
	New func() scheme.Scheme
	// Run, when set, replaces the simulator: it performs the work and
	// reports what it measured.
	Run func() (Result, error)
	// NoisyAllocs marks workloads whose allocation counts are dominated by
	// runtime machinery outside the measured code (goroutines, sockets,
	// timers) and so vary run to run; the regression guard skips their
	// allocation bound.
	NoisyAllocs bool
}

// Result is what one workload run measured: how many events it processed
// (for a codec workload, events are messages; for a live cluster,
// protocol messages), how much simulated time elapsed (0 when the notion
// does not apply), and — for workloads running a real transport — how
// many wire frames each push cost (0 when not applicable; below 1 means
// the send-side coalescer batched several messages per frame).
type Result struct {
	Events        uint64
	SimSec        float64
	FramesPerPush float64
	// P50Latency/P99Latency are push-to-resolve propagation latencies for
	// workloads that measure them (zero elsewhere): the time from an
	// authority publishing a fresh version to a distant node resolving it
	// from its own pushed copy.
	P50Latency time.Duration
	P99Latency time.Duration
	// Failover is how long the replicated-authority workload took from
	// killing the leaseholder to a remote site resolving a version above
	// everything the dead authority had exposed (zero elsewhere).
	Failover time.Duration
}

// run executes the workload once.
func (w Workload) run() (Result, error) {
	if w.Run != nil {
		return w.Run()
	}
	r, err := sim.Run(w.Cfg, w.New())
	if err != nil {
		return Result{}, err
	}
	return Result{Events: r.Events, SimSec: r.SimTime}, nil
}

// throughputConfig mirrors bench_test.go's benchConfig(12) with λ = 50:
// 1024 nodes, three TTL cycles, the configuration BenchmarkSimulatorThroughput
// uses, so harness numbers and `go test -bench SimulatorThroughput` numbers
// describe the same run.
func throughputConfig() sim.Config {
	cfg := sim.Default()
	cfg.Nodes = 1024
	cfg.Duration = 3 * cfg.TTL
	cfg.Warmup = cfg.TTL
	cfg.Seed = 12
	cfg.Lambda = 50
	return cfg
}

// DefaultWorkloads returns the standard measurement set: the throughput
// configuration under each scheme family, plus a churn variant that
// exercises failure repair.
func DefaultWorkloads() []Workload {
	pcxCfg := throughputConfig()
	pcxCfg.Lead = 0 // PCX has no push schedule
	churnCfg := throughputConfig()
	churnCfg.Lambda = 10
	churnCfg.FailRate = 0.02
	churnCfg.DetectDelay = 30
	churnCfg.DownTime = 600
	churnCfg.RetryTimeout = 5
	newDUP := func() scheme.Scheme { return dupscheme.New() }
	return []Workload{
		{ID: "throughput-dup", Cfg: throughputConfig(), New: newDUP},
		{ID: "throughput-cup", Cfg: throughputConfig(), New: func() scheme.Scheme { return cup.New() }},
		{ID: "throughput-pcx", Cfg: pcxCfg, New: func() scheme.Scheme { return scheme.NewPCX() }},
		{ID: "churn-dup", Cfg: churnCfg, New: newDUP},
		{ID: "wire-codec", Run: wireCodecRun},
		{ID: "wire-burst", Run: wireBurstRun},
		{ID: "live-cluster", Run: liveClusterRun, NoisyAllocs: true},
		{ID: "live-replicated", Run: liveReplicatedRun, NoisyAllocs: true},
	}
}

// wireCodecRun measures the TCP transport's hot path: frame-encode and
// decode a representative message mix (every kind, realistic paths, a
// piggybacked control message, keyed traffic and a coalescing batch
// envelope) 100000 times. Events are messages, so allocs_per_1000_events
// reads as allocations per thousand messages — the decode side draws from
// the proto pool and the encoder's scratch from the shared buffer pool,
// so steady state allocates (almost) nothing.
func wireCodecRun() (Result, error) {
	const rounds = 100000 / (proto.NumKinds + 1)
	mix := codecMix()
	defer func() {
		for _, m := range mix {
			proto.Release(m)
		}
	}()
	buf := make([]byte, 0, 256)
	var events uint64
	for i := 0; i < rounds; i++ {
		for _, m := range mix {
			buf = wire.AppendFrame(buf[:0], m)
			got, err := wire.DecodeMessage(buf[4:])
			if err != nil {
				return Result{}, fmt.Errorf("wire-codec: %w", err)
			}
			if got.Kind != m.Kind || got.Seq != m.Seq || len(got.Path) != len(m.Path) ||
				got.Key != m.Key || len(got.Batch) != len(m.Batch) {
				proto.Release(got)
				return Result{}, fmt.Errorf("wire-codec: round-trip mismatch for %v", m.Kind)
			}
			proto.Release(got)
			events++
		}
	}
	return Result{Events: events}, nil
}

// codecMix builds the representative message mix the codec workloads
// share; the caller releases it.
func codecMix() []*proto.Message {
	mix := make([]*proto.Message, 0, proto.NumKinds+1)
	for k := 0; k < proto.NumKinds; k++ {
		m := proto.NewMessage()
		m.Kind = proto.Kind(k)
		if m.Kind == proto.KindBatch {
			// The envelope kind carries members, not fields of its own.
			m.To, m.Origin, m.Seq = k*31, 42, int64(k)<<20
			for i := 0; i < 4; i++ {
				sub := proto.NewMessage()
				sub.Kind = proto.KindPush
				sub.To, sub.Origin, sub.Key = k*31, 42, i
				sub.Version, sub.Expiry = 12345, 1.7e9
				m.Batch = append(m.Batch, sub)
			}
			mix = append(mix, m)
			continue
		}
		m.To, m.Origin, m.Subject = k*31, 42, 7
		m.Old, m.New = 7, 11
		m.Seq, m.Version, m.Hops = int64(k)<<20, 12345, k
		m.Expiry = 1.7e9 + float64(k)
		for p := 0; p < k; p++ {
			m.Path = append(m.Path, p*1000)
		}
		if m.Kind == proto.KindPush {
			m.SetPiggy(proto.KindSubscribe, 7)
		}
		mix = append(mix, m)
	}
	// One keyed message exercises the version-3 key varint path.
	keyed := proto.NewMessage()
	keyed.Kind = proto.KindRequest
	keyed.To, keyed.Origin, keyed.Key = 9, 42, 64
	keyed.Seq, keyed.Hops = 77, 2
	keyed.Path = append(keyed.Path, 42, 17)
	mix = append(mix, keyed)
	return mix
}

// wireBurstRun measures the receive path's burst decode: the codec mix
// framed into one wire image and streamed through Reader.ReadBurst, the
// loop TCP's readLoop runs per inbound connection. Events are frames, so
// events_per_sec reads as inbound frames per second through burst decode
// and allocs_per_1000_events as allocations per thousand frames — the
// fill buffer and burst slice are reused and the messages pooled, so
// steady state allocates (almost) nothing.
func wireBurstRun() (Result, error) {
	const rounds = 100000 / (proto.NumKinds + 1)
	mix := codecMix()
	defer func() {
		for _, m := range mix {
			proto.Release(m)
		}
	}()
	var stream []byte
	for _, m := range mix {
		stream = wire.AppendFrame(stream, m)
	}
	r := wire.NewReader(&loopReader{data: stream, left: rounds})
	var events uint64
	for {
		ms, err := r.ReadBurst(0)
		for _, m := range ms {
			if int(m.Kind) >= proto.NumKinds {
				return Result{}, fmt.Errorf("wire-burst: decoded unknown kind %d", m.Kind)
			}
			proto.Release(m)
			events++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("wire-burst: %w", err)
		}
	}
	if want := uint64(rounds * len(mix)); events != want {
		return Result{}, fmt.Errorf("wire-burst: decoded %d frames, want %d", events, want)
	}
	return Result{Events: events}, nil
}

// loopReader serves one byte image `left` times over, modelling a socket
// with a long backlog of identical traffic.
type loopReader struct {
	data      []byte
	off, left int
}

func (lr *loopReader) Read(p []byte) (int, error) {
	if lr.left == 0 {
		return 0, io.EOF
	}
	n := copy(p, lr.data[lr.off:])
	lr.off += n
	if lr.off == len(lr.data) {
		lr.off = 0
		lr.left--
	}
	return n, nil
}

// Sample is the measurement of one workload across several runs. Throughput
// comes from the fastest run (least scheduler noise); allocation counts are
// per run and deterministic, so any run serves.
type Sample struct {
	EventsPerSec    float64 `json:"events_per_sec"`
	SimSecPerSec    float64 `json:"simsec_per_sec"`
	Events          uint64  `json:"events"`
	AllocsPerRun    uint64  `json:"allocs_per_run"`
	BytesPerRun     uint64  `json:"bytes_per_run"`
	AllocsPerKEvent float64 `json:"allocs_per_1000_events"`
	// FramesPerPush is wire frames sent per push delivered, for workloads
	// driving a real transport; below 1 means the send-side coalescer
	// batched several protocol messages per frame. Omitted elsewhere.
	FramesPerPush float64 `json:"frames_per_push,omitempty"`
	// P50LatencyMS/P99LatencyMS are push-to-resolve latencies in
	// milliseconds for workloads that measure propagation (the live
	// cluster); omitted elsewhere.
	P50LatencyMS float64 `json:"p50_latency_ms,omitempty"`
	P99LatencyMS float64 `json:"p99_latency_ms,omitempty"`
	// FailoverMS is the replicated-authority workload's fail-over time in
	// milliseconds: leaseholder kill to a remote site resolving a version
	// above everything the dead authority exposed; omitted elsewhere.
	FailoverMS      float64 `json:"failover_ms,omitempty"`
	BestWallSeconds float64 `json:"best_wall_seconds"`
	Runs            int     `json:"runs"`
}

// Measure runs w `runs` times and aggregates the measurements.
func Measure(w Workload, runs int) (Sample, error) {
	if runs < 1 {
		runs = 1
	}
	s := Sample{Runs: runs}
	var before, after runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := w.run()
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return Sample{}, fmt.Errorf("perf: %s: %w", w.ID, err)
		}
		allocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		if i == 0 || wall < s.BestWallSeconds {
			s.BestWallSeconds = wall
			s.Events = r.Events
			s.EventsPerSec = float64(r.Events) / wall
			s.SimSecPerSec = r.SimSec / wall
			s.FramesPerPush = r.FramesPerPush
			s.P50LatencyMS = float64(r.P50Latency) / float64(time.Millisecond)
			s.P99LatencyMS = float64(r.P99Latency) / float64(time.Millisecond)
			s.FailoverMS = float64(r.Failover) / float64(time.Millisecond)
		}
		if i == 0 || allocs < s.AllocsPerRun {
			s.AllocsPerRun = allocs
			s.BytesPerRun = bytes
		}
	}
	if s.Events > 0 {
		s.AllocsPerKEvent = float64(s.AllocsPerRun) / float64(s.Events) * 1000
	}
	return s, nil
}

// Entry is one labelled harness invocation: every workload's sample plus
// enough provenance to interpret the numbers later.
type Entry struct {
	Label     string            `json:"label"`
	Recorded  string            `json:"recorded"` // RFC 3339, UTC
	GoVersion string            `json:"go_version"`
	Platform  string            `json:"platform"` // GOOS/GOARCH, NumCPU
	Samples   map[string]Sample `json:"samples"`  // keyed by Workload.ID
}

// Collect measures every workload and assembles a labelled entry.
func Collect(ws []Workload, runs int, label string) (Entry, error) {
	e := Entry{
		Label:     label,
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Platform:  fmt.Sprintf("%s/%s, %d cpu", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Samples:   make(map[string]Sample, len(ws)),
	}
	for _, w := range ws {
		s, err := Measure(w, runs)
		if err != nil {
			return Entry{}, err
		}
		e.Samples[w.ID] = s
	}
	return e, nil
}

// File is the on-disk shape of BENCH_sim.json: entries in recording order,
// oldest first, so the file reads as the performance history of the repo.
type File struct {
	Entries []Entry `json:"entries"`
}

// Last returns the newest entry, or nil for an empty file.
func (f *File) Last() *Entry {
	if len(f.Entries) == 0 {
		return nil
	}
	return &f.Entries[len(f.Entries)-1]
}

// Load reads a baseline file. A missing file is not an error: it loads as
// an empty history, so the first Append creates the file.
func Load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &f, nil
}

// Append adds e to the baseline at path, creating the file when absent.
func Append(path string, e Entry) error {
	f, err := Load(path)
	if err != nil {
		return err
	}
	f.Entries = append(f.Entries, e)
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
