package replica

import (
	"testing"
	"time"

	"dup/internal/proto"
)

// TestNextAnnounceLeaderAndLeaseGated pins who may bump the soft-state
// tree's root sequence: only the current leaseholder, and only while its
// lease is live. Followers and lease-expired leaders get (0, false), and
// the values a serving leader hands out are strictly increasing.
func TestNextAnnounceLeaderAndLeaseGated(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	if _, ok := g.NextAnnounce(now); ok {
		t.Fatal("follower issued an announce sequence")
	}
	g.BootLeader()
	if _, ok := g.NextAnnounce(now); ok {
		t.Fatal("leader issued an announce sequence before any lease ack")
	}
	c.pump(g.Tick(now), now)
	var prev int64
	for i := 0; i < 5; i++ {
		s, ok := g.NextAnnounce(now)
		if !ok {
			t.Fatalf("serving leader refused announce %d", i)
		}
		if s <= prev {
			t.Fatalf("announce sequence not increasing: %d after %d", s, prev)
		}
		prev = s
	}
	// The lease runs out unrenewed; the sequence source dries up with it.
	later := now.Add(2 * time.Second)
	drop(g.Tick(later))
	if _, ok := g.NextAnnounce(later); ok {
		t.Fatal("leader issued an announce sequence past an expired lease")
	}
}

// TestNextAnnounceMonotoneAcrossFailover is the soft-state half of the
// fail-over floor: a successor's announce sequences must land strictly
// above everything the deposed leader ever issued (terms are the high
// bits), and the deposed leader must fall silent the moment it learns of
// the higher term.
func TestNextAnnounceMonotoneAcrossFailover(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	var highest int64
	for i := 0; i < 100; i++ {
		s, ok := g0.NextAnnounce(now)
		if !ok {
			t.Fatalf("serving leader refused announce %d", i)
		}
		highest = s
	}
	// Replica 1 takes over (the old leader's promise never arrives).
	g1 := c.groups[1]
	var kept []*proto.Message
	for _, m := range g1.StartCandidate(now) {
		if m.To == 0 {
			proto.Release(m)
			continue
		}
		kept = append(kept, m)
	}
	c.pump(kept, now)
	if !g1.Leading() {
		t.Fatal("candidate did not reach quorum with one peer alive")
	}
	s, ok := g1.NextAnnounce(now)
	if !ok {
		t.Fatal("new leaseholder refused to announce")
	}
	if s <= highest {
		t.Fatalf("announce sequence regressed across fail-over: %d after %d", s, highest)
	}
	// The old leader comes back and hears the higher term on the next
	// renewal round: it must fall silent for good.
	c.pump(g1.Tick(now.Add(400*time.Millisecond)), now.Add(400*time.Millisecond))
	if _, ok := g0.NextAnnounce(now); ok {
		t.Fatal("deposed leader still issuing announce sequences")
	}
}

// TestReserveStatus checks the stats surface: lag is the widest gap
// between a key's log head and its quorum-accepted version, headroom is
// what remains of the reserve, and non-leaders report leading=false.
func TestReserveStatus(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g := c.groups[0]
	if _, _, leading := g.ReserveStatus(); leading {
		t.Fatal("follower claims to lead")
	}
	g.BootLeader()
	c.pump(g.Tick(now), now)
	if lag, headroom, leading := g.ReserveStatus(); !leading || lag != 0 || headroom != 2 {
		t.Fatalf("idle leader: lag=%d headroom=%d leading=%v, want 0, 2, true", lag, headroom, leading)
	}
	// Two exposures ride the reserve with the followers partitioned: the
	// log head runs two ahead of anything a quorum accepted.
	var pending []*proto.Message
	for want := int64(1); want <= 2; want++ {
		v, out, ok := g.Bump(0, want, 2000.5, now)
		pending = append(pending, out...)
		if !ok || v != want {
			t.Fatalf("Bump(%d) = (%d, ok=%v) inside the reserve", want, v, ok)
		}
	}
	if lag, headroom, leading := g.ReserveStatus(); !leading || lag != 2 || headroom != 0 {
		t.Fatalf("exhausted reserve: lag=%d headroom=%d leading=%v, want 2, 0, true", lag, headroom, leading)
	}
	// Heal; the accepts drain the lag and reopen the headroom.
	c.pump(pending, now)
	if lag, headroom, leading := g.ReserveStatus(); !leading || lag != 0 || headroom != 2 {
		t.Fatalf("healed leader: lag=%d headroom=%d leading=%v, want 0, 2, true", lag, headroom, leading)
	}
}
