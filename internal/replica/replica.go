// Package replica is the authority's quorum: a small-R ordered update
// log that replicates each key's version stream across a fixed set of
// nodes, so losing the authority's disk no longer loses the key. The
// protocol is a compact viewstamped/Paxos-style accept round driven
// entirely by the host layer (dup/internal/live), which owns the
// goroutines, the transport and the clock — a Group is a locked state
// machine that turns incoming frames and ticks into outgoing frames.
//
// # Version-reserve leases
//
// The hot path must stay a single local append: the leader may not cross
// the quorum per TTL refresh. The trick is a version reserve B: the
// leader may expose (serve or push) version v for a key only while some
// quorum has durably accepted at least v-B for it. Refreshes then run
// ahead of replication by up to B versions on nothing but a local fsync,
// while a lagging or partitioned quorum stalls the stream instead of
// silently un-replicating it.
//
// Failover rests on quorum intersection: a candidate gathers accepted-log
// snapshots from a quorum of members and starts every key at
//
//	floor(k) = max accepted version over the quorum + B + 1
//
// Any version a previous leader ever exposed had a quorum accepting at
// least v-B, every quorum intersects the candidate's, so floor(k) > v for
// every exposed v: the version stream never regresses across failover,
// even under dueling leaders (the DUP data plane already ignores version
// downgrades). The new floor entry must itself reach a quorum before it
// is exposed, which closes the loop for the next failover.
//
// The time-based lease is a liveness and freshness device on top: the
// leader serves only while a quorum has recently acknowledged its lease,
// so an isolated leader goes read-only stale within one lease instead of
// serving a diverging stream, and followers waiting out a valid lease
// avoid dueling-candidate churn for equal terms. Safety never depends on
// clocks — a expired-lease leader can only stop exposing, never regress.
//
// # Online reconfiguration
//
// Membership itself is soft state: a member dead for good is replaced
// without downtime by a two-phase, quorum-ordered config change driven
// by the leaseholder (single-member delta per step — add one or remove
// one). The replacement first receives a snapshot-style state transfer
// of the leader's accepted log, so it never votes on a log it does not
// hold. Then the joint config (old set ∧ new set) is journalled and
// broadcast: while it is in force every quorum decision — promotion,
// lease renewal, the exposure floor — needs independent majorities of
// both sets, so no decision can be made that a majority of either set
// would not intersect. Once a joint quorum has durably adopted it, the
// final config commits the same way under the new set alone. Every
// config carries an epoch, stamped on all replica frames (the otherwise
// unused Hops varint, so pre-existing encodings stay byte-identical);
// an epoch mismatch rejects the frame and triggers a config catch-up
// exchange instead of letting stale-config members vote.
package replica

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dup/internal/proto"
	"dup/internal/store"
)

// DefaultReserve is the version reserve B: how far version exposure may
// run ahead of quorum replication. TTL refreshes bump by one, so B=1024
// covers 1024 refresh cycles of replication lag before the stream stalls.
const DefaultReserve = 1024

// Promise and state-transfer frames pack int64 versions into the wire
// codec's []int Path; a 32-bit int would silently truncate any version
// past 2^31 and journal the corrupted value as accepted. Require 64-bit
// ints at compile time (this expression divides by zero on a 32-bit
// platform).
const _ = 1 / (^uint(0) >> 63)

// Config parametrises one node's view of the replica group.
type Config struct {
	// ID is this node's id. It need not be a member: a non-member DUP
	// root promoted by the directory leads the quorum from outside (its
	// own log stays volatile; safety comes from the member quorum).
	ID int
	// Members is the epoch-0 replica set, identical on every node. Later
	// epochs are installed by online reconfiguration (ProposeReplace) and
	// recovered from the journal with RestoreConfig.
	Members []int
	// Lease is the leader lease duration (and the failover freshness
	// bound). Zero means one second.
	Lease time.Duration
	// Reserve overrides DefaultReserve when positive.
	Reserve int64
	// Journal, when non-nil, receives every accepted log entry before it
	// is acknowledged. Members must pass one for crash safety.
	Journal store.ReplicaJournal
}

type role uint8

const (
	follower role = iota
	candidate
	leader
)

// entry is one accepted log head: the highest (term, version) accepted
// for a key.
type entry struct {
	term    int64
	version int64
	expiry  float64
}

// promiseSubject discriminates the three KindPromise payloads.
const (
	subPrepare = 0 // prepare promise: Path carries key,version pairs
	subAccept  = 1 // accept ack: Key, Seq = accepted version
	subLease   = 2 // lease ack: Seq echoes the renewal counter
)

// maxPromisePairs bounds the key,version pairs per prepare-promise
// frame; larger logs are split into chunks (the final chunk sets New=1)
// so the wire codec's MaxPath is never exceeded. State-transfer chunks
// use the same bound.
const maxPromisePairs = 1024

// reconfigSubject discriminates the KindReconfig payloads.
const (
	subConfJoint = 0 // joint config: Path = old members then new, New = len(old)
	subConfFinal = 1 // final config: Path = the new members
	subConfAck   = 2 // member adopted the config at epoch Seq; Version echoes the proposal's term
	subConfNeed  = 3 // sender saw a newer epoch than Seq; answer with the config
)

// xferSubject discriminates the KindStateXfer payloads.
const (
	subXferBegin = 0 // Path = current members, Version = the sender's default floor
	subXferChunk = 1 // Path = key,version pairs; New = 1 marks the final chunk
	subXferAck   = 2 // replacement holds the whole snapshot
)

// confState is the live membership view: the stable member set, or —
// while a reconfiguration's joint phase is in force — the old∧new pair.
// cur is always the set the group is moving to (equal to the stable set
// outside a reconfiguration); old is non-nil exactly in the joint phase.
// term is the proposer term the config was adopted under: together with
// the epoch it names the exact proposal, so a same-epoch config from a
// higher term (a new leader re-driving a contested change) supersedes
// this one, while an equal-or-lower term cannot.
type confState struct {
	epoch int64
	term  int64
	old   []int
	cur   []int
}

func (c *confState) joint() bool { return c.old != nil }

// sameConf reports whether two configs name the same membership (sets
// compare element-wise; every proposal is built from the proposer's own
// confState, so identical content always travels in identical order).
func sameConf(a, b *confState) bool {
	return a.joint() == b.joint() && sameMembers(a.old, b.old) && sameMembers(a.cur, b.cur)
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// union returns every node with a role in the config: cur plus, in the
// joint phase, any old member not also in cur.
func (c *confState) union() []int {
	if !c.joint() {
		return c.cur
	}
	u := append([]int(nil), c.cur...)
	for _, id := range c.old {
		seen := false
		for _, v := range c.cur {
			if v == id {
				seen = true
				break
			}
		}
		if !seen {
			u = append(u, id)
		}
	}
	sort.Ints(u)
	return u
}

// reconfig is the leaseholder's in-flight membership change.
type reconfig struct {
	phase    int   // rcXfer, rcJoint or rcFinal
	add      int   // the incoming member (-1 when resuming a recovered joint config)
	newSet   []int // the target stable member set
	acks     map[int]bool
	lastSend time.Time
}

const (
	rcXfer  = iota // state transfer streaming to the replacement
	rcJoint        // joint config out, gathering adoption acks from both sets
	rcFinal        // final config out, gathering acks from the new set
)

// Group is one node's replica state machine. All methods are safe for
// concurrent use from any lane goroutine; MayServe is lock-free so the
// read hot path can consult it per query.
type Group struct {
	mu      sync.Mutex
	cfg     Config
	conf    confState
	member  bool
	peers   []int // current config's union minus self
	lease   time.Duration
	reserve int64

	// rc is the leaseholder's in-flight reconfiguration, nil otherwise.
	rc *reconfig
	// lastAck is the leader's per-peer liveness view: the last time each
	// peer answered anything. The host's permanent-failure horizon reads
	// it through DeadMembers.
	lastAck map[int]time.Time

	role role
	term int64

	// Accepted log and committed watermarks (all roles).
	log       map[int]entry
	committed map[int]int64

	// Follower view of the current lease. leaseHolder/leaseUntil track any
	// claim (a prepare stakes one for its round); grantHolder/grantUntil
	// track only proven grants — KindLease frames an actual leader sent or
	// a member relayed — and drive the host's abdication decision.
	leaseHolder int
	leaseUntil  time.Time
	grantHolder int
	grantUntil  time.Time

	// Candidate state: merged snapshot per promising member, completion
	// flags, and the lease deadline stamped into this round's prepares.
	votes    map[int]map[int]int64
	voted    map[int]bool
	prepExp  float64
	lastPrep time.Time

	// Learner-side state-transfer progress: which chunks of the current
	// epoch's snapshot have arrived. The leader rebuilds and retransmits
	// the whole snapshot until acked, so chunks may arrive out of order
	// or twice; the ack waits for every chunk index.
	xferGot    map[int]bool
	xferChunks int
	xferEpoch  int64

	// Leader state.
	floors    map[int]int64
	floorDef  int64 // floor for keys absent from the promise quorum
	acked     map[int]map[int]int64
	commitOut map[int]int64
	leaseSeq  int64
	leaseAcks map[int]bool
	leaseSent time.Time
	// announceCtr counts root-announce beacons issued this term. The
	// beacon sequence is term<<announceTermShift | announceCtr, so a new
	// leader's beacons sort strictly above every beacon of every previous
	// term — the sequence resumes monotonically across failover without
	// any durable state beyond the term itself.
	announceCtr int64
	// lastGrant is the last time a lease quorum confirmed this leader (or
	// its first leader tick); a leader stale past 2x the lease is a
	// deposed or partitioned one, which the host resolves by re-election
	// or abdication.
	lastGrant time.Time

	// leaseGood is the UnixNano deadline until which this node may serve
	// as leader; zero whenever it is not a serving leader.
	leaseGood atomic.Int64
}

// New returns a follower Group. The caller seeds recovered log state
// with Restore, then either BootLeader (fresh cluster authority) or
// waits for prepares / a promotion.
func New(cfg Config) *Group {
	if cfg.Lease <= 0 {
		cfg.Lease = time.Second
	}
	if cfg.Reserve <= 0 {
		cfg.Reserve = DefaultReserve
	}
	g := &Group{
		cfg:         cfg,
		lease:       cfg.Lease,
		reserve:     cfg.Reserve,
		log:         make(map[int]entry),
		committed:   make(map[int]int64),
		leaseHolder: -1,
		grantHolder: -1,
	}
	g.installConfLocked(confState{epoch: 0, cur: append([]int(nil), cfg.Members...)}, false)
	return g
}

// majority is the quorum size of one member set.
func majority(n int) int { return n/2 + 1 }

// installConfLocked makes c the live config, recomputing the derived
// membership view and (when journal is set) recording it durably before
// it takes effect — a member must recover into the epoch it voted under.
func (g *Group) installConfLocked(c confState, journal bool) {
	if journal {
		if j, ok := g.cfg.Journal.(store.ReplicaConfigJournal); ok {
			j.RecordReplicaConfig(store.ReplicaConfig{
				ID: g.cfg.ID, Epoch: c.epoch, Term: c.term, Joint: c.joint(),
				Old: append([]int(nil), c.old...), New: append([]int(nil), c.cur...),
			})
		}
	}
	g.conf = c
	g.member = false
	g.peers = g.peers[:0]
	for _, id := range c.union() {
		if id == g.cfg.ID {
			g.member = true
		} else {
			g.peers = append(g.peers, id)
		}
	}
	// Leader-side tracking follows the membership: new peers get fresh
	// ack maps and a liveness clock starting now; departed peers keep
	// their stale entries harmlessly (no quorum rule consults them).
	if g.acked != nil {
		for _, p := range g.peers {
			if g.acked[p] == nil {
				g.acked[p] = make(map[int]int64)
			}
		}
	}
}

// quorumOKLocked reports whether the ids satisfying has form a quorum
// under the live config: a majority of the current set and — while the
// joint phase is in force — independently a majority of the old set.
// This is the single quorum-size read site, so every decision tracks
// reconfiguration instead of the boot-time member count.
func (g *Group) quorumOKLocked(has func(id int) bool) bool {
	count := func(set []int) int {
		n := 0
		for _, id := range set {
			if has(id) {
				n++
			}
		}
		return n
	}
	if count(g.conf.cur) < majority(len(g.conf.cur)) {
		return false
	}
	if g.conf.joint() && count(g.conf.old) < majority(len(g.conf.old)) {
		return false
	}
	return true
}

// Restore seeds the accepted log from journal recovery. Call before any
// traffic flows.
func (g *Group) Restore(states []store.ReplicaState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, rs := range states {
		g.log[rs.Key] = entry{term: rs.Term, version: rs.Version, expiry: rs.Expiry}
		if rs.Term > g.term {
			g.term = rs.Term
		}
	}
}

// RestoreConfig seeds the membership config from journal recovery: a
// rebooted member resumes in the exact epoch (joint phase included) it
// journalled before the crash. Call before any traffic flows.
func (g *Group) RestoreConfig(rc store.ReplicaConfig) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rc.Epoch < g.conf.epoch {
		return
	}
	c := confState{epoch: rc.Epoch, term: rc.Term, cur: append([]int(nil), rc.New...)}
	if rc.Joint {
		c.old = append([]int(nil), rc.Old...)
	}
	g.installConfLocked(c, false)
}

// BootLeader makes this node the term-1 leader of a genuinely fresh
// cluster (the designated authority at first boot). It must not be used
// after a crash or failover — those paths go through StartCandidate,
// whose promise round re-establishes the exposure floor. The lease still
// has to be acquired through Tick before the leader may serve.
func (g *Group) BootLeader() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.term == 0 {
		g.term = 1
	}
	g.role = leader
	g.floors = make(map[int]int64)
	g.floorDef = 0
	g.resetLeaderLocked()
}

// resetLeaderLocked initialises the leader-side ack tracking.
func (g *Group) resetLeaderLocked() {
	g.acked = make(map[int]map[int]int64)
	for _, p := range g.peers {
		g.acked[p] = make(map[int]int64)
	}
	g.commitOut = make(map[int]int64)
	g.leaseAcks = make(map[int]bool)
	g.leaseSent = time.Time{}
	g.announceCtr = 0
	g.lastAck = make(map[int]time.Time)
	g.rc = nil
}

// StartCandidate opens a new leadership round: bumps the term past
// everything seen and asks every member for a promise plus its accepted
// log. The returned prepares must be sent; Tick retransmits them until a
// quorum answers.
func (g *Group) StartCandidate(now time.Time) []*proto.Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.startRoundLocked(now)
}

// startRoundLocked opens (or reopens, from the candidate retransmission
// path) a prepare round one term above everything seen. Reopening under
// a fresh term also outruns a competitor's still-valid lease within one
// retry, so a candidate that guessed a stale term is not stuck waiting
// the lease out.
func (g *Group) startRoundLocked(now time.Time) []*proto.Message {
	g.term++
	g.role = candidate
	g.leaseGood.Store(0)
	// A fresh round forgets stale grants (the dead incumbent's, usually):
	// only a grant proven after this point may talk the host into
	// abdicating the candidacy.
	g.grantHolder = -1
	g.votes = make(map[int]map[int]int64)
	g.voted = make(map[int]bool)
	if g.member {
		snap := make(map[int]int64, len(g.log))
		for k, e := range g.log {
			snap[k] = e.version
		}
		g.votes[g.cfg.ID] = snap
		g.voted[g.cfg.ID] = true
	}
	g.prepExp = timeToUnix(now.Add(g.lease))
	g.lastPrep = now
	msgs := g.preparesLocked()
	g.maybePromoteLocked(now)
	return msgs
}

// preparesLocked builds one prepare per peer for the current term.
func (g *Group) preparesLocked() []*proto.Message {
	var msgs []*proto.Message
	for _, p := range g.peers {
		m := proto.NewMessage()
		m.Kind = proto.KindPrepare
		m.To = p
		m.Origin = g.cfg.ID
		m.Old = int(g.term)
		m.Hops = int(g.conf.epoch)
		m.Expiry = g.prepExp
		msgs = append(msgs, m)
	}
	return msgs
}

// maybePromoteLocked checks the candidate's promise tally and, at
// quorum, assumes leadership: every key the quorum has ever accepted
// gets an exposure floor strictly above anything a previous leader can
// have exposed, and unseen keys get the zero-accept floor B+1.
func (g *Group) maybePromoteLocked(now time.Time) {
	if g.role != candidate {
		return
	}
	if !g.quorumOKLocked(func(id int) bool { return g.voted[id] }) {
		return
	}
	g.role = leader
	g.floors = make(map[int]int64)
	// floorDef only ever grows: a state-transferred default floor (or a
	// previous leadership's) stays in force, which is conservative — a
	// too-high floor just skips version numbers.
	if g.floorDef < g.reserve+1 {
		g.floorDef = g.reserve + 1
	}
	for _, snap := range g.votes {
		for k, v := range snap {
			if f := v + g.reserve + 1; f > g.floors[k] {
				g.floors[k] = f
			}
		}
	}
	g.resetLeaderLocked()
	// Seed ack tracking from the promises themselves — those versions are
	// known durable at their senders.
	for id, snap := range g.votes {
		if id == g.cfg.ID {
			continue
		}
		am := g.acked[id]
		if am == nil {
			am = make(map[int]int64)
			g.acked[id] = am
		}
		for k, v := range snap {
			if v > am[k] {
				am[k] = v
			}
		}
	}
	g.votes, g.voted = nil, nil
	g.lastGrant = now
	// The promise quorum doubles as the first lease grant: followers
	// granted the deadline stamped in the prepares. If candidacy outlived
	// it, the next Tick's renewal round re-acquires before serving.
	if until := unixToTime(g.prepExp); now.Before(until) {
		g.leaseGood.Store(until.UnixNano())
	}
}

// MayServe reports whether this node currently holds a live leader
// lease. Lock-free: the read and push hot paths gate on it per
// operation.
func (g *Group) MayServe(now time.Time) bool {
	return now.UnixNano() < g.leaseGood.Load()
}

// Leading reports whether the group is in the leader role (its lease may
// still be pending).
func (g *Group) Leading() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role == leader
}

// LeaseHolder reports the node this group can prove currently holds a
// live leader lease, when that node is someone else. The proof is a
// KindLease frame — a renewal from the leader itself or a member's relay
// to a refused candidate — never a mere prepare claim. A directory-
// promoted root that lost the quorum race uses this to abdicate in
// favour of the true leaseholder.
func (g *Group) LeaseHolder(now time.Time) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role == leader || g.grantHolder < 0 || g.grantHolder == g.cfg.ID || !now.Before(g.grantUntil) {
		return -1, false
	}
	return g.grantHolder, true
}

// StandDown abandons any candidacy or stale leadership: the host calls
// it while abdicating a lost fail-over so the dropped round cannot keep
// escalating terms against the leader it just adopted.
func (g *Group) StandDown() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.role = follower
	g.leaseGood.Store(0)
	g.votes, g.voted = nil, nil
}

// StaleLeader reports a leader whose lease quorum has been gone for over
// twice the lease: it has been deposed by a higher term it never heard
// of, or partitioned from every member. The host re-elects from this
// state (if it still believes it is the authority) rather than serving
// nothing forever.
func (g *Group) StaleLeader(now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role == leader && !g.lastGrant.IsZero() && now.Sub(g.lastGrant) > 2*g.lease
}

// Term returns the highest term seen.
func (g *Group) Term() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.term
}

// announceTermShift positions the term in the high bits of a beacon
// sequence, leaving 2^40 beacons per term before overflow (at one per
// 100ms that is over three millennia of leadership).
const announceTermShift = 40

// NextAnnounce issues the next root-announce beacon sequence number.
// Only a serving leader (live lease in hand) may announce: a deposed or
// partitioned leader returns false and stays silent, so its stale
// beacons can never refresh a subtree that should be expiring its path.
// Sequences are term<<announceTermShift | counter — strictly increasing
// within a term and, because terms only grow, strictly increasing
// across failover too.
func (g *Group) NextAnnounce(now time.Time) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != leader || !g.MayServe(now) {
		return 0, false
	}
	g.announceCtr++
	return g.term<<announceTermShift | g.announceCtr, true
}

// ReserveStatus reports the leader's replication health: lag is the
// largest gap between an exposed log head and what a full quorum has
// durably accepted, and headroom is how much of the version reserve B
// remains before Bump starts refusing exposure. Followers report
// leading=false with zero lag/headroom.
func (g *Group) ReserveStatus() (lag, headroom int64, leading bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != leader {
		return 0, 0, false
	}
	for k, e := range g.log {
		if d := e.version - g.quorumAcceptedLocked(k); d > lag {
			lag = d
		}
	}
	return lag, g.reserve - lag, true
}

// Committed returns the quorum-committed watermark for key.
func (g *Group) Committed(key int) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.committed[key]
}

// Accepted returns this node's accepted log head for key.
func (g *Group) Accepted(key int) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.log[key].version
}

// Bump is the leader hot path: expose version want (or the key's floor,
// whichever is higher) for key. It returns the version actually exposed,
// any accept frames that must be sent, and whether exposure is allowed
// right now. Exposure is refused — with the stream left exactly where it
// was — when this node holds no live lease or when the version reserve
// is exhausted (a quorum has not yet accepted within B of the target);
// the returned accepts still must be sent so replication can catch up.
func (g *Group) Bump(key int, want int64, expiry float64, now time.Time) (int64, []*proto.Message, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != leader {
		return 0, nil, false
	}
	v := want
	if f, ok := g.floors[key]; ok {
		if v < f {
			v = f
		}
	} else if v < g.floorDef {
		v = g.floorDef
	}
	cur := g.log[key]
	if v < cur.version {
		v = cur.version
	}
	var msgs []*proto.Message
	if v > cur.version {
		// Local append: durable before any frame leaves, so the accept we
		// advertise can never be forgotten.
		g.log[key] = entry{term: g.term, version: v, expiry: expiry}
		if g.member && g.cfg.Journal != nil {
			g.cfg.Journal.RecordReplica(store.ReplicaState{
				ID: g.cfg.ID, Key: key, Term: g.term, Version: v, Expiry: expiry,
			})
		}
		msgs = g.acceptsLocked(key)
	}
	if !g.MayServe(now) {
		return 0, msgs, false
	}
	if v > g.quorumAcceptedLocked(key)+g.reserve {
		return 0, msgs, false
	}
	return v, msgs, true
}

// acceptsLocked builds accept frames for every peer still behind the log
// head of key.
func (g *Group) acceptsLocked(key int) []*proto.Message {
	e := g.log[key]
	var msgs []*proto.Message
	for _, p := range g.peers {
		if g.acked[p][key] >= e.version {
			continue
		}
		m := proto.NewMessage()
		m.Kind = proto.KindAccept
		m.To = p
		m.Origin = g.cfg.ID
		m.Old = int(e.term)
		m.Hops = int(g.conf.epoch)
		m.Key = key
		m.Version = e.version
		m.Expiry = e.expiry
		msgs = append(msgs, m)
	}
	return msgs
}

// quorumAcceptedLocked returns the highest version a full quorum of
// members has durably accepted for key (this node's own log counts when
// it is a member). In the joint phase both sets must reach a version
// before it counts, so exposure can never outrun either quorum.
func (g *Group) quorumAcceptedLocked(key int) int64 {
	qa := g.setAcceptedLocked(g.conf.cur, key)
	if g.conf.joint() {
		if o := g.setAcceptedLocked(g.conf.old, key); o < qa {
			qa = o
		}
	}
	return qa
}

// setAcceptedLocked returns the highest version a majority of one member
// set has durably accepted for key.
func (g *Group) setAcceptedLocked(set []int, key int) int64 {
	if len(set) == 0 {
		return 0
	}
	vals := make([]int64, 0, len(set))
	for _, id := range set {
		if id == g.cfg.ID {
			vals = append(vals, g.log[key].version)
		} else {
			vals = append(vals, g.acked[id][key])
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	return vals[majority(len(set))-1]
}

// Step feeds one replica frame to the state machine and returns the
// frames to send in response. The caller keeps ownership of m.
func (g *Group) Step(m *proto.Message, now time.Time) []*proto.Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	term := int64(m.Old)
	if g.role == leader {
		g.lastAck[m.Origin] = now // any frame is a sign of life
	}
	switch m.Kind {
	case proto.KindReconfig:
		return g.onReconfigLocked(m, term, now)
	case proto.KindStateXfer:
		return g.onXferLocked(m, term, now)
	}
	// Config epoch gate: a frame from a different epoch must not vote.
	// When the sender is ahead we ask it for the config it holds; when it
	// is behind we teach it ours. Either way the dropped frame's round
	// recovers by retransmission once the epochs agree.
	if epoch := int64(m.Hops); epoch != g.conf.epoch {
		if epoch > g.conf.epoch {
			return []*proto.Message{g.confNeedLocked(m.Origin)}
		}
		return []*proto.Message{g.confRecordLocked(m.Origin)}
	}
	switch m.Kind {
	case proto.KindPrepare:
		return g.onPrepareLocked(m, term, now)
	case proto.KindPromise:
		return g.onPromiseLocked(m, term, now)
	case proto.KindAccept:
		return g.onAcceptLocked(m, term)
	case proto.KindCommit:
		g.observeTermLocked(term)
		if term == g.term && m.Version > g.committed[m.Key] {
			g.committed[m.Key] = m.Version
		}
	case proto.KindLease:
		return g.onLeaseLocked(m, term, now)
	}
	return nil
}

// observeTermLocked adopts a higher term, stepping down from any leader
// or candidate role: a superseded leader stops exposing immediately and
// for good (its lease can never renew under the old term).
func (g *Group) observeTermLocked(term int64) {
	if term <= g.term {
		return
	}
	g.term = term
	g.role = follower
	g.leaseGood.Store(0)
	g.votes, g.voted = nil, nil
}

func (g *Group) onPrepareLocked(m *proto.Message, term int64, now time.Time) []*proto.Message {
	if term < g.term {
		// Stale round. Teach the candidate who actually leads (when we can
		// prove it): a non-member root that lost a fail-over race has no
		// other way to learn it should abdicate.
		return g.relayGrantLocked(m.Origin, now)
	}
	if term == g.term && g.leaseHolder != m.Origin && now.Before(g.leaseUntil) {
		// Same-term competition against a live lease: first candidate wins
		// this replica for the term.
		return g.relayGrantLocked(m.Origin, now)
	}
	g.observeTermLocked(term)
	if term == g.term && g.role != follower && m.Origin != g.cfg.ID {
		if g.role == leader || m.Origin > g.cfg.ID {
			// Equal term, we are leader (our round already won) or the
			// rival candidate has the higher id: our round continues; the
			// competitor needs a higher term.
			return nil
		}
		// Equal-term candidate duel, rival has the lower id: stand down
		// and vote for it. Without a tie-break two member candidates can
		// refuse each other and re-escalate terms in lockstep forever —
		// exactly the dual-promotion race a partitioned multi-process
		// cluster produces when the old leaseholder's host dies.
		g.role = follower
		g.votes, g.voted = nil, nil
	}
	g.leaseHolder = m.Origin
	g.leaseUntil = unixToTime(m.Expiry)
	if !g.member {
		return nil
	}
	// Promise: ship the accepted log back, chunked under the wire codec's
	// path bound; the final chunk sets New=1 so the candidate counts the
	// vote only when the snapshot is whole.
	keys := make([]int, 0, len(g.log))
	for k := range g.log {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var msgs []*proto.Message
	pm := g.newPromiseLocked(m.Origin, subPrepare)
	for _, k := range keys {
		pm.Path = append(pm.Path, k, int(g.log[k].version))
		if len(pm.Path) >= 2*maxPromisePairs {
			msgs = append(msgs, pm)
			pm = g.newPromiseLocked(m.Origin, subPrepare)
		}
	}
	pm.New = 1
	return append(msgs, pm)
}

// relayGrantLocked forwards the current proven lease grant to a refused
// candidate: Origin names the true holder, Seq 0 marks a relay (a real
// renewal's Seq is always positive, so any ack the receiver sends is
// ignored by the holder's renewal tally). Members only — the relay's
// authority is the member's own granted lease.
func (g *Group) relayGrantLocked(to int, now time.Time) []*proto.Message {
	if !g.member || g.grantHolder < 0 || g.grantHolder == to || !now.Before(g.grantUntil) {
		return nil
	}
	m := proto.NewMessage()
	m.Kind = proto.KindLease
	m.To = to
	m.Origin = g.grantHolder
	m.Old = int(g.term)
	m.Hops = int(g.conf.epoch)
	m.Seq = 0
	m.Expiry = timeToUnix(g.grantUntil)
	return []*proto.Message{m}
}

func (g *Group) newPromiseLocked(to, subject int) *proto.Message {
	pm := proto.NewMessage()
	pm.Kind = proto.KindPromise
	pm.To = to
	pm.Origin = g.cfg.ID
	pm.Old = int(g.term)
	pm.Hops = int(g.conf.epoch)
	pm.Subject = subject
	return pm
}

func (g *Group) onPromiseLocked(m *proto.Message, term int64, now time.Time) []*proto.Message {
	g.observeTermLocked(term)
	if term != g.term {
		return nil
	}
	switch m.Subject {
	case subPrepare:
		if g.role != candidate {
			return nil
		}
		snap := g.votes[m.Origin]
		if snap == nil {
			snap = make(map[int]int64)
			g.votes[m.Origin] = snap
		}
		for i := 0; i+1 < len(m.Path); i += 2 {
			k, v := m.Path[i], int64(m.Path[i+1])
			if v > snap[k] {
				snap[k] = v
			}
		}
		if m.New == 1 {
			g.voted[m.Origin] = true
		}
		g.maybePromoteLocked(now)
	case subAccept:
		if g.role != leader {
			return nil
		}
		am := g.acked[m.Origin]
		if am == nil {
			am = make(map[int]int64)
			g.acked[m.Origin] = am
		}
		if m.Seq > am[m.Key] {
			am[m.Key] = m.Seq
		}
	case subLease:
		if g.role != leader || m.Seq != g.leaseSeq {
			return nil
		}
		g.leaseAcks[m.Origin] = true
		granted := g.quorumOKLocked(func(id int) bool {
			return id == g.cfg.ID || g.leaseAcks[id] // our own grant counts when we are a member
		})
		if granted {
			g.lastGrant = now
			until := g.leaseSent.Add(g.lease)
			if until.UnixNano() > g.leaseGood.Load() {
				g.leaseGood.Store(until.UnixNano())
			}
		}
	}
	return nil
}

func (g *Group) onAcceptLocked(m *proto.Message, term int64) []*proto.Message {
	if term < g.term {
		return nil // stale leader; no ack, let it stall
	}
	g.observeTermLocked(term)
	if !g.member {
		return nil
	}
	if m.Version > g.log[m.Key].version {
		g.log[m.Key] = entry{term: term, version: m.Version, expiry: m.Expiry}
		if g.cfg.Journal != nil {
			g.cfg.Journal.RecordReplica(store.ReplicaState{
				ID: g.cfg.ID, Key: m.Key, Term: term, Version: m.Version, Expiry: m.Expiry,
			})
		}
	}
	// Ack with the log head (even for duplicates), so a reordered or
	// retransmitted accept still teaches the leader where we are.
	pm := g.newPromiseLocked(m.Origin, subAccept)
	pm.Key = m.Key
	pm.Seq = g.log[m.Key].version
	return []*proto.Message{pm}
}

func (g *Group) onLeaseLocked(m *proto.Message, term int64, now time.Time) []*proto.Message {
	if term < g.term {
		return nil
	}
	g.observeTermLocked(term)
	g.leaseHolder = m.Origin
	g.leaseUntil = unixToTime(m.Expiry)
	// A lease frame is proof of leadership (renewals come from the leader,
	// relays from a member vouching its own grant): record it for the
	// host's abdication decision.
	g.grantHolder = m.Origin
	g.grantUntil = g.leaseUntil
	if !g.member {
		return nil
	}
	pm := g.newPromiseLocked(m.Origin, subLease)
	pm.Seq = m.Seq
	return []*proto.Message{pm}
}

// Tick drives the timers: candidate prepare retransmission, leader lease
// renewal, accept anti-entropy for lagging peers, and commit watermark
// propagation. The host calls it from its periodic loop (the keep-alive
// cadence is fine).
func (g *Group) Tick(now time.Time) []*proto.Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.role {
	case candidate:
		// Retry cadence is staggered by id so rival candidates do not
		// re-escalate in lockstep: desynchronized rounds let one of them
		// reach the survivors first and win.
		stagger := g.lease * time.Duration(min(g.cfg.ID, 12)) / 64
		if now.Sub(g.lastPrep) < g.lease/4+stagger {
			return nil
		}
		return g.startRoundLocked(now)
	case leader:
		if g.lastGrant.IsZero() {
			// First leader tick (BootLeader has no clock): start the
			// staleness window now.
			g.lastGrant = now
		}
		var msgs []*proto.Message
		// Renew the lease at a third of its duration, so two consecutive
		// renewal round-trips can be lost before serving pauses.
		if g.leaseSent.IsZero() || now.Sub(g.leaseSent) >= g.lease/3 {
			g.leaseSeq++
			g.leaseAcks = make(map[int]bool)
			g.leaseSent = now
			for _, p := range g.peers {
				m := proto.NewMessage()
				m.Kind = proto.KindLease
				m.To = p
				m.Origin = g.cfg.ID
				m.Old = int(g.term)
				m.Hops = int(g.conf.epoch)
				m.Seq = g.leaseSeq
				m.Expiry = timeToUnix(now.Add(g.lease))
				msgs = append(msgs, m)
			}
			// A sole-member group (degenerate R=1) self-renews.
			if len(g.peers) == 0 && g.member {
				g.leaseGood.Store(now.Add(g.lease).UnixNano())
			}
		}
		// Start the liveness clock for peers that have never answered.
		for _, p := range g.peers {
			if g.lastAck[p].IsZero() {
				g.lastAck[p] = now
			}
		}
		// A leader that won its round inside a joint config inherits the
		// unfinished reconfiguration and drives it home.
		if g.conf.joint() && g.rc == nil {
			g.rc = &reconfig{
				phase: rcJoint, add: -1,
				newSet: append([]int(nil), g.conf.cur...),
				acks:   make(map[int]bool),
			}
		}
		// Retransmit the in-flight reconfiguration phase until it acks out.
		if g.rc != nil && (g.rc.lastSend.IsZero() || now.Sub(g.rc.lastSend) >= g.lease/4) {
			g.rc.lastSend = now
			if g.rc.phase == rcXfer {
				msgs = append(msgs, g.xferLocked()...)
			} else {
				msgs = append(msgs, g.confBroadcastLocked()...)
			}
			msgs = append(msgs, g.advanceReconfigLocked(now)...)
		}
		// Anti-entropy: re-offer the log head to any peer behind it, and
		// advance the commit watermark when a quorum has caught up.
		for k := range g.log {
			msgs = append(msgs, g.acceptsLocked(k)...)
			if qa := g.quorumAcceptedLocked(k); qa > g.commitOut[k] {
				g.commitOut[k] = qa
				if qa > g.committed[k] {
					g.committed[k] = qa
				}
				e := g.log[k]
				for _, p := range g.peers {
					m := proto.NewMessage()
					m.Kind = proto.KindCommit
					m.To = p
					m.Origin = g.cfg.ID
					m.Old = int(e.term)
					m.Hops = int(g.conf.epoch)
					m.Key = k
					m.Version = qa
					msgs = append(msgs, m)
				}
			}
		}
		return msgs
	}
	return nil
}

// ProposeReplace starts replacing the (presumed permanently dead)
// member dead with the non-member repl: first a snapshot-style state
// transfer streams the leader's accepted log to repl, then — once repl
// acks the whole snapshot — the joint config (old∧new) is journalled
// and broadcast, and once a quorum of both sets has adopted it the
// final config commits under the new set alone. Single-member deltas
// keep every old/new quorum pair intersecting, so no decision point
// exists where the two sets could diverge. Only a serving leaseholder
// with a stable config and no change in flight may propose; anything
// else returns nil, false. The returned frames must be sent; Tick
// retransmits each phase until it completes.
func (g *Group) ProposeReplace(dead, repl int, now time.Time) ([]*proto.Message, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != leader || g.rc != nil || g.conf.joint() || !g.MayServe(now) {
		return nil, false
	}
	if dead == repl || repl == g.cfg.ID {
		return nil, false
	}
	isMember := false
	for _, id := range g.conf.cur {
		if id == dead {
			isMember = true
		}
		if id == repl {
			return nil, false
		}
	}
	if !isMember {
		return nil, false
	}
	newSet := make([]int, 0, len(g.conf.cur))
	for _, id := range g.conf.cur {
		if id != dead {
			newSet = append(newSet, id)
		}
	}
	newSet = append(newSet, repl)
	sort.Ints(newSet)
	g.rc = &reconfig{phase: rcXfer, add: repl, newSet: newSet, acks: make(map[int]bool), lastSend: now}
	return g.xferLocked(), true
}

// xferLocked builds the full state transfer for the in-flight
// replacement: a begin frame naming the current members, the default
// floor and the chunk count, then the accepted log (raised to its
// floors — the floor is the real exposure bound for keys this leader
// never bumped) as indexed key,version chunks. The whole snapshot is
// rebuilt per retransmission, so chunk indices always mean the same
// pairs within one epoch.
func (g *Group) xferLocked() []*proto.Message {
	rc := g.rc
	keys := make([]int, 0, len(g.log)+len(g.floors))
	for k := range g.log {
		keys = append(keys, k)
	}
	for k := range g.floors {
		if _, ok := g.log[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	chunks := (len(keys) + maxPromisePairs - 1) / maxPromisePairs
	b := g.newXferLocked(rc.add, subXferBegin)
	b.Path = append(b.Path, g.conf.cur...)
	b.Version = g.floorDef
	b.New = chunks
	msgs := []*proto.Message{b}
	for c := 0; c < chunks; c++ {
		cm := g.newXferLocked(rc.add, subXferChunk)
		cm.Version = int64(c)
		for _, k := range keys[c*maxPromisePairs : min((c+1)*maxPromisePairs, len(keys))] {
			v := g.log[k].version
			if f := g.floors[k]; f > v {
				v = f
			}
			cm.Path = append(cm.Path, k, int(v))
		}
		msgs = append(msgs, cm)
	}
	return msgs
}

func (g *Group) newXferLocked(to, subject int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = proto.KindStateXfer
	m.To = to
	m.Origin = g.cfg.ID
	m.Old = int(g.term)
	m.Subject = subject
	m.Seq = g.conf.epoch
	m.Hops = int(g.conf.epoch)
	return m
}

// onXferLocked handles both ends of the state transfer: the replacement
// applies begin/chunk frames (journalling every entry before anything
// is acked, so a crash never forgets a snapshot it claimed), and the
// leader turns the completion ack into the joint config proposal.
func (g *Group) onXferLocked(m *proto.Message, term int64, now time.Time) []*proto.Message {
	switch m.Subject {
	case subXferBegin:
		// A transfer from a term below ours comes from a deposed or
		// partitioned ex-leader: refuse it, so a stale sender can never
		// plant a member set (or raise the floor) on a recruit that has
		// already heard from the real leadership.
		if term < g.term || m.Seq < g.conf.epoch || len(m.Path) == 0 {
			return nil
		}
		g.observeTermLocked(term)
		if m.Seq > g.conf.epoch {
			// A node drafted into a cluster whose config moved past its
			// boot-time member list adopts the sender's stable set first.
			g.installConfLocked(confState{epoch: m.Seq, term: term, cur: append([]int(nil), m.Path...)}, true)
		}
		if m.Version > g.floorDef {
			g.floorDef = m.Version
		}
		if g.xferEpoch != m.Seq || g.xferChunks != m.New || g.xferGot == nil {
			g.xferEpoch, g.xferChunks, g.xferGot = m.Seq, m.New, make(map[int]bool)
		}
		return g.maybeXferAckLocked(m.Origin)
	case subXferChunk:
		if term < g.term || g.xferGot == nil || m.Seq != g.xferEpoch || m.Seq < g.conf.epoch {
			return nil
		}
		g.observeTermLocked(term)
		for i := 0; i+1 < len(m.Path); i += 2 {
			k, v := m.Path[i], int64(m.Path[i+1])
			if v > g.log[k].version {
				g.log[k] = entry{term: term, version: v}
				if g.cfg.Journal != nil {
					g.cfg.Journal.RecordReplica(store.ReplicaState{
						ID: g.cfg.ID, Key: k, Term: term, Version: v,
					})
				}
			}
		}
		g.xferGot[int(m.Version)] = true
		return g.maybeXferAckLocked(m.Origin)
	case subXferAck:
		g.observeTermLocked(term)
		if g.role != leader || g.rc == nil || g.rc.phase != rcXfer ||
			m.Origin != g.rc.add || m.Seq != g.conf.epoch {
			return nil
		}
		// The replacement holds the snapshot: open the joint phase. The
		// joint config is journalled before it is proposed, so this
		// leader reboots into it rather than into the pre-change set.
		rc := g.rc
		old := append([]int(nil), g.conf.cur...)
		g.installConfLocked(confState{
			epoch: g.conf.epoch + 1, term: g.term, old: old,
			cur: append([]int(nil), rc.newSet...),
		}, true)
		rc.phase = rcJoint
		rc.acks = make(map[int]bool)
		rc.lastSend = now
		msgs := g.confBroadcastLocked()
		return append(msgs, g.advanceReconfigLocked(now)...)
	}
	return nil
}

// maybeXferAckLocked acks the state transfer once every chunk of the
// current snapshot has been applied (and journalled).
func (g *Group) maybeXferAckLocked(to int) []*proto.Message {
	if g.xferGot == nil || len(g.xferGot) < g.xferChunks {
		return nil
	}
	m := g.newXferLocked(to, subXferAck)
	m.Seq = g.xferEpoch
	return []*proto.Message{m}
}

// onReconfigLocked handles the config-change frames: members adopt and
// journal proposed configs (idempotently re-acking retransmissions),
// the driving leader tallies adoption acks, and epoch-mismatch catch-up
// requests are answered with the config this node holds.
//
// Adoption is both term- and content-gated. A proposal from a term below
// ours is refused and taught our config (the answer's higher term steps
// the deposed proposer down), so a stale leaseholder's retransmissions
// stop polluting members that have heard from the new leadership. When
// the proposed epoch equals the held one, the membership content is
// compared: identical content re-acks idempotently, while a conflicting
// config is adopted only from a term strictly above the held config's
// adoption term — two rival leaders can never each install a different
// same-epoch config, because one of them is stale by term. Every ack
// echoes the answered proposal's term, so a driving leader only ever
// tallies acks for its own exact proposal, never a rival's same-epoch
// one — the split-brain the joint phase exists to prevent.
func (g *Group) onReconfigLocked(m *proto.Message, term int64, now time.Time) []*proto.Message {
	switch m.Subject {
	case subConfJoint, subConfFinal:
		if term < g.term {
			// Stale proposer (a deposed leader's retransmission): teach it.
			return []*proto.Message{g.confRecordLocked(m.Origin)}
		}
		epoch := m.Seq
		if epoch < g.conf.epoch {
			// Old-epoch proposer (an old leader's retransmission): teach it.
			return []*proto.Message{g.confRecordLocked(m.Origin)}
		}
		var c confState
		if m.Subject == subConfJoint {
			n := m.New
			// Both resulting sets must be non-empty: a malformed frame could
			// otherwise durably install a config whose quorum can never be
			// satisfied, bricking the member for good.
			if n < 1 || n >= len(m.Path) {
				return nil
			}
			c = confState{
				epoch: epoch,
				term:  term,
				old:   append([]int(nil), m.Path[:n]...),
				cur:   append([]int(nil), m.Path[n:]...),
			}
		} else {
			if len(m.Path) == 0 {
				return nil
			}
			c = confState{epoch: epoch, term: term, cur: append([]int(nil), m.Path...)}
		}
		g.observeTermLocked(term)
		if epoch == g.conf.epoch {
			if sameConf(&c, &g.conf) {
				// Idempotent re-ack, naming the exact proposal answered (a
				// re-elected leader re-drives an inherited config under its
				// new term; the echo must follow the frame, not our journal).
				return []*proto.Message{g.confAckLocked(m.Origin, term)}
			}
			if term <= g.conf.term {
				// Conflicting same-epoch config from no newer a term: one
				// leader per term means this cannot be a legitimate rival.
				return nil
			}
			// A strictly higher term proposes a different config at our
			// epoch: its election quorum intersects whatever adopted ours,
			// so ours can never have committed — supersede it.
		}
		g.installConfLocked(c, true)
		return []*proto.Message{g.confAckLocked(m.Origin, term)}
	case subConfAck:
		g.observeTermLocked(term)
		if g.role != leader || g.rc == nil || m.Seq != g.conf.epoch || m.Version != g.term {
			return nil
		}
		g.rc.acks[m.Origin] = true
		return g.advanceReconfigLocked(now)
	case subConfNeed:
		g.observeTermLocked(term)
		if m.Seq < g.conf.epoch {
			return []*proto.Message{g.confRecordLocked(m.Origin)}
		}
	}
	return nil
}

// advanceReconfigLocked moves the in-flight change forward whenever the
// current phase's adoption acks form a quorum: the joint phase commits
// into the final config (journalled, then broadcast), and the final
// phase completes the change. The loop handles degenerate groups whose
// own ack already is a quorum.
func (g *Group) advanceReconfigLocked(now time.Time) []*proto.Message {
	var msgs []*proto.Message
	for g.rc != nil {
		rc := g.rc
		if rc.phase == rcXfer {
			return msgs
		}
		if !g.quorumOKLocked(func(id int) bool { return id == g.cfg.ID || rc.acks[id] }) {
			return msgs
		}
		if rc.phase == rcJoint {
			g.installConfLocked(confState{
				epoch: g.conf.epoch + 1, term: g.term,
				cur: append([]int(nil), rc.newSet...),
			}, true)
			rc.phase = rcFinal
			rc.acks = make(map[int]bool)
			rc.lastSend = now
			msgs = append(msgs, g.confBroadcastLocked()...)
			continue
		}
		g.rc = nil // final config adopted by its quorum: change complete
	}
	return msgs
}

// confRecordLocked frames the config this node currently holds, for a
// proposal broadcast or a catch-up answer.
func (g *Group) confRecordLocked(to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = proto.KindReconfig
	m.To = to
	m.Origin = g.cfg.ID
	m.Old = int(g.term)
	m.Seq = g.conf.epoch
	m.Hops = int(g.conf.epoch)
	if g.conf.joint() {
		m.Subject = subConfJoint
		m.New = len(g.conf.old)
		m.Path = append(m.Path, g.conf.old...)
		m.Path = append(m.Path, g.conf.cur...)
	} else {
		m.Subject = subConfFinal
		m.Path = append(m.Path, g.conf.cur...)
	}
	return m
}

// confNeedLocked asks to, which stamped a newer epoch than ours, for
// the config record we are missing.
func (g *Group) confNeedLocked(to int) *proto.Message {
	m := proto.NewMessage()
	m.Kind = proto.KindReconfig
	m.To = to
	m.Origin = g.cfg.ID
	m.Old = int(g.term)
	m.Subject = subConfNeed
	m.Seq = g.conf.epoch
	m.Hops = int(g.conf.epoch)
	return m
}

// confAckLocked acknowledges that this node has adopted (and
// journalled) the config at the current epoch. echoTerm names the exact
// proposal being answered — the answered frame's proposer term, carried
// in Version — so the driving leader tallies only acks for its own
// proposal, never a rival's same-epoch one.
func (g *Group) confAckLocked(to int, echoTerm int64) *proto.Message {
	m := proto.NewMessage()
	m.Kind = proto.KindReconfig
	m.To = to
	m.Origin = g.cfg.ID
	m.Old = int(g.term)
	m.Subject = subConfAck
	m.Seq = g.conf.epoch
	m.Version = echoTerm
	m.Hops = int(g.conf.epoch)
	return m
}

// confBroadcastLocked re-proposes the current config to every peer that
// has not acked the in-flight phase yet.
func (g *Group) confBroadcastLocked() []*proto.Message {
	var msgs []*proto.Message
	for _, p := range g.peers {
		if g.rc != nil && g.rc.acks[p] {
			continue
		}
		msgs = append(msgs, g.confRecordLocked(p))
	}
	return msgs
}

// DeadMembers reports current voting members (self excluded) that have
// answered nothing for at least horizon, as seen by a serving leader —
// the permanent-failure signal the host's replacement policy polls.
// A member merely restarting keeps answering within a lease or two, so
// a horizon of several leases only ever names members gone for good.
//
// The read is side-effect free: a peer whose liveness clock has not
// started (Tick seeds it on the leader's periodic loop) is simply not
// dead yet, so a monitoring caller polling stats can never move the
// permanent-failure horizon.
func (g *Group) DeadMembers(now time.Time, horizon time.Duration) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != leader {
		return nil
	}
	var dead []int
	for _, p := range g.peers {
		t := g.lastAck[p]
		if !t.IsZero() && now.Sub(t) >= horizon {
			dead = append(dead, p)
		}
	}
	return dead
}

// Epoch returns the current config epoch.
func (g *Group) Epoch() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.conf.epoch
}

// Members returns the current member set — the set being moved to, when
// a joint phase is in force.
func (g *Group) Members() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.conf.cur...)
}

// ReconfigInFlight reports an unfinished membership change: a joint
// config in force anywhere, or a change this leader is still driving.
func (g *Group) ReconfigInFlight() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rc != nil || g.conf.joint()
}

// timeToUnix and unixToTime mirror the live layer's wire-time
// convention (absolute unix seconds as float64).
func timeToUnix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

func unixToTime(f float64) time.Time {
	if f == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(f*1e9))
}
