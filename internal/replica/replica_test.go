package replica

import (
	"testing"
	"time"

	"dup/internal/proto"
	"dup/internal/store"
)

// cluster wires R groups to an in-process bus for single-threaded
// protocol tests.
type cluster struct {
	groups map[int]*Group
	mems   map[int]*store.Mem
}

func newCluster(t *testing.T, members []int, ids []int, reserve int64) *cluster {
	t.Helper()
	c := &cluster{groups: map[int]*Group{}, mems: map[int]*store.Mem{}}
	for _, id := range ids {
		mem := store.NewMem()
		c.mems[id] = mem
		c.groups[id] = New(Config{
			ID: id, Members: members, Lease: time.Second, Reserve: reserve, Journal: mem,
		})
	}
	return c
}

// pump delivers msgs (and everything they trigger) until quiescent.
func (c *cluster) pump(msgs []*proto.Message, now time.Time) {
	for len(msgs) > 0 {
		var next []*proto.Message
		for _, m := range msgs {
			if g, ok := c.groups[m.To]; ok {
				next = append(next, g.Step(m, now)...)
			}
			proto.Release(m)
		}
		msgs = next
	}
}

// drop releases msgs undelivered (a total partition).
func drop(msgs []*proto.Message) {
	for _, m := range msgs {
		proto.Release(m)
	}
}

func TestBootLeaderAcquiresLeaseThenReplicates(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	if g.MayServe(now) {
		t.Fatal("leader serving before any lease ack")
	}
	c.pump(g.Tick(now), now) // lease round trip
	if !g.MayServe(now) {
		t.Fatal("leader has no lease after a quorum acked the renewal")
	}
	v, out, ok := g.Bump(0, 1, 2000.5, now)
	if !ok || v != 1 {
		t.Fatalf("Bump = (%d, ok=%v), want (1, true)", v, ok)
	}
	c.pump(out, now)
	for _, id := range []int{1, 2} {
		if got := c.groups[id].Accepted(0); got != 1 {
			t.Fatalf("replica %d accepted %d, want 1", id, got)
		}
		rs := c.mems[id].ReplicaStates(id)
		if len(rs) != 1 || rs[0].Version != 1 {
			t.Fatalf("replica %d journal = %+v", id, rs)
		}
	}
	// The commit watermark follows on the next tick.
	c.pump(g.Tick(now.Add(400*time.Millisecond)), now)
	if got := c.groups[1].Committed(0); got != 1 {
		t.Fatalf("replica 1 committed %d, want 1", got)
	}
}

func TestReserveStallsExposureWithoutQuorum(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	// Partition the followers: accepts never arrive. The reserve (B=2)
	// lets two versions out, then the stream stalls.
	var pending []*proto.Message
	for want := int64(1); want <= 2; want++ {
		v, out, ok := g.Bump(0, want, 2000.5, now)
		pending = append(pending, out...)
		if !ok || v != want {
			t.Fatalf("Bump(%d) = (%d, ok=%v) inside the reserve", want, v, ok)
		}
	}
	if v, out, ok := g.Bump(0, 3, 2000.5, now); ok {
		drop(out)
		t.Fatalf("Bump(3) exposed %d with the reserve exhausted", v)
	} else {
		pending = append(pending, out...)
	}
	// Heal: deliver everything; the acks reopen the window.
	c.pump(pending, now)
	c.pump(g.Tick(now.Add(400*time.Millisecond)), now)
	if v, out, ok := g.Bump(0, 3, 2000.5, now); !ok || v != 3 {
		t.Fatalf("Bump(3) after heal = (%d, ok=%v), want (3, true)", v, ok)
	} else {
		c.pump(out, now)
	}
}

func TestFailoverNeverRegresses(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 4)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	// Expose a stream, replicating only sometimes: the last exposures ride
	// the reserve with no quorum behind them.
	var exposed int64
	for want := int64(1); want <= 10; want++ {
		v, out, ok := g0.Bump(0, want, 2000.5, now)
		if want <= 6 {
			c.pump(out, now)
		} else {
			drop(out) // partitioned mid-push
		}
		if ok {
			exposed = v
		}
	}
	if exposed < 6 {
		t.Fatalf("exposed only %d versions", exposed)
	}
	// Leader dies; replica 1 runs the promise round and takes over.
	g1 := c.groups[1]
	msgs := g1.StartCandidate(now)
	var kept []*proto.Message
	for _, m := range msgs {
		if m.To == 0 {
			proto.Release(m) // dead leader
			continue
		}
		kept = append(kept, m)
	}
	c.pump(kept, now)
	if !g1.Leading() {
		t.Fatal("candidate did not reach quorum with one peer alive")
	}
	// First bump appends the floor entry and replicates it before
	// exposing; the retry exposes a version strictly above everything the
	// old leader ever served.
	v, out, ok := g1.Bump(0, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		v, out, ok = g1.Bump(0, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok {
		t.Fatal("new leader never exposed after its floor replicated")
	}
	if v <= exposed {
		t.Fatalf("failover regressed: new leader exposed %d, old leader had exposed %d", v, exposed)
	}
}

func TestSupersededLeaderStopsServing(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if v, out, ok := g0.Bump(0, 1, 2000.5, now); !ok || v != 1 {
		t.Fatalf("Bump = (%d, %v)", v, ok)
	} else {
		c.pump(out, now)
	}
	// A higher-term candidate appears; the moment the old leader hears
	// the new term it goes silent for good.
	c.pump(c.groups[1].StartCandidate(now), now)
	if !c.groups[1].Leading() {
		t.Fatal("higher-term candidate not promoted")
	}
	if g0.MayServe(now) {
		t.Fatal("superseded leader still holds a lease")
	}
	if _, out, ok := g0.Bump(0, 2, 2000.5, now); ok {
		t.Fatal("superseded leader exposed a version")
	} else {
		drop(out)
	}
}

func TestLeaseExpiresWithoutRenewalQuorum(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	if !g.MayServe(now) {
		t.Fatal("no lease after boot round")
	}
	// Renewals stop reaching the quorum; the lease runs out.
	later := now.Add(2 * time.Second)
	drop(g.Tick(later))
	if g.MayServe(later) {
		t.Fatal("leader serving past an unrenewed lease")
	}
	// The quorum comes back; the next renewal restores service.
	c.pump(g.Tick(later.Add(time.Second)), later.Add(time.Second))
	if !g.MayServe(later.Add(time.Second)) {
		t.Fatal("lease not restored after renewal quorum")
	}
}

func TestNonMemberLeadsFromOutside(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	var v int64
	for want := int64(1); want <= 5; want++ {
		got, out, ok := g0.Bump(0, want, 2000.5, now)
		c.pump(out, now)
		if !ok || got != want {
			t.Fatalf("Bump(%d) = (%d, %v)", want, got, ok)
		}
		v = got
	}
	// A non-member (the directory's promotion choice) takes over: its
	// quorum is counted purely among the members. Its first round guesses
	// term 1 — the incumbent's term — so the live lease refuses it; the
	// candidate retransmission path escalates the term and the retry wins.
	c.mems[9] = store.NewMem()
	g9 := New(Config{ID: 9, Members: []int{0, 1, 2}, Lease: time.Second, Reserve: 2})
	c.groups[9] = g9
	deliver := func(msgs []*proto.Message, at time.Time) {
		var kept []*proto.Message
		for _, m := range msgs {
			if m.To == 0 {
				proto.Release(m) // dead leader
				continue
			}
			kept = append(kept, m)
		}
		c.pump(kept, at)
	}
	deliver(g9.StartCandidate(now), now)
	if g9.Leading() {
		t.Fatal("stale-term candidate promoted over a live lease")
	}
	retry := now.Add(500 * time.Millisecond) // past lease/4 + the id-9 retry stagger
	deliver(g9.Tick(retry), retry)
	if !g9.Leading() {
		t.Fatal("non-member candidate not promoted by member quorum")
	}
	nv, out, ok := g9.Bump(0, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		nv, out, ok = g9.Bump(0, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok || nv <= v {
		t.Fatalf("non-member leader exposed (%d, ok=%v), want > %d", nv, ok, v)
	}
}

// TestDuelingMemberCandidatesConverge is the dual-promotion race of a
// multi-process cluster: the leaseholder 0 dies and the two surviving
// members both start candidacies at the same instant. Without the
// equal-term id tie-break they refuse each other's prepares and
// re-escalate terms in lockstep forever; with it, exactly one wins
// within a bounded number of staggered retries.
func TestDuelingMemberCandidatesConverge(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if _, out, ok := g0.Bump(0, 1, 2000.5, now); !ok {
		t.Fatal("incumbent could not expose")
	} else {
		c.pump(out, now)
	}
	// Leaseholder dies; its messages stop. Both survivors promote at once.
	delete(c.groups, 0)
	g1, g2 := c.groups[1], c.groups[2]
	c.pump(g1.StartCandidate(now), now)
	c.pump(g2.StartCandidate(now), now)
	// Drive both tickers in lockstep — the adversarial schedule.
	at := now
	for i := 0; i < 40 && !g1.Leading() && !g2.Leading(); i++ {
		at = at.Add(50 * time.Millisecond)
		c.pump(g1.Tick(at), at)
		c.pump(g2.Tick(at), at)
	}
	if g1.Leading() == g2.Leading() {
		t.Fatalf("dueling candidates did not converge on one leader: g1=%v g2=%v",
			g1.Leading(), g2.Leading())
	}
	winner := g1
	if g2.Leading() {
		winner = g2
	}
	// The winner's floor must clear the dead incumbent's exposures, and
	// the hot path must work: retry once if the floor round needs a pump.
	v, out, ok := winner.Bump(0, 1, 3000.5, at)
	c.pump(out, at)
	if !ok {
		v, out, ok = winner.Bump(0, 1, 3000.5, at)
		c.pump(out, at)
	}
	if !ok || v <= 1 {
		t.Fatalf("duel winner exposed (%d, ok=%v), want a version above the incumbent's 1", v, ok)
	}
}

func TestRestoreSeedsLogAndTerm(t *testing.T) {
	g := New(Config{ID: 1, Members: []int{0, 1, 2}})
	g.Restore([]store.ReplicaState{
		{ID: 1, Key: 0, Term: 3, Version: 40, Expiry: 2000.5},
		{ID: 1, Key: 7, Term: 2, Version: 9, Expiry: 2000.5},
	})
	if got := g.Accepted(0); got != 40 {
		t.Fatalf("Accepted(0) = %d, want 40", got)
	}
	if got := g.Accepted(7); got != 9 {
		t.Fatalf("Accepted(7) = %d, want 9", got)
	}
	if got := g.Term(); got != 3 {
		t.Fatalf("Term = %d, want 3", got)
	}
}

func TestPromiseSnapshotChunksLargeLogs(t *testing.T) {
	now := time.Unix(1000, 0)
	// Member 0 is dead: the candidate (2) can only reach quorum with
	// replica 1's vote, and that vote carries a multi-chunk snapshot —
	// promotion must wait for the final chunk and merge all of them.
	c := newCluster(t, []int{0, 1, 2}, []int{1, 2}, 0)
	// Replica 1 holds a log wider than one promise frame can carry.
	states := make([]store.ReplicaState, 0, maxPromisePairs+10)
	for k := 0; k < maxPromisePairs+10; k++ {
		states = append(states, store.ReplicaState{ID: 1, Key: k, Term: 1, Version: int64(k + 1)})
	}
	c.groups[1].Restore(states)
	g2 := c.groups[2]
	c.pump(g2.StartCandidate(now), now)
	if !g2.Leading() {
		t.Fatal("candidate did not assemble the chunked snapshot")
	}
	// The floor over the widest key must reflect the chunked promise.
	wideKey := maxPromisePairs + 9
	v, out, ok := g2.Bump(wideKey, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		v, out, ok = g2.Bump(wideKey, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok || v <= int64(wideKey+1) {
		t.Fatalf("Bump on chunk-2 key = (%d, ok=%v), want > %d", v, ok, wideKey+1)
	}
}

// deliverTo pumps msgs (and everything they trigger), but only to the
// recipients in allow; everything else is released undelivered — the
// other endpoints are dead or partitioned.
func (c *cluster) deliverTo(msgs []*proto.Message, allow map[int]bool, now time.Time) {
	for len(msgs) > 0 {
		var next []*proto.Message
		for _, m := range msgs {
			if g, ok := c.groups[m.To]; ok && allow[m.To] {
				next = append(next, g.Step(m, now)...)
			}
			proto.Release(m)
		}
		msgs = next
	}
}

// TestProposeReplaceReplacesDeadMember drives one full online
// replacement: member 2 dies for good, the leaseholder state-transfers
// its log to the empty learner 3, and the two-phase change commits to
// the stable epoch-2 set {0,1,3} on every survivor — durably, so each
// journal holds the new config. The replacement must then be a real
// voter: when the leaseholder dies too, node 3 campaigns with node 1
// and exposes strictly above everything the old leader ever served.
func TestProposeReplaceReplacesDeadMember(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	var exposed int64
	for want := int64(1); want <= 5; want++ {
		v, out, ok := g0.Bump(0, want, 2000.5, now)
		c.pump(out, now)
		if !ok || v != want {
			t.Fatalf("Bump(%d) = (%d, %v)", want, v, ok)
		}
		exposed = v
	}
	// Member 2 is gone for good; the replacement 3 boots as an empty
	// learner that still believes in the boot-time member set.
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{
		ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Reserve: 2, Journal: c.mems[3],
	})
	alive := map[int]bool{0: true, 1: true, 3: true}
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused with a clean stable config")
	}
	// Only one change may be in flight at a time.
	if more, ok2 := g0.ProposeReplace(1, 4, now); ok2 {
		drop(more)
		t.Fatal("second ProposeReplace accepted while one was in flight")
	}
	c.deliverTo(msgs, alive, now)
	if g0.ReconfigInFlight() {
		t.Fatal("reconfiguration still in flight after every survivor answered")
	}
	for _, id := range []int{0, 1, 3} {
		g := c.groups[id]
		if e := g.Epoch(); e != 2 {
			t.Fatalf("node %d at epoch %d, want 2 (joint + final)", id, e)
		}
		if m := g.Members(); len(m) != 3 || m[0] != 0 || m[1] != 1 || m[2] != 3 {
			t.Fatalf("node %d members = %v, want [0 1 3]", id, m)
		}
		rc, found := c.mems[id].ReplicaConfig(id)
		if !found || rc.Epoch != 2 || rc.Joint {
			t.Fatalf("node %d journalled config = (%+v, %v), want stable epoch 2", id, rc, found)
		}
	}
	// The state transfer brought the replacement's accepted log up to the
	// leader's exposure bound before it gained a vote.
	if got := c.groups[3].Accepted(0); got < exposed {
		t.Fatalf("replacement accepted %d, below the exposed %d", got, exposed)
	}
	// The leaseholder dies next; the replacement campaigns with node 1 as
	// its quorum partner and must never regress the stream.
	delete(c.groups, 0)
	survivors := map[int]bool{1: true, 3: true}
	g3 := c.groups[3]
	at := now
	c.deliverTo(g3.StartCandidate(at), survivors, at)
	for i := 0; i < 40 && !g3.Leading(); i++ {
		at = at.Add(250 * time.Millisecond)
		c.deliverTo(g3.Tick(at), survivors, at)
	}
	if !g3.Leading() {
		t.Fatal("replacement never won the fail-over round")
	}
	v, out, ok := g3.Bump(0, 1, 3000.5, at)
	c.deliverTo(out, survivors, at)
	if !ok {
		v, out, ok = g3.Bump(0, 1, 3000.5, at)
		c.deliverTo(out, survivors, at)
	}
	if !ok || v <= exposed {
		t.Fatalf("replacement leader exposed (%d, ok=%v), want > %d", v, ok, exposed)
	}
}

// TestJointPhaseRequiresBothQuorums is the 3→3 replacement regression
// guard: while the joint config {0,1,2}∧{0,1,3} is in force, a majority
// of the new set alone (the leader plus the incoming member 3) must
// satisfy nothing — not the lease renewal, not the config commit. A
// quorum rule that momentarily counted only the target set would accept
// exactly that 2-of-3 here while the old set has one vote of three.
func TestJointPhaseRequiresBothQuorums(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[3]})
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused")
	}
	// Deliver the state transfer to 3 only: its completion ack opens the
	// joint phase at the leader, 3 adopts and acks the joint config, and
	// nothing reaches the old members — the change parks in the joint
	// phase with the new set's majority (0 and 3) already in hand.
	c.deliverTo(msgs, map[int]bool{0: true, 3: true}, now)
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatalf("joint phase not reached: epoch %d, in flight %v", g0.Epoch(), g0.ReconfigInFlight())
	}
	// The boot lease runs out; the renewal reaches only the new member.
	// Self + 3 is a majority of {0,1,3} — and must not be enough.
	later := now.Add(2 * time.Second)
	c.deliverTo(g0.Tick(later), map[int]bool{0: true, 3: true}, later)
	if g0.MayServe(later) {
		t.Fatal("lease renewed by a new-set-only quorum during the joint phase")
	}
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatal("config advanced on a new-set-only quorum during the joint phase")
	}
	// Old member 1 answers again: both majorities form and the change
	// commits through to the stable epoch-2 set. (This round's lease
	// frame bounces off 1's epoch gate while it catches up on the config,
	// so the renewal lands on the following round.)
	even := later.Add(time.Second)
	alive := map[int]bool{0: true, 1: true, 3: true}
	c.deliverTo(g0.Tick(even), alive, even)
	if g0.ReconfigInFlight() || g0.Epoch() != 2 {
		t.Fatalf("change did not commit: epoch %d, in flight %v", g0.Epoch(), g0.ReconfigInFlight())
	}
	final := even.Add(time.Second)
	c.deliverTo(g0.Tick(final), alive, final)
	if !g0.MayServe(final) {
		t.Fatal("lease not renewed once the old set's majority answered")
	}
}

// TestRebootMidReconfigurationResumesJointPhase crashes the proposing
// leaseholder at the worst moment: the joint config is journalled (on a
// real on-disk store) but the final config has not committed. The
// rebooted member must recover into the exact joint epoch its disk
// agreed to, re-win leadership, inherit the unfinished change and drive
// it home — finishing with the stable epoch-2 set on every survivor and
// on its own disk.
func TestRebootMidReconfigurationResumesJointPhase(t *testing.T) {
	now := time.Unix(1000, 0)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, []int{0, 1, 2}, []int{1, 2}, 0)
	g0 := New(Config{ID: 0, Members: []int{0, 1, 2}, Lease: time.Second, Journal: st})
	c.groups[0] = g0
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if v, out, ok := g0.Bump(0, 1, 2000.5, now); !ok || v != 1 {
		t.Fatalf("Bump = (%d, %v)", v, ok)
	} else {
		c.pump(out, now)
	}
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[3]})
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused")
	}
	// The transfer reaches 3 and its ack opens the joint phase — which the
	// leader journals before proposing — but the proposal broadcast is
	// lost, and the leader crashes with the change half done.
	c.deliverTo(msgs, map[int]bool{0: true, 3: true}, now)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	delete(c.groups, 0)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rc, found := st2.ReplicaConfig(0)
	if !found || rc.Epoch != 1 || !rc.Joint {
		t.Fatalf("disk config = (%+v, %v), want the joint epoch-1 record", rc, found)
	}
	g0b := New(Config{ID: 0, Members: []int{0, 1, 2}, Lease: time.Second, Journal: st2})
	g0b.Restore(st2.ReplicaStates(0))
	g0b.RestoreConfig(rc)
	if g0b.Epoch() != 1 || !g0b.ReconfigInFlight() {
		t.Fatalf("reboot resumed at epoch %d (in flight %v), want the joint epoch 1",
			g0b.Epoch(), g0b.ReconfigInFlight())
	}
	c.groups[0] = g0b

	// Re-elect past the old lease; the first leader tick inherits the
	// joint config as an in-flight change and retransmits it to
	// completion against the survivors 1 and 3.
	alive := map[int]bool{0: true, 1: true, 3: true}
	at := now.Add(2 * time.Second)
	c.deliverTo(g0b.StartCandidate(at), alive, at)
	for i := 0; i < 40 && (!g0b.Leading() || g0b.ReconfigInFlight()); i++ {
		at = at.Add(250 * time.Millisecond)
		c.deliverTo(g0b.Tick(at), alive, at)
	}
	if !g0b.Leading() {
		t.Fatal("rebooted proposer never re-won leadership")
	}
	if g0b.ReconfigInFlight() || g0b.Epoch() != 2 {
		t.Fatalf("inherited change did not commit: epoch %d, in flight %v",
			g0b.Epoch(), g0b.ReconfigInFlight())
	}
	for _, id := range []int{1, 3} {
		if e := c.groups[id].Epoch(); e != 2 {
			t.Fatalf("survivor %d at epoch %d, want 2", id, e)
		}
	}
	if rc, found = st2.ReplicaConfig(0); !found || rc.Epoch != 2 || rc.Joint {
		t.Fatalf("disk config after commit = (%+v, %v), want stable epoch 2", rc, found)
	}
}

// TestProposeReplaceRefusesBadArguments pins the guard rails: no
// proposal without leadership, none for a non-member, none promoting an
// existing member, and none replacing a member with itself.
func TestProposeReplaceRefusesBadArguments(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	if msgs, ok := g0.ProposeReplace(2, 3, now); ok {
		drop(msgs)
		t.Fatal("follower accepted a ProposeReplace")
	}
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	for _, bad := range []struct{ dead, repl int }{
		{7, 3}, // dead is not a member
		{2, 1}, // replacement already a member
		{2, 2}, // replacement is the dead member
		{2, 0}, // replacement is the proposer
	} {
		if msgs, ok := g0.ProposeReplace(bad.dead, bad.repl, now); ok {
			drop(msgs)
			t.Fatalf("ProposeReplace(%d, %d) accepted", bad.dead, bad.repl)
		}
	}
}

func TestMessageLeakFree(t *testing.T) {
	base := proto.InUse()
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	for want := int64(1); want <= 5; want++ {
		_, out, _ := g.Bump(0, want, 2000.5, now)
		c.pump(out, now)
	}
	c.pump(c.groups[1].StartCandidate(now), now)
	c.pump(c.groups[1].Tick(now.Add(time.Second)), now)
	if got := proto.InUse(); got != base {
		t.Fatalf("pooled messages leaked: in use %d, baseline %d", got, base)
	}
}

// TestRivalSameEpochConfigsCannotDiverge pins the split-brain guard on
// config adoption. A leaseholder parked in the joint phase is deposed
// by a new leader that drives a *different* replacement at the same
// epoch. The old leader must not be able to tally acks that answered
// the rival's proposal, and the shared old-set member must refuse the
// deposed proposer's retransmissions outright — so exactly one final
// config can ever commit, and the loser is taught the winner's config.
func TestRivalSameEpochConfigsCannotDiverge(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0, g1, g2 := c.groups[0], c.groups[1], c.groups[2]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)

	// Leaseholder 0 starts replacing 2 with 3; only the learner hears
	// it, so the change parks in the joint phase {0,1,2}∧{0,1,3} at
	// epoch 1 with the new set's majority already in hand.
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[3]})
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused")
	}
	c.deliverTo(msgs, map[int]bool{0: true, 3: true}, now)
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatalf("joint phase not reached: epoch %d", g0.Epoch())
	}

	// An adoption ack that does not echo this leader's own proposal term
	// must not be counted: member 1 "acking" the same epoch under some
	// other proposal would otherwise hand 0 its old-set majority.
	forged := proto.NewMessage()
	forged.Kind = proto.KindReconfig
	forged.To = 0
	forged.Origin = 1
	forged.Old = 1
	forged.Subject = subConfAck
	forged.Seq = 1
	forged.Version = 99 // echoes a proposal this leader never made
	forged.Hops = 1
	drop(g0.Step(forged, now))
	proto.Release(forged)
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatal("leader advanced its change on an ack for a rival proposal")
	}

	// Capture the parked leader's joint-proposal retransmission to the
	// shared old-set member 2, as a partitioned leader would keep
	// resending it long after being deposed.
	var stale []*proto.Message
	for _, m := range g0.Tick(now.Add(400 * time.Millisecond)) {
		if m.Kind == proto.KindReconfig && m.To == 2 {
			stale = append(stale, m)
		} else {
			proto.Release(m)
		}
	}
	if len(stale) == 0 {
		t.Fatal("no joint-proposal retransmission to member 2")
	}

	// Members 1 and 2 elect a new leader past the old lease, and it
	// drives a rival same-epoch replacement: 0 out, 4 in.
	at := now.Add(2 * time.Second)
	c.deliverTo(g1.StartCandidate(at), map[int]bool{1: true, 2: true}, at)
	if !g1.Leading() {
		t.Fatal("rival candidate did not win its round")
	}
	c.mems[4] = store.NewMem()
	c.groups[4] = New(Config{ID: 4, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[4]})
	rival, ok := g1.ProposeReplace(0, 4, at)
	if !ok {
		t.Fatal("new leader's ProposeReplace refused")
	}
	c.deliverTo(rival, map[int]bool{1: true, 2: true, 4: true}, at)
	if g1.ReconfigInFlight() || g1.Epoch() != 2 {
		t.Fatalf("rival change did not commit: epoch %d, in flight %v",
			g1.Epoch(), g1.ReconfigInFlight())
	}
	if got := g2.Members(); !sameMembers(got, []int{1, 2, 4}) {
		t.Fatalf("shared member's config = %v, want [1 2 4]", got)
	}

	// The deposed leader's stale retransmission finally reaches the
	// shared member: it must be refused — never acked — and the answer
	// must teach the stale proposer the committed config and depose it.
	var answers []*proto.Message
	for _, m := range stale {
		answers = append(answers, g2.Step(m, at)...)
		proto.Release(m)
	}
	if got := g2.Members(); !sameMembers(got, []int{1, 2, 4}) {
		t.Fatalf("stale proposal disturbed the committed config: %v", got)
	}
	for _, m := range answers {
		if m.Kind == proto.KindReconfig && m.Subject == subConfAck {
			t.Fatal("shared member acked the deposed leader's rival config")
		}
	}
	c.pump(answers, at)
	if g0.Leading() {
		t.Fatal("deposed leader still leading after being taught the new term")
	}
	if e, got := g0.Epoch(), g0.Members(); e != 2 || !sameMembers(got, []int{1, 2, 4}) {
		t.Fatalf("deposed leader caught up to (epoch %d, %v), want (2, [1 2 4])", e, got)
	}

	// A conflicting same-epoch config from no newer a term than the one
	// already adopted must be dropped without an ack (one leader per
	// term: such a frame cannot be a legitimate rival).
	conflict := proto.NewMessage()
	conflict.Kind = proto.KindReconfig
	conflict.To = 2
	conflict.Origin = 0
	conflict.Old = 2 // same term as the adopted config
	conflict.Subject = subConfFinal
	conflict.Seq = 2
	conflict.Hops = 2
	conflict.Path = append(conflict.Path, 0, 1, 3)
	if out := g2.Step(conflict, at); len(out) != 0 {
		drop(out)
		t.Fatal("same-term conflicting config was answered")
	}
	proto.Release(conflict)
	if got := g2.Members(); !sameMembers(got, []int{1, 2, 4}) {
		t.Fatalf("same-term conflicting config adopted: %v", got)
	}
}

// TestMalformedConfigProposalsRefused pins the content validation on
// config adoption: a proposal that would install an empty member set
// (whose quorum could never be satisfied again) is dropped without an
// ack and without touching the journal.
func TestMalformedConfigProposalsRefused(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{1}, 0)
	g1 := c.groups[1]
	mk := func(subject, split int, path []int) *proto.Message {
		m := proto.NewMessage()
		m.Kind = proto.KindReconfig
		m.To = 1
		m.Origin = 0
		m.Old = 1
		m.Subject = subject
		m.Seq = 1
		m.New = split
		m.Hops = 0
		m.Path = append(m.Path, path...)
		return m
	}
	for _, bad := range []*proto.Message{
		mk(subConfJoint, 0, []int{0, 1, 2}), // empty old set
		mk(subConfJoint, 3, []int{0, 1, 2}), // empty new set
		mk(subConfFinal, 0, nil),            // empty stable set
	} {
		if out := g1.Step(bad, now); len(out) != 0 {
			drop(out)
			t.Fatalf("malformed proposal (subject %d, split %d, path %v) was answered",
				bad.Subject, bad.New, bad.Path)
		}
		proto.Release(bad)
	}
	if e := g1.Epoch(); e != 0 {
		t.Fatalf("malformed proposal installed epoch %d", e)
	}
	if _, found := c.mems[1].ReplicaConfig(1); found {
		t.Fatal("malformed proposal reached the journal")
	}
	// Sanity: a well-formed proposal at the same epoch still adopts.
	good := mk(subConfFinal, 0, []int{1, 2, 3})
	out := g1.Step(good, now)
	proto.Release(good)
	if len(out) != 1 || out[0].Subject != subConfAck {
		drop(out)
		t.Fatal("well-formed proposal was not acked")
	}
	drop(out)
	if e := g1.Epoch(); e != 1 {
		t.Fatalf("well-formed proposal not adopted: epoch %d", e)
	}
}

// TestStaleTermStateTransferRefused pins the term gate on state
// transfer: an ex-leader partitioned behind the current term must not
// be able to plant a member set, an epoch or a floor on a node that has
// already heard from newer leadership.
func TestStaleTermStateTransferRefused(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{1}, 0)
	g1 := c.groups[1]
	// A prepare from term 5 raises the receiver's term.
	prep := proto.NewMessage()
	prep.Kind = proto.KindPrepare
	prep.To = 1
	prep.Origin = 9
	prep.Old = 5
	prep.Hops = 0
	drop(g1.Step(prep, now))
	proto.Release(prep)
	if g1.Term() != 5 {
		t.Fatalf("term = %d, want 5", g1.Term())
	}
	mkBegin := func(term int) *proto.Message {
		m := proto.NewMessage()
		m.Kind = proto.KindStateXfer
		m.To = 1
		m.Origin = 9
		m.Old = term
		m.Subject = subXferBegin
		m.Seq = 7
		m.Hops = 7
		m.Version = 50
		m.Path = append(m.Path, 8, 9)
		return m
	}
	// Term 3 < 5: the begin frame must install nothing and go unacked.
	stale := mkBegin(3)
	if out := g1.Step(stale, now); len(out) != 0 {
		drop(out)
		t.Fatal("stale-term transfer begin was answered")
	}
	proto.Release(stale)
	if e := g1.Epoch(); e != 0 {
		t.Fatalf("stale-term transfer installed epoch %d", e)
	}
	if _, found := c.mems[1].ReplicaConfig(1); found {
		t.Fatal("stale-term transfer reached the journal")
	}
	// The same frame at the current term installs and acks (the empty
	// snapshot has zero chunks, so the begin alone completes it).
	fresh := mkBegin(5)
	out := g1.Step(fresh, now)
	proto.Release(fresh)
	if len(out) != 1 || out[0].Subject != subXferAck {
		drop(out)
		t.Fatal("current-term transfer begin was not acked")
	}
	drop(out)
	if e := g1.Epoch(); e != 7 {
		t.Fatalf("current-term transfer installed epoch %d, want 7", e)
	}
}

// TestDeadMembersIsReadOnly pins that polling the permanent-failure
// signal never perturbs it: before the leader's first Tick no liveness
// clock has started, so monitoring reads — however often and however
// late — report nothing and change nothing. Only Tick starts the clock.
func TestDeadMembersIsReadOnly(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0}, 0)
	g := c.groups[0]
	horizon := 3 * time.Second
	if d := g.DeadMembers(now, horizon); d != nil {
		t.Fatalf("dead members before any Tick: %v", d)
	}
	if d := g.DeadMembers(now.Add(2*horizon), horizon); d != nil {
		t.Fatalf("a monitoring poll started the silence clock: %v", d)
	}
	g.BootLeader()
	if d := g.DeadMembers(now.Add(4*horizon), horizon); d != nil {
		t.Fatalf("dead members before the leader's first Tick: %v", d)
	}
	// The first Tick seeds the clock; peers silent past the horizon from
	// that point on are reported.
	tickAt := now.Add(4 * horizon)
	drop(g.Tick(tickAt))
	if d := g.DeadMembers(tickAt.Add(horizon/2), horizon); d != nil {
		t.Fatalf("dead members inside the horizon: %v", d)
	}
	if d := g.DeadMembers(tickAt.Add(horizon), horizon); len(d) != 2 {
		t.Fatalf("dead members past the horizon = %v, want both peers", d)
	}
}
