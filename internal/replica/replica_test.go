package replica

import (
	"testing"
	"time"

	"dup/internal/proto"
	"dup/internal/store"
)

// cluster wires R groups to an in-process bus for single-threaded
// protocol tests.
type cluster struct {
	groups map[int]*Group
	mems   map[int]*store.Mem
}

func newCluster(t *testing.T, members []int, ids []int, reserve int64) *cluster {
	t.Helper()
	c := &cluster{groups: map[int]*Group{}, mems: map[int]*store.Mem{}}
	for _, id := range ids {
		mem := store.NewMem()
		c.mems[id] = mem
		c.groups[id] = New(Config{
			ID: id, Members: members, Lease: time.Second, Reserve: reserve, Journal: mem,
		})
	}
	return c
}

// pump delivers msgs (and everything they trigger) until quiescent.
func (c *cluster) pump(msgs []*proto.Message, now time.Time) {
	for len(msgs) > 0 {
		var next []*proto.Message
		for _, m := range msgs {
			if g, ok := c.groups[m.To]; ok {
				next = append(next, g.Step(m, now)...)
			}
			proto.Release(m)
		}
		msgs = next
	}
}

// drop releases msgs undelivered (a total partition).
func drop(msgs []*proto.Message) {
	for _, m := range msgs {
		proto.Release(m)
	}
}

func TestBootLeaderAcquiresLeaseThenReplicates(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	if g.MayServe(now) {
		t.Fatal("leader serving before any lease ack")
	}
	c.pump(g.Tick(now), now) // lease round trip
	if !g.MayServe(now) {
		t.Fatal("leader has no lease after a quorum acked the renewal")
	}
	v, out, ok := g.Bump(0, 1, 2000.5, now)
	if !ok || v != 1 {
		t.Fatalf("Bump = (%d, ok=%v), want (1, true)", v, ok)
	}
	c.pump(out, now)
	for _, id := range []int{1, 2} {
		if got := c.groups[id].Accepted(0); got != 1 {
			t.Fatalf("replica %d accepted %d, want 1", id, got)
		}
		rs := c.mems[id].ReplicaStates(id)
		if len(rs) != 1 || rs[0].Version != 1 {
			t.Fatalf("replica %d journal = %+v", id, rs)
		}
	}
	// The commit watermark follows on the next tick.
	c.pump(g.Tick(now.Add(400*time.Millisecond)), now)
	if got := c.groups[1].Committed(0); got != 1 {
		t.Fatalf("replica 1 committed %d, want 1", got)
	}
}

func TestReserveStallsExposureWithoutQuorum(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	// Partition the followers: accepts never arrive. The reserve (B=2)
	// lets two versions out, then the stream stalls.
	var pending []*proto.Message
	for want := int64(1); want <= 2; want++ {
		v, out, ok := g.Bump(0, want, 2000.5, now)
		pending = append(pending, out...)
		if !ok || v != want {
			t.Fatalf("Bump(%d) = (%d, ok=%v) inside the reserve", want, v, ok)
		}
	}
	if v, out, ok := g.Bump(0, 3, 2000.5, now); ok {
		drop(out)
		t.Fatalf("Bump(3) exposed %d with the reserve exhausted", v)
	} else {
		pending = append(pending, out...)
	}
	// Heal: deliver everything; the acks reopen the window.
	c.pump(pending, now)
	c.pump(g.Tick(now.Add(400*time.Millisecond)), now)
	if v, out, ok := g.Bump(0, 3, 2000.5, now); !ok || v != 3 {
		t.Fatalf("Bump(3) after heal = (%d, ok=%v), want (3, true)", v, ok)
	} else {
		c.pump(out, now)
	}
}

func TestFailoverNeverRegresses(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 4)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	// Expose a stream, replicating only sometimes: the last exposures ride
	// the reserve with no quorum behind them.
	var exposed int64
	for want := int64(1); want <= 10; want++ {
		v, out, ok := g0.Bump(0, want, 2000.5, now)
		if want <= 6 {
			c.pump(out, now)
		} else {
			drop(out) // partitioned mid-push
		}
		if ok {
			exposed = v
		}
	}
	if exposed < 6 {
		t.Fatalf("exposed only %d versions", exposed)
	}
	// Leader dies; replica 1 runs the promise round and takes over.
	g1 := c.groups[1]
	msgs := g1.StartCandidate(now)
	var kept []*proto.Message
	for _, m := range msgs {
		if m.To == 0 {
			proto.Release(m) // dead leader
			continue
		}
		kept = append(kept, m)
	}
	c.pump(kept, now)
	if !g1.Leading() {
		t.Fatal("candidate did not reach quorum with one peer alive")
	}
	// First bump appends the floor entry and replicates it before
	// exposing; the retry exposes a version strictly above everything the
	// old leader ever served.
	v, out, ok := g1.Bump(0, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		v, out, ok = g1.Bump(0, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok {
		t.Fatal("new leader never exposed after its floor replicated")
	}
	if v <= exposed {
		t.Fatalf("failover regressed: new leader exposed %d, old leader had exposed %d", v, exposed)
	}
}

func TestSupersededLeaderStopsServing(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if v, out, ok := g0.Bump(0, 1, 2000.5, now); !ok || v != 1 {
		t.Fatalf("Bump = (%d, %v)", v, ok)
	} else {
		c.pump(out, now)
	}
	// A higher-term candidate appears; the moment the old leader hears
	// the new term it goes silent for good.
	c.pump(c.groups[1].StartCandidate(now), now)
	if !c.groups[1].Leading() {
		t.Fatal("higher-term candidate not promoted")
	}
	if g0.MayServe(now) {
		t.Fatal("superseded leader still holds a lease")
	}
	if _, out, ok := g0.Bump(0, 2, 2000.5, now); ok {
		t.Fatal("superseded leader exposed a version")
	} else {
		drop(out)
	}
}

func TestLeaseExpiresWithoutRenewalQuorum(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	if !g.MayServe(now) {
		t.Fatal("no lease after boot round")
	}
	// Renewals stop reaching the quorum; the lease runs out.
	later := now.Add(2 * time.Second)
	drop(g.Tick(later))
	if g.MayServe(later) {
		t.Fatal("leader serving past an unrenewed lease")
	}
	// The quorum comes back; the next renewal restores service.
	c.pump(g.Tick(later.Add(time.Second)), later.Add(time.Second))
	if !g.MayServe(later.Add(time.Second)) {
		t.Fatal("lease not restored after renewal quorum")
	}
}

func TestNonMemberLeadsFromOutside(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	var v int64
	for want := int64(1); want <= 5; want++ {
		got, out, ok := g0.Bump(0, want, 2000.5, now)
		c.pump(out, now)
		if !ok || got != want {
			t.Fatalf("Bump(%d) = (%d, %v)", want, got, ok)
		}
		v = got
	}
	// A non-member (the directory's promotion choice) takes over: its
	// quorum is counted purely among the members. Its first round guesses
	// term 1 — the incumbent's term — so the live lease refuses it; the
	// candidate retransmission path escalates the term and the retry wins.
	c.mems[9] = store.NewMem()
	g9 := New(Config{ID: 9, Members: []int{0, 1, 2}, Lease: time.Second, Reserve: 2})
	c.groups[9] = g9
	deliver := func(msgs []*proto.Message, at time.Time) {
		var kept []*proto.Message
		for _, m := range msgs {
			if m.To == 0 {
				proto.Release(m) // dead leader
				continue
			}
			kept = append(kept, m)
		}
		c.pump(kept, at)
	}
	deliver(g9.StartCandidate(now), now)
	if g9.Leading() {
		t.Fatal("stale-term candidate promoted over a live lease")
	}
	retry := now.Add(500 * time.Millisecond) // past lease/4 + the id-9 retry stagger
	deliver(g9.Tick(retry), retry)
	if !g9.Leading() {
		t.Fatal("non-member candidate not promoted by member quorum")
	}
	nv, out, ok := g9.Bump(0, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		nv, out, ok = g9.Bump(0, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok || nv <= v {
		t.Fatalf("non-member leader exposed (%d, ok=%v), want > %d", nv, ok, v)
	}
}

// TestDuelingMemberCandidatesConverge is the dual-promotion race of a
// multi-process cluster: the leaseholder 0 dies and the two surviving
// members both start candidacies at the same instant. Without the
// equal-term id tie-break they refuse each other's prepares and
// re-escalate terms in lockstep forever; with it, exactly one wins
// within a bounded number of staggered retries.
func TestDuelingMemberCandidatesConverge(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if _, out, ok := g0.Bump(0, 1, 2000.5, now); !ok {
		t.Fatal("incumbent could not expose")
	} else {
		c.pump(out, now)
	}
	// Leaseholder dies; its messages stop. Both survivors promote at once.
	delete(c.groups, 0)
	g1, g2 := c.groups[1], c.groups[2]
	c.pump(g1.StartCandidate(now), now)
	c.pump(g2.StartCandidate(now), now)
	// Drive both tickers in lockstep — the adversarial schedule.
	at := now
	for i := 0; i < 40 && !g1.Leading() && !g2.Leading(); i++ {
		at = at.Add(50 * time.Millisecond)
		c.pump(g1.Tick(at), at)
		c.pump(g2.Tick(at), at)
	}
	if g1.Leading() == g2.Leading() {
		t.Fatalf("dueling candidates did not converge on one leader: g1=%v g2=%v",
			g1.Leading(), g2.Leading())
	}
	winner := g1
	if g2.Leading() {
		winner = g2
	}
	// The winner's floor must clear the dead incumbent's exposures, and
	// the hot path must work: retry once if the floor round needs a pump.
	v, out, ok := winner.Bump(0, 1, 3000.5, at)
	c.pump(out, at)
	if !ok {
		v, out, ok = winner.Bump(0, 1, 3000.5, at)
		c.pump(out, at)
	}
	if !ok || v <= 1 {
		t.Fatalf("duel winner exposed (%d, ok=%v), want a version above the incumbent's 1", v, ok)
	}
}

func TestRestoreSeedsLogAndTerm(t *testing.T) {
	g := New(Config{ID: 1, Members: []int{0, 1, 2}})
	g.Restore([]store.ReplicaState{
		{ID: 1, Key: 0, Term: 3, Version: 40, Expiry: 2000.5},
		{ID: 1, Key: 7, Term: 2, Version: 9, Expiry: 2000.5},
	})
	if got := g.Accepted(0); got != 40 {
		t.Fatalf("Accepted(0) = %d, want 40", got)
	}
	if got := g.Accepted(7); got != 9 {
		t.Fatalf("Accepted(7) = %d, want 9", got)
	}
	if got := g.Term(); got != 3 {
		t.Fatalf("Term = %d, want 3", got)
	}
}

func TestPromiseSnapshotChunksLargeLogs(t *testing.T) {
	now := time.Unix(1000, 0)
	// Member 0 is dead: the candidate (2) can only reach quorum with
	// replica 1's vote, and that vote carries a multi-chunk snapshot —
	// promotion must wait for the final chunk and merge all of them.
	c := newCluster(t, []int{0, 1, 2}, []int{1, 2}, 0)
	// Replica 1 holds a log wider than one promise frame can carry.
	states := make([]store.ReplicaState, 0, maxPromisePairs+10)
	for k := 0; k < maxPromisePairs+10; k++ {
		states = append(states, store.ReplicaState{ID: 1, Key: k, Term: 1, Version: int64(k + 1)})
	}
	c.groups[1].Restore(states)
	g2 := c.groups[2]
	c.pump(g2.StartCandidate(now), now)
	if !g2.Leading() {
		t.Fatal("candidate did not assemble the chunked snapshot")
	}
	// The floor over the widest key must reflect the chunked promise.
	wideKey := maxPromisePairs + 9
	v, out, ok := g2.Bump(wideKey, 1, 3000.5, now)
	c.pump(out, now)
	if !ok {
		v, out, ok = g2.Bump(wideKey, 1, 3000.5, now)
		c.pump(out, now)
	}
	if !ok || v <= int64(wideKey+1) {
		t.Fatalf("Bump on chunk-2 key = (%d, ok=%v), want > %d", v, ok, wideKey+1)
	}
}

// deliverTo pumps msgs (and everything they trigger), but only to the
// recipients in allow; everything else is released undelivered — the
// other endpoints are dead or partitioned.
func (c *cluster) deliverTo(msgs []*proto.Message, allow map[int]bool, now time.Time) {
	for len(msgs) > 0 {
		var next []*proto.Message
		for _, m := range msgs {
			if g, ok := c.groups[m.To]; ok && allow[m.To] {
				next = append(next, g.Step(m, now)...)
			}
			proto.Release(m)
		}
		msgs = next
	}
}

// TestProposeReplaceReplacesDeadMember drives one full online
// replacement: member 2 dies for good, the leaseholder state-transfers
// its log to the empty learner 3, and the two-phase change commits to
// the stable epoch-2 set {0,1,3} on every survivor — durably, so each
// journal holds the new config. The replacement must then be a real
// voter: when the leaseholder dies too, node 3 campaigns with node 1
// and exposes strictly above everything the old leader ever served.
func TestProposeReplaceReplacesDeadMember(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 2)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	var exposed int64
	for want := int64(1); want <= 5; want++ {
		v, out, ok := g0.Bump(0, want, 2000.5, now)
		c.pump(out, now)
		if !ok || v != want {
			t.Fatalf("Bump(%d) = (%d, %v)", want, v, ok)
		}
		exposed = v
	}
	// Member 2 is gone for good; the replacement 3 boots as an empty
	// learner that still believes in the boot-time member set.
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{
		ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Reserve: 2, Journal: c.mems[3],
	})
	alive := map[int]bool{0: true, 1: true, 3: true}
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused with a clean stable config")
	}
	// Only one change may be in flight at a time.
	if more, ok2 := g0.ProposeReplace(1, 4, now); ok2 {
		drop(more)
		t.Fatal("second ProposeReplace accepted while one was in flight")
	}
	c.deliverTo(msgs, alive, now)
	if g0.ReconfigInFlight() {
		t.Fatal("reconfiguration still in flight after every survivor answered")
	}
	for _, id := range []int{0, 1, 3} {
		g := c.groups[id]
		if e := g.Epoch(); e != 2 {
			t.Fatalf("node %d at epoch %d, want 2 (joint + final)", id, e)
		}
		if m := g.Members(); len(m) != 3 || m[0] != 0 || m[1] != 1 || m[2] != 3 {
			t.Fatalf("node %d members = %v, want [0 1 3]", id, m)
		}
		rc, found := c.mems[id].ReplicaConfig(id)
		if !found || rc.Epoch != 2 || rc.Joint {
			t.Fatalf("node %d journalled config = (%+v, %v), want stable epoch 2", id, rc, found)
		}
	}
	// The state transfer brought the replacement's accepted log up to the
	// leader's exposure bound before it gained a vote.
	if got := c.groups[3].Accepted(0); got < exposed {
		t.Fatalf("replacement accepted %d, below the exposed %d", got, exposed)
	}
	// The leaseholder dies next; the replacement campaigns with node 1 as
	// its quorum partner and must never regress the stream.
	delete(c.groups, 0)
	survivors := map[int]bool{1: true, 3: true}
	g3 := c.groups[3]
	at := now
	c.deliverTo(g3.StartCandidate(at), survivors, at)
	for i := 0; i < 40 && !g3.Leading(); i++ {
		at = at.Add(250 * time.Millisecond)
		c.deliverTo(g3.Tick(at), survivors, at)
	}
	if !g3.Leading() {
		t.Fatal("replacement never won the fail-over round")
	}
	v, out, ok := g3.Bump(0, 1, 3000.5, at)
	c.deliverTo(out, survivors, at)
	if !ok {
		v, out, ok = g3.Bump(0, 1, 3000.5, at)
		c.deliverTo(out, survivors, at)
	}
	if !ok || v <= exposed {
		t.Fatalf("replacement leader exposed (%d, ok=%v), want > %d", v, ok, exposed)
	}
}

// TestJointPhaseRequiresBothQuorums is the 3→3 replacement regression
// guard: while the joint config {0,1,2}∧{0,1,3} is in force, a majority
// of the new set alone (the leader plus the incoming member 3) must
// satisfy nothing — not the lease renewal, not the config commit. A
// quorum rule that momentarily counted only the target set would accept
// exactly that 2-of-3 here while the old set has one vote of three.
func TestJointPhaseRequiresBothQuorums(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[3]})
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused")
	}
	// Deliver the state transfer to 3 only: its completion ack opens the
	// joint phase at the leader, 3 adopts and acks the joint config, and
	// nothing reaches the old members — the change parks in the joint
	// phase with the new set's majority (0 and 3) already in hand.
	c.deliverTo(msgs, map[int]bool{0: true, 3: true}, now)
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatalf("joint phase not reached: epoch %d, in flight %v", g0.Epoch(), g0.ReconfigInFlight())
	}
	// The boot lease runs out; the renewal reaches only the new member.
	// Self + 3 is a majority of {0,1,3} — and must not be enough.
	later := now.Add(2 * time.Second)
	c.deliverTo(g0.Tick(later), map[int]bool{0: true, 3: true}, later)
	if g0.MayServe(later) {
		t.Fatal("lease renewed by a new-set-only quorum during the joint phase")
	}
	if !g0.ReconfigInFlight() || g0.Epoch() != 1 {
		t.Fatal("config advanced on a new-set-only quorum during the joint phase")
	}
	// Old member 1 answers again: both majorities form and the change
	// commits through to the stable epoch-2 set. (This round's lease
	// frame bounces off 1's epoch gate while it catches up on the config,
	// so the renewal lands on the following round.)
	even := later.Add(time.Second)
	alive := map[int]bool{0: true, 1: true, 3: true}
	c.deliverTo(g0.Tick(even), alive, even)
	if g0.ReconfigInFlight() || g0.Epoch() != 2 {
		t.Fatalf("change did not commit: epoch %d, in flight %v", g0.Epoch(), g0.ReconfigInFlight())
	}
	final := even.Add(time.Second)
	c.deliverTo(g0.Tick(final), alive, final)
	if !g0.MayServe(final) {
		t.Fatal("lease not renewed once the old set's majority answered")
	}
}

// TestRebootMidReconfigurationResumesJointPhase crashes the proposing
// leaseholder at the worst moment: the joint config is journalled (on a
// real on-disk store) but the final config has not committed. The
// rebooted member must recover into the exact joint epoch its disk
// agreed to, re-win leadership, inherit the unfinished change and drive
// it home — finishing with the stable epoch-2 set on every survivor and
// on its own disk.
func TestRebootMidReconfigurationResumesJointPhase(t *testing.T) {
	now := time.Unix(1000, 0)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, []int{0, 1, 2}, []int{1, 2}, 0)
	g0 := New(Config{ID: 0, Members: []int{0, 1, 2}, Lease: time.Second, Journal: st})
	c.groups[0] = g0
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	if v, out, ok := g0.Bump(0, 1, 2000.5, now); !ok || v != 1 {
		t.Fatalf("Bump = (%d, %v)", v, ok)
	} else {
		c.pump(out, now)
	}
	c.mems[3] = store.NewMem()
	c.groups[3] = New(Config{ID: 3, Members: []int{0, 1, 2}, Lease: time.Second, Journal: c.mems[3]})
	msgs, ok := g0.ProposeReplace(2, 3, now)
	if !ok {
		t.Fatal("ProposeReplace refused")
	}
	// The transfer reaches 3 and its ack opens the joint phase — which the
	// leader journals before proposing — but the proposal broadcast is
	// lost, and the leader crashes with the change half done.
	c.deliverTo(msgs, map[int]bool{0: true, 3: true}, now)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	delete(c.groups, 0)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rc, found := st2.ReplicaConfig(0)
	if !found || rc.Epoch != 1 || !rc.Joint {
		t.Fatalf("disk config = (%+v, %v), want the joint epoch-1 record", rc, found)
	}
	g0b := New(Config{ID: 0, Members: []int{0, 1, 2}, Lease: time.Second, Journal: st2})
	g0b.Restore(st2.ReplicaStates(0))
	g0b.RestoreConfig(rc)
	if g0b.Epoch() != 1 || !g0b.ReconfigInFlight() {
		t.Fatalf("reboot resumed at epoch %d (in flight %v), want the joint epoch 1",
			g0b.Epoch(), g0b.ReconfigInFlight())
	}
	c.groups[0] = g0b

	// Re-elect past the old lease; the first leader tick inherits the
	// joint config as an in-flight change and retransmits it to
	// completion against the survivors 1 and 3.
	alive := map[int]bool{0: true, 1: true, 3: true}
	at := now.Add(2 * time.Second)
	c.deliverTo(g0b.StartCandidate(at), alive, at)
	for i := 0; i < 40 && (!g0b.Leading() || g0b.ReconfigInFlight()); i++ {
		at = at.Add(250 * time.Millisecond)
		c.deliverTo(g0b.Tick(at), alive, at)
	}
	if !g0b.Leading() {
		t.Fatal("rebooted proposer never re-won leadership")
	}
	if g0b.ReconfigInFlight() || g0b.Epoch() != 2 {
		t.Fatalf("inherited change did not commit: epoch %d, in flight %v",
			g0b.Epoch(), g0b.ReconfigInFlight())
	}
	for _, id := range []int{1, 3} {
		if e := c.groups[id].Epoch(); e != 2 {
			t.Fatalf("survivor %d at epoch %d, want 2", id, e)
		}
	}
	if rc, found = st2.ReplicaConfig(0); !found || rc.Epoch != 2 || rc.Joint {
		t.Fatalf("disk config after commit = (%+v, %v), want stable epoch 2", rc, found)
	}
}

// TestProposeReplaceRefusesBadArguments pins the guard rails: no
// proposal without leadership, none for a non-member, none promoting an
// existing member, and none replacing a member with itself.
func TestProposeReplaceRefusesBadArguments(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g0 := c.groups[0]
	if msgs, ok := g0.ProposeReplace(2, 3, now); ok {
		drop(msgs)
		t.Fatal("follower accepted a ProposeReplace")
	}
	g0.BootLeader()
	c.pump(g0.Tick(now), now)
	for _, bad := range []struct{ dead, repl int }{
		{7, 3}, // dead is not a member
		{2, 1}, // replacement already a member
		{2, 2}, // replacement is the dead member
		{2, 0}, // replacement is the proposer
	} {
		if msgs, ok := g0.ProposeReplace(bad.dead, bad.repl, now); ok {
			drop(msgs)
			t.Fatalf("ProposeReplace(%d, %d) accepted", bad.dead, bad.repl)
		}
	}
}

func TestMessageLeakFree(t *testing.T) {
	base := proto.InUse()
	now := time.Unix(1000, 0)
	c := newCluster(t, []int{0, 1, 2}, []int{0, 1, 2}, 0)
	g := c.groups[0]
	g.BootLeader()
	c.pump(g.Tick(now), now)
	for want := int64(1); want <= 5; want++ {
		_, out, _ := g.Bump(0, want, 2000.5, now)
		c.pump(out, now)
	}
	c.pump(c.groups[1].StartCandidate(now), now)
	c.pump(c.groups[1].Tick(now.Add(time.Second)), now)
	if got := proto.InUse(); got != base {
		t.Fatalf("pooled messages leaked: in use %d, baseline %d", got, base)
	}
}
