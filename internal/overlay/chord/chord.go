// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001) — the structured peer-to-peer substrate the paper's
// system model assumes. Nodes sit on a 64-bit identifier ring; each
// maintains a successor list and a finger table and routes lookups in
// O(log n) hops by repeatedly forwarding to the closest preceding finger.
//
// The simulator uses Chord in two ways: ExtractTree derives the index
// search tree for a key (each node's first lookup hop toward the key's
// authority node is its tree parent — exactly the paper's "queries for
// indices are routed along a well-defined path ... these search paths form
// a tree"), and the live network uses lookups to locate authority nodes.
//
// The implementation is deterministic and step-driven: Stabilize, Notify
// and FixFingers are explicit operations, so tests can drive churn and
// convergence without goroutines or wall-clock time.
package chord

import (
	"fmt"
	"sort"

	"dup/internal/rng"
)

// M is the identifier-space width in bits.
const M = 64

// ID is a point on the Chord ring.
type ID uint64

// Between reports whether id lies in the half-open ring interval (a, b].
// The interval wraps when b <= a; (a, a] denotes the full ring, so any id
// is inside — this matches Chord's successor semantics for a single node.
func (id ID) Between(a, b ID) bool {
	if a < b {
		return id > a && id <= b
	}
	return id > a || id <= b
}

// BetweenOpen reports whether id lies in the open interval (a, b).
func (id ID) BetweenOpen(a, b ID) bool {
	if a < b {
		return id > a && id < b
	}
	return id > a || id < b
}

// HashKey maps a string key onto the ring with the FNV-1a function — a
// stand-in for the SHA-1 consistent hashing of the original paper that
// keeps the implementation dependency-free and deterministic.
func HashKey(key string) ID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return ID(h)
}

// Node is one Chord participant.
type Node struct {
	id      ID
	ring    *Ring
	succ    []ID // successor list, nearest first
	pred    ID
	hasPred bool
	finger  [M]ID
	alive   bool
}

// ID returns the node's ring identifier.
func (n *Node) ID() ID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's current first live successor candidate.
func (n *Node) Successor() ID { return n.succ[0] }

// Predecessor returns the node's predecessor and whether one is known.
func (n *Node) Predecessor() (ID, bool) { return n.pred, n.hasPred }

// Ring is the collection of Chord nodes. It is a test-and-simulation
// harness: nodes address each other through the ring by ID, which stands
// in for the network layer.
type Ring struct {
	nodes   map[ID]*Node
	succLen int
}

// NewRing returns an empty ring whose nodes keep successor lists of the
// given length. Chord needs succLen >= 1; values around log2(n) tolerate
// simultaneous failures.
func NewRing(succLen int) *Ring {
	if succLen < 1 {
		panic(fmt.Sprintf("chord: successor list length must be >= 1, got %d", succLen))
	}
	return &Ring{nodes: make(map[ID]*Node), succLen: succLen}
}

// Len returns the number of live nodes.
func (r *Ring) Len() int {
	count := 0
	for _, n := range r.nodes {
		if n.alive {
			count++
		}
	}
	return count
}

// Node returns the node with the given id, or nil.
func (r *Ring) Node(id ID) *Node {
	n := r.nodes[id]
	if n == nil || !n.alive {
		return nil
	}
	return n
}

// IDs returns the ids of all live nodes in ascending ring order.
func (r *Ring) IDs() []ID {
	out := make([]ID, 0, len(r.nodes))
	for id, n := range r.nodes {
		if n.alive {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bootstrap creates a ring of n nodes with ids drawn uniformly from src
// and builds correct routing state directly (the steady state that join +
// stabilization would converge to). It panics if n <= 0.
func Bootstrap(n int, src *rng.Source, succLen int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("chord: need n > 0 nodes, got %d", n))
	}
	r := NewRing(succLen)
	for len(r.nodes) < n {
		id := ID(src.Uint64())
		if _, dup := r.nodes[id]; dup {
			continue
		}
		r.nodes[id] = &Node{id: id, ring: r, alive: true}
	}
	r.Rebuild()
	return r
}

// Rebuild recomputes every live node's successor list, predecessor and
// finger table from the current membership. Tests use it to reach the
// post-stabilization fixed point instantly; incremental convergence is
// exercised through Join/Stabilize/FixFingers.
func (r *Ring) Rebuild() {
	ids := r.IDs()
	if len(ids) == 0 {
		return
	}
	for i, id := range ids {
		n := r.nodes[id]
		n.succ = n.succ[:0]
		for k := 1; k <= r.succLen; k++ {
			n.succ = append(n.succ, ids[(i+k)%len(ids)])
		}
		n.pred = ids[(i-1+len(ids))%len(ids)]
		n.hasPred = true
		for b := 0; b < M; b++ {
			start := id + (ID(1) << uint(b))
			n.finger[b] = successorOf(ids, start)
		}
	}
}

// successorOf returns the first id in the sorted ring slice at or after
// start, wrapping around.
func successorOf(ids []ID, start ID) ID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= start })
	if i == len(ids) {
		i = 0
	}
	return ids[i]
}

// SuccessorOf returns the live node responsible for id — the authority
// node of any key hashing to id.
func (r *Ring) SuccessorOf(id ID) *Node {
	ids := r.IDs()
	if len(ids) == 0 {
		return nil
	}
	return r.nodes[successorOf(ids, id)]
}
