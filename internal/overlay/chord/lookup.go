package chord

import "fmt"

// closestPrecedingFinger returns the live finger of n that most closely
// precedes target, or n itself when none does.
func (n *Node) closestPrecedingFinger(target ID) ID {
	for b := M - 1; b >= 0; b-- {
		f := n.finger[b]
		node := n.ring.nodes[f]
		if node == nil || !node.alive {
			continue
		}
		if f.BetweenOpen(n.id, target) {
			return f
		}
	}
	// Fall back to the first live successor, which always makes progress
	// on a connected ring.
	for _, s := range n.succ {
		if node := n.ring.nodes[s]; node != nil && node.alive && s != n.id {
			if s.BetweenOpen(n.id, target) {
				return s
			}
		}
	}
	return n.id
}

// NextHop returns the node a lookup for key id should be forwarded to from
// n, and whether n itself is the key's authority (in which case the
// returned id is n's). This is one step of the iterative Chord lookup.
func (n *Node) NextHop(id ID) (next ID, done bool) {
	// n owns id when id lies in (pred, n].
	if n.hasPred && id.Between(n.pred, n.id) {
		return n.id, true
	}
	succ := n.firstLiveSuccessor()
	if succ == n.id {
		return n.id, true // alone on the ring: n owns everything
	}
	// If id lies between n and its successor, the successor owns it; the
	// lookup finishes on arrival there.
	if id.Between(n.id, succ) {
		return succ, false
	}
	cp := n.closestPrecedingFinger(id)
	if cp == n.id {
		return succ, false
	}
	return cp, false
}

// firstLiveSuccessor returns the first live entry of the successor list,
// or the node's own id when the whole list is dead (a degenerate ring).
func (n *Node) firstLiveSuccessor() ID {
	for _, s := range n.succ {
		if node := n.ring.nodes[s]; node != nil && node.alive {
			return s
		}
	}
	return n.id
}

// Lookup routes a query for id from the given start node and returns the
// authority node's id and the sequence of hops taken (excluding the start,
// including the authority). It fails if the route does not converge within
// 4*M hops — on a stabilized ring lookups take O(log n).
func (r *Ring) Lookup(start ID, id ID) (owner ID, path []ID, err error) {
	n := r.Node(start)
	if n == nil {
		return 0, nil, fmt.Errorf("chord: lookup from unknown or dead node %d", start)
	}
	cur := n
	for steps := 0; steps < 4*M; steps++ {
		next, done := cur.NextHop(id)
		if done {
			return cur.id, path, nil
		}
		if next == cur.id {
			return cur.id, path, nil
		}
		path = append(path, next)
		nxt := r.Node(next)
		if nxt == nil {
			return 0, path, fmt.Errorf("chord: route hit dead node %d", next)
		}
		cur = nxt
	}
	return 0, path, fmt.Errorf("chord: lookup for %d from %d did not converge", id, start)
}
