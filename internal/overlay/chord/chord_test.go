package chord

import (
	"math"
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestBetween(t *testing.T) {
	cases := []struct {
		id, a, b ID
		want     bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false}, // open at a
		{10, 1, 10, true}, // closed at b
		{0, 10, 2, true},  // wrapped
		{11, 10, 2, true},
		{5, 10, 2, false},
		{7, 7, 7, false}, // full ring excludes a itself... (7,7] wraps: id>7 || id<=7 is all; but id==a excluded by >
	}
	for _, c := range cases {
		if got := c.id.Between(c.a, c.b); got != c.want && !(c.a == c.b) {
			t.Errorf("%d.Between(%d,%d) = %v, want %v", c.id, c.a, c.b, got, c.want)
		}
	}
	// (a, a] is the full ring for any other id.
	if !ID(3).Between(7, 7) {
		t.Error("full-ring interval should contain 3")
	}
}

func TestHashKeyDeterministicAndSpread(t *testing.T) {
	if HashKey("movie.avi") != HashKey("movie.avi") {
		t.Fatal("hash not deterministic")
	}
	seen := map[ID]bool{}
	for _, k := range []string{"a", "b", "c", "ab", "ba", "movie.avi", "song.mp3"} {
		seen[HashKey(k)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("hash collisions among 7 distinct keys: %d unique", len(seen))
	}
}

func TestBootstrapVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 10, 500} {
		r := Bootstrap(n, rng.New(uint64(n)), 4)
		if r.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, r.Len())
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	r := Bootstrap(256, rng.New(7), 4)
	ids := r.IDs()
	err := quick.Check(func(keyRaw uint64, fromRaw uint16) bool {
		key := ID(keyRaw)
		from := ids[int(fromRaw)%len(ids)]
		owner, _, err := r.Lookup(from, key)
		if err != nil {
			return false
		}
		// Brute-force ground truth.
		want := successorOf(ids, key)
		return owner == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupHopCountLogarithmic(t *testing.T) {
	r := Bootstrap(1024, rng.New(9), 4)
	ids := r.IDs()
	src := rng.New(10)
	total := 0
	const lookups = 500
	for i := 0; i < lookups; i++ {
		from := ids[src.Intn(len(ids))]
		_, path, err := r.Lookup(from, ID(src.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += len(path)
	}
	mean := float64(total) / lookups
	// O(log2 n) = 10 for n=1024; allow generous headroom.
	if mean > 2*math.Log2(1024) {
		t.Fatalf("mean lookup path %.1f hops, want <= %.1f", mean, 2*math.Log2(1024))
	}
	if mean < 1 {
		t.Fatalf("mean lookup path %.1f suspiciously short", mean)
	}
}

func TestJoinConverges(t *testing.T) {
	r := Bootstrap(32, rng.New(11), 4)
	src := rng.New(12)
	for i := 0; i < 16; i++ {
		id := ID(src.Uint64())
		via := r.IDs()[src.Intn(r.Len())]
		if err := r.Join(id, via); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		r.StabilizeAll(3)
	}
	r.StabilizeAll(5)
	if err := r.Verify(); err != nil {
		t.Fatalf("after joins: %v", err)
	}
	if r.Len() != 48 {
		t.Fatalf("Len = %d, want 48", r.Len())
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	r := Bootstrap(4, rng.New(13), 2)
	id := r.IDs()[0]
	if err := r.Join(id, r.IDs()[1]); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := r.Join(12345, 999999); err == nil && r.Node(999999) == nil {
		t.Fatal("join via unknown node accepted")
	}
}

func TestLeaveSplices(t *testing.T) {
	r := Bootstrap(64, rng.New(14), 4)
	ids := r.IDs()
	for i := 0; i < 16; i++ {
		r.Leave(ids[i*3])
	}
	r.StabilizeAll(5)
	if err := r.Verify(); err != nil {
		t.Fatalf("after leaves: %v", err)
	}
	if r.Len() != 48 {
		t.Fatalf("Len = %d, want 48", r.Len())
	}
}

func TestFailureRecovery(t *testing.T) {
	r := Bootstrap(128, rng.New(15), 6)
	src := rng.New(16)
	ids := r.IDs()
	// Kill 20 random nodes abruptly.
	for i := 0; i < 20; i++ {
		r.Fail(ids[src.Intn(len(ids))])
	}
	r.StabilizeAll(8)
	if err := r.Verify(); err != nil {
		t.Fatalf("after failures: %v", err)
	}
	// Lookups must still find the correct owners.
	live := r.IDs()
	for i := 0; i < 100; i++ {
		key := ID(src.Uint64())
		owner, _, err := r.Lookup(live[src.Intn(len(live))], key)
		if err != nil {
			t.Fatalf("lookup after churn: %v", err)
		}
		if want := successorOf(live, key); owner != want {
			t.Fatalf("lookup(%d) = %d, want %d", key, owner, want)
		}
	}
}

func TestExtractTreeShape(t *testing.T) {
	r := Bootstrap(512, rng.New(17), 4)
	tree, ringID, err := r.ExtractTree("movie.avi")
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 512 || len(ringID) != 512 {
		t.Fatalf("tree size %d / map %d", tree.N(), len(ringID))
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Root must be the key's authority node.
	if want := r.SuccessorOf(HashKey("movie.avi")).ID(); ringID[0] != want {
		t.Fatalf("tree root ring id %d, want authority %d", ringID[0], want)
	}
	// Depth should be logarithmic-ish, definitely below 4*log2(n).
	if d := tree.MaxDepth(); d > 36 {
		t.Fatalf("chord tree depth %d too deep for 512 nodes", d)
	}
	// The map must be a bijection onto live ids.
	seen := map[ID]bool{}
	for _, id := range ringID {
		if seen[id] {
			t.Fatalf("ring id %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestExtractTreeDifferentKeysDifferentRoots(t *testing.T) {
	r := Bootstrap(128, rng.New(18), 4)
	_, map1, err1 := r.ExtractTree("key-one")
	_, map2, err2 := r.ExtractTree("key-two-different")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if map1[0] == map2[0] {
		t.Skip("two keys landed on the same authority (possible, rare)")
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := Bootstrap(1, rng.New(19), 2)
	only := r.IDs()[0]
	owner, path, err := r.Lookup(only, ID(12345))
	if err != nil || owner != only || len(path) != 0 {
		t.Fatalf("single-node lookup: owner=%d path=%v err=%v", owner, path, err)
	}
	tree, _, err := r.ExtractTree("k")
	if err != nil || tree.N() != 1 {
		t.Fatalf("single-node tree: %v %v", tree, err)
	}
}

func TestRebuildAfterManualMembership(t *testing.T) {
	r := NewRing(3)
	src := rng.New(20)
	for i := 0; i < 10; i++ {
		id := ID(src.Uint64())
		r.nodes[id] = &Node{id: id, ring: r, alive: true}
	}
	r.Rebuild()
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRingPanicsOnBadSuccLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func BenchmarkChordLookup(b *testing.B) {
	r := Bootstrap(1024, rng.New(1), 8)
	ids := r.IDs()
	src := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[src.Intn(len(ids))]
		if _, _, err := r.Lookup(from, ID(src.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChordExtractTree(b *testing.B) {
	r := Bootstrap(1024, rng.New(3), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.ExtractTree("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
