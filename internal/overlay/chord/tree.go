package chord

import (
	"fmt"

	"dup/internal/topology"
)

// ExtractTree derives the index search tree for a key from the ring's
// routing state: every node's parent is its first lookup hop toward the
// key's authority node, which becomes the tree root. This realizes the
// paper's system model — "the queries for indices are routed along a
// well-defined path to reach the node which maintains the mapping
// information ... These search paths form a tree."
//
// The returned tree uses dense ids 0..n-1 with the authority node as 0;
// the second return value maps tree ids back to ring ids. It fails if any
// node's route to the authority does not converge (an unstabilized ring).
func (r *Ring) ExtractTree(key string) (*topology.Tree, []ID, error) {
	target := HashKey(key)
	auth := r.SuccessorOf(target)
	if auth == nil {
		return nil, nil, fmt.Errorf("chord: empty ring")
	}
	ids := r.IDs()
	treeID := make(map[ID]int, len(ids))
	ringID := make([]ID, 0, len(ids))
	treeID[auth.id] = 0
	ringID = append(ringID, auth.id)
	for _, id := range ids {
		if id == auth.id {
			continue
		}
		treeID[id] = len(ringID)
		ringID = append(ringID, id)
	}
	parents := make([]int, len(ringID))
	parents[0] = -1
	for i := 1; i < len(ringID); i++ {
		id := ringID[i]
		next, done := r.nodes[id].NextHop(target)
		if done || next == id {
			// A non-authority node believing it owns the key means the
			// ring has not stabilized.
			return nil, nil, fmt.Errorf("chord: node %d claims key %q owned by %d", id, key, auth.id)
		}
		parents[i] = treeID[next]
	}
	// FromParents validates shape (single root, no cycles); a routing loop
	// would panic there, so convert that into an error.
	tree, err := buildTree(parents)
	if err != nil {
		return nil, nil, err
	}
	return tree, ringID, nil
}

// buildTree wraps topology.FromParents, converting its panics (malformed
// routing) into errors.
func buildTree(parents []int) (tree *topology.Tree, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("chord: routing does not form a tree: %v", rec)
		}
	}()
	return topology.FromParents(parents), nil
}
