package chord

import "fmt"

// Join adds a new node with the given id to the ring, bootstrapping its
// successor from any live node. Its fingers start empty and converge as
// FixFingers runs; routing works immediately through the successor. It
// returns an error if the id is taken or the bootstrap node is unknown.
func (r *Ring) Join(id ID, via ID) error {
	if n, exists := r.nodes[id]; exists && n.alive {
		return fmt.Errorf("chord: id %d already on the ring", id)
	}
	boot := r.Node(via)
	if boot == nil {
		return fmt.Errorf("chord: bootstrap node %d unknown or dead", via)
	}
	owner, _, err := r.Lookup(via, id)
	if err != nil {
		return fmt.Errorf("chord: join lookup failed: %w", err)
	}
	n := &Node{id: id, ring: r, alive: true}
	n.succ = append(n.succ, owner)
	for b := 0; b < M; b++ {
		n.finger[b] = owner // coarse start; FixFingers refines
	}
	r.nodes[id] = n
	return nil
}

// Leave removes a node gracefully: its predecessor and successor link up
// around it immediately.
func (r *Ring) Leave(id ID) {
	n := r.Node(id)
	if n == nil {
		return
	}
	n.alive = false
	if n.hasPred {
		if p := r.Node(n.pred); p != nil {
			// Splice: predecessor adopts the departing node's successors.
			p.succ = append([]ID(nil), n.succ...)
			p.trimSuccessors()
		}
	}
	if s := r.Node(n.firstLiveSuccessor()); s != nil && n.hasPred {
		s.pred = n.pred
	}
}

// Fail kills a node abruptly: neighbours discover it through Stabilize.
func (r *Ring) Fail(id ID) {
	if n := r.nodes[id]; n != nil {
		n.alive = false
	}
}

// Stabilize runs one round of Chord's stabilization on node id: it learns
// its successor's predecessor, adopts it when closer, refreshes its
// successor list from the successor, and notifies the successor of itself.
func (r *Ring) Stabilize(id ID) {
	n := r.Node(id)
	if n == nil {
		return
	}
	// Drop dead successors from the front.
	succID := n.firstLiveSuccessor()
	if succID == n.id {
		// Lost the whole list: the ring has collapsed around this node.
		n.succ = n.succ[:0]
		n.succ = append(n.succ, n.id)
		return
	}
	succ := r.Node(succID)
	if p, ok := succ.Predecessor(); ok {
		if cand := r.Node(p); cand != nil && p.BetweenOpen(n.id, succID) {
			succID, succ = p, cand
		}
	}
	// Refresh the list: successor first, then its known successors.
	n.succ = n.succ[:0]
	n.succ = append(n.succ, succID)
	for _, s := range succ.succ {
		if s != n.id {
			n.succ = append(n.succ, s)
		}
	}
	n.trimSuccessors()
	succ.notify(n.id)
}

// notify tells the node that candidate might be its predecessor.
func (n *Node) notify(candidate ID) {
	if cand := n.ring.Node(candidate); cand == nil {
		return
	}
	if !n.hasPred || n.ring.Node(n.pred) == nil || candidate.BetweenOpen(n.pred, n.id) {
		n.pred = candidate
		n.hasPred = true
	}
}

// trimSuccessors deduplicates and truncates the successor list.
func (n *Node) trimSuccessors() {
	seen := map[ID]bool{}
	out := n.succ[:0]
	for _, s := range n.succ {
		if s == n.id || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
		if len(out) == n.ring.succLen {
			break
		}
	}
	n.succ = out
}

// FixFingers refreshes every finger of node id by ring lookup.
func (r *Ring) FixFingers(id ID) {
	n := r.Node(id)
	if n == nil {
		return
	}
	for b := 0; b < M; b++ {
		start := n.id + (ID(1) << uint(b))
		owner, _, err := r.Lookup(n.id, start)
		if err != nil {
			continue // refreshed on a later round once routing heals
		}
		n.finger[b] = owner
	}
}

// StabilizeAll runs `rounds` rounds of Stabilize then FixFingers over all
// live nodes — the convergence loop tests use after churn.
func (r *Ring) StabilizeAll(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, id := range r.IDs() {
			r.Stabilize(id)
		}
		for _, id := range r.IDs() {
			r.FixFingers(id)
		}
	}
}

// Verify checks the ring's steady-state invariants: each live node's
// successor is the next live id on the ring and its predecessor the
// previous one. It returns the first inconsistency, or nil.
func (r *Ring) Verify() error {
	ids := r.IDs()
	if len(ids) == 0 {
		return nil
	}
	for i, id := range ids {
		n := r.nodes[id]
		wantSucc := ids[(i+1)%len(ids)]
		if got := n.firstLiveSuccessor(); got != wantSucc && len(ids) > 1 {
			return fmt.Errorf("node %d successor = %d, want %d", id, got, wantSucc)
		}
		wantPred := ids[(i-1+len(ids))%len(ids)]
		if len(ids) > 1 && (!n.hasPred || n.pred != wantPred) {
			return fmt.Errorf("node %d predecessor = %d (known %v), want %d", id, n.pred, n.hasPred, wantPred)
		}
	}
	return nil
}
