package can

import (
	"testing"
	"testing/quick"

	"dup/internal/rng"
)

func TestNewValidates(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 500} {
		for _, d := range []int{1, 2, 3} {
			c := New(n, d, rng.New(uint64(n*10+d)))
			if c.Len() != n {
				t.Fatalf("n=%d d=%d: Len=%d", n, d, c.Len())
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0": func() { New(0, 2, rng.New(1)) },
		"d=0": func() { New(4, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOwnerUnique(t *testing.T) {
	c := New(128, 2, rng.New(3))
	err := quick.Check(func(xRaw, yRaw uint32) bool {
		p := Point{float64(xRaw) / (1 << 33), float64(yRaw) / (1 << 33)}
		owner := c.OwnerOf(p)
		return owner != nil && owner.Zone().Contains(p)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteReachesOwner(t *testing.T) {
	c := New(256, 2, rng.New(4))
	src := rng.New(5)
	for i := 0; i < 200; i++ {
		p := c.randomPoint()
		from := src.Intn(256)
		if c.Node(from) == nil {
			continue
		}
		path, err := c.Route(from, p)
		if err != nil {
			t.Fatalf("route from %d to %v: %v", from, p, err)
		}
		owner := c.OwnerOf(p)
		if owner.ID() != from && (len(path) == 0 || path[len(path)-1] != owner.ID()) {
			t.Fatalf("route from %d ended at %v, owner %d", from, path, owner.ID())
		}
	}
}

func TestRouteLengthScalesLikeCAN(t *testing.T) {
	// CAN routes in O(d * n^(1/d)) hops; for n=256, d=2 that is ~2*16=32.
	c := New(256, 2, rng.New(6))
	src := rng.New(7)
	total, count := 0, 0
	for i := 0; i < 200; i++ {
		from := src.Intn(256)
		if c.Node(from) == nil {
			continue
		}
		path, err := c.Route(from, c.randomPoint())
		if err != nil {
			t.Fatal(err)
		}
		total += len(path)
		count++
	}
	mean := float64(total) / float64(count)
	if mean > 32 {
		t.Fatalf("mean CAN route length %.1f, want <= 32 for n=256 d=2", mean)
	}
	if mean < 1 {
		t.Fatalf("mean route length %.1f suspiciously small", mean)
	}
}

func TestHashKeyDeterministicAndInRange(t *testing.T) {
	c := New(4, 3, rng.New(8))
	p1 := c.HashKey("movie.avi")
	p2 := c.HashKey("movie.avi")
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("hash not deterministic")
		}
		if p1[i] < 0 || p1[i] >= 1 {
			t.Fatalf("coordinate %v out of [0,1)", p1[i])
		}
	}
	q := c.HashKey("other.key")
	same := true
	for i := range p1 {
		if p1[i] != q[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct keys hashed to the same point")
	}
}

func TestExtractTree(t *testing.T) {
	c := New(512, 2, rng.New(9))
	tree, canID, err := c.ExtractTree("the-index")
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 512 || len(canID) != 512 {
		t.Fatalf("tree %d nodes, map %d", tree.N(), len(canID))
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	owner := c.OwnerOf(c.HashKey("the-index"))
	if canID[0] != owner.ID() {
		t.Fatalf("tree root maps to %d, owner is %d", canID[0], owner.ID())
	}
	// CAN trees are deeper than Chord trees but still bounded by the
	// routing length bound.
	if tree.MaxDepth() > 3*2*23 { // 3 * d * n^(1/d), n=512 -> 22.6
		t.Fatalf("CAN tree depth %d implausible", tree.MaxDepth())
	}
}

func TestExtractTreeDeterministic(t *testing.T) {
	a := New(128, 2, rng.New(10))
	b := New(128, 2, rng.New(10))
	ta, ma, err := a.ExtractTree("k")
	if err != nil {
		t.Fatal(err)
	}
	tb, mb, err := b.ExtractTree("k")
	if err != nil {
		t.Fatal(err)
	}
	if ta.N() != tb.N() {
		t.Fatal("tree sizes differ")
	}
	for i := 0; i < ta.N(); i++ {
		if ta.Parent(i) != tb.Parent(i) || ma[i] != mb[i] {
			t.Fatalf("same-seed CAN trees differ at %d", i)
		}
	}
}

func TestLeaveMergesZones(t *testing.T) {
	c := New(64, 2, rng.New(11))
	// The most recently joined node always has a mergeable sibling unless
	// the sibling has since split; try candidates until one leaves.
	left := false
	for id := len(c.nodes) - 1; id > 0; id-- {
		if c.Node(id) == nil {
			continue
		}
		if err := c.Leave(id); err == nil {
			left = true
			break
		}
	}
	if !left {
		t.Fatal("no node could leave via merge")
	}
	if c.Len() != 63 {
		t.Fatalf("Len = %d after leave", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
	// Routing still works.
	if _, err := c.Route(0, c.randomPoint()); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveErrors(t *testing.T) {
	c := New(1, 2, rng.New(12))
	if err := c.Leave(0); err == nil {
		t.Fatal("last node allowed to leave")
	}
	if err := c.Leave(99); err == nil {
		t.Fatal("unknown node allowed to leave")
	}
}

func TestNeighborsSymmetricProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		c := New(src.IntRange(2, 64), src.IntRange(1, 3), src.Split())
		return c.Validate() == nil
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZoneHelpers(t *testing.T) {
	z := Zone{Lo: []float64{0, 0.5}, Hi: []float64{0.5, 1}}
	if z.Volume() != 0.25 {
		t.Fatalf("volume = %v", z.Volume())
	}
	ctr := z.Center()
	if ctr[0] != 0.25 || ctr[1] != 0.75 {
		t.Fatalf("center = %v", ctr)
	}
	if !z.Contains(Point{0.1, 0.6}) || z.Contains(Point{0.6, 0.6}) {
		t.Fatal("Contains wrong")
	}
}

func TestMergeZones(t *testing.T) {
	a := Zone{Lo: []float64{0, 0}, Hi: []float64{0.5, 1}}
	b := Zone{Lo: []float64{0.5, 0}, Hi: []float64{1, 1}}
	m, ok := mergeZones(a, b)
	if !ok || m.Lo[0] != 0 || m.Hi[0] != 1 {
		t.Fatalf("merge = %+v, %v", m, ok)
	}
	// Non-matching extents cannot merge.
	c := Zone{Lo: []float64{0.5, 0}, Hi: []float64{1, 0.5}}
	if _, ok := mergeZones(a, c); ok {
		t.Fatal("merged non-rectangular union")
	}
}

func BenchmarkCANRoute(b *testing.B) {
	c := New(1024, 2, rng.New(1))
	src := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := src.Intn(1024)
		if c.Node(from) == nil {
			continue
		}
		if _, err := c.Route(from, c.randomPoint()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCANExtractTree(b *testing.B) {
	c := New(1024, 2, rng.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.ExtractTree("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
