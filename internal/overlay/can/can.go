// Package can implements a Content-Addressable Network (Ratnasamy et al.,
// SIGCOMM 2001) — the other structured peer-to-peer substrate the paper
// builds on (its Section III-C defers the index search tree's maintenance
// operations to CAN's, reference [2]).
//
// The coordinate space is the d-dimensional unit torus. Every node owns a
// hyper-rectangular zone; keys hash to points and are owned by the zone
// containing them. Joining splits an existing zone in half along its
// longest dimension; a leaving node's zone is taken over by its smallest
// neighbour. Routing is greedy: each hop forwards to the neighbour whose
// zone centre is torus-closest to the target point.
//
// As with the Chord substrate, ExtractTree derives a key's index search
// tree from the routing state: each node's parent is its greedy next hop
// toward the key's point.
package can

import (
	"fmt"
	"math"
	"sort"

	"dup/internal/rng"
	"dup/internal/topology"
)

// Point is a location in the unit torus.
type Point []float64

// Zone is an axis-aligned box [Lo, Hi) per dimension.
type Zone struct {
	Lo, Hi []float64
}

// Contains reports whether p lies inside the zone.
func (z Zone) Contains(p Point) bool {
	for i := range z.Lo {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's volume.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= z.Hi[i] - z.Lo[i]
	}
	return v
}

// Center returns the zone's midpoint.
func (z Zone) Center() Point {
	c := make(Point, len(z.Lo))
	for i := range z.Lo {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// longestDim returns the index of the zone's longest side.
func (z Zone) longestDim() int {
	best, bestLen := 0, 0.0
	for i := range z.Lo {
		if l := z.Hi[i] - z.Lo[i]; l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// adjacent reports whether two zones share a (d-1)-dimensional face on the
// torus.
func adjacent(a, b Zone) bool {
	touching := -1
	for i := range a.Lo {
		overlapLo := math.Max(a.Lo[i], b.Lo[i])
		overlapHi := math.Min(a.Hi[i], b.Hi[i])
		switch {
		case overlapHi > overlapLo:
			// Proper overlap in this dimension: fine.
		case overlapHi == overlapLo || wrapTouch(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]):
			// Zones touch (possibly across the wrap) in this dimension.
			if touching != -1 {
				return false // touching in two dimensions = corner contact
			}
			touching = i
		default:
			return false
		}
	}
	return touching != -1
}

// wrapTouch reports whether [aLo,aHi) and [bLo,bHi) touch across the torus
// boundary in one dimension.
func wrapTouch(aLo, aHi, bLo, bHi float64) bool {
	return (aHi == 1 && bLo == 0) || (bHi == 1 && aLo == 0)
}

// torusDist returns squared torus distance between points.
func torusDist(a, b Point) float64 {
	sum := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > 0.5 {
			d = 1 - d
		}
		sum += d * d
	}
	return sum
}

// circDist returns the circular distance between two coordinates.
func circDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// zoneDistSq returns the squared torus distance from p to the zone (zero
// when p is inside). On a circle the closest point of an arc to an outside
// point is one of its endpoints.
func zoneDistSq(z Zone, p Point) float64 {
	sum := 0.0
	for i := range p {
		if p[i] >= z.Lo[i] && p[i] < z.Hi[i] {
			continue
		}
		d := math.Min(circDist(p[i], z.Lo[i]), circDist(p[i], z.Hi[i]))
		sum += d * d
	}
	return sum
}

// routeKey is the greedy routing metric: lexicographically ordered
// (distance to zone, distance to zone centre, id). Every hop strictly
// decreases the tuple, so routes — and the extracted search trees — are
// loop-free and deterministic regardless of neighbour iteration order.
type routeKey struct {
	zone, center float64
	id           int
}

func (c *Network) keyOf(n *Node, p Point) routeKey {
	return routeKey{zoneDistSq(n.zone, p), torusDist(n.zone.Center(), p), n.id}
}

func (k routeKey) less(o routeKey) bool {
	if k.zone != o.zone {
		return k.zone < o.zone
	}
	if k.center != o.center {
		return k.center < o.center
	}
	return k.id < o.id
}

// Node is one CAN participant.
type Node struct {
	id        int
	zone      Zone
	neighbors map[int]bool
	alive     bool
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Zone returns the node's current zone.
func (n *Node) Zone() Zone { return n.zone }

// Neighbors returns the ids of the node's neighbours in sorted order.
func (n *Node) Neighbors() []int {
	out := make([]int, 0, len(n.neighbors))
	for id := range n.neighbors {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Network is the CAN overlay.
type Network struct {
	dims  int
	nodes []*Node
	src   *rng.Source
}

// New builds a CAN with n nodes in dims dimensions by n-1 random joins
// into an initially whole torus. It panics unless n >= 1 and dims >= 1.
func New(n, dims int, src *rng.Source) *Network {
	if n < 1 || dims < 1 {
		panic(fmt.Sprintf("can: need n >= 1 and dims >= 1, got %d, %d", n, dims))
	}
	c := &Network{dims: dims, src: src}
	first := &Node{id: 0, zone: wholeTorus(dims), neighbors: map[int]bool{}, alive: true}
	c.nodes = append(c.nodes, first)
	for i := 1; i < n; i++ {
		c.join()
	}
	return c
}

func wholeTorus(dims int) Zone {
	z := Zone{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	return z
}

// Len returns the number of live nodes.
func (c *Network) Len() int {
	count := 0
	for _, n := range c.nodes {
		if n.alive {
			count++
		}
	}
	return count
}

// Dims returns the dimensionality.
func (c *Network) Dims() int { return c.dims }

// Node returns the live node with the given id, or nil.
func (c *Network) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) || !c.nodes[id].alive {
		return nil
	}
	return c.nodes[id]
}

// randomPoint draws a uniform point.
func (c *Network) randomPoint() Point {
	p := make(Point, c.dims)
	for i := range p {
		p[i] = c.src.Float64()
	}
	return p
}

// join adds one node: it picks a random point, finds the owner and splits
// that owner's zone in half along its longest dimension.
func (c *Network) join() {
	target := c.OwnerOf(c.randomPoint())
	newID := len(c.nodes)
	dim := target.zone.longestDim()
	mid := (target.zone.Lo[dim] + target.zone.Hi[dim]) / 2

	newZone := target.zone
	newZone.Lo = append([]float64(nil), target.zone.Lo...)
	newZone.Hi = append([]float64(nil), target.zone.Hi...)
	newZone.Lo[dim] = mid
	target.zone.Hi = append([]float64(nil), target.zone.Hi...)
	target.zone.Hi[dim] = mid

	nn := &Node{id: newID, zone: newZone, neighbors: map[int]bool{}, alive: true}
	c.nodes = append(c.nodes, nn)
	c.refreshNeighbors(target)
	c.refreshNeighbors(nn)
}

// refreshNeighbors recomputes n's neighbour set (and reciprocal links) by
// adjacency scan. O(n) per call — CAN implementations track this
// incrementally; the scan keeps this reference implementation simple and
// obviously correct.
func (c *Network) refreshNeighbors(n *Node) {
	for old := range n.neighbors {
		delete(c.nodes[old].neighbors, n.id)
	}
	n.neighbors = map[int]bool{}
	for _, other := range c.nodes {
		if other.id == n.id || !other.alive {
			continue
		}
		if adjacent(n.zone, other.zone) {
			n.neighbors[other.id] = true
			other.neighbors[n.id] = true
		}
	}
}

// OwnerOf returns the live node whose zone contains p.
func (c *Network) OwnerOf(p Point) *Node {
	for _, n := range c.nodes {
		if n.alive && n.zone.Contains(p) {
			return n
		}
	}
	// Zones partition the torus; reaching here means an invariant broke.
	panic(fmt.Sprintf("can: no zone contains %v", p))
}

// HashKey maps a key to a point, one coordinate per dimension, using
// independent FNV-1a streams.
func (c *Network) HashKey(key string) Point {
	p := make(Point, c.dims)
	for i := range p {
		h := uint64(14695981039346656037)
		h ^= uint64(i) + 0x9e37
		h *= 1099511628211
		for j := 0; j < len(key); j++ {
			h ^= uint64(key[j])
			h *= 1099511628211
		}
		p[i] = float64(h>>11) / float64(1<<53)
	}
	return p
}

// NextHop returns the neighbour of `from` that is greedily closest to p
// under the strictly decreasing routing metric, or from itself when it
// owns p or no neighbour improves on it (a greedy dead end).
func (c *Network) NextHop(from int, p Point) int {
	n := c.Node(from)
	if n == nil {
		return -1
	}
	if n.zone.Contains(p) {
		return from
	}
	best, bestKey := from, c.keyOf(n, p)
	for id := range n.neighbors {
		nb := c.nodes[id]
		if !nb.alive {
			continue
		}
		if nb.zone.Contains(p) {
			return id
		}
		if k := c.keyOf(nb, p); k.less(bestKey) {
			best, bestKey = id, k
		}
	}
	return best
}

// Route returns the greedy path from node `from` to the owner of p
// (excluding from, including the owner). It fails if routing stalls.
func (c *Network) Route(from int, p Point) ([]int, error) {
	var path []int
	cur := from
	for steps := 0; steps <= len(c.nodes); steps++ {
		if n := c.Node(cur); n != nil && n.zone.Contains(p) {
			return path, nil
		}
		next := c.NextHop(cur, p)
		if next == cur || next == -1 {
			return path, fmt.Errorf("can: greedy routing stalled at node %d", cur)
		}
		path = append(path, next)
		cur = next
	}
	return path, fmt.Errorf("can: routing loop toward %v", p)
}

// ExtractTree derives the index search tree for a key: each live node's
// parent is its greedy next hop toward the key's point; the owner is the
// root. Tree ids are dense, with the owner as 0; the mapping back to CAN
// node ids is returned alongside.
func (c *Network) ExtractTree(key string) (*topology.Tree, []int, error) {
	p := c.HashKey(key)
	owner := c.OwnerOf(p)
	var live []int
	for _, n := range c.nodes {
		if n.alive {
			live = append(live, n.id)
		}
	}
	treeID := make(map[int]int, len(live))
	canID := make([]int, 0, len(live))
	treeID[owner.id] = 0
	canID = append(canID, owner.id)
	for _, id := range live {
		if id == owner.id {
			continue
		}
		treeID[id] = len(canID)
		canID = append(canID, id)
	}
	parents := make([]int, len(canID))
	parents[0] = -1
	for i := 1; i < len(canID); i++ {
		next := c.NextHop(canID[i], p)
		if next == canID[i] || next == -1 {
			return nil, nil, fmt.Errorf("can: node %d stalls toward key %q", canID[i], key)
		}
		parents[i] = treeID[next]
	}
	tree, err := buildTree(parents)
	if err != nil {
		return nil, nil, err
	}
	return tree, canID, nil
}

// buildTree converts FromParents panics (routing loops) into errors.
func buildTree(parents []int) (tree *topology.Tree, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("can: routing does not form a tree: %v", rec)
		}
	}()
	return topology.FromParents(parents), nil
}

// Leave removes node id, handing its zone to a neighbour whose zone
// combines with it into a rectangle (the "merge with sibling" case of
// CAN's takeover procedure). When no such neighbour exists it returns an
// error — full CAN implements multi-zone stewardship and background zone
// reassignment for that case, which this reference implementation omits
// (the simplification is documented in DESIGN.md).
func (c *Network) Leave(id int) error {
	n := c.Node(id)
	if n == nil {
		return fmt.Errorf("can: node %d unknown or dead", id)
	}
	if c.Len() == 1 {
		return fmt.Errorf("can: last node cannot leave")
	}
	for nbID := range n.neighbors {
		nb := c.nodes[nbID]
		if merged, ok := mergeZones(n.zone, nb.zone); ok {
			n.alive = false
			for other := range n.neighbors {
				delete(c.nodes[other].neighbors, id)
			}
			nb.zone = merged
			c.refreshNeighbors(nb)
			return nil
		}
	}
	return fmt.Errorf("can: node %d has no mergeable neighbour", id)
}

// mergeZones returns the union of two zones when it forms a rectangle:
// identical extents in all dimensions but one, where they abut.
func mergeZones(a, b Zone) (Zone, bool) {
	joinDim := -1
	for i := range a.Lo {
		if a.Lo[i] == b.Lo[i] && a.Hi[i] == b.Hi[i] {
			continue
		}
		if joinDim != -1 {
			return Zone{}, false
		}
		if a.Hi[i] != b.Lo[i] && b.Hi[i] != a.Lo[i] {
			return Zone{}, false
		}
		joinDim = i
	}
	if joinDim == -1 {
		return Zone{}, false
	}
	m := Zone{Lo: append([]float64(nil), a.Lo...), Hi: append([]float64(nil), a.Hi...)}
	m.Lo[joinDim] = math.Min(a.Lo[joinDim], b.Lo[joinDim])
	m.Hi[joinDim] = math.Max(a.Hi[joinDim], b.Hi[joinDim])
	return m, true
}

// Validate checks the space-partitioning invariants: every zone has
// positive volume, volumes sum to 1, random probe points have exactly one
// owner, and neighbour links are symmetric. It returns the first
// violation, or nil.
func (c *Network) Validate() error {
	total := 0.0
	for _, n := range c.nodes {
		if !n.alive {
			continue
		}
		v := n.zone.Volume()
		if v <= 0 {
			return fmt.Errorf("node %d has non-positive volume %v", n.id, v)
		}
		total += v
		for id := range n.neighbors {
			nb := c.nodes[id]
			if !nb.alive {
				return fmt.Errorf("node %d lists dead neighbour %d", n.id, id)
			}
			if !nb.neighbors[n.id] {
				return fmt.Errorf("neighbour link %d->%d not reciprocal", n.id, id)
			}
			if !adjacent(n.zone, nb.zone) {
				return fmt.Errorf("nodes %d and %d linked but not adjacent", n.id, id)
			}
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("zone volumes sum to %v, want 1", total)
	}
	for i := 0; i < 64; i++ {
		p := c.randomPoint()
		owners := 0
		for _, n := range c.nodes {
			if n.alive && n.zone.Contains(p) {
				owners++
			}
		}
		if owners != 1 {
			return fmt.Errorf("point %v has %d owners", p, owners)
		}
	}
	return nil
}
