package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func equalState(a, b NodeState) bool {
	if a.ID != b.ID || a.Parent != b.Parent || a.IsRoot != b.IsRoot ||
		a.Version != b.Version || a.Expiry != b.Expiry || len(a.Subscribers) != len(b.Subscribers) {
		return false
	}
	for i := range a.Subscribers {
		if a.Subscribers[i] != b.Subscribers[i] {
			return false
		}
	}
	return true
}

func TestRecordAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	root := NodeState{ID: 0, Parent: -1, IsRoot: true, Version: 7, Expiry: 1234.5, Subscribers: []int{3, 5}}
	leaf := NodeState{ID: 5, Parent: 2, Version: 7, Expiry: 1234.5, Subscribers: []int{5}}
	s.Record(root)
	s.Record(leaf)
	// Later records supersede earlier ones for the same node.
	root.Version = 9
	root.Subscribers = []int{3, 5, 8}
	s.Record(root)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	got, ok := r.Node(0)
	if !ok || !equalState(got, root) {
		t.Fatalf("recovered root = %+v (ok=%v), want %+v", got, ok, root)
	}
	got, ok = r.Node(5)
	if !ok || !equalState(got, leaf) {
		t.Fatalf("recovered leaf = %+v (ok=%v), want %+v", got, ok, leaf)
	}
	if _, ok := r.Node(99); ok {
		t.Fatal("recovered state for a node never recorded")
	}
	if len(r.Nodes()) != 2 {
		t.Fatalf("Nodes() has %d entries, want 2", len(r.Nodes()))
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.Record(NodeState{ID: 0, IsRoot: true, Parent: -1, Version: 3})
	s.Record(NodeState{ID: 1, Parent: 0, Version: 3, Subscribers: []int{1}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the log tail, simulating a crash mid-append.
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	if got, ok := r.Node(0); !ok || got.Version != 3 {
		t.Fatalf("intact first record lost: %+v ok=%v", got, ok)
	}
	if _, ok := r.Node(1); ok {
		t.Fatal("torn record surfaced as state")
	}
	// The store must remain appendable after repair: new records land
	// cleanly where the torn bytes were cut.
	r.Record(NodeState{ID: 1, Parent: 0, Version: 4})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, dir)
	if got, ok := r2.Node(1); !ok || got.Version != 4 {
		t.Fatalf("post-repair record lost: %+v ok=%v", got, ok)
	}
}

func TestCorruptRecordInMiddleTruncatesRest(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.Record(NodeState{ID: 0, IsRoot: true, Parent: -1, Version: 1})
	s.Record(NodeState{ID: 1, Parent: 0, Version: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload: CRC catches it and
	// the replay keeps only the prefix before it.
	path := filepath.Join(dir, "wal.log")
	p, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p[len(p)-1] ^= 0xff
	if err := os.WriteFile(path, p, 0o644); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, dir)
	if _, ok := r.Node(0); !ok {
		t.Fatal("record before corruption lost")
	}
	if _, ok := r.Node(1); ok {
		t.Fatal("corrupt record surfaced as state")
	}
}

func TestCompactionKeepsStateAndShrinksLog(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.SetCompactAt(256)
	for v := int64(1); v <= 64; v++ {
		s.Record(NodeState{ID: 0, IsRoot: true, Parent: -1, Version: v, Subscribers: []int{1, 2, 3}})
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= 64*20 {
		t.Fatalf("log never compacted: %d bytes", fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.dat")); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, dir)
	if got, ok := r.Node(0); !ok || got.Version != 64 {
		t.Fatalf("post-compaction recovery = %+v ok=%v, want version 64", got, ok)
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.SetCompactAt(1) // compact on first record
	s.Record(NodeState{ID: 0, IsRoot: true, Parent: -1, Version: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot.dat")
	p, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p[len(p)-1] ^= 0xff
	if err := os.WriteFile(path, p, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt snapshot: %v, want %v", err, ErrCorrupt)
	}
}

func TestMemJournal(t *testing.T) {
	m := NewMem()
	if _, ok := m.Node(3); ok {
		t.Fatal("empty journal has state")
	}
	m.Record(NodeState{ID: 3, Parent: 1, Version: 2, Subscribers: []int{4}})
	m.Record(NodeState{ID: 3, Parent: 1, Version: 5, Subscribers: []int{4, 6}})
	got, ok := m.Node(3)
	if !ok || got.Version != 5 || len(got.Subscribers) != 2 {
		t.Fatalf("mem journal state = %+v ok=%v", got, ok)
	}
	// Mutating the returned copy must not touch the journal.
	got.Subscribers[0] = 99
	again, _ := m.Node(3)
	if again.Subscribers[0] != 4 {
		t.Fatal("Node returned aliased subscriber slice")
	}
}

func TestReplicaRecordAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.RecordReplica(ReplicaState{ID: 1, Key: 0, Term: 2, Version: 7, Expiry: 1234.5})
	s.RecordReplica(ReplicaState{ID: 1, Key: 3, Term: 2, Version: 9, Expiry: 1235.5})
	// Later entries supersede earlier ones for the same (node, key).
	s.RecordReplica(ReplicaState{ID: 1, Key: 0, Term: 3, Version: 11, Expiry: 1236.5})
	// Replica and node records share one log without clobbering each other.
	s.Record(NodeState{ID: 1, Parent: 0, Version: 4, Subscribers: []int{2}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	got := r.ReplicaStates(1)
	if len(got) != 2 {
		t.Fatalf("recovered %d replica entries, want 2: %+v", len(got), got)
	}
	if got[0] != (ReplicaState{ID: 1, Key: 0, Term: 3, Version: 11, Expiry: 1236.5}) {
		t.Fatalf("key-0 entry = %+v", got[0])
	}
	if got[1] != (ReplicaState{ID: 1, Key: 3, Term: 2, Version: 9, Expiry: 1235.5}) {
		t.Fatalf("key-3 entry = %+v", got[1])
	}
	if r.ReplicaStates(99) != nil {
		t.Fatal("recovered replica entries for a node never recorded")
	}
	if ns, ok := r.Node(1); !ok || ns.Version != 4 {
		t.Fatalf("node record lost next to replica records: %+v ok=%v", ns, ok)
	}
}

func TestReplicaTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.RecordReplica(ReplicaState{ID: 0, Key: 0, Term: 1, Version: 5})
	s.RecordReplica(ReplicaState{ID: 0, Key: 1, Term: 1, Version: 6})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the log tail, simulating a crash mid-append of a
	// replica record: the intact prefix must survive, the torn entry must
	// vanish rather than decode as garbage.
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	got := r.ReplicaStates(0)
	if len(got) != 1 || got[0].Key != 0 || got[0].Version != 5 {
		t.Fatalf("after torn tail: %+v, want only the key-0 entry at version 5", got)
	}
	// The store must remain appendable after repair.
	r.RecordReplica(ReplicaState{ID: 0, Key: 1, Term: 2, Version: 8})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, dir)
	got = r2.ReplicaStates(0)
	if len(got) != 2 || got[1] != (ReplicaState{ID: 0, Key: 1, Term: 2, Version: 8}) {
		t.Fatalf("post-repair replica entries = %+v", got)
	}
}

func TestReplicaRecordsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.SetCompactAt(256)
	for v := int64(1); v <= 64; v++ {
		s.RecordReplica(ReplicaState{ID: 2, Key: 0, Term: 1, Version: v})
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, dir)
	got := r.ReplicaStates(2)
	if len(got) != 1 || got[0].Version != 64 {
		t.Fatalf("post-compaction replica entries = %+v, want version 64", got)
	}
}

func TestMemReplicaJournal(t *testing.T) {
	m := NewMem()
	if m.ReplicaStates(1) != nil {
		t.Fatal("empty journal has replica entries")
	}
	m.RecordReplica(ReplicaState{ID: 1, Key: 2, Term: 1, Version: 3})
	m.RecordReplica(ReplicaState{ID: 1, Key: 2, Term: 1, Version: 4})
	got := m.ReplicaStates(1)
	if len(got) != 1 || got[0].Version != 4 {
		t.Fatalf("mem replica entries = %+v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReplicaConfigRecordAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 1, Term: 3, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 3}})
	// A later epoch supersedes; per-id entries stay independent.
	s.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 2, Term: 3, New: []int{0, 1, 3}})
	s.RecordReplicaConfig(ReplicaConfig{ID: 1, Epoch: 1, Term: 3, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 3}})
	// A same-epoch record from a higher adoption term supersedes (a new
	// leader re-drove a contested change); a lower term cannot.
	s.RecordReplicaConfig(ReplicaConfig{ID: 1, Epoch: 1, Term: 5, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 4}})
	// Config records share the log with node and replica records.
	s.Record(NodeState{ID: 0, Parent: -1, IsRoot: true, Version: 4})
	s.RecordReplica(ReplicaState{ID: 0, Key: 0, Term: 1, Version: 4})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	rc, ok := r.ReplicaConfig(0)
	if !ok || rc.Epoch != 2 || rc.Term != 3 || rc.Joint || len(rc.Old) != 0 || !equalInts(rc.New, []int{0, 1, 3}) {
		t.Fatalf("recovered config for 0 = (%+v, %v), want stable epoch 2 term 3 over [0 1 3]", rc, ok)
	}
	rc, ok = r.ReplicaConfig(1)
	if !ok || rc.Epoch != 1 || rc.Term != 5 || !rc.Joint || !equalInts(rc.Old, []int{0, 1, 2}) || !equalInts(rc.New, []int{0, 1, 4}) {
		t.Fatalf("recovered config for 1 = (%+v, %v), want the term-5 joint epoch-1 pair", rc, ok)
	}
	if _, ok := r.ReplicaConfig(9); ok {
		t.Fatal("recovered a config for a node never recorded")
	}
	if ns, found := r.Node(0); !found || ns.Version != 4 {
		t.Fatalf("node record lost next to config records: %+v found=%v", ns, found)
	}
	if rs := r.ReplicaStates(0); len(rs) != 1 || rs[0].Version != 4 {
		t.Fatalf("replica record lost next to config records: %+v", rs)
	}
}

func TestReplicaConfigTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 1, New: []int{0, 1, 2}})
	s.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 2, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 3}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the log tail, simulating a crash mid-append of the
	// newest config record: the member must recover into the last intact
	// epoch, never into half a membership change.
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	rc, ok := r.ReplicaConfig(0)
	if !ok || rc.Epoch != 1 || rc.Joint || !equalInts(rc.New, []int{0, 1, 2}) {
		t.Fatalf("after torn tail: (%+v, %v), want the intact epoch-1 config", rc, ok)
	}
	// The store must remain appendable after repair.
	r.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 3, New: []int{0, 1, 3}})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, dir)
	rc, ok = r2.ReplicaConfig(0)
	if !ok || rc.Epoch != 3 || !equalInts(rc.New, []int{0, 1, 3}) {
		t.Fatalf("post-repair config = (%+v, %v), want epoch 3", rc, ok)
	}
}

func TestReplicaConfigSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	s.SetCompactAt(256)
	s.RecordReplicaConfig(ReplicaConfig{ID: 2, Epoch: 1, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 3}})
	for v := int64(1); v <= 64; v++ {
		s.RecordReplica(ReplicaState{ID: 2, Key: 0, Term: 1, Version: v})
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, dir)
	rc, ok := r.ReplicaConfig(2)
	if !ok || rc.Epoch != 1 || !rc.Joint || !equalInts(rc.Old, []int{0, 1, 2}) || !equalInts(rc.New, []int{0, 1, 3}) {
		t.Fatalf("post-compaction config = (%+v, %v), want the joint epoch-1 pair", rc, ok)
	}
}

func TestMemReplicaConfigJournal(t *testing.T) {
	m := NewMem()
	if _, ok := m.ReplicaConfig(0); ok {
		t.Fatal("empty journal has a config")
	}
	m.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 2, Term: 4, New: []int{0, 1, 3}})
	// An older epoch never overwrites a newer one.
	m.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 1, Joint: true, Old: []int{0, 1, 2}, New: []int{0, 1, 3}})
	// Nor does a same-epoch record from a lower adoption term.
	m.RecordReplicaConfig(ReplicaConfig{ID: 0, Epoch: 2, Term: 2, New: []int{0, 1, 9}})
	rc, ok := m.ReplicaConfig(0)
	if !ok || rc.Epoch != 2 || rc.Term != 4 || rc.Joint || !equalInts(rc.New, []int{0, 1, 3}) {
		t.Fatalf("mem config = (%+v, %v), want the term-4 stable epoch-2 set", rc, ok)
	}
}
