package store

import "sync"

// Mem is an in-memory Journal: the chaos harness uses one per simulated
// process so a restart-with-recovery event can reload the state a real
// deployment would have read from disk, without touching the filesystem.
type Mem struct {
	mu    sync.Mutex
	nodes map[int]NodeState
}

// NewMem returns an empty in-memory journal.
func NewMem() *Mem {
	return &Mem{nodes: make(map[int]NodeState)}
}

// Record keeps the latest state per node.
func (m *Mem) Record(ns NodeState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns.Subscribers = append([]int(nil), ns.Subscribers...)
	m.nodes[ns.ID] = ns
}

// Node returns the recorded state for id, if any.
func (m *Mem) Node(id int) (NodeState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[id]
	if ok {
		ns.Subscribers = append([]int(nil), ns.Subscribers...)
	}
	return ns, ok
}
