package store

import "sync"

// Mem is an in-memory Journal: the chaos harness uses one per simulated
// process so a restart-with-recovery event can reload the state a real
// deployment would have read from disk, without touching the filesystem.
type Mem struct {
	mu    sync.Mutex
	nodes map[nodeKey]NodeState
	reps  map[nodeKey]ReplicaState
	confs map[int]ReplicaConfig
}

// NewMem returns an empty in-memory journal.
func NewMem() *Mem {
	return &Mem{
		nodes: make(map[nodeKey]NodeState),
		reps:  make(map[nodeKey]ReplicaState),
		confs: make(map[int]ReplicaConfig),
	}
}

// Record keeps the latest state per (node, key).
func (m *Mem) Record(ns NodeState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns.Subscribers = append([]int(nil), ns.Subscribers...)
	m.nodes[nodeKey{ns.ID, ns.Key}] = ns
}

// Node returns the recorded key-0 state for id, if any.
func (m *Mem) Node(id int) (NodeState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[nodeKey{id, 0}]
	if ok {
		ns.Subscribers = append([]int(nil), ns.Subscribers...)
	}
	return ns, ok
}

// States returns every recorded record for id, one per keyed index tree,
// sorted by key (nil when there are none).
func (m *Mem) States(id int) []NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return statesOf(m.nodes, id)
}

// RecordReplica keeps the latest replica log entry per (node, key).
func (m *Mem) RecordReplica(rs ReplicaState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reps[nodeKey{rs.ID, rs.Key}] = rs
}

// ReplicaStates returns every recorded replica log entry for id, one per
// keyed index tree, sorted by key (nil when there are none).
func (m *Mem) ReplicaStates(id int) []ReplicaState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return replicaStatesOf(m.reps, id)
}

// RecordReplicaConfig keeps the highest-(epoch, term) membership record
// per node.
func (m *Mem) RecordReplicaConfig(rc ReplicaConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rc.Old = append([]int(nil), rc.Old...)
	rc.New = append([]int(nil), rc.New...)
	if old, ok := m.confs[rc.ID]; !ok || rc.Epoch > old.Epoch ||
		(rc.Epoch == old.Epoch && rc.Term >= old.Term) {
		m.confs[rc.ID] = rc
	}
}

// ReplicaConfig returns the recorded membership record for id, if any.
func (m *Mem) ReplicaConfig(id int) (ReplicaConfig, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rc, ok := m.confs[id]
	if ok {
		rc.Old = append([]int(nil), rc.Old...)
		rc.New = append([]int(nil), rc.New...)
	}
	return rc, ok
}
