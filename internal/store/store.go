// Package store persists per-node protocol state — the authority's
// (version, subscriber list) and every node's subscription set — so a
// killed process can resume where it crashed instead of losing its index
// to the mid-fail-over vacuum.
//
// The layout is a classic append-only log plus snapshot. Every state
// change appends one CRC-framed record to wal.log:
//
//	| u32 payload length (big endian) | u32 CRC-32 (IEEE) of payload | payload |
//
// where the payload reuses the wire codec: a KindState message carrying
// the node id (Origin), parent (Subject), root flag (Old), version and
// expiry, with the subscriber list in Path — or, for replica log entries
// (dup/internal/replica), a KindAccept message carrying the accepted
// (term, version, expiry) per keyed tree. Recovery replays the snapshot
// and then the log, keeping the last record per node (per record type); a
// torn tail (a record cut short by the crash) is truncated, never
// propagated. When the
// log outgrows CompactAt the store writes a fresh snapshot (tmp + fsync +
// rename, so a crash mid-compaction leaves the old one intact) and resets
// the log. Root version bumps fsync before Record returns — the authority
// never acknowledges a version it could forget.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dup/internal/proto"
	"dup/internal/wire"
)

const (
	walName  = "wal.log"
	snapName = "snapshot.dat"

	// recHeader is the byte length of the per-record length + CRC prefix.
	recHeader = 8

	// DefaultCompactAt is the log size that triggers a snapshot + log
	// reset. State records are tens of bytes, so this keeps recovery
	// replay bounded at a few thousand records.
	DefaultCompactAt = 1 << 18
)

// ErrCorrupt marks a snapshot that fails its CRC or decode. Snapshots are
// written atomically, so unlike a torn log tail this indicates real
// damage and is surfaced rather than repaired silently.
var ErrCorrupt = errors.New("store: corrupt snapshot")

// NodeState is the durable protocol state of one node for one keyed
// index tree: everything needed to resume its role after a crash. A node
// participating in several keys records one NodeState per key; Key 0 is
// the base index (its records encode byte-identically to the
// pre-multi-key format). Expiry is the wire representation (absolute unix
// seconds as float64); the live layer converts.
type NodeState struct {
	ID          int
	Key         int
	Parent      int
	IsRoot      bool
	Version     int64
	Expiry      float64
	Subscribers []int
}

// nodeKey identifies one (node, keyed tree) record.
type nodeKey struct{ id, key int }

// ReplicaState is one durable entry of a node's replica log
// (dup/internal/replica): the highest (term, version) the node has
// accepted for one keyed index tree. The quorum protocol's safety rests on
// these surviving a crash — a replica that forgot an accepted version
// could promise a stale log during failover — so RecordReplica fsyncs on
// every version advance.
type ReplicaState struct {
	ID      int
	Key     int
	Term    int64
	Version int64
	Expiry  float64
}

// Journal receives state records as a node's durable state changes. The
// file-backed Store and the in-memory Mem both implement it; the live
// layer records through this interface so tests and the chaos harness can
// capture state without touching disk.
type Journal interface {
	Record(ns NodeState)
}

// ReplicaJournal receives replica log records. Store and Mem both
// implement it; the replica layer type-asserts its journal to this
// interface, so any plain Journal still works for non-replicated clusters.
type ReplicaJournal interface {
	RecordReplica(rs ReplicaState)
}

// ReplicaConfig is one durable membership record of the replica group:
// the config epoch a member adopted and the sets it names. Term is the
// proposer term the config was adopted under — with the epoch it names
// the exact proposal, so a recovered member keeps refusing same-epoch
// rivals from no newer a term. During the joint phase of an online
// reconfiguration both sets are recorded (Joint true, Old the outgoing
// set); a stable config records only New. Only the highest epoch per
// node survives recovery (ties go to the later record, which carries
// the higher adoption term) — configs are totally ordered by (epoch,
// term) and adoption is irrevocable below that order.
type ReplicaConfig struct {
	ID    int
	Epoch int64
	Term  int64
	Joint bool
	Old   []int
	New   []int
}

// ReplicaConfigJournal receives replica membership records. Store and
// Mem both implement it; the replica layer type-asserts its journal, so
// plain journals keep working for fixed-membership clusters.
type ReplicaConfigJournal interface {
	RecordReplicaConfig(rc ReplicaConfig)
}

// Store is a file-backed Journal rooted at one directory. It is safe for
// concurrent use by multiple node goroutines.
type Store struct {
	mu        sync.Mutex
	dir       string
	wal       *os.File
	walBytes  int64
	compactAt int64
	nodes     map[nodeKey]NodeState
	reps      map[nodeKey]ReplicaState
	confs     map[int]ReplicaConfig
	lastRoot  map[nodeKey]int64 // last fsynced root version per (node, key)
	lastRep   map[nodeKey]int64 // last fsynced replica-log version per (node, key)
	buf       []byte
	err       error // first write error; surfaced by Err/Close
}

// Open opens (or creates) the store in dir, replaying any snapshot and
// log found there. A torn record at the log tail — the normal signature
// of a crash mid-append — is truncated away; corruption anywhere else is
// an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		compactAt: DefaultCompactAt,
		nodes:     make(map[nodeKey]NodeState),
		reps:      make(map[nodeKey]ReplicaState),
		confs:     make(map[int]ReplicaConfig),
		lastRoot:  make(map[nodeKey]int64),
		lastRep:   make(map[nodeKey]int64),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	if fi, err := wal.Stat(); err == nil {
		s.walBytes = fi.Size()
	}
	for nk, ns := range s.nodes {
		if ns.IsRoot {
			s.lastRoot[nk] = ns.Version
		}
	}
	for nk, rs := range s.reps {
		s.lastRep[nk] = rs.Version
	}
	return s, nil
}

// SetCompactAt overrides the log size that triggers compaction (tests use
// tiny values to force the path).
func (s *Store) SetCompactAt(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.compactAt = n
	}
}

// Node returns the recovered key-0 state for id, if any.
func (s *Store) Node(id int) (NodeState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.nodes[nodeKey{id, 0}]
	if ok {
		ns.Subscribers = append([]int(nil), ns.Subscribers...)
	}
	return ns, ok
}

// States returns every recovered record for id, one per keyed index
// tree, sorted by key (nil when the store has none).
func (s *Store) States(id int) []NodeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return statesOf(s.nodes, id)
}

// ReplicaStates returns every recovered replica log entry for id, one per
// keyed index tree, sorted by key (nil when the store has none).
func (s *Store) ReplicaStates(id int) []ReplicaState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return replicaStatesOf(s.reps, id)
}

// ReplicaConfig returns the recovered membership record for id, if any.
func (s *Store) ReplicaConfig(id int) (ReplicaConfig, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc, ok := s.confs[id]
	if ok {
		rc.Old = append([]int(nil), rc.Old...)
		rc.New = append([]int(nil), rc.New...)
	}
	return rc, ok
}

// replicaStatesOf collects and sorts id's replica entries out of a
// (node, key) map.
func replicaStatesOf(reps map[nodeKey]ReplicaState, id int) []ReplicaState {
	var out []ReplicaState
	for nk, rs := range reps {
		if nk.id != id {
			continue
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Nodes returns a copy of every recovered key-0 node state, keyed by id.
func (s *Store) Nodes() map[int]NodeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]NodeState, len(s.nodes))
	for nk, ns := range s.nodes {
		if nk.key != 0 {
			continue
		}
		ns.Subscribers = append([]int(nil), ns.Subscribers...)
		out[nk.id] = ns
	}
	return out
}

// statesOf collects and sorts id's records out of a (node, key) map.
func statesOf(nodes map[nodeKey]NodeState, id int) []NodeState {
	var out []NodeState
	for nk, ns := range nodes {
		if nk.id != id {
			continue
		}
		ns.Subscribers = append([]int(nil), ns.Subscribers...)
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Record appends one state record to the log. A root version bump fsyncs
// before returning; everything else rides on the OS page cache (a crash
// loses at most the most recent subscription flux, which the protocol
// rebuilds anyway). Write errors are sticky and surfaced by Err/Close —
// Record itself stays fire-and-forget so node goroutines never block on
// error handling.
func (s *Store) Record(ns NodeState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.wal == nil {
		return
	}
	s.buf = appendRecord(s.buf[:0], &ns)
	if _, err := s.wal.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.walBytes += int64(len(s.buf))
	ns.Subscribers = append([]int(nil), ns.Subscribers...)
	nk := nodeKey{ns.ID, ns.Key}
	s.nodes[nk] = ns
	if ns.IsRoot && ns.Version != s.lastRoot[nk] {
		if err := s.wal.Sync(); err != nil {
			s.err = err
			return
		}
		s.lastRoot[nk] = ns.Version
	}
	if s.walBytes >= s.compactAt {
		s.compactLocked()
	}
}

// RecordReplica appends one replica log record. Every version advance
// fsyncs before returning: an accepted version the disk could forget
// would let a crashed replica promise a stale log during failover, which
// is exactly the regression the quorum exists to rule out.
func (s *Store) RecordReplica(rs ReplicaState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.wal == nil {
		return
	}
	s.buf = appendReplicaRecord(s.buf[:0], &rs)
	if _, err := s.wal.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.walBytes += int64(len(s.buf))
	nk := nodeKey{rs.ID, rs.Key}
	s.reps[nk] = rs
	if rs.Version != s.lastRep[nk] {
		if err := s.wal.Sync(); err != nil {
			s.err = err
			return
		}
		s.lastRep[nk] = rs.Version
	}
	if s.walBytes >= s.compactAt {
		s.compactLocked()
	}
}

// RecordReplicaConfig appends one replica membership record. Every
// config record fsyncs before returning: a member that voted under an
// epoch its disk could forget might recover into an older set and form
// a quorum the new config no longer intersects.
func (s *Store) RecordReplicaConfig(rc ReplicaConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.wal == nil {
		return
	}
	s.buf = appendReplicaConfigRecord(s.buf[:0], &rc)
	if _, err := s.wal.Write(s.buf); err != nil {
		s.err = err
		return
	}
	s.walBytes += int64(len(s.buf))
	rc.Old = append([]int(nil), rc.Old...)
	rc.New = append([]int(nil), rc.New...)
	if old, ok := s.confs[rc.ID]; !ok || rc.Epoch >= old.Epoch {
		s.confs[rc.ID] = rc
	}
	if err := s.wal.Sync(); err != nil {
		s.err = err
		return
	}
	if s.walBytes >= s.compactAt {
		s.compactLocked()
	}
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Err returns the first write error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close syncs and closes the log, returning the first error seen.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return s.err
	}
	if err := s.wal.Sync(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.wal.Close(); err != nil && s.err == nil {
		s.err = err
	}
	s.wal = nil
	return s.err
}

// compactLocked writes every node's latest state into a fresh snapshot
// (atomically, via tmp + fsync + rename) and resets the log.
func (s *Store) compactLocked() {
	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		s.err = err
		return
	}
	s.buf = s.buf[:0]
	for _, ns := range s.nodes {
		s.buf = appendRecord(s.buf, &ns)
	}
	for _, rs := range s.reps {
		s.buf = appendReplicaRecord(s.buf, &rs)
	}
	for _, rc := range s.confs {
		s.buf = appendReplicaConfigRecord(s.buf, &rc)
	}
	if _, err := f.Write(s.buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(s.dir, snapName))
	}
	if err == nil {
		err = syncDir(s.dir)
	}
	if err == nil {
		err = s.wal.Truncate(0)
	}
	if err == nil {
		_, err = s.wal.Seek(0, io.SeekStart)
	}
	if err == nil {
		err = s.wal.Sync()
	}
	if err != nil {
		s.err = err
		return
	}
	s.walBytes = 0
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Not every platform supports it; failure to open is ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	err = d.Sync()
	d.Close()
	return err
}

func (s *Store) loadSnapshot() error {
	p, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	_, err = replay(p, s.nodes, s.reps, s.confs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

func (s *Store) loadWAL() error {
	path := filepath.Join(s.dir, walName)
	p, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	good, err := replay(p, s.nodes, s.reps, s.confs)
	if err != nil {
		// Torn tail from a crash mid-append: keep the good prefix.
		if terr := os.Truncate(path, int64(good)); terr != nil {
			return terr
		}
	}
	return nil
}

// replay applies every complete record in p to nodes (KindState
// records), reps (KindAccept replica log records) or confs (KindReconfig
// membership records), returning the byte offset of the last
// fully-applied record and the error that stopped it.
func replay(p []byte, nodes map[nodeKey]NodeState, reps map[nodeKey]ReplicaState, confs map[int]ReplicaConfig) (int, error) {
	off := 0
	for off < len(p) {
		if len(p)-off < recHeader {
			return off, fmt.Errorf("torn record header at %d", off)
		}
		n := int(binary.BigEndian.Uint32(p[off:]))
		sum := binary.BigEndian.Uint32(p[off+4:])
		if n <= 0 || n > wire.MaxFrame || len(p)-off-recHeader < n {
			return off, fmt.Errorf("torn record body at %d", off)
		}
		payload := p[off+recHeader : off+recHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, fmt.Errorf("crc mismatch at %d", off)
		}
		if err := applyRecord(payload, nodes, reps, confs); err != nil {
			return off, err
		}
		off += recHeader + n
	}
	return off, nil
}

// applyRecord decodes one record payload and applies it to the map its
// kind belongs to.
func applyRecord(payload []byte, nodes map[nodeKey]NodeState, reps map[nodeKey]ReplicaState, confs map[int]ReplicaConfig) error {
	m, err := wire.DecodeMessage(payload)
	if err != nil {
		return err
	}
	defer proto.Release(m)
	switch m.Kind {
	case proto.KindState:
		ns := NodeState{
			ID:      m.Origin,
			Key:     m.Key,
			Parent:  m.Subject,
			IsRoot:  m.Old == 1,
			Version: m.Version,
			Expiry:  m.Expiry,
		}
		if len(m.Path) > 0 {
			ns.Subscribers = append([]int(nil), m.Path...)
		}
		nodes[nodeKey{ns.ID, ns.Key}] = ns
	case proto.KindAccept:
		rs := ReplicaState{
			ID:      m.Origin,
			Key:     m.Key,
			Term:    m.Seq,
			Version: m.Version,
			Expiry:  m.Expiry,
		}
		reps[nodeKey{rs.ID, rs.Key}] = rs
	case proto.KindReconfig:
		if m.New < 0 || m.New > len(m.Path) {
			return fmt.Errorf("reconfig record split %d outside path of %d", m.New, len(m.Path))
		}
		rc := ReplicaConfig{
			ID:    m.Origin,
			Epoch: m.Seq,
			Term:  m.Version,
			Joint: m.Subject == 0,
		}
		if m.New > 0 {
			rc.Old = append([]int(nil), m.Path[:m.New]...)
		}
		rc.New = append([]int(nil), m.Path[m.New:]...)
		if old, ok := confs[rc.ID]; !ok || rc.Epoch > old.Epoch ||
			(rc.Epoch == old.Epoch && rc.Term >= old.Term) {
			confs[rc.ID] = rc
		}
	default:
		return fmt.Errorf("record kind %s, want state, accept or reconfig", m.Kind)
	}
	return nil
}

// appendRecord appends the CRC-framed encoding of ns to dst. The payload
// is the wire encoding of a KindState message, so the store shares the
// codec's canonical varints and strict decoding instead of inventing a
// second format.
func appendRecord(dst []byte, ns *NodeState) []byte {
	m := proto.NewMessage()
	m.Kind = proto.KindState
	m.Key = ns.Key
	m.Origin = ns.ID
	m.Subject = ns.Parent
	if ns.IsRoot {
		m.Old = 1
	}
	m.Version = ns.Version
	m.Expiry = ns.Expiry
	m.Path = append(m.Path, ns.Subscribers...)
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = wire.AppendMessage(dst, m)
	payload := dst[start+recHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	proto.Release(m)
	return dst
}

// appendReplicaConfigRecord appends the CRC-framed encoding of rc: the
// wire encoding of a KindReconfig message with the node id in Origin,
// the epoch in Seq, the adoption term in Version (the full-width int64
// field), the joint flag in Subject (0 joint, 1 final) and the
// membership in Path as old-set ++ new-set with the split point in New.
func appendReplicaConfigRecord(dst []byte, rc *ReplicaConfig) []byte {
	m := proto.NewMessage()
	m.Kind = proto.KindReconfig
	m.Origin = rc.ID
	m.Seq = rc.Epoch
	m.Version = rc.Term
	if !rc.Joint {
		m.Subject = 1
	}
	m.New = len(rc.Old)
	m.Path = append(m.Path, rc.Old...)
	m.Path = append(m.Path, rc.New...)
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = wire.AppendMessage(dst, m)
	payload := dst[start+recHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	proto.Release(m)
	return dst
}

// appendReplicaRecord appends the CRC-framed encoding of rs: the wire
// encoding of a KindAccept message with the node id in Origin and the
// term in Seq (the full-width int64 field; the live protocol's Accept
// frames carry the term in Old instead, but a store record never crosses
// the wire, so the two layouts cannot be confused).
func appendReplicaRecord(dst []byte, rs *ReplicaState) []byte {
	m := proto.NewMessage()
	m.Kind = proto.KindAccept
	m.Key = rs.Key
	m.Origin = rs.ID
	m.Seq = rs.Term
	m.Version = rs.Version
	m.Expiry = rs.Expiry
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = wire.AppendMessage(dst, m)
	payload := dst[start+recHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	proto.Release(m)
	return dst
}
