package chaos

import (
	"flag"
	"testing"
	"time"
)

// Flags so `make chaos` can scale the run without recompiling; zero
// values fall back to DefaultConfig.
var (
	flagSeed      = flag.Uint64("chaos.seed", 0, "chaos schedule seed")
	flagNodes     = flag.Int("chaos.nodes", 0, "cluster size")
	flagSteps     = flag.Int("chaos.steps", 0, "schedule steps")
	flagChurn     = flag.Int("chaos.churn", 0, "membership churn percent (-1 disables)")
	flagKeys      = flag.Int("chaos.keys", 0, "keyed index trees (0 means 1)")
	flagQuorum    = flag.Bool("chaos.quorum", false, "run the replicated-authority quorum scenario")
	flagReplicas  = flag.Int("chaos.replicas", 0, "authority replication factor (0 means 3 with -chaos.quorum)")
	flagRootChurn = flag.Bool("chaos.rootchurn", false, "run the stale-root-path beacon scenario")
	flagReconfig  = flag.Bool("chaos.reconfig", false, "run the permanent-failure reconfiguration scenario")
)

func TestScheduleIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	a, b := Schedule(cfg), Schedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := Schedule(cfg)
	same := len(c) == len(a)
	for i := 0; same && i < len(a); i++ {
		same = c[i] == a[i]
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestScheduleCleansUpAfterItself replays a schedule's bookkeeping and
// asserts every fault it opens is healed by the cleanup tail, and that
// the membership churn respects its own rules: joins use fresh ids and
// are capped, leaves hit only live members and never shrink the roster
// below three quarters of the initial cluster, reboots and faults touch
// only current members.
func TestScheduleCleansUpAfterItself(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		members := map[int]bool{}
		for id := 0; id < cfg.Nodes; id++ {
			members[id] = true
		}
		joins := 0
		open := map[string]int{}
		for _, e := range Schedule(cfg) {
			if e.Op != OpJoin && !members[e.A] {
				t.Fatalf("seed %d: %s targets non-member %d", seed, e.Op, e.A)
			}
			if (e.Op == OpPartition || e.Op == OpHeal) && !members[e.B] {
				t.Fatalf("seed %d: %s targets non-member %d", seed, e.Op, e.B)
			}
			switch e.Op {
			case OpPartition:
				open["partition"]++
			case OpHeal:
				open["partition"]--
			case OpCrash:
				open["crash"]++
			case OpRestart:
				open["crash"]--
			case OpKill:
				open["kill"]++
			case OpRevive:
				open["kill"]--
			case OpLoss:
				open["loss"]++
			case OpCalm:
				open["loss"]--
			case OpJoin:
				if members[e.A] {
					t.Fatalf("seed %d joins existing node %d", seed, e.A)
				}
				members[e.A] = true
				if joins++; joins > cfg.Nodes/2 {
					t.Fatalf("seed %d exceeds the join cap", seed)
				}
			case OpLeave:
				if !members[e.A] {
					t.Fatalf("seed %d departs non-member %d", seed, e.A)
				}
				if e.A == 0 {
					t.Fatalf("seed %d departs the designated authority", seed)
				}
				delete(members, e.A)
				if len(members) < cfg.Nodes-cfg.Nodes/4 {
					t.Fatalf("seed %d shrinks the roster below its floor", seed)
				}
			}
		}
		for what, n := range open {
			if n != 0 {
				t.Fatalf("seed %d leaves %d unhealed %s faults", seed, n, what)
			}
		}
	}
}

// TestScheduleChurnDisabled asserts Churn = -1 restores the fixed-roster
// schedules: no membership operation appears for any seed.
func TestScheduleChurnDisabled(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Churn = -1
		for _, e := range Schedule(cfg) {
			switch e.Op {
			case OpJoin, OpLeave, OpReboot:
				t.Fatalf("seed %d schedules %s with churn disabled", seed, e.Op)
			}
		}
	}
}

// TestScheduleHasChurn asserts the default churn rate actually produces
// membership operations across a handful of seeds.
func TestScheduleHasChurn(t *testing.T) {
	churned := 0
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		for _, e := range Schedule(cfg) {
			switch e.Op {
			case OpJoin, OpLeave, OpReboot:
				churned++
			}
		}
	}
	if churned == 0 {
		t.Fatal("20 seeds at default churn produced no membership operations")
	}
}

// TestChaosReproducible is the harness's core promise: two runs from the
// same seed produce byte-identical reports, and the invariants hold.
func TestChaosReproducible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Passed {
		t.Fatalf("chaos run failed:\n%s", first)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Passed {
		t.Fatalf("second chaos run failed:\n%s", second)
	}
	if first.String() != second.String() {
		t.Fatalf("same seed, different reports:\n--- first\n%s--- second\n%s", first, second)
	}
}

// goldenSeed7 is the verbatim report of `Run(DefaultConfig with Seed 7)`
// as produced by the pre-replica harness. The replicated-authority work
// must not perturb default runs in any way — same schedule, same
// invariant verdicts, same text, byte for byte. Regenerate only on a
// deliberate harness change.
const goldenSeed7 = `chaos seed=7 nodes=12 steps=12 churn=25 members=13 epoch=4
  step  0: crash 10
  step  1: loss 20% at 9
  step  2: leave 2
  step  3: loss 60% at 11
  step  4: restart 10
  step  5: calm 9
  step  6: kill 1
  step  7: join 12
  step  8: loss 50% at 4
  step  9: revive 1
  step 10: join 13
  step 11: crash 7
  step 12: restart 7
  step 12: calm 11
  step 12: calm 4
invariant convergence      ok   all 13 members reached the authority version within 8 TTLs
invariant tree-consistency ok   subscriber lists agree with the repaired tree
invariant no-leak          ok   every pooled message was returned
PASS
`

// TestChaosEquivalencePreReplica pins the unreplicated harness to its
// pre-replica behaviour: a default seed-7 run must reproduce the golden
// report byte for byte. Together with the wire package's golden frame
// vectors this is the Replicas=1 equivalence guarantee of the replica
// subsystem.
func TestChaosEquivalencePreReplica(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != goldenSeed7 {
		t.Fatalf("default seed-7 report drifted from the pre-replica harness:\n--- got\n%s--- want\n%s",
			got, goldenSeed7)
	}
}

// TestChaosQuorumPartition plays the scripted quorum scenario: the
// leaseholder is partitioned from its quorum mid-push, then killed; the
// promoted successor must floor its versions above everything the old
// one served, and no query site may ever see the stream go backwards.
func TestChaosQuorumPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Quorum = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.Passed {
		t.Fatalf("quorum scenario violated invariants:\n%s", rep)
	}
	found := false
	for _, iv := range rep.Invariants {
		if iv.Name == "monotone-versions" {
			found = true
			if !iv.OK {
				t.Fatalf("resolved versions regressed across fail-over: %s", iv.Detail)
			}
		}
	}
	if !found {
		t.Fatal("quorum run did not report the monotone-versions invariant")
	}
	// Two runs of the scripted scenario from the same seed must agree.
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.String() != rep.String() {
		t.Fatalf("same seed, different quorum reports:\n--- first\n%s--- second\n%s", rep, second)
	}
}

// TestChaosReconfig plays the scripted permanent-failure scenario: one
// replica-set member is killed forever mid-traffic and never heals. The
// leaseholder must notice the silence passing the permanent-failure
// horizon, state-transfer a replacement from the directory, and drive the
// two-phase reconfiguration to a new full-strength stable set — the
// quorum-restored invariant asserts it did, and monotone-versions asserts
// no query site ever saw the resolved stream go backwards while the set
// changed under it. Two runs from the same seed must agree byte for byte:
// the CI smoke relies on that as its seed-reproducibility check.
func TestChaosReconfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Reconfig = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.Passed {
		t.Fatalf("reconfig scenario violated invariants:\n%s", rep)
	}
	for _, name := range []string{"quorum-restored", "monotone-versions"} {
		found := false
		for _, iv := range rep.Invariants {
			if iv.Name == name {
				found = true
				if !iv.OK {
					t.Fatalf("%s failed: %s", name, iv.Detail)
				}
			}
		}
		if !found {
			t.Fatalf("reconfig run did not report the %s invariant", name)
		}
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.String() != rep.String() {
		t.Fatalf("same seed, different reconfig reports:\n--- first\n%s--- second\n%s", rep, second)
	}
}

// TestChaosRootChurn plays the scripted stale-root-path scenario: the
// root is partitioned from one inner child at a time, held past the
// root-path expiry. The child's subtree keeps a live, acking parent the
// whole time, so only the sequence beacon going quiet can trigger the
// repair — the stale-expiry invariant asserts it did. A second run from
// the same seed must agree byte for byte, and the beacon must not make
// delivery worse: the run's give-up count stays within generous slack of
// the same schedule played with the beacon off.
func TestChaosRootChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.RootChurn = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.Passed {
		t.Fatalf("rootchurn scenario violated invariants:\n%s", rep)
	}
	found := false
	for _, iv := range rep.Invariants {
		if iv.Name == "stale-expiry" {
			found = true
			if !iv.OK {
				t.Fatalf("no stale root path ever expired: %s", iv.Detail)
			}
		}
	}
	if !found {
		t.Fatal("rootchurn run did not report the stale-expiry invariant")
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.String() != rep.String() {
		t.Fatalf("same seed, different rootchurn reports:\n--- first\n%s--- second\n%s", rep, second)
	}
	// Announce-off baseline: the identical scripted schedule without the
	// beacon. The beacon-driven repairs must not inflate give-ups — the
	// bound is deliberately loose (2x + 12) because both counts wobble
	// with scheduling.
	base := cfg
	base.noAnnounce = true
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Passed {
		t.Fatalf("announce-off baseline failed:\n%s", baseline)
	}
	if rep.GiveUps > 2*baseline.GiveUps+12 {
		t.Fatalf("beacon repairs inflated give-ups: %d with announce vs %d baseline",
			rep.GiveUps, baseline.GiveUps)
	}
}

// TestChaosRun is the `make chaos` entry point: one run at whatever scale
// the -chaos.* flags request, report logged, invariants fatal on failure.
func TestChaosRun(t *testing.T) {
	cfg := DefaultConfig()
	if *flagSeed != 0 {
		cfg.Seed = *flagSeed
	}
	if *flagNodes != 0 {
		cfg.Nodes = *flagNodes
	}
	if *flagSteps != 0 {
		cfg.Steps = *flagSteps
		cfg.StepEvery = 50 * time.Millisecond
	}
	if *flagChurn != 0 {
		cfg.Churn = *flagChurn
	}
	if *flagKeys != 0 {
		cfg.Keys = *flagKeys
	}
	if *flagQuorum {
		cfg.Quorum = true
	}
	if *flagReplicas != 0 {
		cfg.Replicas = *flagReplicas
	}
	if *flagRootChurn {
		cfg.RootChurn = true
	}
	if *flagReconfig {
		cfg.Reconfig = true
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.Passed {
		t.Fatalf("invariants violated:\n%s", rep)
	}
}
