package chaos

import (
	"flag"
	"testing"
	"time"
)

// Flags so `make chaos` can scale the run without recompiling; zero
// values fall back to DefaultConfig.
var (
	flagSeed  = flag.Uint64("chaos.seed", 0, "chaos schedule seed")
	flagNodes = flag.Int("chaos.nodes", 0, "cluster size")
	flagSteps = flag.Int("chaos.steps", 0, "schedule steps")
	flagChurn = flag.Int("chaos.churn", 0, "membership churn percent (-1 disables)")
	flagKeys  = flag.Int("chaos.keys", 0, "keyed index trees (0 means 1)")
)

func TestScheduleIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	a, b := Schedule(cfg), Schedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := Schedule(cfg)
	same := len(c) == len(a)
	for i := 0; same && i < len(a); i++ {
		same = c[i] == a[i]
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestScheduleCleansUpAfterItself replays a schedule's bookkeeping and
// asserts every fault it opens is healed by the cleanup tail, and that
// the membership churn respects its own rules: joins use fresh ids and
// are capped, leaves hit only live members and never shrink the roster
// below three quarters of the initial cluster, reboots and faults touch
// only current members.
func TestScheduleCleansUpAfterItself(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		members := map[int]bool{}
		for id := 0; id < cfg.Nodes; id++ {
			members[id] = true
		}
		joins := 0
		open := map[string]int{}
		for _, e := range Schedule(cfg) {
			if e.Op != OpJoin && !members[e.A] {
				t.Fatalf("seed %d: %s targets non-member %d", seed, e.Op, e.A)
			}
			if (e.Op == OpPartition || e.Op == OpHeal) && !members[e.B] {
				t.Fatalf("seed %d: %s targets non-member %d", seed, e.Op, e.B)
			}
			switch e.Op {
			case OpPartition:
				open["partition"]++
			case OpHeal:
				open["partition"]--
			case OpCrash:
				open["crash"]++
			case OpRestart:
				open["crash"]--
			case OpKill:
				open["kill"]++
			case OpRevive:
				open["kill"]--
			case OpLoss:
				open["loss"]++
			case OpCalm:
				open["loss"]--
			case OpJoin:
				if members[e.A] {
					t.Fatalf("seed %d joins existing node %d", seed, e.A)
				}
				members[e.A] = true
				if joins++; joins > cfg.Nodes/2 {
					t.Fatalf("seed %d exceeds the join cap", seed)
				}
			case OpLeave:
				if !members[e.A] {
					t.Fatalf("seed %d departs non-member %d", seed, e.A)
				}
				if e.A == 0 {
					t.Fatalf("seed %d departs the designated authority", seed)
				}
				delete(members, e.A)
				if len(members) < cfg.Nodes-cfg.Nodes/4 {
					t.Fatalf("seed %d shrinks the roster below its floor", seed)
				}
			}
		}
		for what, n := range open {
			if n != 0 {
				t.Fatalf("seed %d leaves %d unhealed %s faults", seed, n, what)
			}
		}
	}
}

// TestScheduleChurnDisabled asserts Churn = -1 restores the fixed-roster
// schedules: no membership operation appears for any seed.
func TestScheduleChurnDisabled(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Churn = -1
		for _, e := range Schedule(cfg) {
			switch e.Op {
			case OpJoin, OpLeave, OpReboot:
				t.Fatalf("seed %d schedules %s with churn disabled", seed, e.Op)
			}
		}
	}
}

// TestScheduleHasChurn asserts the default churn rate actually produces
// membership operations across a handful of seeds.
func TestScheduleHasChurn(t *testing.T) {
	churned := 0
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		for _, e := range Schedule(cfg) {
			switch e.Op {
			case OpJoin, OpLeave, OpReboot:
				churned++
			}
		}
	}
	if churned == 0 {
		t.Fatal("20 seeds at default churn produced no membership operations")
	}
}

// TestChaosReproducible is the harness's core promise: two runs from the
// same seed produce byte-identical reports, and the invariants hold.
func TestChaosReproducible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Passed {
		t.Fatalf("chaos run failed:\n%s", first)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Passed {
		t.Fatalf("second chaos run failed:\n%s", second)
	}
	if first.String() != second.String() {
		t.Fatalf("same seed, different reports:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestChaosRun is the `make chaos` entry point: one run at whatever scale
// the -chaos.* flags request, report logged, invariants fatal on failure.
func TestChaosRun(t *testing.T) {
	cfg := DefaultConfig()
	if *flagSeed != 0 {
		cfg.Seed = *flagSeed
	}
	if *flagNodes != 0 {
		cfg.Nodes = *flagNodes
	}
	if *flagSteps != 0 {
		cfg.Steps = *flagSteps
		cfg.StepEvery = 50 * time.Millisecond
	}
	if *flagChurn != 0 {
		cfg.Churn = *flagChurn
	}
	if *flagKeys != 0 {
		cfg.Keys = *flagKeys
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.Passed {
		t.Fatalf("invariants violated:\n%s", rep)
	}
}
