// Package chaos is the deterministic chaos harness: it boots a live DUP
// cluster where every node's endpoint sits behind its own fault wrapper
// (dup/internal/faults), plays a seeded schedule of partitions, crashes,
// kills, loss bursts and membership churn — live joins, graceful leaves,
// restarts with durable-state recovery — against it while issuing
// queries, and then checks the invariants the protocol promises to keep
// over the changed roster:
//
//   - convergence: after the faults heal, every current member resolves
//     queries to at least the authority's version within a bounded time;
//   - tree consistency: subscriber lists agree with the repaired DUP tree
//     — every node that believes it is subscribed is actually reached by
//     authority pushes, and no list entry points outside the current
//     membership (departed nodes must have been spliced out);
//   - no leaks: once the cluster stops, every pooled message has been
//     returned.
//
// The schedule is a pure function of the seed, and the report contains
// only the schedule and the invariant verdicts, so two runs with the same
// configuration produce byte-identical reports — a failing seed is a
// reproducible bug.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"dup/internal/rng"
)

// Config parametrises one chaos run.
type Config struct {
	// Seed drives the schedule and every derived randomness. Same seed,
	// same schedule.
	Seed uint64
	// Nodes and MaxDegree shape the cluster (min 8 nodes, so there is
	// room to disturb a quarter of them).
	Nodes     int
	MaxDegree int
	// Steps is how many schedule steps to play; StepEvery the pause
	// between them.
	Steps     int
	StepEvery time.Duration
	// QueriesPerStep is how many round-robin queries accompany each step,
	// on top of the standing queries that keep the hot nodes subscribed.
	QueriesPerStep int
	// Churn is the percentage of steps that draw a membership operation
	// (join, leave, or restart-with-recovery) instead of a fault. Zero
	// means the default (25); -1 disables churn entirely, reproducing the
	// fixed-roster schedules of earlier harness versions.
	Churn int
	// Keys is how many keyed index trees the cluster carries. Zero means 1
	// — the single-index runs, whose reports stay byte-identical to the
	// pre-multi-key harness. With more keys the step queries rotate over
	// the key space and convergence is checked per key.
	Keys int
	// Quorum switches to the replicated-authority scenario: the cluster
	// runs with Replicas authority replicas, the schedule is the scripted
	// leader-partition-then-kill sequence (partition the leaseholder from
	// its quorum mid-push, kill it, heal at the tail), and the report
	// gains a monotone-versions invariant asserting no query site ever
	// resolved a version below one it had already resolved — regression-
	// free fail-over, observed from the outside. Off by default, keeping
	// default reports byte-identical to the pre-replica harness.
	Quorum bool
	// Replicas is the authority replication factor (live.Config.Replicas).
	// Zero means 3 when Quorum is set, unreplicated otherwise.
	Replicas int
	// RootChurn switches to the stale-root-path scenario: the cluster
	// runs with the soft-state tree beacon enabled and the schedule is a
	// scripted rotation that partitions the root from one inner child at
	// a time, held past the root-path expiry. The disturbed child's own
	// subtree keeps a live, acking parent the whole time — only the
	// sequence beacon can tell its path upstream has gone stale — so the
	// report gains a stale-expiry invariant asserting at least one node
	// expired its root path by sequence timeout and re-homed. Off by
	// default, keeping default reports byte-identical. Mutually
	// exclusive with Quorum.
	RootChurn bool
	// noAnnounce keeps RootChurn's scripted schedule but leaves the
	// beacon off (test-only): the baseline the give-up comparison in the
	// rootchurn test measures against.
	noAnnounce bool
	// Reconfig switches to the online-reconfiguration scenario: the
	// cluster runs with Replicas authority replicas and a permanent-
	// failure horizon, and the schedule kills one replica-set member
	// forever a third of the way in — no heal, no revive. The leaseholder
	// must notice the silence passing the horizon and replace the member
	// through the two-phase quorum reconfiguration; the report gains the
	// monotone-versions invariant plus a quorum-restored invariant
	// asserting the config epoch advanced to a new full-strength stable
	// set with nothing left in flight. Off by default, keeping default
	// reports byte-identical. Mutually exclusive with Quorum and
	// RootChurn.
	Reconfig bool
}

// DefaultConfig returns a small run that finishes in a few seconds.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Nodes:          12,
		MaxDegree:      3,
		Steps:          12,
		StepEvery:      60 * time.Millisecond,
		QueriesPerStep: 4,
		Churn:          25,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = d.MaxDegree
	}
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.StepEvery == 0 {
		c.StepEvery = d.StepEvery
	}
	if c.QueriesPerStep == 0 {
		c.QueriesPerStep = d.QueriesPerStep
	}
	if c.Churn == 0 {
		c.Churn = d.Churn
	}
	if c.Keys == 0 {
		c.Keys = 1
	}
	if (c.Quorum || c.Reconfig) && c.Replicas == 0 {
		c.Replicas = 3
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Nodes < 8:
		return fmt.Errorf("chaos: need at least 8 nodes, got %d", c.Nodes)
	case c.MaxDegree < 2:
		return fmt.Errorf("chaos: need MaxDegree >= 2, got %d", c.MaxDegree)
	case c.Steps < 1:
		return fmt.Errorf("chaos: need at least 1 step, got %d", c.Steps)
	case c.StepEvery <= 0:
		return fmt.Errorf("chaos: need StepEvery > 0, got %v", c.StepEvery)
	case c.QueriesPerStep < 0:
		return fmt.Errorf("chaos: need QueriesPerStep >= 0, got %d", c.QueriesPerStep)
	case c.Churn < -1 || c.Churn > 100:
		return fmt.Errorf("chaos: need Churn in [-1, 100], got %d", c.Churn)
	case c.Keys < 1:
		return fmt.Errorf("chaos: need Keys >= 1, got %d", c.Keys)
	case c.Replicas < 0 || c.Replicas > c.Nodes:
		return fmt.Errorf("chaos: need 0 <= Replicas <= Nodes, got %d", c.Replicas)
	case c.Quorum && c.Replicas < 2:
		return fmt.Errorf("chaos: quorum scenario needs Replicas >= 2, got %d", c.Replicas)
	case c.Reconfig && c.Replicas < 2:
		return fmt.Errorf("chaos: reconfig scenario needs Replicas >= 2, got %d", c.Replicas)
	case c.RootChurn && c.Quorum:
		return fmt.Errorf("chaos: rootchurn and quorum scenarios are mutually exclusive")
	case c.Reconfig && (c.Quorum || c.RootChurn):
		return fmt.Errorf("chaos: reconfig is mutually exclusive with quorum and rootchurn")
	}
	return nil
}

// Op enumerates the fault operations a schedule can play.
type Op uint8

const (
	// OpPartition blocks both directions between nodes A and B.
	OpPartition Op = iota
	// OpHeal undoes a partition between A and B.
	OpHeal
	// OpCrash takes node A's endpoint down (outbound dropped, inbound
	// refused) without the directory learning anything.
	OpCrash
	// OpRestart brings a crashed endpoint back.
	OpRestart
	// OpKill fails node A at the process level: the directory oracle
	// learns of the death, like a DHT whose routing has repaired.
	OpKill
	// OpRevive recovers a killed node.
	OpRevive
	// OpLoss sets Pct% i.i.d. loss on node A's outbound link.
	OpLoss
	// OpCalm sets node A's loss back to zero.
	OpCalm
	// OpJoin attaches brand-new node A to the running cluster: the
	// directory assigns it a parent and it announces itself with KindJoin.
	OpJoin
	// OpLeave departs node A gracefully and permanently: substitute logic
	// runs proactively and the directory forgets the node.
	OpLeave
	// OpReboot crash-restarts node A with recovery: in-memory state is
	// blanked and resumed from the node's journal, like a restarted dupd
	// reading its -state-dir. Instantaneous — no repair event pairs it.
	OpReboot
	// OpKillForever kills node A permanently: the endpoint goes down like
	// OpKill, but the faults wrapper refuses any later restart — the
	// machine is gone for good, and the only repair is membership change
	// (a replica-set member gets replaced through reconfiguration). No
	// repair event ever pairs it.
	OpKillForever
)

func (o Op) String() string {
	switch o {
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpKill:
		return "kill"
	case OpRevive:
		return "revive"
	case OpLoss:
		return "loss"
	case OpCalm:
		return "calm"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpReboot:
		return "reboot"
	case OpKillForever:
		return "kill-forever"
	}
	return "unknown"
}

// Event is one scheduled fault operation. Events at Step == Config.Steps
// are the cleanup tail that heals everything before the invariant checks.
type Event struct {
	Step int
	Op   Op
	A, B int
	Pct  int // loss percent, OpLoss only
}

func (e Event) String() string {
	switch e.Op {
	case OpPartition, OpHeal:
		return fmt.Sprintf("step %2d: %s %d <-> %d", e.Step, e.Op, e.A, e.B)
	case OpLoss:
		return fmt.Sprintf("step %2d: %s %d%% at %d", e.Step, e.Op, e.Pct, e.A)
	default:
		return fmt.Sprintf("step %2d: %s %d", e.Step, e.Op, e.A)
	}
}

// schedState tracks which faults are live and which nodes are members
// while generating a schedule.
type schedState struct {
	nodes      int // initial cluster size
	disturbed  map[int]bool
	partitions [][2]int
	crashed    []int
	killed     []int
	lossy      []int
	// members is the schedule's view of the roster; joins add fresh ids
	// from nextID upward, leaves remove permanently. protected nodes (the
	// designated authority and the hot query nodes) never leave.
	members   map[int]bool
	protected map[int]bool
	nextID    int
	joined    int
}

// count is how many nodes are currently disturbed in some way.
func (s *schedState) count() int {
	return 2*len(s.partitions) + len(s.crashed) + len(s.killed) + len(s.lossy)
}

// free lists undisturbed member ids in ascending order.
func (s *schedState) free() []int {
	var ids []int
	for id := range s.members {
		if !s.disturbed[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// repair pops the oldest live fault and returns its healing event.
func (s *schedState) repair(step int) (Event, bool) {
	switch {
	case len(s.partitions) > 0:
		p := s.partitions[0]
		s.partitions = s.partitions[1:]
		delete(s.disturbed, p[0])
		delete(s.disturbed, p[1])
		return Event{Step: step, Op: OpHeal, A: p[0], B: p[1]}, true
	case len(s.crashed) > 0:
		a := s.crashed[0]
		s.crashed = s.crashed[1:]
		delete(s.disturbed, a)
		return Event{Step: step, Op: OpRestart, A: a}, true
	case len(s.killed) > 0:
		a := s.killed[0]
		s.killed = s.killed[1:]
		delete(s.disturbed, a)
		return Event{Step: step, Op: OpRevive, A: a}, true
	case len(s.lossy) > 0:
		a := s.lossy[0]
		s.lossy = s.lossy[1:]
		delete(s.disturbed, a)
		return Event{Step: step, Op: OpCalm, A: a}, true
	}
	return Event{}, false
}

// Schedule generates the fault-and-churn schedule for cfg: one event per
// step, a bounded number of simultaneously disturbed nodes (a quarter of
// the cluster), membership churn at the configured rate, and a cleanup
// tail at step Config.Steps that heals every outstanding fault (leaves
// are permanent and need no healing). It is a pure function of the
// configuration.
func Schedule(cfg Config) []Event {
	cfg = cfg.withDefaults()
	if cfg.Quorum {
		return quorumSchedule(cfg)
	}
	if cfg.RootChurn {
		return rootChurnSchedule(cfg)
	}
	if cfg.Reconfig {
		return reconfigSchedule(cfg)
	}
	src := rng.New(cfg.Seed)
	st := &schedState{
		nodes:     cfg.Nodes,
		disturbed: map[int]bool{},
		members:   map[int]bool{},
		protected: map[int]bool{0: true},
		nextID:    cfg.Nodes,
	}
	for id := 0; id < cfg.Nodes; id++ {
		st.members[id] = true
	}
	// The hot query nodes (see newHarness) must survive the whole run.
	for _, id := range []int{cfg.Nodes - 1, cfg.Nodes - 2, cfg.Nodes - 3} {
		st.protected[id] = true
	}
	limit := cfg.Nodes / 4
	if limit < 2 {
		limit = 2
	}
	var events []Event
	for step := 0; step < cfg.Steps; step++ {
		if st.count() >= limit {
			if e, ok := st.repair(step); ok {
				events = append(events, e)
				continue
			}
		}
		if cfg.Churn > 0 && src.Intn(100) < cfg.Churn {
			if e, ok := membershipEvent(src, st, step, cfg); ok {
				events = append(events, e)
				continue
			}
		}
		events = append(events, nextEvent(src, st, step))
	}
	// Cleanup tail: heal everything so the invariants measure recovery,
	// not the faults themselves.
	for {
		e, ok := st.repair(cfg.Steps)
		if !ok {
			break
		}
		events = append(events, e)
	}
	return events
}

// quorumSchedule scripts the replicated-authority fail-over scenario:
// a third of the way in, the leaseholder (node 0) is partitioned from
// every other replica-set member — its lease renewals stop reaching a
// quorum mid-push, so it goes silent within one lease instead of
// serving on; two thirds in it is killed, so the directory promotes a
// successor, which must re-floor the version stream through the member
// quorum it can still reach. The tail heals the partitions and revives
// the old leaseholder, which rejoins as a follower. The script is a
// pure function of the configuration, like the seeded schedules.
func quorumSchedule(cfg Config) []Event {
	part, kill := cfg.Steps/3, 2*cfg.Steps/3
	var events []Event
	for m := 1; m < cfg.Replicas; m++ {
		events = append(events, Event{Step: part, Op: OpPartition, A: 0, B: m})
	}
	events = append(events, Event{Step: kill, Op: OpKill, A: 0})
	for m := 1; m < cfg.Replicas; m++ {
		events = append(events, Event{Step: cfg.Steps, Op: OpHeal, A: 0, B: m})
	}
	events = append(events, Event{Step: cfg.Steps, Op: OpRevive, A: 0})
	return events
}

// reconfigSchedule scripts the permanent-failure scenario: a third of
// the way in, the highest-id replica-set member (never node 0, the boot
// leaseholder) is killed forever mid-traffic — no heal, no revive. From
// there the leaseholder is on its own: it must notice the silence
// passing the permanent-failure horizon and run the two-phase
// reconfiguration that admits a replacement drawn from the directory.
// The script is a pure function of the configuration.
func reconfigSchedule(cfg Config) []Event {
	return []Event{{Step: cfg.Steps / 3, Op: OpKillForever, A: cfg.Replicas - 1}}
}

// rootChurnSchedule scripts the stale-root-path scenario: the root is
// partitioned from one inner child at a time. The child's own subtree
// keeps exchanging keep-alives and acks with its parent — which is alive
// the whole time — while the parent's path upstream goes dark; only the
// root sequence beacon going quiet reveals the staleness, so the
// grandchildren must expire their paths by sequence timeout and re-home
// by score. Each partition is held well past the rootchurn expiry, then
// healed before the next child is disturbed. The inner children are read
// from the same seeded tree the harness builds, so the script stays a
// pure function of the configuration.
func rootChurnSchedule(cfg Config) []Event {
	lc := liveConfig(cfg)
	tree := lc.BuildTree()
	var inner []int
	for _, c := range tree.Children(0) {
		if len(tree.Children(c)) > 0 {
			inner = append(inner, c)
		}
	}
	if len(inner) == 0 {
		inner = append(inner, tree.Children(0)...)
	}
	// Hold each partition rootChurnHold steps: at the default 60ms cadence
	// that is 300ms, comfortably past the 200ms rootchurn path expiry.
	const hold = rootChurnHold
	var events []Event
	step := 1
	for i := 0; i < len(inner) && step+hold <= cfg.Steps; i++ {
		events = append(events,
			Event{Step: step, Op: OpPartition, A: 0, B: inner[i]},
			Event{Step: step + hold, Op: OpHeal, A: 0, B: inner[i]})
		step += hold + 1
	}
	return events
}

// membershipEvent draws one churn operation — join, leave, or
// restart-with-recovery — returning false when the drawn operation has no
// legal candidate (joins capped at half the initial cluster, the roster
// never shrinks below three quarters of it, protected nodes never leave).
func membershipEvent(src *rng.Source, st *schedState, step int, cfg Config) (Event, bool) {
	switch src.Intn(3) {
	case 0: // join a brand-new node
		if st.joined >= cfg.Nodes/2 {
			return Event{}, false
		}
		id := st.nextID
		st.nextID++
		st.joined++
		st.members[id] = true
		return Event{Step: step, Op: OpJoin, A: id}, true
	case 1: // leave: a free, unprotected member, roster floor respected
		if len(st.members) <= cfg.Nodes-cfg.Nodes/4 {
			return Event{}, false
		}
		var cands []int
		for _, id := range st.free() {
			if !st.protected[id] {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			return Event{}, false
		}
		id := cands[src.Intn(len(cands))]
		delete(st.members, id)
		return Event{Step: step, Op: OpLeave, A: id}, true
	default: // reboot with recovery: any free member, authority included
		free := st.free()
		if len(free) == 0 {
			return Event{}, false
		}
		return Event{Step: step, Op: OpReboot, A: free[src.Intn(len(free))]}, true
	}
}

// nextEvent draws one fault event, falling back to loss (always legal on
// a free node) or a repair when the preferred op has no candidates.
func nextEvent(src *rng.Source, st *schedState, step int) Event {
	free := st.free()
	pick := func() int { // draw and remove one free node
		i := src.Intn(len(free))
		a := free[i]
		free = append(free[:i], free[i+1:]...)
		return a
	}
	switch op := src.Intn(6); {
	case op == 0 && len(free) >= 2: // partition a pair
		a, b := pick(), pick()
		st.partitions = append(st.partitions, [2]int{a, b})
		st.disturbed[a], st.disturbed[b] = true, true
		return Event{Step: step, Op: OpPartition, A: a, B: b}
	case op == 1 && len(free) >= 1: // crash an endpoint
		a := pick()
		st.crashed = append(st.crashed, a)
		st.disturbed[a] = true
		return Event{Step: step, Op: OpCrash, A: a}
	case op == 2 && len(free) >= 1: // kill a process
		a := pick()
		st.killed = append(st.killed, a)
		st.disturbed[a] = true
		return Event{Step: step, Op: OpKill, A: a}
	case op == 3: // heal something early
		if e, ok := st.repair(step); ok {
			return e
		}
	}
	if len(free) >= 1 { // loss burst, the default disturbance
		a := pick()
		pct := 20 + 10*src.Intn(5) // 20%..60%
		st.lossy = append(st.lossy, a)
		st.disturbed[a] = true
		return Event{Step: step, Op: OpLoss, A: a, Pct: pct}
	}
	e, _ := st.repair(step) // nothing free: something must be repairable
	return e
}
